#!/bin/bash
# Runs every bench binary, echoing a banner per bench.
out="${1:-/root/repo/results/bench_full.txt}"
{
  for b in /root/repo/build/bench/*; do
    if [ -x "$b" ] && [ -f "$b" ]; then
      echo "##### $(basename "$b")"
      timeout 5400 "$b"
      echo
    fi
  done
  echo "ALL_BENCHES_COMPLETE"
} > "$out" 2>&1
