// Optimize an 8-bit multiplier with RL-MUL-E (the parallel A2C agent)
// and compare the resulting Pareto frontier against the Wallace, Dadda
// and GOMIL baselines.
//
//   RLMUL_STEPS=200 ./examples/optimize_multiplier

#include <cstdio>

#include "baselines/gomil.hpp"
#include "ct/compressor_tree.hpp"
#include "ppg/ppg.hpp"
#include "rl/a2c.hpp"
#include "synth/evaluator.hpp"
#include "util/config.hpp"

int main() {
  using namespace rlmul;

  const ppg::MultiplierSpec spec{8, ppg::PpgKind::kAnd, false};
  synth::DesignEvaluator evaluator(spec);

  std::printf("reward targets (ns):");
  for (double t : evaluator.targets()) std::printf(" %.3f", t);
  std::printf("\n");

  // Baselines.
  auto report = [&](const char* name, const ct::CompressorTree& tree) {
    const auto eval = evaluator.evaluate(tree);
    std::printf("%-10s  FA=%-3d HA=%-3d stages=%d  sum_area=%.0f  "
                "sum_delay=%.3f  cost=%.4f\n",
                name, tree.total_c32(), tree.total_c22(),
                ct::stage_count(tree), eval.sum_area, eval.sum_delay,
                evaluator.cost(eval, 1.0, 1.0));
  };
  const auto heights = ppg::pp_heights(spec);
  report("Wallace", ct::wallace_tree(heights));
  report("Dadda", ct::dadda_tree(heights));
  report("GOMIL", baselines::gomil_tree(spec));

  // RL-MUL-E.
  rl::A2cOptions opts;
  opts.steps = static_cast<int>(util::env_long("RLMUL_STEPS", 120));
  opts.num_threads = static_cast<int>(util::env_long("RLMUL_THREADS", 4));
  opts.seed = 17;
  std::printf("\ntraining RL-MUL-E: %d steps x %d threads...\n", opts.steps,
              opts.num_threads);
  const rl::TrainResult res = rl::train_a2c(evaluator, opts);
  report("RL-MUL-E", res.best_tree);
  std::printf("unique synthesis calls: %zu\n", res.eda_calls);

  // Frontier across everything the search touched.
  std::printf("\nPareto frontier (area um2, delay ns) over all visited "
              "designs:\n");
  for (const auto& p : evaluator.frontier().sorted()) {
    std::printf("  %8.1f  %.4f\n", p.x, p.y);
  }
  return 0;
}
