// Train once, deploy everywhere: trains a DQN agent on an 8-bit
// multiplier, checkpoints the Q-network to disk, reloads it into a
// fresh process-like state, and replays a greedy (no-exploration)
// rollout — the workflow for reusing a trained agent across runs.
//
//   RLMUL_STEPS=150 ./examples/train_and_deploy

#include <cstdio>

#include "nn/serialize.hpp"
#include "ppg/ppg.hpp"
#include "rl/dqn.hpp"
#include "synth/evaluator.hpp"
#include "util/config.hpp"

int main() {
  using namespace rlmul;
  const ppg::MultiplierSpec spec{8, ppg::PpgKind::kAnd, false};
  const int steps = static_cast<int>(util::env_long("RLMUL_STEPS", 120));
  const std::string ckpt = "/tmp/rlmul_agent.ckpt";

  // -- training session ------------------------------------------------------
  synth::DesignEvaluator train_eval(spec);
  rl::DqnOptions opts;
  opts.steps = steps;
  opts.warmup = std::max(8, steps / 8);
  opts.target_sync = 8;
  opts.double_dqn = true;
  opts.seed = 23;
  std::printf("training DQN (double, target-synced) for %d steps...\n",
              steps);
  const auto trained = rl::train_dqn(train_eval, opts);
  std::printf("training best cost: %.4f (%zu EDA calls)\n",
              trained.best_cost, trained.eda_calls);

  // Persist the trained Q-network.
  nn::save_params_file(*trained.network, ckpt);
  std::printf("checkpoint written: %s\n", ckpt.c_str());
  const int num_actions = 2 * spec.bits * ct::kActionsPerColumn;

  // -- deployment session ----------------------------------------------------
  util::Rng rng2(99);  // a different init, then restored from disk
  auto deployed = rl::make_agent_net(rl::AgentNet::kTiny, num_actions, rng2);
  nn::load_params_file(*deployed, ckpt);

  synth::DesignEvaluator deploy_eval(spec);
  const auto rollout = rl::greedy_rollout(deploy_eval, *deployed, 20);
  std::printf("greedy rollout: best cost %.4f after %zu steps, tree:\n%s\n",
              rollout.best_cost, rollout.trajectory.size(),
              ct::to_string(rollout.best_tree).c_str());
  return 0;
}
