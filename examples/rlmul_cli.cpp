// Command-line front end over the public API — the workflow a
// downstream user runs without writing C++:
//
//   rlmul_cli generate --bits 8 --ppg and --tree dadda --cpa ks -o mult.v
//   rlmul_cli optimize --bits 8 --ppg mbe --method a2c --steps 200 -o opt.v
//   rlmul_cli check    --bits 8 --ppg and --tree gomil
//   rlmul_cli report   --bits 16 --ppg and --tree wallace
//
// `generate` emits structural Verilog for a classic tree, `optimize`
// dispatches any method registered in the search layer (sa / dqn / a2c
// / gomil / wallace) and emits the best design, `check` runs the
// equivalence gate, `report` prints the synthesis trade-off table.
// Long searches can be capped (--budget), checkpointed (--checkpoint)
// and continued later (--resume) without losing trajectory fidelity.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "baselines/gomil.hpp"
#include "ct/compressor_tree.hpp"
#include "netlist/verilog.hpp"
#include "ppg/ppg.hpp"
#include "search/checkpoint.hpp"
#include "search/driver.hpp"
#include "search/registry.hpp"
#include "sim/simulator.hpp"
#include "synth/evaluator.hpp"
#include "synth/synth.hpp"
#include "util/rng.hpp"

namespace {

using namespace rlmul;

struct Args {
  std::string command;
  int bits = 8;
  ppg::PpgKind ppg = ppg::PpgKind::kAnd;
  bool mac = false;
  std::string tree = "wallace";
  std::string cpa = "rca";
  std::string method = "a2c";
  int steps = 150;
  std::uint64_t seed = 1;
  std::size_t budget = 0;
  std::string checkpoint;
  std::string resume;
  std::string output;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: rlmul_cli <generate|optimize|check|report> [options]\n"
      "  --bits N        operand width (2..32, default 8)\n"
      "  --ppg KIND      and | mbe | bw (default and)\n"
      "  --mac           merged multiply-accumulate\n"
      "  --tree NAME     wallace | dadda | gomil (default wallace)\n"
      "  --cpa KIND      rca | ks (default rca)\n"
      "  --method NAME   sa | dqn | a2c | gomil | wallace\n"
      "                  (optimize; default a2c)\n"
      "  --steps N       search budget in steps (default 150)\n"
      "  --budget N      cap unique synthesis evaluations (default 0 = off)\n"
      "  --checkpoint F  save search state to F after the run\n"
      "  --resume F      continue the search saved in F (method comes\n"
      "                  from the checkpoint; --method is ignored)\n"
      "  --seed N        RNG seed (default 1)\n"
      "  -o FILE         write Verilog to FILE\n");
  return 2;
}

bool parse(int argc, char** argv, Args& args) {
  if (argc < 2) return false;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--bits") {
      const char* v = next();
      if (v == nullptr) return false;
      args.bits = std::atoi(v);
    } else if (flag == "--ppg") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "and") == 0) args.ppg = ppg::PpgKind::kAnd;
      else if (std::strcmp(v, "mbe") == 0) args.ppg = ppg::PpgKind::kBooth;
      else if (std::strcmp(v, "bw") == 0) args.ppg = ppg::PpgKind::kBaughWooley;
      else return false;
    } else if (flag == "--mac") {
      args.mac = true;
    } else if (flag == "--tree") {
      const char* v = next();
      if (v == nullptr) return false;
      args.tree = v;
    } else if (flag == "--cpa") {
      const char* v = next();
      if (v == nullptr) return false;
      args.cpa = v;
    } else if (flag == "--method") {
      const char* v = next();
      if (v == nullptr) return false;
      args.method = v;
    } else if (flag == "--steps") {
      const char* v = next();
      if (v == nullptr) return false;
      args.steps = std::atoi(v);
    } else if (flag == "--budget") {
      const char* v = next();
      if (v == nullptr) return false;
      args.budget = static_cast<std::size_t>(std::atoll(v));
    } else if (flag == "--checkpoint") {
      const char* v = next();
      if (v == nullptr) return false;
      args.checkpoint = v;
    } else if (flag == "--resume") {
      const char* v = next();
      if (v == nullptr) return false;
      args.resume = v;
    } else if (flag == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      args.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (flag == "-o") {
      const char* v = next();
      if (v == nullptr) return false;
      args.output = v;
    } else {
      return false;
    }
  }
  return true;
}

ct::CompressorTree named_tree(const ppg::MultiplierSpec& spec,
                              const std::string& name) {
  const auto heights = ppg::pp_heights(spec);
  if (name == "wallace") return ct::wallace_tree(heights);
  if (name == "dadda") return ct::dadda_tree(heights);
  if (name == "gomil") return baselines::gomil_tree(spec);
  throw std::runtime_error("unknown tree: " + name);
}

netlist::CpaKind cpa_of(const std::string& name) {
  if (name == "rca") return netlist::CpaKind::kRippleCarry;
  if (name == "ks") return netlist::CpaKind::kKoggeStone;
  throw std::runtime_error("unknown cpa: " + name);
}

void emit(const Args& args, const ppg::MultiplierSpec& spec,
          const ct::CompressorTree& tree) {
  if (args.output.empty()) return;
  const auto nl = ppg::build_multiplier(spec, tree, cpa_of(args.cpa));
  netlist::VerilogOptions vopts;
  vopts.module_name = "rlmul_" + std::to_string(spec.bits) + "b";
  std::ofstream os(args.output);
  os << netlist::to_verilog(nl, vopts);
  std::printf("wrote %s (%d cells)\n", args.output.c_str(), nl.num_gates());
}

int cmd_generate(const Args& args, const ppg::MultiplierSpec& spec) {
  const auto tree = named_tree(spec, args.tree);
  std::printf("%s\n", ct::to_string(tree).c_str());
  emit(args, spec, tree);
  return 0;
}

int cmd_check(const Args& args, const ppg::MultiplierSpec& spec) {
  const auto tree = named_tree(spec, args.tree);
  const auto nl = ppg::build_multiplier(spec, tree, cpa_of(args.cpa));
  util::Rng rng(args.seed);
  const auto rep = sim::check_equivalence(nl, spec, rng);
  std::printf("equivalence: %s (%llu vectors)\n",
              rep.equivalent ? "PASS" : "FAIL",
              static_cast<unsigned long long>(rep.vectors_checked));
  return rep.equivalent ? 0 : 1;
}

int cmd_report(const Args& args, const ppg::MultiplierSpec& spec) {
  const auto tree = named_tree(spec, args.tree);
  std::printf("%-12s %-10s %-10s %-10s %-5s\n", "target(ns)", "area(um2)",
              "delay(ns)", "power(mW)", "CPA");
  for (double target : synth::default_targets(spec, 6)) {
    const auto res = synth::synthesize_design(spec, tree, target);
    std::printf("%-12.3f %-10.1f %-10.4f %-10.3f %-5s\n", target,
                res.area_um2, res.delay_ns, res.power_mw,
                res.cpa == netlist::CpaKind::kKoggeStone ? "KS" : "RCA");
  }
  return 0;
}

int cmd_optimize(const Args& args, const ppg::MultiplierSpec& spec) {
  synth::DesignEvaluator evaluator(spec);
  search::Driver driver(evaluator, {args.budget, 0});

  std::string method_name = args.method;
  search::Checkpoint ckpt;
  const bool resuming = !args.resume.empty();
  if (resuming) {
    ckpt = search::Checkpoint::load_file(args.resume);
    method_name = ckpt.method;
  }

  search::MethodConfig cfg;
  cfg.steps = args.steps;
  cfg.seed = args.seed;
  // The A2C workers advance in lockstep, so give each worker
  // steps/threads environment steps: every method then consumes a
  // comparable wall-time budget for the same --steps value.
  if (method_name == "a2c") cfg.steps = std::max(1, args.steps / cfg.threads);
  auto method = search::make_method(method_name, cfg);

  const auto res = resuming ? driver.resume(*method, ckpt)
                            : driver.run(*method);
  if (!args.checkpoint.empty()) {
    driver.make_checkpoint(*method).save_file(args.checkpoint);
    std::printf("checkpoint: %s (%llu steps done, %s)\n",
                args.checkpoint.c_str(),
                static_cast<unsigned long long>(res.steps_done),
                res.completed ? "search complete" : "resumable");
  }

  const auto wallace_eval = evaluator.evaluate(ppg::initial_tree(spec));
  const auto best_eval = evaluator.evaluate(res.best_tree);
  std::printf("wallace: cost=%.4f  optimized: cost=%.4f  (%zu EDA calls)\n",
              evaluator.cost(wallace_eval, 1.0, 1.0),
              evaluator.cost(best_eval, 1.0, 1.0),
              evaluator.num_unique_evaluations());
  std::printf("%s\n", ct::to_string(res.best_tree).c_str());
  emit(args, spec, res.best_tree);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) return usage();
  if (args.bits < 2 || args.bits > 32) return usage();
  const ppg::MultiplierSpec spec{args.bits, args.ppg, args.mac};
  try {
    if (args.command == "generate") return cmd_generate(args, spec);
    if (args.command == "check") return cmd_check(args, spec);
    if (args.command == "report") return cmd_report(args, spec);
    if (args.command == "optimize") return cmd_optimize(args, spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
