// Command-line front end over the public API — the workflow a
// downstream user runs without writing C++:
//
//   rlmul_cli generate --bits 8 --ppg and --tree dadda --cpa ks -o mult.v
//   rlmul_cli optimize --bits 8 --ppg mbe --method a2c --steps 200 -o opt.v
//   rlmul_cli check    --bits 8 --ppg and --tree gomil
//   rlmul_cli report   --bits 16 --ppg and --tree wallace
//
// `generate` emits structural Verilog for a classic tree, `optimize`
// dispatches any method registered in the search layer (sa / dqn / a2c
// / gomil / wallace) and emits the best design, `check` runs the
// equivalence gate, `report` prints the synthesis trade-off table.
// Long searches can be capped (--budget), checkpointed (--checkpoint)
// and continued later (--resume) without losing trajectory fidelity.
//
// Cross-run persistence: `--dsdb DIR` journals every synthesized
// design point into a design-space database and serves repeat
// evaluations from it (a rerun of the same search synthesizes
// nothing); `--warm-start` additionally seeds the search from the
// stored designs. `dsdb-stats`, `dsdb-export-csv` and `dsdb-compact`
// inspect and maintain a database, and `list-methods` prints the
// search-method registry.

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>

#include "baselines/gomil.hpp"
#include "ct/compressor_tree.hpp"
#include "dsdb/store.hpp"
#include "netlist/verilog.hpp"
#include "pareto/pareto.hpp"
#include "ppg/ppg.hpp"
#include "search/checkpoint.hpp"
#include "search/driver.hpp"
#include "search/registry.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "sim/simulator.hpp"
#include "synth/evaluator.hpp"
#include "synth/synth.hpp"
#include "util/build_info.hpp"
#include "util/csv.hpp"
#include "util/perf_counters.hpp"
#include "util/rng.hpp"

namespace {

using namespace rlmul;

struct Args {
  std::string command;
  int bits = 8;
  ppg::PpgKind ppg = ppg::PpgKind::kAnd;
  bool mac = false;
  std::string tree = "wallace";
  std::string cpa = "rca";
  /// --cpa search / --ppg search: add the dimension to the optimize
  /// action space instead of fixing it up front.
  bool cpa_search = false;
  bool ppg_search = false;
  std::string method = "a2c";
  int steps = 150;
  std::uint64_t seed = 1;
  std::size_t budget = 0;
  std::string checkpoint;
  std::string resume;
  std::string output;
  std::string dsdb;
  bool warm_start = false;
  // -- serve / client subcommands --
  std::string socket;
  std::string state_dir;
  int max_active = 2;
  int max_queue = 16;
  int step_threads = 2;
  std::uint64_t client_budget = 0;
  std::size_t max_frame_bytes = 0;   ///< 0 = FrameParser default (1 MiB)
  std::size_t max_outbuf_bytes = 0;  ///< 0 = ServerOptions default (64 MiB)
  std::uint64_t job = 0;
  bool subscribe = false;
};

// Signal plumbing shared by `serve` (graceful drain) and
// `optimize --checkpoint` (final checkpoint before exit). Everything
// the handler does is async-signal-safe: a sig_atomic_t store plus
// Server::request_shutdown (atomic store + one pipe write).
volatile std::sig_atomic_t g_stop = 0;
std::atomic<serve::Server*> g_server{nullptr};

extern "C" void on_stop_signal(int) {
  g_stop = 1;
  serve::Server* server = g_server.load(std::memory_order_acquire);
  if (server != nullptr) server->request_shutdown();
}

void install_stop_handlers() {
  std::signal(SIGINT, on_stop_signal);
  std::signal(SIGTERM, on_stop_signal);
}

int usage() {
  std::fprintf(
      stderr,
      "usage: rlmul_cli <generate|optimize|check|report|list-methods|\n"
      "                  dsdb-stats|dsdb-export-csv|dsdb-compact|\n"
      "                  serve|submit|status|events|cancel|shutdown> [options]\n"
      "  --bits N        operand width (2..32, default 8)\n"
      "  --ppg KIND      and | mbe | bw (default and), or `search` to\n"
      "                  make the PPG family an optimize action dimension\n"
      "  --mac           merged multiply-accumulate\n"
      "  --tree NAME     wallace | dadda | gomil (default wallace)\n"
      "  --cpa KIND      rca | ks | bk | sk (default rca), or `search`\n"
      "                  to co-optimize the CPA prefix graph\n"
      "  --method NAME   sa | dqn | a2c | gomil | wallace\n"
      "                  (optimize; default a2c)\n"
      "  --steps N       search budget in steps (default 150)\n"
      "  --budget N      cap unique synthesis evaluations (default 0 = off)\n"
      "  --checkpoint F  save search state to F after the run\n"
      "  --resume F      continue the search saved in F (method comes\n"
      "                  from the checkpoint; --method is ignored)\n"
      "  --seed N        RNG seed (default 1)\n"
      "  --dsdb DIR      persistent design-space database: serve repeat\n"
      "                  evaluations from DIR and journal new ones into it\n"
      "  --warm-start    with --dsdb: seed the search from stored designs\n"
      "  -o FILE         write Verilog to FILE (optimize/generate) or the\n"
      "                  CSV to FILE (dsdb-export-csv)\n"
      "service (see docs/architecture.md \"Service layer\"):\n"
      "  serve --socket P [--state-dir D] [--dsdb D] [--max-active N]\n"
      "        [--max-queue N] [--step-threads N] [--client-budget N]\n"
      "        [--max-frame-bytes N] [--max-outbuf-bytes N]\n"
      "                  run the always-on optimization daemon on unix\n"
      "                  socket P; SIGTERM drains (checkpoint-on-drain)\n"
      "  submit --socket P [spec flags] [--subscribe]\n"
      "                  queue one optimize job; --subscribe streams its\n"
      "                  events (one JSON line each) until it finishes\n"
      "  status --socket P [--job N]   job status (or daemon stats)\n"
      "  events --socket P --job N     follow a job's event stream\n"
      "  cancel --socket P --job N     cancel at the next step boundary\n"
      "  shutdown --socket P           drain the daemon and exit it\n");
  return 2;
}

bool parse(int argc, char** argv, Args& args) {
  if (argc < 2) return false;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--bits") {
      const char* v = next();
      if (v == nullptr) return false;
      args.bits = std::atoi(v);
    } else if (flag == "--ppg") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "and") == 0) args.ppg = ppg::PpgKind::kAnd;
      else if (std::strcmp(v, "mbe") == 0) args.ppg = ppg::PpgKind::kBooth;
      else if (std::strcmp(v, "bw") == 0) args.ppg = ppg::PpgKind::kBaughWooley;
      else if (std::strcmp(v, "search") == 0) args.ppg_search = true;
      else return false;
    } else if (flag == "--mac") {
      args.mac = true;
    } else if (flag == "--tree") {
      const char* v = next();
      if (v == nullptr) return false;
      args.tree = v;
    } else if (flag == "--cpa") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "search") == 0) args.cpa_search = true;
      else args.cpa = v;
    } else if (flag == "--method") {
      const char* v = next();
      if (v == nullptr) return false;
      args.method = v;
    } else if (flag == "--steps") {
      const char* v = next();
      if (v == nullptr) return false;
      args.steps = std::atoi(v);
    } else if (flag == "--budget") {
      const char* v = next();
      if (v == nullptr) return false;
      args.budget = static_cast<std::size_t>(std::atoll(v));
    } else if (flag == "--checkpoint") {
      const char* v = next();
      if (v == nullptr) return false;
      args.checkpoint = v;
    } else if (flag == "--resume") {
      const char* v = next();
      if (v == nullptr) return false;
      args.resume = v;
    } else if (flag == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      args.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (flag == "--dsdb") {
      const char* v = next();
      if (v == nullptr) return false;
      args.dsdb = v;
    } else if (flag == "--warm-start") {
      args.warm_start = true;
    } else if (flag == "--socket") {
      const char* v = next();
      if (v == nullptr) return false;
      args.socket = v;
    } else if (flag == "--state-dir") {
      const char* v = next();
      if (v == nullptr) return false;
      args.state_dir = v;
    } else if (flag == "--max-active") {
      const char* v = next();
      if (v == nullptr) return false;
      args.max_active = std::atoi(v);
    } else if (flag == "--max-queue") {
      const char* v = next();
      if (v == nullptr) return false;
      args.max_queue = std::atoi(v);
    } else if (flag == "--step-threads") {
      const char* v = next();
      if (v == nullptr) return false;
      args.step_threads = std::atoi(v);
    } else if (flag == "--client-budget") {
      const char* v = next();
      if (v == nullptr) return false;
      args.client_budget = static_cast<std::uint64_t>(std::atoll(v));
    } else if (flag == "--max-frame-bytes") {
      const char* v = next();
      if (v == nullptr) return false;
      args.max_frame_bytes = static_cast<std::size_t>(std::atoll(v));
    } else if (flag == "--max-outbuf-bytes") {
      const char* v = next();
      if (v == nullptr) return false;
      args.max_outbuf_bytes = static_cast<std::size_t>(std::atoll(v));
    } else if (flag == "--job") {
      const char* v = next();
      if (v == nullptr) return false;
      args.job = static_cast<std::uint64_t>(std::atoll(v));
    } else if (flag == "--subscribe") {
      args.subscribe = true;
    } else if (flag == "-o") {
      const char* v = next();
      if (v == nullptr) return false;
      args.output = v;
    } else {
      return false;
    }
  }
  return true;
}

ct::CompressorTree named_tree(const ppg::MultiplierSpec& spec,
                              const std::string& name) {
  const auto heights = ppg::pp_heights(spec);
  if (name == "wallace") return ct::wallace_tree(heights);
  if (name == "dadda") return ct::dadda_tree(heights);
  if (name == "gomil") return baselines::gomil_tree(spec);
  throw std::runtime_error("unknown tree: " + name);
}

netlist::CpaKind cpa_of(const std::string& name) {
  netlist::CpaKind kind;
  if (!netlist::parse_cpa_kind(name, &kind)) {
    throw std::runtime_error("unknown cpa: " + name);
  }
  return kind;
}

void write_verilog(const Args& args, const netlist::Netlist& nl, int bits) {
  netlist::VerilogOptions vopts;
  vopts.module_name = "rlmul_" + std::to_string(bits) + "b";
  std::ofstream os(args.output);
  os << netlist::to_verilog(nl, vopts);
  std::printf("wrote %s (%d cells)\n", args.output.c_str(), nl.num_gates());
}

void emit(const Args& args, const ppg::MultiplierSpec& spec,
          const ct::CompressorTree& tree) {
  if (args.output.empty()) return;
  write_verilog(args, ppg::build_multiplier(spec, tree, cpa_of(args.cpa)),
                spec.bits);
}

/// Point-aware emission: a pinned CPA builds from its prefix graph, a
/// switched PPG family re-resolves the spec; plain points fall back to
/// the --cpa named architecture.
void emit(const Args& args, const ppg::MultiplierSpec& spec,
          const ppg::DesignPoint& point) {
  if (args.output.empty()) return;
  const ppg::MultiplierSpec rspec = point.resolved_spec(spec);
  const auto nl =
      point.cpa_pinned()
          ? ppg::build_multiplier(rspec, point.tree, point.cpa)
          : ppg::build_multiplier(rspec, point.tree, cpa_of(args.cpa));
  write_verilog(args, nl, rspec.bits);
}

int cmd_generate(const Args& args, const ppg::MultiplierSpec& spec) {
  const auto tree = named_tree(spec, args.tree);
  std::printf("%s\n", ct::to_string(tree).c_str());
  emit(args, spec, tree);
  return 0;
}

int cmd_check(const Args& args, const ppg::MultiplierSpec& spec) {
  const auto tree = named_tree(spec, args.tree);
  const auto nl = ppg::build_multiplier(spec, tree, cpa_of(args.cpa));
  util::Rng rng(args.seed);
  const auto rep = sim::check_equivalence(nl, spec, rng);
  std::printf("equivalence: %s (%llu vectors)\n",
              rep.equivalent ? "PASS" : "FAIL",
              static_cast<unsigned long long>(rep.vectors_checked));
  return rep.equivalent ? 0 : 1;
}

int cmd_report(const Args& args, const ppg::MultiplierSpec& spec) {
  const auto tree = named_tree(spec, args.tree);
  std::printf("%-12s %-10s %-10s %-10s %-5s\n", "target(ns)", "area(um2)",
              "delay(ns)", "power(mW)", "CPA");
  for (double target : synth::default_targets(spec, 6)) {
    const auto res = synth::synthesize_design(spec, tree, target);
    std::printf("%-12.3f %-10.1f %-10.4f %-10.3f %-5s\n", target,
                res.area_um2, res.delay_ns, res.power_mw,
                netlist::cpa_kind_name(res.cpa));
  }
  return 0;
}

int cmd_optimize(const Args& args, const ppg::MultiplierSpec& spec) {
  // The store is keyed by (spec, target set), so the target set must
  // exist before the evaluator: its constructor's Wallace reference
  // evaluation already goes through the binding.
  std::unique_ptr<dsdb::Store> store;
  std::unique_ptr<dsdb::EvaluatorBinding> binding;
  synth::EvaluatorOptions eopts;
  std::vector<double> targets;
  if (!args.dsdb.empty()) {
    targets = synth::default_targets(spec);
    store = std::make_unique<dsdb::Store>(args.dsdb);
    binding = std::make_unique<dsdb::EvaluatorBinding>(*store, spec, targets);
    eopts.external_cache = binding.get();
  }
  synth::DesignEvaluator evaluator(spec, targets, eopts);

  search::DriverOptions dopts;
  dopts.eda_budget = args.budget;
  search::WarmStartRecords warm;
  if (store != nullptr && args.warm_start) {
    warm = store->warm_start_records(spec, evaluator.targets());
    if (!warm.empty()) dopts.warm_start = &warm;
    std::printf("warm start: %zu stored designs\n", warm.size());
  }
  search::Driver driver(evaluator, dopts);

  std::string method_name = args.method;
  search::Checkpoint ckpt;
  const bool resuming = !args.resume.empty();
  if (resuming) {
    ckpt = search::Checkpoint::load_file(args.resume);
    method_name = ckpt.method;
  }

  search::MethodConfig cfg;
  cfg.steps = args.steps;
  cfg.seed = args.seed;
  cfg.search_cpa = args.cpa_search;
  cfg.search_ppg = args.ppg_search;
  // The A2C workers advance in lockstep, so give each worker
  // steps/threads environment steps: every method then consumes a
  // comparable wall-time budget for the same --steps value.
  if (method_name == "a2c") cfg.steps = std::max(1, args.steps / cfg.threads);
  auto method = search::make_method(method_name, cfg);

  // With --checkpoint the run is interruptible: SIGINT/SIGTERM stops
  // the loop at the next step boundary and the normal checkpoint write
  // below persists the state — the same drain path the serve daemon
  // uses, so `kill` loses no work.
  if (!args.checkpoint.empty()) install_stop_handlers();
  if (resuming) {
    driver.begin_resume(*method, ckpt);
  } else {
    driver.begin(*method);
  }
  while (g_stop == 0 && driver.step_once(*method)) {
  }
  const auto res = driver.finish(*method);
  if (g_stop != 0) {
    std::printf("interrupted: stopping at step %llu\n",
                static_cast<unsigned long long>(res.steps_done));
  }
  if (!args.checkpoint.empty()) {
    driver.make_checkpoint(*method).save_file(args.checkpoint);
    std::printf("checkpoint: %s (%llu steps done, %s)\n",
                args.checkpoint.c_str(),
                static_cast<unsigned long long>(res.steps_done),
                res.completed ? "search complete" : "resumable");
  }

  const auto wallace_eval = evaluator.evaluate(ppg::initial_tree(spec));
  const auto best_eval = evaluator.evaluate(res.best_point);
  std::printf("wallace: cost=%.4f  optimized: cost=%.4f  (%zu EDA calls)\n",
              evaluator.cost(wallace_eval, 1.0, 1.0),
              evaluator.cost(best_eval, 1.0, 1.0),
              evaluator.num_unique_evaluations());
  std::printf("%s\n", ct::to_string(res.best_tree).c_str());
  if (args.cpa_search || args.ppg_search) {
    const auto& bp = res.best_point;
    char cpa_key[32] = "menu";
    if (bp.cpa_pinned()) {
      std::snprintf(cpa_key, sizeof(cpa_key), "%016llx",
                    static_cast<unsigned long long>(
                        prefix::canonical_hash(bp.cpa)));
    }
    std::printf("best point: ppg=%s cpa=%s cpa_key=%s\n",
                ppg::ppg_kind_name(bp.ppg),
                bp.cpa_pinned()
                    ? netlist::cpa_kind_name(netlist::cpa_kind_of_graph(bp.cpa))
                    : args.cpa.c_str(),
                cpa_key);
  }
  std::printf("RLMUL_BUILD %s\n", util::build_info().c_str());
  // Machine-readable throughput counters (where the EDA budget went:
  // batch coalescing, netlist reuse, incremental vs full STA). Same
  // `RLMUL_COUNTERS ` prefix contract as the bench binaries.
  std::printf("RLMUL_COUNTERS %s\n", util::format_perf_counters().c_str());
  if (store != nullptr) {
    store->flush();
    const dsdb::Store::Stats st = store->stats();
    // Machine-readable summary (the dsdb smoke test's contract):
    // unique_synth is synthesis actually run this process — a warm
    // rerun of an identical search reports 0.
    char cpa_key[32] = "menu";
    if (res.best_point.cpa_pinned()) {
      std::snprintf(cpa_key, sizeof(cpa_key), "%016llx",
                    static_cast<unsigned long long>(
                        prefix::canonical_hash(res.best_point.cpa)));
    }
    std::printf("RLMUL_DSDB records=%zu hits=%llu misses=%llu appends=%llu "
                "unique_synth=%zu best_cost=%.17g ppg=%s cpa_key=%s\n",
                store->size(), static_cast<unsigned long long>(st.hits),
                static_cast<unsigned long long>(st.misses),
                static_cast<unsigned long long>(st.appends),
                evaluator.num_unique_evaluations(), res.best_cost,
                ppg::ppg_kind_name(res.best_point.ppg), cpa_key);
  }
  emit(args, spec, res.best_point);
  return 0;
}

// -- service subcommands ----------------------------------------------

serve::JobSpec job_spec_of(const Args& args) {
  serve::JobSpec spec;
  spec.bits = args.bits;
  spec.ppg = args.ppg == ppg::PpgKind::kAnd
                 ? "and"
                 : (args.ppg == ppg::PpgKind::kBooth ? "mbe" : "bw");
  spec.mac = args.mac;
  spec.method = args.method;
  spec.steps = args.steps;
  spec.seed = args.seed;
  spec.budget = args.budget;
  spec.cpa_search = args.cpa_search;
  spec.ppg_search = args.ppg_search;
  return spec;
}

bool event_is_final(const serve::json::Value& ev) {
  const serve::json::Value* type = ev.find("event");
  if (type == nullptr || type->as_string() != "state") return false;
  const serve::json::Value* state = ev.find("state");
  if (state == nullptr) return false;
  const std::string& s = state->as_string();
  return s == "done" || s == "failed" || s == "cancelled" || s == "drained";
}

/// Streams a job's events, one JSON document per line, until a
/// terminal/drained state event (or the server goes away).
int follow_events(serve::Client& client, std::uint64_t job) {
  for (;;) {
    serve::json::Value ev;
    try {
      if (!client.wait_event(&ev, 1000)) continue;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "event stream closed: %s\n", e.what());
      return 1;
    }
    if (const serve::json::Value* j = ev.find("job")) {
      if (j->as_u64() != job) continue;
    }
    std::printf("%s\n", ev.dump().c_str());
    std::fflush(stdout);
    if (event_is_final(ev)) return 0;
  }
}

int cmd_serve(const Args& args) {
  serve::ServerOptions sopts;
  sopts.socket_path = args.socket;
  sopts.scheduler.max_active = args.max_active;
  sopts.scheduler.max_queue = args.max_queue;
  sopts.scheduler.step_threads = args.step_threads;
  sopts.scheduler.client_budget = args.client_budget;
  sopts.scheduler.state_dir = args.state_dir;
  sopts.scheduler.dsdb_dir = args.dsdb;
  if (args.max_frame_bytes > 0) sopts.max_frame_bytes = args.max_frame_bytes;
  if (args.max_outbuf_bytes > 0) sopts.max_outbuf_bytes = args.max_outbuf_bytes;
  serve::Server server(sopts);
  g_server.store(&server, std::memory_order_release);
  install_stop_handlers();
  const std::size_t resumed = server.resume_persisted();
  if (resumed > 0) {
    std::printf("rlmul serve: resumed %zu drained job(s)\n", resumed);
  }
  // The smoke tests wait for this exact line before connecting.
  std::printf("rlmul serve: listening on %s\n", args.socket.c_str());
  std::fflush(stdout);
  server.run();
  g_server.store(nullptr, std::memory_order_release);
  std::printf("rlmul serve: drained, exiting\n");
  return 0;
}

int cmd_submit(const Args& args) {
  serve::Client client(args.socket);
  const std::uint64_t job = client.submit(job_spec_of(args), args.subscribe);
  std::printf("RLMUL_JOB %llu\n", static_cast<unsigned long long>(job));
  std::fflush(stdout);
  if (!args.subscribe) return 0;
  return follow_events(client, job);
}

int cmd_status(const Args& args) {
  serve::Client client(args.socket);
  const serve::json::Value v =
      args.job != 0 ? client.status(args.job) : client.stats();
  std::printf("%s\n", v.dump().c_str());
  return 0;
}

int cmd_events(const Args& args) {
  serve::Client client(args.socket);
  // Already-finished jobs emit nothing more; print the status instead
  // of waiting forever.
  const serve::json::Value st = client.status(args.job);
  const serve::json::Value* state = st.find("state");
  if (state != nullptr) {
    const std::string& s = state->as_string();
    if (s == "done" || s == "failed" || s == "cancelled" || s == "drained") {
      std::printf("%s\n", st.dump().c_str());
      return 0;
    }
  }
  client.subscribe(args.job);
  return follow_events(client, args.job);
}

int cmd_cancel(const Args& args) {
  serve::Client client(args.socket);
  client.cancel(args.job);
  std::printf("cancelled job %llu\n",
              static_cast<unsigned long long>(args.job));
  return 0;
}

int cmd_shutdown(const Args& args) {
  serve::Client client(args.socket);
  client.shutdown_server();
  std::printf("shutdown requested\n");
  return 0;
}

int cmd_list_methods() {
  for (const search::MethodInfo& info : search::method_infos()) {
    std::printf("%-10s %s\n", info.name.c_str(), info.description.c_str());
  }
  return 0;
}

std::string spec_label(const ppg::MultiplierSpec& spec) {
  std::string label = std::to_string(spec.bits) + "b ";
  label += ppg::ppg_kind_name(spec.ppg);
  if (spec.mac) label += " mac";
  return label;
}

int cmd_dsdb_stats(const Args& args) {
  dsdb::Store store(args.dsdb, {.read_only = true});
  const dsdb::Store::Stats st = store.stats();
  std::printf("dsdb: %s\n", store.dir().c_str());
  std::printf("  records:  %zu (%zu replayed, %zu undecodable)\n",
              store.size(), st.replayed, st.dropped);
  std::printf("  journal:  %llu bytes%s\n",
              static_cast<unsigned long long>(store.journal_bytes()),
              st.recovered_tail ? " (corrupt tail ignored)" : "");

  // Per-(spec, target-set) contract: record count plus the stored
  // Pareto quality (hypervolume against the group's worst corner).
  std::map<std::string, std::vector<dsdb::Record>> groups;
  for (dsdb::Record& rec : store.all_records()) {
    std::string key = spec_label(rec.spec);
    key += " (" + std::to_string(rec.targets.size()) + " targets)";
    groups[key].push_back(std::move(rec));
  }
  for (const auto& [label, recs] : groups) {
    pareto::Front front;
    double ref_x = 0.0;
    double ref_y = 0.0;
    for (const dsdb::Record& rec : recs) {
      for (const synth::SynthesisResult& res : rec.eval.per_target) {
        front.insert(pareto::Point{res.area_um2, res.delay_ns, 0});
        ref_x = std::max(ref_x, res.area_um2);
        ref_y = std::max(ref_y, res.delay_ns);
      }
    }
    std::printf("  %-24s %6zu records, front %zu, hypervolume %.1f\n",
                label.c_str(), recs.size(), front.size(),
                pareto::hypervolume(front.points(), ref_x * 1.05,
                                    ref_y * 1.05));
  }
  return 0;
}

int cmd_dsdb_export_csv(const Args& args) {
  if (args.output.empty()) {
    std::fprintf(stderr, "dsdb-export-csv requires -o FILE\n");
    return 2;
  }
  dsdb::Store store(args.dsdb, {.read_only = true});
  util::CsvWriter csv(args.output);
  csv.row({"bits", "ppg", "mac", "tree", "target_ns", "area_um2", "delay_ns",
           "power_mw", "met_target", "cpa", "cpa_key", "num_gates"});
  std::size_t rows = 0;
  for (const dsdb::Record& rec : store.all_records()) {
    // Pinned records carry the searched prefix graph; the canonical
    // hash (the same 16-hex token the cache keys use) identifies it
    // across exports. Menu records leave the column empty.
    std::string cpa_key;
    if (rec.cpa.width != 0) {
      char buf[17];
      std::snprintf(buf, sizeof(buf), "%016llx",
                    static_cast<unsigned long long>(
                        prefix::canonical_hash(rec.cpa)));
      cpa_key = buf;
    }
    for (std::size_t i = 0; i < rec.eval.per_target.size(); ++i) {
      const synth::SynthesisResult& res = rec.eval.per_target[i];
      const double target = i < rec.targets.size() ? rec.targets[i] : 0.0;
      csv.begin_row()
          .add(rec.spec.bits)
          .add(std::string(ppg::ppg_kind_name(rec.spec.ppg)))
          .add(rec.spec.mac ? 1 : 0)
          .add(rec.tree.key())
          .add(target)
          .add(res.area_um2)
          .add(res.delay_ns)
          .add(res.power_mw)
          .add(res.met_target ? 1 : 0)
          .add(std::string(netlist::cpa_kind_name(res.cpa)))
          .add(cpa_key)
          .add(res.num_gates);
      ++rows;
    }
  }
  std::printf("wrote %s (%zu rows, %zu records)\n", args.output.c_str(), rows,
              store.size());
  return 0;
}

int cmd_dsdb_compact(const Args& args) {
  dsdb::Store store(args.dsdb);
  const std::uint64_t before = store.journal_bytes();
  const std::uint64_t reclaimed = store.compact();
  std::printf("compacted %s: %llu -> %llu bytes (%llu reclaimed, "
              "%zu records)\n",
              store.dir().c_str(), static_cast<unsigned long long>(before),
              static_cast<unsigned long long>(store.journal_bytes()),
              static_cast<unsigned long long>(reclaimed), store.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) return usage();
  if (args.bits < 2 || args.bits > 32) return usage();
  const ppg::MultiplierSpec spec{args.bits, args.ppg, args.mac};
  try {
    if (args.command == "generate") return cmd_generate(args, spec);
    if (args.command == "check") return cmd_check(args, spec);
    if (args.command == "report") return cmd_report(args, spec);
    if (args.command == "optimize") return cmd_optimize(args, spec);
    if (args.command == "list-methods" || args.command == "--list-methods") {
      return cmd_list_methods();
    }
    if (args.command == "serve" || args.command == "submit" ||
        args.command == "status" || args.command == "events" ||
        args.command == "cancel" || args.command == "shutdown") {
      if (args.socket.empty()) {
        std::fprintf(stderr, "%s requires --socket PATH\n",
                     args.command.c_str());
        return 2;
      }
      if ((args.command == "events" || args.command == "cancel") &&
          args.job == 0) {
        std::fprintf(stderr, "%s requires --job N\n", args.command.c_str());
        return 2;
      }
      if (args.command == "serve") return cmd_serve(args);
      if (args.command == "submit") return cmd_submit(args);
      if (args.command == "status") return cmd_status(args);
      if (args.command == "events") return cmd_events(args);
      if (args.command == "cancel") return cmd_cancel(args);
      return cmd_shutdown(args);
    }
    if (args.command == "dsdb-stats" || args.command == "dsdb-export-csv" ||
        args.command == "dsdb-compact") {
      if (args.dsdb.empty()) {
        std::fprintf(stderr, "%s requires --dsdb DIR\n",
                     args.command.c_str());
        return 2;
      }
      if (args.command == "dsdb-stats") return cmd_dsdb_stats(args);
      if (args.command == "dsdb-export-csv") return cmd_dsdb_export_csv(args);
      return cmd_dsdb_compact(args);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
