// Quickstart: build an 8-bit multiplier from a Wallace compressor tree,
// verify it against the golden model (the ABC-cec stand-in), synthesize
// it under a few delay constraints and print the PPA trade-off.
//
//   ./examples/quickstart

#include <cstdio>

#include "ct/compressor_tree.hpp"
#include "ppg/ppg.hpp"
#include "sim/simulator.hpp"
#include "synth/synth.hpp"
#include "util/rng.hpp"

int main() {
  using namespace rlmul;

  // 1. Pick a design point: 8-bit, AND-based partial products.
  const ppg::MultiplierSpec spec{8, ppg::PpgKind::kAnd, false};

  // 2. Start from the classic Wallace tree (the paper's initial state).
  const ct::CompressorTree tree = ppg::initial_tree(spec);
  std::printf("Wallace tree for %d-bit %s multiplier:\n%s\n", spec.bits,
              ppg::ppg_kind_name(spec.ppg), ct::to_string(tree).c_str());

  // 3. Emit the gate-level netlist (PPG + CT + ripple CPA).
  const auto nl = ppg::build_multiplier(spec, tree,
                                        netlist::CpaKind::kRippleCarry);
  std::printf("netlist: %d gates, %d nets\n", nl.num_gates(), nl.num_nets());

  // 4. Check functional equivalence against a*b (exhaustively).
  util::Rng rng(1);
  const auto cec = sim::check_equivalence(nl, spec, rng);
  std::printf("equivalence: %s (%llu vectors)\n",
              cec.equivalent ? "PASS" : "FAIL",
              static_cast<unsigned long long>(cec.vectors_checked));
  if (!cec.equivalent) return 1;

  // 5. Synthesize under a few delay targets and watch area trade
  //    against delay (the paper's reward signal).
  std::printf("\n%-12s %-10s %-10s %-10s %-6s\n", "target(ns)", "area(um2)",
              "delay(ns)", "power(mW)", "CPA");
  for (double target : {0.4, 0.6, 0.8, 1.2, 2.0}) {
    const auto res = synth::synthesize_design(spec, tree, target);
    std::printf("%-12.2f %-10.1f %-10.4f %-10.3f %-6s\n", target,
                res.area_um2, res.delay_ns, res.power_mw,
                res.cpa == netlist::CpaKind::kKoggeStone ? "KS" : "RCA");
  }
  return 0;
}
