// Survey the classic compressor-tree constructions (Wallace, Dadda,
// GOMIL-optimal) across operand widths and PPG kinds: compressor
// budgets, stage depth, and synthesized PPA at a relaxed and a tight
// delay target. A good way to explore the substrate without running
// any learning.
//
//   ./examples/explore_baselines

#include <cstdio>

#include "baselines/gomil.hpp"
#include "ct/compressor_tree.hpp"
#include "ppg/ppg.hpp"
#include "synth/synth.hpp"

int main() {
  using namespace rlmul;

  std::printf("%-6s %-5s %-8s %-4s %-4s %-3s %-12s %-12s\n", "bits", "ppg",
              "tree", "FA", "HA", "st", "relaxed", "tight");
  std::printf("%-6s %-5s %-8s %-4s %-4s %-3s %-12s %-12s\n", "", "", "", "",
              "", "", "area/delay", "area/delay");

  for (int bits : {8, 16}) {
    for (const auto ppg_kind : {ppg::PpgKind::kAnd, ppg::PpgKind::kBooth}) {
      const ppg::MultiplierSpec spec{bits, ppg_kind, false};
      const auto heights = ppg::pp_heights(spec);

      struct Entry {
        const char* name;
        ct::CompressorTree tree;
      };
      const Entry entries[] = {
          {"wallace", ct::wallace_tree(heights)},
          {"dadda", ct::dadda_tree(heights)},
          {"gomil", baselines::gomil_tree(spec)},
      };
      for (const Entry& e : entries) {
        const auto relaxed = synth::synthesize_design(spec, e.tree, 1e9);
        const auto tight = synth::synthesize_design(spec, e.tree, 0.01);
        std::printf(
            "%-6d %-5s %-8s %-4d %-4d %-3d %6.0f/%-6.3f %6.0f/%-6.3f\n",
            bits, ppg::ppg_kind_name(ppg_kind), e.name, e.tree.total_c32(),
            e.tree.total_c22(), ct::stage_count(e.tree), relaxed.area_um2,
            relaxed.delay_ns, tight.area_um2, tight.delay_ns);
      }
    }
  }
  return 0;
}
