// Design a merged multiply-accumulator (Section III-C) and deploy it in
// a systolic PE array (the paper's Section V macro benchmark): optimize
// the MAC's compressor tree with simulated annealing (fast) and with
// RL-MUL (DQN), then compare PE-array PPA for the Wallace vs optimized
// MACs.
//
//   RLMUL_STEPS=150 ./examples/design_mac_pe

#include <cstdio>

#include "baselines/sa.hpp"
#include "pe/pe_array.hpp"
#include "ppg/ppg.hpp"
#include "rl/dqn.hpp"
#include "synth/evaluator.hpp"
#include "util/config.hpp"

int main() {
  using namespace rlmul;

  const ppg::MultiplierSpec spec{8, ppg::PpgKind::kAnd, true};  // merged MAC
  synth::DesignEvaluator evaluator(spec);
  const int steps = static_cast<int>(util::env_long("RLMUL_STEPS", 100));

  const ct::CompressorTree wallace = ppg::initial_tree(spec);

  baselines::SaOptions sa_opts;
  sa_opts.steps = steps;
  sa_opts.seed = 5;
  const auto sa = baselines::simulated_annealing(evaluator, sa_opts);

  rl::DqnOptions dqn_opts;
  dqn_opts.steps = steps;
  dqn_opts.seed = 5;
  const auto dqn = rl::train_dqn(evaluator, dqn_opts);

  std::printf("MAC compressor trees (8-bit, AND PPG, merged accumulate):\n");
  auto mac_row = [&](const char* name, const ct::CompressorTree& tree) {
    const auto eval = evaluator.evaluate(tree);
    std::printf("  %-8s cost=%.4f sum_area=%.0f sum_delay=%.3f\n", name,
                evaluator.cost(eval, 1.0, 1.0), eval.sum_area,
                eval.sum_delay);
  };
  mac_row("Wallace", wallace);
  mac_row("SA", sa.best_tree);
  mac_row("RL-MUL", dqn.best_tree);

  // Deploy into a 16x16 systolic array at two clock targets.
  std::printf("\n16x16 PE array (MAC-implemented):\n");
  std::printf("  %-8s %-10s %-12s %-10s %-9s\n", "design", "clock(ns)",
              "area(um2)", "delay(ns)", "power(mW)");
  for (double clock : {2.0, 1.0}) {
    for (const auto& [name, tree] :
         {std::pair<const char*, const ct::CompressorTree&>{"Wallace",
                                                            wallace},
          {"SA", sa.best_tree},
          {"RL-MUL", dqn.best_tree}}) {
      const auto res = pe::synthesize_pe_array(spec, tree, clock);
      std::printf("  %-8s %-10.2f %-12.0f %-10.4f %-9.1f\n", name, clock,
                  res.area_um2, res.delay_ns, res.power_mw);
    }
  }
  return 0;
}
