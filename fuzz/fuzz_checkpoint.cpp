// Fuzzes search::Checkpoint::decode, the resume loader that must
// survive arbitrary torn/corrupt checkpoint files. Invariants:
//
//   * garbage is rejected with std::runtime_error — no other exception
//     type, no UB (allocation bombs in the count fields abort under
//     the driver's sanitizers rather than OOM-killing the box);
//   * anything decode accepts reaches the encode fixpoint:
//     encode(decode(x)) decodes again and re-encodes byte-identically
//     (the first encode may differ from the input — v1 checkpoints
//     upgrade to v2 — but from then on the codec must be stable).

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "fuzz_common.hpp"
#include "search/checkpoint.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using rlmul::search::Checkpoint;
  const std::vector<std::uint8_t> blob(data, data + size);
  Checkpoint c;
  try {
    c = Checkpoint::decode(blob);
  } catch (const std::runtime_error&) {
    return 0;  // rejected cleanly
  }
  const std::vector<std::uint8_t> e1 = c.encode();
  Checkpoint c2;
  try {
    c2 = Checkpoint::decode(e1);
  } catch (const std::runtime_error&) {
    RLMUL_FUZZ_ASSERT(false, "encode() produced an undecodable checkpoint");
  }
  RLMUL_FUZZ_ASSERT(c2.encode() == e1,
                    "checkpoint decode/encode is not a fixpoint");
  return 0;
}
