// Deterministic seed-corpus generator: writes the committed corpus
// under fuzz/corpus/<harness>/ from real protocol, journal and
// checkpoint traffic (the encoders under test, not hand-hexed bytes),
// so the seeds track the wire formats as they evolve. File names are
// the FNV-1a hash of the content — content-addressed, so regeneration
// is idempotent and diffs are meaningful.
//
//   ./rlmul_gen_corpus <repo>/fuzz/corpus
//
// Run manually when a format changes; the outputs are committed.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ct/compressor_tree.hpp"
#include "dsdb/journal.hpp"
#include "dsdb/store.hpp"
#include "ppg/ppg.hpp"
#include "prefix/prefix_graph.hpp"
#include "search/checkpoint.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "util/framing.hpp"

namespace {

namespace fs = std::filesystem;
using rlmul::serve::json::Value;

std::uint64_t fnv1a(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

void write_seed(const fs::path& dir, const std::vector<std::uint8_t>& bytes) {
  fs::create_directories(dir);
  char name[32];
  std::snprintf(name, sizeof(name), "seed-%016llx",
                static_cast<unsigned long long>(fnv1a(bytes)));
  std::ofstream os(dir / name, std::ios::binary);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
}

void write_seed(const fs::path& dir, const std::string& text) {
  write_seed(dir, std::vector<std::uint8_t>(text.begin(), text.end()));
}

std::vector<std::uint8_t> bytes_of(std::initializer_list<int> xs) {
  std::vector<std::uint8_t> out;
  for (int x : xs) out.push_back(static_cast<std::uint8_t>(x));
  return out;
}

void append(std::vector<std::uint8_t>& out,
            const std::vector<std::uint8_t>& more) {
  out.insert(out.end(), more.begin(), more.end());
}

// -- real protocol documents -------------------------------------------------

std::string submit_doc() {
  rlmul::serve::JobSpec spec;
  spec.bits = 4;
  spec.method = "sa";
  spec.steps = 2;
  spec.budget = 1;
  Value req = Value::object();
  req["op"] = std::string("submit");
  req["id"] = std::uint64_t{1};
  req["spec"] = rlmul::serve::to_json(spec);
  req["subscribe"] = true;
  return req.dump();
}

std::string op_doc(const char* op, bool with_job) {
  Value req = Value::object();
  req["op"] = std::string(op);
  if (with_job) req["job"] = std::uint64_t{1};
  return req.dump();
}

std::vector<std::uint8_t> framed(std::initializer_list<std::string> docs) {
  std::vector<std::uint8_t> wire;
  for (const std::string& doc : docs) rlmul::util::append_frame(wire, doc);
  return wire;
}

// -- per-harness corpora -----------------------------------------------------

void gen_frame_parser(const fs::path& dir) {
  // Leading byte = chunk size selector (see fuzz_frame_parser.cpp).
  for (int chunk : {0x00, 0x02, 0x3F}) {
    std::vector<std::uint8_t> seed = bytes_of({chunk});
    append(seed, framed({op_doc("ping", false), submit_doc()}));
    write_seed(dir, seed);
  }
  // Oversized declared length: poisons at the header.
  std::vector<std::uint8_t> poison = bytes_of({0x01, 0xFF, 0xFF, 0xFF, 0x7F});
  poison.push_back(0x41);
  write_seed(dir, poison);
  // Torn frame: header promises more than arrives.
  std::vector<std::uint8_t> torn = bytes_of({0x05, 0x10, 0x00, 0x00, 0x00});
  torn.push_back(0x7B);
  write_seed(dir, torn);
}

void gen_json(const fs::path& dir) {
  write_seed(dir, submit_doc());
  write_seed(dir, op_doc("stats", false));
  write_seed(dir, std::string("{\"a\":[1,2.5,-3e-2,true,false,null]}"));
  // Numeric edges: huge magnitude, denormal, negative zero, overflow.
  write_seed(dir, std::string("[1e308,5e-324,-0.0,9007199254740993]"));
  write_seed(dir, std::string("[1e999]"));
  write_seed(dir, std::string("\"\\u0041\\\\\\n\\t\\\"\""));
  // Deep nesting just inside the depth limit.
  std::string deep;
  for (int i = 0; i < 63; ++i) deep += '[';
  deep += "0";
  for (int i = 0; i < 63; ++i) deep += ']';
  write_seed(dir, deep);
  write_seed(dir, std::string("{\"unterminated\":"));
}

void gen_protocol(const fs::path& dir) {
  write_seed(dir, framed({op_doc("ping", false), op_doc("stats", false)}));
  write_seed(dir, framed({submit_doc(), op_doc("status", true),
                          op_doc("events", true), op_doc("cancel", true)}));
  write_seed(dir, framed({op_doc("list", false), op_doc("shutdown", false),
                          op_doc("bogus-op", false)}));
  write_seed(dir, framed({std::string("not json at all")}));
  write_seed(dir, framed({std::string("{\"op\":42}")}));
}

rlmul::dsdb::Record real_record() {
  rlmul::dsdb::Record rec;
  rec.spec.bits = 4;
  rec.targets = {0.0, 1.5};
  rec.tree.pp = {1, 2, 3, 2, 1};
  rlmul::synth::SynthesisResult res;
  res.area_um2 = 10.5;
  res.delay_ns = 0.7;
  res.power_mw = 0.01;
  res.met_target = true;
  res.num_gates = 42;
  rec.eval.per_target = {res, res};
  rec.eval.sum_area = 21.0;
  rec.eval.sum_delay = 1.4;
  rec.eval.sum_power = 0.02;
  return rec;
}

void gen_dsdb_journal(const fs::path& dir) {
  // Harness input layout: [k][len][payload]...[tail]; the tail is
  // appended to the wire verbatim, so real journal frames go there.
  const std::vector<std::uint8_t> payload =
      rlmul::dsdb::encode_record(real_record());

  std::vector<std::uint8_t> with_record = bytes_of({0x01, 0x03, 'a', 'b', 'c'});
  std::vector<std::uint8_t> tail;
  rlmul::dsdb::append_frame(tail, payload);
  append(with_record, tail);
  write_seed(dir, with_record);

  // Corrupt CRC in the tail: replay must stop there, keep the prefix.
  std::vector<std::uint8_t> bad_crc = bytes_of({0x02, 0x01, 'x', 0x01, 'y'});
  std::vector<std::uint8_t> frame;
  rlmul::dsdb::append_frame(frame, payload);
  frame[5] ^= 0xFF;  // flip a CRC byte
  append(bad_crc, frame);
  write_seed(dir, bad_crc);

  // Torn tail frame.
  std::vector<std::uint8_t> torn = bytes_of({0x01, 0x02, 'h', 'i'});
  frame.clear();
  rlmul::dsdb::append_frame(frame, payload);
  frame.resize(frame.size() / 2);
  append(torn, frame);
  write_seed(dir, torn);

  // No committed frames, pure garbage tail.
  std::vector<std::uint8_t> garbage = bytes_of({0x00});
  for (int i = 0; i < 64; ++i) {
    garbage.push_back(static_cast<std::uint8_t>(i * 37 + 11));
  }
  write_seed(dir, garbage);
}

void gen_checkpoint(const fs::path& dir) {
  rlmul::search::Checkpoint c;
  c.method = "sa";
  c.steps_done = 7;
  c.eda_consumed = 3;
  c.best_tree.pp = {1, 2, 3, 2, 1};
  c.best_cost = 0.125;
  c.trajectory = {1.0, 0.5, 0.25};
  c.best_trajectory = {1.0, 0.5};
  c.method_state = {0xDE, 0xAD, 0xBE, 0xEF};
  c.best_point.ppg = rlmul::ppg::PpgKind::kAnd;
  c.best_point.tree = c.best_tree;
  c.best_point.cpa = rlmul::prefix::brent_kung(8);
  c.has_best_point = true;

  const std::vector<std::uint8_t> full = c.encode();
  write_seed(dir, full);
  // Truncations at interesting offsets: header, mid-string, mid-graph.
  for (std::size_t cut :
       {std::size_t{4}, std::size_t{12}, full.size() / 2, full.size() - 3}) {
    write_seed(dir, std::vector<std::uint8_t>(full.begin(),
                                              full.begin() + cut));
  }
  // One corrupted count byte deep in the blob.
  std::vector<std::uint8_t> corrupt = full;
  corrupt[full.size() / 3] ^= 0xFF;
  write_seed(dir, corrupt);
}

void gen_prefix_legalize(const fs::path& dir) {
  // Harness layout: [width-1][rows][cell bytes...].
  for (int width : {8, 16, 32}) {
    const rlmul::prefix::Matrix m =
        rlmul::prefix::matrix_of(rlmul::prefix::brent_kung(width));
    std::vector<std::uint8_t> seed =
        bytes_of({width - 1, m.rows});
    for (std::uint8_t cell : m.cells) seed.push_back(cell ? 1 : 0);
    write_seed(dir, seed);
  }
  // Degenerate: width 1, no rows.
  write_seed(dir, bytes_of({0x00, 0x00}));
  // Dense random-ish 8-wide matrix.
  std::vector<std::uint8_t> dense = bytes_of({0x07, 0x06});
  for (int i = 0; i < 48; ++i) dense.push_back((i * 7 + 3) % 3 == 0);
  write_seed(dir, dense);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <fuzz/corpus root>\n", argv[0]);
    return 2;
  }
  const fs::path root = argv[1];
  gen_frame_parser(root / "fuzz_frame_parser");
  gen_json(root / "fuzz_json");
  gen_protocol(root / "fuzz_protocol");
  gen_dsdb_journal(root / "fuzz_dsdb_journal");
  gen_checkpoint(root / "fuzz_checkpoint");
  gen_prefix_legalize(root / "fuzz_prefix_legalize");
  std::printf("corpus written under %s\n", root.c_str());
  return 0;
}
