// Fuzzes prefix::legalize, the repair pass that turns arbitrary
// occupancy matrices (RL action decodes, dsdb records, checkpoint
// graphs) into prefix graphs. Invariants, per the prefix_graph.hpp
// contract:
//
//   * legalize always yields a structurally valid graph;
//   * the repaired matrix is a fixed point: legalizing it again
//     reproduces the same matrix and a canonically equal graph;
//   * repeated legalize(matrix_of(·)) round trips reach a canonical
//     fixed point within a few iterations (no oscillation).
//
// The matrix form is documented-lossy for arbitrary graphs (operators
// sharing (level, hi) collide; re-levelling merges rows), so the
// round trip is NOT asserted to reproduce g itself — fuzzing found a
// counterexample (corpus: regression-matrix-roundtrip-lossy) and the
// matrix_of contract was reworded to match. Fuzzing also showed one
// round trip is not yet a fixed point (completion operators re-level
// on the next trip; corpus: regression-matrix-roundtrip-two-step), so
// the invariant the env/SA stepping paths actually need — and the one
// checked here — is bounded convergence: the trajectory of designs
// cannot oscillate under the project-and-repair each step performs.

#include <cstdint>
#include <string>

#include "fuzz_common.hpp"
#include "prefix/prefix_graph.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  namespace prefix = rlmul::prefix;
  rlmul::fuzz::ByteReader in(data, size);

  prefix::Matrix m;
  m.width = 1 + (in.u8() % 32);
  m.rows = in.u8() % 24;
  m.cells.resize(static_cast<std::size_t>(m.width) *
                 static_cast<std::size_t>(m.rows));
  for (std::uint8_t& cell : m.cells) cell = in.u8() & 1;

  const prefix::Legalized l1 = prefix::legalize(m);
  std::string why;
  RLMUL_FUZZ_ASSERT(prefix::valid(l1.graph, &why),
                    "legalize produced an invalid graph");
  RLMUL_FUZZ_ASSERT(l1.graph.width == m.width, "legalize changed the width");

  const prefix::Legalized l2 = prefix::legalize(l1.matrix);
  RLMUL_FUZZ_ASSERT(l2.matrix == l1.matrix,
                    "legalized matrix is not a fixed point");
  RLMUL_FUZZ_ASSERT(prefix::canonicalize(l2.graph) ==
                        prefix::canonicalize(l1.graph),
                    "re-legalization changed the canonical graph");

  prefix::PrefixGraph g = l1.graph;
  std::string key = prefix::canonical_key(g);
  bool converged = false;
  for (int round = 0; round < 8 && !converged; ++round) {
    const prefix::Legalized lr = prefix::legalize(prefix::matrix_of(g));
    RLMUL_FUZZ_ASSERT(prefix::valid(lr.graph, &why),
                      "matrix_of round-trip produced an invalid graph");
    RLMUL_FUZZ_ASSERT(lr.graph.width == m.width,
                      "matrix_of round-trip changed the width");
    std::string next_key = prefix::canonical_key(lr.graph);
    converged = next_key == key;
    g = lr.graph;
    key = std::move(next_key);
  }
  RLMUL_FUZZ_ASSERT(converged,
                    "legalize(matrix_of()) round trips did not converge");
  return 0;
}
