// Fuzzes util::FrameParser, the first decoder every byte from a serve
// connection meets. Invariants checked per input:
//
//   * no extracted frame ever exceeds max_frame;
//   * poisoning is sticky — once next() throws, it throws forever;
//   * re-chunking the same byte stream (chunk sizes derived from the
//     input's first byte) yields the identical frame sequence and the
//     identical poison verdict;
//   * a healthy parser never buffers more than one whole frame of
//     unconsumed input once next() is drained.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "fuzz_common.hpp"
#include "util/framing.hpp"

namespace {

constexpr std::size_t kMaxFrame = 4096;

struct ParseOutcome {
  std::vector<std::string> frames;
  bool poisoned = false;
};

ParseOutcome run_chunked(const std::uint8_t* data, std::size_t size,
                         std::size_t chunk) {
  ParseOutcome out;
  rlmul::util::FrameParser parser(kMaxFrame);
  std::string frame;
  for (std::size_t pos = 0; pos < size && !out.poisoned; pos += chunk) {
    const std::size_t n = chunk < size - pos ? chunk : size - pos;
    try {
      parser.feed(data + pos, n);
      while (parser.next(&frame)) {
        RLMUL_FUZZ_ASSERT(frame.size() <= kMaxFrame,
                          "frame exceeds max_frame");
        out.frames.push_back(frame);
      }
    } catch (const std::runtime_error&) {
      out.poisoned = true;
    }
  }
  if (out.poisoned) {
    // Sticky poison: the parser must keep refusing, not resynchronize.
    bool threw = false;
    try {
      parser.next(&frame);
    } catch (const std::runtime_error&) {
      threw = true;
    }
    RLMUL_FUZZ_ASSERT(threw, "poisoned parser accepted next()");
  } else {
    // Drained parser holds at most one torn frame: 4-byte header plus
    // an accepted (<= kMaxFrame) declared length, minus nothing.
    RLMUL_FUZZ_ASSERT(parser.buffered() < 4 + kMaxFrame,
                      "healthy parser buffers more than one frame");
  }
  return out;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  // First byte picks the re-chunking; the rest is the wire stream.
  const std::size_t chunk = 1 + (data[0] & 0x3F);
  const std::uint8_t* wire = data + 1;
  const std::size_t wire_size = size - 1;

  const ParseOutcome one_shot = run_chunked(wire, wire_size, wire_size + 1);
  const ParseOutcome rechunked = run_chunked(wire, wire_size, chunk);

  RLMUL_FUZZ_ASSERT(one_shot.poisoned == rechunked.poisoned,
                    "chunking changed the poison verdict");
  // feed() never throws and next() rejects at the 4-byte header, so
  // both parses extract exactly the frames preceding the first bad
  // header — the sequences must match even on poisoned streams.
  const std::vector<std::string>& a = one_shot.frames;
  const std::vector<std::string>& b = rechunked.frames;
  RLMUL_FUZZ_ASSERT(a.size() == b.size(), "chunking changed the frame count");
  for (std::size_t i = 0; i < a.size(); ++i) {
    RLMUL_FUZZ_ASSERT(a[i] == b[i], "chunking changed a frame payload");
  }
  return 0;
}
