#pragma once
// Shared helpers for the fuzz harnesses. Each harness is one
// translation unit exporting LLVMFuzzerTestOneInput; it links either
// the libFuzzer runtime (Clang, -fsanitize=fuzzer) or
// fuzz/driver_main.cpp (any compiler, corpus replay) — see
// cmake/Fuzzing.cmake.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

// Invariant check that survives NDEBUG (assert() would vanish in the
// RelWithDebInfo CI lanes) and aborts so both libFuzzer and the replay
// driver report the input as a crash.
#define RLMUL_FUZZ_ASSERT(cond, msg)                                       \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "FUZZ INVARIANT FAILED: %s (%s:%d)\n", (msg),   \
                   __FILE__, __LINE__);                                    \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

namespace rlmul::fuzz {

/// Consumes structured values off the front of the fuzz input; reads
/// past the end yield zeros (total functions keep the harness focused
/// on the code under test, not on its own bounds handling).
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() { return pos_ < size_ ? data_[pos_++] : 0; }

  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }

  /// Up to `n` raw bytes (fewer near the end of the input).
  std::string take(std::size_t n) {
    const std::size_t got = n < size_ - pos_ ? n : size_ - pos_;
    std::string out(reinterpret_cast<const char*>(data_ + pos_), got);
    pos_ += got;
    return out;
  }

  const std::uint8_t* rest() const { return data_ + pos_; }
  std::size_t remaining() const { return size_ - pos_; }
  bool empty() const { return pos_ >= size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace rlmul::fuzz
