// Fuzzes the serve protocol surface end to end: raw bytes are framed
// exactly like Server::handle_readable does, and every payload goes
// through serve::handle_frame_payload — the same dispatcher the
// production poll loop calls — into a live in-process Scheduler.
// Invariants:
//
//   * dispatch never throws and returns exactly one response per
//     framed request, always an object with an "ok" bool;
//   * no budget-accounting drift: a client's used budget never exceeds
//     the configured cap, no matter what submit/cancel interleavings
//     the input encodes;
//   * the scheduler never runs more than max_active jobs.
//
// The scheduler persists across inputs (jobs are cancelled after each
// one) so the fuzzer also explores stateful sequences: budget
// exhaustion, cancel-after-terminal, resubmit storms.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "fuzz_common.hpp"
#include "serve/json.hpp"
#include "serve/request_handler.hpp"
#include "serve/scheduler.hpp"
#include "util/framing.hpp"

namespace {

using rlmul::serve::json::Value;

constexpr std::uint64_t kClientBudget = 6;
constexpr int kMaxActive = 1;

rlmul::serve::Scheduler& scheduler() {
  // Static pointer: reachable at exit, so LeakSanitizer stays quiet,
  // and the step pool is never torn down mid-run.
  static rlmul::serve::Scheduler* sched = [] {
    rlmul::serve::SchedulerOptions opts;
    opts.max_active = kMaxActive;
    opts.max_queue = 2;
    opts.step_threads = 1;
    opts.client_budget = kClientBudget;  // bounds total synthesis work
    return new rlmul::serve::Scheduler(
        opts, [](std::uint64_t, const Value&) {});
  }();
  return *sched;
}

void check_response(const Value& resp) {
  RLMUL_FUZZ_ASSERT(resp.is_object(), "response is not an object");
  const Value* ok = resp.find("ok");
  RLMUL_FUZZ_ASSERT(ok != nullptr && ok->is_bool(),
                    "response lacks an \"ok\" bool");
}

void check_scheduler_invariants(rlmul::serve::Scheduler& sched,
                                std::uint64_t client_id) {
  RLMUL_FUZZ_ASSERT(sched.client_budget_used(client_id) <= kClientBudget,
                    "client budget drifted past the cap");
  RLMUL_FUZZ_ASSERT(sched.stats().active <=
                        static_cast<std::size_t>(kMaxActive),
                    "more active jobs than max_active");
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  rlmul::serve::Scheduler& sched = scheduler();
  rlmul::serve::RequestHooks hooks;
  std::vector<std::uint64_t> subscriptions;
  hooks.subscribe = [&subscriptions](std::uint64_t job, std::uint64_t) {
    subscriptions.push_back(job);
  };
  hooks.connection_count = []() -> std::uint64_t { return 1; };
  // hooks.shutdown stays null: the "shutdown" op must still answer ok.

  rlmul::util::FrameParser parser(1u << 16);
  std::vector<std::string> payloads;
  try {
    parser.feed(data, size);
    std::string payload;
    while (parser.next(&payload)) payloads.push_back(payload);
  } catch (const std::runtime_error&) {
    // Oversized header: the server would drop the connection here.
  }
  if (payloads.empty() && size > 0) {
    // Unframed input still exercises JSON + dispatch.
    payloads.emplace_back(reinterpret_cast<const char*>(data), size);
  }

  std::uint64_t frame_index = 0;
  for (const std::string& payload : payloads) {
    const std::uint64_t client_id = 1 + (frame_index++ % 3);
    const Value resp =
        rlmul::serve::handle_frame_payload(sched, client_id, payload, hooks);
    check_response(resp);
    check_scheduler_invariants(sched, client_id);
  }

  // Reap whatever the input started so one expensive submit cannot
  // slow every later exec: cancellation lands at a step boundary.
  for (const rlmul::serve::JobStatus& st : sched.list()) {
    std::string err;
    sched.cancel(st.id, &err);  // rejection on terminal jobs is fine
  }
  return 0;
}
