// Replay/mutation driver: the portable half of the dual-mode fuzz
// build (cmake/Fuzzing.cmake). Links against any harness's
// LLVMFuzzerTestOneInput and
//
//   * replays every file in the given corpus directories/files, in
//     sorted order — the `ctest -L fuzz` corpus-regression mode; and
//   * with --fuzz-seconds N, runs a deterministic splitmix64-driven
//     mutation loop over the corpus for N wall-clock seconds — a
//     coverage-blind stand-in for libFuzzer on toolchains without
//     -fsanitize=fuzzer (GCC).
//
// Invariant violations abort (RLMUL_FUZZ_ASSERT), sanitizer findings
// abort; either way the process dies non-zero and ctest reports the
// failing input, which the driver names before each execution under
// --verbose.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t> read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

/// Deterministic RNG for the mutation loop: splitmix64, hand-rolled so
/// the driver never depends on seeding policy from the library under
/// test (and stays reproducible from --seed alone).
struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t n) { return n ? next() % n : 0; }
};

void mutate(std::vector<std::uint8_t>& buf, SplitMix64& rng) {
  const int n_mut = 1 + static_cast<int>(rng.below(8));
  for (int m = 0; m < n_mut; ++m) {
    switch (rng.below(5)) {
      case 0:  // flip a byte
        if (!buf.empty()) {
          buf[rng.below(buf.size())] ^=
              static_cast<std::uint8_t>(1u << rng.below(8));
        }
        break;
      case 1:  // overwrite with a random byte
        if (!buf.empty()) {
          buf[rng.below(buf.size())] = static_cast<std::uint8_t>(rng.next());
        }
        break;
      case 2:  // insert a random byte
        if (buf.size() < (1u << 16)) {
          buf.insert(buf.begin() + static_cast<std::ptrdiff_t>(
                                       rng.below(buf.size() + 1)),
                     static_cast<std::uint8_t>(rng.next()));
        }
        break;
      case 3:  // erase a byte
        if (!buf.empty()) {
          buf.erase(buf.begin() +
                    static_cast<std::ptrdiff_t>(rng.below(buf.size())));
        }
        break;
      default:  // truncate
        if (!buf.empty()) buf.resize(rng.below(buf.size()));
        break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  long fuzz_seconds = 0;
  std::uint64_t seed = 1;
  bool verbose = false;
  std::vector<fs::path> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fuzz-seconds" && i + 1 < argc) {
      fuzz_seconds = std::atol(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--fuzz-seconds N] [--seed S] [--verbose] "
                 "<corpus-dir-or-file>...\n",
                 argv[0]);
    return 2;
  }

  std::vector<fs::path> files;
  for (const fs::path& in : inputs) {
    std::error_code ec;
    if (fs::is_directory(in, ec)) {
      for (const auto& entry : fs::directory_iterator(in, ec)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else if (fs::is_regular_file(in, ec)) {
      files.push_back(in);
    } else {
      std::fprintf(stderr, "fuzz driver: no such corpus input: %s\n",
                   in.c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    // An empty corpus would make the regression test vacuously green.
    std::fprintf(stderr, "fuzz driver: corpus is empty\n");
    return 2;
  }

  std::vector<std::vector<std::uint8_t>> corpus;
  corpus.reserve(files.size());
  for (const fs::path& f : files) {
    if (verbose) std::fprintf(stderr, "replay %s\n", f.c_str());
    corpus.push_back(read_file(f));
    LLVMFuzzerTestOneInput(corpus.back().data(), corpus.back().size());
  }
  std::printf("fuzz driver: replayed %zu corpus file(s)\n", corpus.size());

  if (fuzz_seconds > 0) {
    SplitMix64 rng{seed};
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(fuzz_seconds);
    // Crash artifact, libFuzzer style: every mutated input is written
    // here BEFORE execution, so when an invariant aborts the process
    // the reproducer survives. Deleted on a clean run.
    const std::string last = "fuzz-last-input.bin";
    std::uint64_t execs = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      std::vector<std::uint8_t> buf = corpus[rng.below(corpus.size())];
      mutate(buf, rng);
      {
        std::ofstream os(last, std::ios::binary | std::ios::trunc);
        os.write(reinterpret_cast<const char*>(buf.data()),
                 static_cast<std::streamsize>(buf.size()));
      }
      LLVMFuzzerTestOneInput(buf.data(), buf.size());
      ++execs;
    }
    std::error_code ec;
    fs::remove(last, ec);
    std::printf("fuzz driver: %llu mutated exec(s) in %lds (seed %llu)\n",
                static_cast<unsigned long long>(execs), fuzz_seconds,
                static_cast<unsigned long long>(seed));
  }
  return 0;
}
