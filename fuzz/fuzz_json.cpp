// Fuzzes serve::json, the parser behind every protocol request.
// Invariants:
//
//   * malformed input fails with std::runtime_error only — nothing
//     else escapes the API boundary (sanitizers catch UB underneath);
//   * accepted input reaches the dump fixpoint: parse(dump(v)) never
//     throws and dumps to the identical string (deterministic
//     serialization is what the protocol's golden tests key on).

#include <cstdint>
#include <stdexcept>
#include <string>

#include "fuzz_common.hpp"
#include "serve/json.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using rlmul::serve::json::Value;
  const std::string text(reinterpret_cast<const char*>(data), size);
  Value v;
  try {
    v = Value::parse(text);
  } catch (const std::runtime_error&) {
    return 0;  // rejected cleanly — the only allowed failure mode
  }
  const std::string s1 = v.dump();
  Value v2;
  try {
    v2 = Value::parse(s1);
  } catch (const std::runtime_error&) {
    RLMUL_FUZZ_ASSERT(false, "dump() produced unparseable JSON");
  }
  RLMUL_FUZZ_ASSERT(v2.dump() == s1, "parse/dump is not a fixpoint");
  return 0;
}
