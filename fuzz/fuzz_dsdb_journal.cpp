// Fuzzes the dsdb journal replay path (dsdb::replay_journal_bytes —
// the exact decoder Store::open runs over the on-disk journal) plus
// the record codec underneath. The input is split into a committed
// prefix the harness writes itself (K CRC-valid frames) and an
// attacker-controlled tail appended verbatim. Invariants:
//
//   * replay never throws, whatever the tail holds;
//   * the committed prefix is never lost: replay yields at least K
//     records and the first K payloads are byte-identical (a crashed
//     writer corrupts only the tail — the Store's durability
//     contract);
//   * decode_record never throws on any replayed payload, and every
//     accepted record re-encodes to a decode/encode fixpoint.

#include <cstdint>
#include <string>
#include <vector>

#include "dsdb/journal.hpp"
#include "dsdb/store.hpp"
#include "fuzz_common.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  namespace dsdb = rlmul::dsdb;
  rlmul::fuzz::ByteReader in(data, size);

  // Committed prefix: K frames whose payloads come off the input.
  const std::size_t k = in.u8() & 3;
  std::vector<std::uint8_t> wire = dsdb::journal_header();
  std::vector<std::vector<std::uint8_t>> committed;
  for (std::size_t i = 0; i < k; ++i) {
    const std::string chunk = in.take(1 + (in.u8() & 0x1F));
    committed.emplace_back(chunk.begin(), chunk.end());
    dsdb::append_frame(wire, committed.back());
  }
  // Attacker tail: raw bytes, torn frames, corrupt CRCs, whatever.
  wire.insert(wire.end(), in.rest(), in.rest() + in.remaining());

  std::vector<std::vector<std::uint8_t>> replayed;
  const dsdb::ReplayResult res = dsdb::replay_journal_bytes(
      wire.data(), wire.size(),
      [&replayed](const std::vector<std::uint8_t>& payload) {
        replayed.push_back(payload);
      });

  RLMUL_FUZZ_ASSERT(!res.bad_header, "replay rejected a valid header");
  RLMUL_FUZZ_ASSERT(replayed.size() >= committed.size(),
                    "replay lost committed records");
  for (std::size_t i = 0; i < committed.size(); ++i) {
    RLMUL_FUZZ_ASSERT(replayed[i] == committed[i],
                      "replay altered a committed payload");
  }
  RLMUL_FUZZ_ASSERT(res.records == replayed.size(),
                    "replay miscounted its own records");
  RLMUL_FUZZ_ASSERT(res.valid_bytes <= wire.size(),
                    "replay claimed bytes past the journal");

  // Every replayed payload meets the store's record codec, exactly as
  // Store::open would feed it.
  for (const std::vector<std::uint8_t>& payload : replayed) {
    dsdb::Record rec;
    if (!dsdb::decode_record(payload, &rec)) continue;
    const std::vector<std::uint8_t> e1 = dsdb::encode_record(rec);
    dsdb::Record rec2;
    RLMUL_FUZZ_ASSERT(dsdb::decode_record(e1, &rec2),
                      "re-encoded record failed to decode");
    RLMUL_FUZZ_ASSERT(dsdb::encode_record(rec2) == e1,
                      "record decode/encode is not a fixpoint");
  }
  return 0;
}
