#!/usr/bin/env bash
# Formatting gate: clang-format --dry-run --Werror over every C++ file
# in src/ tests/ bench/ examples/. Run locally via
#
#     cmake --build build --target format-check
#
# or directly (CLANG_FORMAT selects the binary, default `clang-format`):
#
#     CLANG_FORMAT=clang-format-15 tools/lint/check_format.sh
set -u

cd "$(dirname "$0")/../.."
CF="${CLANG_FORMAT:-clang-format}"

if ! command -v "$CF" >/dev/null 2>&1; then
  echo "check_format: '$CF' not found; set CLANG_FORMAT or install clang-format" >&2
  exit 1
fi

mapfile -t files < <(find src tests bench examples \
  \( -name '*.cpp' -o -name '*.hpp' \) -type f | sort)

if [ "${#files[@]}" -eq 0 ]; then
  echo "check_format: no files found (wrong working directory?)" >&2
  exit 1
fi

status=0
for f in "${files[@]}"; do
  if ! "$CF" --style=file --dry-run --Werror "$f"; then
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "check_format: FAILED — run '$CF -i --style=file <file>' to fix" >&2
else
  echo "check_format: OK (${#files[@]} files)"
fi
exit "$status"
