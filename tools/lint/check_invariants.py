#!/usr/bin/env python3
"""Repo-specific invariants the generic tools (clang-tidy, clang-format,
sanitizers) cannot express. Run locally via

    cmake --build build --target lint        # or
    python3 tools/lint/check_invariants.py --root .

Rules (each failure prints `file:line: [rule] message`):

  naked-thread       std::thread may be constructed only in
                     src/util/thread_pool.* and src/dsdb/store.* (the
                     dsdb background writer). Everything else goes
                     through util::ThreadPool so fan-out stays one
                     level deep and joinable.
  raw-sync           std::mutex / std::condition_variable /
                     std::lock_guard / std::unique_lock appear only in
                     src/util/sync.hpp — all other code uses the
                     annotated util::Mutex shims so the Clang
                     thread-safety analysis can see every lock. Lines
                     that genuinely need the native types carry
                     `lint:allow-raw-sync(<why>)`.
  unguarded-mutex    a file declaring a util::Mutex member must
                     annotate at least one piece of data with
                     RLMUL_GUARDED_BY / RLMUL_PT_GUARDED_BY or a
                     function with RLMUL_REQUIRES — a mutex protecting
                     nothing the analysis can check is a lie waiting
                     to happen.
  global-rng         rand()/srand()/drand48()/std::random_device only
                     inside src/util/rng.* — everything else takes a
                     seeded util::Rng so searches stay reproducible.
  float-eq           ==/!= on cost-like floating values (cost, area,
                     delay, power, reward, *_ns, *_um2, *_mw, sum_*)
                     outside the approved sites in
                     tools/lint/float_eq_allow.txt (each entry carries
                     its justification inline).
  tsa-waiver         every RLMUL_NO_THREAD_SAFETY_ANALYSIS carries a
                     justifying comment within the 6 lines above it.
  raw-cpa-kind       `static_cast<...CpaKind>(...)` (constructing a
                     CpaKind from a raw integer) is allowed only in
                     src/prefix/ and src/netlist/. Everything else
                     decodes through netlist::cpa_kind_from_index /
                     parse_cpa_kind so an out-of-range index can never
                     smuggle in an enumerator the menu doesn't have
                     (kCustom denotes a graph, not a buildable kind).
  raw-socket         socket/poll syscalls and their headers
                     (<sys/socket.h>, <sys/un.h>, <poll.h>) appear only
                     in src/serve/socket.* — the rest of the service
                     speaks through the RAII helpers there, so fd
                     lifetime, EINTR retries and MSG_NOSIGNAL handling
                     live in one audited file.
  netlist-patch      the netlist patch/mutation APIs the delta path is
                     built on (replay_compressor_tree, copy_gate_region,
                     clone_head, adopt_ties) are callable only from
                     src/netlist/ and src/synth/. Everywhere else a
                     netlist is immutable once built — search and RL
                     code expresses structure sharing through
                     synth::ParentHint, never by patching gates itself.
  header-standalone  every public header under src/*/ compiles as its
                     own translation unit (include-what-you-use at the
                     API boundary). Needs --compiler; skipped with a
                     notice otherwise.
  json-confinement   hand-rolled JSON text (escaped-quote keys like
                     `\"ok\":` inside C++ string literals) appears only
                     in src/serve/json.* — everything else in src/ and
                     examples/ builds documents through serve::json
                     Value, so the one parser/serializer the fuzzer
                     hammers is the one the product uses. (bench/ is
                     exempt: its BENCH_*.json emitters are offline
                     tooling, not protocol surface.)
  fuzz-registration  fuzz entry points (LLVMFuzzerTestOneInput) live
                     only under fuzz/, and every fuzz/fuzz_*.cpp
                     harness must have a non-empty seed corpus at
                     fuzz/corpus/<name>/ and an rlmul_add_fuzzer(<name>)
                     registration in fuzz/CMakeLists.txt — a harness
                     that CI never replays is dead hardening.
"""

import argparse
import re
import subprocess
import sys
from pathlib import Path

FAILURES = []


def fail(path, line_no, rule, msg):
    FAILURES.append(f"{path}:{line_no}: [{rule}] {msg}")


def strip_comments_and_strings(line):
    """Crude but adequate: drop // comments and string literal bodies."""
    line = re.sub(r'"(\\.|[^"\\])*"', '""', line)
    return line.split("//")[0]


def source_files(root, subdirs=("src",), exts=(".cpp", ".hpp")):
    for sub in subdirs:
        for p in sorted((root / sub).rglob("*")):
            if p.suffix in exts:
                yield p


def rel(root, path):
    return path.relative_to(root).as_posix()


# -- naked-thread -------------------------------------------------------------

THREAD_ALLOWED = ("src/util/thread_pool.", "src/dsdb/store.")
THREAD_RE = re.compile(r"\bstd::thread\b(?!::)")


def check_naked_thread(root):
    for p in source_files(root):
        r = rel(root, p)
        if r.startswith(THREAD_ALLOWED):
            continue
        for i, line in enumerate(p.read_text().splitlines(), 1):
            code = strip_comments_and_strings(line)
            if THREAD_RE.search(code):
                fail(r, i, "naked-thread",
                     "std::thread outside util/thread_pool and the dsdb "
                     "writer; use util::ThreadPool")


# -- raw-sync -----------------------------------------------------------------

RAW_SYNC_RE = re.compile(
    r"\bstd::(mutex|condition_variable|lock_guard|unique_lock|scoped_lock|"
    r"shared_mutex|shared_lock)\b")
RAW_SYNC_ALLOWED = ("src/util/sync.hpp",)
RAW_SYNC_MARK = "lint:allow-raw-sync"


def check_raw_sync(root):
    for p in source_files(root):
        r = rel(root, p)
        if r in RAW_SYNC_ALLOWED:
            continue
        lines = p.read_text().splitlines()
        for i, line in enumerate(lines, 1):
            code = strip_comments_and_strings(line)
            if not RAW_SYNC_RE.search(code):
                continue
            window = lines[max(0, i - 3):i]
            if any(RAW_SYNC_MARK in w for w in window):
                continue
            fail(r, i, "raw-sync",
                 "raw std sync primitive outside util/sync.hpp; use "
                 "util::Mutex/CondVar/LockGuard (or justify with "
                 f"`{RAW_SYNC_MARK}(<why>)` on or above the line)")


# -- unguarded-mutex ----------------------------------------------------------
# Per-mutex, not per-file: every named util::Mutex member must be
# referenced by at least one RLMUL_GUARDED_BY / RLMUL_PT_GUARDED_BY /
# RLMUL_REQUIRES in the same file. A file-level check let a second
# mutex (e.g. the evaluator's stats_mu_ next to mu_) ride on the first
# one's annotations while guarding nothing the analysis can see.

MUTEX_MEMBER_RE = re.compile(r"\b(?:util::)?Mutex\s+(\w+)\s*;")
GUARD_NAME_RE = re.compile(
    r"RLMUL_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES)\s*\(\s*([^)]+?)\s*\)")


def check_unguarded_mutex(root):
    for p in source_files(root):
        r = rel(root, p)
        if r in RAW_SYNC_ALLOWED:
            continue
        text = p.read_text()
        guarded = set()
        for m in GUARD_NAME_RE.finditer(text):
            # RLMUL_REQUIRES may list several locks.
            for name in m.group(1).split(","):
                guarded.add(name.strip())
        for m in MUTEX_MEMBER_RE.finditer(text):
            name = m.group(1)
            if name in guarded:
                continue
            line_no = text[:m.start()].count("\n") + 1
            fail(r, line_no, "unguarded-mutex",
                 f"util::Mutex member `{name}` is never named in an "
                 "RLMUL_GUARDED_BY/RLMUL_PT_GUARDED_BY/RLMUL_REQUIRES "
                 "in this file — annotate the data it protects")


# -- global-rng ---------------------------------------------------------------

RNG_RE = re.compile(
    r"(?<![\w:])(s?rand|drand48|random)\s*\(|std::random_device")
RNG_ALLOWED = ("src/util/rng.",)


def check_global_rng(root):
    for p in source_files(root):
        r = rel(root, p)
        if r.startswith(RNG_ALLOWED):
            continue
        for i, line in enumerate(p.read_text().splitlines(), 1):
            code = strip_comments_and_strings(line)
            if RNG_RE.search(code):
                fail(r, i, "global-rng",
                     "global/unseeded RNG outside util/rng; take a "
                     "seeded util::Rng")


# -- float-eq -----------------------------------------------------------------

EQ_RE = re.compile(r"(?<![=!<>+\-*/%&|^])[!=]=(?!=)")
COSTY_RE = re.compile(
    r"\b(cost|area|delay|power|reward|hypervolume)\w*"
    r"|\w*(_ns|_um2|_mw|sum_area|sum_delay|sum_power)\b")
ITER_RE = re.compile(r"\.(r?begin|r?end|cr?begin|cr?end)\s*\(")


def load_float_eq_allow(root):
    allow = []
    allow_file = root / "tools/lint/float_eq_allow.txt"
    if allow_file.exists():
        for raw in allow_file.read_text().splitlines():
            entry = raw.split("#")[0].strip()
            if not entry:
                continue
            path, _, pattern = entry.partition(":")
            allow.append((path.strip(), pattern.strip()))
    return allow


def check_float_eq(root):
    allow = load_float_eq_allow(root)
    for p in source_files(root):
        r = rel(root, p)
        for i, line in enumerate(p.read_text().splitlines(), 1):
            code = strip_comments_and_strings(line)
            if not EQ_RE.search(code) or not COSTY_RE.search(code):
                continue
            if ITER_RE.search(code):  # iterator != end() loops
                continue
            if any(r == path and pat in line for path, pat in allow):
                continue
            fail(r, i, "float-eq",
                 "==/!= on a cost-like floating value; compare with a "
                 "tolerance or add an approved site to "
                 "tools/lint/float_eq_allow.txt with a justification")


# -- tsa-waiver ---------------------------------------------------------------


def check_tsa_waiver(root):
    for p in source_files(root):
        r = rel(root, p)
        if r == "src/util/thread_annotations.hpp":
            continue
        lines = p.read_text().splitlines()
        for i, line in enumerate(lines, 1):
            if "RLMUL_NO_THREAD_SAFETY_ANALYSIS" not in line:
                continue
            window = lines[max(0, i - 7):i - 1]
            if any("//" in w or "///" in w for w in window):
                continue
            fail(r, i, "tsa-waiver",
                 "RLMUL_NO_THREAD_SAFETY_ANALYSIS without a justifying "
                 "comment in the 6 lines above")


# -- raw-cpa-kind -------------------------------------------------------------

RAW_CPA_KIND_RE = re.compile(r"static_cast<\s*[\w:]*CpaKind\s*>\s*\(")
RAW_CPA_KIND_ALLOWED = ("src/prefix/", "src/netlist/")


def check_raw_cpa_kind(root):
    for p in source_files(root):
        r = rel(root, p)
        if r.startswith(RAW_CPA_KIND_ALLOWED):
            continue
        for i, line in enumerate(p.read_text().splitlines(), 1):
            code = strip_comments_and_strings(line)
            if RAW_CPA_KIND_RE.search(code):
                fail(r, i, "raw-cpa-kind",
                     "raw CpaKind construction outside src/prefix/ and "
                     "src/netlist/; decode through "
                     "netlist::cpa_kind_from_index or parse_cpa_kind")


# -- raw-socket ---------------------------------------------------------------

RAW_SOCKET_RE = re.compile(
    r"#\s*include\s*<(sys/socket\.h|sys/un\.h|poll\.h)>"
    r"|(?<![\w:])::(socket|bind|listen|accept4?|connect|poll|recv|send)\s*\(")
RAW_SOCKET_ALLOWED = ("src/serve/socket.",)


def check_raw_socket(root):
    for p in source_files(root):
        r = rel(root, p)
        if r.startswith(RAW_SOCKET_ALLOWED):
            continue
        for i, line in enumerate(p.read_text().splitlines(), 1):
            code = strip_comments_and_strings(line)
            if RAW_SOCKET_RE.search(code):
                fail(r, i, "raw-socket",
                     "raw socket/poll syscall outside src/serve/socket.*; "
                     "use the serve::Fd / poll_items / read_some helpers")


# -- netlist-patch ------------------------------------------------------------

NETLIST_PATCH_RE = re.compile(
    r"\b(replay_compressor_tree|copy_gate_region|clone_head|adopt_ties)"
    r"\s*\(")
NETLIST_PATCH_ALLOWED = ("src/netlist/", "src/synth/")


def check_netlist_patch(root):
    for p in source_files(root):
        r = rel(root, p)
        if r.startswith(NETLIST_PATCH_ALLOWED):
            continue
        for i, line in enumerate(p.read_text().splitlines(), 1):
            code = strip_comments_and_strings(line)
            m = NETLIST_PATCH_RE.search(code)
            if m:
                fail(r, i, "netlist-patch",
                     f"netlist patch API `{m.group(1)}` outside "
                     "src/netlist/ and src/synth/; pass a "
                     "synth::ParentHint instead of mutating netlists")


# -- json-confinement ---------------------------------------------------------
# The signature of hand-assembled JSON in C++ source: an escaped-quote
# key followed by a colon inside a string literal (`"{\"ok\":true}"`).
# Matched on the comment-stripped raw line — string stripping would
# erase exactly the evidence.

JSON_LITERAL_RE = re.compile(r'\\"[A-Za-z_]\w*\\"\s*:')
JSON_ALLOWED = ("src/serve/json.",)


def check_json_confinement(root):
    for p in source_files(root, subdirs=("src", "examples")):
        r = rel(root, p)
        if r.startswith(JSON_ALLOWED):
            continue
        for i, line in enumerate(p.read_text().splitlines(), 1):
            code = line.split("//")[0]
            if JSON_LITERAL_RE.search(code):
                fail(r, i, "json-confinement",
                     "hand-rolled JSON literal outside src/serve/json.*; "
                     "build the document with serve::json::Value")


# -- fuzz-registration --------------------------------------------------------

FUZZ_ENTRY_RE = re.compile(r"\bLLVMFuzzerTestOneInput\b")


def check_fuzz_registration(root):
    for p in source_files(root, subdirs=("src", "examples", "bench")):
        r = rel(root, p)
        for i, line in enumerate(p.read_text().splitlines(), 1):
            code = strip_comments_and_strings(line)
            if FUZZ_ENTRY_RE.search(code):
                fail(r, i, "fuzz-registration",
                     "fuzz entry point outside fuzz/ — harnesses live in "
                     "fuzz/fuzz_*.cpp only")

    fuzz_dir = root / "fuzz"
    if not fuzz_dir.is_dir():
        return
    cmake = fuzz_dir / "CMakeLists.txt"
    cmake_text = cmake.read_text() if cmake.exists() else ""
    for p in sorted(fuzz_dir.glob("fuzz_*.cpp")):
        name = p.stem
        r = rel(root, p)
        if not FUZZ_ENTRY_RE.search(p.read_text()):
            fail(r, 1, "fuzz-registration",
                 f"harness `{name}` does not define LLVMFuzzerTestOneInput")
        if f"rlmul_add_fuzzer({name}" not in cmake_text:
            fail(r, 1, "fuzz-registration",
                 f"harness `{name}` is not registered via "
                 "rlmul_add_fuzzer() in fuzz/CMakeLists.txt")
        corpus = fuzz_dir / "corpus" / name
        if not corpus.is_dir() or not any(corpus.iterdir()):
            fail(r, 1, "fuzz-registration",
                 f"harness `{name}` has no seed corpus at "
                 f"fuzz/corpus/{name}/ — commit at least one seed "
                 "(fuzz/gen_corpus.cpp generates them)")


# -- header-standalone --------------------------------------------------------


def check_headers_standalone(root, compiler):
    if not compiler:
        print("[header-standalone] skipped: pass --compiler to enable",
              file=sys.stderr)
        return
    headers = [p for p in source_files(root, exts=(".hpp",))]
    for p in headers:
        r = rel(root, p)
        cmd = [
            compiler, "-std=c++20", "-fsyntax-only",
            "-I", str(root / "src"),
            "-x", "c++", str(p),
        ]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            first = (proc.stderr.strip().splitlines() or ["?"])[0]
            fail(r, 1, "header-standalone",
                 f"header does not compile on its own: {first}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="repo root")
    ap.add_argument("--compiler", default="",
                    help="C++ compiler for the header-standalone rule")
    ap.add_argument("--skip-headers", action="store_true",
                    help="skip the (slower) header-standalone rule")
    args = ap.parse_args()
    root = Path(args.root).resolve()

    check_naked_thread(root)
    check_raw_sync(root)
    check_unguarded_mutex(root)
    check_global_rng(root)
    check_float_eq(root)
    check_tsa_waiver(root)
    check_raw_cpa_kind(root)
    check_raw_socket(root)
    check_netlist_patch(root)
    check_json_confinement(root)
    check_fuzz_registration(root)
    if not args.skip_headers:
        check_headers_standalone(root, args.compiler)

    if FAILURES:
        print("\n".join(FAILURES))
        print(f"\ncheck_invariants: {len(FAILURES)} violation(s)")
        return 1
    print("check_invariants: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
