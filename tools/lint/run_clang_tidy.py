#!/usr/bin/env python3
"""Run clang-tidy (repo .clang-tidy profile) over every src/ translation
unit listed in the build directory's compile_commands.json. Run via

    cmake --build build --target tidy

Requires a configured build dir (CMAKE_EXPORT_COMPILE_COMMANDS is on by
default in this repo). Exits non-zero if any file produces warnings.
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--clang-tidy", default="clang-tidy")
    ap.add_argument("--build-dir", required=True)
    ap.add_argument("--root", required=True)
    ap.add_argument("--jobs", type=int, default=1)
    args = ap.parse_args()

    root = Path(args.root).resolve()
    build = Path(args.build_dir).resolve()
    cc_path = build / "compile_commands.json"
    if not cc_path.exists():
        print(f"run_clang_tidy: {cc_path} missing — configure with "
              "CMAKE_EXPORT_COMPILE_COMMANDS=ON first", file=sys.stderr)
        return 1

    entries = json.loads(cc_path.read_text())
    src_prefix = str(root / "src")
    files = sorted({e["file"] for e in entries
                    if e["file"].startswith(src_prefix)
                    and e["file"].endswith(".cpp")})
    if not files:
        print("run_clang_tidy: no src/ TUs in compile_commands.json",
              file=sys.stderr)
        return 1

    failed = []
    for f in files:
        r = Path(f).relative_to(root)
        proc = subprocess.run(
            [args.clang_tidy, "-p", str(build), "--quiet",
             "--warnings-as-errors=*", f],
            capture_output=True, text=True)
        if proc.returncode != 0:
            failed.append(str(r))
            sys.stdout.write(proc.stdout)
            sys.stderr.write(proc.stderr)
        else:
            print(f"  tidy ok: {r}")

    if failed:
        print(f"\nrun_clang_tidy: {len(failed)}/{len(files)} file(s) "
              "with findings:", file=sys.stderr)
        for f in failed:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"run_clang_tidy: OK ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
