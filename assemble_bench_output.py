#!/usr/bin/env python3
"""Assembles bench_output.txt: the full-suite log with the re-run
(fixed) bench sections spliced in."""
import re

def sections(path):
    out, name, buf = {}, None, []
    for line in open(path):
        if line.startswith('##### '):
            if name: out[name] = ''.join(buf)
            name, buf = line.split()[1], [line]
        else:
            buf.append(line)
    if name: out[name] = ''.join(buf)
    return out

import os
full = sections('results/bench_full.txt')
for extra in ('results/bench_fixed.txt', 'results/bench_tables.txt'):
    if not os.path.exists(extra):
        continue
    for k, v in sections(extra).items():
        v = v.replace('FIXED_DONE\n', '').replace('TABLES_DONE\n', '')
        if '===' in v or 'Benchmark' in v:  # only splice sections with real content
            full[k] = v

order = sorted(full)
with open('bench_output.txt', 'w') as f:
    for k in order:
        body = full[k].replace('ALL_BENCHES_COMPLETE\n', '')
        f.write(body)
        if not body.endswith('\n\n'):
            f.write('\n')
print('wrote bench_output.txt with', len(order), 'bench sections')
