#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace rlmul::util {
namespace {

TEST(Stats, MeanAndVariance) {
  std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(variance(xs), 1.25);
  EXPECT_NEAR(stddev(xs), 1.1180339887, 1e-9);
}

TEST(Stats, EmptyInputsAreZero) {
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(variance({}), 0.0);
  EXPECT_EQ(pearson({}, {}), 0.0);
}

TEST(Stats, QuantileInterpolates) {
  std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 17.5);
}

TEST(Stats, QuantileSingleElement) {
  EXPECT_DOUBLE_EQ(quantile({5.0}, 0.7), 5.0);
}

TEST(Stats, BoxStatsOrdering) {
  std::vector<double> xs{5, 1, 4, 2, 3, 9, 0};
  const BoxStats b = box_stats(xs);
  EXPECT_DOUBLE_EQ(b.min, 0.0);
  EXPECT_DOUBLE_EQ(b.max, 9.0);
  EXPECT_LE(b.q1, b.median);
  EXPECT_LE(b.median, b.q3);
  EXPECT_DOUBLE_EQ(b.median, 3.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  std::vector<double> xs{1, 2, 3, 4};
  std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> neg{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerate) {
  std::vector<double> xs{1, 1, 1};
  std::vector<double> ys{2, 3, 4};
  EXPECT_EQ(pearson(xs, ys), 0.0);
  EXPECT_EQ(pearson(xs, {1.0}), 0.0);  // size mismatch
}

}  // namespace
}  // namespace rlmul::util
