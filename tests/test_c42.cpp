// 4:2 compressor extension tests (the paper's "more compressor
// variants", K = 3): matrix-level neutrality of the fuse/split actions,
// stage assignment, netlist equivalence of trees containing 4:2 cells,
// and the area/delay motivation for the dedicated cell.

#include <gtest/gtest.h>

#include "ct/compressor_tree.hpp"
#include "netlist/cell_library.hpp"
#include "ppg/ppg.hpp"
#include "sim/simulator.hpp"
#include "sta/sta.hpp"
#include "synth/synth.hpp"
#include "util/rng.hpp"

namespace rlmul::ct {
namespace {

using ppg::MultiplierSpec;
using ppg::PpgKind;

CompressorTree wallace_for(const MultiplierSpec& spec) {
  return ppg::initial_tree(spec);
}

/// Greedily fuse every {3:2, 2:2} pair into a 4:2.
CompressorTree fully_fused(CompressorTree t) {
  for (int j = 0; j < t.columns(); ++j) {
    while (t.c32[j] > 0 && t.c22[j] > 0) {
      t = apply_action(t, {j, ActionKind::kFuse32And22To42});
    }
  }
  return t;
}

TEST(C42, FuseIsResidualNeutral) {
  CompressorTree t = wallace_for({8, PpgKind::kAnd, false});
  const auto before = t.final_heights();
  int col = -1;
  for (int j = 0; j < t.columns(); ++j) {
    if (t.c32[j] > 0 && t.c22[j] > 0) col = j;
  }
  ASSERT_GE(col, 0) << "wallace tree should have a fusable pair";
  const CompressorTree fused =
      apply_action(t, {col, ActionKind::kFuse32And22To42});
  EXPECT_EQ(fused.final_heights(), before);
  EXPECT_EQ(fused.c42[col], 1);
  EXPECT_EQ(fused.c32[col], t.c32[col] - 1);
  EXPECT_EQ(fused.c22[col], t.c22[col] - 1);
  // And split is its exact inverse.
  const CompressorTree back =
      apply_action(fused, {col, ActionKind::kSplit42To32And22});
  EXPECT_EQ(back, t);
}

TEST(C42, FuseRequiresBothDonors) {
  CompressorTree t{ColumnHeights{4, 2, 1}};
  t.c32 = {1, 0, 0};
  t.c22 = {0, 1, 0};  // column 0 has 3:2 but no 2:2
  ASSERT_TRUE(t.legal());
  EXPECT_FALSE(action_applicable(t, {0, ActionKind::kFuse32And22To42}));
  EXPECT_FALSE(action_applicable(t, {0, ActionKind::kSplit42To32And22}));
}

TEST(C42, MaskExposesExtensionOnlyWhenEnabled) {
  const CompressorTree t = wallace_for({8, PpgKind::kAnd, false});
  const auto off = legal_action_mask(t, -1, false);
  const auto on = legal_action_mask(t, -1, true);
  int extension_on = 0;
  for (int j = 0; j < t.columns(); ++j) {
    const int fuse = action_index({j, ActionKind::kFuse32And22To42});
    EXPECT_EQ(off[static_cast<std::size_t>(fuse)], 0);
    extension_on += on[static_cast<std::size_t>(fuse)];
  }
  EXPECT_GT(extension_on, 0);
  // The paper's four actions are identical in both modes.
  for (int j = 0; j < t.columns(); ++j) {
    for (int k = 0; k < 4; ++k) {
      const int idx = action_index({j, static_cast<ActionKind>(k)});
      EXPECT_EQ(off[static_cast<std::size_t>(idx)],
                on[static_cast<std::size_t>(idx)]);
    }
  }
}

TEST(C42, StageAssignmentCoversAllKinds) {
  const CompressorTree fused =
      fully_fused(wallace_for({8, PpgKind::kAnd, false}));
  ASSERT_GT(fused.total_c42(), 0);
  ASSERT_TRUE(fused.legal());
  const StageAssignment sa = assign_stages(fused);
  for (int j = 0; j < fused.columns(); ++j) {
    int s42 = 0;
    for (int s = 0; s < sa.stages; ++s) {
      s42 += sa.t42[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)];
    }
    EXPECT_EQ(s42, fused.c42[j]) << "column " << j;
  }
}

struct C42Spec {
  MultiplierSpec spec;
  netlist::CpaKind cpa;
};

class C42EquivalenceTest : public ::testing::TestWithParam<C42Spec> {};

TEST_P(C42EquivalenceTest, FusedTreesStayEquivalent) {
  const auto [spec, cpa] = GetParam();
  const CompressorTree fused = fully_fused(wallace_for(spec));
  ASSERT_TRUE(fused.legal());
  const auto nl = ppg::build_multiplier(spec, fused, cpa);
  util::Rng rng(0xC42);
  const auto rep = sim::check_equivalence(nl, spec, rng);
  EXPECT_TRUE(rep.equivalent)
      << "a=" << rep.a << " b=" << rep.b << " got=" << rep.got
      << " expect=" << rep.expect;
  // The dedicated cell must actually be used.
  if (fused.total_c42() > 0) {
    EXPECT_GT(nl.kind_histogram()[static_cast<int>(netlist::CellKind::kC42)],
              0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Specs, C42EquivalenceTest,
    ::testing::Values(
        C42Spec{{4, PpgKind::kAnd, false}, netlist::CpaKind::kRippleCarry},
        C42Spec{{8, PpgKind::kAnd, false}, netlist::CpaKind::kKoggeStone},
        C42Spec{{8, PpgKind::kBooth, false}, netlist::CpaKind::kRippleCarry},
        C42Spec{{8, PpgKind::kAnd, true}, netlist::CpaKind::kBrentKung},
        C42Spec{{16, PpgKind::kAnd, false}, netlist::CpaKind::kSklansky}));

TEST(C42, RandomWalkWithExtensionStaysLegal) {
  util::Rng rng(777);
  const MultiplierSpec spec{8, PpgKind::kAnd, false};
  CompressorTree t = wallace_for(spec);
  for (int step = 0; step < 60; ++step) {
    const auto mask = legal_action_mask(t, -1, /*allow_42=*/true);
    std::vector<double> w(mask.size());
    for (std::size_t i = 0; i < mask.size(); ++i) w[i] = mask[i];
    const auto pick = rng.sample_discrete(w);
    ASSERT_LT(pick, mask.size());
    t = apply_action(t, action_from_index(static_cast<int>(pick)));
    ASSERT_TRUE(t.legal()) << to_string(t);
    ASSERT_NO_THROW(assign_stages(t));
  }
}

TEST(C42, DedicatedCellBeatsAdderPairOnAreaAndDepth) {
  const auto& lib = netlist::CellLibrary::nangate45();
  const double pair_area = lib.area(netlist::CellKind::kFa, 0) +
                           lib.area(netlist::CellKind::kHa, 0);
  EXPECT_LT(lib.area(netlist::CellKind::kC42, 0), pair_area);
  // Worst data arc through the dedicated cell is shorter than
  // FA(sum) + HA(sum) stacked.
  const double stacked =
      lib.intrinsic(netlist::CellKind::kFa, 0, 0) +
      lib.intrinsic(netlist::CellKind::kHa, 0, 0);
  EXPECT_LT(lib.intrinsic(netlist::CellKind::kC42, 0, 0), stacked);
}

TEST(C42, FusingReducesSynthesizedArea) {
  const MultiplierSpec spec{8, PpgKind::kAnd, false};
  const CompressorTree plain = wallace_for(spec);
  const CompressorTree fused = fully_fused(plain);
  ASSERT_GT(fused.total_c42(), 0);
  const auto res_plain = synth::synthesize_design(spec, plain, 10.0);
  const auto res_fused = synth::synthesize_design(spec, fused, 10.0);
  EXPECT_LT(res_fused.area_um2, res_plain.area_um2);
}

}  // namespace
}  // namespace rlmul::ct
