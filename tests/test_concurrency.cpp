// Concurrency and algebraic-property tests: the DesignEvaluator is the
// one shared mutable object during RL-MUL-E training, so it gets
// hammered from many threads here; plus inverse-action identities on
// the compressor-tree algebra.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "ct/compressor_tree.hpp"
#include "ppg/ppg.hpp"
#include "synth/evaluator.hpp"
#include "util/rng.hpp"

namespace rlmul {
namespace {

using ppg::MultiplierSpec;
using ppg::PpgKind;

TEST(EvaluatorConcurrency, ParallelEvaluationsAgreeWithSerial) {
  const MultiplierSpec spec{4, PpgKind::kAnd, false};
  synth::DesignEvaluator ev(spec);

  // A pool of designs reached by random walks.
  util::Rng rng(41);
  std::vector<ct::CompressorTree> designs;
  ct::CompressorTree tree = ppg::initial_tree(spec);
  designs.push_back(tree);
  for (int i = 0; i < 11; ++i) {
    const auto mask = ct::legal_action_mask(tree);
    std::vector<double> w(mask.size());
    for (std::size_t k = 0; k < mask.size(); ++k) w[k] = mask[k];
    const auto pick = rng.sample_discrete(w);
    ASSERT_LT(pick, mask.size());
    tree = ct::apply_action(tree, ct::action_from_index(static_cast<int>(pick)));
    designs.push_back(tree);
  }

  // Serial ground truth from an independent evaluator.
  synth::DesignEvaluator serial(spec);
  std::vector<double> expected;
  for (const auto& d : designs) {
    expected.push_back(serial.evaluate(d).sum_area);
  }

  // 8 threads evaluating overlapping subsets concurrently.
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t]() {
      for (std::size_t i = t % 3; i < designs.size(); ++i) {
        const auto eval = ev.evaluate(designs[i]);
        if (std::abs(eval.sum_area - expected[i]) > 1e-9) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
  // Cache holds exactly the unique designs, no duplicates.
  EXPECT_LE(ev.num_unique_evaluations(), designs.size());
  EXPECT_GE(ev.num_unique_evaluations(), 2u);
}

TEST(EvaluatorConcurrency, FrontierConsistentAfterParallelInsert) {
  const MultiplierSpec spec{4, PpgKind::kAnd, false};
  synth::DesignEvaluator ev(spec);
  const auto wallace = ppg::initial_tree(spec);
  const auto dadda = ct::dadda_tree(ppg::pp_heights(spec));
  std::vector<std::thread> workers;
  for (int t = 0; t < 6; ++t) {
    workers.emplace_back([&, t]() {
      ev.evaluate(t % 2 == 0 ? wallace : dadda);
    });
  }
  for (auto& w : workers) w.join();
  const auto front = ev.frontier().sorted();
  ASSERT_FALSE(front.empty());
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].x, front[i - 1].x);
    EXPECT_LT(front[i].y, front[i - 1].y);
  }
}

// -- action algebra -----------------------------------------------------------

TEST(ActionAlgebra, AddThenRemoveIsIdentityWhenBothLegal) {
  util::Rng rng(71);
  const MultiplierSpec spec{8, PpgKind::kAnd, false};
  ct::CompressorTree tree = ppg::initial_tree(spec);
  int verified = 0;
  for (int j = 0; j < tree.columns(); ++j) {
    const ct::Action add{j, ct::ActionKind::kAdd22};
    if (!ct::action_applicable(tree, add)) continue;
    const auto added = ct::apply_action(tree, add);
    const ct::Action remove{j, ct::ActionKind::kRemove22};
    if (!ct::action_applicable(added, remove)) continue;
    const auto back = ct::apply_action(added, remove);
    // The round trip is NOT an exact identity: legalization may settle
    // downstream columns into a different (equally legal) shape. The
    // contract is legality plus unchanged columns left of the action.
    EXPECT_TRUE(back.legal()) << "column " << j;
    for (int k = 0; k < j; ++k) {
      EXPECT_EQ(back.c32[k], tree.c32[k]) << j << "/" << k;
      EXPECT_EQ(back.c22[k], tree.c22[k]) << j << "/" << k;
    }
    ++verified;
  }
  EXPECT_GT(verified, 0);
}

TEST(ActionAlgebra, ReplacePairsAreMutualInverses) {
  const MultiplierSpec spec{8, PpgKind::kAnd, false};
  const ct::CompressorTree tree = ppg::initial_tree(spec);
  for (int j = 0; j < tree.columns(); ++j) {
    const ct::Action fwd{j, ct::ActionKind::kReplace32With22};
    if (!ct::action_applicable(tree, fwd)) continue;
    const auto mid = ct::apply_action(tree, fwd);
    const ct::Action bwd{j, ct::ActionKind::kReplace22With32};
    ASSERT_TRUE(ct::action_applicable(mid, bwd)) << "column " << j;
    EXPECT_EQ(ct::apply_action(mid, bwd), tree) << "column " << j;
  }
}

TEST(ActionAlgebra, ReplacementsNeverTouchOtherColumns) {
  const MultiplierSpec spec{8, PpgKind::kBooth, false};
  const ct::CompressorTree tree = ppg::initial_tree(spec);
  for (int j = 0; j < tree.columns(); ++j) {
    for (const auto kind : {ct::ActionKind::kReplace32With22,
                            ct::ActionKind::kReplace22With32}) {
      const ct::Action a{j, kind};
      if (!ct::action_applicable(tree, a)) continue;
      const auto next = ct::apply_action(tree, a);
      for (int k = 0; k < tree.columns(); ++k) {
        if (k == j) continue;
        EXPECT_EQ(next.c32[k], tree.c32[k]);
        EXPECT_EQ(next.c22[k], tree.c22[k]);
      }
    }
  }
}

}  // namespace
}  // namespace rlmul
