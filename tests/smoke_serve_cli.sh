#!/usr/bin/env bash
# CI smoke for the serve daemon, end to end over the real unix socket:
# a daemon takes two jobs sharing one --dsdb, one is cancelled, then
# `shutdown` drains the other mid-run (checkpoint-on-drain). A second
# daemon on the same --state-dir auto-resumes the drained job, and its
# final best_cost must equal a fresh uninterrupted run of the same spec
# bit for bit — compared as the %.17g text the status op prints.
# Usage: smoke_serve_cli.sh <path-to-rlmul_cli>
set -u

cli="${1:?usage: smoke_serve_cli.sh <rlmul_cli>}"

tmp="$(mktemp -d)"
daemon_pid=""
cleanup() {
  if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
    kill "$daemon_pid" 2>/dev/null
    wait "$daemon_pid" 2>/dev/null
  fi
  rm -rf "$tmp"
}
trap cleanup EXIT

sock="$tmp/d.sock"
state="$tmp/state"
db="$tmp/db"

# Big enough that the job cannot finish before we drain it, small
# enough that the resumed leg completes well inside the CI timeout.
spec_flags="--bits 16 --method sa --steps 12000 --seed 7"

start_daemon() {
  "$cli" serve --socket "$sock" --state-dir "$state" --dsdb "$db" \
    --max-active 2 >"$1" 2>&1 &
  daemon_pid=$!
  for _ in $(seq 1 100); do
    if grep -q 'rlmul serve: listening on' "$1" 2>/dev/null; then
      return 0
    fi
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
      cat "$1"
      echo "FAIL: daemon exited before listening"
      exit 1
    fi
    sleep 0.1
  done
  cat "$1"
  echo "FAIL: daemon never printed the listening line"
  exit 1
}

stop_daemon() {
  if ! "$cli" shutdown --socket "$sock" >/dev/null 2>&1; then
    echo "FAIL: shutdown op failed"
    exit 1
  fi
  wait "$daemon_pid"
  daemon_pid=""
}

submit_job() {
  # Prints the job id; extra flags (e.g. a different seed) come in $@.
  out="$("$cli" submit --socket "$sock" $spec_flags "$@" 2>&1)"
  id="$(printf '%s\n' "$out" | grep '^RLMUL_JOB ' | awk '{print $2}')"
  if [ -z "$id" ]; then
    printf '%s\n' "$out"
    echo "FAIL: submit printed no RLMUL_JOB line"
    exit 1
  fi
  printf '%s\n' "$id"
}

job_status() {
  "$cli" status --socket "$sock" --job "$1" 2>&1
}

field() {
  # field <name> <json>: the raw value text of a top-level field.
  printf '%s\n' "$2" | grep -o "\"$1\":[^,}]*" | head -n 1 | cut -d: -f2
}

wait_done() {
  for _ in $(seq 1 240); do
    st="$(job_status "$1")"
    case "$(field state "$st")" in
      '"done"') printf '%s\n' "$st"; return 0 ;;
      '"failed"'|'"cancelled"')
        printf '%s\n' "$st"
        echo "FAIL: job $1 ended in $(field state "$st")"
        exit 1 ;;
    esac
    sleep 0.5
  done
  echo "FAIL: job $1 did not finish in time"
  exit 1
}

start_daemon "$tmp/serve1.log"

job1="$(submit_job)"
job2="$(submit_job --seed 8)"
echo "submitted: job $job1 (seed 7), job $job2 (seed 8)"

if ! "$cli" cancel --socket "$sock" --job "$job2" >/dev/null 2>&1; then
  echo "FAIL: cancel of job $job2 failed"
  exit 1
fi
for _ in $(seq 1 60); do
  st2="$(job_status "$job2")"
  [ "$(field state "$st2")" = '"cancelled"' ] && break
  sleep 0.5
done
if [ "$(field state "$st2")" != '"cancelled"' ]; then
  printf '%s\n' "$st2"
  echo "FAIL: job $job2 never reached cancelled"
  exit 1
fi

# Drain while job1 is still running; the daemon must park it on disk.
stop_daemon
if ! grep -q 'rlmul serve: drained, exiting' "$tmp/serve1.log"; then
  cat "$tmp/serve1.log"
  echo "FAIL: first daemon did not report a clean drain"
  exit 1
fi
if [ ! -f "$state/job-$job1.json" ]; then
  ls -la "$state" 2>/dev/null
  echo "FAIL: drain left no state file for job $job1"
  exit 1
fi
if [ -f "$state/job-$job2.json" ]; then
  echo "FAIL: cancelled job $job2 was persisted"
  exit 1
fi

# Restart: the drained job resumes automatically and runs to done.
start_daemon "$tmp/serve2.log"
if ! grep -q 'rlmul serve: resumed 1 drained job(s)' "$tmp/serve2.log"; then
  cat "$tmp/serve2.log"
  echo "FAIL: second daemon did not resume the drained job"
  exit 1
fi
st1="$(wait_done "$job1")"
if [ "$(field resumed "$st1")" != "true" ]; then
  printf '%s\n' "$st1"
  echo "FAIL: job $job1 not marked resumed after restart"
  exit 1
fi
cost_resumed="$(field best_cost "$st1")"

# A fresh, uninterrupted job with the identical spec on the same daemon
# must land on exactly the same best cost (%.17g text comparison).
job3="$(submit_job)"
st3="$(wait_done "$job3")"
cost_fresh="$(field best_cost "$st3")"
if [ -z "$cost_resumed" ] || [ "$cost_resumed" != "$cost_fresh" ]; then
  echo "FAIL: resumed best_cost $cost_resumed != fresh $cost_fresh"
  exit 1
fi

# Terminal jobs must clean up their parked state.
if [ -f "$state/job-$job1.json" ] || [ -f "$state/job-$job1.ckpt" ]; then
  echo "FAIL: resumed job $job1 left stale state files"
  exit 1
fi

stop_daemon

echo "PASS: serve smoke (drain/resume best_cost=$cost_resumed," \
     "fresh=$cost_fresh, cancelled job $job2)"
