// GOMIL baseline tests: the ILP encoding and the exact DP must agree,
// produce legal trees, and never lose to the legacy constructions on
// the compressor-area objective they optimize.

#include "baselines/gomil.hpp"

#include <gtest/gtest.h>

#include "ct/compressor_tree.hpp"
#include "ppg/ppg.hpp"

namespace rlmul::baselines {
namespace {

using ct::ColumnHeights;
using ppg::MultiplierSpec;
using ppg::PpgKind;

double tree_area(const ct::CompressorTree& t, const GomilWeights& w = {}) {
  return w.fa * t.total_c32() + w.ha * t.total_c22();
}

class GomilSpecTest
    : public ::testing::TestWithParam<MultiplierSpec> {};

TEST_P(GomilSpecTest, IlpMatchesDp) {
  const auto spec = GetParam();
  if (spec.bits > 8) {
    GTEST_SKIP() << "branch-and-bound at this width is exercised by the "
                    "dedicated slow test below";
  }
  const auto pp = ppg::pp_heights(spec);
  const GomilResult ilp = gomil_ilp(pp);
  const GomilResult dp = gomil_dp(pp);
  ASSERT_TRUE(ilp.optimal);
  ASSERT_TRUE(dp.optimal);
  EXPECT_NEAR(ilp.objective, dp.objective, 1e-6);
}

TEST_P(GomilSpecTest, TreesAreLegal) {
  const auto spec = GetParam();
  const auto pp = ppg::pp_heights(spec);
  if (spec.bits <= 8) {
    EXPECT_TRUE(gomil_ilp(pp).tree.legal());
  }
  EXPECT_TRUE(gomil_dp(pp).tree.legal());
}

TEST_P(GomilSpecTest, BeatsOrTiesLegacyTreesOnObjective) {
  const auto pp = ppg::pp_heights(GetParam());
  const GomilResult dp = gomil_dp(pp);
  ASSERT_TRUE(dp.optimal);
  EXPECT_LE(dp.objective, tree_area(ct::wallace_tree(pp)) + 1e-9);
  EXPECT_LE(dp.objective, tree_area(ct::dadda_tree(pp)) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Specs, GomilSpecTest,
    ::testing::Values(MultiplierSpec{4, PpgKind::kAnd, false},
                      MultiplierSpec{6, PpgKind::kAnd, false},
                      MultiplierSpec{8, PpgKind::kAnd, false},
                      MultiplierSpec{8, PpgKind::kBooth, false},
                      MultiplierSpec{8, PpgKind::kAnd, true},
                      MultiplierSpec{16, PpgKind::kAnd, false}));

TEST(Gomil, HandlesEmptyTopColumn) {
  // AND-based heights end in a zero column; the z-indicator path of the
  // ILP must allow it to stay empty.
  const auto pp = ppg::pp_heights({4, PpgKind::kAnd, false});
  ASSERT_EQ(pp.back(), 0);
  const GomilResult res = gomil_ilp(pp);
  ASSERT_TRUE(res.optimal);
  EXPECT_TRUE(res.tree.legal());
}

TEST(Gomil, WeightsSteerTheChoice) {
  // Making half adders nearly free should never increase the count of
  // full adders chosen.
  const auto pp = ppg::pp_heights({6, PpgKind::kAnd, false});
  const GomilResult balanced = gomil_dp(pp, GomilWeights{4.256, 2.66});
  const GomilResult cheap_ha = gomil_dp(pp, GomilWeights{4.256, 0.01});
  ASSERT_TRUE(balanced.optimal);
  ASSERT_TRUE(cheap_ha.optimal);
  EXPECT_LE(cheap_ha.tree.total_c32(), balanced.tree.total_c32());
}

TEST(Gomil, DaddaIsOptimalForEqualWeights)
{
  // With unit weights the objective is the total compressor count;
  // Dadda is known to be count-minimal for AND parallelograms, so the
  // DP optimum must match its count.
  const auto pp = ppg::pp_heights({8, PpgKind::kAnd, false});
  const GomilResult dp = gomil_dp(pp, GomilWeights{1.0, 1.0});
  const auto dadda = ct::dadda_tree(pp);
  ASSERT_TRUE(dp.optimal);
  EXPECT_LE(dp.objective,
            static_cast<double>(dadda.total_c32() + dadda.total_c22()) + 1e-9);
}

TEST(Gomil, ConvenienceWrapperReturnsLegalTree) {
  const auto tree = gomil_tree({8, PpgKind::kAnd, false});
  EXPECT_TRUE(tree.legal());
}

}  // namespace
}  // namespace rlmul::baselines
