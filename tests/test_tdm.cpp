// TDM (Three-Dimensional-Method-style) signal ordering tests: the
// reordered tree must stay functionally identical while reducing the
// STA critical delay for the same compressor matrix.

#include <gtest/gtest.h>

#include "netlist/cell_library.hpp"
#include "netlist/ct_builder.hpp"
#include "ppg/ppg.hpp"
#include "sim/simulator.hpp"
#include "sta/sta.hpp"
#include "util/rng.hpp"

namespace rlmul::netlist {
namespace {

using ppg::MultiplierSpec;
using ppg::PpgKind;

struct TdmParam {
  MultiplierSpec spec;
  CpaKind cpa;
};

class TdmTest : public ::testing::TestWithParam<TdmParam> {};

TEST_P(TdmTest, ReorderedTreeStaysEquivalent) {
  const auto [spec, cpa] = GetParam();
  const auto tree = ppg::initial_tree(spec);
  CtBuildOptions opts;
  opts.tdm_ordering = true;
  const auto nl = ppg::build_multiplier(spec, tree, cpa, opts);
  util::Rng rng(0x7D);
  const auto rep = sim::check_equivalence(nl, spec, rng);
  EXPECT_TRUE(rep.equivalent)
      << "a=" << rep.a << " b=" << rep.b << " got=" << rep.got
      << " expect=" << rep.expect;
}

TEST_P(TdmTest, SameCellBudgetAsFifoOrder) {
  const auto [spec, cpa] = GetParam();
  const auto tree = ppg::initial_tree(spec);
  CtBuildOptions tdm;
  tdm.tdm_ordering = true;
  const auto plain = ppg::build_multiplier(spec, tree, cpa);
  const auto ordered = ppg::build_multiplier(spec, tree, cpa, tdm);
  // Ordering permutes wiring, it must not change what is instantiated.
  EXPECT_EQ(plain.kind_histogram(), ordered.kind_histogram());
}

INSTANTIATE_TEST_SUITE_P(
    Specs, TdmTest,
    ::testing::Values(
        TdmParam{{4, PpgKind::kAnd, false}, CpaKind::kRippleCarry},
        TdmParam{{8, PpgKind::kAnd, false}, CpaKind::kKoggeStone},
        TdmParam{{8, PpgKind::kBooth, false}, CpaKind::kRippleCarry},
        TdmParam{{8, PpgKind::kAnd, true}, CpaKind::kBrentKung},
        TdmParam{{16, PpgKind::kAnd, false}, CpaKind::kKoggeStone}));

TEST(Tdm, ReducesOrMatchesCriticalDelayAt16Bits) {
  const MultiplierSpec spec{16, PpgKind::kAnd, false};
  const auto tree = ppg::initial_tree(spec);
  const auto& lib = CellLibrary::nangate45();
  CtBuildOptions tdm;
  tdm.tdm_ordering = true;
  const auto plain = ppg::build_multiplier(spec, tree, CpaKind::kKoggeStone);
  const auto ordered =
      ppg::build_multiplier(spec, tree, CpaKind::kKoggeStone, tdm);
  const double d_plain = sta::analyze(plain, lib).critical_ps;
  const double d_tdm = sta::analyze(ordered, lib).critical_ps;
  // Slack-aware pin assignment should not lose; usually it wins a few
  // percent on deep trees.
  EXPECT_LE(d_tdm, d_plain * 1.01)
      << "plain " << d_plain << " ps vs tdm " << d_tdm << " ps";
}

TEST(Tdm, DeterministicOutput) {
  const MultiplierSpec spec{8, PpgKind::kAnd, false};
  const auto tree = ppg::initial_tree(spec);
  CtBuildOptions tdm;
  tdm.tdm_ordering = true;
  const auto a = ppg::build_multiplier(spec, tree, CpaKind::kRippleCarry, tdm);
  const auto b = ppg::build_multiplier(spec, tree, CpaKind::kRippleCarry, tdm);
  ASSERT_EQ(a.num_gates(), b.num_gates());
  for (int g = 0; g < a.num_gates(); ++g) {
    EXPECT_EQ(a.gates()[static_cast<std::size_t>(g)].inputs,
              b.gates()[static_cast<std::size_t>(g)].inputs);
  }
}

}  // namespace
}  // namespace rlmul::netlist
