// The search layer: registry dispatch, the driver's EDA budget, and
// checkpoint/resume reproducing uninterrupted runs bit-for-bit.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/sa.hpp"
#include "ppg/ppg.hpp"
#include "rl/dqn.hpp"
#include "search/driver.hpp"
#include "search/methods.hpp"
#include "search/registry.hpp"
#include "synth/evaluator.hpp"

namespace {

using namespace rlmul;

ppg::MultiplierSpec small_spec() {
  return ppg::MultiplierSpec{4, ppg::PpgKind::kAnd, false};
}

ppg::MultiplierSpec smoke_spec() {
  return ppg::MultiplierSpec{8, ppg::PpgKind::kAnd, false};
}

/// Config small enough that every method finishes a smoke run quickly.
search::MethodConfig tiny_config() {
  search::MethodConfig cfg;
  cfg.steps = 6;
  cfg.threads = 2;
  cfg.warmup = 2;
  cfg.batch_size = 2;
  cfg.n_step = 2;
  cfg.seed = 3;
  return cfg;
}

TEST(Registry, ListsAllBuiltins) {
  const auto names = search::registered_methods();
  const std::vector<std::string> expected{"a2c", "dqn", "gomil", "sa",
                                          "wallace"};
  EXPECT_EQ(names, expected);
  for (const auto& name : expected) {
    EXPECT_TRUE(search::is_registered(name));
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_FALSE(search::is_registered("nope"));
  EXPECT_THROW(search::make_method("nope", search::MethodConfig{}),
               std::invalid_argument);
}

// The ISSUE's smoke gate: every registered method runs on a tiny budget
// on an 8-bit spec without crashing, produces a non-empty trajectory,
// and never overruns the shared EDA budget. (eda_consumed is the
// driver-attributed count the budget bounds; the absolute eda_calls
// additionally includes the evaluator's reference-normalization call.)
TEST(Registry, SmokeEveryMethodOnTinyBudget) {
  constexpr std::size_t kBudget = 12;
  for (const auto& name : search::registered_methods()) {
    SCOPED_TRACE(name);
    synth::DesignEvaluator evaluator(smoke_spec());
    auto method = search::make_method(name, tiny_config());
    search::Driver driver(evaluator, {kBudget, 0});
    const auto res = driver.run(*method);
    EXPECT_FALSE(res.trajectory.empty());
    EXPECT_EQ(res.trajectory.size(), res.best_trajectory.size());
    EXPECT_LE(res.eda_consumed, kBudget);
    EXPECT_GT(res.best_cost, 0.0);
    EXPECT_TRUE(res.best_tree.legal());
  }
}

TEST(Driver, BudgetStopThenResumeMatchesUninterrupted) {
  search::MethodConfig cfg;
  cfg.steps = 30;
  cfg.seed = 5;

  synth::DesignEvaluator full_eval(small_spec());
  search::SaMethod full_method(cfg);
  search::Driver full_driver(full_eval);
  const auto full = full_driver.run(full_method);
  ASSERT_TRUE(full.completed);
  ASSERT_EQ(full.trajectory.size(), 30u);

  synth::DesignEvaluator eval_a(small_spec());
  search::SaMethod method_a(cfg);
  search::Driver driver_a(eval_a, {6, 0});
  const auto partial = driver_a.run(method_a);
  EXPECT_FALSE(partial.completed);
  EXPECT_LE(partial.eda_consumed, 6u);
  EXPECT_LT(partial.trajectory.size(), full.trajectory.size());
  const auto ckpt = driver_a.make_checkpoint(method_a);

  synth::DesignEvaluator eval_b(small_spec());
  search::SaMethod method_b(cfg);
  search::Driver driver_b(eval_b);
  const auto resumed = driver_b.resume(method_b, ckpt);
  EXPECT_TRUE(resumed.completed);
  EXPECT_EQ(resumed.trajectory, full.trajectory);
  EXPECT_EQ(resumed.best_trajectory, full.best_trajectory);
  EXPECT_EQ(resumed.best_cost, full.best_cost);
  EXPECT_EQ(resumed.best_tree, full.best_tree);
}

/// Save mid-run, resume in a fresh process-like state (new evaluator,
/// new method instance, checkpoint round-tripped through bytes), and
/// require the concatenated trajectory to equal the uninterrupted run
/// exactly — every double bit-for-bit.
void check_resume_bit_exact(const std::string& name,
                            const search::MethodConfig& cfg,
                            std::uint64_t split) {
  synth::DesignEvaluator full_eval(small_spec());
  auto full_method = search::make_method(name, cfg);
  search::Driver full_driver(full_eval);
  const auto full = full_driver.run(*full_method);
  ASSERT_TRUE(full.completed);
  ASSERT_EQ(full.trajectory.size(), static_cast<std::size_t>(cfg.steps));

  synth::DesignEvaluator eval_a(small_spec());
  auto method_a = search::make_method(name, cfg);
  search::Driver driver_a(eval_a, {0, split});
  const auto partial = driver_a.run(*method_a);
  EXPECT_FALSE(partial.completed);
  EXPECT_EQ(partial.steps_done, split);
  const auto blob = driver_a.make_checkpoint(*method_a).encode();
  const auto ckpt = search::Checkpoint::decode(blob);
  EXPECT_EQ(ckpt.method, name);

  synth::DesignEvaluator eval_b(small_spec());
  auto method_b = search::make_method(name, cfg);
  search::Driver driver_b(eval_b);
  const auto resumed = driver_b.resume(*method_b, ckpt);
  EXPECT_TRUE(resumed.completed);
  EXPECT_EQ(resumed.trajectory, full.trajectory);
  EXPECT_EQ(resumed.best_trajectory, full.best_trajectory);
  EXPECT_EQ(resumed.best_cost, full.best_cost);
  EXPECT_EQ(resumed.best_tree, full.best_tree);
  EXPECT_EQ(resumed.best_point.ppg, full.best_point.ppg);
  EXPECT_EQ(resumed.best_point.tree, full.best_point.tree);
  EXPECT_EQ(resumed.best_point.cpa, full.best_point.cpa);
}

TEST(Checkpoint, DqnResumeIsBitExact) {
  search::MethodConfig cfg;
  cfg.steps = 18;
  cfg.warmup = 4;
  cfg.batch_size = 4;
  cfg.target_sync = 5;
  cfg.double_dqn = true;
  cfg.episode_length = 9;
  cfg.seed = 13;
  // Split after the replay buffer has content and learning has begun.
  check_resume_bit_exact("dqn", cfg, 9);
}

TEST(Checkpoint, A2cResumeIsBitExact) {
  search::MethodConfig cfg;
  cfg.steps = 12;
  cfg.threads = 2;
  cfg.n_step = 3;
  cfg.episode_length = 6;
  cfg.seed = 21;
  // 7 = two full rollouts + one step: the checkpoint lands mid-rollout,
  // so the partial sample batch must survive the round trip.
  check_resume_bit_exact("a2c", cfg, 7);
}

TEST(Checkpoint, SaResumeIsBitExact) {
  search::MethodConfig cfg;
  cfg.steps = 30;
  cfg.seed = 5;
  check_resume_bit_exact("sa", cfg, 11);
}

// Joint-search variants: the checkpoints additionally carry the pinned
// prefix graph and PPG family (the point extras), and the resized
// action heads / env state must survive the round trip bit for bit.

TEST(Checkpoint, JointSaResumeIsBitExact) {
  search::MethodConfig cfg;
  cfg.steps = 30;
  cfg.seed = 5;
  cfg.search_cpa = true;
  cfg.search_ppg = true;
  cfg.prefix_levels = 3;
  check_resume_bit_exact("sa", cfg, 11);
}

TEST(Checkpoint, JointDqnResumeIsBitExact) {
  search::MethodConfig cfg;
  cfg.steps = 12;
  cfg.warmup = 3;
  cfg.batch_size = 3;
  cfg.target_sync = 4;
  cfg.episode_length = 6;
  cfg.seed = 13;
  cfg.search_cpa = true;
  cfg.search_ppg = true;
  cfg.prefix_levels = 2;
  check_resume_bit_exact("dqn", cfg, 7);
}

TEST(Checkpoint, JointA2cResumeIsBitExact) {
  search::MethodConfig cfg;
  cfg.steps = 8;
  cfg.threads = 2;
  cfg.n_step = 2;
  cfg.episode_length = 4;
  cfg.seed = 21;
  cfg.search_cpa = true;
  cfg.search_ppg = true;
  cfg.prefix_levels = 2;
  check_resume_bit_exact("a2c", cfg, 5);
}

TEST(Checkpoint, FileRoundTrip) {
  search::MethodConfig cfg;
  cfg.steps = 8;
  cfg.seed = 7;
  synth::DesignEvaluator evaluator(small_spec());
  search::SaMethod method(cfg);
  search::Driver driver(evaluator, {0, 4});
  driver.run(method);
  const auto ckpt = driver.make_checkpoint(method);

  const std::string path = ::testing::TempDir() + "rlmul_ckpt_test.bin";
  ckpt.save_file(path);
  const auto loaded = search::Checkpoint::load_file(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.encode(), ckpt.encode());
}

/// The legacy entry points are thin wrappers over the driver: both
/// spellings of the same run must agree exactly.
TEST(Wrappers, SimulatedAnnealingEqualsDriverRun) {
  baselines::SaOptions opts;
  opts.steps = 20;
  opts.seed = 9;
  synth::DesignEvaluator eval_a(small_spec());
  const auto legacy = baselines::simulated_annealing(eval_a, opts);

  search::MethodConfig cfg;
  cfg.steps = 20;
  cfg.seed = 9;
  synth::DesignEvaluator eval_b(small_spec());
  search::SaMethod method(cfg);
  search::Driver driver(eval_b);
  const auto res = driver.run(method);
  EXPECT_EQ(res.trajectory, legacy.trajectory);
  EXPECT_EQ(res.best_trajectory, legacy.best_trajectory);
  EXPECT_EQ(res.best_cost, legacy.best_cost);
  EXPECT_EQ(res.best_tree, legacy.best_tree);
}

TEST(Wrappers, TrainDqnEqualsDriverRun) {
  rl::DqnOptions opts;
  opts.steps = 12;
  opts.warmup = 4;
  opts.batch_size = 4;
  opts.seed = 17;
  synth::DesignEvaluator eval_a(small_spec());
  const auto legacy = rl::train_dqn(eval_a, opts);

  search::MethodConfig cfg;
  cfg.steps = 12;
  cfg.warmup = 4;
  cfg.batch_size = 4;
  cfg.seed = 17;
  synth::DesignEvaluator eval_b(small_spec());
  search::DqnMethod method(cfg);
  search::Driver driver(eval_b);
  const auto res = driver.run(method);
  EXPECT_EQ(res.trajectory, legacy.trajectory);
  EXPECT_EQ(res.best_trajectory, legacy.best_trajectory);
  EXPECT_EQ(res.best_cost, legacy.best_cost);
}

}  // namespace
