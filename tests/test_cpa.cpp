// Carry-propagation adder architecture tests: all four CPAs must be
// functionally identical, with the classic area/depth ordering
// (ripple smallest+slowest, Kogge-Stone fastest+largest, Brent-Kung
// and Sklansky in between).

#include <gtest/gtest.h>

#include "netlist/cell_library.hpp"
#include "netlist/ct_builder.hpp"
#include "ppg/ppg.hpp"
#include "sim/simulator.hpp"
#include "sta/sta.hpp"
#include "util/rng.hpp"

namespace rlmul::netlist {
namespace {

using ppg::MultiplierSpec;
using ppg::PpgKind;

/// Standalone adder: two W-bit operand rows into the CPA builder.
Netlist build_adder(int width, CpaKind kind) {
  Netlist nl;
  LogicBuilder lb(nl);
  ColumnSignals rows(static_cast<std::size_t>(width));
  for (int j = 0; j < width; ++j) {
    rows[static_cast<std::size_t>(j)] = {
        Signal::of(nl.add_input("x" + std::to_string(j))),
        Signal::of(nl.add_input("y" + std::to_string(j)))};
  }
  const auto sum = build_cpa(lb, kind, rows);
  for (int j = 0; j < width; ++j) {
    nl.mark_output(lb.materialize(sum[static_cast<std::size_t>(j)]),
                   "s" + std::to_string(j));
  }
  return nl;
}

class CpaKindTest : public ::testing::TestWithParam<CpaKind> {};

TEST_P(CpaKindTest, AdderIsExactMod2W) {
  for (int width : {1, 2, 3, 5, 8, 13, 16}) {
    const Netlist nl = build_adder(width, GetParam());
    sim::Simulator simulator(nl);
    util::Rng rng(width);
    const std::uint64_t mask =
        width >= 64 ? ~0ULL : ((1ULL << width) - 1);
    for (int trial = 0; trial < 64; ++trial) {
      const std::uint64_t x = rng.next() & mask;
      const std::uint64_t y = rng.next() & mask;
      for (int j = 0; j < width; ++j) {
        // Inputs were created interleaved per column; look up by name.
        simulator.set_input(simulator.input_index("x" + std::to_string(j)),
                            ((x >> j) & 1) ? ~0ULL : 0);
        simulator.set_input(simulator.input_index("y" + std::to_string(j)),
                            ((y >> j) & 1) ? ~0ULL : 0);
      }
      simulator.run();
      std::uint64_t s = 0;
      for (int j = 0; j < width; ++j) {
        s |= (simulator.output(j) & 1ULL) << j;
      }
      ASSERT_EQ(s, (x + y) & mask)
          << cpa_kind_name(GetParam()) << " width " << width << " x=" << x
          << " y=" << y;
    }
  }
}

TEST_P(CpaKindTest, MultiplierStaysEquivalent) {
  const MultiplierSpec spec{6, PpgKind::kAnd, false};
  const auto nl =
      ppg::build_multiplier(spec, ppg::initial_tree(spec), GetParam());
  util::Rng rng(3);
  EXPECT_TRUE(sim::check_equivalence(nl, spec, rng).equivalent)
      << cpa_kind_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Kinds, CpaKindTest,
                         ::testing::Values(CpaKind::kRippleCarry,
                                           CpaKind::kBrentKung,
                                           CpaKind::kSklansky,
                                           CpaKind::kKoggeStone),
                         [](const auto& info) {
                           return std::string(cpa_kind_name(info.param));
                         });

TEST(CpaOrdering, AreaAndDelayFollowTheClassicRanking) {
  const auto& lib = CellLibrary::nangate45();
  const int width = 32;
  double area[4];
  double delay[4];
  int idx = 0;
  for (CpaKind kind : kAllCpaKinds) {
    const Netlist nl = build_adder(width, kind);
    area[idx] = netlist_area(nl, lib);
    delay[idx] = sta::analyze(nl, lib).max_po_arrival_ps;
    ++idx;
  }
  // kAllCpaKinds = {RCA, BK, SK, KS}.
  EXPECT_LT(area[0], area[1]);   // ripple smallest
  EXPECT_LE(area[1], area[3]);   // BK <= KS (KS has the most nodes)
  EXPECT_LE(area[2], area[3]);   // SK <= KS
  EXPECT_GT(delay[0], delay[1]);  // ripple slowest
  EXPECT_GT(delay[0], delay[2]);
  EXPECT_GT(delay[0], delay[3]);
}

TEST(CpaOrdering, PrefixDepthIsLogarithmic) {
  // Critical path length (in gates) of the prefix adders should grow
  // like log2(width), not linearly.
  const auto& lib = CellLibrary::nangate45();
  auto path_gates = [&](int width, CpaKind kind) {
    const Netlist nl = build_adder(width, kind);
    return sta::analyze(nl, lib).critical_path.size();
  };
  EXPECT_LE(path_gates(32, CpaKind::kKoggeStone), 14u);
  EXPECT_LE(path_gates(32, CpaKind::kSklansky), 16u);
  EXPECT_LE(path_gates(32, CpaKind::kBrentKung), 22u);
  EXPECT_GE(path_gates(32, CpaKind::kRippleCarry), 30u);
}

TEST(CpaNames, AllDistinct) {
  EXPECT_STRNE(cpa_kind_name(CpaKind::kRippleCarry),
               cpa_kind_name(CpaKind::kKoggeStone));
  EXPECT_STRNE(cpa_kind_name(CpaKind::kBrentKung),
               cpa_kind_name(CpaKind::kSklansky));
}

}  // namespace
}  // namespace rlmul::netlist
