// Tests for the nt kernel layer: blocked-vs-naive SGEMM equivalence
// over randomized shapes and every operand layout the nn layers use,
// thread-count independence of the blocked path (bit-for-bit), and the
// ScratchArena frame/lifetime contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "nt/arena.hpp"
#include "nt/gemm.hpp"
#include "nt/tensor.hpp"
#include "util/rng.hpp"

namespace {

using rlmul::nt::BiasKind;
using rlmul::nt::GemmMode;
using rlmul::nt::ScratchArena;
using rlmul::nt::sgemm;

/// RAII save/restore so tests can pin a mode or thread cap without
/// leaking it into other tests in the binary.
struct GemmEnvGuard {
  GemmMode mode = rlmul::nt::gemm_mode();
  int threads = rlmul::nt::gemm_max_threads();
  ~GemmEnvGuard() {
    rlmul::nt::set_gemm_mode(mode);
    rlmul::nt::set_gemm_max_threads(threads);
  }
};

std::vector<float> random_vec(std::size_t n, rlmul::util::Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.next_gaussian()) * 0.5f;
  return v;
}

struct Problem {
  bool trans_a = false, trans_b = false;
  int m = 0, n = 0, k = 0;
  int batch = 1;
  std::ptrdiff_t stride_a = 0, stride_b = 0, stride_c = 0;
  bool accumulate = false;
  BiasKind bias_kind = BiasKind::kNone;
};

/// Runs one problem in both modes from identical inputs and compares
/// the outputs with a relative tolerance (the modes reorder float
/// sums, so bit-equality is not expected — that is the documented
/// reassociation caveat).
void expect_modes_agree(const Problem& p, std::uint64_t seed) {
  rlmul::util::Rng rng(seed);
  const std::size_t a_items =
      p.stride_a == 0 ? 1 : static_cast<std::size_t>(p.batch);
  const std::size_t b_items =
      p.stride_b == 0 ? 1 : static_cast<std::size_t>(p.batch);
  const std::size_t c_items =
      p.stride_c == 0 ? 1 : static_cast<std::size_t>(p.batch);
  const int lda = p.trans_a ? p.m : p.k;
  const int ldb = p.trans_b ? p.k : p.n;
  const auto a =
      random_vec(a_items * static_cast<std::size_t>(p.m) * p.k, rng);
  const auto b =
      random_vec(b_items * static_cast<std::size_t>(p.k) * p.n, rng);
  const auto c0 =
      random_vec(c_items * static_cast<std::size_t>(p.m) * p.n, rng);
  const auto bias = random_vec(
      static_cast<std::size_t>(p.bias_kind == BiasKind::kPerCol ? p.n : p.m),
      rng);
  const float* bias_ptr =
      p.bias_kind == BiasKind::kNone ? nullptr : bias.data();

  GemmEnvGuard guard;
  std::vector<float> c_blocked = c0;
  rlmul::nt::set_gemm_mode(GemmMode::kBlocked);
  sgemm(p.trans_a, p.trans_b, p.m, p.n, p.k, a.data(), lda, p.stride_a,
        b.data(), ldb, p.stride_b, c_blocked.data(), p.n, p.stride_c, p.batch,
        p.accumulate, bias_ptr, p.bias_kind);
  std::vector<float> c_naive = c0;
  rlmul::nt::set_gemm_mode(GemmMode::kNaive);
  sgemm(p.trans_a, p.trans_b, p.m, p.n, p.k, a.data(), lda, p.stride_a,
        b.data(), ldb, p.stride_b, c_naive.data(), p.n, p.stride_c, p.batch,
        p.accumulate, bias_ptr, p.bias_kind);

  // Tolerance scales with the reduction length: k products per output
  // element, times batch when stride_c sums the whole batch into C.
  const double terms = static_cast<double>(p.k) *
                       (p.stride_c == 0 ? p.batch : 1) *
                       (p.accumulate ? 2 : 1);
  const double tol = 1e-5 * std::sqrt(terms + 1.0) + 1e-6;
  for (std::size_t i = 0; i < c_blocked.size(); ++i) {
    const double scale =
        std::max(1.0, std::abs(static_cast<double>(c_naive[i])));
    ASSERT_NEAR(c_blocked[i], c_naive[i], tol * scale)
        << "element " << i << " (m=" << p.m << " n=" << p.n << " k=" << p.k
        << " ta=" << p.trans_a << " tb=" << p.trans_b
        << " batch=" << p.batch << ")";
  }
}

TEST(Gemm, BlockedMatchesNaiveAcrossShapes) {
  // Shapes straddle the MR/NR/MC/KC/NC block boundaries: remainders in
  // every dimension, tiny problems, and sizes past one cache block.
  const int sizes[] = {1, 2, 3, 5, 8, 17, 33, 64, 65, 130, 300};
  std::uint64_t seed = 1;
  for (int m : {1, 3, 17, 65, 130}) {
    for (int n : {1, 5, 33, 130}) {
      for (int k : sizes) {
        Problem p;
        p.m = m;
        p.n = n;
        p.k = k;
        expect_modes_agree(p, seed++);
      }
    }
  }
}

TEST(Gemm, AllOperandLayouts) {
  std::uint64_t seed = 100;
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      if (ta && tb) continue;  // unsupported by contract
      Problem p;
      p.trans_a = ta;
      p.trans_b = tb;
      p.m = 37;
      p.n = 29;
      p.k = 53;
      expect_modes_agree(p, seed++);
    }
  }
}

TEST(Gemm, TransATransBThrows) {
  std::vector<float> a(4), b(4), c(4);
  EXPECT_THROW(sgemm(true, true, 2, 2, 2, a.data(), 2, 0, b.data(), 2, 0,
                     c.data(), 2, 0, 1, false, nullptr, BiasKind::kNone),
               std::invalid_argument);
}

TEST(Gemm, BatchedStridesAndSharedOperands) {
  std::uint64_t seed = 200;
  // Conv forward: shared A (weights), per-item B and C.
  {
    Problem p;
    p.trans_b = true;
    p.m = 24;
    p.n = 40;
    p.k = 31;
    p.batch = 5;
    p.stride_b = static_cast<std::ptrdiff_t>(p.k) * p.n;
    p.stride_c = static_cast<std::ptrdiff_t>(p.m) * p.n;
    p.bias_kind = BiasKind::kPerRow;
    expect_modes_agree(p, seed++);
  }
  // Conv dW: per-item A and B, C summed over the batch, accumulating.
  {
    Problem p;
    p.m = 24;
    p.n = 31;
    p.k = 40;
    p.batch = 5;
    p.stride_a = static_cast<std::ptrdiff_t>(p.m) * p.k;
    p.stride_b = static_cast<std::ptrdiff_t>(p.k) * p.n;
    p.stride_c = 0;
    p.accumulate = true;
    expect_modes_agree(p, seed++);
  }
  // Conv dX columns: shared transposed A (weights), per-item B and C.
  {
    Problem p;
    p.trans_a = true;
    p.m = 31;
    p.n = 40;
    p.k = 24;
    p.batch = 5;
    p.stride_b = static_cast<std::ptrdiff_t>(p.k) * p.n;
    p.stride_c = static_cast<std::ptrdiff_t>(p.m) * p.n;
    expect_modes_agree(p, seed++);
  }
}

TEST(Gemm, BiasKindsAndAccumulate) {
  std::uint64_t seed = 300;
  for (BiasKind kind : {BiasKind::kNone, BiasKind::kPerRow,
                        BiasKind::kPerCol}) {
    Problem p;
    p.trans_b = true;
    p.m = 19;
    p.n = 23;
    p.k = 47;
    p.bias_kind = kind;
    expect_modes_agree(p, seed++);
  }
  Problem p;
  p.m = 19;
  p.n = 23;
  p.k = 47;
  p.accumulate = true;
  expect_modes_agree(p, seed);
}

TEST(Gemm, BiasNullMismatchThrows) {
  std::vector<float> a(6), b(6), c(4), bias(2, 1.0f);
  EXPECT_THROW(sgemm(false, false, 2, 2, 3, a.data(), 3, 0, b.data(), 2, 0,
                     c.data(), 2, 0, 1, false, nullptr, BiasKind::kPerRow),
               std::invalid_argument);
  EXPECT_THROW(sgemm(false, false, 2, 2, 3, a.data(), 3, 0, b.data(), 2, 0,
                     c.data(), 2, 0, 1, true, bias.data(), BiasKind::kPerRow),
               std::invalid_argument);
}

TEST(Gemm, BlockedIsThreadCountInvariant) {
  // The block schedule depends only on the shape, so the blocked path
  // must produce bit-identical bytes no matter how many tasks it fans
  // out. Run a batched problem big enough for several row blocks.
  GemmEnvGuard guard;
  rlmul::nt::set_gemm_mode(GemmMode::kBlocked);
  rlmul::util::Rng rng(7);
  const int m = 96, n = 130, k = 70, batch = 3;
  const auto a = random_vec(static_cast<std::size_t>(batch) * m * k, rng);
  const auto b = random_vec(static_cast<std::size_t>(k) * n, rng);
  std::vector<float> c1(static_cast<std::size_t>(batch) * m * n);
  std::vector<float> c7(c1.size());
  rlmul::nt::set_gemm_max_threads(1);
  sgemm(false, false, m, n, k, a.data(), k,
        static_cast<std::ptrdiff_t>(m) * k, b.data(), n, 0, c1.data(), n,
        static_cast<std::ptrdiff_t>(m) * n, batch, false, nullptr,
        BiasKind::kNone);
  rlmul::nt::set_gemm_max_threads(7);
  sgemm(false, false, m, n, k, a.data(), k,
        static_cast<std::ptrdiff_t>(m) * k, b.data(), n, 0, c7.data(), n,
        static_cast<std::ptrdiff_t>(m) * n, batch, false, nullptr,
        BiasKind::kNone);
  EXPECT_EQ(0,
            std::memcmp(c1.data(), c7.data(), c1.size() * sizeof(float)));
}

TEST(Gemm, SummedBatchIsThreadCountInvariant) {
  // stride_c == 0: the batch reduction must stay in batch order inside
  // each row block regardless of fan-out.
  GemmEnvGuard guard;
  rlmul::nt::set_gemm_mode(GemmMode::kBlocked);
  rlmul::util::Rng rng(11);
  const int m = 80, n = 45, k = 64, batch = 4;
  const auto a = random_vec(static_cast<std::size_t>(batch) * m * k, rng);
  const auto b = random_vec(static_cast<std::size_t>(batch) * k * n, rng);
  std::vector<float> c1(static_cast<std::size_t>(m) * n, 0.25f);
  std::vector<float> c5 = c1;
  rlmul::nt::set_gemm_max_threads(1);
  sgemm(false, false, m, n, k, a.data(), k,
        static_cast<std::ptrdiff_t>(m) * k, b.data(), n,
        static_cast<std::ptrdiff_t>(k) * n, c1.data(), n, 0, batch, true,
        nullptr, BiasKind::kNone);
  rlmul::nt::set_gemm_max_threads(5);
  sgemm(false, false, m, n, k, a.data(), k,
        static_cast<std::ptrdiff_t>(m) * k, b.data(), n,
        static_cast<std::ptrdiff_t>(k) * n, c5.data(), n, 0, batch, true,
        nullptr, BiasKind::kNone);
  EXPECT_EQ(0,
            std::memcmp(c1.data(), c5.data(), c1.size() * sizeof(float)));
}

TEST(ScratchArena, SlicesSurviveGrowthWithinFrame) {
  ScratchArena arena;
  float* first = arena.alloc(32);
  for (std::size_t i = 0; i < 32; ++i) first[i] = static_cast<float>(i);
  // Force overflow into a new chunk; `first` must not move.
  float* big = arena.alloc(1 << 16);
  big[0] = 1.0f;
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(static_cast<float>(i), first[i]);
  }
  EXPECT_GE(arena.chunk_count(), 2u);
}

TEST(ScratchArena, ResetCoalescesToSteadyState) {
  ScratchArena arena;
  arena.alloc(100);
  arena.alloc(5000);
  const std::size_t hw = arena.high_water();
  EXPECT_GE(hw, 5100u);
  arena.reset();
  EXPECT_EQ(1u, arena.chunk_count());
  // A same-sized frame now fits the coalesced chunk: still one chunk.
  arena.alloc(100);
  arena.alloc(5000);
  EXPECT_EQ(1u, arena.chunk_count());
  EXPECT_EQ(hw, arena.high_water());
}

TEST(ScratchArena, RoundsSlicesToCacheLines) {
  ScratchArena arena;
  float* a = arena.alloc(1);
  float* b = arena.alloc(1);
  const auto gap = static_cast<std::size_t>(b - a);
  EXPECT_EQ(0u, gap % 16u);  // 16 floats = 64 bytes
  EXPECT_GE(gap, 16u);
}

}  // namespace
