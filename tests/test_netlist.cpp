// Netlist container, cell library, logic-builder folding and
// CT-builder structural tests.

#include <gtest/gtest.h>

#include "ct/compressor_tree.hpp"
#include "netlist/cell_library.hpp"
#include "netlist/ct_builder.hpp"
#include "netlist/logic_builder.hpp"
#include "netlist/netlist.hpp"

namespace rlmul::netlist {
namespace {

TEST(Netlist, AddGateAllocatesOutputs) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const GateId g = nl.add_gate(CellKind::kAnd2, {a, b});
  EXPECT_EQ(nl.num_gates(), 1);
  EXPECT_EQ(nl.gates()[static_cast<std::size_t>(g)].outputs.size(), 1u);
  EXPECT_EQ(nl.num_nets(), 3);
}

TEST(Netlist, PinCountChecked) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  EXPECT_THROW(nl.add_gate(CellKind::kAnd2, {a}), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(CellKind::kInv, {a, a}), std::invalid_argument);
}

TEST(Netlist, TieCellsAreSingletons) {
  Netlist nl;
  const NetId lo1 = nl.tie_lo();
  const NetId lo2 = nl.tie_lo();
  const NetId hi = nl.tie_hi();
  EXPECT_EQ(lo1, lo2);
  EXPECT_NE(lo1, hi);
  EXPECT_EQ(nl.num_gates(), 2);
}

TEST(Netlist, TopoOrderRespectsDependencies) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const GateId g1 = nl.add_gate(CellKind::kAnd2, {a, b});
  const NetId n1 = nl.gates()[static_cast<std::size_t>(g1)].outputs[0];
  const GateId g2 = nl.add_gate(CellKind::kInv, {n1});
  const auto order = nl.topo_order();
  ASSERT_EQ(order.size(), 2u);
  const auto pos = [&](GateId g) {
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] == g) return i;
    }
    return order.size();
  };
  EXPECT_LT(pos(g1), pos(g2));
}

TEST(Netlist, DffBreaksCycles) {
  Netlist nl;
  // q = DFF(d), d = INV(q): a registered loop must topo-sort fine.
  Netlist nl2;
  const NetId q = nl2.new_net();
  const GateId inv = nl2.add_gate(CellKind::kInv, {q});
  const NetId d = nl2.gates()[static_cast<std::size_t>(inv)].outputs[0];
  nl2.add_gate_onto(CellKind::kDff, {d}, {q});
  EXPECT_NO_THROW(nl2.topo_order());
}

TEST(Netlist, CombinationalCycleThrows) {
  Netlist nl;
  const NetId x = nl.new_net();
  const GateId inv = nl.add_gate_onto(CellKind::kInv, {x}, {x});
  (void)inv;
  EXPECT_THROW(nl.topo_order(), std::runtime_error);
}

TEST(CellLibrary, AreasArePositiveAndMonotoneInDrive) {
  const CellLibrary& lib = CellLibrary::nangate45();
  for (int k = 0; k < num_cell_kinds(); ++k) {
    const auto kind = static_cast<CellKind>(k);
    for (int v = 0; v < lib.num_variants(kind); ++v) {
      EXPECT_GT(lib.area(kind, v), 0.0) << cell_kind_name(kind);
      if (v > 0) {
        EXPECT_GT(lib.area(kind, v), lib.area(kind, v - 1));
        EXPECT_LT(lib.drive_res(kind, v), lib.drive_res(kind, v - 1));
      }
    }
  }
}

TEST(CellLibrary, FaCarryArcFasterThanSumArc) {
  const CellLibrary& lib = CellLibrary::nangate45();
  EXPECT_LT(lib.intrinsic(CellKind::kFa, 0, 1),
            lib.intrinsic(CellKind::kFa, 0, 0));
  EXPECT_LT(lib.intrinsic(CellKind::kFa, 2, 0),
            lib.intrinsic(CellKind::kFa, 0, 0));  // CI->S beats A->S
}

TEST(LogicBuilder, ConstantFolding) {
  Netlist nl;
  LogicBuilder lb(nl);
  const Signal a = Signal::of(nl.add_input("a"));
  EXPECT_TRUE(lb.and2(a, Signal::lo()).is_lo());
  EXPECT_EQ(lb.and2(a, Signal::hi()), a);
  EXPECT_EQ(lb.or2(a, Signal::lo()), a);
  EXPECT_TRUE(lb.or2(a, Signal::hi()).is_hi());
  EXPECT_EQ(lb.xor2(a, Signal::lo()), a);
  EXPECT_TRUE(lb.xor2(a, a).is_lo());
  EXPECT_EQ(nl.num_gates(), 0);  // nothing above instantiated a gate
  const Signal na = lb.xor2(a, Signal::hi());
  EXPECT_FALSE(na.is_const());
  EXPECT_EQ(nl.num_gates(), 1);  // one INV
}

TEST(LogicBuilder, HalfAddWithConstantOne) {
  Netlist nl;
  LogicBuilder lb(nl);
  const Signal a = Signal::of(nl.add_input("a"));
  const auto out = lb.half_add(a, Signal::hi());
  EXPECT_FALSE(out.sum.is_const());  // !a
  EXPECT_EQ(out.carry, a);
  EXPECT_EQ(nl.num_gates(), 1);  // single INV, no HA cell
}

TEST(LogicBuilder, FullAddDegradesWithConstants) {
  Netlist nl;
  LogicBuilder lb(nl);
  const Signal a = Signal::of(nl.add_input("a"));
  const Signal b = Signal::of(nl.add_input("b"));
  const auto ha = lb.full_add(a, b, Signal::lo());
  EXPECT_EQ(nl.kind_histogram()[static_cast<int>(CellKind::kHa)], 1);
  EXPECT_EQ(nl.kind_histogram()[static_cast<int>(CellKind::kFa)], 0);
  (void)ha;
}

TEST(CtBuilder, RejectsHeightMismatch) {
  ct::CompressorTree tree{ct::ColumnHeights{2, 1}};
  tree.c22 = {1, 0};
  Netlist nl;
  LogicBuilder lb(nl);
  ColumnSignals cols(2);
  cols[0] = {Signal::of(nl.add_input("x"))};  // height 1, tree expects 2
  cols[1] = {Signal::of(nl.add_input("y"))};
  EXPECT_THROW(build_compressor_tree(lb, tree, cols),
               std::invalid_argument);
}

TEST(CtBuilder, EmitsExpectedCellCounts) {
  // Tree with one FA and one HA on real nets (no constants) emits
  // exactly one FA cell and one HA cell.
  ct::CompressorTree tree{ct::ColumnHeights{3, 2, 1}};
  tree.c32 = {1, 0, 0};
  tree.c22 = {0, 1, 0};
  ASSERT_TRUE(tree.legal());
  Netlist nl;
  LogicBuilder lb(nl);
  ColumnSignals cols(3);
  for (int j = 0; j < 3; ++j) {
    for (int k = 0; k < tree.pp[j]; ++k) {
      cols[static_cast<std::size_t>(j)].push_back(
          Signal::of(nl.add_input("i")));
    }
  }
  const auto rows = build_compressor_tree(lb, tree, cols);
  const auto hist = nl.kind_histogram();
  EXPECT_EQ(hist[static_cast<int>(CellKind::kFa)], 1);
  EXPECT_EQ(hist[static_cast<int>(CellKind::kHa)], 1);
  EXPECT_EQ(rows[0].size(), 1u);
  EXPECT_EQ(rows[1].size(), 2u);  // 2 + FA carry - HA compression
  EXPECT_EQ(rows[2].size(), 2u);  // 1 + HA carry
}

TEST(CtBuilder, TopColumnUsesSumOnlyLogic) {
  // Compressors in the top column must not emit FA/HA cells (their
  // carries would fall off the product); XOR trees instead.
  ct::CompressorTree tree{ct::ColumnHeights{1, 3}};
  tree.c32 = {0, 1};
  ASSERT_TRUE(tree.legal());
  Netlist nl;
  LogicBuilder lb(nl);
  ColumnSignals cols(2);
  cols[0] = {Signal::of(nl.add_input("x"))};
  cols[1] = {Signal::of(nl.add_input("y")), Signal::of(nl.add_input("z")),
             Signal::of(nl.add_input("w"))};
  build_compressor_tree(lb, tree, cols);
  const auto hist = nl.kind_histogram();
  EXPECT_EQ(hist[static_cast<int>(CellKind::kFa)], 0);
  EXPECT_EQ(hist[static_cast<int>(CellKind::kXor2)], 2);
}

}  // namespace
}  // namespace rlmul::netlist
