// Functional-correctness tests: every generated multiplier/MAC netlist
// must compute the golden function (the role ABC `cec` plays in the
// paper's flow). Exhaustive for small widths, randomized + corner-case
// for larger ones, across PPG kinds, CPA kinds, legacy trees, GOMIL
// trees and randomly mutated trees.

#include <gtest/gtest.h>

#include "baselines/gomil.hpp"
#include "ct/compressor_tree.hpp"
#include "netlist/ct_builder.hpp"
#include "ppg/ppg.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace rlmul::sim {
namespace {

using ct::CompressorTree;
using netlist::CpaKind;
using ppg::MultiplierSpec;
using ppg::PpgKind;

void expect_equivalent(const MultiplierSpec& spec, const CompressorTree& tree,
                       CpaKind cpa, std::uint64_t seed = 5) {
  const auto nl = ppg::build_multiplier(spec, tree, cpa);
  util::Rng rng(seed);
  const auto rep = check_equivalence(nl, spec, rng,
                                     /*exhaustive_limit=*/1 << 16,
                                     /*random_vectors=*/4096);
  EXPECT_TRUE(rep.equivalent)
      << "bits=" << spec.bits << " ppg=" << ppg::ppg_kind_name(spec.ppg)
      << " mac=" << spec.mac << " a=" << rep.a << " b=" << rep.b
      << " acc=" << rep.acc << " got=" << rep.got
      << " expect=" << rep.expect << "\n"
      << ct::to_string(tree);
}

TEST(GoldenModel, Basics) {
  EXPECT_EQ(golden_product(3, 5, 4), 15u);
  EXPECT_EQ(golden_product(15, 15, 4), 225u);
  EXPECT_EQ(golden_product(255, 255, 8), 65025u);
  EXPECT_EQ(golden_mac(3, 5, 7, 4), 22u);
  // Wrap-around accumulate at 2N bits.
  EXPECT_EQ(golden_mac(15, 15, 255, 4), (225u + 255u) & 0xFF);
}

struct SpecParam {
  int bits;
  PpgKind ppg;
  bool mac;
  CpaKind cpa;
};

std::string param_name(const ::testing::TestParamInfo<SpecParam>& info) {
  const auto& p = info.param;
  std::string s = std::to_string(p.bits) + "b_";
  s += ppg::ppg_kind_name(p.ppg);
  s += p.mac ? "_mac" : "_mul";
  s += p.cpa == CpaKind::kRippleCarry ? "_ripple" : "_ks";
  return s;
}

class EquivalenceTest : public ::testing::TestWithParam<SpecParam> {};

TEST_P(EquivalenceTest, WallaceTree) {
  const auto p = GetParam();
  const MultiplierSpec spec{p.bits, p.ppg, p.mac};
  expect_equivalent(spec, ct::wallace_tree(ppg::pp_heights(spec)), p.cpa);
}

TEST_P(EquivalenceTest, DaddaTree) {
  const auto p = GetParam();
  const MultiplierSpec spec{p.bits, p.ppg, p.mac};
  expect_equivalent(spec, ct::dadda_tree(ppg::pp_heights(spec)), p.cpa);
}

TEST_P(EquivalenceTest, RandomlyMutatedTrees) {
  const auto p = GetParam();
  const MultiplierSpec spec{p.bits, p.ppg, p.mac};
  util::Rng rng(0x5151 + p.bits);
  CompressorTree tree = ppg::initial_tree(spec);
  for (int walk = 0; walk < 3; ++walk) {
    for (int step = 0; step < 8; ++step) {
      const auto mask = ct::legal_action_mask(tree);
      std::vector<double> w(mask.size());
      for (std::size_t i = 0; i < mask.size(); ++i) w[i] = mask[i];
      const auto pick = rng.sample_discrete(w);
      ASSERT_LT(pick, mask.size());
      tree = ct::apply_action(tree, ct::action_from_index(static_cast<int>(pick)));
    }
    expect_equivalent(spec, tree, p.cpa, 0x77 + walk);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Specs, EquivalenceTest,
    ::testing::Values(
        SpecParam{2, PpgKind::kAnd, false, CpaKind::kRippleCarry},
        SpecParam{3, PpgKind::kAnd, false, CpaKind::kKoggeStone},
        SpecParam{4, PpgKind::kAnd, false, CpaKind::kRippleCarry},
        SpecParam{4, PpgKind::kAnd, false, CpaKind::kKoggeStone},
        SpecParam{4, PpgKind::kBooth, false, CpaKind::kRippleCarry},
        SpecParam{4, PpgKind::kBooth, false, CpaKind::kKoggeStone},
        SpecParam{5, PpgKind::kBooth, false, CpaKind::kRippleCarry},
        SpecParam{4, PpgKind::kAnd, true, CpaKind::kRippleCarry},
        SpecParam{4, PpgKind::kBooth, true, CpaKind::kKoggeStone},
        SpecParam{8, PpgKind::kAnd, false, CpaKind::kRippleCarry},
        SpecParam{8, PpgKind::kAnd, false, CpaKind::kKoggeStone},
        SpecParam{8, PpgKind::kBooth, false, CpaKind::kRippleCarry},
        SpecParam{8, PpgKind::kBooth, false, CpaKind::kKoggeStone},
        SpecParam{8, PpgKind::kAnd, true, CpaKind::kKoggeStone},
        SpecParam{8, PpgKind::kBooth, true, CpaKind::kRippleCarry},
        SpecParam{16, PpgKind::kAnd, false, CpaKind::kKoggeStone},
        SpecParam{16, PpgKind::kBooth, false, CpaKind::kRippleCarry},
        SpecParam{16, PpgKind::kAnd, true, CpaKind::kRippleCarry},
        SpecParam{16, PpgKind::kBooth, true, CpaKind::kKoggeStone},
        SpecParam{4, PpgKind::kBaughWooley, false, CpaKind::kRippleCarry},
        SpecParam{5, PpgKind::kBaughWooley, false, CpaKind::kKoggeStone},
        SpecParam{8, PpgKind::kBaughWooley, false, CpaKind::kRippleCarry},
        SpecParam{8, PpgKind::kBaughWooley, true, CpaKind::kKoggeStone},
        SpecParam{16, PpgKind::kBaughWooley, false, CpaKind::kKoggeStone}),
    param_name);

TEST(GoldenModel, SignedProduct) {
  // 4-bit signed: -8..7.
  EXPECT_EQ(golden_signed_product(0x8, 0x8, 4), 64u);          // -8*-8
  EXPECT_EQ(golden_signed_product(0xF, 0x2, 4), 0xFEu);        // -1*2=-2
  EXPECT_EQ(golden_signed_product(0x7, 0x7, 4), 49u);
  EXPECT_EQ(golden_signed_product(0xF, 0xF, 4), 1u);           // -1*-1
}

TEST(Equivalence, GomilTreesAreCorrect) {
  for (int bits : {4, 8}) {
    const MultiplierSpec spec{bits, PpgKind::kAnd, false};
    const CompressorTree tree = baselines::gomil_tree(spec);
    ASSERT_TRUE(tree.legal());
    expect_equivalent(spec, tree, CpaKind::kRippleCarry);
    expect_equivalent(spec, tree, CpaKind::kKoggeStone);
  }
}

TEST(Equivalence, DetectsBrokenNetlist) {
  // Sanity: the checker actually fails on a wrong circuit.
  const MultiplierSpec spec{4, PpgKind::kAnd, false};
  auto nl = ppg::build_multiplier(spec, ppg::initial_tree(spec),
                                  CpaKind::kRippleCarry);
  // Corrupt one gate: swap an AND into an OR.
  for (auto& g : nl.gates()) {
    if (g.kind == netlist::CellKind::kAnd2) {
      g.kind = netlist::CellKind::kOr2;
      break;
    }
  }
  util::Rng rng(1);
  const auto rep = check_equivalence(nl, spec, rng, 1 << 16, 1024);
  EXPECT_FALSE(rep.equivalent);
}

TEST(Equivalence, ReportsCounterexample) {
  const MultiplierSpec spec{4, PpgKind::kAnd, false};
  auto nl = ppg::build_multiplier(spec, ppg::initial_tree(spec),
                                  CpaKind::kRippleCarry);
  for (auto& g : nl.gates()) {
    if (g.kind == netlist::CellKind::kAnd2) {
      g.kind = netlist::CellKind::kOr2;
      break;
    }
  }
  util::Rng rng(1);
  const auto rep = check_equivalence(nl, spec, rng, 1 << 16, 1024);
  ASSERT_FALSE(rep.equivalent);
  EXPECT_NE(rep.got, rep.expect);
  EXPECT_EQ(rep.expect, golden_product(rep.a, rep.b, 4));
}

TEST(Simulator, InputIndexLookup) {
  const MultiplierSpec spec{4, PpgKind::kAnd, false};
  const auto nl = ppg::build_multiplier(spec, ppg::initial_tree(spec),
                                        CpaKind::kRippleCarry);
  Simulator sim(nl);
  EXPECT_EQ(sim.input_index("a0"), 0);
  EXPECT_EQ(sim.input_index("b0"), 4);
  EXPECT_EQ(sim.input_index("nope"), -1);
  EXPECT_EQ(sim.num_outputs(), 8);
}

}  // namespace
}  // namespace rlmul::sim
