// Tests for the persistent design-space database: fingerprint keying,
// journal durability (including torn-tail crash recovery), concurrent
// writers, and the warm-start / free-hit budget semantics the search
// layer builds on top of it.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "ct/compressor_tree.hpp"
#include "dsdb/fingerprint.hpp"
#include "dsdb/journal.hpp"
#include "dsdb/store.hpp"
#include "ppg/ppg.hpp"
#include "rl/env.hpp"
#include "search/driver.hpp"
#include "search/registry.hpp"
#include "synth/evaluator.hpp"
#include "util/rng.hpp"

namespace {

using namespace rlmul;

ppg::MultiplierSpec small_spec() {
  ppg::MultiplierSpec spec;
  spec.bits = 4;
  spec.ppg = ppg::PpgKind::kAnd;
  return spec;
}

search::MethodConfig tiny_config() {
  search::MethodConfig cfg;
  cfg.steps = 6;
  cfg.seed = 7;
  cfg.warmup = 2;
  cfg.batch_size = 2;
  cfg.buffer_capacity = 64;
  return cfg;
}

/// Fresh scratch directory under the build tree's temp space.
std::string scratch_dir(const std::string& tag) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("rlmul_dsdb_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

/// Fabricated evaluation — store/journal tests don't need synthesis.
synth::DesignEval fake_eval(double base, int n_targets = 2) {
  synth::DesignEval eval;
  for (int i = 0; i < n_targets; ++i) {
    synth::SynthesisResult res;
    res.area_um2 = base + i;
    res.delay_ns = base * 0.25 + i;
    res.power_mw = base * 0.125;
    res.met_target = i % 2 == 0;
    res.cpa = i % 2 == 0 ? netlist::CpaKind::kRippleCarry
                         : netlist::CpaKind::kKoggeStone;
    res.num_gates = 100 + i;
    eval.sum_area += res.area_um2;
    eval.sum_delay += res.delay_ns;
    eval.sum_power += res.power_mw;
    eval.per_target.push_back(res);
  }
  return eval;
}

/// Distinct trees reachable from the Wallace design (BFS over legal
/// actions, deduplicated by canonical key).
std::vector<ct::CompressorTree> distinct_trees(const ppg::MultiplierSpec& spec,
                                               std::size_t count) {
  std::vector<ct::CompressorTree> out;
  std::vector<std::string> seen;
  std::vector<ct::CompressorTree> frontier{ppg::initial_tree(spec)};
  const int max_stages = ct::stage_count(frontier.front()) + 2;
  while (!frontier.empty() && out.size() < count) {
    ct::CompressorTree tree = frontier.back();
    frontier.pop_back();
    const std::string key = tree.key();
    if (std::find(seen.begin(), seen.end(), key) != seen.end()) continue;
    seen.push_back(key);
    out.push_back(tree);
    const auto mask = ct::legal_action_mask(tree, max_stages, false);
    for (std::size_t a = 0; a < mask.size(); ++a) {
      if (mask[a] != 0) {
        frontier.push_back(
            ct::apply_action(tree, ct::action_from_index(static_cast<int>(a))));
      }
    }
  }
  EXPECT_GE(out.size(), count);
  return out;
}

dsdb::Record make_record(const ppg::MultiplierSpec& spec,
                         const std::vector<double>& targets,
                         const ct::CompressorTree& tree, double base) {
  dsdb::Record rec;
  rec.spec = spec;
  rec.targets = targets;
  rec.tree = tree;
  rec.eval = fake_eval(base, static_cast<int>(targets.size()));
  return rec;
}

// ---------------------------------------------------------------------------
// Fingerprints

TEST(DsdbFingerprint, DistinguishesSpecContextAndTree) {
  const auto spec = small_spec();
  const std::vector<double> targets{0.5, 1.0};
  const ct::CompressorTree wallace = ppg::initial_tree(spec);

  const auto base = dsdb::make_fingerprint(spec, targets, wallace);
  EXPECT_EQ(base, dsdb::make_fingerprint(spec, targets, wallace));

  ppg::MultiplierSpec wider = spec;
  wider.bits = 6;
  EXPECT_NE(base.full_key(),
            dsdb::make_fingerprint(wider, targets, ppg::initial_tree(wider))
                .full_key());

  ppg::MultiplierSpec booth = spec;
  booth.ppg = ppg::PpgKind::kBooth;
  EXPECT_NE(base.spec_fp, dsdb::spec_fingerprint(booth));

  ppg::MultiplierSpec mac = spec;
  mac.mac = true;
  EXPECT_NE(base.spec_fp, dsdb::spec_fingerprint(mac));

  EXPECT_NE(base.ctx_fp, dsdb::context_fingerprint({0.5, 1.1}));
  EXPECT_NE(base.ctx_fp, dsdb::context_fingerprint({0.5}));

  const auto mask = ct::legal_action_mask(wallace, 100, false);
  for (std::size_t a = 0; a < mask.size(); ++a) {
    if (mask[a] == 0) continue;
    const auto moved =
        ct::apply_action(wallace, ct::action_from_index(static_cast<int>(a)));
    EXPECT_NE(base.full_key(),
              dsdb::make_fingerprint(spec, targets, moved).full_key());
    break;
  }
}

// ---------------------------------------------------------------------------
// Journal + record codec

TEST(DsdbJournal, FramesRoundTrip) {
  const std::string dir = scratch_dir("journal");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/j.rldb";

  std::vector<std::uint8_t> bytes = dsdb::journal_header();
  const std::vector<std::vector<std::uint8_t>> payloads{
      {1, 2, 3}, {}, {0xFF, 0x00, 0xAB, 0xCD}};
  for (const auto& p : payloads) dsdb::append_frame(bytes, p);
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  std::vector<std::vector<std::uint8_t>> got;
  const auto res = dsdb::replay_journal(
      path, [&](const std::vector<std::uint8_t>& p) { got.push_back(p); });
  EXPECT_EQ(res.records, payloads.size());
  EXPECT_EQ(got, payloads);
  EXPECT_FALSE(res.truncated_tail);
  EXPECT_FALSE(res.missing);
  EXPECT_FALSE(res.bad_header);
  EXPECT_EQ(res.valid_bytes, bytes.size());

  std::filesystem::remove_all(dir);
}

TEST(DsdbJournal, StopsAtCorruptFrame) {
  const std::string dir = scratch_dir("journal_corrupt");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/j.rldb";

  std::vector<std::uint8_t> bytes = dsdb::journal_header();
  dsdb::append_frame(bytes, {1, 2, 3});
  const std::size_t good = bytes.size();
  dsdb::append_frame(bytes, {4, 5, 6});
  bytes.back() ^= 0xFF;  // corrupt the second frame's payload
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  std::size_t records = 0;
  const auto res = dsdb::replay_journal(
      path, [&](const std::vector<std::uint8_t>&) { ++records; });
  EXPECT_EQ(records, 1u);
  EXPECT_EQ(res.valid_bytes, good);
  EXPECT_TRUE(res.truncated_tail);

  std::filesystem::remove_all(dir);
}

TEST(DsdbRecord, CodecRoundTripsBitIdentical) {
  const auto spec = small_spec();
  const std::vector<double> targets{0.45, 0.9, 1.8};
  const auto rec =
      make_record(spec, targets, ppg::initial_tree(spec), 123.456);

  dsdb::Record back;
  ASSERT_TRUE(dsdb::decode_record(dsdb::encode_record(rec), &back));
  EXPECT_EQ(back.spec, rec.spec);
  EXPECT_EQ(back.targets, rec.targets);
  EXPECT_EQ(back.tree.key(), rec.tree.key());
  EXPECT_EQ(back.tree.pp, rec.tree.pp);
  ASSERT_EQ(back.eval.per_target.size(), rec.eval.per_target.size());
  // Bit-identical: the decoder re-accumulates sums in target order.
  EXPECT_EQ(back.eval.sum_area, rec.eval.sum_area);
  EXPECT_EQ(back.eval.sum_delay, rec.eval.sum_delay);
  EXPECT_EQ(back.eval.sum_power, rec.eval.sum_power);
  for (std::size_t i = 0; i < rec.eval.per_target.size(); ++i) {
    EXPECT_EQ(back.eval.per_target[i].area_um2,
              rec.eval.per_target[i].area_um2);
    EXPECT_EQ(back.eval.per_target[i].cpa, rec.eval.per_target[i].cpa);
    EXPECT_EQ(back.eval.per_target[i].num_gates,
              rec.eval.per_target[i].num_gates);
  }
  // Encode(decode(x)) == encode(x): the codec is canonical.
  EXPECT_EQ(dsdb::encode_record(back), dsdb::encode_record(rec));

  std::vector<std::uint8_t> wrong_version = dsdb::encode_record(rec);
  wrong_version[0] ^= 0xFF;
  EXPECT_FALSE(dsdb::decode_record(wrong_version, &back));
}

// ---------------------------------------------------------------------------
// Store

TEST(DsdbStore, PersistsAcrossReopen) {
  const std::string dir = scratch_dir("reopen");
  const auto spec = small_spec();
  const std::vector<double> targets{0.5, 1.0};
  const auto trees = distinct_trees(spec, 5);

  {
    dsdb::Store store(dir);
    for (std::size_t i = 0; i < trees.size(); ++i) {
      EXPECT_TRUE(store.put(make_record(spec, targets, trees[i], 10.0 + i)));
      // Duplicate put is rejected and journaled once.
      EXPECT_FALSE(store.put(make_record(spec, targets, trees[i], 999.0)));
    }
    store.flush();
    EXPECT_EQ(store.size(), trees.size());
  }

  dsdb::Store store(dir);
  EXPECT_EQ(store.size(), trees.size());
  EXPECT_EQ(store.stats().replayed, trees.size());
  for (std::size_t i = 0; i < trees.size(); ++i) {
    synth::DesignEval eval;
    ASSERT_TRUE(store.lookup(dsdb::make_fingerprint(spec, targets, trees[i]),
                             &eval));
    const auto want = fake_eval(10.0 + i, 2);
    EXPECT_EQ(eval.sum_area, want.sum_area);
    EXPECT_EQ(eval.sum_delay, want.sum_delay);
  }
  EXPECT_FALSE(store.lookup(
      dsdb::make_fingerprint(spec, {0.123}, trees.front()), nullptr));

  std::filesystem::remove_all(dir);
}

TEST(DsdbStore, ConcurrentWritersReopenBitIdentical) {
  const std::string dir = scratch_dir("hammer");
  const auto spec = small_spec();
  const std::vector<double> targets{0.5, 1.0};
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 8;
  const auto trees = distinct_trees(spec, kThreads * kPerThread);

  auto canonical = [&](const dsdb::Store& store) {
    std::vector<std::vector<std::uint8_t>> blobs;
    for (const dsdb::Record& rec : store.all_records()) {
      blobs.push_back(dsdb::encode_record(rec));
    }
    std::sort(blobs.begin(), blobs.end());
    return blobs;
  };

  std::vector<std::vector<std::uint8_t>> before;
  {
    dsdb::Store store(dir);
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        for (std::size_t i = 0; i < kPerThread; ++i) {
          const std::size_t idx = t * kPerThread + i;
          store.put(make_record(spec, targets, trees[idx],
                                static_cast<double>(idx)));
          // Interleave lookups (some for keys other threads own).
          synth::DesignEval eval;
          store.lookup(
              dsdb::make_fingerprint(spec, targets, trees[idx ^ 1]), &eval);
        }
      });
    }
    for (auto& w : workers) w.join();
    store.flush();
    EXPECT_EQ(store.size(), kThreads * kPerThread);
    before = canonical(store);
  }

  // Reopen: the replayed index must be bit-identical to what the
  // hammered store held.
  dsdb::Store store(dir);
  EXPECT_EQ(store.size(), kThreads * kPerThread);
  EXPECT_EQ(canonical(store), before);
  EXPECT_EQ(store.stats().dropped, 0u);
  EXPECT_FALSE(store.stats().recovered_tail);

  std::filesystem::remove_all(dir);
}

TEST(DsdbStore, RecoversFromTornTail) {
  const std::string dir = scratch_dir("torn");
  const auto spec = small_spec();
  const std::vector<double> targets{0.5, 1.0};
  const auto trees = distinct_trees(spec, 4);

  std::uintmax_t full_size = 0;
  {
    dsdb::Store store(dir);
    for (std::size_t i = 0; i < trees.size(); ++i) {
      store.put(make_record(spec, targets, trees[i], 20.0 + i));
    }
    store.flush();
    full_size = std::filesystem::file_size(store.journal_path());
  }

  const std::string journal = dir + "/journal.rldb";
  // Tear the last record in half (a writer died mid-append)...
  std::filesystem::resize_file(journal, full_size - 10);
  // ...and splatter garbage after the tear for good measure.
  {
    std::ofstream out(journal, std::ios::binary | std::ios::app);
    const char garbage[] = "\xde\xad\xbe\xef garbage";
    out.write(garbage, sizeof(garbage));
  }

  {
    dsdb::Store store(dir);
    // Every record before the tear survives; the torn one is gone.
    EXPECT_EQ(store.size(), trees.size() - 1);
    EXPECT_TRUE(store.stats().recovered_tail);
    for (std::size_t i = 0; i + 1 < trees.size(); ++i) {
      EXPECT_TRUE(store.lookup(
          dsdb::make_fingerprint(spec, targets, trees[i]), nullptr));
    }
    // The store stays writable after recovery: re-adding the lost
    // record lands on the truncated clean boundary.
    EXPECT_TRUE(
        store.put(make_record(spec, targets, trees.back(), 23.0)));
    store.flush();
  }
  dsdb::Store store(dir);
  EXPECT_EQ(store.size(), trees.size());
  EXPECT_FALSE(store.stats().recovered_tail);

  std::filesystem::remove_all(dir);
}

TEST(DsdbStore, CompactDropsDuplicateFramesAndTail) {
  const std::string dir = scratch_dir("compact");
  const auto spec = small_spec();
  const std::vector<double> targets{0.5, 1.0};
  const auto trees = distinct_trees(spec, 6);

  {
    dsdb::Store store(dir);
    for (std::size_t i = 0; i < trees.size(); ++i) {
      store.put(make_record(spec, targets, trees[i], 30.0 + i));
    }
    store.flush();
  }
  // A second generation re-journals nothing (dedup), so only grow the
  // file artificially: append a torn frame that compaction must shed.
  {
    std::ofstream out(dir + "/journal.rldb",
                      std::ios::binary | std::ios::app);
    out.write("torn", 4);
  }

  dsdb::Store store(dir);
  EXPECT_EQ(store.size(), trees.size());
  const std::uint64_t before = std::filesystem::file_size(dir +
                                                          "/journal.rldb");
  store.compact();
  EXPECT_EQ(store.size(), trees.size());
  EXPECT_LE(store.journal_bytes(), before);
  EXPECT_EQ(std::filesystem::file_size(dir + "/journal.rldb"),
            store.journal_bytes());

  // Deterministic: compacting a store twice yields identical bytes.
  store.compact();
  std::ifstream in(dir + "/journal.rldb", std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes.size(), store.journal_bytes());

  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Evaluator integration + budget semantics

TEST(DsdbEvaluator, WarmEvaluatorSynthesizesNothingAndMatchesBitExact) {
  const std::string dir = scratch_dir("evaluator");
  const auto spec = small_spec();
  const std::vector<double> targets = synth::default_targets(spec);
  const auto trees = distinct_trees(spec, 3);

  std::vector<synth::DesignEval> cold_evals;
  {
    dsdb::Store store(dir);
    dsdb::EvaluatorBinding binding(store, spec, targets);
    synth::EvaluatorOptions opts;
    opts.external_cache = &binding;
    synth::DesignEvaluator evaluator(spec, targets, opts);
    for (const auto& tree : trees) {
      cold_evals.push_back(evaluator.evaluate(tree));
    }
    EXPECT_GE(evaluator.num_unique_evaluations(), trees.size());
    store.flush();
  }

  dsdb::Store store(dir);
  dsdb::EvaluatorBinding binding(store, spec, targets);
  synth::EvaluatorOptions opts;
  opts.external_cache = &binding;
  synth::DesignEvaluator evaluator(spec, targets, opts);
  // Even the constructor's Wallace reference evaluation was a hit.
  EXPECT_EQ(evaluator.num_unique_evaluations(), 0u);
  for (std::size_t i = 0; i < trees.size(); ++i) {
    const synth::DesignEval warm = evaluator.evaluate(trees[i]);
    EXPECT_EQ(warm.sum_area, cold_evals[i].sum_area);
    EXPECT_EQ(warm.sum_delay, cold_evals[i].sum_delay);
    EXPECT_EQ(warm.sum_power, cold_evals[i].sum_power);
    ASSERT_EQ(warm.per_target.size(), cold_evals[i].per_target.size());
    for (std::size_t j = 0; j < warm.per_target.size(); ++j) {
      EXPECT_EQ(warm.per_target[j].area_um2,
                cold_evals[i].per_target[j].area_um2);
      EXPECT_EQ(warm.per_target[j].delay_ns,
                cold_evals[i].per_target[j].delay_ns);
    }
  }
  EXPECT_EQ(evaluator.num_unique_evaluations(), 0u);
  // trees[0] IS the Wallace design: the constructor's reference
  // evaluation already pulled it from the store, so re-evaluating it is
  // an in-memory hit. External hits = Wallace (ctor) + the other trees.
  EXPECT_EQ(evaluator.stats().external_hits, trees.size());

  std::filesystem::remove_all(dir);
}

TEST(DsdbEvaluator, AdmitIsFreeAndServesRepeatVisits) {
  const auto spec = small_spec();
  synth::DesignEvaluator evaluator(spec);
  const std::size_t base = evaluator.num_unique_evaluations();

  const auto trees = distinct_trees(spec, 2);
  const auto eval = evaluator.evaluate(trees[1]);
  EXPECT_EQ(evaluator.num_unique_evaluations(), base + 1);

  synth::DesignEvaluator fresh(spec);
  EXPECT_FALSE(fresh.admit(ppg::initial_tree(spec), eval));  // cached already
  EXPECT_TRUE(fresh.admit(trees[1], eval));
  EXPECT_EQ(fresh.num_unique_evaluations(), 1u);  // Wallace only
  const auto served = fresh.evaluate(trees[1]);   // hit, not synthesis
  EXPECT_EQ(served.sum_area, eval.sum_area);
  EXPECT_EQ(fresh.num_unique_evaluations(), 1u);
  EXPECT_EQ(fresh.stats().admitted, 1u);
}

TEST(DsdbDriver, StoredHitsDoNotChargeTheBudget) {
  const std::string dir = scratch_dir("budget");
  const auto spec = small_spec();
  const std::vector<double> targets = synth::default_targets(spec);
  search::MethodConfig cfg = tiny_config();

  search::RunResult cold;
  {
    dsdb::Store store(dir);
    dsdb::EvaluatorBinding binding(store, spec, targets);
    synth::EvaluatorOptions opts;
    opts.external_cache = &binding;
    synth::DesignEvaluator evaluator(spec, targets, opts);
    search::Driver driver(evaluator);
    auto method = search::make_method("sa", cfg);
    cold = driver.run(*method);
    EXPECT_GT(cold.eda_consumed, 0u);
    store.flush();
  }

  // Same search against the populated store with a budget of ONE: every
  // evaluation is a stored hit, so the run must go the distance with
  // zero consumed budget.
  dsdb::Store store(dir);
  dsdb::EvaluatorBinding binding(store, spec, targets);
  synth::EvaluatorOptions opts;
  opts.external_cache = &binding;
  synth::DesignEvaluator evaluator(spec, targets, opts);
  search::DriverOptions dopts;
  dopts.eda_budget = 1;
  search::Driver driver(evaluator, dopts);
  auto method = search::make_method("sa", cfg);
  const auto warm = driver.run(*method);
  EXPECT_EQ(warm.eda_consumed, 0u);
  EXPECT_EQ(warm.steps_done, cold.steps_done);
  EXPECT_EQ(warm.best_cost, cold.best_cost);
  EXPECT_EQ(warm.best_tree.key(), cold.best_tree.key());
  EXPECT_EQ(warm.trajectory, cold.trajectory);

  std::filesystem::remove_all(dir);
}

TEST(DsdbDriver, WarmStartSeedsSaAndDqn) {
  const std::string dir = scratch_dir("warmstart");
  const auto spec = small_spec();
  const std::vector<double> targets = synth::default_targets(spec);
  search::MethodConfig cfg = tiny_config();

  double stored_best = 0.0;
  {
    dsdb::Store store(dir);
    dsdb::EvaluatorBinding binding(store, spec, targets);
    synth::EvaluatorOptions opts;
    opts.external_cache = &binding;
    synth::DesignEvaluator evaluator(spec, targets, opts);
    search::Driver driver(evaluator);
    auto method = search::make_method("sa", cfg);
    stored_best = driver.run(*method).best_cost;
    store.flush();
  }

  dsdb::Store store(dir);
  for (const char* name : {"sa", "dqn", "a2c"}) {
    dsdb::EvaluatorBinding binding(store, spec, targets);
    synth::EvaluatorOptions opts;
    opts.external_cache = &binding;
    synth::DesignEvaluator evaluator(spec, targets, opts);
    const search::WarmStartRecords warm =
        store.warm_start_records(spec, evaluator.targets());
    ASSERT_FALSE(warm.empty());
    search::DriverOptions dopts;
    dopts.warm_start = &warm;
    search::Driver driver(evaluator, dopts);
    search::MethodConfig wcfg = cfg;
    wcfg.steps = 2;
    wcfg.seed = 99;  // different trajectory than the cold run
    auto method = search::make_method(name, wcfg);
    const auto res = driver.run(*method);
    // The warm start seeds best-so-far with the stored best, so even a
    // 2-step run can never end worse than the stored search did.
    EXPECT_LE(res.best_cost, stored_best) << name;
  }

  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Environment warm start + registry descriptions

TEST(DsdbEnv, InitialTreeOverridesReset) {
  const auto spec = small_spec();
  synth::DesignEvaluator evaluator(spec);
  const ct::CompressorTree wallace = ppg::initial_tree(spec);
  const auto trees = distinct_trees(spec, 2);

  rl::EnvConfig cfg;
  cfg.initial = trees[1];
  rl::MultiplierEnv env(evaluator, cfg);
  EXPECT_EQ(env.tree().key(), trees[1].key());
  env.reset();
  EXPECT_EQ(env.tree().key(), trees[1].key());

  // Stage bounds still derive from Wallace regardless of the override.
  rl::EnvConfig plain;
  rl::MultiplierEnv ref_env(evaluator, plain);
  EXPECT_EQ(env.max_stages(), ref_env.max_stages());
  EXPECT_EQ(ref_env.tree().key(), wallace.key());

  // A tree from a different spec must be rejected.
  ppg::MultiplierSpec wider = spec;
  wider.bits = 6;
  rl::EnvConfig bad;
  bad.initial = ppg::initial_tree(wider);
  EXPECT_THROW(rl::MultiplierEnv(evaluator, bad), std::invalid_argument);
}

TEST(DsdbRegistry, BuiltinsHaveDescriptions) {
  const auto infos = search::method_infos();
  ASSERT_EQ(infos.size(), search::registered_methods().size());
  for (const auto& info : infos) {
    EXPECT_FALSE(info.description.empty()) << info.name;
  }
  EXPECT_NE(search::method_description("dqn").find("Q-learning"),
            std::string::npos);
  EXPECT_TRUE(search::method_description("no_such_method").empty());

  search::register_method(
      "custom_probe",
      [](const search::MethodConfig& cfg) {
        return search::make_method("sa", cfg);
      },
      "test-only probe");
  EXPECT_EQ(search::method_description("custom_probe"), "test-only probe");
}

}  // namespace
