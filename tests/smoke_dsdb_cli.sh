#!/usr/bin/env bash
# CI smoke for the design-space database: two identical CLI searches
# share one --dsdb directory. The cold run populates the journal; the
# warm run (same seed, same method, no warm start, so the trajectory is
# identical) must serve every evaluation from the store — zero unique
# synthesis — and must not end with a worse best cost. Then the
# maintenance subcommands must work on the populated database.
# Usage: smoke_dsdb_cli.sh <path-to-rlmul_cli>
set -u

cli="${1:?usage: smoke_dsdb_cli.sh <rlmul_cli>}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
db="$tmp/db"

run() {
  "$cli" optimize --method sa --bits 6 --steps 8 --seed 3 --dsdb "$db" 2>&1
}

out1="$(run)"
if [ $? -ne 0 ]; then
  echo "$out1"
  echo "FAIL: cold run exited non-zero"
  exit 1
fi
line1="$(printf '%s\n' "$out1" | grep '^RLMUL_DSDB ' | tail -n 1)"
if [ -z "$line1" ]; then
  echo "$out1"
  echo "FAIL: cold run printed no RLMUL_DSDB line"
  exit 1
fi
echo "cold: $line1"

build1="$(printf '%s\n' "$out1" | grep '^RLMUL_BUILD ' | tail -n 1)"
if [ -z "$build1" ]; then
  echo "$out1"
  echo "FAIL: cold run printed no RLMUL_BUILD provenance line"
  exit 1
fi
echo "cold: $build1"

out2="$(run)"
if [ $? -ne 0 ]; then
  echo "$out2"
  echo "FAIL: warm run exited non-zero"
  exit 1
fi
line2="$(printf '%s\n' "$out2" | grep '^RLMUL_DSDB ' | tail -n 1)"
if [ -z "$line2" ]; then
  echo "$out2"
  echo "FAIL: warm run printed no RLMUL_DSDB line"
  exit 1
fi
echo "warm: $line2"

get() {
  printf '%s\n' "$2" | tr ' ' '\n' | grep "^$1=" | head -n 1 | cut -d= -f2
}

synth1="$(get unique_synth "$line1")"
synth2="$(get unique_synth "$line2")"
cost1="$(get best_cost "$line1")"
cost2="$(get best_cost "$line2")"

if [ -z "$synth1" ] || [ "$synth1" -lt 1 ]; then
  echo "FAIL: cold run should synthesize (unique_synth=${synth1:-missing})"
  exit 1
fi
if [ -z "$synth2" ] || [ "$synth2" -ne 0 ]; then
  echo "FAIL: warm run must not synthesize (unique_synth=${synth2:-missing})"
  exit 1
fi
# Identical trajectory, so "no worse" is cost2 <= cost1 (they should in
# fact be bit-identical; allow improvement, reject regression).
if ! awk -v a="$cost2" -v b="$cost1" 'BEGIN { exit !(a <= b) }'; then
  echo "FAIL: warm best_cost $cost2 worse than cold $cost1"
  exit 1
fi

stats_out="$("$cli" dsdb-stats --dsdb "$db" 2>&1)"
if [ $? -ne 0 ]; then
  echo "$stats_out"
  echo "FAIL: dsdb-stats exited non-zero"
  exit 1
fi
printf '%s\n' "$stats_out" | head -n 2

csv="$tmp/export.csv"
if ! "$cli" dsdb-export-csv --dsdb "$db" -o "$csv" >/dev/null 2>&1; then
  echo "FAIL: dsdb-export-csv exited non-zero"
  exit 1
fi
rows="$(wc -l < "$csv")"
if [ "$rows" -lt 2 ]; then
  echo "FAIL: exported CSV has no data rows"
  exit 1
fi

if ! "$cli" dsdb-compact --dsdb "$db" >/dev/null 2>&1; then
  echo "FAIL: dsdb-compact exited non-zero"
  exit 1
fi
# Compaction must preserve the warm-run contract.
out3="$(run)"
line3="$(printf '%s\n' "$out3" | grep '^RLMUL_DSDB ' | tail -n 1)"
synth3="$(get unique_synth "$line3")"
if [ -z "$synth3" ] || [ "$synth3" -ne 0 ]; then
  echo "FAIL: post-compaction run synthesized (unique_synth=${synth3:-missing})"
  exit 1
fi

echo "PASS: dsdb smoke (cold unique_synth=$synth1, warm unique_synth=0," \
     "csv rows=$rows)"
