// RL stack tests: tensor encoding, environment semantics (reward =
// cost improvement, masks, Pareto archive), replay buffer, masked
// softmax, and smoke training runs for both agents.

#include <gtest/gtest.h>

#include <iterator>
#include <limits>
#include <stdexcept>
#include <string>

#include "ppg/ppg.hpp"
#include "prefix/prefix_graph.hpp"
#include "rl/a2c.hpp"
#include "rl/dqn.hpp"
#include "rl/env.hpp"
#include "rl/env_pool.hpp"

namespace rlmul::rl {
namespace {

using ppg::MultiplierSpec;
using ppg::PpgKind;

MultiplierSpec small_spec() { return {4, PpgKind::kAnd, false}; }

TEST(Encode, ShapeAndContents) {
  const auto tree = ppg::initial_tree(small_spec());
  const auto sa = ct::assign_stages(tree);
  const nt::Tensor t = encode_tree(tree, 6);
  EXPECT_EQ(t.shape(), (std::vector<int>{1, kStateChannels, 8, 6}));
  // Channel sums must reproduce the matrix representation M.
  for (int j = 0; j < tree.columns(); ++j) {
    float s32 = 0.0f;
    float s22 = 0.0f;
    for (int s = 0; s < 6; ++s) {
      s32 += t.at(0, 0, j, s);
      s22 += t.at(0, 1, j, s);
    }
    EXPECT_EQ(static_cast<int>(s32), tree.c32[j]);
    EXPECT_EQ(static_cast<int>(s22), tree.c22[j]);
  }
  EXPECT_LE(sa.stages, 6);
}

TEST(Encode, ClippedStagesFoldIntoLastPlane) {
  const auto tree = ppg::initial_tree({8, PpgKind::kAnd, false});
  const nt::Tensor narrow = encode_tree(tree, 2);
  // Total compressor mass is preserved even when clipping.
  double total = 0.0;
  for (std::size_t i = 0; i < narrow.numel(); ++i) total += narrow[i];
  EXPECT_EQ(static_cast<int>(total),
            tree.total_c32() + tree.total_c22());
}

TEST(Encode, BatchStacksIndividualEncodings) {
  const auto t1 = ppg::initial_tree(small_spec());
  const auto t2 = ct::dadda_tree(ppg::pp_heights(small_spec()));
  const nt::Tensor batch = encode_batch({t1, t2}, 5);
  EXPECT_EQ(batch.dim(0), 2);
  const nt::Tensor single = encode_tree(t2, 5);
  for (std::size_t i = 0; i < single.numel(); ++i) {
    EXPECT_EQ(batch[single.numel() + i], single[i]);
  }
}

TEST(Encode, BatchRejectsMixedWidths) {
  const auto narrow = ppg::initial_tree(small_spec());
  const auto wide = ppg::initial_tree({8, PpgKind::kAnd, false});
  EXPECT_THROW(encode_batch({narrow, wide}, 5), std::invalid_argument);
}

TEST(Env, ResetRestoresInitialState) {
  synth::DesignEvaluator ev(small_spec());
  MultiplierEnv env(ev, EnvConfig{});
  const auto initial = env.tree();
  const double initial_cost = env.current_cost();
  const auto mask = env.mask();
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i] != 0) {
      env.step(static_cast<int>(i));
      break;
    }
  }
  EXPECT_NE(env.tree(), initial);
  env.reset();
  EXPECT_EQ(env.tree(), initial);
  EXPECT_DOUBLE_EQ(env.current_cost(), initial_cost);
}

TEST(Env, RewardIsCostDelta) {
  synth::DesignEvaluator ev(small_spec());
  MultiplierEnv env(ev, EnvConfig{});
  const double before = env.current_cost();
  const auto mask = env.mask();
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i] != 0) {
      const auto sr = env.step(static_cast<int>(i));
      EXPECT_NEAR(sr.reward, before - sr.cost, 1e-12);
      EXPECT_NEAR(env.current_cost(), sr.cost, 1e-12);
      return;
    }
  }
  FAIL() << "no legal action";
}

TEST(Env, IllegalActionThrows) {
  synth::DesignEvaluator ev(small_spec());
  MultiplierEnv env(ev, EnvConfig{});
  const auto mask = env.mask();
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i] == 0) {
      EXPECT_THROW(env.step(static_cast<int>(i)), std::invalid_argument);
      return;
    }
  }
}

TEST(Env, TracksBestDesign) {
  synth::DesignEvaluator ev(small_spec());
  MultiplierEnv env(ev, EnvConfig{});
  util::Rng rng(3);
  double best = env.best_cost();
  for (int step = 0; step < 10; ++step) {
    const auto mask = env.mask();
    std::vector<double> w(mask.size());
    for (std::size_t i = 0; i < mask.size(); ++i) w[i] = mask[i];
    const auto pick = rng.sample_discrete(w);
    if (pick >= mask.size()) break;
    env.step(static_cast<int>(pick));
    best = std::min(best, env.current_cost());
  }
  EXPECT_NEAR(env.best_cost(), best, 1e-12);
  EXPECT_TRUE(env.best_tree().legal());
}

TEST(JointEnv, ActionSpaceMaskAndChannels) {
  synth::DesignEvaluator ev(small_spec());
  EnvConfig cfg;
  cfg.search_cpa = true;
  cfg.search_ppg = true;
  cfg.prefix_levels = 3;
  MultiplierEnv env(ev, cfg);

  const int cols = env.tree().columns();
  const int prefix_actions = cfg.prefix_levels * cols;
  const int ppg_actions = static_cast<int>(std::size(ppg::kAllPpgKinds));
  EXPECT_EQ(env.num_actions(),
            env.num_ct_actions() + prefix_actions + ppg_actions);
  EXPECT_EQ(env.num_channels(), kStateChannels + 2);

  const auto mask = env.mask();
  ASSERT_EQ(mask.size(), static_cast<std::size_t>(env.num_actions()));
  // Prefix toggles are always legal (legalize repairs any matrix)...
  for (int i = 0; i < prefix_actions; ++i) {
    EXPECT_EQ(mask[static_cast<std::size_t>(env.num_ct_actions() + i)], 1);
  }
  // ...and only the current PPG family's switch is masked off.
  for (int i = 0; i < ppg_actions; ++i) {
    const auto m = mask[static_cast<std::size_t>(
        env.num_ct_actions() + prefix_actions + i)];
    EXPECT_EQ(m, ppg::kAllPpgKinds[static_cast<std::size_t>(i)] ==
                         env.point().ppg
                     ? 0
                     : 1);
  }

  const nt::Tensor obs = env.observe();
  EXPECT_EQ(obs.shape(), (std::vector<int>{1, env.num_channels(), cols,
                                           env.stage_pad()}));
}

TEST(JointEnv, EncodePointFlagsOffIsByteIdentical) {
  ppg::DesignPoint point;
  point.tree = ppg::initial_tree(small_spec());
  point.cpa = prefix::serial(small_spec().columns());  // ignored flags-off
  const nt::Tensor plain = encode_tree(point.tree, 5);
  const nt::Tensor off = encode_point(point, 5, false, false);
  ASSERT_EQ(off.shape(), plain.shape());
  for (std::size_t i = 0; i < plain.numel(); ++i) {
    EXPECT_EQ(off[i], plain[i]) << "flat index " << i;
  }
}

TEST(JointEnv, PrefixToggleAndPpgSwitchKeepStateValid) {
  synth::DesignEvaluator ev(small_spec());
  EnvConfig cfg;
  cfg.search_cpa = true;
  cfg.search_ppg = true;
  MultiplierEnv env(ev, cfg);
  ASSERT_TRUE(env.point().cpa_pinned());

  // Toggle a matrix cell: the point must stay pinned on a valid graph.
  const double before = env.current_cost();
  const auto sr = env.step(env.num_ct_actions() + 1);
  EXPECT_NEAR(sr.reward, before - sr.cost, 1e-12);
  ASSERT_TRUE(env.point().cpa_pinned());
  std::string why;
  EXPECT_TRUE(prefix::valid(env.point().cpa, &why)) << why;
  EXPECT_TRUE(env.point().tree.legal());

  // Switch the PPG family: the tree retargets onto the new pp heights
  // and must land legal (the full-sweep ct::legalize contract).
  const int prefix_actions = cfg.prefix_levels * env.tree().columns();
  const int booth_action = env.num_ct_actions() + prefix_actions + 1;
  ASSERT_EQ(ppg::kAllPpgKinds[1], PpgKind::kBooth);
  env.step(booth_action);
  EXPECT_EQ(env.point().ppg, PpgKind::kBooth);
  EXPECT_TRUE(env.point().tree.legal());
  const auto spec = env.point().resolved_spec(small_spec());
  EXPECT_EQ(env.point().tree.pp, ppg::pp_heights(spec));
  // The now-current family's switch is masked, the old one unmasked.
  const auto mask = env.mask();
  EXPECT_EQ(mask[static_cast<std::size_t>(booth_action)], 0);
  EXPECT_EQ(mask[static_cast<std::size_t>(env.num_ct_actions() +
                                          prefix_actions)],
            1);
}

TEST(Env, ObservationDepthStaysBoundedWithoutPruning) {
  // Regression: max_stages = huge (pruning off) must not blow up the
  // observation tensor; deep stages fold into the last plane instead.
  synth::DesignEvaluator ev(small_spec());
  EnvConfig cfg;
  cfg.max_stages = 1000;
  MultiplierEnv env(ev, cfg);
  EXPECT_LE(env.stage_pad(), 16);
  EXPECT_EQ(env.observe().dim(3), env.stage_pad());
}

TEST(Env, StagePruningBoundsVisitedStates) {
  synth::DesignEvaluator ev(small_spec());
  EnvConfig cfg;
  cfg.max_stages = ct::stage_count(ppg::initial_tree(small_spec()));
  MultiplierEnv env(ev, cfg);
  util::Rng rng(4);
  for (int step = 0; step < 10; ++step) {
    const auto mask = env.mask();
    std::vector<double> w(mask.size());
    for (std::size_t i = 0; i < mask.size(); ++i) w[i] = mask[i];
    const auto pick = rng.sample_discrete(w);
    if (pick >= mask.size()) break;
    env.step(static_cast<int>(pick));
    EXPECT_LE(ct::stage_count(env.tree()), cfg.max_stages);
  }
}

TEST(ReplayBuffer, WrapsAtCapacity) {
  ReplayBuffer buf(3);
  for (int i = 0; i < 5; ++i) {
    Transition t;
    t.action = i;
    buf.push(std::move(t));
  }
  EXPECT_EQ(buf.size(), 3u);
  util::Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_GE(buf.sample(rng).action, 2);  // 0 and 1 were evicted
  }
}

TEST(MaskedSoftmax, NormalizesOverLegalSupport) {
  const float logits[4] = {1.0f, 2.0f, 3.0f, 4.0f};
  const auto p = masked_softmax(logits, {1, 0, 1, 0});
  EXPECT_DOUBLE_EQ(p[1], 0.0);
  EXPECT_DOUBLE_EQ(p[3], 0.0);
  EXPECT_NEAR(p[0] + p[2], 1.0, 1e-12);
  EXPECT_GT(p[2], p[0]);
}

TEST(MaskedSoftmax, AllMaskedGivesZeros) {
  const float logits[2] = {1.0f, 2.0f};
  const auto p = masked_softmax(logits, {0, 0});
  EXPECT_DOUBLE_EQ(p[0] + p[1], 0.0);
}

TEST(MaskedSoftmax, NumericallyStableForLargeLogits) {
  const float logits[2] = {1000.0f, 1001.0f};
  const auto p = masked_softmax(logits, {1, 1});
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-9);
  EXPECT_GT(p[1], p[0]);
}

TEST(MaskedSoftmax, UniformFallbackOnExtremeLogits) {
  // exp(x - max) underflows to 0 for every legal entry, so the sum of
  // exponentials is 0 (or NaN through -inf - -inf): instead of dividing
  // by zero the policy must fall back to uniform over the legal mask.
  const float inf = std::numeric_limits<float>::infinity();
  const float logits[4] = {-inf, -inf, -inf, 5.0f};
  const auto p = masked_softmax(logits, {1, 1, 1, 0});
  EXPECT_DOUBLE_EQ(p[0], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(p[1], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(p[2], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(p[3], 0.0);

  // Same without infinities: widely separated finite logits underflow.
  const float far[3] = {-1.0e30f, -1.0e30f, 1.0e30f};
  const auto q = masked_softmax(far, {1, 1, 0});
  EXPECT_DOUBLE_EQ(q[0], 0.5);
  EXPECT_DOUBLE_EQ(q[1], 0.5);
  EXPECT_DOUBLE_EQ(q[2], 0.0);
}

TEST(EnvPool, StepAllMatchesSequentialEnvs) {
  // The pooled workers must be observationally identical to stepping
  // N independent envs by hand: same trees, costs, rewards, masks.
  EnvConfig cfg;
  synth::DesignEvaluator pooled_ev(small_spec());
  EnvPool pool(pooled_ev, cfg, 3);
  synth::DesignEvaluator manual_ev(small_spec());
  std::vector<MultiplierEnv> manual;
  for (int i = 0; i < 3; ++i) manual.emplace_back(manual_ev, cfg);

  util::Rng rng(11);
  for (int step = 0; step < 6; ++step) {
    std::vector<int> actions;
    for (int i = 0; i < 3; ++i) {
      const auto mask = manual[static_cast<std::size_t>(i)].mask();
      std::vector<double> w(mask.size());
      for (std::size_t j = 0; j < mask.size(); ++j) w[j] = mask[j];
      const auto pick = rng.sample_discrete(w);
      // Every other env resets on the last step to exercise the
      // action < 0 path.
      if (step == 5 && i % 2 == 0) {
        actions.push_back(-1);
      } else {
        actions.push_back(pick < mask.size() ? static_cast<int>(pick) : -1);
      }
    }
    const auto outcomes = pool.step_all(actions);
    ASSERT_EQ(outcomes.size(), 3u);
    for (int i = 0; i < 3; ++i) {
      auto& env = manual[static_cast<std::size_t>(i)];
      if (actions[static_cast<std::size_t>(i)] < 0) {
        env.reset();
        EXPECT_FALSE(outcomes[static_cast<std::size_t>(i)].stepped);
      } else {
        const auto sr = env.step(actions[static_cast<std::size_t>(i)]);
        EXPECT_TRUE(outcomes[static_cast<std::size_t>(i)].stepped);
        EXPECT_DOUBLE_EQ(outcomes[static_cast<std::size_t>(i)].reward,
                         sr.reward);
      }
      EXPECT_DOUBLE_EQ(outcomes[static_cast<std::size_t>(i)].cost,
                       env.current_cost());
      EXPECT_EQ(pool.env(i).tree(), env.tree());
      EXPECT_EQ(pool.env(i).mask(), env.mask());
    }
  }
  // The batched observation matches encoding the trees directly.
  const auto obs = pool.observe_batch();
  const auto direct = encode_batch(pool.trees(), pool.stage_pad());
  ASSERT_EQ(obs.numel(), direct.numel());
  for (std::size_t i = 0; i < obs.numel(); ++i) {
    EXPECT_EQ(obs[i], direct[i]);
  }
}

TEST(EnvPool, RejectsActionCountMismatch) {
  synth::DesignEvaluator ev(small_spec());
  EnvPool pool(ev, EnvConfig{}, 2);
  EXPECT_THROW(pool.step_all({0}), std::invalid_argument);
}

TEST(Dqn, SmokeRunFindsNoWorseThanInitial) {
  synth::DesignEvaluator ev(small_spec());
  DqnOptions opts;
  opts.steps = 25;
  opts.warmup = 8;
  opts.batch_size = 4;
  opts.seed = 7;
  const TrainResult res = train_dqn(ev, opts);
  const double initial =
      ev.cost(ev.evaluate(ppg::initial_tree(small_spec())), 1.0, 1.0);
  EXPECT_LE(res.best_cost, initial + 1e-9);
  EXPECT_TRUE(res.best_tree.legal());
  EXPECT_EQ(res.trajectory.size(), 25u);
  EXPECT_GT(res.eda_calls, 0u);
}

TEST(Dqn, TargetNetworkVariantRuns) {
  synth::DesignEvaluator ev(small_spec());
  DqnOptions opts;
  opts.steps = 15;
  opts.warmup = 4;
  opts.batch_size = 4;
  opts.target_sync = 5;
  const TrainResult res = train_dqn(ev, opts);
  EXPECT_TRUE(res.best_tree.legal());
}

TEST(Dqn, DoubleDqnVariantRuns) {
  synth::DesignEvaluator ev(small_spec());
  DqnOptions opts;
  opts.steps = 15;
  opts.warmup = 4;
  opts.batch_size = 4;
  opts.target_sync = 5;
  opts.double_dqn = true;
  const TrainResult res = train_dqn(ev, opts);
  EXPECT_TRUE(res.best_tree.legal());
  const double initial =
      ev.cost(ev.evaluate(ppg::initial_tree(small_spec())), 1.0, 1.0);
  EXPECT_LE(res.best_cost, initial + 1e-9);
}

TEST(A2c, SmokeRunWithParallelEnvs) {
  synth::DesignEvaluator ev(small_spec());
  A2cOptions opts;
  opts.steps = 12;
  opts.num_threads = 3;
  opts.n_step = 4;
  opts.seed = 11;
  const TrainResult res = train_a2c(ev, opts);
  const double initial =
      ev.cost(ev.evaluate(ppg::initial_tree(small_spec())), 1.0, 1.0);
  EXPECT_LE(res.best_cost, initial + 1e-9);
  EXPECT_TRUE(res.best_tree.legal());
  EXPECT_EQ(res.trajectory.size(), 12u);
}

TEST(A2c, SingleThreadDegenerate) {
  synth::DesignEvaluator ev(small_spec());
  A2cOptions opts;
  opts.steps = 6;
  opts.num_threads = 1;
  opts.n_step = 3;
  const TrainResult res = train_a2c(ev, opts);
  EXPECT_EQ(res.trajectory.size(), 6u);
}

TEST(A2c, EpisodeResetsAndExtensionActionsRun) {
  synth::DesignEvaluator ev(small_spec());
  A2cOptions opts;
  opts.steps = 12;
  opts.num_threads = 2;
  opts.n_step = 3;
  opts.episode_length = 6;
  opts.enable_42 = true;
  const TrainResult res = train_a2c(ev, opts);
  EXPECT_TRUE(res.best_tree.legal());
  EXPECT_EQ(res.trajectory.size(), 12u);
  ASSERT_NE(res.network, nullptr);
}

TEST(TrainResult, ExposesTrainedNetworkForDeployment) {
  synth::DesignEvaluator ev(small_spec());
  DqnOptions opts;
  opts.steps = 10;
  opts.warmup = 4;
  opts.batch_size = 4;
  const TrainResult res = train_dqn(ev, opts);
  ASSERT_NE(res.network, nullptr);
  const TrainResult rollout = greedy_rollout(ev, *res.network, 5);
  EXPECT_TRUE(rollout.best_tree.legal());
}

TEST(Search, EvaluatorFrontierGrowsDuringTraining) {
  synth::DesignEvaluator ev(small_spec());
  const std::size_t before = ev.num_unique_evaluations();
  DqnOptions opts;
  opts.steps = 12;
  opts.warmup = 4;
  opts.batch_size = 4;
  train_dqn(ev, opts);
  EXPECT_GT(ev.num_unique_evaluations(), before);
  EXPECT_GE(ev.frontier().size(), 1u);
}

}  // namespace
}  // namespace rlmul::rl
