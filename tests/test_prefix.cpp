// Prefix-graph property tests: the four named constructors reproduce
// the legacy enum emitters bit for bit, legalization repairs any
// matrix into a valid graph and is idempotent, and canonicalization is
// invariant under node reordering.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "netlist/cell_library.hpp"
#include "netlist/ct_builder.hpp"
#include "prefix/prefix_graph.hpp"
#include "util/rng.hpp"

namespace rlmul::prefix {
namespace {

using netlist::ColumnSignals;
using netlist::CpaKind;
using netlist::LogicBuilder;
using netlist::Netlist;
using netlist::Signal;

// Column rows with a seeded ragged shape (0/1/2 live bits per column,
// both operand rows live at bit 0) so constant folding paths fire the
// same way in both netlists under comparison.
ColumnSignals make_rows(Netlist& nl, int width, std::uint64_t seed) {
  util::Rng rng(seed);
  ColumnSignals rows(static_cast<std::size_t>(width));
  for (int j = 0; j < width; ++j) {
    const int live = j == 0 ? 2 : static_cast<int>(rng.next_below(3));
    for (int i = 0; i < live; ++i) {
      rows[static_cast<std::size_t>(j)].push_back(Signal::of(
          nl.add_input("c" + std::to_string(j) + "_" + std::to_string(i))));
    }
  }
  return rows;
}

bool same_netlist(const Netlist& a, const Netlist& b) {
  if (a.num_nets() != b.num_nets()) return false;
  if (a.num_gates() != b.num_gates()) return false;
  for (int i = 0; i < a.num_gates(); ++i) {
    const auto& ga = a.gates()[static_cast<std::size_t>(i)];
    const auto& gb = b.gates()[static_cast<std::size_t>(i)];
    if (ga.kind != gb.kind || ga.variant != gb.variant ||
        ga.inputs != gb.inputs || ga.outputs != gb.outputs) {
      return false;
    }
  }
  return a.primary_inputs() == b.primary_inputs() &&
         a.primary_outputs() == b.primary_outputs();
}

PrefixGraph named(CpaKind kind, int width) {
  return netlist::prefix_graph_of(kind, width);
}

const CpaKind kKinds[] = {CpaKind::kRippleCarry, CpaKind::kBrentKung,
                          CpaKind::kSklansky, CpaKind::kKoggeStone};

TEST(PrefixEmission, FourKindsBitIdenticalToLegacy) {
  for (const int w : {1, 2, 3, 5, 8, 13, 16, 24, 32}) {
    for (const CpaKind kind : kKinds) {
      for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
        Netlist nl_new;
        Netlist nl_old;
        LogicBuilder lb_new(nl_new);
        LogicBuilder lb_old(nl_old);
        const ColumnSignals rows_new = make_rows(nl_new, w, seed);
        const ColumnSignals rows_old = make_rows(nl_old, w, seed);
        const auto out_new = netlist::build_cpa(lb_new, kind, rows_new);
        const auto out_old = netlist::build_cpa_legacy(lb_old, kind, rows_old);
        ASSERT_EQ(out_new, out_old)
            << "w=" << w << " kind=" << netlist::cpa_kind_name(kind);
        ASSERT_TRUE(same_netlist(nl_new, nl_old))
            << "w=" << w << " kind=" << netlist::cpa_kind_name(kind);
      }
    }
  }
}

TEST(PrefixEmission, GraphOverloadMatchesEnumForFullRows) {
  for (const int w : {4, 8, 16}) {
    for (const CpaKind kind : kKinds) {
      Netlist nl_graph;
      Netlist nl_enum;
      LogicBuilder lb_graph(nl_graph);
      LogicBuilder lb_enum(nl_enum);
      ColumnSignals rows_graph(static_cast<std::size_t>(w));
      ColumnSignals rows_enum(static_cast<std::size_t>(w));
      for (int j = 0; j < w; ++j) {
        rows_graph[static_cast<std::size_t>(j)] = {
            Signal::of(nl_graph.add_input("x" + std::to_string(j))),
            Signal::of(nl_graph.add_input("y" + std::to_string(j)))};
        rows_enum[static_cast<std::size_t>(j)] = {
            Signal::of(nl_enum.add_input("x" + std::to_string(j))),
            Signal::of(nl_enum.add_input("y" + std::to_string(j)))};
      }
      const auto a = netlist::build_cpa(lb_graph, named(kind, w), rows_graph);
      const auto b = netlist::build_cpa(lb_enum, kind, rows_enum);
      ASSERT_EQ(a, b);
      ASSERT_TRUE(same_netlist(nl_graph, nl_enum));
    }
  }
}

TEST(PrefixGraphTest, NamedConstructorsValid) {
  for (int w = 1; w <= 33; ++w) {
    for (const CpaKind kind : kKinds) {
      std::string why;
      EXPECT_TRUE(valid(named(kind, w), &why))
          << "w=" << w << " kind=" << netlist::cpa_kind_name(kind) << ": "
          << why;
    }
  }
}

TEST(PrefixGraphTest, NamedConstructorsRoundTripThroughCanonicalize) {
  for (const int w : {1, 2, 3, 4, 6, 8, 12, 16, 32}) {
    for (const CpaKind kind : kKinds) {
      const PrefixGraph c = named(kind, w);
      // canonicalize is stable ...
      EXPECT_EQ(canonicalize(c), canonicalize(canonicalize(c)));
      // ... and the matrix form legalizes back to the same structure.
      const Legalized leg = legalize(matrix_of(c));
      std::string why;
      ASSERT_TRUE(valid(leg.graph, &why)) << why;
      EXPECT_EQ(canonical_key(leg.graph), canonical_key(c))
          << "w=" << w << " kind=" << netlist::cpa_kind_name(kind);
    }
  }
}

Matrix random_matrix(int width, int rows, double density, util::Rng& rng) {
  Matrix m;
  m.width = width;
  for (int r = 0; r < rows; ++r) {
    for (int j = 0; j < width; ++j) {
      if (rng.next_bool(density)) m.set(r, j, true);
    }
  }
  return m;
}

TEST(PrefixLegalize, RandomMatrixLegalizesToValidGraph) {
  util::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const int w = 2 + static_cast<int>(rng.next_below(17));
    const int rows = static_cast<int>(rng.next_below(7));
    const double density = rng.next_double();
    const Matrix m = random_matrix(w, rows, density, rng);
    const Legalized leg = legalize(m);
    std::string why;
    ASSERT_TRUE(valid(leg.graph, &why)) << "trial " << trial << ": " << why;
    ASSERT_EQ(leg.graph.width, w);
  }
}

TEST(PrefixLegalize, Idempotent) {
  util::Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const int w = 2 + static_cast<int>(rng.next_below(17));
    const int rows = static_cast<int>(rng.next_below(7));
    const Matrix m = random_matrix(w, rows, rng.next_double(), rng);
    const Legalized once = legalize(m);
    const Legalized twice = legalize(once.matrix);
    ASSERT_EQ(once.matrix, twice.matrix) << "trial " << trial;
    ASSERT_EQ(once.graph, twice.graph) << "trial " << trial;
  }
}

/// Random topological reorder of the node list, with refs remapped.
PrefixGraph shuffled(const PrefixGraph& g, util::Rng& rng) {
  const int n = static_cast<int>(g.nodes.size());
  // remaining = number of parents still unplaced; a node is ready when
  // both its parents are placed (leaves are always placed).
  std::vector<int> remaining(g.nodes.size(), 0);
  for (int i = 0; i < n; ++i) {
    const Node& node = g.nodes[static_cast<std::size_t>(i)];
    remaining[static_cast<std::size_t>(i)] =
        (is_leaf(node.left) ? 0 : 1) + (is_leaf(node.right) ? 0 : 1);
  }
  std::vector<std::vector<int>> children(g.nodes.size());
  for (int i = 0; i < n; ++i) {
    const Node& node = g.nodes[static_cast<std::size_t>(i)];
    if (!is_leaf(node.left)) {
      children[static_cast<std::size_t>(node.left)].push_back(i);
    }
    if (!is_leaf(node.right)) {
      children[static_cast<std::size_t>(node.right)].push_back(i);
    }
  }
  std::vector<int> ready;
  for (int i = 0; i < n; ++i) {
    if (remaining[static_cast<std::size_t>(i)] == 0) ready.push_back(i);
  }
  PrefixGraph out;
  out.width = g.width;
  std::vector<Ref> newid(g.nodes.size(), 0);
  while (!ready.empty()) {
    const std::size_t pick = rng.next_below(ready.size());
    const int i = ready[pick];
    ready[pick] = ready.back();
    ready.pop_back();
    const Node& node = g.nodes[static_cast<std::size_t>(i)];
    Node copy = node;
    if (!is_leaf(copy.left)) copy.left = newid[static_cast<std::size_t>(copy.left)];
    if (!is_leaf(copy.right)) {
      copy.right = newid[static_cast<std::size_t>(copy.right)];
    }
    newid[static_cast<std::size_t>(i)] = static_cast<Ref>(out.nodes.size());
    out.nodes.push_back(copy);
    for (const int c : children[static_cast<std::size_t>(i)]) {
      if (--remaining[static_cast<std::size_t>(c)] == 0) ready.push_back(c);
    }
  }
  for (const Ref r : g.outputs) {
    out.outputs.push_back(is_leaf(r) ? r : newid[static_cast<std::size_t>(r)]);
  }
  return out;
}

TEST(PrefixCanonical, InvariantUnderNodeReordering) {
  util::Rng rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    const int w = 2 + static_cast<int>(rng.next_below(15));
    const Matrix m = random_matrix(w, 1 + static_cast<int>(rng.next_below(5)),
                                   rng.next_double(), rng);
    const PrefixGraph g = legalize(m).graph;
    const PrefixGraph perm = shuffled(g, rng);
    std::string why;
    ASSERT_TRUE(valid(perm, &why)) << why;
    ASSERT_EQ(canonicalize(g), canonicalize(perm)) << "trial " << trial;
    ASSERT_EQ(canonical_key(g), canonical_key(perm));
    ASSERT_EQ(canonical_hash(g), canonical_hash(perm));
  }
}

TEST(PrefixCanonical, DistinguishesArchitectures) {
  EXPECT_NE(canonical_key(kogge_stone(8)), canonical_key(sklansky(8)));
  EXPECT_NE(canonical_key(kogge_stone(8)), canonical_key(brent_kung(8)));
  EXPECT_NE(canonical_key(sklansky(8)), canonical_key(serial(8)));
  // Same architecture, same width: stable key.
  EXPECT_EQ(canonical_key(kogge_stone(16)), canonical_key(kogge_stone(16)));
}

TEST(PrefixSerial, DetectionAndEmptyMatrix) {
  for (const int w : {1, 2, 3, 8, 16}) {
    EXPECT_TRUE(is_serial(serial(w))) << w;
    Matrix empty;
    empty.width = w;
    EXPECT_EQ(legalize(empty).graph, serial(w)) << w;
  }
  EXPECT_FALSE(is_serial(kogge_stone(8)));
  EXPECT_FALSE(is_serial(sklansky(4)));
}

TEST(PrefixOutputLevels, SerialAndKoggeStone) {
  const auto sl = output_levels(serial(6));
  for (int j = 0; j < 6; ++j) EXPECT_EQ(sl[static_cast<std::size_t>(j)], j);
  const auto kl = output_levels(kogge_stone(8));
  EXPECT_EQ(kl[0], 0);
  EXPECT_EQ(kl[1], 1);
  EXPECT_EQ(kl[3], 2);
  EXPECT_EQ(kl[7], 3);
}

TEST(PrefixMoves, AllMovesLegalizeToValidGraphs) {
  util::Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const int w = 4 + static_cast<int>(rng.next_below(13));
    Matrix m = matrix_of(netlist::prefix_graph_of(
        kKinds[rng.next_below(4)], w));
    for (int step = 0; step < 6; ++step) {
      Move mv;
      mv.kind = static_cast<MoveKind>(rng.next_below(4));
      mv.level = static_cast<int>(rng.next_below(6));
      mv.bit = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(w)));
      mv.lo = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(w)));
      mv.hi = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(w)));
      m = apply_move(std::move(m), mv);
      const Legalized leg = legalize(m);
      std::string why;
      ASSERT_TRUE(valid(leg.graph, &why)) << why;
      m = leg.matrix;
    }
  }
}

TEST(CpaSweepOrder, MenuAreaOrderHoldsPerWidth) {
  // kAllCpaKinds is a documented contract: synthesize_design and the
  // batch evaluator walk it front to back assuming everything later is
  // larger (see ct_builder.hpp). Pin the full ripple < BK < SK < KS
  // standalone-adder area ordering at the widths the searches use, so
  // a cell-library or emitter change that flips it fails loudly.
  const auto& lib = netlist::CellLibrary::nangate45();
  for (const int width : {8, 16, 24, 32, 48}) {
    double prev = 0.0;
    for (std::size_t i = 0; i < std::size(netlist::kAllCpaKinds); ++i) {
      const CpaKind kind = netlist::kAllCpaKinds[i];
      Netlist nl;
      LogicBuilder lb(nl);
      ColumnSignals rows(static_cast<std::size_t>(width));
      for (int j = 0; j < width; ++j) {
        rows[static_cast<std::size_t>(j)] = {
            Signal::of(nl.add_input("x" + std::to_string(j))),
            Signal::of(nl.add_input("y" + std::to_string(j)))};
      }
      const auto sum = netlist::build_cpa(lb, kind, rows);
      for (int j = 0; j < width; ++j) {
        nl.mark_output(lb.materialize(sum[static_cast<std::size_t>(j)]),
                       "s" + std::to_string(j));
      }
      const double area = netlist::netlist_area(nl, lib);
      if (i > 0) {
        EXPECT_LT(prev, area)
            << netlist::cpa_kind_name(kind) << " not larger than its sweep "
            << "predecessor at width " << width;
      }
      prev = area;
    }
  }
}

}  // namespace
}  // namespace rlmul::prefix
