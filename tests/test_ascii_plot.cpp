// ASCII scatter-plot renderer tests.

#include "util/ascii_plot.hpp"

#include <gtest/gtest.h>

namespace rlmul::util {
namespace {

TEST(AsciiPlot, EmptyInput) {
  EXPECT_EQ(ascii_scatter({}), "(no points)\n");
}

TEST(AsciiPlot, RendersGlyphsAndLegend) {
  PlotSeries a{"alpha", {{0.0, 0.0}, {1.0, 1.0}}};
  PlotSeries b{"beta", {{0.5, 0.5}}};
  const std::string out = ascii_scatter({a, b});
  EXPECT_NE(out.find('W'), std::string::npos);  // first series glyph
  EXPECT_NE(out.find('G'), std::string::npos);  // second series glyph
  EXPECT_NE(out.find("W=alpha"), std::string::npos);
  EXPECT_NE(out.find("G=beta"), std::string::npos);
}

TEST(AsciiPlot, AxisBoundsAppear) {
  PlotSeries s{"s", {{10.0, 2.0}, {20.0, 4.0}}};
  PlotOptions opts;
  opts.x_label = "area";
  opts.y_label = "delay";
  const std::string out = ascii_scatter({s}, opts);
  EXPECT_NE(out.find("area"), std::string::npos);
  EXPECT_NE(out.find("delay"), std::string::npos);
}

TEST(AsciiPlot, ExtremePointsLandOnOppositeCorners) {
  PlotSeries s{"s", {{0.0, 0.0}, {100.0, 100.0}}};
  PlotOptions opts;
  opts.width = 20;
  opts.height = 8;
  const std::string out = ascii_scatter({s}, opts);
  // Split into lines; the min-y point is near the bottom-left of the
  // plot area, the max-y point near the top-right.
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t nl = out.find('\n', pos);
    lines.push_back(out.substr(pos, nl - pos));
    pos = nl + 1;
  }
  // First plot row (after the frame line) should contain the high point
  // in its right half.
  const std::string& top_row = lines[1];
  const std::string& bottom_row = lines[lines.size() - 4];
  EXPECT_NE(top_row.find('W'), std::string::npos);
  EXPECT_GT(top_row.find('W'), top_row.size() / 2);
  EXPECT_NE(bottom_row.find('W'), std::string::npos);
}

TEST(AsciiPlot, DegenerateSinglePoint) {
  PlotSeries s{"s", {{5.0, 5.0}}};
  const std::string out = ascii_scatter({s});
  EXPECT_NE(out.find('W'), std::string::npos);
}

TEST(AsciiPlot, ManySeriesCycleGlyphs) {
  std::vector<PlotSeries> many;
  for (int i = 0; i < 10; ++i) {
    many.push_back({"s" + std::to_string(i),
                    {{static_cast<double>(i), static_cast<double>(i)}}});
  }
  const std::string out = ascii_scatter(many);
  EXPECT_NE(out.find("s9"), std::string::npos);
}

}  // namespace
}  // namespace rlmul::util
