// Simulated-annealing baseline tests.

#include "baselines/sa.hpp"

#include <gtest/gtest.h>

#include "ppg/ppg.hpp"

namespace rlmul::baselines {
namespace {

using ppg::MultiplierSpec;
using ppg::PpgKind;

TEST(Sa, ImprovesOrMatchesInitialCost) {
  const MultiplierSpec spec{8, PpgKind::kAnd, false};
  synth::DesignEvaluator ev(spec);
  const double initial =
      ev.cost(ev.evaluate(ppg::initial_tree(spec)), 1.0, 1.0);
  SaOptions opts;
  opts.steps = 40;
  opts.seed = 3;
  const SaResult res = simulated_annealing(ev, opts);
  EXPECT_LE(res.best_cost, initial + 1e-9);
  EXPECT_TRUE(res.best_tree.legal());
}

TEST(Sa, TrajectoriesHaveRequestedLength) {
  const MultiplierSpec spec{4, PpgKind::kAnd, false};
  synth::DesignEvaluator ev(spec);
  SaOptions opts;
  opts.steps = 25;
  const SaResult res = simulated_annealing(ev, opts);
  EXPECT_EQ(res.trajectory.size(), 25u);
  EXPECT_EQ(res.best_trajectory.size(), 25u);
  // Best-so-far is monotone non-increasing.
  for (std::size_t i = 1; i < res.best_trajectory.size(); ++i) {
    EXPECT_LE(res.best_trajectory[i], res.best_trajectory[i - 1] + 1e-12);
  }
}

TEST(Sa, DeterministicForFixedSeed) {
  const MultiplierSpec spec{4, PpgKind::kAnd, false};
  SaOptions opts;
  opts.steps = 15;
  opts.seed = 9;
  synth::DesignEvaluator ev1(spec);
  synth::DesignEvaluator ev2(spec);
  const SaResult a = simulated_annealing(ev1, opts);
  const SaResult b = simulated_annealing(ev2, opts);
  EXPECT_EQ(a.trajectory, b.trajectory);
  EXPECT_EQ(a.best_tree, b.best_tree);
}

TEST(Sa, RespectsStagePruning) {
  const MultiplierSpec spec{8, PpgKind::kAnd, false};
  synth::DesignEvaluator ev(spec);
  const int bound = ct::stage_count(ppg::initial_tree(spec)) + 1;
  SaOptions opts;
  opts.steps = 30;
  opts.max_stages = bound;
  const SaResult res = simulated_annealing(ev, opts);
  EXPECT_LE(ct::stage_count(res.best_tree), bound);
}

TEST(Sa, WeightsChangeTheOutcomePreference) {
  const MultiplierSpec spec{8, PpgKind::kAnd, false};
  synth::DesignEvaluator ev(spec);
  SaOptions area_opts;
  area_opts.steps = 60;
  area_opts.w_area = 1.0;
  area_opts.w_delay = 0.05;
  area_opts.seed = 21;
  SaOptions delay_opts = area_opts;
  delay_opts.w_area = 0.05;
  delay_opts.w_delay = 1.0;
  const SaResult area_run = simulated_annealing(ev, area_opts);
  const SaResult delay_run = simulated_annealing(ev, delay_opts);
  const auto ea = ev.evaluate(area_run.best_tree);
  const auto ed = ev.evaluate(delay_run.best_tree);
  // The area-weighted run should not end with strictly more area AND
  // the delay-weighted run should not end with strictly more delay.
  EXPECT_LE(ea.sum_area, ed.sum_area * 1.10);
  EXPECT_LE(ed.sum_delay, ea.sum_delay * 1.10);
}

}  // namespace
}  // namespace rlmul::baselines
