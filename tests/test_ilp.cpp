// LP / MILP solver tests: known optima, infeasibility, unboundedness,
// integrality, and randomized cross-checks against brute force.

#include "ilp/ilp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/rng.hpp"

namespace rlmul::ilp {
namespace {

Constraint row(std::vector<double> c, Relation r, double b) {
  return Constraint{std::move(c), r, b};
}

TEST(Lp, SimpleMaximizationAsMinimization) {
  // max x + y s.t. x + 2y <= 4, 3x + y <= 6  => min -(x+y).
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {-1.0, -1.0};
  lp.constraints.push_back(row({1, 2}, Relation::kLessEqual, 4));
  lp.constraints.push_back(row({3, 1}, Relation::kLessEqual, 6));
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, Status::kOptimal);
  // Optimum at intersection: x = 8/5, y = 6/5, obj = -14/5.
  EXPECT_NEAR(sol.objective, -2.8, 1e-6);
  EXPECT_NEAR(sol.x[0], 1.6, 1e-6);
  EXPECT_NEAR(sol.x[1], 1.2, 1e-6);
}

TEST(Lp, GreaterEqualAndEquality) {
  // min 2x + 3y s.t. x + y = 10, x >= 4.
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {2.0, 3.0};
  lp.constraints.push_back(row({1, 1}, Relation::kEqual, 10));
  lp.constraints.push_back(row({1, 0}, Relation::kGreaterEqual, 4));
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, Status::kOptimal);
  EXPECT_NEAR(sol.x[0], 10.0, 1e-6);  // x as large as possible
  EXPECT_NEAR(sol.x[1], 0.0, 1e-6);
  EXPECT_NEAR(sol.objective, 20.0, 1e-6);
}

TEST(Lp, Infeasible) {
  LinearProgram lp;
  lp.num_vars = 1;
  lp.objective = {1.0};
  lp.constraints.push_back(row({1}, Relation::kGreaterEqual, 5));
  lp.constraints.push_back(row({1}, Relation::kLessEqual, 3));
  EXPECT_EQ(solve_lp(lp).status, Status::kInfeasible);
}

TEST(Lp, Unbounded) {
  LinearProgram lp;
  lp.num_vars = 1;
  lp.objective = {-1.0};  // min -x, x >= 0, no upper bound
  const auto sol = solve_lp(lp);
  EXPECT_EQ(sol.status, Status::kUnbounded);
}

TEST(Lp, NegativeRhsNormalization) {
  // x - y <= -2  (i.e. y >= x + 2), min y => y = 2 at x = 0.
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {0.0, 1.0};
  lp.constraints.push_back(row({1, -1}, Relation::kLessEqual, -2));
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, Status::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-6);
}

TEST(Milp, KnapsackStyle) {
  // max 5a + 4b + 3c s.t. 2a + 3b + c <= 5, binaries.
  LinearProgram lp;
  lp.num_vars = 3;
  lp.objective = {-5.0, -4.0, -3.0};
  lp.constraints.push_back(row({2, 3, 1}, Relation::kLessEqual, 5));
  for (int j = 0; j < 3; ++j) {
    std::vector<double> ub(3, 0.0);
    ub[static_cast<std::size_t>(j)] = 1.0;
    lp.constraints.push_back(row(std::move(ub), Relation::kLessEqual, 1));
  }
  const auto sol = solve_milp(lp, {true, true, true});
  ASSERT_EQ(sol.status, Status::kOptimal);
  // Best: a=1, b=1 (weight 5, value 9).
  EXPECT_NEAR(sol.objective, -9.0, 1e-6);
  EXPECT_NEAR(sol.x[0], 1.0, 1e-6);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-6);
  EXPECT_NEAR(sol.x[2], 0.0, 1e-6);
}

TEST(Milp, IntegerRounding) {
  // min x s.t. x >= 2.3, integer => 3.
  LinearProgram lp;
  lp.num_vars = 1;
  lp.objective = {1.0};
  lp.constraints.push_back(row({1}, Relation::kGreaterEqual, 2.3));
  const auto sol = solve_milp(lp, {true});
  ASSERT_EQ(sol.status, Status::kOptimal);
  EXPECT_NEAR(sol.x[0], 3.0, 1e-6);
}

TEST(Milp, MixedIntegerKeepsContinuousFree) {
  // min x + y, x >= 1.5 (int), y >= 1.5 (cont).
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 1.0};
  lp.constraints.push_back(row({1, 0}, Relation::kGreaterEqual, 1.5));
  lp.constraints.push_back(row({0, 1}, Relation::kGreaterEqual, 1.5));
  const auto sol = solve_milp(lp, {true, false});
  ASSERT_EQ(sol.status, Status::kOptimal);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-6);
  EXPECT_NEAR(sol.x[1], 1.5, 1e-6);
}

TEST(Milp, RandomizedAgainstBruteForce) {
  util::Rng rng(777);
  for (int trial = 0; trial < 30; ++trial) {
    // min c.x over x in {0..3}^3 with two random <= constraints.
    LinearProgram lp;
    lp.num_vars = 3;
    for (int j = 0; j < 3; ++j) {
      lp.objective.push_back(rng.next_int(-5, 5));
    }
    for (int r = 0; r < 2; ++r) {
      std::vector<double> coeffs;
      for (int j = 0; j < 3; ++j) coeffs.push_back(rng.next_int(-3, 3));
      lp.constraints.push_back(
          row(std::move(coeffs), Relation::kLessEqual,
              static_cast<double>(rng.next_int(0, 8))));
    }
    for (int j = 0; j < 3; ++j) {  // x_j <= 3 to bound the problem
      std::vector<double> ub(3, 0.0);
      ub[static_cast<std::size_t>(j)] = 1.0;
      lp.constraints.push_back(row(std::move(ub), Relation::kLessEqual, 3));
    }

    double brute = std::numeric_limits<double>::infinity();
    for (int x = 0; x <= 3; ++x) {
      for (int y = 0; y <= 3; ++y) {
        for (int z = 0; z <= 3; ++z) {
          bool ok = true;
          for (int r = 0; r < 2; ++r) {
            const auto& c = lp.constraints[static_cast<std::size_t>(r)];
            if (c.coeffs[0] * x + c.coeffs[1] * y + c.coeffs[2] * z >
                c.rhs + 1e-9) {
              ok = false;
            }
          }
          if (ok) {
            brute = std::min(brute, lp.objective[0] * x +
                                        lp.objective[1] * y +
                                        lp.objective[2] * z);
          }
        }
      }
    }

    const auto sol = solve_milp(lp, {true, true, true});
    ASSERT_EQ(sol.status, Status::kOptimal) << "trial " << trial;
    EXPECT_NEAR(sol.objective, brute, 1e-6) << "trial " << trial;
  }
}

}  // namespace
}  // namespace rlmul::ilp
