// Static-timing tests: arrivals, loads, critical paths, sequential
// analysis, and monotonicity properties the sizing engine relies on.

#include "sta/sta.hpp"

#include <gtest/gtest.h>

#include "netlist/cell_library.hpp"
#include "ppg/ppg.hpp"

namespace rlmul::sta {
namespace {

using netlist::CellKind;
using netlist::CellLibrary;
using netlist::GateId;
using netlist::NetId;
using netlist::Netlist;

TEST(Sta, SingleInverterDelay) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const GateId g = nl.add_gate(CellKind::kInv, {a});
  const NetId out = nl.gates()[static_cast<std::size_t>(g)].outputs[0];
  nl.mark_output(out, "y");
  const CellLibrary& lib = CellLibrary::nangate45();
  const auto rep = analyze(nl, lib);
  const double expected = lib.intrinsic(CellKind::kInv, 0, 0) +
                          lib.drive_res(CellKind::kInv, 0) *
                              lib.output_load_ff();
  EXPECT_NEAR(rep.max_po_arrival_ps, expected, 1e-9);
  ASSERT_EQ(rep.critical_path.size(), 1u);
  EXPECT_EQ(rep.critical_path[0], g);
}

TEST(Sta, ChainDelayAccumulates) {
  Netlist nl;
  NetId cur = nl.add_input("a");
  for (int i = 0; i < 5; ++i) {
    const GateId g = nl.add_gate(CellKind::kInv, {cur});
    cur = nl.gates()[static_cast<std::size_t>(g)].outputs[0];
  }
  nl.mark_output(cur, "y");
  const auto rep = analyze(nl, CellLibrary::nangate45());
  EXPECT_EQ(rep.critical_path.size(), 5u);
  EXPECT_GT(rep.max_po_arrival_ps, 5 * 6.0);  // 5 intrinsic delays min
}

TEST(Sta, FanoutIncreasesLoadAndDelay) {
  const CellLibrary& lib = CellLibrary::nangate45();
  auto delay_with_fanout = [&](int fanout) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    const GateId g = nl.add_gate(CellKind::kInv, {a});
    const NetId mid = nl.gates()[static_cast<std::size_t>(g)].outputs[0];
    for (int i = 0; i < fanout; ++i) {
      const GateId s = nl.add_gate(CellKind::kBuf, {mid});
      nl.mark_output(nl.gates()[static_cast<std::size_t>(s)].outputs[0],
                     "y" + std::to_string(i));
    }
    return analyze(nl, lib).max_po_arrival_ps;
  };
  EXPECT_LT(delay_with_fanout(1), delay_with_fanout(4));
  EXPECT_LT(delay_with_fanout(4), delay_with_fanout(16));
}

TEST(Sta, UpsizingDriverReducesItsStageDelay) {
  const CellLibrary& lib = CellLibrary::nangate45();
  auto delay_with_variant = [&](int variant) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    const GateId g = nl.add_gate(CellKind::kInv, {a});
    nl.gates()[static_cast<std::size_t>(g)].variant = variant;
    const NetId mid = nl.gates()[static_cast<std::size_t>(g)].outputs[0];
    // Heavy load: many sinks.
    for (int i = 0; i < 12; ++i) {
      const GateId s = nl.add_gate(CellKind::kBuf, {mid});
      nl.mark_output(nl.gates()[static_cast<std::size_t>(s)].outputs[0],
                     "y" + std::to_string(i));
    }
    return analyze(nl, lib).max_po_arrival_ps;
  };
  EXPECT_GT(delay_with_variant(0), delay_with_variant(2));
}

TEST(Sta, SequentialMinPeriod) {
  Netlist nl;
  const CellLibrary& lib = CellLibrary::nangate45();
  // in -> DFF -> INV -> DFF: min period = clk2q + inv + setup.
  const NetId d0 = nl.add_input("d");
  const GateId ff0 = nl.add_gate(CellKind::kDff, {d0});
  const NetId q0 = nl.gates()[static_cast<std::size_t>(ff0)].outputs[0];
  const GateId inv = nl.add_gate(CellKind::kInv, {q0});
  const NetId n1 = nl.gates()[static_cast<std::size_t>(inv)].outputs[0];
  const GateId ff1 = nl.add_gate(CellKind::kDff, {n1});
  nl.mark_output(nl.gates()[static_cast<std::size_t>(ff1)].outputs[0], "q");
  const auto rep = analyze(nl, lib);
  EXPECT_GT(rep.min_clock_period_ps,
            lib.intrinsic(CellKind::kDff, 0, 0) + lib.setup(CellKind::kDff));
  EXPECT_EQ(rep.critical_ps,
            std::max(rep.max_po_arrival_ps, rep.min_clock_period_ps));
}

TEST(Sta, MultiplierDelayGrowsWithWidth) {
  using ppg::MultiplierSpec;
  auto delay_of = [&](int bits) {
    const MultiplierSpec spec{bits, ppg::PpgKind::kAnd, false};
    auto nl = ppg::build_multiplier(spec, ppg::initial_tree(spec),
                                    netlist::CpaKind::kRippleCarry);
    return analyze(nl, CellLibrary::nangate45()).max_po_arrival_ps;
  };
  const double d4 = delay_of(4);
  const double d8 = delay_of(8);
  const double d16 = delay_of(16);
  EXPECT_LT(d4, d8);
  EXPECT_LT(d8, d16);
}

TEST(Sta, KoggeStoneFasterThanRippleAt16Bits) {
  using ppg::MultiplierSpec;
  const MultiplierSpec spec{16, ppg::PpgKind::kAnd, false};
  const auto tree = ppg::initial_tree(spec);
  auto ripple = ppg::build_multiplier(spec, tree,
                                      netlist::CpaKind::kRippleCarry);
  auto ks = ppg::build_multiplier(spec, tree, netlist::CpaKind::kKoggeStone);
  const CellLibrary& lib = CellLibrary::nangate45();
  EXPECT_LT(analyze(ks, lib).max_po_arrival_ps,
            analyze(ripple, lib).max_po_arrival_ps);
  // ... at an area premium:
  EXPECT_GT(netlist::netlist_area(ks, lib),
            netlist::netlist_area(ripple, lib));
}

TEST(Sta, CriticalPathIsConnected) {
  using ppg::MultiplierSpec;
  const MultiplierSpec spec{8, ppg::PpgKind::kAnd, false};
  auto nl = ppg::build_multiplier(spec, ppg::initial_tree(spec),
                                  netlist::CpaKind::kRippleCarry);
  const auto rep = analyze(nl, CellLibrary::nangate45());
  ASSERT_GE(rep.critical_path.size(), 3u);
  // Consecutive gates on the path must be connected by a net.
  for (std::size_t i = 0; i + 1 < rep.critical_path.size(); ++i) {
    const auto& g1 = nl.gates()[static_cast<std::size_t>(rep.critical_path[i])];
    const auto& g2 =
        nl.gates()[static_cast<std::size_t>(rep.critical_path[i + 1])];
    bool connected = false;
    for (NetId out : g1.outputs) {
      for (NetId in : g2.inputs) {
        if (out == in) connected = true;
      }
    }
    EXPECT_TRUE(connected) << "path hop " << i;
  }
}

}  // namespace
}  // namespace rlmul::sta
