// Tests for the service layer: frame codec (round-trip, torn,
// oversized, garbage), the wire JSON codec, evaluator sharing through
// synth::EvaluatorPool, the Driver's torn-read-free Progress snapshot,
// scheduler admission/cancel/budget/drain-resume semantics, and the
// full server+client stack under concurrent hammering (tsan-labeled).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "search/driver.hpp"
#include "search/registry.hpp"
#include "serve/client.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "serve/socket.hpp"
#include "synth/evaluator.hpp"
#include "synth/evaluator_pool.hpp"
#include "util/framing.hpp"
#include "util/sync.hpp"

namespace {

using namespace rlmul;

std::string scratch_dir(const std::string& tag) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("rlmul_serve_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Unix socket paths are limited to ~107 bytes; keep them short.
std::string scratch_socket(const std::string& tag) {
  const std::string path =
      (std::filesystem::temp_directory_path() / ("rlsrv_" + tag + ".sock"))
          .string();
  std::filesystem::remove(path);  // stale from an aborted previous run
  return path;
}

/// Runs Server::run() on a thread and guarantees shutdown+join even
/// when the test body exits by exception (a joinable std::thread dtor
/// would otherwise call std::terminate).
struct ServerRunner {
  explicit ServerRunner(serve::Server& s)
      : server(s), thread([&s]() { s.run(); }) {}
  ~ServerRunner() { join(); }
  void join() {
    server.request_shutdown();
    if (thread.joinable()) thread.join();
  }
  serve::Server& server;
  std::thread thread;
};

/// Connects with retry: between bind() and listen() the socket file
/// exists but connect() is refused, so waiting on the path alone races.
serve::Fd connect_retry(const std::string& sock) {
  for (int i = 0;; ++i) {
    try {
      return serve::connect_unix(sock);
    } catch (const std::exception&) {
      if (i >= 200) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

TEST(Framing, RoundTripSingleAndBatched) {
  std::vector<std::uint8_t> wire;
  util::append_frame(wire, "hello");
  util::append_frame(wire, "");
  util::append_frame(wire, std::string(1000, 'x'));

  util::FrameParser parser;
  parser.feed(wire.data(), wire.size());
  std::string payload;
  ASSERT_TRUE(parser.next(&payload));
  EXPECT_EQ(payload, "hello");
  ASSERT_TRUE(parser.next(&payload));
  EXPECT_EQ(payload, "");
  ASSERT_TRUE(parser.next(&payload));
  EXPECT_EQ(payload, std::string(1000, 'x'));
  EXPECT_FALSE(parser.next(&payload));
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(Framing, TornFrameCompletesByteByByte) {
  std::vector<std::uint8_t> wire;
  util::append_frame(wire, "torn frame payload");

  util::FrameParser parser;
  std::string payload;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    parser.feed(&wire[i], 1);
    EXPECT_FALSE(parser.next(&payload)) << "completed too early at " << i;
  }
  parser.feed(&wire[wire.size() - 1], 1);
  ASSERT_TRUE(parser.next(&payload));
  EXPECT_EQ(payload, "torn frame payload");
}

TEST(Framing, OversizedFrameThrowsAndPoisons) {
  util::FrameParser parser(64);
  // Header alone is enough: the length is rejected before the payload
  // arrives, so a hostile peer cannot make us buffer it.
  std::vector<std::uint8_t> wire;
  util::append_frame(wire, std::string(100, 'y'));
  parser.feed(wire.data(), 4);
  std::string payload;
  EXPECT_THROW(parser.next(&payload), std::exception);
  // Poisoned: even well-formed frames are rejected afterwards.
  std::vector<std::uint8_t> ok;
  util::append_frame(ok, "ok");
  parser.feed(ok.data(), ok.size());
  EXPECT_THROW(parser.next(&payload), std::exception);
}

TEST(Framing, GarbageBytesAreDeliveredVerbatim) {
  // Framing is content-agnostic: a well-framed garbage payload parses
  // as a frame (rejecting it is the JSON layer's job).
  std::vector<std::uint8_t> wire;
  util::append_frame(wire, "\x01\x02 not json \xff");
  util::FrameParser parser;
  parser.feed(wire.data(), wire.size());
  std::string payload;
  ASSERT_TRUE(parser.next(&payload));
  EXPECT_EQ(payload, "\x01\x02 not json \xff");
  EXPECT_THROW(serve::json::Value::parse(payload), std::exception);
}

// ---------------------------------------------------------------------
// Wire JSON
// ---------------------------------------------------------------------

TEST(ServeJson, RoundTripAndDeterministicDump) {
  serve::json::Value v = serve::json::Value::object();
  v["zeta"] = 1;
  v["alpha"] = "a\"b\\c\n";
  v["mid"] = true;
  v["pi"] = 3.5;
  v["big"] = std::uint64_t{1} << 52;
  serve::json::Value arr = serve::json::Value::array();
  arr.push_back(1);
  arr.push_back(serve::json::Value());
  v["arr"] = arr;

  const std::string text = v.dump();
  // Keys come out sorted regardless of insertion order.
  EXPECT_LT(text.find("\"alpha\""), text.find("\"arr\""));
  EXPECT_LT(text.find("\"arr\""), text.find("\"big\""));

  const serve::json::Value back = serve::json::Value::parse(text);
  EXPECT_EQ(back.find("zeta")->as_i64(), 1);
  EXPECT_EQ(back.find("alpha")->as_string(), "a\"b\\c\n");
  EXPECT_TRUE(back.find("mid")->as_bool());
  EXPECT_EQ(back.find("big")->as_u64(), std::uint64_t{1} << 52);
  EXPECT_EQ(back.find("arr")->items().size(), 2u);
  // dump(parse(dump(v))) is a fixed point — the protocol can be
  // compared textually.
  EXPECT_EQ(back.dump(), text);
}

TEST(ServeJson, RejectsMalformedInput) {
  EXPECT_THROW(serve::json::Value::parse(""), std::exception);
  EXPECT_THROW(serve::json::Value::parse("{"), std::exception);
  EXPECT_THROW(serve::json::Value::parse("{}x"), std::exception);
  EXPECT_THROW(serve::json::Value::parse("{\"a\":}"), std::exception);
  EXPECT_THROW(serve::json::Value::parse("[1,]"), std::exception);
  EXPECT_THROW(serve::json::Value::parse("nul"), std::exception);
}

TEST(ServeJson, JobSpecRoundTrip) {
  serve::JobSpec spec;
  spec.bits = 12;
  spec.ppg = "mbe";
  spec.mac = true;
  spec.method = "dqn";
  spec.steps = 77;
  spec.seed = 42;
  spec.budget = 1000;
  spec.cpa_search = true;

  serve::JobSpec back;
  std::string err;
  ASSERT_TRUE(serve::job_spec_from_json(
      serve::json::Value::parse(serve::to_json(spec).dump()), &back, &err))
      << err;
  EXPECT_EQ(back.bits, 12);
  EXPECT_EQ(back.ppg, "mbe");
  EXPECT_TRUE(back.mac);
  EXPECT_EQ(back.method, "dqn");
  EXPECT_EQ(back.steps, 77);
  EXPECT_EQ(back.seed, 42u);
  EXPECT_EQ(back.budget, 1000u);
  EXPECT_TRUE(back.cpa_search);
  EXPECT_FALSE(back.ppg_search);

  serve::json::Value bad = serve::json::Value::object();
  bad["bits"] = 99;
  EXPECT_FALSE(serve::job_spec_from_json(bad, &back, &err));
}

// ---------------------------------------------------------------------
// Evaluator sharing
// ---------------------------------------------------------------------

TEST(EvaluatorPool, SharesByContractAndExpires) {
  synth::EvaluatorPool pool;
  ppg::MultiplierSpec a;
  a.bits = 4;
  ppg::MultiplierSpec b;
  b.bits = 5;

  auto e1 = pool.acquire(a);
  auto e2 = pool.acquire(a);
  auto e3 = pool.acquire(b);
  EXPECT_EQ(e1.get(), e2.get()) << "same contract must share";
  EXPECT_NE(e1.get(), e3.get()) << "different contract must not";
  EXPECT_EQ(pool.live(), 2u);

  e1.reset();
  e2.reset();
  EXPECT_EQ(pool.live(), 1u);
  // A fresh acquire after expiry builds a new evaluator.
  auto e4 = pool.acquire(a);
  EXPECT_NE(e4, nullptr);
  EXPECT_EQ(pool.live(), 2u);
}

TEST(EvaluatorPool, ConcurrentAcquireYieldsOneEvaluator) {
  synth::EvaluatorPool pool;
  ppg::MultiplierSpec spec;
  spec.bits = 4;
  std::vector<std::shared_ptr<synth::DesignEvaluator>> got(4);
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&pool, &got, spec, i]() {
      got[static_cast<std::size_t>(i)] = pool.acquire(spec);
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(got[0].get(), got[static_cast<std::size_t>(i)].get());
  }
  EXPECT_EQ(pool.live(), 1u);
}

// ---------------------------------------------------------------------
// Driver progress snapshot
// ---------------------------------------------------------------------

TEST(DriverProgress, SnapshotIsConsistentUnderConcurrentReads) {
  ppg::MultiplierSpec spec;
  spec.bits = 4;
  synth::DesignEvaluator evaluator(spec, {});
  search::Driver driver(evaluator);
  search::MethodConfig cfg;
  cfg.steps = 40;
  cfg.seed = 3;
  auto method = search::make_method("sa", cfg);

  std::atomic<bool> done{false};
  std::thread runner([&]() {
    driver.begin(*method);
    while (driver.step_once(*method)) {
    }
    (void)driver.finish(*method);
    done.store(true);
  });

  std::uint64_t last_steps = 0;
  std::uint64_t last_eda = 0;
  while (!done.load()) {
    const search::Progress p = driver.progress();
    // Monotonicity across snapshots — a torn read would violate it.
    EXPECT_GE(p.steps_done, last_steps);
    EXPECT_GE(p.eda_consumed, last_eda);
    if (p.started && p.steps_done > 0) {
      EXPECT_GT(p.best_cost, 0.0);
    }
    last_steps = p.steps_done;
    last_eda = p.eda_consumed;
  }
  runner.join();

  const search::Progress fin = driver.progress();
  EXPECT_TRUE(fin.completed);
  EXPECT_EQ(fin.steps_done, 40u);
}

// ---------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------

serve::JobSpec tiny_job(int steps = 12, std::uint64_t seed = 3) {
  serve::JobSpec spec;
  spec.bits = 4;
  spec.method = "sa";
  spec.steps = steps;
  spec.seed = seed;
  return spec;
}

TEST(Scheduler, RunsJobsAndStreamsContiguousEvents) {
  util::Mutex mu;
  std::vector<serve::json::Value> events;
  serve::SchedulerOptions opts;
  opts.max_active = 2;
  opts.step_threads = 2;
  serve::Scheduler sched(opts, [&](std::uint64_t, const serve::json::Value& e) {
    util::LockGuard lock(mu);
    events.push_back(e);
  });

  std::uint64_t j1 = 0;
  std::uint64_t j2 = 0;
  std::string err;
  ASSERT_TRUE(sched.submit(tiny_job(12, 3), 1, &j1, &err)) << err;
  ASSERT_TRUE(sched.submit(tiny_job(12, 4), 1, &j2, &err)) << err;
  ASSERT_TRUE(sched.wait(j1, 120000));
  ASSERT_TRUE(sched.wait(j2, 120000));

  serve::JobStatus st;
  ASSERT_TRUE(sched.status(j1, &st));
  EXPECT_EQ(st.state, serve::JobState::kDone);
  EXPECT_TRUE(st.completed);
  EXPECT_EQ(st.progress.steps_done, 12u);
  EXPECT_GT(st.progress.best_cost, 0.0);

  // Per-job seq must be exactly 0..N-1 in emission order. Snapshot under
  // the sink lock, then release it: the sink runs under the scheduler's
  // own mutex, so holding `mu` across a scheduler call inverts the order.
  std::vector<serve::json::Value> snapshot;
  {
    util::LockGuard lock(mu);
    snapshot = events;
  }
  std::uint64_t next1 = 0;
  std::uint64_t next2 = 0;
  for (const serve::json::Value& e : snapshot) {
    const std::uint64_t job = e.find("job")->as_u64();
    const std::uint64_t seq = e.find("seq")->as_u64();
    if (job == j1) {
      EXPECT_EQ(seq, next1++);
    }
    if (job == j2) {
      EXPECT_EQ(seq, next2++);
    }
  }
  EXPECT_GT(next1, 2u);  // queued + running + final progress + done
  EXPECT_GT(next2, 2u);
  ASSERT_TRUE(sched.status(j1, &st));
  EXPECT_EQ(st.events, next1);
}

TEST(Scheduler, AdmissionControlAppliesBackpressure) {
  serve::SchedulerOptions opts;
  opts.max_active = 1;
  opts.max_queue = 1;
  opts.step_threads = 1;
  serve::Scheduler sched(opts, nullptr);

  std::string err;
  std::uint64_t j1 = 0;
  std::uint64_t j2 = 0;
  std::uint64_t j3 = 0;
  ASSERT_TRUE(sched.submit(tiny_job(300, 3), 1, &j1, &err)) << err;
  ASSERT_TRUE(sched.submit(tiny_job(300, 4), 1, &j2, &err)) << err;
  // One active (or starting) + one queued: the third must bounce.
  EXPECT_FALSE(sched.submit(tiny_job(300, 5), 1, &j3, &err));
  EXPECT_NE(err.find("busy"), std::string::npos) << err;

  std::string cancel_err;
  EXPECT_TRUE(sched.cancel(j2, &cancel_err)) << cancel_err;
  EXPECT_TRUE(sched.cancel(j1, &cancel_err)) << cancel_err;
  ASSERT_TRUE(sched.wait(j1, 120000));
  ASSERT_TRUE(sched.wait(j2, 120000));
  serve::JobStatus st;
  ASSERT_TRUE(sched.status(j2, &st));
  EXPECT_EQ(st.state, serve::JobState::kCancelled);
  // Cancelling a finished job is an error, not a crash.
  EXPECT_FALSE(sched.cancel(j2, &cancel_err));
}

TEST(Scheduler, EnforcesPerClientBudgets) {
  serve::SchedulerOptions opts;
  opts.client_budget = 100;
  serve::Scheduler sched(opts, nullptr);

  std::string err;
  std::uint64_t id = 0;
  serve::JobSpec unbudgeted = tiny_job();
  EXPECT_FALSE(sched.submit(unbudgeted, 1, &id, &err));
  EXPECT_NE(err.find("budget"), std::string::npos);

  serve::JobSpec small = tiny_job();
  small.budget = 60;
  ASSERT_TRUE(sched.submit(small, 1, &id, &err)) << err;
  EXPECT_EQ(sched.client_budget_used(1), 60u);
  // Second 60 would exceed client 1's cap of 100...
  EXPECT_FALSE(sched.submit(small, 1, &id, &err));
  EXPECT_NE(err.find("exhausted"), std::string::npos);
  // ...but client 2 has its own meter.
  ASSERT_TRUE(sched.submit(small, 2, &id, &err)) << err;
}

TEST(Scheduler, DrainCheckpointsAndResumesBitExact) {
  const std::string state = scratch_dir("drain_state");
  serve::SchedulerOptions opts;
  opts.max_active = 1;
  opts.step_threads = 1;
  opts.state_dir = state;

  // Reference: the same job, uninterrupted.
  double reference = 0.0;
  {
    serve::Scheduler sched(opts, nullptr);
    std::uint64_t id = 0;
    std::string err;
    ASSERT_TRUE(sched.submit(tiny_job(60, 9), 1, &id, &err)) << err;
    ASSERT_TRUE(sched.wait(id, 120000));
    serve::JobStatus st;
    ASSERT_TRUE(sched.status(id, &st));
    ASSERT_EQ(st.state, serve::JobState::kDone);
    reference = st.progress.best_cost;
  }
  std::filesystem::remove_all(state);
  std::filesystem::create_directories(state);

  // Interrupted: drain mid-run, then resume in a fresh scheduler.
  std::uint64_t job = 0;
  {
    serve::Scheduler sched(opts, nullptr);
    std::string err;
    ASSERT_TRUE(sched.submit(tiny_job(60, 9), 1, &job, &err)) << err;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    sched.drain();
    serve::JobStatus st;
    ASSERT_TRUE(sched.status(job, &st));
    // Finishing 60 cold-cache steps in 100ms would be surprising, but
    // either way the restart below must reproduce `reference`.
    if (st.state == serve::JobState::kDrained) {
      EXPECT_TRUE(std::filesystem::exists(state + "/job-" +
                                          std::to_string(job) + ".json"));
    }
  }
  {
    serve::Scheduler sched(opts, nullptr);
    const std::size_t resumed = sched.resume_persisted();
    serve::JobStatus st;
    if (resumed > 0) {
      ASSERT_TRUE(sched.wait(job, 120000));
      ASSERT_TRUE(sched.status(job, &st));
      ASSERT_EQ(st.state, serve::JobState::kDone);
      EXPECT_TRUE(st.resumed);
      // Bit-exact: the drained-and-resumed trajectory lands on exactly
      // the cost the uninterrupted run found.
      EXPECT_EQ(st.progress.best_cost, reference);
      EXPECT_EQ(st.progress.steps_done, 60u);
      // Terminal jobs clean their parked state up.
      EXPECT_FALSE(std::filesystem::exists(state + "/job-" +
                                           std::to_string(job) + ".json"));
    }
  }
  std::filesystem::remove_all(state);
}

TEST(Scheduler, RejectsSubmitsWhileDraining) {
  serve::SchedulerOptions opts;
  serve::Scheduler sched(opts, nullptr);
  sched.drain();
  std::uint64_t id = 0;
  std::string err;
  EXPECT_FALSE(sched.submit(tiny_job(), 1, &id, &err));
  EXPECT_NE(err.find("draining"), std::string::npos);
}

// ---------------------------------------------------------------------
// Server + client
// ---------------------------------------------------------------------

serve::ServerOptions quick_server_opts(const std::string& sock) {
  serve::ServerOptions opts;
  opts.socket_path = sock;
  opts.scheduler.max_active = 2;
  opts.scheduler.max_queue = 64;
  opts.scheduler.step_threads = 2;
  return opts;
}

TEST(Server, SubmitStatusEventsEndToEnd) {
  const std::string sock = scratch_socket("e2e");
  serve::Server server(quick_server_opts(sock));
  ServerRunner runner(server);

  std::unique_ptr<serve::Client> client;
  for (int i = 0; i < 200 && !client; ++i) {
    try {
      client = std::make_unique<serve::Client>(sock);
    } catch (const std::exception&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_TRUE(client) << "could not connect to " << sock;
  client->ping();

  const std::uint64_t job = client->submit(tiny_job(10, 5), true);
  EXPECT_GT(job, 0u);

  // Collect the event stream; seq must be 0..N-1 with no gaps.
  std::uint64_t next_seq = 0;
  bool finished = false;
  for (int i = 0; i < 600 && !finished; ++i) {
    serve::json::Value ev;
    if (!client->wait_event(&ev, 500)) continue;
    EXPECT_EQ(ev.find("job")->as_u64(), job);
    EXPECT_EQ(ev.find("seq")->as_u64(), next_seq++);
    const serve::json::Value* type = ev.find("event");
    ASSERT_NE(type, nullptr);
    if (type->as_string() == "state" &&
        ev.find("state")->as_string() == "done") {
      finished = true;
    }
  }
  EXPECT_TRUE(finished);
  EXPECT_GE(next_seq, 3u);

  const serve::json::Value st = client->status(job);
  EXPECT_EQ(st.find("state")->as_string(), "done");
  EXPECT_EQ(st.find("events")->as_u64(), next_seq);
  EXPECT_GT(st.find("best_cost")->as_double(), 0.0);

  const serve::json::Value listing = client->list();
  EXPECT_EQ(listing.find("jobs")->items().size(), 1u);

  client->shutdown_server();
  runner.join();
  EXPECT_FALSE(std::filesystem::exists(sock)) << "socket not cleaned up";
}

TEST(Server, GarbageFrameGetsErrorResponseAndConnSurvives) {
  const std::string sock = scratch_socket("garbage");
  serve::Server server(quick_server_opts(sock));
  ServerRunner runner(server);

  serve::Fd fd = connect_retry(sock);
  std::vector<std::uint8_t> wire;
  util::append_frame(wire, "this is not json");
  serve::write_all(fd.get(), wire.data(), wire.size());

  // Read one response frame.
  util::FrameParser parser;
  std::string payload;
  while (!parser.next(&payload)) {
    char buf[512];
    const std::ptrdiff_t n = serve::read_some(fd.get(), buf, sizeof(buf));
    ASSERT_NE(n, 0) << "server closed on garbage json (should keep conn)";
    if (n > 0) parser.feed(buf, static_cast<std::size_t>(n));
  }
  const serve::json::Value resp = serve::json::Value::parse(payload);
  EXPECT_FALSE(resp.find("ok")->as_bool());
  EXPECT_NE(resp.find("error")->as_string().find("bad json"),
            std::string::npos);

  // The connection still works.
  wire.clear();
  util::append_frame(wire, "{\"id\":1,\"op\":\"ping\"}");
  serve::write_all(fd.get(), wire.data(), wire.size());
  while (!parser.next(&payload)) {
    char buf[512];
    const std::ptrdiff_t n = serve::read_some(fd.get(), buf, sizeof(buf));
    ASSERT_NE(n, 0);
    if (n > 0) parser.feed(buf, static_cast<std::size_t>(n));
  }
  EXPECT_TRUE(serve::json::Value::parse(payload).find("ok")->as_bool());
}

TEST(Server, OversizedFrameClosesConnection) {
  const std::string sock = scratch_socket("oversized");
  serve::Server server(quick_server_opts(sock));
  ServerRunner runner(server);

  serve::Fd fd = connect_retry(sock);
  // Header declaring a 16MB frame (limit is 1MB).
  const std::uint32_t huge = 16u << 20;
  std::uint8_t hdr[4] = {
      static_cast<std::uint8_t>(huge & 0xff),
      static_cast<std::uint8_t>((huge >> 8) & 0xff),
      static_cast<std::uint8_t>((huge >> 16) & 0xff),
      static_cast<std::uint8_t>((huge >> 24) & 0xff),
  };
  serve::write_all(fd.get(), hdr, sizeof(hdr));

  // The server must drop us: read eventually reports EOF.
  bool closed = false;
  for (int i = 0; i < 500 && !closed; ++i) {
    char buf[64];
    try {
      const std::ptrdiff_t n = serve::read_some(fd.get(), buf, sizeof(buf));
      if (n == 0) closed = true;
    } catch (const std::exception&) {
      closed = true;  // ECONNRESET counts
    }
  }
  EXPECT_TRUE(closed);
}

TEST(Server, ConcurrentClientHammerLosesNothing) {
  const std::string sock = scratch_socket("hammer");
  serve::Server server(quick_server_opts(sock));
  ServerRunner runner(server);
  connect_retry(sock);  // wait until the listener is actually up

  constexpr int kClients = 4;
  constexpr int kRequests = 40;
  std::atomic<int> ok_responses{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      try {
        serve::Client client(sock);
        std::uint64_t job = 0;
        for (int r = 0; r < kRequests; ++r) {
          // Mixed op stream; every call must return its own response
          // (the client matches ids internally — a lost or duplicated
          // response would hang or mismatch).
          if (r == 0) {
            job = client.submit(tiny_job(6, 100 + c), false);
          } else if (r % 10 == 5) {
            client.status(job);
          } else if (r % 10 == 9) {
            client.stats();
          } else {
            client.ping();
          }
          ok_responses.fetch_add(1);
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(ok_responses.load(), kClients * kRequests);
}

}  // namespace
