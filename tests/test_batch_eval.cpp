// Property tests for the batched SoA evaluation pipeline
// (src/synth/batch_eval.* + the DesignEvaluator coalescing layer): the
// contract is that batching is invisible — per-design results are
// bit-identical to the single path, the EDA budget still counts unique
// designs only, and dsdb traffic (hits/appends) matches a per-design
// evaluation of the same trees. The tsan label puts the 8-thread
// hammer under the TSan CI job.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "ct/compressor_tree.hpp"
#include "dsdb/store.hpp"
#include "ppg/ppg.hpp"
#include "synth/evaluator.hpp"
#include "synth/synth.hpp"
#include "util/rng.hpp"

namespace rlmul {
namespace {

using ppg::MultiplierSpec;
using ppg::PpgKind;

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Field-wise bitwise comparison (the struct has padding bytes, so the
/// "memcmp-identical" contract is enforced per member).
void expect_same_result(const synth::SynthesisResult& a,
                        const synth::SynthesisResult& b,
                        const std::string& what) {
  EXPECT_TRUE(bits_equal(a.area_um2, b.area_um2))
      << what << ": area " << a.area_um2 << " vs " << b.area_um2;
  EXPECT_TRUE(bits_equal(a.delay_ns, b.delay_ns))
      << what << ": delay " << a.delay_ns << " vs " << b.delay_ns;
  EXPECT_TRUE(bits_equal(a.power_mw, b.power_mw))
      << what << ": power " << a.power_mw << " vs " << b.power_mw;
  EXPECT_EQ(a.met_target, b.met_target) << what;
  EXPECT_EQ(a.cpa, b.cpa) << what;
  EXPECT_EQ(a.num_gates, b.num_gates) << what;
}

void expect_same_eval(const synth::DesignEval& a, const synth::DesignEval& b,
                      const std::string& what) {
  ASSERT_EQ(a.per_target.size(), b.per_target.size()) << what;
  for (std::size_t t = 0; t < a.per_target.size(); ++t) {
    expect_same_result(a.per_target[t], b.per_target[t],
                       what + " target " + std::to_string(t));
  }
  EXPECT_TRUE(bits_equal(a.sum_area, b.sum_area)) << what;
  EXPECT_TRUE(bits_equal(a.sum_delay, b.sum_delay)) << what;
  EXPECT_TRUE(bits_equal(a.sum_power, b.sum_power)) << what;
}

/// Designs along a masked random walk from Wallace — consecutive
/// entries differ by one action (the near-duplicate case: shared
/// structure, different key).
std::vector<ct::CompressorTree> walk_designs(const MultiplierSpec& spec,
                                             int count, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<ct::CompressorTree> designs;
  ct::CompressorTree tree = ppg::initial_tree(spec);
  designs.push_back(tree);
  while (static_cast<int>(designs.size()) < count) {
    const auto mask = ct::legal_action_mask(tree);
    std::vector<double> w(mask.size());
    for (std::size_t k = 0; k < mask.size(); ++k) w[k] = mask[k];
    const auto pick = rng.sample_discrete(w);
    tree =
        ct::apply_action(tree, ct::action_from_index(static_cast<int>(pick)));
    designs.push_back(tree);
  }
  return designs;
}

// Random specs and widths, random batch compositions K <= 16 sampled
// with replacement (duplicates within one batch) from a walk pool
// (near-duplicates across entries): every batched result must be
// bit-identical to a single-path evaluation of the same tree.
TEST(BatchEval, MatchesSinglePathBitExact) {
  const std::vector<MultiplierSpec> specs{
      {4, PpgKind::kAnd, false},
      {5, PpgKind::kBaughWooley, false},
      {6, PpgKind::kBooth, false},
  };
  util::Rng rng(7);
  for (const auto& spec : specs) {
    const auto pool = walk_designs(spec, 10, 11 + spec.bits);

    synth::EvaluatorOptions sopts;
    sopts.batch = 1;
    synth::DesignEvaluator single(spec, {}, sopts);
    std::vector<synth::DesignEval> expected;
    for (const auto& d : pool) expected.push_back(single.evaluate(d));

    synth::EvaluatorOptions bopts;
    bopts.batch = 16;
    synth::DesignEvaluator batched(spec, {}, bopts);
    for (int round = 0; round < 3; ++round) {
      const int k = 1 + static_cast<int>(rng.next() % 16);
      std::vector<ct::CompressorTree> group;
      std::vector<std::size_t> picks;
      for (int i = 0; i < k; ++i) {
        picks.push_back(rng.next() % pool.size());
        group.push_back(pool[picks.back()]);
      }
      const auto evals = batched.evaluate_batch(group);
      ASSERT_EQ(evals.size(), group.size());
      for (int i = 0; i < k; ++i) {
        expect_same_eval(evals[static_cast<std::size_t>(i)],
                         expected[picks[static_cast<std::size_t>(i)]],
                         std::to_string(spec.bits) + "b round " +
                             std::to_string(round) + " design " +
                             std::to_string(i));
      }
    }
  }
}

// The search budget is counted in unique designs synthesized, exactly
// as the single path counts it: duplicates inside a batch, repeats
// across batches and cache hits are free.
TEST(BatchEval, BudgetCountsUniqueDesignsOnly) {
  const MultiplierSpec spec{4, PpgKind::kAnd, false};
  const auto pool = walk_designs(spec, 5, 21);

  synth::EvaluatorOptions opts;
  opts.batch = 16;
  synth::DesignEvaluator evaluator(spec, {}, opts);

  // 12 requests over 5 unique designs, duplicates included.
  std::vector<ct::CompressorTree> group;
  for (int i = 0; i < 12; ++i) group.push_back(pool[i % pool.size()]);
  evaluator.evaluate_batch(group);
  EXPECT_EQ(evaluator.num_unique_evaluations(), pool.size());

  // A second pass over the same designs is served from the cache.
  evaluator.evaluate_batch(group);
  EXPECT_EQ(evaluator.num_unique_evaluations(), pool.size());

  const auto stats = evaluator.stats();
  EXPECT_EQ(stats.unique_evals, pool.size());
  EXPECT_GE(stats.eval_batches, 1u);
  EXPECT_GE(stats.eval_batched_designs, stats.unique_evals);
}

// dsdb traffic parity: a batched cold run appends exactly the records
// a single-path cold run of the same designs appends, and a warm rerun
// is served entirely from the store (zero new synthesis).
TEST(BatchEval, DsdbHitAndAppendParity) {
  const MultiplierSpec spec{4, PpgKind::kAnd, false};
  const std::vector<double> targets = synth::default_targets(spec);
  const auto pool = walk_designs(spec, 6, 31);
  // The walk may revisit a state (action then inverse action), so the
  // store sees one record per unique key, not per request.
  std::set<std::string> keys;
  for (const auto& d : pool) keys.insert(d.key());

  const std::string root =
      (std::filesystem::temp_directory_path() / "rlmul_test_batch_eval")
          .string();
  std::filesystem::remove_all(root);

  std::uint64_t batched_appends = 0;
  {
    dsdb::Store store(root + "/batched");
    dsdb::EvaluatorBinding binding(store, spec, targets);
    synth::EvaluatorOptions opts;
    opts.batch = 16;
    opts.external_cache = &binding;
    synth::DesignEvaluator evaluator(spec, targets, opts);
    evaluator.evaluate_batch(pool);
    store.flush();
    batched_appends = store.stats().appends;
  }
  std::uint64_t single_appends = 0;
  {
    dsdb::Store store(root + "/single");
    dsdb::EvaluatorBinding binding(store, spec, targets);
    synth::EvaluatorOptions opts;
    opts.batch = 1;
    opts.external_cache = &binding;
    synth::DesignEvaluator evaluator(spec, targets, opts);
    for (const auto& d : pool) evaluator.evaluate(d);
    store.flush();
    single_appends = store.stats().appends;
  }
  EXPECT_EQ(batched_appends, single_appends);
  EXPECT_EQ(batched_appends, keys.size());

  // Warm rerun against the batched store: every design is a store hit,
  // no synthesis is run, nothing new is appended.
  {
    dsdb::Store store(root + "/batched");
    dsdb::EvaluatorBinding binding(store, spec, targets);
    synth::EvaluatorOptions opts;
    opts.batch = 16;
    opts.external_cache = &binding;
    synth::DesignEvaluator evaluator(spec, targets, opts);
    evaluator.evaluate_batch(pool);
    EXPECT_EQ(evaluator.num_unique_evaluations(), 0u);
    EXPECT_EQ(store.stats().hits, keys.size());
    EXPECT_EQ(store.stats().appends, 0u);
  }
  std::filesystem::remove_all(root);
}

// 8 threads hammering one shared evaluator with overlapping
// evaluate_batch() and evaluate() calls: results must stay
// bit-identical to the single path at any thread count, and every
// request must complete (no lost wakeups in the coalescing protocol).
TEST(BatchEval, ConcurrentBatchesMatchSinglePath) {
  const MultiplierSpec spec{4, PpgKind::kAnd, false};
  const auto pool = walk_designs(spec, 8, 41);

  synth::EvaluatorOptions sopts;
  sopts.batch = 1;
  synth::DesignEvaluator single(spec, {}, sopts);
  std::vector<synth::DesignEval> expected;
  for (const auto& d : pool) expected.push_back(single.evaluate(d));

  synth::EvaluatorOptions bopts;
  bopts.batch = 8;
  synth::DesignEvaluator shared(spec, {}, bopts);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t]() {
      util::Rng rng(100 + static_cast<std::uint64_t>(t));
      for (int round = 0; round < 4; ++round) {
        std::vector<ct::CompressorTree> group;
        std::vector<std::size_t> picks;
        const int k = 1 + static_cast<int>(rng.next() % 6);
        for (int i = 0; i < k; ++i) {
          picks.push_back(rng.next() % pool.size());
          group.push_back(pool[picks.back()]);
        }
        const auto evals = shared.evaluate_batch(group);
        for (int i = 0; i < k; ++i) {
          const auto& got = evals[static_cast<std::size_t>(i)];
          const auto& want = expected[picks[static_cast<std::size_t>(i)]];
          if (!bits_equal(got.sum_area, want.sum_area) ||
              !bits_equal(got.sum_delay, want.sum_delay) ||
              !bits_equal(got.sum_power, want.sum_power)) {
            ++mismatches;
          }
        }
        // Interleave single-design requests into the same pending
        // queue (they coalesce with other threads' batches).
        const std::size_t solo = rng.next() % pool.size();
        const auto eval = shared.evaluate(pool[solo]);
        if (!bits_equal(eval.sum_area, expected[solo].sum_area)) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);

  const auto stats = shared.stats();
  EXPECT_EQ(stats.unique_evals, pool.size());
}

}  // namespace
}  // namespace rlmul
