#!/usr/bin/env bash
# CI smoke for the reward-oracle fast path: runs the evaluate-path
# micro-benchmark (tiny budget) and checks the machine-readable
# RLMUL_COUNTERS line the bench prints on exit. Fails on a crash, a
# missing/malformed counters line, or counters that show the fast path
# never engaged. Usage: smoke_bench_micro.sh <path-to-bench_micro>
set -u

bench="${1:?usage: smoke_bench_micro.sh <bench_micro>}"

out="$("$bench" --benchmark_filter='BM_EvaluateUniqueDesign/bits:8/fast:1' \
        --benchmark_min_time=0.01 2>&1)"
status=$?
if [ "$status" -ne 0 ]; then
  echo "$out"
  echo "FAIL: bench_micro exited with status $status"
  exit 1
fi

build_line="$(printf '%s\n' "$out" | grep '^RLMUL_BUILD ' | tail -n 1)"
if [ -z "$build_line" ]; then
  echo "$out"
  echo "FAIL: no RLMUL_BUILD provenance line in bench_micro output"
  exit 1
fi
for key in compiler sanitizers thread_safety_analysis; do
  if ! printf '%s\n' "$build_line" | grep -q " $key="; then
    echo "$build_line"
    echo "FAIL: RLMUL_BUILD line missing '$key='"
    exit 1
  fi
done
echo "$build_line"

line="$(printf '%s\n' "$out" | grep '^RLMUL_COUNTERS ' | tail -n 1)"
if [ -z "$line" ]; then
  echo "$out"
  echo "FAIL: no RLMUL_COUNTERS line in bench_micro output"
  exit 1
fi
echo "$line"

# Every token after the prefix must be key=value with a decimal value.
for tok in ${line#RLMUL_COUNTERS }; do
  case "$tok" in
    *=*) ;;
    *) echo "FAIL: malformed counter token '$tok'"; exit 1 ;;
  esac
  key="${tok%%=*}"
  val="${tok#*=}"
  if ! printf '%s' "$key" | grep -Eq '^[a-z_]+$'; then
    echo "FAIL: malformed counter key '$key'"
    exit 1
  fi
  if ! printf '%s' "$val" | grep -Eq '^[0-9]+$'; then
    echo "FAIL: malformed counter value '$tok'"
    exit 1
  fi
done

get() {
  printf '%s\n' "$line" | tr ' ' '\n' | grep "^$1=" | head -n 1 | cut -d= -f2
}

unique="$(get unique_evals)"
incr="$(get sta_incremental_updates)"
reused="$(get netlists_reused)"
if [ -z "$unique" ] || [ "$unique" -lt 1 ]; then
  echo "FAIL: expected unique_evals >= 1, got '${unique:-missing}'"
  exit 1
fi
if [ -z "$incr" ] || [ "$incr" -lt 1 ]; then
  echo "FAIL: expected sta_incremental_updates >= 1, got '${incr:-missing}'"
  exit 1
fi
if [ -z "$reused" ] || [ "$reused" -lt 1 ]; then
  echo "FAIL: expected netlists_reused >= 1, got '${reused:-missing}'"
  exit 1
fi
echo "PASS: bench_micro smoke (unique_evals=$unique," \
     "sta_incremental_updates=$incr, netlists_reused=$reused)"

# -- batched-evaluation smoke: one batched entry must run clean (under
# whatever sanitizer this build carries) and the coalescing counters
# must show the batch pipeline actually drained a batch.
batch_out="$("$bench" --benchmark_filter='BM_EvaluateBatch/bits:8/batch:8' \
        --benchmark_min_time=0.01 2>&1)"
batch_status=$?
if [ "$batch_status" -ne 0 ]; then
  echo "$batch_out"
  echo "FAIL: bench_micro (BM_EvaluateBatch) exited with status $batch_status"
  exit 1
fi
batch_line="$(printf '%s\n' "$batch_out" | grep '^RLMUL_COUNTERS ' | tail -n 1)"
if [ -z "$batch_line" ]; then
  echo "$batch_out"
  echo "FAIL: no RLMUL_COUNTERS line in BM_EvaluateBatch output"
  exit 1
fi
bget() {
  printf '%s\n' "$batch_line" | tr ' ' '\n' | grep "^$1=" | head -n 1 \
    | cut -d= -f2
}
batches="$(bget eval_batches)"
bavg="$(bget eval_batch_size_avg)"
if [ -z "$batches" ] || [ "$batches" -lt 1 ]; then
  echo "$batch_line"
  echo "FAIL: expected eval_batches >= 1, got '${batches:-missing}'"
  exit 1
fi
if [ -z "$bavg" ] || [ "$bavg" -lt 2 ]; then
  echo "$batch_line"
  echo "FAIL: expected eval_batch_size_avg >= 2, got '${bavg:-missing}'"
  exit 1
fi
echo "PASS: batched evaluation smoke (eval_batches=$batches," \
     "eval_batch_size_avg=$bavg)"

# -- delta-evaluation smoke: the trajectory-shaped entry must run clean
# and the delta counters must show children actually patched against
# retained parents (a hits=0 run means the delta path silently
# disengaged).
delta_out="$("$bench" --benchmark_filter='BM_EvaluateDelta/bits:16/delta:1' \
        --benchmark_min_time=0.01 2>&1)"
delta_status=$?
if [ "$delta_status" -ne 0 ]; then
  echo "$delta_out"
  echo "FAIL: bench_micro (BM_EvaluateDelta) exited with status $delta_status"
  exit 1
fi
delta_line="$(printf '%s\n' "$delta_out" | grep '^RLMUL_COUNTERS ' | tail -n 1)"
if [ -z "$delta_line" ]; then
  echo "$delta_out"
  echo "FAIL: no RLMUL_COUNTERS line in BM_EvaluateDelta output"
  exit 1
fi
dget() {
  printf '%s\n' "$delta_line" | tr ' ' '\n' | grep "^$1=" | head -n 1 \
    | cut -d= -f2
}
dhits="$(dget eval_delta_hits)"
dcone="$(dget eval_delta_cone_frac)"
if [ -z "$dhits" ] || [ "$dhits" -lt 1 ]; then
  echo "$delta_line"
  echo "FAIL: expected eval_delta_hits >= 1, got '${dhits:-missing}'"
  exit 1
fi
if [ -z "$dcone" ] || [ "$dcone" -gt 100 ]; then
  echo "$delta_line"
  echo "FAIL: expected eval_delta_cone_frac in [0,100], got '${dcone:-missing}'"
  exit 1
fi
echo "PASS: delta evaluation smoke (eval_delta_hits=$dhits," \
     "eval_delta_cone_frac=$dcone)"

# -- NN kernel smoke: run the tensor benches in both GEMM modes ------------
# (RLMUL_GEMM=naive must stay a working oracle path) and check the nn
# counters show GEMM work was actually routed through the kernel layer.
nn_filter='BM_Gemm/n:128|BM_Conv2dFwd|BM_Conv2dBwd|BM_TinyNetForwardBackward'
for mode in blocked naive; do
  nn_out="$(RLMUL_GEMM="$mode" "$bench" \
            --benchmark_filter="$nn_filter" \
            --benchmark_min_time=0.01 2>&1)"
  nn_status=$?
  if [ "$nn_status" -ne 0 ]; then
    echo "$nn_out"
    echo "FAIL: bench_micro (RLMUL_GEMM=$mode) exited with status $nn_status"
    exit 1
  fi
  nn_line="$(printf '%s\n' "$nn_out" | grep '^RLMUL_COUNTERS ' | tail -n 1)"
  if [ -z "$nn_line" ]; then
    echo "$nn_out"
    echo "FAIL: no RLMUL_COUNTERS line (RLMUL_GEMM=$mode)"
    exit 1
  fi
  flops="$(printf '%s\n' "$nn_line" | tr ' ' '\n' \
           | grep '^nn_flops=' | head -n 1 | cut -d= -f2)"
  if [ -z "$flops" ] || [ "$flops" -lt 1 ]; then
    echo "$nn_line"
    echo "FAIL: expected nn_flops >= 1 with RLMUL_GEMM=$mode," \
         "got '${flops:-missing}'"
    exit 1
  fi
  echo "PASS: nn benches (RLMUL_GEMM=$mode, nn_flops=$flops)"
done
