// Structural properties of the partial-product generators: row/height
// formulas, Booth digit counts, Baugh-Wooley constant placement, MAC
// height bumps — the static facts the CT machinery builds on.

#include <gtest/gtest.h>

#include <numeric>

#include "ct/compressor_tree.hpp"
#include "ppg/ppg.hpp"

namespace rlmul::ppg {
namespace {

int total_bits(const ct::ColumnHeights& h) {
  return std::accumulate(h.begin(), h.end(), 0);
}

TEST(AndPpg, HeightsAreTheParallelogram) {
  for (int n : {2, 4, 8, 16, 24, 32}) {
    const auto h = pp_heights({n, PpgKind::kAnd, false});
    ASSERT_EQ(static_cast<int>(h.size()), 2 * n);
    for (int j = 0; j < 2 * n; ++j) {
      EXPECT_EQ(h[static_cast<std::size_t>(j)],
                std::max(0, std::min({j + 1, n, 2 * n - 1 - j})))
          << "n=" << n << " column " << j;
    }
  }
}

TEST(BoothPpg, RowCountIsHalved) {
  // Radix-4 Booth: the tallest column holds ~N/2+1 rows of magnitude
  // bits (plus at most a neg and a sign bit), versus N for AND-based.
  for (int n : {8, 16, 32}) {
    const auto booth = pp_heights({n, PpgKind::kBooth, false});
    const auto plain = pp_heights({n, PpgKind::kAnd, false});
    const int max_booth = *std::max_element(booth.begin(), booth.end());
    const int max_and = *std::max_element(plain.begin(), plain.end());
    EXPECT_LE(max_booth, n / 2 + 3) << "n=" << n;
    EXPECT_LT(max_booth, max_and) << "n=" << n;
  }
}

TEST(BoothPpg, TotalBitsBeatAndAtWidth) {
  // Fewer rows means fewer bits to compress from 16 bits up.
  for (int n : {16, 32}) {
    EXPECT_LT(total_bits(pp_heights({n, PpgKind::kBooth, false})),
              total_bits(pp_heights({n, PpgKind::kAnd, false})))
        << "n=" << n;
  }
}

TEST(BaughWooley, BitBudget) {
  // (N-1)^2 positive products + 2(N-1) inverted terms + 1 sign product
  // + 2 constant ones.
  for (int n : {4, 8, 16}) {
    const auto h = pp_heights({n, PpgKind::kBaughWooley, false});
    EXPECT_EQ(total_bits(h), (n - 1) * (n - 1) + 2 * (n - 1) + 1 + 2)
        << "n=" << n;
  }
}

TEST(MacVariant, AddsExactlyOneBitPerColumn) {
  for (const auto kind :
       {PpgKind::kAnd, PpgKind::kBooth, PpgKind::kBaughWooley}) {
    const auto plain = pp_heights({8, kind, false});
    const auto mac = pp_heights({8, kind, true});
    ASSERT_EQ(plain.size(), mac.size());
    for (std::size_t j = 0; j < plain.size(); ++j) {
      EXPECT_EQ(mac[j], plain[j] + 1)
          << ppg_kind_name(kind) << " column " << j;
    }
  }
}

TEST(Heights, MatchEmittedSignalsForEverySpec) {
  // pp_heights dry-runs the emitter, so this can only fail if the two
  // code paths diverge — the invariant the builders rely on.
  for (int bits : {3, 5, 8}) {
    for (const auto kind :
         {PpgKind::kAnd, PpgKind::kBooth, PpgKind::kBaughWooley}) {
      for (const bool mac : {false, true}) {
        const MultiplierSpec spec{bits, kind, mac};
        netlist::Netlist nl;
        netlist::LogicBuilder lb(nl);
        const auto cols = build_ppg(lb, spec);
        const auto heights = pp_heights(spec);
        ASSERT_EQ(cols.size(), heights.size());
        for (std::size_t j = 0; j < cols.size(); ++j) {
          EXPECT_EQ(static_cast<int>(cols[j].size()), heights[j])
              << bits << "b " << ppg_kind_name(kind) << " mac=" << mac
              << " col " << j;
        }
      }
    }
  }
}

TEST(InitialTree, AlwaysLegalForEverySpec) {
  for (int bits : {2, 3, 4, 7, 8, 12, 16}) {
    for (const auto kind :
         {PpgKind::kAnd, PpgKind::kBooth, PpgKind::kBaughWooley}) {
      for (const bool mac : {false, true}) {
        const MultiplierSpec spec{bits, kind, mac};
        EXPECT_TRUE(initial_tree(spec).legal())
            << bits << "b " << ppg_kind_name(kind) << " mac=" << mac;
      }
    }
  }
}

// -- Legacy tree count formulas ----------------------------------------------

TEST(Dadda, KnownCompressorCountsForAndMultipliers) {
  // Classic result: an NxN Dadda tree uses N^2 - 4N + 3 full adders and
  // N - 1 half adders.
  for (int n : {4, 6, 8, 12, 16}) {
    const auto tree =
        ct::dadda_tree(pp_heights({n, PpgKind::kAnd, false}));
    EXPECT_EQ(tree.total_c32(), n * n - 4 * n + 3) << "n=" << n;
    EXPECT_EQ(tree.total_c22(), n - 1) << "n=" << n;
  }
}

TEST(Wallace, UsesAtLeastDaddasBudget) {
  for (int n : {4, 8, 16}) {
    const auto h = pp_heights({n, PpgKind::kAnd, false});
    const auto wallace = ct::wallace_tree(h);
    const auto dadda = ct::dadda_tree(h);
    // Wallace compresses eagerly: at least as many compressors overall,
    // and notably more half adders.
    EXPECT_GE(wallace.total_c32() + wallace.total_c22(),
              dadda.total_c32() + dadda.total_c22())
        << "n=" << n;
    EXPECT_GT(wallace.total_c22(), dadda.total_c22()) << "n=" << n;
  }
}

TEST(LegacyTrees, StageCountsAreLogarithmic) {
  // Reduction depth grows like log_{3/2}(height).
  const struct {
    int n;
    int max_stages;
  } expected[] = {{4, 3}, {8, 5}, {16, 7}, {32, 9}};
  for (const auto& e : expected) {
    const auto h = pp_heights({e.n, PpgKind::kAnd, false});
    EXPECT_LE(ct::stage_count(ct::dadda_tree(h)), e.max_stages)
        << "n=" << e.n;
    EXPECT_LE(ct::stage_count(ct::wallace_tree(h)), e.max_stages)
        << "n=" << e.n;
  }
}

}  // namespace
}  // namespace rlmul::ppg
