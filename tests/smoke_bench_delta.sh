#!/usr/bin/env bash
# CI smoke for the delta-evaluation A/B bench: runs bench_delta (quick
# budget via RLMUL_QUICK from ctest) and checks that every workload
# reports bit_identical=true and that the delta path actually engaged
# (delta_hits >= 1 per config). Throughput ratios are NOT asserted here
# — CI boxes are too noisy; results/BENCH_delta.json records the
# full-budget numbers. Usage: smoke_bench_delta.sh <path-to-bench_delta>
set -u

bench="${1:?usage: smoke_bench_delta.sh <bench_delta>}"

out="$("$bench" 2>&1)"
status=$?
if [ "$status" -ne 0 ]; then
  echo "$out"
  echo "FAIL: bench_delta exited with status $status"
  exit 1
fi

configs="$(printf '%s\n' "$out" | grep -c '"bit_identical"')"
if [ "$configs" -lt 2 ]; then
  echo "$out"
  echo "FAIL: expected >= 2 workload configs, found $configs"
  exit 1
fi
if printf '%s\n' "$out" | grep -q '"bit_identical": false'; then
  echo "$out"
  echo "FAIL: a workload reported bit_identical=false"
  exit 1
fi

# Every config's identity pass must have patched against a retained
# parent at least once.
while read -r hits; do
  if [ "$hits" -lt 1 ]; then
    echo "$out"
    echo "FAIL: a workload reported delta_hits=$hits (delta path disengaged)"
    exit 1
  fi
done < <(printf '%s\n' "$out" | grep '"delta_hits"' | grep -o '[0-9]*')

echo "PASS: bench_delta smoke ($configs workloads, all bit_identical)"
