// Property tests for the synthesis fast path: the worklist-based
// incremental timer must be indistinguishable from a full sta::analyze
// after arbitrary resize sequences, prepared-design synthesis must be
// bit-identical to the legacy rebuild-per-CPA pipeline, and parallel
// multi-constraint evaluation must return exactly what a serial
// evaluation returns.

#include <gtest/gtest.h>

#include <vector>

#include "ct/compressor_tree.hpp"
#include "ppg/ppg.hpp"
#include "sta/sta.hpp"
#include "synth/evaluator.hpp"
#include "synth/synth.hpp"
#include "util/rng.hpp"

namespace rlmul {
namespace {

using netlist::CellLibrary;
using netlist::CpaKind;
using netlist::GateId;
using netlist::Netlist;
using ppg::MultiplierSpec;
using ppg::PpgKind;

/// Masked random walk from the Wallace tree (the same move set the RL
/// episodes use), so the properties are checked on realistic designs.
ct::CompressorTree random_tree(const MultiplierSpec& spec, int steps,
                               util::Rng& rng) {
  ct::CompressorTree tree = ppg::initial_tree(spec);
  for (int s = 0; s < steps; ++s) {
    const auto mask = ct::legal_action_mask(tree);
    std::vector<double> w(mask.size());
    for (std::size_t i = 0; i < mask.size(); ++i) w[i] = mask[i];
    const auto pick = rng.sample_discrete(w);
    if (pick >= mask.size()) break;
    tree = ct::apply_action(tree,
                            ct::action_from_index(static_cast<int>(pick)));
  }
  return tree;
}

void expect_timer_matches_analyze(const Netlist& nl, const CellLibrary& lib,
                                  const sta::IncrementalTimer& timer) {
  const auto rep = sta::analyze(nl, lib);
  ASSERT_EQ(timer.arrival_ps().size(), rep.arrival_ps.size());
  for (std::size_t n = 0; n < rep.arrival_ps.size(); ++n) {
    EXPECT_DOUBLE_EQ(timer.arrival_ps()[n], rep.arrival_ps[n]) << "net " << n;
    EXPECT_DOUBLE_EQ(timer.load_ff()[n], rep.load_ff[n]) << "net " << n;
  }
  EXPECT_NEAR(timer.critical_ps(), rep.critical_ps, 0.01);
  EXPECT_DOUBLE_EQ(timer.max_po_arrival_ps(), rep.max_po_arrival_ps);
  EXPECT_DOUBLE_EQ(timer.min_clock_period_ps(), rep.min_clock_period_ps);
  EXPECT_EQ(timer.critical_path(), rep.critical_path);
}

TEST(IncrementalSta, MatchesFullAnalyzeAfterRandomResizeSequences) {
  util::Rng rng(7001);
  const CellLibrary& lib = CellLibrary::nangate45();
  const CpaKind cpas[] = {CpaKind::kRippleCarry, CpaKind::kBrentKung,
                          CpaKind::kKoggeStone};
  for (int trial = 0; trial < 6; ++trial) {
    const MultiplierSpec spec{trial % 2 == 0 ? 8 : 6, PpgKind::kAnd, false};
    const auto tree = random_tree(spec, 1 + trial, rng);
    Netlist nl = ppg::build_multiplier(spec, tree, cpas[trial % 3]);
    sta::IncrementalTimer timer(nl, lib);
    expect_timer_matches_analyze(nl, lib, timer);

    for (int round = 0; round < 8; ++round) {
      // Random up/downsizes of a random gate subset.
      std::vector<GateId> changed;
      const int edits =
          1 + static_cast<int>(rng.next_below(5));
      for (int e = 0; e < edits; ++e) {
        const GateId g = static_cast<GateId>(
            rng.next_below(static_cast<std::uint64_t>(nl.num_gates())));
        auto& gate = nl.gates()[static_cast<std::size_t>(g)];
        const int nv = lib.num_variants(gate.kind);
        if (rng.next_below(2) == 0 && gate.variant + 1 < nv) {
          ++gate.variant;
        } else if (gate.variant > 0) {
          --gate.variant;
        } else {
          continue;  // nothing to change on this gate
        }
        changed.push_back(g);
      }
      timer.update(changed);
      expect_timer_matches_analyze(nl, lib, timer);
    }
  }
}

TEST(IncrementalSta, UpdateWithEmptyChangeSetIsNoop) {
  const MultiplierSpec spec{8, PpgKind::kAnd, false};
  const CellLibrary& lib = CellLibrary::nangate45();
  Netlist nl =
      ppg::build_multiplier(spec, ppg::initial_tree(spec), CpaKind::kSklansky);
  sta::IncrementalTimer timer(nl, lib);
  const double before = timer.critical_ps();
  timer.update({});
  EXPECT_DOUBLE_EQ(timer.critical_ps(), before);
  expect_timer_matches_analyze(nl, lib, timer);
}

TEST(IncrementalSta, SizingMatchesLegacyFullStaSizing) {
  util::Rng rng(7002);
  const CellLibrary& lib = CellLibrary::nangate45();
  const double targets[] = {0.01, 0.4, 0.8, 1e9};
  for (int trial = 0; trial < 3; ++trial) {
    const MultiplierSpec spec{8, PpgKind::kAnd, false};
    const auto tree = random_tree(spec, 2 + trial, rng);
    for (double target : targets) {
      Netlist fast = ppg::build_multiplier(spec, tree, CpaKind::kRippleCarry);
      Netlist slow = fast;
      synth::SynthesisOptions opts;
      opts.target_delay_ns = target;
      opts.incremental_sta = true;
      synth::size_for_target(fast, lib, opts);
      opts.incremental_sta = false;
      synth::size_for_target(slow, lib, opts);
      for (int g = 0; g < fast.num_gates(); ++g) {
        EXPECT_EQ(fast.gates()[static_cast<std::size_t>(g)].variant,
                  slow.gates()[static_cast<std::size_t>(g)].variant)
            << "gate " << g << " target " << target;
      }
    }
  }
}

TEST(PreparedDesign, SynthesisBitIdenticalToLegacyPipeline) {
  util::Rng rng(7003);
  for (int trial = 0; trial < 3; ++trial) {
    const MultiplierSpec spec{8, PpgKind::kAnd, trial == 2};
    const auto tree = random_tree(spec, 3, rng);
    const synth::PreparedDesign prep(spec, tree);
    for (double target : {0.05, 0.3, 0.6, 1.2, 1e9}) {
      const auto fast = prep.synthesize(target);
      const auto slow = synth::synthesize_design_legacy(spec, tree, target);
      EXPECT_DOUBLE_EQ(fast.area_um2, slow.area_um2) << "target " << target;
      EXPECT_DOUBLE_EQ(fast.delay_ns, slow.delay_ns) << "target " << target;
      EXPECT_DOUBLE_EQ(fast.power_mw, slow.power_mw) << "target " << target;
      EXPECT_EQ(fast.met_target, slow.met_target) << "target " << target;
      EXPECT_EQ(fast.cpa, slow.cpa) << "target " << target;
      EXPECT_EQ(fast.num_gates, slow.num_gates) << "target " << target;
    }
  }
}

TEST(ParallelEvaluation, BitIdenticalToSerialEvaluation) {
  const MultiplierSpec spec{8, PpgKind::kAnd, false};
  const std::vector<double> targets = {0.2, 0.5, 0.9, 2.0};

  synth::EvaluatorOptions serial_opts;
  serial_opts.parallel_targets = false;
  serial_opts.synth_threads = 1;
  synth::DesignEvaluator serial(spec, targets, serial_opts);

  synth::EvaluatorOptions parallel_opts;
  parallel_opts.parallel_targets = true;
  parallel_opts.synth_threads = 4;
  synth::DesignEvaluator parallel(spec, targets, parallel_opts);

  util::Rng rng(7004);
  for (int trial = 0; trial < 4; ++trial) {
    const auto tree = random_tree(spec, 1 + trial, rng);
    const auto a = serial.evaluate(tree);
    const auto b = parallel.evaluate(tree);
    EXPECT_EQ(a.sum_area, b.sum_area);
    EXPECT_EQ(a.sum_delay, b.sum_delay);
    EXPECT_EQ(a.sum_power, b.sum_power);
    ASSERT_EQ(a.per_target.size(), b.per_target.size());
    for (std::size_t i = 0; i < a.per_target.size(); ++i) {
      EXPECT_EQ(a.per_target[i].area_um2, b.per_target[i].area_um2);
      EXPECT_EQ(a.per_target[i].delay_ns, b.per_target[i].delay_ns);
      EXPECT_EQ(a.per_target[i].power_mw, b.per_target[i].power_mw);
      EXPECT_EQ(a.per_target[i].cpa, b.per_target[i].cpa);
    }
  }
}

}  // namespace
}  // namespace rlmul
