// Runtime behaviour of the annotated sync shims (util/sync.hpp). The
// *static* side — that the Clang thread-safety analysis actually fires
// on misuse — is proven at configure time by the negative-compile probe
// in cmake/ThreadSafety.cmake; these tests pin down that the shims are
// real locks with real wait/notify semantics, under every build
// (GCC included, where the annotations compile to nothing).
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <string>
#include <vector>

#include "util/build_info.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace {

using rlmul::util::CondVar;
using rlmul::util::LockGuard;
using rlmul::util::Mutex;
using rlmul::util::UniqueLock;

TEST(SyncShims, LockGuardExcludesConcurrentIncrements) {
  Mutex mu;
  long counter RLMUL_GUARDED_BY(mu) = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;

  auto& pool = rlmul::util::ThreadPool::shared();
  std::vector<std::future<void>> futs;
  futs.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    futs.push_back(pool.submit([&] {
      for (int i = 0; i < kIters; ++i) {
        LockGuard lock(mu);
        ++counter;
      }
    }));
  }
  for (auto& f : futs) f.get();

  LockGuard lock(mu);
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(SyncShims, TryLockReportsContention) {
  Mutex mu;
  ASSERT_TRUE(mu.try_lock());
  EXPECT_FALSE(mu.try_lock());
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SyncShims, CondVarWakesExplicitWaitLoop) {
  Mutex mu;
  CondVar cv;
  bool ready RLMUL_GUARDED_BY(mu) = false;
  std::atomic<bool> woke{false};

  auto& pool = rlmul::util::ThreadPool::shared();
  auto fut = pool.submit([&] {
    UniqueLock lock(mu);
    while (!ready) cv.wait(lock);
    woke.store(true);
  });

  {
    LockGuard lock(mu);
    ready = true;
  }
  cv.notify_one();
  fut.get();
  EXPECT_TRUE(woke.load());
}

TEST(SyncShims, UniqueLockRelocks) {
  Mutex mu;
  UniqueLock lock(mu);
  EXPECT_TRUE(lock.owns_lock());
  lock.unlock();
  EXPECT_FALSE(lock.owns_lock());
  EXPECT_TRUE(mu.try_lock());  // genuinely released
  mu.unlock();
  lock.lock();
  EXPECT_TRUE(lock.owns_lock());
}

TEST(BuildInfo, ReportsCompilerSanitizersAndTsa) {
  const std::string info = rlmul::util::build_info();
  EXPECT_NE(info.find("compiler="), std::string::npos) << info;
  EXPECT_NE(info.find("sanitizers="), std::string::npos) << info;
  EXPECT_NE(info.find("thread_safety_analysis="), std::string::npos) << info;
}

}  // namespace
