// Checkpoint (save/load/copy) tests for the NN parameter serializer.

#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "nn/resnet.hpp"
#include "nt/tensor.hpp"
#include "util/rng.hpp"

namespace rlmul::nn {
namespace {

using nt::Tensor;

TEST(Serialize, RoundTripRestoresOutputs) {
  util::Rng rng(31);
  ResNet net(resnet_tiny_config(2, 8), rng);
  net.set_training(false);
  const Tensor x = Tensor::randn({2, 2, 8, 8}, rng, 1.0f);
  const Tensor before = net.forward(x);

  const auto blob = save_params(net);

  // Scramble the parameters, then restore.
  for (Param* p : net.params()) {
    for (std::size_t i = 0; i < p->value.numel(); ++i) {
      p->value[i] += 1.0f;
    }
  }
  const Tensor scrambled = net.forward(x);
  bool changed = false;
  for (std::size_t i = 0; i < before.numel(); ++i) {
    if (before[i] != scrambled[i]) changed = true;
  }
  EXPECT_TRUE(changed);

  load_params(net, blob);
  const Tensor after = net.forward(x);
  for (std::size_t i = 0; i < before.numel(); ++i) {
    EXPECT_FLOAT_EQ(before[i], after[i]);
  }
}

TEST(Serialize, RejectsStructureMismatch) {
  util::Rng rng(32);
  ResNet small(resnet_tiny_config(2, 4), rng);
  ResNet big(resnet18_config(2, 4), rng);
  const auto blob = save_params(small);
  EXPECT_THROW(load_params(big, blob), std::runtime_error);
}

TEST(Serialize, RejectsCorruptBlob) {
  util::Rng rng(33);
  ResNet net(resnet_tiny_config(2, 4), rng);
  auto blob = save_params(net);
  blob[0] ^= 0xFF;  // break the magic
  EXPECT_THROW(load_params(net, blob), std::runtime_error);
  auto truncated = save_params(net);
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(load_params(net, truncated), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  util::Rng rng(34);
  ResNet net(resnet_tiny_config(2, 4), rng);
  const std::string path = "/tmp/rlmul_ckpt_test.bin";
  save_params_file(net, path);
  util::Rng rng2(35);
  ResNet other(resnet_tiny_config(2, 4), rng2);
  load_params_file(other, path);
  std::remove(path.c_str());

  other.set_training(false);
  net.set_training(false);
  const Tensor x = Tensor::randn({1, 2, 8, 8}, rng, 1.0f);
  const Tensor a = net.forward(x);
  const Tensor b = other.forward(x);
  // Parameters match; batch-norm running stats are architectural state
  // initialized identically, so outputs agree.
  for (std::size_t i = 0; i < a.numel(); ++i) {
    EXPECT_FLOAT_EQ(a[i], b[i]);
  }
}

TEST(Serialize, CopyParamsMatchesSaveLoad) {
  util::Rng rng(36);
  ResNet a(resnet_tiny_config(2, 4), rng);
  ResNet b(resnet_tiny_config(2, 4), rng);
  copy_params(a, b);
  a.set_training(false);
  b.set_training(false);
  const Tensor x = Tensor::randn({1, 2, 8, 8}, rng, 1.0f);
  const Tensor ya = a.forward(x);
  const Tensor yb = b.forward(x);
  for (std::size_t i = 0; i < ya.numel(); ++i) {
    EXPECT_FLOAT_EQ(ya[i], yb[i]);
  }
}

}  // namespace
}  // namespace rlmul::nn
