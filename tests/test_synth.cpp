// Synthesis-flow tests: sizing against target delays, CPA selection,
// the area<->delay trade-off shape the reward depends on, the power
// model, and the multi-constraint design evaluator.

#include "synth/synth.hpp"

#include <gtest/gtest.h>

#include "ppg/ppg.hpp"
#include "sta/sta.hpp"
#include "synth/evaluator.hpp"

namespace rlmul::synth {
namespace {

using netlist::CellLibrary;
using netlist::CpaKind;
using ppg::MultiplierSpec;
using ppg::PpgKind;

TEST(Synth, TighterTargetCostsArea) {
  const MultiplierSpec spec{8, PpgKind::kAnd, false};
  const auto tree = ppg::initial_tree(spec);
  const auto loose = synthesize_design(spec, tree, 2.0);
  const auto tight = synthesize_design(spec, tree, loose.delay_ns * 0.55);
  EXPECT_LE(tight.delay_ns, loose.delay_ns);
  EXPECT_GE(tight.area_um2, loose.area_um2);
}

TEST(Synth, LooseTargetIsMet) {
  const MultiplierSpec spec{8, PpgKind::kAnd, false};
  const auto res = synthesize_design(spec, ppg::initial_tree(spec), 5.0);
  EXPECT_TRUE(res.met_target);
  EXPECT_EQ(res.cpa, CpaKind::kRippleCarry);  // min-area CPA when relaxed
}

TEST(Synth, ImpossibleTargetReportsBestEffort) {
  const MultiplierSpec spec{8, PpgKind::kAnd, false};
  const auto res = synthesize_design(spec, ppg::initial_tree(spec), 0.01);
  EXPECT_FALSE(res.met_target);
  EXPECT_GT(res.delay_ns, 0.01);
  EXPECT_GT(res.area_um2, 0.0);
}

TEST(Synth, TightTargetPrefersPrefixAdder) {
  const MultiplierSpec spec{16, PpgKind::kAnd, false};
  const auto tree = ppg::initial_tree(spec);
  const auto tight = synthesize_design(spec, tree, 0.01);
  EXPECT_NE(tight.cpa, CpaKind::kRippleCarry);  // some parallel prefix
}

TEST(Synth, AreaScalesWithBitWidth) {
  auto area_of = [](int bits) {
    const MultiplierSpec spec{bits, PpgKind::kAnd, false};
    return synthesize_design(spec, ppg::initial_tree(spec), 10.0).area_um2;
  };
  const double a8 = area_of(8);
  const double a16 = area_of(16);
  EXPECT_GT(a16, 2.5 * a8);  // roughly quadratic growth
}

TEST(Synth, MacCostsMoreThanMultiplier) {
  const MultiplierSpec mul{8, PpgKind::kAnd, false};
  const MultiplierSpec mac{8, PpgKind::kAnd, true};
  const auto rm = synthesize_design(mul, ppg::initial_tree(mul), 10.0);
  const auto rc = synthesize_design(mac, ppg::initial_tree(mac), 10.0);
  EXPECT_GT(rc.area_um2, rm.area_um2);
}

TEST(Synth, BoothCostsMoreThanAndAtSmallWidth) {
  // Matches the paper's Table I trend at 8 bits.
  const MultiplierSpec a{8, PpgKind::kAnd, false};
  const MultiplierSpec m{8, PpgKind::kBooth, false};
  const auto ra = synthesize_design(a, ppg::initial_tree(a), 10.0);
  const auto rm = synthesize_design(m, ppg::initial_tree(m), 10.0);
  EXPECT_GT(rm.area_um2, ra.area_um2);
}

TEST(Power, PositiveAndScalesWithFrequency) {
  const MultiplierSpec spec{8, PpgKind::kAnd, false};
  auto nl = ppg::build_multiplier(spec, ppg::initial_tree(spec),
                                  CpaKind::kRippleCarry);
  const CellLibrary& lib = CellLibrary::nangate45();
  const auto slow = estimate_power(nl, lib, 2.0);
  const auto fast = estimate_power(nl, lib, 1.0);
  EXPECT_GT(slow.dynamic_mw, 0.0);
  EXPECT_NEAR(fast.dynamic_mw, 2.0 * slow.dynamic_mw, 1e-9);
  EXPECT_NEAR(fast.leakage_mw, slow.leakage_mw, 1e-12);  // freq-free
}

TEST(Power, MonteCarloCrossValidatesProbabilisticModel) {
  // The independence-assumption estimate and the toggle-counting
  // simulation must agree to within a modest factor on random-input
  // multipliers (reconvergent fanout causes the residual gap).
  for (const auto ppg_kind : {PpgKind::kAnd, PpgKind::kBooth}) {
    const MultiplierSpec spec{8, ppg_kind, false};
    auto nl = ppg::build_multiplier(spec, ppg::initial_tree(spec),
                                    CpaKind::kRippleCarry);
    const CellLibrary& lib = CellLibrary::nangate45();
    const auto model = estimate_power(nl, lib, 1.0);
    const auto mc = simulate_power(nl, lib, 1.0, 4096, 7);
    EXPECT_GT(mc.dynamic_mw, 0.0);
    EXPECT_LT(model.dynamic_mw, 1.6 * mc.dynamic_mw)
        << ppg::ppg_kind_name(ppg_kind);
    EXPECT_GT(model.dynamic_mw, 0.55 * mc.dynamic_mw)
        << ppg::ppg_kind_name(ppg_kind);
    EXPECT_NEAR(model.leakage_mw, mc.leakage_mw, 1e-12);
  }
}

TEST(Power, MonteCarloIsStableAcrossSeeds) {
  const MultiplierSpec spec{4, PpgKind::kAnd, false};
  auto nl = ppg::build_multiplier(spec, ppg::initial_tree(spec),
                                  CpaKind::kRippleCarry);
  const CellLibrary& lib = CellLibrary::nangate45();
  const auto a = simulate_power(nl, lib, 1.0, 8192, 1);
  const auto b = simulate_power(nl, lib, 1.0, 8192, 2);
  EXPECT_NEAR(a.dynamic_mw, b.dynamic_mw, 0.05 * a.dynamic_mw);
}

TEST(Power, CorrelatesWithArea) {
  // The Section IV-B observation: bigger designs burn more power.
  const MultiplierSpec s8{8, PpgKind::kAnd, false};
  const MultiplierSpec s16{16, PpgKind::kAnd, false};
  const auto r8 = synthesize_design(s8, ppg::initial_tree(s8), 10.0);
  const auto r16 = synthesize_design(s16, ppg::initial_tree(s16), 10.0);
  EXPECT_GT(r16.power_mw, r8.power_mw);
}

TEST(Slacks, NonNegativeWhenTargetIsAchieved) {
  const MultiplierSpec spec{4, PpgKind::kAnd, false};
  auto nl = ppg::build_multiplier(spec, ppg::initial_tree(spec),
                                  CpaKind::kRippleCarry);
  const CellLibrary& lib = CellLibrary::nangate45();
  const auto rep = sta::analyze(nl, lib);
  const auto slack = net_slacks(nl, lib, rep.critical_ps + 1.0);
  for (netlist::NetId n : nl.primary_outputs()) {
    EXPECT_GE(slack[static_cast<std::size_t>(n)], 0.9);
  }
}

// -- DesignEvaluator -------------------------------------------------------

TEST(Evaluator, DefaultTargetsAreOrderedAndSpanTheRange) {
  const MultiplierSpec spec{8, PpgKind::kAnd, false};
  const auto targets = default_targets(spec, 4);
  ASSERT_EQ(targets.size(), 4u);
  for (std::size_t i = 1; i < targets.size(); ++i) {
    EXPECT_GT(targets[i], targets[i - 1]);
  }
  EXPECT_GT(targets.front(), 0.0);
  EXPECT_LT(targets.back(), 10.0);
}

TEST(Evaluator, WallaceCostIsNormalizedToWeights) {
  const MultiplierSpec spec{8, PpgKind::kAnd, false};
  DesignEvaluator ev(spec);
  const auto eval = ev.evaluate(ppg::initial_tree(spec));
  EXPECT_NEAR(ev.cost(eval, 1.0, 1.0), 2.0, 1e-9);
  EXPECT_NEAR(ev.cost(eval, 0.25, 0.75), 1.0, 1e-9);
}

TEST(Evaluator, CachesRepeatEvaluations) {
  const MultiplierSpec spec{8, PpgKind::kAnd, false};
  DesignEvaluator ev(spec);
  const auto tree = ppg::initial_tree(spec);
  ev.evaluate(tree);
  const auto before = ev.num_unique_evaluations();
  ev.evaluate(tree);
  EXPECT_EQ(ev.num_unique_evaluations(), before);
}

TEST(Evaluator, FrontierCollectsNonDominatedPoints) {
  const MultiplierSpec spec{8, PpgKind::kAnd, false};
  DesignEvaluator ev(spec);
  ev.evaluate(ppg::initial_tree(spec));
  const auto front = ev.frontier().sorted();
  ASSERT_GE(front.size(), 2u);  // several targets -> several trade-offs
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].x, front[i - 1].x);
    EXPECT_LT(front[i].y, front[i - 1].y);
  }
}

TEST(Evaluator, PerTargetResultsMatchTargetCount) {
  const MultiplierSpec spec{4, PpgKind::kAnd, false};
  DesignEvaluator ev(spec, {0.4, 0.8, 1.6});
  const auto eval = ev.evaluate(ppg::initial_tree(spec));
  EXPECT_EQ(eval.per_target.size(), 3u);
  EXPECT_NEAR(eval.sum_area,
              eval.per_target[0].area_um2 + eval.per_target[1].area_um2 +
                  eval.per_target[2].area_um2,
              1e-9);
}

}  // namespace
}  // namespace rlmul::synth
