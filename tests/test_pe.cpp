// PE-array tests: functional correctness of the registered MAC cell
// (cycle-accurate simulation), sequential timing, and the scaling model
// against a really-composed small array.

#include "pe/pe_array.hpp"

#include <gtest/gtest.h>

#include "netlist/cell_library.hpp"
#include "ppg/ppg.hpp"
#include "sim/simulator.hpp"
#include "sta/sta.hpp"
#include "util/rng.hpp"

namespace rlmul::pe {
namespace {

using netlist::CpaKind;
using ppg::MultiplierSpec;
using ppg::PpgKind;

MultiplierSpec mac_spec(int bits) { return {bits, PpgKind::kAnd, true}; }
MultiplierSpec mul_spec(int bits) { return {bits, PpgKind::kAnd, false}; }

/// Drives a single PE for several cycles and checks the accumulator
/// behaves as acc' = acc + a_reg * b_reg (mod 2^{2N}).
void check_pe_function(const MultiplierSpec& spec, CpaKind cpa) {
  const auto tree = ppg::initial_tree(spec);
  const auto nl = build_pe_netlist(spec, tree, cpa);
  sim::Simulator simulator(nl);
  util::Rng rng(42);
  const int n = spec.bits;
  const std::uint64_t mask = (1ULL << n) - 1;
  const std::uint64_t out_mask =
      2 * n >= 64 ? ~0ULL : ((1ULL << (2 * n)) - 1);

  std::uint64_t model_acc = 0;
  std::uint64_t reg_a = 0;
  std::uint64_t reg_b = 0;
  simulator.reset_state();
  for (int cycle = 0; cycle < 6; ++cycle) {
    const std::uint64_t a = rng.next() & mask;
    const std::uint64_t b = rng.next() & mask;
    for (int i = 0; i < n; ++i) {
      simulator.set_input(i, ((a >> i) & 1) ? ~0ULL : 0);
      simulator.set_input(n + i, ((b >> i) & 1) ? ~0ULL : 0);
    }
    simulator.run();
    // Registered outputs show the *previous* operands.
    std::uint64_t a_out = 0;
    std::uint64_t b_out = 0;
    for (int i = 0; i < n; ++i) {
      a_out |= (simulator.output(2 * i) & 1ULL) << i;
      b_out |= (simulator.output(2 * i + 1) & 1ULL) << i;
    }
    EXPECT_EQ(a_out, reg_a) << "cycle " << cycle;
    EXPECT_EQ(b_out, reg_b) << "cycle " << cycle;

    simulator.clock_edge();
    // Model: operand regs capture the inputs; the accumulator captures
    // acc + product of the operands registered *before* this edge.
    model_acc = (model_acc + reg_a * reg_b) & out_mask;
    reg_a = a;
    reg_b = b;
  }
  (void)model_acc;  // verified implicitly through the register chain
}

TEST(PeCell, RegistersPassOperandsThrough) {
  check_pe_function(mac_spec(4), CpaKind::kRippleCarry);
  check_pe_function(mul_spec(4), CpaKind::kKoggeStone);
}

/// Accumulator DFFs are created after the operand registers, in column
/// order; decode their Q nets into the accumulator value.
std::uint64_t read_accumulator(const netlist::Netlist& nl,
                               const sim::Simulator& simulator, int width) {
  std::vector<netlist::NetId> acc_q;
  for (const auto& g : nl.gates()) {
    if (g.kind == netlist::CellKind::kDff) acc_q.push_back(g.outputs[0]);
  }
  // Last `width` DFFs are the accumulator, LSB first.
  std::uint64_t value = 0;
  const std::size_t base = acc_q.size() - static_cast<std::size_t>(width);
  for (int j = 0; j < width; ++j) {
    value |= (simulator.net_value(acc_q[base + static_cast<std::size_t>(j)]) &
              1ULL)
             << j;
  }
  return value;
}

class PeAccumulateTest
    : public ::testing::TestWithParam<std::pair<MultiplierSpec, CpaKind>> {};

TEST_P(PeAccumulateTest, AccumulatorMatchesGoldenModel) {
  const auto [spec, cpa] = GetParam();
  const auto tree = ppg::initial_tree(spec);
  const auto nl = build_pe_netlist(spec, tree, cpa);
  sim::Simulator simulator(nl);
  simulator.reset_state();
  util::Rng rng(7);
  const int n = spec.bits;
  const std::uint64_t in_mask = (1ULL << n) - 1;
  const std::uint64_t out_mask = (1ULL << (2 * n)) - 1;

  std::uint64_t reg_a = 0;
  std::uint64_t reg_b = 0;
  std::uint64_t model_acc = 0;
  for (int cycle = 0; cycle < 8; ++cycle) {
    const std::uint64_t a = rng.next() & in_mask;
    const std::uint64_t b = rng.next() & in_mask;
    for (int i = 0; i < n; ++i) {
      simulator.set_input(i, ((a >> i) & 1) ? ~0ULL : 0);
      simulator.set_input(n + i, ((b >> i) & 1) ? ~0ULL : 0);
    }
    simulator.run();
    EXPECT_EQ(read_accumulator(nl, simulator, 2 * n), model_acc)
        << "cycle " << cycle;
    simulator.clock_edge();
    model_acc = (model_acc + reg_a * reg_b) & out_mask;
    reg_a = a;
    reg_b = b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cells, PeAccumulateTest,
    ::testing::Values(
        std::make_pair(MultiplierSpec{3, PpgKind::kAnd, true},
                       CpaKind::kRippleCarry),
        std::make_pair(MultiplierSpec{4, PpgKind::kAnd, true},
                       CpaKind::kKoggeStone),
        std::make_pair(MultiplierSpec{4, PpgKind::kBooth, true},
                       CpaKind::kRippleCarry),
        std::make_pair(MultiplierSpec{4, PpgKind::kAnd, false},
                       CpaKind::kRippleCarry),
        std::make_pair(MultiplierSpec{4, PpgKind::kBooth, false},
                       CpaKind::kKoggeStone)));

TEST(PeCell, SequentialTimingDominatedByMacPath) {
  const auto spec = mac_spec(8);
  const auto tree = ppg::initial_tree(spec);
  auto nl = build_pe_netlist(spec, tree, CpaKind::kRippleCarry);
  const auto rep = sta::analyze(nl, netlist::CellLibrary::nangate45());
  EXPECT_GT(rep.min_clock_period_ps, 0.0);
  // The reg-to-reg MAC path must dominate the pass-through reg-to-out.
  EXPECT_GE(rep.min_clock_period_ps, rep.max_po_arrival_ps * 0.5);
}

TEST(PeArray, ComposedArrayMatchesScalingModel) {
  const auto spec = mac_spec(4);
  const auto tree = ppg::initial_tree(spec);
  const auto& lib = netlist::CellLibrary::nangate45();

  const auto pe = build_pe_netlist(spec, tree, CpaKind::kRippleCarry);
  const double pe_area = netlist::netlist_area(pe, lib);
  const auto array = build_pe_array_netlist(spec, tree,
                                            CpaKind::kRippleCarry, 2, 2);
  const double array_area = netlist::netlist_area(array, lib);
  EXPECT_NEAR(array_area, 4.0 * pe_area, 0.02 * array_area);

  // Same clock period: the array is locally connected.
  const double pe_period =
      sta::analyze(pe, lib).min_clock_period_ps;
  const double array_period =
      sta::analyze(array, lib).min_clock_period_ps;
  EXPECT_NEAR(array_period, pe_period, 0.05 * pe_period);
}

TEST(PeArray, SynthesisReportsArrayScale) {
  const auto spec = mac_spec(4);
  const auto tree = ppg::initial_tree(spec);
  PeArrayOptions opts;
  opts.rows = 8;
  opts.cols = 8;
  const auto res = synthesize_pe_array(spec, tree, 5.0, opts);
  const auto single = synthesize_pe_array(spec, tree, 5.0,
                                          PeArrayOptions{1, 1, 0.0});
  EXPECT_NEAR(res.area_um2,
              single.area_um2 * 64.0 * (1.0 + opts.wiring_overhead),
              1e-6 * res.area_um2);
  EXPECT_NEAR(res.delay_ns, single.delay_ns, 1e-12);
}

TEST(PeArray, TightClockCostsArea) {
  const auto spec = mac_spec(8);
  const auto tree = ppg::initial_tree(spec);
  const auto loose = synthesize_pe_array(spec, tree, 10.0);
  const auto tight =
      synthesize_pe_array(spec, tree, loose.delay_ns * 0.6);
  EXPECT_LE(tight.delay_ns, loose.delay_ns + 1e-12);
  EXPECT_GE(tight.area_um2, loose.area_um2 * 0.99);
}

TEST(PeArray, MacPeBeatsMultiplierPeOnDelay) {
  // The merged MAC removes the separate accumulate adder from the
  // register-to-register path, the Section III-C motivation.
  const auto mul = mul_spec(8);
  const auto mac = mac_spec(8);
  const auto r_mul =
      synthesize_pe_array(mul, ppg::initial_tree(mul), 0.01);
  const auto r_mac =
      synthesize_pe_array(mac, ppg::initial_tree(mac), 0.01);
  EXPECT_LT(r_mac.delay_ns, r_mul.delay_ns * 1.05);
}

}  // namespace
}  // namespace rlmul::pe
