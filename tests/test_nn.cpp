// Neural-network library tests: shape plumbing, finite-difference
// gradient checks for every layer, optimizer behaviour, and a small
// end-to-end regression fit.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/layers.hpp"
#include "nn/optim.hpp"
#include "nn/resnet.hpp"
#include "nt/gemm.hpp"
#include "nt/tensor.hpp"
#include "util/rng.hpp"

namespace rlmul::nn {
namespace {

using nt::Tensor;

/// Pins nt::sgemm to one implementation for a test's scope.
struct GemmModeGuard {
  nt::GemmMode saved = nt::gemm_mode();
  explicit GemmModeGuard(nt::GemmMode mode) { nt::set_gemm_mode(mode); }
  ~GemmModeGuard() { nt::set_gemm_mode(saved); }
};

/// Scalar loss L = sum(w_i * y_i) with fixed random weights, so that
/// dL/dy is known exactly and gradients can be finite-differenced.
struct LossProbe {
  std::vector<float> w;

  explicit LossProbe(std::size_t n, util::Rng& rng) {
    for (std::size_t i = 0; i < n; ++i) {
      w.push_back(static_cast<float>(rng.next_gaussian()));
    }
  }
  double value(const Tensor& y) const {
    double acc = 0.0;
    for (std::size_t i = 0; i < y.numel(); ++i) acc += w[i] * y[i];
    return acc;
  }
  Tensor grad(const Tensor& y) const {
    Tensor g(y.shape());
    for (std::size_t i = 0; i < y.numel(); ++i) g[i] = w[i];
    return g;
  }
};

/// Checks dL/dx and dL/dparams of a module by central differences.
void check_gradients(Module& m, const Tensor& x, double tol = 2e-2) {
  util::Rng rng(1234);
  Tensor input = x;
  Tensor y = m.forward(input);
  const LossProbe probe(y.numel(), rng);
  m.zero_grad();
  const Tensor grad_in = m.backward(probe.grad(y));

  const float h = 1e-2f;
  // Input gradient.
  for (std::size_t i = 0; i < input.numel();
       i += std::max<std::size_t>(1, input.numel() / 17)) {
    Tensor xp = input;
    Tensor xm = input;
    xp[i] += h;
    xm[i] -= h;
    const double fp = probe.value(m.forward(xp));
    const double fm = probe.value(m.forward(xm));
    const double fd = (fp - fm) / (2.0 * h);
    EXPECT_NEAR(grad_in[i], fd, tol * std::max<double>(1.0, std::fabs(fd)))
        << "input grad index " << i;
  }
  // Parameter gradients. Restore the exact cached state first.
  (void)m.forward(input);
  m.zero_grad();
  m.backward(probe.grad(m.forward(input)));
  for (Param* p : m.params()) {
    for (std::size_t i = 0; i < p->value.numel();
         i += std::max<std::size_t>(1, p->value.numel() / 11)) {
      const float saved = p->value[i];
      p->value[i] = saved + h;
      const double fp = probe.value(m.forward(input));
      p->value[i] = saved - h;
      const double fm = probe.value(m.forward(input));
      p->value[i] = saved;
      const double fd = (fp - fm) / (2.0 * h);
      EXPECT_NEAR(p->grad[i], fd, tol * std::max<double>(1.0, std::fabs(fd)))
          << "param grad index " << i;
    }
  }
}

TEST(Tensor, ShapeAndAccessors) {
  Tensor t({2, 3, 4, 5});
  EXPECT_EQ(t.numel(), 120u);
  t.at(1, 2, 3, 4) = 7.0f;
  EXPECT_EQ(t[119], 7.0f);
  Tensor r = t.reshaped({6, 20});
  EXPECT_EQ(r.at(5, 19), 7.0f);
  EXPECT_THROW(t.reshaped({7}), std::invalid_argument);
}

TEST(Tensor, AddScaledAndSum) {
  Tensor a = Tensor::full({4}, 2.0f);
  Tensor b = Tensor::full({4}, 3.0f);
  a.add_scaled(b, 0.5f);
  EXPECT_DOUBLE_EQ(a.sum(), 4 * 3.5);
  a.scale(2.0f);
  EXPECT_DOUBLE_EQ(a.abs_max(), 7.0);
}

TEST(Gradients, Linear) {
  util::Rng rng(1);
  Linear lin(6, 4, rng);
  const Tensor x = Tensor::randn({3, 6}, rng, 1.0f);
  check_gradients(lin, x);
}

TEST(Gradients, Conv2dStride1) {
  util::Rng rng(2);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  const Tensor x = Tensor::randn({2, 2, 5, 5}, rng, 1.0f);
  check_gradients(conv, x);
}

TEST(Gradients, Conv2dStride2NoBias) {
  util::Rng rng(3);
  Conv2d conv(3, 2, 3, 2, 1, rng, /*bias=*/false);
  const Tensor x = Tensor::randn({1, 3, 6, 6}, rng, 1.0f);
  check_gradients(conv, x);
}

TEST(Gradients, LinearNaiveKernels) {
  const GemmModeGuard guard(nt::GemmMode::kNaive);
  util::Rng rng(1);
  Linear lin(6, 4, rng);
  const Tensor x = Tensor::randn({3, 6}, rng, 1.0f);
  check_gradients(lin, x);
}

TEST(Gradients, Conv2dNaiveKernels) {
  const GemmModeGuard guard(nt::GemmMode::kNaive);
  util::Rng rng(2);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  const Tensor x = Tensor::randn({2, 2, 5, 5}, rng, 1.0f);
  check_gradients(conv, x);
}

TEST(Gradients, Conv2dShortcut1x1Stride2) {
  // The residual-projection shape: kernel 1, stride 2, no padding.
  util::Rng rng(31);
  Conv2d conv(3, 5, 1, 2, 0, rng, /*bias=*/false);
  const Tensor x = Tensor::randn({2, 3, 6, 6}, rng, 1.0f);
  check_gradients(conv, x);
}

/// Runs `layer` forward+backward from identical state in both GEMM
/// modes and requires outputs, input grads and param grads to agree to
/// float tolerance.
void expect_layer_modes_agree(Module& layer, const Tensor& x,
                              double tol = 2e-4) {
  util::Rng rng(99);
  std::vector<Tensor> outs, gins;
  std::vector<std::vector<float>> pgrads;
  for (nt::GemmMode mode : {nt::GemmMode::kBlocked, nt::GemmMode::kNaive}) {
    const GemmModeGuard guard(mode);
    layer.zero_grad();
    const Tensor y = layer.forward(x);
    util::Rng grng(7);
    Tensor g(y.shape());
    for (std::size_t i = 0; i < g.numel(); ++i) {
      g[i] = static_cast<float>(grng.next_gaussian());
    }
    gins.push_back(layer.backward(g));
    outs.push_back(y);
    std::vector<float> pg;
    for (Param* p : layer.params()) {
      for (std::size_t i = 0; i < p->grad.numel(); ++i) {
        pg.push_back(p->grad[i]);
      }
    }
    pgrads.push_back(std::move(pg));
  }
  ASSERT_TRUE(nt::same_shape(outs[0], outs[1]));
  for (std::size_t i = 0; i < outs[0].numel(); ++i) {
    ASSERT_NEAR(outs[0][i], outs[1][i],
                tol * std::max<double>(1.0, std::fabs(outs[1][i])))
        << "output " << i;
  }
  ASSERT_TRUE(nt::same_shape(gins[0], gins[1]));
  for (std::size_t i = 0; i < gins[0].numel(); ++i) {
    ASSERT_NEAR(gins[0][i], gins[1][i],
                tol * std::max<double>(1.0, std::fabs(gins[1][i])))
        << "input grad " << i;
  }
  ASSERT_EQ(pgrads[0].size(), pgrads[1].size());
  for (std::size_t i = 0; i < pgrads[0].size(); ++i) {
    ASSERT_NEAR(pgrads[0][i], pgrads[1][i],
                tol * std::max<double>(1.0, std::fabs(pgrads[1][i])))
        << "param grad " << i;
  }
}

TEST(GemmModes, Conv2dAgreesAcrossRandomShapes) {
  util::Rng rng(41);
  for (int trial = 0; trial < 6; ++trial) {
    const int in_ch = 1 + static_cast<int>(rng.next_below(4));
    const int out_ch = 1 + static_cast<int>(rng.next_below(6));
    const int kernel = 1 + 2 * static_cast<int>(rng.next_below(2));  // 1 or 3
    const int stride = 1 + static_cast<int>(rng.next_below(2));
    const int pad = kernel / 2;
    const int n = 1 + static_cast<int>(rng.next_below(3));
    const int h = kernel + static_cast<int>(rng.next_below(8));
    const int w = kernel + static_cast<int>(rng.next_below(8));
    Conv2d conv(in_ch, out_ch, kernel, stride, pad, rng,
                /*bias=*/trial % 2 == 0);
    const Tensor x = Tensor::randn({n, in_ch, h, w}, rng, 1.0f);
    expect_layer_modes_agree(conv, x);
  }
}

TEST(GemmModes, Conv2dAgreesOnResnetStemAndShortcut) {
  util::Rng rng(42);
  {
    // 7x7 stride-2 stem.
    Conv2d stem(3, 16, 7, 2, 3, rng, /*bias=*/false);
    const Tensor x = Tensor::randn({2, 3, 16, 8}, rng, 1.0f);
    expect_layer_modes_agree(stem, x);
  }
  {
    // 1x1 stride-2 projection shortcut.
    Conv2d proj(8, 16, 1, 2, 0, rng, /*bias=*/false);
    const Tensor x = Tensor::randn({2, 8, 8, 4}, rng, 1.0f);
    expect_layer_modes_agree(proj, x);
  }
}

TEST(GemmModes, LinearAgrees) {
  util::Rng rng(43);
  Linear lin(37, 19, rng);
  const Tensor x = Tensor::randn({5, 37}, rng, 1.0f);
  expect_layer_modes_agree(lin, x);
}

TEST(Conv2d, BackwardBeforeForwardThrows) {
  util::Rng rng(44);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  Tensor g({1, 3, 4, 4});
  EXPECT_THROW(conv.backward(g), std::logic_error);
}

TEST(Conv2d, BackwardShapeMismatchThrows) {
  util::Rng rng(45);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  const Tensor x = Tensor::randn({2, 2, 5, 5}, rng, 1.0f);
  (void)conv.forward(x);
  Tensor bad({2, 3, 4, 5});  // wrong spatial dims
  EXPECT_THROW(conv.backward(bad), std::invalid_argument);
}

TEST(Conv2d, RepeatedBackwardReusesForwardColumns) {
  // Two backward calls after one forward must agree (the second reuses
  // the cached im2col and gcols buffers).
  util::Rng rng(46);
  Conv2d conv(2, 4, 3, 1, 1, rng);
  const Tensor x = Tensor::randn({2, 2, 6, 6}, rng, 1.0f);
  const Tensor y = conv.forward(x);
  Tensor g(y.shape());
  util::Rng grng(5);
  for (std::size_t i = 0; i < g.numel(); ++i) {
    g[i] = static_cast<float>(grng.next_gaussian());
  }
  conv.zero_grad();
  const Tensor g1 = conv.backward(g);
  conv.zero_grad();
  const Tensor g2 = conv.backward(g);
  ASSERT_TRUE(nt::same_shape(g1, g2));
  for (std::size_t i = 0; i < g1.numel(); ++i) {
    ASSERT_EQ(g1[i], g2[i]) << "index " << i;
  }
}

TEST(ReLU, BackwardInplaceMatchesBackward) {
  util::Rng rng(47);
  ReLU relu;
  const Tensor x = Tensor::randn({3, 2, 4, 4}, rng, 1.0f);
  (void)relu.forward(x);
  const Tensor g = Tensor::randn({3, 2, 4, 4}, rng, 1.0f);
  const Tensor out = relu.backward(g);
  Tensor inplace = g;
  relu.backward_inplace(inplace);
  for (std::size_t i = 0; i < g.numel(); ++i) {
    ASSERT_EQ(out[i], inplace[i]) << "index " << i;
  }
}

TEST(ReLU, BackwardShapeMismatchThrows) {
  util::Rng rng(48);
  ReLU relu;
  (void)relu.forward(Tensor::randn({2, 3}, rng, 1.0f));
  Tensor bad({2, 4});
  EXPECT_THROW(relu.backward_inplace(bad), std::logic_error);
}

TEST(Gradients, BatchNormTraining) {
  util::Rng rng(4);
  BatchNorm2d bn(3);
  bn.set_training(true);
  const Tensor x = Tensor::randn({4, 3, 3, 3}, rng, 1.0f);
  check_gradients(bn, x, 5e-2);
}

TEST(Gradients, ReLU) {
  util::Rng rng(5);
  ReLU relu;
  // Keep samples away from the kink at 0 so the central difference is
  // well-defined.
  Tensor x = Tensor::randn({2, 3, 4, 4}, rng, 1.0f);
  for (std::size_t i = 0; i < x.numel(); ++i) {
    if (std::fabs(x[i]) < 0.05f) x[i] = x[i] < 0.0f ? -0.1f : 0.1f;
  }
  check_gradients(relu, x);
}

TEST(Gradients, GlobalAvgPool) {
  util::Rng rng(6);
  GlobalAvgPool pool;
  const Tensor x = Tensor::randn({2, 3, 4, 4}, rng, 1.0f);
  check_gradients(pool, x);
}

TEST(Gradients, MaxPool) {
  util::Rng rng(7);
  MaxPool2d pool(2, 2);
  // Well-separated values so the argmax is stable under +-h.
  Tensor x({1, 1, 4, 4});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(i % 7) * 3.0f;
  }
  check_gradients(pool, x);
}

TEST(Gradients, BasicBlockWithProjection) {
  util::Rng rng(8);
  BasicBlock block(2, 4, 2, rng);
  block.set_training(true);
  const Tensor x = Tensor::randn({2, 2, 6, 6}, rng, 1.0f);
  check_gradients(block, x, 5e-2);
}

TEST(ResNet, TinyForwardShape) {
  util::Rng rng(9);
  ResNet net(resnet_tiny_config(2, 32), rng);
  const Tensor x = Tensor::randn({3, 2, 16, 8}, rng, 1.0f);
  const Tensor y = net.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int>{3, 32}));
}

TEST(ResNet, Resnet18ForwardShape) {
  util::Rng rng(10);
  ResNet net(resnet18_config(2, 64), rng);
  const Tensor x = Tensor::randn({1, 2, 16, 16}, rng, 1.0f);
  const Tensor y = net.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 64}));
  // 18 layers worth of parameters: conv stem + 8 blocks + fc.
  std::size_t count = 0;
  ResNet net2(resnet18_config(2, 64), rng);
  for (Param* p : net2.params()) count += p->value.numel();
  EXPECT_GT(count, 10'000'000u);  // ~11M, like torchvision resnet18
}

TEST(ResNet, FeatureInterfaceMatchesHead) {
  util::Rng rng(11);
  ResNet net(resnet_tiny_config(2, 8), rng);
  net.set_training(false);
  const Tensor x = Tensor::randn({2, 2, 8, 8}, rng, 1.0f);
  const Tensor feats = net.forward_features(x);
  EXPECT_EQ(feats.dim(1), net.feature_dim());
  const Tensor y = net.head().forward(feats);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 8}));
}

TEST(Optim, SgdConvergesOnQuadratic) {
  // min (w - 3)^2 via explicit gradient.
  Param w(Tensor::full({1}, 0.0f));
  Sgd sgd({&w}, 0.1);
  for (int i = 0; i < 100; ++i) {
    w.grad[0] = 2.0f * (w.value[0] - 3.0f);
    sgd.step();
  }
  EXPECT_NEAR(w.value[0], 3.0f, 1e-3);
}

TEST(Optim, RmsPropAndAdamConverge) {
  for (int which = 0; which < 2; ++which) {
    Param w(Tensor::full({1}, 10.0f));
    std::unique_ptr<Optimizer> opt;
    if (which == 0) {
      opt = std::make_unique<RmsProp>(std::vector<Param*>{&w}, 0.05);
    } else {
      opt = std::make_unique<Adam>(std::vector<Param*>{&w}, 0.1);
    }
    for (int i = 0; i < 500; ++i) {
      w.grad[0] = 2.0f * (w.value[0] + 2.0f);
      opt->step();
    }
    EXPECT_NEAR(w.value[0], -2.0f, 0.05) << "optimizer " << which;
  }
}

TEST(Optim, ClipGradNorm) {
  Param w(Tensor::full({4}, 0.0f));
  w.grad.fill(3.0f);  // norm 6
  Sgd sgd({&w}, 0.1);
  const double norm = sgd.clip_grad_norm(3.0);
  EXPECT_NEAR(norm, 6.0, 1e-6);
  double clipped_sq = 0.0;
  for (std::size_t i = 0; i < 4; ++i) clipped_sq += w.grad[i] * w.grad[i];
  EXPECT_NEAR(std::sqrt(clipped_sq), 3.0, 1e-5);
}

TEST(EndToEnd, TinyNetFitsLinearMap) {
  // A tiny conv net should be able to regress the total count of ones
  // in a 2-channel binary image.
  util::Rng rng(21);
  ResNet net(resnet_tiny_config(2, 1), rng);
  net.set_training(true);
  Adam opt(net.params(), 3e-3);

  double final_loss = 1e9;
  for (int iter = 0; iter < 150; ++iter) {
    Tensor x({8, 2, 6, 6});
    Tensor target({8, 1});
    for (int b = 0; b < 8; ++b) {
      float total = 0.0f;
      for (int c = 0; c < 2; ++c) {
        for (int i = 0; i < 6; ++i) {
          for (int j = 0; j < 6; ++j) {
            const float v = rng.next_bool() ? 1.0f : 0.0f;
            x.at(b, c, i, j) = v;
            total += v;
          }
        }
      }
      target.at(b, 0) = total / 36.0f;  // keep the scale tame
    }
    net.zero_grad();
    const Tensor y = net.forward(x);
    Tensor grad(y.shape());
    double loss = 0.0;
    for (int b = 0; b < 8; ++b) {
      const float d = y.at(b, 0) - target.at(b, 0);
      loss += 0.5 * d * d / 8.0;
      grad.at(b, 0) = d / 8.0f;
    }
    net.backward(grad);
    opt.step();
    final_loss = loss;
  }
  EXPECT_LT(final_loss, 0.05);
}

}  // namespace
}  // namespace rlmul::nn
