// Input-hardening tests pinning the exact behaviors the fuzz harnesses
// (fuzz/) assert, so fuzz verdicts are crisp: serve::json numeric edge
// cases, the shared request dispatcher's never-throw contract, the
// configurable FrameParser limit end to end through ServerOptions, the
// per-connection buffered-memory cap, and clean rejection of corrupt
// checkpoint/journal/record bytes (allocation bombs included).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "dsdb/journal.hpp"
#include "dsdb/store.hpp"
#include "search/blob.hpp"
#include "search/checkpoint.hpp"
#include "serve/json.hpp"
#include "serve/request_handler.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "serve/socket.hpp"
#include "util/framing.hpp"

namespace {

using namespace rlmul;
using serve::json::Value;

// ---------------------------------------------------------------------
// serve::json numeric edges
// ---------------------------------------------------------------------

TEST(JsonHardening, RejectsNanAndInfLiterals) {
  // JSON has no non-finite numbers; the extensions must not parse.
  for (const char* text : {"NaN", "nan", "Infinity", "-Infinity", "inf",
                           "[NaN]", "{\"x\":Infinity}"}) {
    EXPECT_THROW(Value::parse(text), std::runtime_error) << text;
  }
}

TEST(JsonHardening, RejectsExponentOverflow) {
  // strtod overflows "1e999" to inf; dump() would re-emit that as
  // null, breaking the parse→dump fixpoint — so parse rejects it.
  for (const char* text : {"1e999", "-1e999", "1e99999999", "[1e400]"}) {
    EXPECT_THROW(Value::parse(text), std::runtime_error) << text;
  }
}

TEST(JsonHardening, HugeFiniteMagnitudesRoundTrip) {
  // Regression: append_number used to cast to long long BEFORE the
  // magnitude check — float-cast-overflow UB on anything >= 2^63
  // (found by fuzz_json under UBSan; seed corpus carries 1e308).
  const Value v = Value::parse("[1e300,-1e308,9.2233720368547758e18]");
  const std::string s1 = v.dump();
  EXPECT_EQ(Value::parse(s1).dump(), s1);
}

TEST(JsonHardening, DenormalsRoundTrip) {
  // %.17g must carry enough digits for subnormals.
  const Value v = Value::parse("[5e-324,2.2250738585072014e-308]");
  EXPECT_EQ(v.items()[0].as_double(), 5e-324);
  const std::string s1 = v.dump();
  EXPECT_EQ(Value::parse(s1).dump(), s1);
}

TEST(JsonHardening, NonFiniteValuesDumpAsNull) {
  // The protocol never sends non-finite numbers, but dump() must not
  // emit invalid JSON if one leaks in.
  Value v = Value::object();
  v["x"] = std::nan("");
  EXPECT_EQ(v.dump(), "{\"x\":null}");
}

TEST(JsonHardening, DepthLimitIsEnforced) {
  std::string deep63, deep65;
  for (int i = 0; i < 63; ++i) deep63 += '[';
  deep63 += '0';
  for (int i = 0; i < 63; ++i) deep63 += ']';
  for (int i = 0; i < 65; ++i) deep65 += '[';
  deep65 += '0';
  for (int i = 0; i < 65; ++i) deep65 += ']';
  EXPECT_NO_THROW(Value::parse(deep63));
  EXPECT_THROW(Value::parse(deep65), std::runtime_error);
}

// ---------------------------------------------------------------------
// Shared request dispatcher (the code path fuzz_protocol drives)
// ---------------------------------------------------------------------

serve::Scheduler& test_scheduler() {
  static serve::Scheduler* sched = [] {
    serve::SchedulerOptions opts;
    opts.max_active = 1;
    opts.max_queue = 2;
    opts.step_threads = 1;
    return new serve::Scheduler(opts, [](std::uint64_t, const Value&) {});
  }();
  return *sched;
}

TEST(RequestHandler, MalformedPayloadNeverThrows) {
  serve::RequestHooks hooks;  // all null: every hook is optional
  for (const char* payload :
       {"", "not json", "{\"op\":42}", "{\"op\":\"bogus\"}", "{}",
        "{\"op\":\"status\",\"job\":\"not-a-number\"}"}) {
    const Value resp = serve::handle_frame_payload(test_scheduler(), 1,
                                                   payload, hooks);
    ASSERT_TRUE(resp.is_object()) << payload;
    const Value* ok = resp.find("ok");
    ASSERT_NE(ok, nullptr) << payload;
    EXPECT_FALSE(ok->as_bool()) << payload;
    EXPECT_NE(resp.find("error"), nullptr) << payload;
  }
}

TEST(RequestHandler, EchoesRequestIdAndAnswersPing) {
  serve::RequestHooks hooks;
  const Value resp = serve::handle_frame_payload(
      test_scheduler(), 1, "{\"id\":7,\"op\":\"ping\"}", hooks);
  EXPECT_TRUE(resp.find("ok")->as_bool());
  EXPECT_TRUE(resp.find("pong")->as_bool());
  ASSERT_NE(resp.find("id"), nullptr);
  EXPECT_EQ(resp.find("id")->as_u64(), 7u);
}

TEST(RequestHandler, StatsUsesConnectionCountHook) {
  serve::RequestHooks hooks;
  Value resp = serve::handle_frame_payload(test_scheduler(), 1,
                                           "{\"op\":\"stats\"}", hooks);
  EXPECT_EQ(resp.find("conns"), nullptr);  // null hook omits the field
  hooks.connection_count = []() -> std::uint64_t { return 3; };
  resp = serve::handle_frame_payload(test_scheduler(), 1,
                                     "{\"op\":\"stats\"}", hooks);
  ASSERT_NE(resp.find("conns"), nullptr);
  EXPECT_EQ(resp.find("conns")->as_u64(), 3u);
}

// ---------------------------------------------------------------------
// Server limits end to end
// ---------------------------------------------------------------------

std::string scratch_socket(const std::string& tag) {
  const std::string path =
      (std::filesystem::temp_directory_path() / ("rlhd_" + tag + ".sock"))
          .string();
  std::filesystem::remove(path);
  return path;
}

struct ServerRunner {
  explicit ServerRunner(serve::Server& s)
      : server(s), thread([&s]() { s.run(); }) {}
  ~ServerRunner() { join(); }
  void join() {
    server.request_shutdown();
    if (thread.joinable()) thread.join();
  }
  serve::Server& server;
  std::thread thread;
};

serve::Fd connect_retry(const std::string& sock) {
  for (int i = 0;; ++i) {
    try {
      return serve::connect_unix(sock);
    } catch (const std::exception&) {
      if (i >= 200) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

void write_all(int fd, const std::vector<std::uint8_t>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const std::ptrdiff_t n =
        serve::write_some(fd, bytes.data() + off, bytes.size() - off);
    if (n > 0) off += static_cast<std::size_t>(n);
  }
}

/// Blocks until the peer closes (true) or any payload arrives (false).
bool peer_closed_without_data(int fd) {
  char buf[256];
  const std::ptrdiff_t n = serve::read_some(fd, buf, sizeof(buf));
  return n == 0;
}

TEST(ServerLimits, OversizedFrameDropsOnlyThatConnection) {
  serve::ServerOptions opts;
  opts.socket_path = scratch_socket("frame");
  opts.max_frame_bytes = 64;  // the --max-frame-bytes knob
  opts.scheduler.step_threads = 1;
  serve::Server server(opts);
  ServerRunner runner(server);

  {
    serve::Fd conn = connect_retry(opts.socket_path);
    std::vector<std::uint8_t> wire;
    util::append_frame(wire, std::string(100, 'x'));  // declares 100 > 64
    write_all(conn.get(), wire);
    EXPECT_TRUE(peer_closed_without_data(conn.get()));
  }
  {
    // The daemon survived and still answers within the limit.
    serve::Fd conn = connect_retry(opts.socket_path);
    std::vector<std::uint8_t> wire;
    util::append_frame(wire, "{\"op\":\"ping\"}");
    write_all(conn.get(), wire);
    char buf[256];
    const std::ptrdiff_t n = serve::read_some(conn.get(), buf, sizeof(buf));
    ASSERT_GT(n, 0);
    util::FrameParser parser;
    parser.feed(buf, static_cast<std::size_t>(n));
    std::string payload;
    ASSERT_TRUE(parser.next(&payload));
    EXPECT_TRUE(Value::parse(payload).find("ok")->as_bool());
  }
}

TEST(ServerLimits, OutbufCapDropsUnservableConnection) {
  serve::ServerOptions opts;
  opts.socket_path = scratch_socket("outbuf");
  // Smaller than any response frame: buffering the ping reply already
  // exceeds the budget, so the server must drop rather than queue.
  opts.max_outbuf_bytes = 8;
  opts.scheduler.step_threads = 1;
  serve::Server server(opts);
  ServerRunner runner(server);

  serve::Fd conn = connect_retry(opts.socket_path);
  std::vector<std::uint8_t> wire;
  util::append_frame(wire, "{\"op\":\"ping\"}");
  write_all(conn.get(), wire);
  EXPECT_TRUE(peer_closed_without_data(conn.get()));
}

// ---------------------------------------------------------------------
// Corrupt-bytes loaders (the fuzz_checkpoint / fuzz_dsdb_journal paths)
// ---------------------------------------------------------------------

TEST(LoaderHardening, BlobCountBombsAreRejectedNotAllocated) {
  // Regression: a corrupt element count used to hit vector::reserve
  // before any bounds check — a multi-GB allocation from a 16-byte
  // blob. The clamp must reject counts the blob cannot back.
  search::BlobWriter w;
  w.u64(std::uint64_t{1} << 60);  // claims 2^60 doubles
  search::BlobReader r(w.take());
  EXPECT_THROW(r.f64_vec(), std::runtime_error);
}

TEST(LoaderHardening, CheckpointGarbageAndTruncationsThrowRuntimeError) {
  search::Checkpoint c;
  c.method = "sa";
  c.best_tree.pp = {1, 2, 1};
  c.trajectory = {1.0, 0.5};
  const std::vector<std::uint8_t> full = c.encode();
  // Every truncation point must fail cleanly — never UB, never a
  // foreign exception type (fuzz_checkpoint's contract).
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::vector<std::uint8_t> torn(full.begin(),
                                         full.begin() + cut);
    EXPECT_THROW(search::Checkpoint::decode(torn), std::runtime_error)
        << "cut=" << cut;
  }
  EXPECT_NO_THROW(search::Checkpoint::decode(full));
}

TEST(LoaderHardening, RecordRejectsOutOfRangePpgByte) {
  dsdb::Record rec;
  rec.spec.bits = 4;
  rec.tree.pp = {1, 2, 1};
  std::vector<std::uint8_t> payload = dsdb::encode_record(rec);
  // Layout: u32 version, i32 bits, then the ppg byte.
  payload[8] = 0x07;  // no such PpgKind
  dsdb::Record out;
  EXPECT_FALSE(dsdb::decode_record(payload, &out));
}

TEST(LoaderHardening, JournalBytesReplayKeepsCommittedPrefix) {
  std::vector<std::uint8_t> wire = dsdb::journal_header();
  const std::vector<std::uint8_t> p1 = {'a', 'b', 'c'};
  const std::vector<std::uint8_t> p2 = {'d'};
  dsdb::append_frame(wire, p1);
  dsdb::append_frame(wire, p2);
  const std::size_t committed = wire.size();
  // Torn tail: a frame header promising more than exists.
  wire.insert(wire.end(), {0xFF, 0x00, 0x00, 0x00, 0x01, 0x02});

  std::vector<std::vector<std::uint8_t>> seen;
  const dsdb::ReplayResult res = dsdb::replay_journal_bytes(
      wire.data(), wire.size(),
      [&seen](const std::vector<std::uint8_t>& p) { seen.push_back(p); });
  EXPECT_FALSE(res.bad_header);
  EXPECT_TRUE(res.truncated_tail);
  EXPECT_EQ(res.valid_bytes, committed);
  ASSERT_EQ(res.records, 2u);
  EXPECT_EQ(seen[0], p1);
  EXPECT_EQ(seen[1], p2);
}

}  // namespace
