// Action-space and legalization tests (Sections III-D of the paper,
// Algorithm 2), including randomized property sweeps: any sequence of
// masked actions must keep the tree legal.

#include <gtest/gtest.h>

#include "ct/compressor_tree.hpp"
#include "ppg/ppg.hpp"
#include "util/rng.hpp"

namespace rlmul::ct {
namespace {

CompressorTree wallace_for(int bits) {
  return ppg::initial_tree({bits, ppg::PpgKind::kAnd, false});
}

TEST(ActionIndex, RoundTrips) {
  for (int idx = 0; idx < 8 * 8; ++idx) {
    EXPECT_EQ(action_index(action_from_index(idx)), idx);
  }
}

TEST(ActionSpace, SizeIsColumnsTimesKinds) {
  // The paper's space is 2N x 4 = 8N; with the 4:2 extension compiled
  // in, two more action kinds exist per column (masked off by default).
  const CompressorTree t = wallace_for(8);
  const auto mask = legal_action_mask(t);
  EXPECT_EQ(mask.size(),
            static_cast<std::size_t>(2 * 8 * kActionsPerColumn));
  // With the extension disabled, the 4:2 entries are never selectable,
  // so the *effective* space is the paper's 8N.
  for (int j = 0; j < t.columns(); ++j) {
    EXPECT_EQ(mask[static_cast<std::size_t>(action_index(
                  {j, ActionKind::kFuse32And22To42}))],
              0);
    EXPECT_EQ(mask[static_cast<std::size_t>(action_index(
                  {j, ActionKind::kSplit42To32And22}))],
              0);
  }
}

TEST(Actions, RemoveMissing22IsInvalid) {
  // Column 0 of an AND-based tree has height 1: no compressors at all.
  const CompressorTree t = wallace_for(4);
  ASSERT_EQ(t.c22[0], 0);
  EXPECT_FALSE(action_applicable(t, {0, ActionKind::kRemove22}));
  EXPECT_FALSE(action_applicable(t, {0, ActionKind::kReplace22With32}));
}

TEST(Actions, ResidualMustStayOneOrTwo) {
  // Column with f == 1 cannot have another 2:2 added (f would be 0);
  // column with f == 2 cannot have a 2:2 removed when it would reach 3.
  CompressorTree t{ColumnHeights{2, 2, 1}};
  t.c22 = {1, 0, 0};  // f = {1, 3->...}; fix column 1 first
  t.c22[1] = 1;       // f(1) = 2 + 1 - 1 = 2
  ASSERT_TRUE(t.legal());
  EXPECT_FALSE(action_applicable(t, {0, ActionKind::kAdd22}));   // f -> 0
  EXPECT_FALSE(action_applicable(t, {1, ActionKind::kRemove22}));  // f -> 3
  EXPECT_TRUE(action_applicable(t, {0, ActionKind::kRemove22}));  // f -> 2
}

TEST(Actions, ApplyAddKeepsLegal) {
  CompressorTree t = wallace_for(4);
  const auto mask = legal_action_mask(t);
  bool applied = false;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i] != 0) {
      const CompressorTree next =
          apply_action(t, action_from_index(static_cast<int>(i)));
      EXPECT_TRUE(next.legal())
          << "action " << i << "\n" << to_string(next);
      applied = true;
    }
  }
  EXPECT_TRUE(applied);
}

TEST(Legalize, EarlyExitLeavesDownstreamUntouched) {
  // Replacements don't change carry-out, so downstream columns must be
  // exactly preserved.
  CompressorTree t = wallace_for(8);
  int col = -1;
  for (int j = 0; j < t.columns(); ++j) {
    if (t.c32[j] > 0 &&
        action_applicable(t, {j, ActionKind::kReplace32With22})) {
      col = j;
      break;
    }
  }
  ASSERT_GE(col, 0);
  const CompressorTree next =
      apply_action(t, {col, ActionKind::kReplace32With22});
  for (int j = col + 1; j < t.columns(); ++j) {
    EXPECT_EQ(next.c32[j], t.c32[j]);
    EXPECT_EQ(next.c22[j], t.c22[j]);
  }
}

TEST(Legalize, FixesOverCompression) {
  // Removing a 2:2 in column j reduces carries into j+1; legalization
  // must restore f(j+1) in {1,2}.
  CompressorTree t{ColumnHeights{2, 3, 1}};
  t.c22 = {1, 1, 0};
  t.c32 = {0, 1, 0};
  // f = {1, 3+1-2-1=1, 1+2-0=3}? Construct carefully instead:
  t = CompressorTree{ColumnHeights{2, 2, 2}};
  t.c22 = {1, 1, 1};
  ASSERT_TRUE(t.legal());  // f = {1, 2, 2}
  // Remove the 2:2 in column 0: f(0)=2, carry into 1 drops to 0: f(1)=1.
  const CompressorTree next = apply_action(t, {0, ActionKind::kRemove22});
  EXPECT_TRUE(next.legal()) << to_string(next);
}

struct SweepParam {
  int bits;
  ppg::PpgKind ppg;
  bool mac;
};

class RandomWalkTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RandomWalkTest, MaskedActionsPreserveLegality) {
  const auto param = GetParam();
  util::Rng rng(0xABCDEF12 + param.bits);
  CompressorTree t =
      ppg::initial_tree({param.bits, param.ppg, param.mac});
  ASSERT_TRUE(t.legal());
  for (int step = 0; step < 60; ++step) {
    const auto mask = legal_action_mask(t);
    std::vector<double> w(mask.size());
    for (std::size_t i = 0; i < mask.size(); ++i) w[i] = mask[i];
    const std::size_t pick = rng.sample_discrete(w);
    ASSERT_LT(pick, mask.size()) << "no legal actions at step " << step;
    t = apply_action(t, action_from_index(static_cast<int>(pick)));
    ASSERT_TRUE(t.legal()) << "step " << step << "\n" << to_string(t);
    // The stage assignment must remain schedulable as well.
    ASSERT_NO_THROW(assign_stages(t));
  }
}

TEST_P(RandomWalkTest, StagePruningMaskIsSubset) {
  const auto param = GetParam();
  CompressorTree t =
      ppg::initial_tree({param.bits, param.ppg, param.mac});
  const int bound = stage_count(t) + 1;
  const auto full = legal_action_mask(t);
  const auto pruned = legal_action_mask(t, bound);
  ASSERT_EQ(full.size(), pruned.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_LE(pruned[i], full[i]) << "action " << i;
    if (pruned[i] != 0) {
      const CompressorTree next =
          apply_action(t, action_from_index(static_cast<int>(i)));
      EXPECT_LE(stage_count(next), bound);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Specs, RandomWalkTest,
    ::testing::Values(SweepParam{4, ppg::PpgKind::kAnd, false},
                      SweepParam{8, ppg::PpgKind::kAnd, false},
                      SweepParam{8, ppg::PpgKind::kBooth, false},
                      SweepParam{8, ppg::PpgKind::kAnd, true},
                      SweepParam{8, ppg::PpgKind::kBooth, true},
                      SweepParam{16, ppg::PpgKind::kAnd, false},
                      SweepParam{16, ppg::PpgKind::kBooth, false}));

TEST(Legalize, RobustToArbitraryPerturbation) {
  // Even directly poking counts (beyond what single actions do) must be
  // recoverable by the generalized Algorithm 2.
  util::Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    CompressorTree t = wallace_for(8);
    const int j = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(t.columns())));
    if (rng.next_bool() && t.c32[j] > 0) {
      --t.c32[j];
    } else {
      ++t.c22[j];
    }
    // The perturbed column itself may be illegal AND its carry-out
    // changed, so both sweeps are needed: one to restore column j, one
    // to propagate the carry change (Algorithm 2 starts at C+1 for the
    // same reason — the action column is pre-validated, only its
    // carry-out moved).
    legalize(t, j);
    legalize(t, j + 1);
    for (int col = j + 1; col < t.columns(); ++col) {
      const int f = t.final_height(col);
      const int incoming = t.pp[col] + t.carries_into(col);
      if (incoming > 0) {
        EXPECT_GE(f, 1) << "trial " << trial << " col " << col;
        EXPECT_LE(f, 2) << "trial " << trial << " col " << col;
      }
    }
  }
}

}  // namespace
}  // namespace rlmul::ct
