// Tests for the textual timing report and the greedy agent rollout.

#include <gtest/gtest.h>

#include "ppg/ppg.hpp"
#include "rl/dqn.hpp"
#include "sta/sta.hpp"
#include "synth/evaluator.hpp"

namespace rlmul {
namespace {

TEST(ReportTiming, ContainsPathAndTotals) {
  const ppg::MultiplierSpec spec{4, ppg::PpgKind::kAnd, false};
  const auto nl = ppg::build_multiplier(spec, ppg::initial_tree(spec),
                                        netlist::CpaKind::kRippleCarry);
  const auto& lib = netlist::CellLibrary::nangate45();
  const std::string rep = sta::report_timing(nl, lib);
  EXPECT_NE(rep.find("critical"), std::string::npos);
  EXPECT_NE(rep.find("incr(ps)"), std::string::npos);
  // The path must contain at least the PPG AND gate and an adder cell.
  EXPECT_NE(rep.find("AND2"), std::string::npos);
  const bool has_adder = rep.find("FA_") != std::string::npos ||
                         rep.find("HA_") != std::string::npos;
  EXPECT_TRUE(has_adder) << rep;
}

TEST(ReportTiming, SequentialDesignsReportClockPeriod) {
  const ppg::MultiplierSpec spec{4, ppg::PpgKind::kAnd, true};
  netlist::Netlist nl;
  {
    // A single DFF in a loop through an inverter.
    const auto d = nl.add_input("d");
    const auto ff = nl.add_gate(netlist::CellKind::kDff, {d});
    nl.mark_output(nl.gates()[static_cast<std::size_t>(ff)].outputs[0], "q");
  }
  const std::string rep =
      sta::report_timing(nl, netlist::CellLibrary::nangate45());
  EXPECT_NE(rep.find("min clock period"), std::string::npos);
  (void)spec;
}

TEST(GreedyRollout, UsesTrainedNetworkWithoutLearning) {
  const ppg::MultiplierSpec spec{4, ppg::PpgKind::kAnd, false};
  synth::DesignEvaluator ev(spec);

  rl::DqnOptions opts;
  opts.steps = 12;
  opts.warmup = 4;
  opts.batch_size = 4;
  opts.seed = 2;
  rl::train_dqn(ev, opts);

  util::Rng rng(2);
  auto net = rl::make_agent_net(
      rl::AgentNet::kTiny, 2 * spec.bits * ct::kActionsPerColumn, rng);
  // Fresh random net is fine for the API contract test.
  const auto before = ev.num_unique_evaluations();
  const auto res = rl::greedy_rollout(ev, *net, 6);
  EXPECT_TRUE(res.best_tree.legal());
  EXPECT_LE(res.trajectory.size(), 6u);
  EXPECT_GE(ev.num_unique_evaluations(), before);
  // Determinism: same net, same env -> same trajectory.
  const auto res2 = rl::greedy_rollout(ev, *net, 6);
  EXPECT_EQ(res.trajectory, res2.trajectory);
}

}  // namespace
}  // namespace rlmul
