// Metric-regression tests: synthesized area/delay for the canonical
// designs must stay inside generous bands around the values the
// calibrated library produces (and the paper's NanGate numbers echo).
// These bands catch accidental library or flow regressions without
// over-fitting exact constants.

#include <gtest/gtest.h>

#include "ct/compressor_tree.hpp"
#include "ppg/ppg.hpp"
#include "synth/synth.hpp"

namespace rlmul::synth {
namespace {

using ppg::MultiplierSpec;
using ppg::PpgKind;

struct Band {
  MultiplierSpec spec;
  double area_lo, area_hi;   ///< relaxed (min-area) synthesis, um^2
  double delay_lo, delay_hi; ///< relaxed critical delay, ns
};

class GoldenMetricsTest : public ::testing::TestWithParam<Band> {};

TEST_P(GoldenMetricsTest, RelaxedSynthesisWithinBand) {
  const Band& band = GetParam();
  const auto tree = ppg::initial_tree(band.spec);
  const auto res = synthesize_design(band.spec, tree, 1e9);
  EXPECT_GE(res.area_um2, band.area_lo) << "area too small";
  EXPECT_LE(res.area_um2, band.area_hi) << "area too large";
  EXPECT_GE(res.delay_ns, band.delay_lo) << "delay too small";
  EXPECT_LE(res.delay_ns, band.delay_hi) << "delay too large";
}

// Reference (Wallace, min-area): 8b AND ~329 um^2 / 0.79 ns;
// 16b AND ~1410 / 1.53; MBE ~20-25% larger and slower at these widths.
// Paper's Table I (their testbed): 427/0.853 and 1812/1.41 — same
// ballpark, which is all the substitution promises.
INSTANTIATE_TEST_SUITE_P(
    Designs, GoldenMetricsTest,
    ::testing::Values(
        Band{{8, PpgKind::kAnd, false}, 230, 460, 0.55, 1.10},
        Band{{8, PpgKind::kBooth, false}, 280, 570, 0.65, 1.40},
        Band{{16, PpgKind::kAnd, false}, 1000, 2000, 1.05, 2.15},
        Band{{16, PpgKind::kBooth, false}, 1030, 2100, 1.20, 2.55},
        Band{{8, PpgKind::kAnd, true}, 260, 540, 0.60, 1.25},
        Band{{8, PpgKind::kBaughWooley, false}, 230, 480, 0.55, 1.15}));

TEST(GoldenRatios, SixteenBitIsRoughlyFourTimesEightBitArea) {
  const MultiplierSpec s8{8, PpgKind::kAnd, false};
  const MultiplierSpec s16{16, PpgKind::kAnd, false};
  const double a8 =
      synthesize_design(s8, ppg::initial_tree(s8), 1e9).area_um2;
  const double a16 =
      synthesize_design(s16, ppg::initial_tree(s16), 1e9).area_um2;
  EXPECT_GT(a16 / a8, 3.0);
  EXPECT_LT(a16 / a8, 6.0);
}

TEST(GoldenRatios, TightSynthesisSpeedupIsBounded) {
  // The achievable speedup from sizing + prefix CPA is large but not
  // absurd; a broken delay model usually explodes one way or the other.
  const MultiplierSpec spec{16, PpgKind::kAnd, false};
  const auto tree = ppg::initial_tree(spec);
  const auto relaxed = synthesize_design(spec, tree, 1e9);
  const auto tight = synthesize_design(spec, tree, 0.01);
  const double speedup = relaxed.delay_ns / tight.delay_ns;
  EXPECT_GT(speedup, 1.3);
  EXPECT_LT(speedup, 5.0);
  const double area_cost = tight.area_um2 / relaxed.area_um2;
  EXPECT_GT(area_cost, 1.05);
  EXPECT_LT(area_cost, 3.5);
}

TEST(GoldenRatios, PowerTracksAreaAcrossWidths) {
  const MultiplierSpec s8{8, PpgKind::kAnd, false};
  const MultiplierSpec s16{16, PpgKind::kAnd, false};
  const auto r8 = synthesize_design(s8, ppg::initial_tree(s8), 1.0);
  const auto r16 = synthesize_design(s16, ppg::initial_tree(s16), 1.0);
  const double power_ratio = r16.power_mw / r8.power_mw;
  const double area_ratio = r16.area_um2 / r8.area_um2;
  EXPECT_GT(power_ratio, 0.5 * area_ratio);
  EXPECT_LT(power_ratio, 2.0 * area_ratio);
}

}  // namespace
}  // namespace rlmul::synth
