// Unit and property tests for the compressor-tree core: matrix
// representation, legality, Wallace/Dadda constructors and the
// deterministic stage assignment (Algorithm 1).

#include "ct/compressor_tree.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "ppg/ppg.hpp"
#include "util/rng.hpp"

namespace rlmul::ct {
namespace {

ColumnHeights and_heights(int bits) {
  return ppg::pp_heights({bits, ppg::PpgKind::kAnd, false});
}

TEST(Heights, AndPpgShape) {
  const ColumnHeights h = and_heights(4);
  // 4-bit AND multiplier: heights 1,2,3,4,3,2,1,0 over 8 columns.
  const ColumnHeights expect{1, 2, 3, 4, 3, 2, 1, 0};
  EXPECT_EQ(h, expect);
}

TEST(Heights, TotalBitsIsNSquared) {
  for (int bits : {2, 3, 4, 8, 16}) {
    const ColumnHeights h = and_heights(bits);
    EXPECT_EQ(std::accumulate(h.begin(), h.end(), 0), bits * bits);
  }
}

TEST(CompressorTree, EmptyTreeOfHeightsOneIsLegal) {
  CompressorTree t{ColumnHeights{1, 1, 1}};
  EXPECT_TRUE(t.legal());
  EXPECT_EQ(t.final_heights(), (std::vector<int>{1, 1, 1}));
}

TEST(CompressorTree, UncompressedTallColumnIsIllegal) {
  CompressorTree t{ColumnHeights{3, 1}};
  EXPECT_FALSE(t.legal());
  t.c32[0] = 1;  // compress 3 -> 1, carry into column 1 (now 2)
  EXPECT_TRUE(t.legal());
  EXPECT_EQ(t.final_height(0), 1);
  EXPECT_EQ(t.final_height(1), 2);
}

TEST(CompressorTree, NegativeCountsIllegal) {
  CompressorTree t{ColumnHeights{2, 2}};
  t.c22[0] = -1;
  EXPECT_FALSE(t.legal());
}

TEST(CompressorTree, EmptyColumnWithCompressorIllegal) {
  CompressorTree t{ColumnHeights{1, 0}};
  t.c22[1] = 1;
  EXPECT_FALSE(t.legal());
}

TEST(CompressorTree, CarriesIntoEdgeColumns) {
  CompressorTree t{ColumnHeights{3, 3}};
  t.c32 = {1, 1};
  EXPECT_EQ(t.carries_into(0), 0);
  EXPECT_EQ(t.carries_into(1), 1);
  EXPECT_EQ(t.final_height(1), 3 + 1 - 2);
}

TEST(CompressorTree, KeyDistinguishesStructures) {
  CompressorTree a{ColumnHeights{3, 3, 2, 1}};
  a.c32 = {1, 0, 0, 0};
  CompressorTree b = a;
  EXPECT_EQ(a.key(), b.key());
  b.c22[1] = 1;
  EXPECT_NE(a.key(), b.key());
}

// -- Wallace / Dadda -------------------------------------------------------

class LegacyTreeTest : public ::testing::TestWithParam<int> {};

TEST_P(LegacyTreeTest, WallaceIsLegal) {
  const ColumnHeights h = and_heights(GetParam());
  const CompressorTree t = wallace_tree(h);
  EXPECT_TRUE(t.legal()) << to_string(t);
}

TEST_P(LegacyTreeTest, DaddaIsLegal) {
  const ColumnHeights h = and_heights(GetParam());
  const CompressorTree t = dadda_tree(h);
  EXPECT_TRUE(t.legal()) << to_string(t);
}

TEST_P(LegacyTreeTest, DaddaUsesNoMoreCompressorsThanWallace) {
  const ColumnHeights h = and_heights(GetParam());
  const CompressorTree w = wallace_tree(h);
  const CompressorTree d = dadda_tree(h);
  const double wallace_area = 4.256 * w.total_c32() + 2.66 * w.total_c22();
  const double dadda_area = 4.256 * d.total_c32() + 2.66 * d.total_c22();
  EXPECT_LE(dadda_area, wallace_area + 1e-9);
}

TEST_P(LegacyTreeTest, BoothHeightsProduceLegalWallace) {
  const ppg::MultiplierSpec spec{GetParam(), ppg::PpgKind::kBooth, false};
  const CompressorTree t = wallace_tree(ppg::pp_heights(spec));
  EXPECT_TRUE(t.legal()) << to_string(t);
}

TEST_P(LegacyTreeTest, MacHeightsProduceLegalWallace) {
  const ppg::MultiplierSpec spec{GetParam(), ppg::PpgKind::kAnd, true};
  const CompressorTree t = wallace_tree(ppg::pp_heights(spec));
  EXPECT_TRUE(t.legal()) << to_string(t);
}

INSTANTIATE_TEST_SUITE_P(Widths, LegacyTreeTest,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 12, 16, 24,
                                           32));

TEST(Wallace, KnownFullAdderCountFor4Bit) {
  // A 4-bit Wallace tree needs a small, fixed budget; sanity bounds.
  const CompressorTree t = wallace_tree(and_heights(4));
  EXPECT_GE(t.total_c32(), 4);
  EXPECT_LE(t.total_c32() + t.total_c22(), 16);
}

// -- Stage assignment (Algorithm 1) ---------------------------------------

TEST(Assignment, SumsMatchMatrix) {
  for (int bits : {4, 8, 16}) {
    const CompressorTree t = wallace_tree(and_heights(bits));
    const StageAssignment sa = assign_stages(t);
    for (int j = 0; j < t.columns(); ++j) {
      int s32 = 0;
      int s22 = 0;
      for (int s = 0; s < sa.stages; ++s) {
        s32 += sa.t32[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)];
        s22 += sa.t22[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)];
      }
      EXPECT_EQ(s32, t.c32[j]) << "column " << j;
      EXPECT_EQ(s22, t.c22[j]) << "column " << j;
    }
  }
}

TEST(Assignment, Deterministic) {
  const CompressorTree t = wallace_tree(and_heights(8));
  const StageAssignment a = assign_stages(t);
  const StageAssignment b = assign_stages(t);
  EXPECT_EQ(a.stages, b.stages);
  EXPECT_EQ(a.t32, b.t32);
  EXPECT_EQ(a.t22, b.t22);
}

TEST(Assignment, StageBitBalanceInvariant) {
  // Simulate per-stage availability; no stage may consume more bits
  // than it has (the assignment must be schedulable).
  const CompressorTree t = dadda_tree(and_heights(8));
  const StageAssignment sa = assign_stages(t);
  const int cols = t.columns();
  std::vector<int> avail(t.pp.begin(), t.pp.end());
  for (int s = 0; s < sa.stages; ++s) {
    std::vector<int> next(static_cast<std::size_t>(cols), 0);
    for (int j = 0; j < cols; ++j) {
      const int n32 = sa.t32[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)];
      const int n22 = sa.t22[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)];
      const int used = 3 * n32 + 2 * n22;
      ASSERT_LE(used, avail[static_cast<std::size_t>(j)])
          << "stage " << s << " column " << j;
      next[static_cast<std::size_t>(j)] +=
          avail[static_cast<std::size_t>(j)] - used + n32 + n22;
      if (j + 1 < cols) next[static_cast<std::size_t>(j) + 1] += n32 + n22;
    }
    avail = std::move(next);
  }
  for (int j = 0; j < cols; ++j) {
    EXPECT_EQ(avail[static_cast<std::size_t>(j)],
              std::max(t.final_height(j), 0));
  }
}

TEST(Assignment, WallaceStageCountIsLogarithmic) {
  // Wallace depth for height-N reduction is O(log_{1.5} N).
  EXPECT_LE(stage_count(wallace_tree(and_heights(8))), 5);
  EXPECT_LE(stage_count(wallace_tree(and_heights(16))), 7);
}

TEST(Assignment, ThrowsOnIllegalTree) {
  CompressorTree t{ColumnHeights{2, 1}};
  t.c32[0] = 1;  // would need 3 bits forever
  t.c22[0] = 1;  // over-consumes: f < 0
  EXPECT_THROW(assign_stages(t), std::invalid_argument);
}

TEST(Assignment, EmptyTreeHasOnePaddedStage) {
  CompressorTree t{ColumnHeights{1, 1}};
  const StageAssignment sa = assign_stages(t);
  EXPECT_EQ(sa.stages, 0);
  ASSERT_EQ(sa.t32.size(), 1u);  // padded for encoder convenience
}

}  // namespace
}  // namespace rlmul::ct
