// Tests for the bench harness utilities (the experiment plumbing every
// table/figure regeneration relies on) and the evaluator verification
// gate.

#include <gtest/gtest.h>

#include <cstdlib>

#include "bench/harness.hpp"
#include "synth/evaluator.hpp"

namespace rlmul::bench {
namespace {

using ppg::MultiplierSpec;
using ppg::PpgKind;

TEST(Config, ReadsEnvironmentKnobs) {
  setenv("RLMUL_STEPS", "42", 1);
  setenv("RLMUL_THREADS", "2", 1);
  const Config cfg = config();
  EXPECT_EQ(cfg.rl_steps, 42);
  EXPECT_EQ(cfg.threads, 2);
  unsetenv("RLMUL_STEPS");
  unsetenv("RLMUL_THREADS");
}

TEST(DelaySweep, OrderedAndSpansTheRange) {
  const MultiplierSpec spec{8, PpgKind::kAnd, false};
  const auto sweep = delay_sweep(spec, 5);
  ASSERT_EQ(sweep.size(), 5u);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GT(sweep[i], sweep[i - 1]);
  }
  EXPECT_GT(sweep.front(), 0.0);
  EXPECT_LT(sweep.back(), 10.0);
}

TEST(DesignFrontier, SingleTreeSweepIsMonotone) {
  const MultiplierSpec spec{8, PpgKind::kAnd, false};
  const auto sweep = delay_sweep(spec, 4);
  const auto front =
      design_frontier(spec, {ppg::initial_tree(spec)}, sweep);
  ASSERT_GE(front.size(), 2u);
  const auto pts = front.sorted();
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GT(pts[i].x, pts[i - 1].x);
    EXPECT_LT(pts[i].y, pts[i - 1].y);
  }
}

TEST(Candidates, BaselinesReturnLegalTrees) {
  const MultiplierSpec spec{8, PpgKind::kAnd, false};
  for (const auto& tree : wallace_candidates(spec)) {
    EXPECT_TRUE(tree.legal());
  }
  for (const auto& tree : gomil_candidates(spec)) {
    EXPECT_TRUE(tree.legal());
  }
}

TEST(Candidates, SearchMethodsDedupAndCap) {
  const MultiplierSpec spec{4, PpgKind::kAnd, false};
  const auto trees = sa_candidates(spec, 15, 3);
  EXPECT_FALSE(trees.empty());
  EXPECT_LE(trees.size(), 16u);
  for (std::size_t i = 0; i < trees.size(); ++i) {
    EXPECT_TRUE(trees[i].legal());
    for (std::size_t j = i + 1; j < trees.size(); ++j) {
      EXPECT_FALSE(trees[i] == trees[j]) << i << " vs " << j;
    }
  }
}

TEST(Selections, PickExtremesAndTradeoff) {
  pareto::Front front;
  front.insert({100, 2.0, 0});
  front.insert({200, 1.0, 0});
  front.insert({140, 1.3, 0});
  EXPECT_EQ(min_area_point(front).area, 100);
  EXPECT_EQ(min_delay_point(front).delay, 1.0);
  const auto tr = tradeoff_point(front);
  EXPECT_EQ(tr.area, 140);  // 182 < 200 = both extremes' products
}

TEST(Hypervolumes, SharedReferenceAcrossMethods) {
  MethodFrontier a;
  a.name = "A";
  a.front.insert({1, 1, 0});
  MethodFrontier b;
  b.name = "B";
  b.front.insert({2, 2, 0});
  const auto hv = hypervolumes({a, b});
  ASSERT_EQ(hv.size(), 2u);
  EXPECT_GT(hv[0], hv[1]);  // A dominates B under the common reference
}

TEST(RandomTrees, AllLegalAndDiverse) {
  const MultiplierSpec spec{8, PpgKind::kAnd, false};
  const auto trees = random_trees(spec, 20, 12, 9);
  ASSERT_EQ(trees.size(), 20u);
  int distinct = 0;
  for (std::size_t i = 0; i < trees.size(); ++i) {
    EXPECT_TRUE(trees[i].legal()) << i;
    if (i > 0 && !(trees[i] == trees[0])) ++distinct;
  }
  EXPECT_GT(distinct, 5);
}

TEST(VerificationGate, PassesForHonestGenerators) {
  synth::EvaluatorOptions opts;
  opts.verify_functionality = true;
  opts.verify_vectors = 512;
  synth::DesignEvaluator ev({4, PpgKind::kAnd, false}, {}, opts);
  EXPECT_NO_THROW(ev.evaluate(ppg::initial_tree({4, PpgKind::kAnd, false})));
}

}  // namespace
}  // namespace rlmul::bench
