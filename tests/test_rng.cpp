#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace rlmul::util {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(n), n);
    }
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, SampleDiscreteRespectsWeights) {
  Rng rng(19);
  std::vector<double> w{0.0, 3.0, 1.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) {
    const auto idx = rng.sample_discrete(w);
    ASSERT_LT(idx, 3u);
    ++counts[idx];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[2], 3.0, 0.4);
}

TEST(Rng, SampleDiscreteZeroMass) {
  Rng rng(23);
  std::vector<double> w{0.0, 0.0};
  EXPECT_EQ(rng.sample_discrete(w), w.size());
}

TEST(Rng, SplitStreamsIndependent) {
  Rng parent(29);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace rlmul::util
