// Exhaustive truth-table verification of every combinational cell in
// the simulator against reference boolean functions, plus checks that
// the power model's signal probabilities match the exact truth-table
// ones under uniform inputs.

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"

namespace rlmul::sim {
namespace {

using netlist::CellKind;
using netlist::GateId;
using netlist::NetId;
using netlist::Netlist;

/// Reference single-output boolean functions (bit vectors in/out).
int ref_eval(CellKind kind, int out_pin, const std::vector<int>& in) {
  auto maj3 = [&](int a, int b, int c) {
    return (a & b) | (a & c) | (b & c);
  };
  switch (kind) {
    case CellKind::kInv: return !in[0];
    case CellKind::kBuf: return in[0];
    case CellKind::kNand2: return !(in[0] && in[1]);
    case CellKind::kNor2: return !(in[0] || in[1]);
    case CellKind::kAnd2: return in[0] && in[1];
    case CellKind::kOr2: return in[0] || in[1];
    case CellKind::kAnd3: return in[0] && in[1] && in[2];
    case CellKind::kOr3: return in[0] || in[1] || in[2];
    case CellKind::kXor2: return in[0] ^ in[1];
    case CellKind::kXnor2: return !(in[0] ^ in[1]);
    case CellKind::kAoi21: return !((in[0] && in[1]) || in[2]);
    case CellKind::kOai21: return !((in[0] || in[1]) && in[2]);
    case CellKind::kMux2: return in[2] ? in[1] : in[0];
    case CellKind::kFa:
      return out_pin == 0 ? (in[0] ^ in[1] ^ in[2])
                          : maj3(in[0], in[1], in[2]);
    case CellKind::kHa:
      return out_pin == 0 ? (in[0] ^ in[1]) : (in[0] && in[1]);
    case CellKind::kC42: {
      const int total = in[0] + in[1] + in[2] + in[3];
      // sum + 2*(co1 + co2) == total; check decomposition directly.
      const int s1 = in[0] ^ in[1] ^ in[2];
      if (out_pin == 0) return s1 ^ in[3];
      if (out_pin == 1) return maj3(in[0], in[1], in[2]);
      return s1 & in[3];
      (void)total;
    }
    case CellKind::kDff:
    case CellKind::kTieLo:
    case CellKind::kTieHi:
      return 0;  // handled separately
  }
  return 0;
}

class CellTruthTest : public ::testing::TestWithParam<CellKind> {};

TEST_P(CellTruthTest, MatchesReferenceExhaustively) {
  const CellKind kind = GetParam();
  const int n_in = netlist::num_inputs(kind);
  const int n_out = netlist::num_outputs(kind);

  Netlist nl;
  std::vector<NetId> inputs;
  for (int i = 0; i < n_in; ++i) {
    inputs.push_back(nl.add_input("i" + std::to_string(i)));
  }
  const GateId g = nl.add_gate(kind, inputs);
  for (int o = 0; o < n_out; ++o) {
    nl.mark_output(nl.gates()[static_cast<std::size_t>(g)].outputs
                       [static_cast<std::size_t>(o)],
                   "o" + std::to_string(o));
  }
  Simulator sim(nl);

  for (int pattern = 0; pattern < (1 << n_in); ++pattern) {
    std::vector<int> bits;
    for (int i = 0; i < n_in; ++i) {
      const int b = (pattern >> i) & 1;
      bits.push_back(b);
      sim.set_input(i, b ? ~0ULL : 0ULL);
    }
    sim.run();
    for (int o = 0; o < n_out; ++o) {
      const int got = static_cast<int>(sim.output(o) & 1ULL);
      EXPECT_EQ(got, ref_eval(kind, o, bits))
          << netlist::cell_kind_name(kind) << " pattern " << pattern
          << " output " << o;
    }
  }
}

TEST_P(CellTruthTest, ArithmeticCellsConserveBitWeight) {
  // For FA/HA/C42: sum of inputs == sum_output + 2 * carry_outputs.
  const CellKind kind = GetParam();
  if (kind != CellKind::kFa && kind != CellKind::kHa &&
      kind != CellKind::kC42) {
    GTEST_SKIP();
  }
  const int n_in = netlist::num_inputs(kind);
  for (int pattern = 0; pattern < (1 << n_in); ++pattern) {
    std::vector<int> bits;
    int total = 0;
    for (int i = 0; i < n_in; ++i) {
      bits.push_back((pattern >> i) & 1);
      total += bits.back();
    }
    int weighted = ref_eval(kind, 0, bits);
    for (int o = 1; o < netlist::num_outputs(kind); ++o) {
      weighted += 2 * ref_eval(kind, o, bits);
    }
    EXPECT_EQ(weighted, total)
        << netlist::cell_kind_name(kind) << " pattern " << pattern;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, CellTruthTest,
    ::testing::Values(CellKind::kInv, CellKind::kBuf, CellKind::kNand2,
                      CellKind::kNor2, CellKind::kAnd2, CellKind::kOr2,
                      CellKind::kAnd3, CellKind::kOr3, CellKind::kXor2,
                      CellKind::kXnor2, CellKind::kAoi21, CellKind::kOai21,
                      CellKind::kMux2, CellKind::kFa, CellKind::kHa,
                      CellKind::kC42),
    [](const auto& info) {
      return std::string(netlist::cell_kind_name(info.param));
    });

TEST(TieCells, DriveConstants) {
  Netlist nl;
  nl.mark_output(nl.tie_lo(), "lo");
  nl.mark_output(nl.tie_hi(), "hi");
  Simulator sim(nl);
  sim.run();
  EXPECT_EQ(sim.output(0), 0ULL);
  EXPECT_EQ(sim.output(1), ~0ULL);
}

TEST(WordParallelism, IndependentBitLanes) {
  // Each of the 64 simulated patterns must be independent: an XOR gate
  // driven with two distinct words produces the lane-wise XOR.
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const GateId g = nl.add_gate(CellKind::kXor2, {a, b});
  nl.mark_output(nl.gates()[static_cast<std::size_t>(g)].outputs[0], "y");
  Simulator sim(nl);
  const std::uint64_t wa = 0xDEADBEEFCAFEF00DULL;
  const std::uint64_t wb = 0x0123456789ABCDEFULL;
  sim.set_input(0, wa);
  sim.set_input(1, wb);
  sim.run();
  EXPECT_EQ(sim.output(0), wa ^ wb);
}

}  // namespace
}  // namespace rlmul::sim
