// Consolidated end-to-end fuzzing: random specs, random masked action
// walks (with and without the 4:2 extension), random CPA architecture,
// random builder options, optional cleanup pass — every combination
// must produce a netlist that matches the golden model. One seed per
// case keeps failures reproducible.

#include <gtest/gtest.h>

#include "ct/compressor_tree.hpp"
#include "netlist/ct_builder.hpp"
#include "netlist/opt.hpp"
#include "netlist/verilog.hpp"
#include "ppg/ppg.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace rlmul {
namespace {

using netlist::CpaKind;
using ppg::MultiplierSpec;
using ppg::PpgKind;

struct FuzzCase {
  MultiplierSpec spec;
  CpaKind cpa = CpaKind::kRippleCarry;
  bool tdm = false;
  bool allow_42 = false;
  bool run_opt = false;
  int walk = 0;
  std::uint64_t seed = 0;
};

FuzzCase random_case(util::Rng& rng) {
  FuzzCase c;
  const int bits[] = {3, 4, 5, 6};
  c.spec.bits = bits[rng.next_below(4)];
  const PpgKind kinds[] = {PpgKind::kAnd, PpgKind::kBooth,
                           PpgKind::kBaughWooley};
  c.spec.ppg = kinds[rng.next_below(3)];
  c.spec.mac = rng.next_bool(0.3);
  const CpaKind cpas[] = {CpaKind::kRippleCarry, CpaKind::kBrentKung,
                          CpaKind::kSklansky, CpaKind::kKoggeStone};
  c.cpa = cpas[rng.next_below(4)];
  c.tdm = rng.next_bool(0.3);
  c.allow_42 = rng.next_bool(0.4);
  c.run_opt = rng.next_bool(0.3);
  c.walk = static_cast<int>(rng.next_below(25));
  c.seed = rng.next();
  return c;
}

TEST(Fuzz, RandomPipelinesMatchGoldenModel) {
  util::Rng meta_rng(0xF022);
  int checked = 0;
  for (int iter = 0; iter < 120; ++iter) {
    const FuzzCase c = random_case(meta_rng);
    util::Rng rng(c.seed);

    ct::CompressorTree tree = ppg::initial_tree(c.spec);
    for (int step = 0; step < c.walk; ++step) {
      const auto mask = ct::legal_action_mask(tree, -1, c.allow_42);
      std::vector<double> w(mask.size());
      for (std::size_t i = 0; i < mask.size(); ++i) w[i] = mask[i];
      const auto pick = rng.sample_discrete(w);
      if (pick >= mask.size()) break;
      tree = ct::apply_action(tree,
                              ct::action_from_index(static_cast<int>(pick)));
    }
    ASSERT_TRUE(tree.legal()) << "iter " << iter << " seed " << c.seed;

    netlist::CtBuildOptions bopts;
    bopts.tdm_ordering = c.tdm;
    auto nl = ppg::build_multiplier(c.spec, tree, c.cpa, bopts);
    if (c.run_opt) {
      netlist::OptOptions oopts;
      oopts.remap = true;
      oopts.max_fanout = 10;
      nl = netlist::optimize(nl, oopts);
    }

    const auto rep = sim::check_equivalence(nl, c.spec, rng,
                                            /*exhaustive_limit=*/1 << 14,
                                            /*random_vectors=*/512);
    ASSERT_TRUE(rep.equivalent)
        << "iter " << iter << " seed " << c.seed << " bits=" << c.spec.bits
        << " ppg=" << ppg::ppg_kind_name(c.spec.ppg)
        << " mac=" << c.spec.mac
        << " cpa=" << netlist::cpa_kind_name(c.cpa) << " tdm=" << c.tdm
        << " opt=" << c.run_opt << " walk=" << c.walk << "\n a=" << rep.a
        << " b=" << rep.b << " acc=" << rep.acc << " got=" << rep.got
        << " expect=" << rep.expect;
    ++checked;
  }
  EXPECT_EQ(checked, 120);
}

TEST(Fuzz, VerilogExportNeverProducesDanglingReferences) {
  util::Rng meta_rng(0xF023);
  for (int iter = 0; iter < 20; ++iter) {
    const FuzzCase c = random_case(meta_rng);
    const auto nl = ppg::build_multiplier(
        c.spec, ppg::initial_tree(c.spec), c.cpa);
    const std::string v = netlist::to_verilog(nl);
    // Every internal wire mentioned in an instance must be declared.
    // Spot-check: the string "n-1" (an invalid net id) never appears.
    EXPECT_EQ(v.find("(n-1)"), std::string::npos) << "iter " << iter;
    EXPECT_NE(v.find("endmodule"), std::string::npos);
  }
}

}  // namespace
}  // namespace rlmul
