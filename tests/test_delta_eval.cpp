// Delta evaluation (parent-relative incremental synthesis + STA
// warm-start): the standing repo contract is that every optimized
// path is bit-identical per double to the from-scratch pipeline. These
// tests walk randomized move sequences through PreparedDesign's delta
// mode and the evaluator's ParentHint path and compare every
// SynthesisResult field bitwise against scratch builds, across PPG
// families, all four menu CPAs (as menu sweeps and as pinned graphs),
// and off-menu prefix graphs. The concurrency test hammers one
// retained parent with parallel children (run under `ctest -L tsan`).

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "ct/compressor_tree.hpp"
#include "ppg/ppg.hpp"
#include "prefix/prefix_graph.hpp"
#include "synth/evaluator.hpp"
#include "synth/synth.hpp"
#include "util/perf_counters.hpp"
#include "util/rng.hpp"

namespace {

using namespace rlmul;

const double kTargets[2] = {0.7, 1.2};

bool SameResult(const synth::SynthesisResult& a,
                const synth::SynthesisResult& b) {
  return std::memcmp(&a.area_um2, &b.area_um2, sizeof(double)) == 0 &&
         std::memcmp(&a.delay_ns, &b.delay_ns, sizeof(double)) == 0 &&
         std::memcmp(&a.power_mw, &b.power_mw, sizeof(double)) == 0 &&
         a.met_target == b.met_target && a.cpa == b.cpa &&
         a.num_gates == b.num_gates;
}

std::vector<ct::CompressorTree> RandomWalk(const ppg::MultiplierSpec& spec,
                                           int steps, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<ct::CompressorTree> walk;
  ct::CompressorTree tree = ppg::initial_tree(spec);
  for (int i = 0; i < steps; ++i) {
    walk.push_back(tree);
    const auto mask = ct::legal_action_mask(tree);
    std::vector<int> legal;
    for (int k = 0; k < static_cast<int>(mask.size()); ++k) {
      if (mask[k]) legal.push_back(k);
    }
    if (legal.empty()) break;  // dead end; callers assert non-empty walks
    tree = ct::apply_action(
        tree, ct::action_from_index(legal[rng.next() % legal.size()]));
  }
  return walk;
}

/// Chains delta designs along `walk` (each step's design parents the
/// next) and compares every target's result bitwise against a scratch
/// PreparedDesign of the same step. `graphs` empty = menu sweep;
/// otherwise step s pins graphs[s % graphs.size()].
void ExpectDeltaMatchesScratch(const ppg::MultiplierSpec& spec,
                               const std::vector<ct::CompressorTree>& walk,
                               const std::vector<prefix::PrefixGraph>& graphs) {
  std::shared_ptr<const synth::PreparedDesign> parent;
  for (std::size_t s = 0; s < walk.size(); ++s) {
    std::shared_ptr<synth::PreparedDesign> prep;
    std::unique_ptr<synth::PreparedDesign> scratch;
    if (graphs.empty()) {
      prep = std::make_shared<synth::PreparedDesign>(
          synth::PreparedDesign::DeltaMode{}, spec, walk[s], parent);
      scratch = std::make_unique<synth::PreparedDesign>(spec, walk[s]);
    } else {
      const prefix::PrefixGraph& g = graphs[s % graphs.size()];
      prep = std::make_shared<synth::PreparedDesign>(
          synth::PreparedDesign::DeltaMode{}, spec, walk[s], g, parent);
      scratch = std::make_unique<synth::PreparedDesign>(spec, walk[s], g);
    }
    if (s > 0) {
      EXPECT_TRUE(prep->used_parent()) << "step " << s;
    }
    for (const double target : kTargets) {
      const synth::SynthesisResult d = prep->synthesize(target);
      const synth::SynthesisResult r = scratch->synthesize(target);
      EXPECT_TRUE(SameResult(d, r))
          << "step " << s << " target " << target << ": delta ("
          << d.area_um2 << ", " << d.delay_ns << ", " << d.power_mw
          << ") vs scratch (" << r.area_um2 << ", " << r.delay_ns << ", "
          << r.power_mw << ")";
    }
    prep->seal_for_retention();
    parent = prep;
  }
}

prefix::PrefixGraph OffMenuGraph(int width, int seed_bit) {
  prefix::Matrix m = prefix::matrix_of(prefix::sklansky(width));
  prefix::Move mv;
  mv.kind = prefix::MoveKind::kRemoveNode;
  mv.level = 1;
  mv.bit = seed_bit;
  return prefix::legalize(prefix::apply_move(std::move(m), mv)).graph;
}

TEST(DeltaEval, MenuWalkBitIdenticalAcrossPpgFamilies) {
  for (const ppg::PpgKind kind :
       {ppg::PpgKind::kAnd, ppg::PpgKind::kBooth, ppg::PpgKind::kBaughWooley}) {
    const ppg::MultiplierSpec spec{8, kind, false};
    std::vector<ct::CompressorTree> walk = RandomWalk(spec, 10, 0xD17A + 7);
    ASSERT_FALSE(walk.empty());
    ExpectDeltaMatchesScratch(spec, walk, {});
  }
}

TEST(DeltaEval, PinnedMenuCpasBitIdentical) {
  const ppg::MultiplierSpec spec{8, ppg::PpgKind::kAnd, false};
  const int w = spec.columns();
  const prefix::PrefixGraph menu[] = {prefix::serial(w), prefix::brent_kung(w),
                                      prefix::sklansky(w),
                                      prefix::kogge_stone(w)};
  for (const prefix::PrefixGraph& g : menu) {
    std::vector<ct::CompressorTree> walk = RandomWalk(spec, 5, 0xF00D);
    ASSERT_FALSE(walk.empty());
    ExpectDeltaMatchesScratch(spec, walk, {g});
  }
}

TEST(DeltaEval, OffMenuPinnedBitIdentical) {
  const ppg::MultiplierSpec spec{8, ppg::PpgKind::kAnd, false};
  const int w = spec.columns();
  std::vector<ct::CompressorTree> walk = RandomWalk(spec, 8, 0xBEEF);
  ASSERT_FALSE(walk.empty());
  // Constant off-menu graph: the CPA-patch path on a non-menu adder.
  ExpectDeltaMatchesScratch(spec, walk, {OffMenuGraph(w, w / 2)});
  // Alternating off-menu graphs: every step changes the adder, so the
  // CPA region is re-emitted fresh while the tree region still patches.
  ExpectDeltaMatchesScratch(spec, walk,
                            {OffMenuGraph(w, w / 2), OffMenuGraph(w, 3)});
}

TEST(DeltaEval, DiffTreesReportsChangedColumns) {
  const ppg::MultiplierSpec spec{8, ppg::PpgKind::kAnd, false};
  const ct::CompressorTree a = ppg::initial_tree(spec);
  EXPECT_TRUE(ct::diff_trees(a, a).identical());
  const auto mask = ct::legal_action_mask(a);
  int first_legal = -1;
  for (int k = 0; k < static_cast<int>(mask.size()); ++k) {
    if (mask[k]) {
      first_legal = k;
      break;
    }
  }
  ASSERT_GE(first_legal, 0);
  const ct::CompressorTree b =
      ct::apply_action(a, ct::action_from_index(first_legal));
  const ct::TreeDelta d = ct::diff_trees(a, b);
  EXPECT_TRUE(d.same_shape);
  EXPECT_FALSE(d.changed_columns.empty());
  // Different PPG heights are a different shape entirely.
  const ppg::MultiplierSpec booth{8, ppg::PpgKind::kBooth, false};
  const ct::TreeDelta x = ct::diff_trees(a, ppg::initial_tree(booth));
  EXPECT_FALSE(x.same_shape);
}

TEST(DeltaEval, DiffGraphsDetectsIdenticalAndChanged) {
  const prefix::PrefixGraph a = prefix::sklansky(16);
  EXPECT_TRUE(prefix::diff_graphs(a, prefix::sklansky(16)).identical);
  const prefix::GraphDelta d = prefix::diff_graphs(a, prefix::brent_kung(16));
  EXPECT_FALSE(d.identical);
  EXPECT_FALSE(d.changed_outputs.empty());
}

TEST(DeltaEval, EvaluatorHintsMatchScratchAndCount) {
  const ppg::MultiplierSpec spec{8, ppg::PpgKind::kAnd, false};
  std::vector<ct::CompressorTree> walk = RandomWalk(spec, 8, 0xCAFE);
  ASSERT_FALSE(walk.empty());
  const std::vector<double> targets(std::begin(kTargets), std::end(kTargets));

  setenv("RLMUL_BATCH_EVAL", "0", 1);
  setenv("RLMUL_DELTA_EVAL", "1", 1);
  synth::DesignEvaluator on(spec, targets);
  ASSERT_TRUE(on.delta_eval());
  setenv("RLMUL_DELTA_EVAL", "0", 1);
  synth::DesignEvaluator off(spec, targets);
  ASSERT_FALSE(off.delta_eval());

  auto& counters = util::perf_counters();
  const std::uint64_t hits0 = counters.eval_delta_hits.load();
  for (std::size_t s = 0; s < walk.size(); ++s) {
    synth::ParentHint hint;
    if (s > 0) hint.key = walk[s - 1].key();
    const synth::DesignEval a = on.evaluate(walk[s], hint);
    const synth::DesignEval b = off.evaluate(walk[s]);
    ASSERT_EQ(a.per_target.size(), b.per_target.size());
    for (std::size_t t = 0; t < a.per_target.size(); ++t) {
      EXPECT_TRUE(SameResult(a.per_target[t], b.per_target[t]))
          << "step " << s << " target " << t;
    }
  }
  // Every hinted step found its parent retained in the LRU.
  EXPECT_GE(counters.eval_delta_hits.load() - hits0, walk.size() - 1);

  // A hint whose parent was never retained falls back to scratch —
  // same numbers, fallback counter bumped.
  const std::uint64_t fb0 = counters.eval_delta_fallbacks.load();
  std::vector<ct::CompressorTree> other = RandomWalk(spec, 6, 0x5EED);
  const synth::DesignEval a =
      on.evaluate(other.back(), synth::ParentHint{"no-such-parent"});
  const synth::DesignEval b = off.evaluate(other.back());
  ASSERT_EQ(a.per_target.size(), b.per_target.size());
  for (std::size_t t = 0; t < a.per_target.size(); ++t) {
    EXPECT_TRUE(SameResult(a.per_target[t], b.per_target[t]));
  }
  EXPECT_GE(counters.eval_delta_fallbacks.load() - fb0, 1u);
  unsetenv("RLMUL_BATCH_EVAL");
  unsetenv("RLMUL_DELTA_EVAL");
}

// Several workers evaluate distinct children of the same retained
// parent concurrently: children only read the sealed parent's
// immutable state, so this must be race-free (TSan) and every result
// bit-identical to scratch.
TEST(DeltaEval, ConcurrentChildrenOfSharedParent) {
  const ppg::MultiplierSpec spec{8, ppg::PpgKind::kAnd, false};
  const std::vector<double> targets(std::begin(kTargets), std::end(kTargets));
  setenv("RLMUL_BATCH_EVAL", "0", 1);
  setenv("RLMUL_DELTA_EVAL", "1", 1);
  synth::DesignEvaluator on(spec, targets);
  setenv("RLMUL_DELTA_EVAL", "0", 1);
  synth::DesignEvaluator off(spec, targets);

  const ct::CompressorTree parent = ppg::initial_tree(spec);
  on.evaluate(parent);  // retained in the parent LRU
  const auto mask = ct::legal_action_mask(parent);
  std::vector<ct::CompressorTree> children;
  for (int k = 0; k < static_cast<int>(mask.size()) && children.size() < 4;
       ++k) {
    if (mask[k]) {
      children.push_back(ct::apply_action(parent, ct::action_from_index(k)));
    }
  }
  ASSERT_EQ(children.size(), 4u);

  std::vector<synth::DesignEval> got(children.size());
  std::vector<std::thread> workers;
  for (std::size_t i = 0; i < children.size(); ++i) {
    workers.emplace_back([&, i] {
      got[i] = on.evaluate(children[i], synth::ParentHint{parent.key()});
    });
  }
  for (auto& w : workers) w.join();
  for (std::size_t i = 0; i < children.size(); ++i) {
    const synth::DesignEval ref = off.evaluate(children[i]);
    ASSERT_EQ(got[i].per_target.size(), ref.per_target.size());
    for (std::size_t t = 0; t < ref.per_target.size(); ++t) {
      EXPECT_TRUE(SameResult(got[i].per_target[t], ref.per_target[t]))
          << "child " << i << " target " << t;
    }
  }
  unsetenv("RLMUL_BATCH_EVAL");
  unsetenv("RLMUL_DELTA_EVAL");
}

}  // namespace
