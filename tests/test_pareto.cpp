// Pareto-front and hypervolume tests (Figs 13/14 machinery).

#include "pareto/pareto.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace rlmul::pareto {
namespace {

TEST(Dominates, StrictAndWeak) {
  EXPECT_TRUE(dominates({1, 1}, {2, 2}));
  EXPECT_TRUE(dominates({1, 2}, {2, 2}));
  EXPECT_FALSE(dominates({2, 2}, {2, 2}));  // equal: no strict improvement
  EXPECT_FALSE(dominates({1, 3}, {2, 2}));  // trade-off
}

TEST(Front, InsertEvictsDominated) {
  Front f;
  EXPECT_TRUE(f.insert({5, 5}));
  EXPECT_TRUE(f.insert({3, 7}));
  EXPECT_TRUE(f.insert({2, 2}));  // dominates both
  EXPECT_EQ(f.size(), 1u);
  EXPECT_FALSE(f.insert({2, 2}));  // duplicate
  EXPECT_FALSE(f.insert({3, 3}));  // dominated
}

TEST(Front, SortedIsMonotone) {
  Front f;
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    f.insert({rng.next_double() * 100, rng.next_double() * 100});
  }
  const auto pts = f.sorted();
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GT(pts[i].x, pts[i - 1].x);
    EXPECT_LT(pts[i].y, pts[i - 1].y);
  }
}

TEST(Front, CoveredQueries) {
  Front f;
  f.insert({2, 2});
  EXPECT_TRUE(f.covered({3, 3}));
  EXPECT_TRUE(f.covered({2, 2}));
  EXPECT_FALSE(f.covered({1, 3}));
}

TEST(ParetoFilter, KeepsOnlyNonDominated) {
  const auto out =
      pareto_filter({{1, 5}, {2, 4}, {3, 3}, {2, 6}, {4, 4}, {0.5, 7}});
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].x, 0.5);
  EXPECT_EQ(out[3].x, 3.0);
}

TEST(Hypervolume, SinglePointRectangle) {
  EXPECT_DOUBLE_EQ(hypervolume({{2, 3}}, 10, 10), 8.0 * 7.0);
}

TEST(Hypervolume, TwoPointStaircase) {
  // (2,6) and (4,3) vs ref (10,10): 8*4 + 6*3 = 50.
  EXPECT_DOUBLE_EQ(hypervolume({{2, 6}, {4, 3}}, 10, 10), 50.0);
}

TEST(Hypervolume, DominatedPointsDoNotChangeVolume) {
  const double base = hypervolume({{2, 6}, {4, 3}}, 10, 10);
  EXPECT_DOUBLE_EQ(hypervolume({{2, 6}, {4, 3}, {5, 7}}, 10, 10), base);
}

TEST(Hypervolume, PointsBeyondReferenceAreClipped) {
  EXPECT_DOUBLE_EQ(hypervolume({{12, 1}, {2, 3}}, 10, 10), 8.0 * 7.0);
}

TEST(Hypervolume, MonotoneUnderImprovement) {
  const double worse = hypervolume({{3, 3}}, 10, 10);
  const double better = hypervolume({{2, 2}}, 10, 10);
  EXPECT_GT(better, worse);
  // Adding any new non-dominated point can only grow the volume.
  const double extended = hypervolume({{2, 2}, {1, 5}}, 10, 10);
  EXPECT_GE(extended, better);
}

TEST(Hypervolume, EmptyFrontIsZero) {
  EXPECT_DOUBLE_EQ(hypervolume({}, 10, 10), 0.0);
}

}  // namespace
}  // namespace rlmul::pareto
