#include "sim/simulator.hpp"

#include <stdexcept>

namespace rlmul::sim {

using netlist::CellKind;
using netlist::Gate;
using netlist::GateId;
using netlist::NetId;
using netlist::Netlist;

Simulator::Simulator(const Netlist& nl)
    : nl_(nl),
      order_(nl.topo_order()),
      values_(static_cast<std::size_t>(nl.num_nets()), 0),
      dff_state_(static_cast<std::size_t>(nl.num_gates()), 0),
      input_nets_(nl.primary_inputs()),
      output_nets_(nl.primary_outputs()) {}

int Simulator::input_index(const std::string& name) const {
  const auto& names = nl_.input_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

void Simulator::set_input(int index, std::uint64_t word) {
  values_[static_cast<std::size_t>(
      input_nets_[static_cast<std::size_t>(index)])] = word;
}

void Simulator::set_all_inputs(std::uint64_t word) {
  for (NetId n : input_nets_) values_[static_cast<std::size_t>(n)] = word;
}

void Simulator::run() {
  for (GateId g : order_) {
    const Gate& gate = nl_.gates()[static_cast<std::size_t>(g)];
    auto in = [&](int i) {
      return values_[static_cast<std::size_t>(
          gate.inputs[static_cast<std::size_t>(i)])];
    };
    auto set = [&](int i, std::uint64_t v) {
      values_[static_cast<std::size_t>(
          gate.outputs[static_cast<std::size_t>(i)])] = v;
    };
    switch (gate.kind) {
      case CellKind::kInv: set(0, ~in(0)); break;
      case CellKind::kBuf: set(0, in(0)); break;
      case CellKind::kNand2: set(0, ~(in(0) & in(1))); break;
      case CellKind::kNor2: set(0, ~(in(0) | in(1))); break;
      case CellKind::kAnd2: set(0, in(0) & in(1)); break;
      case CellKind::kOr2: set(0, in(0) | in(1)); break;
      case CellKind::kAnd3: set(0, in(0) & in(1) & in(2)); break;
      case CellKind::kOr3: set(0, in(0) | in(1) | in(2)); break;
      case CellKind::kXor2: set(0, in(0) ^ in(1)); break;
      case CellKind::kXnor2: set(0, ~(in(0) ^ in(1))); break;
      case CellKind::kAoi21: set(0, ~((in(0) & in(1)) | in(2))); break;
      case CellKind::kOai21: set(0, ~((in(0) | in(1)) & in(2))); break;
      case CellKind::kMux2: set(0, (in(2) & in(1)) | (~in(2) & in(0))); break;
      case CellKind::kFa: {
        const std::uint64_t a = in(0), b = in(1), c = in(2);
        set(0, a ^ b ^ c);
        set(1, (a & b) | (a & c) | (b & c));
        break;
      }
      case CellKind::kHa: {
        const std::uint64_t a = in(0), b = in(1);
        set(0, a ^ b);
        set(1, a & b);
        break;
      }
      case CellKind::kC42: {
        // Two stacked adders: FA(a,b,c) -> (s1, co1); HA(s1,d) -> (sum,
        // co2). a+b+c+d == sum + 2*(co1 + co2).
        const std::uint64_t a = in(0), b = in(1), c = in(2), d = in(3);
        const std::uint64_t s1 = a ^ b ^ c;
        set(0, s1 ^ d);
        set(1, (a & b) | (a & c) | (b & c));
        set(2, s1 & d);
        break;
      }
      case CellKind::kDff:
        set(0, dff_state_[static_cast<std::size_t>(g)]);
        break;
      case CellKind::kTieLo: set(0, 0); break;
      case CellKind::kTieHi: set(0, ~std::uint64_t{0}); break;
    }
  }
}

std::uint64_t Simulator::output(int index) const {
  return values_[static_cast<std::size_t>(
      output_nets_[static_cast<std::size_t>(index)])];
}

std::uint64_t Simulator::net_value(NetId net) const {
  return values_[static_cast<std::size_t>(net)];
}

void Simulator::clock_edge() {
  for (GateId g = 0; g < nl_.num_gates(); ++g) {
    const Gate& gate = nl_.gates()[static_cast<std::size_t>(g)];
    if (gate.kind == CellKind::kDff) {
      dff_state_[static_cast<std::size_t>(g)] =
          values_[static_cast<std::size_t>(gate.inputs[0])];
    }
  }
}

void Simulator::reset_state() {
  std::fill(dff_state_.begin(), dff_state_.end(), 0);
}

// ---------------------------------------------------------------------------

std::uint64_t golden_product(std::uint64_t a, std::uint64_t b, int bits) {
  const int w = 2 * bits;
  const std::uint64_t in_mask = bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
  const std::uint64_t out_mask = w >= 64 ? ~0ULL : ((1ULL << w) - 1);
  return ((a & in_mask) * (b & in_mask)) & out_mask;
}

std::uint64_t golden_mac(std::uint64_t a, std::uint64_t b, std::uint64_t acc,
                         int bits) {
  const int w = 2 * bits;
  const std::uint64_t out_mask = w >= 64 ? ~0ULL : ((1ULL << w) - 1);
  return (golden_product(a, b, bits) + (acc & out_mask)) & out_mask;
}

std::uint64_t golden_signed_product(std::uint64_t a, std::uint64_t b,
                                    int bits) {
  const std::uint64_t in_mask = bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
  const std::uint64_t sign = 1ULL << (bits - 1);
  auto sext = [&](std::uint64_t v) -> std::int64_t {
    v &= in_mask;
    return static_cast<std::int64_t>((v ^ sign) - sign);
  };
  const int w = 2 * bits;
  const std::uint64_t out_mask = w >= 64 ? ~0ULL : ((1ULL << w) - 1);
  return static_cast<std::uint64_t>(sext(a) * sext(b)) & out_mask;
}

std::uint64_t golden_for_spec(const ppg::MultiplierSpec& spec,
                              std::uint64_t a, std::uint64_t b,
                              std::uint64_t acc) {
  const int w = spec.columns();
  const std::uint64_t out_mask = w >= 64 ? ~0ULL : ((1ULL << w) - 1);
  const std::uint64_t prod =
      spec.ppg == ppg::PpgKind::kBaughWooley
          ? golden_signed_product(a, b, spec.bits)
          : golden_product(a, b, spec.bits);
  return spec.mac ? (prod + (acc & out_mask)) & out_mask : prod;
}

namespace {

/// One batch of up to 64 (a, b, acc) vectors pushed through the netlist.
bool run_batch(Simulator& sim, const ppg::MultiplierSpec& spec,
               const std::vector<std::uint64_t>& as,
               const std::vector<std::uint64_t>& bs,
               const std::vector<std::uint64_t>& accs,
               EquivalenceReport& report) {
  const int n = spec.bits;
  const int w = spec.columns();
  const int count = static_cast<int>(as.size());

  auto pack_bit = [&](const std::vector<std::uint64_t>& vals, int bit) {
    std::uint64_t word = 0;
    for (int v = 0; v < count; ++v) {
      word |= ((vals[static_cast<std::size_t>(v)] >> bit) & 1ULL)
              << v;
    }
    return word;
  };

  for (int i = 0; i < n; ++i) sim.set_input(i, pack_bit(as, i));
  for (int i = 0; i < n; ++i) sim.set_input(n + i, pack_bit(bs, i));
  if (spec.mac) {
    for (int i = 0; i < w; ++i) sim.set_input(2 * n + i, pack_bit(accs, i));
  }
  sim.run();

  for (int v = 0; v < count; ++v) {
    std::uint64_t got = 0;
    for (int j = 0; j < w; ++j) {
      got |= ((sim.output(j) >> v) & 1ULL) << j;
    }
    const std::uint64_t expect =
        golden_for_spec(spec, as[static_cast<std::size_t>(v)],
                        bs[static_cast<std::size_t>(v)],
                        accs[static_cast<std::size_t>(v)]);
    ++report.vectors_checked;
    if (got != expect) {
      report.equivalent = false;
      report.a = as[static_cast<std::size_t>(v)];
      report.b = bs[static_cast<std::size_t>(v)];
      report.acc = accs[static_cast<std::size_t>(v)];
      report.got = got;
      report.expect = expect;
      return false;
    }
  }
  return true;
}

}  // namespace

EquivalenceReport check_equivalence(const netlist::Netlist& nl,
                                    const ppg::MultiplierSpec& spec,
                                    util::Rng& rng,
                                    std::uint64_t exhaustive_limit,
                                    std::uint64_t random_vectors) {
  Simulator sim(nl);
  EquivalenceReport report;
  const int n = spec.bits;
  const int w = spec.columns();
  const int space_bits = spec.mac ? 2 * n + w : 2 * n;
  const std::uint64_t in_mask = (n >= 64) ? ~0ULL : ((1ULL << n) - 1);
  const std::uint64_t acc_mask = (w >= 64) ? ~0ULL : ((1ULL << w) - 1);

  std::vector<std::uint64_t> as, bs, accs;
  auto flush = [&]() {
    if (as.empty()) return true;
    const bool ok = run_batch(sim, spec, as, bs, accs, report);
    as.clear();
    bs.clear();
    accs.clear();
    return ok;
  };
  auto add = [&](std::uint64_t a, std::uint64_t b, std::uint64_t acc) {
    as.push_back(a & in_mask);
    bs.push_back(b & in_mask);
    accs.push_back(acc & acc_mask);
    if (as.size() == 64) return flush();
    return true;
  };

  if (space_bits <= 62 &&
      (1ULL << space_bits) <= exhaustive_limit) {
    const std::uint64_t total = 1ULL << space_bits;
    for (std::uint64_t v = 0; v < total; ++v) {
      const std::uint64_t a = v & in_mask;
      const std::uint64_t b = (v >> n) & in_mask;
      const std::uint64_t acc = spec.mac ? ((v >> (2 * n)) & acc_mask) : 0;
      if (!add(a, b, acc)) return report;
    }
    flush();
    return report;
  }

  // Corner cases first.
  const std::uint64_t corners[] = {0ULL, 1ULL, in_mask, in_mask >> 1,
                                   in_mask ^ (in_mask >> 1)};
  for (std::uint64_t a : corners) {
    for (std::uint64_t b : corners) {
      if (!add(a, b, 0) || !add(a, b, acc_mask)) return report;
    }
  }
  // Single-bit walks.
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < n; ++k) {
      if (!add(1ULL << i, 1ULL << k, 0)) return report;
    }
  }
  // Random fill.
  for (std::uint64_t v = 0; v < random_vectors; ++v) {
    if (!add(rng.next(), rng.next(), rng.next())) return report;
  }
  flush();
  return report;
}

}  // namespace rlmul::sim
