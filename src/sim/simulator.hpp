#pragma once
// 64-way bit-parallel logic simulation and equivalence checking. This
// plays the role Yosys + ABC `cec` play in the paper's flow: every
// generated multiplier/MAC netlist is verified against a golden
// software model — exhaustively for small operand widths, with random
// vectors for larger ones.

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "ppg/ppg.hpp"
#include "util/rng.hpp"

namespace rlmul::sim {

/// Evaluates a combinational netlist on 64 input patterns at once
/// (one bit position per pattern). DFF outputs read from a state
/// vector (default all-zero), so registered designs can be stepped.
class Simulator {
 public:
  explicit Simulator(const netlist::Netlist& nl);

  int num_inputs() const { return static_cast<int>(input_nets_.size()); }
  int num_outputs() const { return static_cast<int>(output_nets_.size()); }

  /// Input index corresponding to a primary-input name; -1 if absent.
  int input_index(const std::string& name) const;

  void set_input(int index, std::uint64_t word);
  void set_all_inputs(std::uint64_t word);

  /// Evaluates all gates in topological order.
  void run();

  std::uint64_t output(int index) const;
  std::uint64_t net_value(netlist::NetId net) const;

  /// Sequential support: copies each DFF's D value into its state.
  void clock_edge();
  void reset_state();

 private:
  const netlist::Netlist& nl_;
  std::vector<netlist::GateId> order_;
  std::vector<std::uint64_t> values_;
  std::vector<std::uint64_t> dff_state_;  // indexed by gate id
  std::vector<netlist::NetId> input_nets_;
  std::vector<netlist::NetId> output_nets_;
};

// ---------------------------------------------------------------------------
// Golden models (all modulo 2^{2N}, the product register width).

std::uint64_t golden_product(std::uint64_t a, std::uint64_t b, int bits);
std::uint64_t golden_mac(std::uint64_t a, std::uint64_t b, std::uint64_t acc,
                         int bits);

/// Two's-complement product of signed N-bit operands, as a 2N-bit
/// two's-complement word (used for the Baugh-Wooley PPG).
std::uint64_t golden_signed_product(std::uint64_t a, std::uint64_t b,
                                    int bits);

/// Golden function for a spec: signed for Baugh-Wooley, unsigned
/// otherwise; MAC specs add the accumulator mod 2^{2N}.
std::uint64_t golden_for_spec(const ppg::MultiplierSpec& spec,
                              std::uint64_t a, std::uint64_t b,
                              std::uint64_t acc);

struct EquivalenceReport {
  bool equivalent = true;
  std::uint64_t vectors_checked = 0;
  // First counterexample, valid when !equivalent:
  std::uint64_t a = 0, b = 0, acc = 0;
  std::uint64_t got = 0, expect = 0;
};

/// Checks a built multiplier/MAC netlist against the golden model.
/// Runs exhaustively when the input space is at most `exhaustive_limit`
/// vectors, otherwise `random_vectors` random cases (plus structured
/// corner cases: all-zeros, all-ones, single-bit walks).
EquivalenceReport check_equivalence(const netlist::Netlist& nl,
                                    const ppg::MultiplierSpec& spec,
                                    util::Rng& rng,
                                    std::uint64_t exhaustive_limit = 1 << 20,
                                    std::uint64_t random_vectors = 1 << 14);

}  // namespace rlmul::sim
