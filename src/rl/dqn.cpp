#include "rl/dqn.hpp"

#include <algorithm>
#include <limits>

#include "nn/optim.hpp"
#include "nn/serialize.hpp"

namespace rlmul::rl {

void ReplayBuffer::push(Transition t) {
  if (data_.size() < capacity_) {
    data_.push_back(std::move(t));
  } else {
    data_[next_] = std::move(t);
    next_ = (next_ + 1) % capacity_;
  }
}

const Transition& ReplayBuffer::sample(util::Rng& rng) const {
  return data_[rng.next_below(data_.size())];
}

std::unique_ptr<nn::ResNet> make_agent_net(AgentNet kind, int num_actions,
                                           util::Rng& rng) {
  const nn::ResNetConfig cfg =
      kind == AgentNet::kResNet18
          ? nn::resnet18_config(kStateChannels, num_actions)
          : nn::resnet_tiny_config(kStateChannels, num_actions);
  return std::make_unique<nn::ResNet>(cfg, rng);
}

namespace {

/// argmax over legal entries; returns -1 when nothing is legal.
int masked_argmax(const float* q, const std::vector<std::uint8_t>& mask) {
  int best = -1;
  float best_q = -std::numeric_limits<float>::infinity();
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i] != 0 && q[i] > best_q) {
      best_q = q[i];
      best = static_cast<int>(i);
    }
  }
  return best;
}

int random_legal(const std::vector<std::uint8_t>& mask, util::Rng& rng) {
  std::vector<double> w(mask.size());
  for (std::size_t i = 0; i < mask.size(); ++i) w[i] = mask[i];
  const std::size_t pick = rng.sample_discrete(w);
  return pick < mask.size() ? static_cast<int>(pick) : -1;
}

}  // namespace

TrainResult train_dqn(synth::DesignEvaluator& evaluator,
                      const DqnOptions& opts) {
  util::Rng rng(opts.seed);
  EnvConfig env_cfg;
  env_cfg.w_area = opts.w_area;
  env_cfg.w_delay = opts.w_delay;
  env_cfg.max_stages = opts.max_stages;
  env_cfg.enable_42 = opts.enable_42;
  MultiplierEnv env(evaluator, env_cfg);

  const int num_actions = env.num_actions();
  std::shared_ptr<nn::ResNet> net =
      make_agent_net(opts.net, num_actions, rng);
  std::unique_ptr<nn::ResNet> target;
  if (opts.target_sync > 0) {
    target = make_agent_net(opts.net, num_actions, rng);
  }
  nn::RmsProp optim(net->params(), opts.lr);

  ReplayBuffer buffer(static_cast<std::size_t>(opts.buffer_capacity));
  TrainResult result;
  result.best_tree = env.best_tree();
  result.best_cost = env.best_cost();

  auto sync_target = [&]() {
    if (target) nn::copy_params(*net, *target);
  };
  sync_target();

  int updates = 0;
  for (int t = 0; t < opts.steps; ++t) {
    if (opts.episode_length > 0 && t > 0 && t % opts.episode_length == 0) {
      env.reset();
    }
    const auto mask = env.mask();
    int action = -1;
    const double frac =
        opts.steps > 1 ? static_cast<double>(t) / (opts.steps - 1) : 1.0;
    const double eps =
        opts.eps_start + (opts.eps_end - opts.eps_start) * frac;
    if (t < opts.warmup || rng.next_double() < eps) {
      action = random_legal(mask, rng);
    } else {
      net->set_training(false);
      const nt::Tensor q = net->forward(env.observe());
      action = masked_argmax(q.data(), mask);
    }
    if (action < 0) {
      env.reset();  // dead end (can happen with very tight pruning)
      continue;
    }

    const ct::CompressorTree state = env.tree();
    const auto step = env.step(action);
    Transition tr;
    tr.state = state;
    tr.action = action;
    tr.reward = step.reward;
    tr.next_state = env.tree();
    tr.next_mask = env.mask();
    buffer.push(std::move(tr));

    result.trajectory.push_back(step.cost);
    if (env.best_cost() < result.best_cost) {
      result.best_cost = env.best_cost();
      result.best_tree = env.best_tree();
    }
    result.best_trajectory.push_back(result.best_cost);

    if (t < opts.warmup ||
        buffer.size() < static_cast<std::size_t>(opts.batch_size)) {
      continue;
    }

    // -- learning step -----------------------------------------------------
    std::vector<const Transition*> batch;
    batch.reserve(static_cast<std::size_t>(opts.batch_size));
    for (int b = 0; b < opts.batch_size; ++b) {
      batch.push_back(&buffer.sample(rng));
    }

    // Bootstrap targets: y = r + gamma * max_legal Q(s', .). With
    // double DQN the arg-max comes from the online net and the value
    // from the target net, decoupling selection from evaluation.
    std::vector<ct::CompressorTree> next_states;
    for (const Transition* tr_ptr : batch) next_states.push_back(tr_ptr->next_state);
    const nt::Tensor next_batch = encode_batch(next_states, env.stage_pad());
    nn::ResNet& boot_net = target ? *target : *net;
    boot_net.set_training(false);
    const nt::Tensor q_next = boot_net.forward(next_batch);
    nt::Tensor q_next_online;
    const bool use_double = opts.double_dqn && target != nullptr;
    if (use_double) {
      net->set_training(false);
      q_next_online = net->forward(next_batch);
    }
    std::vector<double> targets;
    for (int b = 0; b < opts.batch_size; ++b) {
      const Transition* tr_ptr = batch[static_cast<std::size_t>(b)];
      const float* selector =
          (use_double ? q_next_online.data() : q_next.data()) +
          static_cast<std::size_t>(b) * num_actions;
      const int best = masked_argmax(selector, tr_ptr->next_mask);
      const double boot =
          best >= 0
              ? q_next[static_cast<std::size_t>(b) * num_actions + best]
              : 0.0;
      targets.push_back(tr_ptr->reward + opts.gamma * boot);
    }

    std::vector<ct::CompressorTree> states;
    for (const Transition* tr_ptr : batch) states.push_back(tr_ptr->state);
    net->set_training(true);
    net->zero_grad();
    const nt::Tensor q = net->forward(encode_batch(states, env.stage_pad()));
    nt::Tensor grad(q.shape());
    for (int b = 0; b < opts.batch_size; ++b) {
      const Transition* tr_ptr = batch[static_cast<std::size_t>(b)];
      const std::size_t idx =
          static_cast<std::size_t>(b) * num_actions + tr_ptr->action;
      grad[idx] = static_cast<float>(
          2.0 * (q[idx] - targets[static_cast<std::size_t>(b)]) /
          opts.batch_size);
    }
    net->backward(grad);
    optim.clip_grad_norm(opts.grad_clip);
    optim.step();
    ++updates;
    if (target && opts.target_sync > 0 && updates % opts.target_sync == 0) {
      sync_target();
    }
  }

  result.eda_calls = evaluator.num_unique_evaluations();
  result.network = net;
  return result;
}

TrainResult greedy_rollout(synth::DesignEvaluator& evaluator,
                           nn::ResNet& net, int steps,
                           const EnvConfig& cfg) {
  MultiplierEnv env(evaluator, cfg);
  net.set_training(false);
  TrainResult result;
  result.best_tree = env.best_tree();
  result.best_cost = env.best_cost();
  for (int t = 0; t < steps; ++t) {
    const auto mask = env.mask();
    const nt::Tensor q = net.forward(env.observe());
    const int action = masked_argmax(q.data(), mask);
    if (action < 0) break;
    const auto step = env.step(action);
    result.trajectory.push_back(step.cost);
    if (env.best_cost() < result.best_cost) {
      result.best_cost = env.best_cost();
      result.best_tree = env.best_tree();
    }
    result.best_trajectory.push_back(result.best_cost);
  }
  result.eda_calls = evaluator.num_unique_evaluations();
  return result;
}

}  // namespace rlmul::rl
