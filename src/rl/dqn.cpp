#include "rl/dqn.hpp"

#include <limits>

#include "rl/env_pool.hpp"

namespace rlmul::rl {

void ReplayBuffer::push(Transition t) {
  if (data_.size() < capacity_) {
    data_.push_back(std::move(t));
  } else {
    data_[next_] = std::move(t);
    next_ = (next_ + 1) % capacity_;
  }
}

const Transition& ReplayBuffer::sample(util::Rng& rng) const {
  return data_[rng.next_below(data_.size())];
}

void ReplayBuffer::restore(std::vector<Transition> data, std::size_t next) {
  data_ = std::move(data);
  next_ = next;
}

std::unique_ptr<nn::ResNet> make_agent_net(AgentNet kind, int num_actions,
                                           util::Rng& rng) {
  return make_agent_net(kind, kStateChannels, num_actions, rng);
}

std::unique_ptr<nn::ResNet> make_agent_net(AgentNet kind, int channels,
                                           int num_actions, util::Rng& rng) {
  const nn::ResNetConfig cfg =
      kind == AgentNet::kResNet18
          ? nn::resnet18_config(channels, num_actions)
          : nn::resnet_tiny_config(channels, num_actions);
  return std::make_unique<nn::ResNet>(cfg, rng);
}

int masked_argmax(const float* q, const std::vector<std::uint8_t>& mask) {
  int best = -1;
  float best_q = -std::numeric_limits<float>::infinity();
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i] != 0 && q[i] > best_q) {
      best_q = q[i];
      best = static_cast<int>(i);
    }
  }
  return best;
}

TrainResult greedy_rollout(synth::DesignEvaluator& evaluator,
                           nn::ResNet& net, int steps,
                           const EnvConfig& cfg) {
  EnvPool pool(evaluator, cfg, 1);
  net.set_training(false);
  TrainResult result;
  result.best_tree = pool.env(0).best_tree();
  result.best_cost = pool.env(0).best_cost();
  for (int t = 0; t < steps; ++t) {
    const auto mask = pool.env(0).mask();
    const nt::Tensor q = net.forward(pool.observe_batch());
    const int action = masked_argmax(q.data(), mask);
    if (action < 0) break;
    const auto out = pool.step_all({action});
    result.trajectory.push_back(out[0].cost);
    if (pool.env(0).best_cost() < result.best_cost) {
      result.best_cost = pool.env(0).best_cost();
      result.best_tree = pool.env(0).best_tree();
    }
    result.best_trajectory.push_back(result.best_cost);
  }
  result.eda_calls = evaluator.num_unique_evaluations();
  return result;
}

}  // namespace rlmul::rl
