#include "rl/env_pool.hpp"

#include <future>
#include <stdexcept>

namespace rlmul::rl {

EnvPool::EnvPool(synth::DesignEvaluator& evaluator, const EnvConfig& cfg,
                 int num_envs)
    : evaluator_(evaluator), pool_(num_envs) {
  if (num_envs < 1) throw std::invalid_argument("EnvPool: num_envs < 1");
  for (int i = 0; i < num_envs; ++i) {
    envs_.push_back(std::make_unique<MultiplierEnv>(evaluator, cfg));
  }
}

void EnvPool::reset_all() {
  for (auto& env : envs_) env->reset();
}

std::vector<ct::CompressorTree> EnvPool::trees() const {
  std::vector<ct::CompressorTree> out;
  out.reserve(envs_.size());
  for (const auto& env : envs_) out.push_back(env->tree());
  return out;
}

std::vector<ppg::DesignPoint> EnvPool::points() const {
  std::vector<ppg::DesignPoint> out;
  out.reserve(envs_.size());
  for (const auto& env : envs_) out.push_back(env->point());
  return out;
}

nt::Tensor EnvPool::observe_batch() const {
  const MultiplierEnv& front = *envs_.front();
  if (!front.joint_search()) return encode_batch(trees(), stage_pad());
  return encode_point_batch(points(), stage_pad(), front.searches_cpa(),
                            front.searches_ppg());
}

std::vector<std::vector<std::uint8_t>> EnvPool::masks() const {
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(envs_.size());
  for (const auto& env : envs_) out.push_back(env->mask());
  return out;
}

std::vector<EnvPool::StepOutcome> EnvPool::step_all(
    const std::vector<int>& actions) {
  if (actions.size() != envs_.size()) {
    throw std::invalid_argument("EnvPool::step_all: action count mismatch");
  }
  if (evaluator_.batch() > 1) {
    // Prefetch: evaluate every post-action state as one coalesced
    // batch before the env tasks run. The tasks then resolve from the
    // cache, so rewards and env trajectories are unchanged — the
    // synthesis just happened in shared sweeps instead of N separate
    // drains racing on the evaluator queue. (With batching off, each
    // env task instead evaluates through step()'s parent hint, so the
    // pool's concurrent children delta off their retained parents.)
    std::vector<ct::CompressorTree> next;
    next.reserve(envs_.size());
    for (std::size_t e = 0; e < envs_.size(); ++e) {
      if (actions[e] < 0) continue;  // reset, no evaluation needed
      // Joint-search envs evaluate full design points (pinned CPA /
      // non-default PPG), which take the per-point evaluation path —
      // a plain-tree prefetch would warm the wrong cache key.
      if (envs_[e]->joint_search()) continue;
      const ct::Action action = ct::action_from_index(actions[e]);
      if (!ct::action_applicable(envs_[e]->tree(), action)) continue;
      next.push_back(ct::apply_action(envs_[e]->tree(), action));
    }
    if (!next.empty()) evaluator_.evaluate_batch(next);
  }
  std::vector<std::future<StepOutcome>> futs;
  futs.reserve(envs_.size());
  for (std::size_t e = 0; e < envs_.size(); ++e) {
    MultiplierEnv* env = envs_[e].get();
    const int action = actions[e];
    futs.push_back(pool_.submit([env, action]() {
      StepOutcome out;
      if (action >= 0) {
        const auto sr = env->step(action);
        out.reward = sr.reward;
        out.cost = sr.cost;
        out.stepped = true;
      } else {
        env->reset();  // dead end under pruning
        out.cost = env->current_cost();
      }
      return out;
    }));
  }
  std::vector<StepOutcome> out;
  out.reserve(envs_.size());
  for (auto& f : futs) out.push_back(f.get());
  return out;
}

}  // namespace rlmul::rl
