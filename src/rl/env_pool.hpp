#pragma once
// A pool of parallel environments sharing one reward oracle. Owns N
// MultiplierEnvs plus a small *persistent* worker pool that steps them
// concurrently — replacing the per-rollout-step std::thread spawn/join
// the A2C trainer used to pay. DQN and greedy_rollout run on a pool of
// one so every agent observes and steps through the same code path.
//
// The workers are private, not util::ThreadPool::shared(): an env step
// calls DesignEvaluator::evaluate, which fans the per-target sizings
// out to the shared pool and blocks on their futures. Nesting the env
// step itself onto that pool would stack two blocking levels and can
// deadlock a one-worker (CI) configuration; two distinct pools keep
// each strictly one level deep.
//
// Concurrency invariant (no mutex, by construction): step_all submits
// exactly one task per environment, so each MultiplierEnv has a single
// writer at any time; cross-env state lives behind the evaluator's own
// lock. Between step_all calls the caller is the only thread touching
// the envs — observe_batch/masks/trees must not overlap a step_all.

#include <cstdint>
#include <memory>
#include <vector>

#include "rl/env.hpp"
#include "util/thread_pool.hpp"

namespace rlmul::rl {

class EnvPool {
 public:
  EnvPool(synth::DesignEvaluator& evaluator, const EnvConfig& cfg,
          int num_envs);

  int size() const { return static_cast<int>(envs_.size()); }
  MultiplierEnv& env(int i) { return *envs_[static_cast<std::size_t>(i)]; }
  const MultiplierEnv& env(int i) const {
    return *envs_[static_cast<std::size_t>(i)];
  }

  int num_actions() const { return envs_.front()->num_actions(); }
  int stage_pad() const { return envs_.front()->stage_pad(); }

  void reset_all();

  /// Current states of all environments, in pool order.
  std::vector<ct::CompressorTree> trees() const;
  std::vector<ppg::DesignPoint> points() const;

  /// One slab [N, C, columns, stage_pad] over all current states —
  /// identical to encode_batch(trees(), stage_pad()) when the pool's
  /// envs are not joint-searching, and to encode_point_batch otherwise
  /// (C = env(0).num_channels()).
  nt::Tensor observe_batch() const;

  /// Legality masks of all environments, in pool order.
  std::vector<std::vector<std::uint8_t>> masks() const;

  struct StepOutcome {
    double reward = 0.0;
    double cost = 0.0;     ///< cost of the post-step (or post-reset) state
    bool stepped = false;  ///< false when the env was reset instead
  };

  /// Steps env i with actions[i]; a negative action resets that env
  /// (the dead-end convention of the trainers). All envs advance
  /// concurrently on the persistent workers; outcomes are gathered in
  /// pool order, so results are independent of scheduling. When the
  /// evaluator batches, the post-action trees are submitted up front
  /// as one evaluate_batch — one coalesced sweep warms the cache the
  /// env steps then hit, instead of N racing drains.
  std::vector<StepOutcome> step_all(const std::vector<int>& actions);

 private:
  synth::DesignEvaluator& evaluator_;
  std::vector<std::unique_ptr<MultiplierEnv>> envs_;
  util::ThreadPool pool_;
};

}  // namespace rlmul::rl
