#pragma once
// RL-MUL-E: synchronous advantage actor-critic with parallel
// environment threads (Section IV-A, Algorithm 4). The policy and value
// heads share the ResNet trunk; actions are sampled from the masked
// policy (Equations 13-15); updates use n-step returns (five-step in
// the paper) with the TD targets of Equations (16)-(19).

#include <cstdint>

#include "rl/dqn.hpp"  // AgentNet, TrainResult
#include "synth/evaluator.hpp"

namespace rlmul::rl {

struct A2cOptions {
  int steps = 300;          ///< environment steps per thread
  int num_threads = 4;      ///< paper: four synchronous workers
  int n_step = 5;           ///< paper: five-step return
  double gamma = 0.8;
  double lr = 1e-3;
  double value_coef = 0.5;
  double entropy_coef = 0.01;
  double grad_clip = 5.0;
  AgentNet net = AgentNet::kTiny;
  double w_area = 1.0;
  double w_delay = 1.0;
  int max_stages = -1;
  bool enable_42 = false;   ///< 4:2 compressor extension actions
  int episode_length = 0;   ///< reset each worker every k steps; 0 = never
  bool verbose = false;     ///< print per-rollout progress to stderr
  std::uint64_t seed = 1;
};

/// Runs the A2C search to completion. Thin wrapper (defined in
/// src/search) over search::A2cMethod + search::Driver; produces the
/// same trajectory the historical hand-rolled loop did at a fixed seed.
TrainResult train_a2c(synth::DesignEvaluator& evaluator,
                      const A2cOptions& opts);

/// Masked softmax shared with the tests: illegal entries get zero
/// probability; legal entries are a softmax over their logits.
/// Returns all-zeros when no action is legal; degenerates to uniform
/// over the legal actions when the exponentials sum to zero or NaN
/// (extreme logits), never dividing by zero.
std::vector<double> masked_softmax(const float* logits,
                                   const std::vector<std::uint8_t>& mask);

}  // namespace rlmul::rl
