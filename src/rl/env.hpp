#pragma once
// The RL environment of Fig 3: states are compressor trees, actions are
// the 8N column modifications of Section III-D, the reward is the
// multi-constraint synthesis cost improvement of Section III-E, and the
// observation is the K x 2N x ST tensor encoding of Section III-B.

#include <cstdint>
#include <vector>

#include "ct/compressor_tree.hpp"
#include "nt/tensor.hpp"
#include "ppg/ppg.hpp"
#include "synth/evaluator.hpp"

namespace rlmul::rl {

/// Channels of the tensor encoding: K = 3 compressor kinds
/// (3:2, 2:2, 4:2 — the third is all-zero unless the 4:2 extension is
/// enabled, keeping one network shape for both modes).
constexpr int kStateChannels = 3;

/// Encodes a tree as the paper's tensor representation, padded/clipped
/// to `stage_pad` stages: channel 0 = 3:2 counts, channel 1 = 2:2
/// counts, channel 2 = 4:2 counts; laid out [1, K, columns, stage_pad].
nt::Tensor encode_tree(const ct::CompressorTree& tree, int stage_pad);

/// Stacks per-tree encodings into one batch tensor. All trees must
/// share the same column count (one slab layout per batch); mixed
/// widths throw std::invalid_argument instead of silently corrupting
/// the slab.
nt::Tensor encode_batch(const std::vector<ct::CompressorTree>& trees,
                        int stage_pad);

/// Joint-search encoding: the tree slab plus, when requested, a prefix
/// level-map channel (output_levels of the pinned CPA graph at stage
/// slot 0; all-zero for unpinned points) and a PPG-family channel (a
/// constant plane holding the family's kAllPpgKinds index). With both
/// flags off this is byte-identical to encode_tree(point.tree, ...).
nt::Tensor encode_point(const ppg::DesignPoint& point, int stage_pad,
                        bool with_cpa, bool with_ppg);
nt::Tensor encode_point_batch(const std::vector<ppg::DesignPoint>& points,
                              int stage_pad, bool with_cpa, bool with_ppg);

struct EnvConfig {
  double w_area = 1.0;
  double w_delay = 1.0;
  /// Stage-count pruning bound (Section IV-C); <0 derives
  /// wallace_stages + 2 from the initial design.
  int max_stages = -1;
  /// Stage depth of the observation tensor; <0 matches max_stages.
  int stage_pad = -1;
  /// Unmask the 4:2 fuse/split extension actions.
  bool enable_42 = false;
  /// Joint-search extensions (off by default — the paper's action space
  /// and observation shape are the defaults). search_cpa pins the CPA
  /// to a mutable prefix graph (starting serial/ripple) and appends
  /// prefix_levels * columns matrix-toggle actions plus a prefix
  /// level-map observation channel. search_ppg appends one action per
  /// PPG family plus a constant family-index channel.
  bool search_cpa = false;
  bool search_ppg = false;
  /// Rows of the prefix toggle matrix exposed as actions (levels 1..
  /// prefix_levels of the Sklansky-bounded matrix; level 0 is fixed).
  int prefix_levels = 4;
  /// Non-empty: the state reset() restores instead of the Wallace
  /// initial design (warm start from a stored record). Must have been
  /// built against the same spec (pp heights are checked). Stage
  /// pruning bounds are still derived from the Wallace design so a
  /// warm start never tightens or loosens the action space.
  ct::CompressorTree initial;
};

class MultiplierEnv {
 public:
  MultiplierEnv(synth::DesignEvaluator& evaluator, const EnvConfig& cfg);

  void reset();

  const ct::CompressorTree& tree() const { return point_.tree; }
  const ppg::DesignPoint& point() const { return point_; }
  double current_cost() const { return cost_; }
  int num_actions() const;
  /// Count of the paper's compressor-tree actions — the joint-search
  /// extension blocks (prefix toggles, PPG switches) index from here.
  int num_ct_actions() const;
  int max_stages() const { return max_stages_; }
  int stage_pad() const { return stage_pad_; }

  bool searches_cpa() const { return cfg_.search_cpa; }
  bool searches_ppg() const { return cfg_.search_ppg; }
  bool joint_search() const { return cfg_.search_cpa || cfg_.search_ppg; }
  /// Observation channel count: kStateChannels plus one per enabled
  /// joint-search dimension.
  int num_channels() const {
    return kStateChannels + (cfg_.search_cpa ? 1 : 0) +
           (cfg_.search_ppg ? 1 : 0);
  }

  /// Legality mask (stage pruning applied). Prefix-toggle actions are
  /// always legal (legalize repairs any matrix); the PPG action for the
  /// current family is masked off.
  std::vector<std::uint8_t> mask() const;

  nt::Tensor observe() const {
    return encode_point(point_, stage_pad_, cfg_.search_cpa, cfg_.search_ppg);
  }

  struct StepResult {
    double reward = 0.0;  ///< cost_t - cost_{t+1} (Equation 10)
    double cost = 0.0;    ///< cost of the new state
  };
  StepResult step(int action_index);

  /// Best design visited by this environment instance.
  const ct::CompressorTree& best_tree() const { return best_point_.tree; }
  const ppg::DesignPoint& best_point() const { return best_point_; }
  double best_cost() const { return best_cost_; }

  /// Full mutable state (checkpoint/resume). Costs are stored rather
  /// than recomputed so a restored environment never consumes EDA
  /// budget or diverges from the saved run.
  struct State {
    ppg::DesignPoint point;
    double cost = 0.0;
    ppg::DesignPoint best_point;
    double best_cost = 0.0;
  };
  State state() const { return {point_, cost_, best_point_, best_cost_}; }
  void restore(const State& st);

 private:
  /// `hint` names the state the point was derived from (its evaluation
  /// key) so the evaluator can synthesize it as a delta off the
  /// retained parent; empty on reset/scratch evaluations.
  double cost_of(const ppg::DesignPoint& point,
                 const synth::ParentHint& hint = {});

  synth::DesignEvaluator& evaluator_;
  EnvConfig cfg_;
  int max_stages_ = 0;
  int stage_pad_ = 0;
  ppg::DesignPoint point_;
  double cost_ = 0.0;
  ppg::DesignPoint best_point_;
  double best_cost_ = 0.0;
};

}  // namespace rlmul::rl
