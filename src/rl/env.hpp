#pragma once
// The RL environment of Fig 3: states are compressor trees, actions are
// the 8N column modifications of Section III-D, the reward is the
// multi-constraint synthesis cost improvement of Section III-E, and the
// observation is the K x 2N x ST tensor encoding of Section III-B.

#include <cstdint>
#include <vector>

#include "ct/compressor_tree.hpp"
#include "nt/tensor.hpp"
#include "synth/evaluator.hpp"

namespace rlmul::rl {

/// Channels of the tensor encoding: K = 3 compressor kinds
/// (3:2, 2:2, 4:2 — the third is all-zero unless the 4:2 extension is
/// enabled, keeping one network shape for both modes).
constexpr int kStateChannels = 3;

/// Encodes a tree as the paper's tensor representation, padded/clipped
/// to `stage_pad` stages: channel 0 = 3:2 counts, channel 1 = 2:2
/// counts, channel 2 = 4:2 counts; laid out [1, K, columns, stage_pad].
nt::Tensor encode_tree(const ct::CompressorTree& tree, int stage_pad);

/// Stacks per-tree encodings into one batch tensor. All trees must
/// share the same column count (one slab layout per batch); mixed
/// widths throw std::invalid_argument instead of silently corrupting
/// the slab.
nt::Tensor encode_batch(const std::vector<ct::CompressorTree>& trees,
                        int stage_pad);

struct EnvConfig {
  double w_area = 1.0;
  double w_delay = 1.0;
  /// Stage-count pruning bound (Section IV-C); <0 derives
  /// wallace_stages + 2 from the initial design.
  int max_stages = -1;
  /// Stage depth of the observation tensor; <0 matches max_stages.
  int stage_pad = -1;
  /// Unmask the 4:2 fuse/split extension actions.
  bool enable_42 = false;
  /// Non-empty: the state reset() restores instead of the Wallace
  /// initial design (warm start from a stored record). Must have been
  /// built against the same spec (pp heights are checked). Stage
  /// pruning bounds are still derived from the Wallace design so a
  /// warm start never tightens or loosens the action space.
  ct::CompressorTree initial;
};

class MultiplierEnv {
 public:
  MultiplierEnv(synth::DesignEvaluator& evaluator, const EnvConfig& cfg);

  void reset();

  const ct::CompressorTree& tree() const { return tree_; }
  double current_cost() const { return cost_; }
  int num_actions() const;
  int max_stages() const { return max_stages_; }
  int stage_pad() const { return stage_pad_; }

  /// Legality mask (stage pruning applied).
  std::vector<std::uint8_t> mask() const;

  nt::Tensor observe() const { return encode_tree(tree_, stage_pad_); }

  struct StepResult {
    double reward = 0.0;  ///< cost_t - cost_{t+1} (Equation 10)
    double cost = 0.0;    ///< cost of the new state
  };
  StepResult step(int action_index);

  /// Best design visited by this environment instance.
  const ct::CompressorTree& best_tree() const { return best_tree_; }
  double best_cost() const { return best_cost_; }

  /// Full mutable state (checkpoint/resume). Costs are stored rather
  /// than recomputed so a restored environment never consumes EDA
  /// budget or diverges from the saved run.
  struct State {
    ct::CompressorTree tree;
    double cost = 0.0;
    ct::CompressorTree best_tree;
    double best_cost = 0.0;
  };
  State state() const { return {tree_, cost_, best_tree_, best_cost_}; }
  void restore(const State& st);

 private:
  double cost_of(const ct::CompressorTree& tree);

  synth::DesignEvaluator& evaluator_;
  EnvConfig cfg_;
  int max_stages_ = 0;
  int stage_pad_ = 0;
  ct::CompressorTree tree_;
  double cost_ = 0.0;
  ct::CompressorTree best_tree_;
  double best_cost_ = 0.0;
};

}  // namespace rlmul::rl
