#include "rl/a2c.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rlmul::rl {

std::vector<double> masked_softmax(const float* logits,
                                   const std::vector<std::uint8_t>& mask) {
  std::vector<double> probs(mask.size(), 0.0);
  double max_logit = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i] != 0) {
      any = true;
      max_logit = std::max(max_logit, static_cast<double>(logits[i]));
    }
  }
  if (!any) return probs;
  double total = 0.0;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i] != 0) {
      probs[i] = std::exp(static_cast<double>(logits[i]) - max_logit);
      total += probs[i];
    }
  }
  if (!(total > 0.0)) {
    // Degenerate logits (e.g. all -inf, where exp(-inf - -inf) is NaN):
    // fall back to a uniform distribution over the legal actions rather
    // than dividing by zero and emitting NaNs into action sampling.
    double legal = 0.0;
    for (std::uint8_t m : mask) legal += m != 0 ? 1.0 : 0.0;
    for (std::size_t i = 0; i < mask.size(); ++i) {
      probs[i] = mask[i] != 0 ? 1.0 / legal : 0.0;
    }
    return probs;
  }
  for (double& p : probs) p /= total;
  return probs;
}

}  // namespace rlmul::rl
