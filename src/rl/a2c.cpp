#include "rl/a2c.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <thread>

#include "nn/optim.hpp"
#include "util/stats.hpp"

namespace rlmul::rl {

std::vector<double> masked_softmax(const float* logits,
                                   const std::vector<std::uint8_t>& mask) {
  std::vector<double> probs(mask.size(), 0.0);
  double max_logit = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i] != 0) {
      any = true;
      max_logit = std::max(max_logit, static_cast<double>(logits[i]));
    }
  }
  if (!any) return probs;
  double total = 0.0;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i] != 0) {
      probs[i] = std::exp(static_cast<double>(logits[i]) - max_logit);
      total += probs[i];
    }
  }
  for (double& p : probs) p /= total;
  return probs;
}

namespace {

struct Sample {
  ct::CompressorTree state;
  std::vector<std::uint8_t> mask;
  int action = -1;  ///< -1 = skip (env was reset on a dead end)
  double reward = 0.0;
  int env = 0;
};

}  // namespace

TrainResult train_a2c(synth::DesignEvaluator& evaluator,
                      const A2cOptions& opts) {
  util::Rng rng(opts.seed);
  EnvConfig env_cfg;
  env_cfg.w_area = opts.w_area;
  env_cfg.w_delay = opts.w_delay;
  env_cfg.max_stages = opts.max_stages;
  env_cfg.enable_42 = opts.enable_42;

  std::vector<std::unique_ptr<MultiplierEnv>> envs;
  for (int i = 0; i < opts.num_threads; ++i) {
    envs.push_back(std::make_unique<MultiplierEnv>(evaluator, env_cfg));
  }
  const int num_actions = envs.front()->num_actions();
  const int stage_pad = envs.front()->stage_pad();

  std::shared_ptr<nn::ResNet> trunk =
      make_agent_net(opts.net, num_actions, rng);
  nn::Linear policy_head(trunk->feature_dim(), num_actions, rng);
  nn::Linear value_head(trunk->feature_dim(), 1, rng);

  std::vector<nn::Param*> params = trunk->params();
  for (nn::Param* p : policy_head.params()) params.push_back(p);
  for (nn::Param* p : value_head.params()) params.push_back(p);
  nn::RmsProp optim(params, opts.lr);

  TrainResult result;
  result.best_tree = envs.front()->best_tree();
  result.best_cost = envs.front()->best_cost();

  auto record = [&](double mean_cost) {
    result.trajectory.push_back(mean_cost);
    for (const auto& env : envs) {
      if (env->best_cost() < result.best_cost) {
        result.best_cost = env->best_cost();
        result.best_tree = env->best_tree();
      }
    }
    result.best_trajectory.push_back(result.best_cost);
  };

  int t = 0;
  while (t < opts.steps) {
    // Episode boundaries land on rollout boundaries (t advances in
    // n_step chunks), so a plain modulus check suffices.
    if (opts.episode_length > 0 && t > 0 && t % opts.episode_length == 0) {
      for (auto& env : envs) env->reset();
    }
    const int rollout = std::min(opts.n_step, opts.steps - t);
    std::vector<Sample> samples;
    samples.reserve(static_cast<std::size_t>(rollout) * envs.size());

    for (int k = 0; k < rollout; ++k, ++t) {
      // Batched policy evaluation for all workers.
      std::vector<ct::CompressorTree> trees;
      for (const auto& env : envs) trees.push_back(env->tree());
      trunk->set_training(false);
      policy_head.set_training(false);
      const nt::Tensor feats =
          trunk->forward_features(encode_batch(trees, stage_pad));
      const nt::Tensor logits = policy_head.forward(feats);

      std::vector<int> actions(envs.size(), -1);
      std::vector<Sample> step_samples(envs.size());
      for (std::size_t e = 0; e < envs.size(); ++e) {
        step_samples[e].state = envs[e]->tree();
        step_samples[e].mask = envs[e]->mask();
        step_samples[e].env = static_cast<int>(e);
        const auto probs = masked_softmax(
            logits.data() + e * static_cast<std::size_t>(num_actions),
            step_samples[e].mask);
        const std::size_t pick = rng.sample_discrete(probs);
        if (pick < probs.size()) {
          actions[e] = static_cast<int>(pick);
        }
      }

      // Parallel environment stepping: the synthesis calls dominate and
      // overlap across threads (the point of RL-MUL-E).
      std::vector<double> costs(envs.size(), 0.0);
      std::vector<std::thread> workers;
      for (std::size_t e = 0; e < envs.size(); ++e) {
        workers.emplace_back([&, e]() {
          if (actions[e] >= 0) {
            const auto sr = envs[e]->step(actions[e]);
            step_samples[e].action = actions[e];
            step_samples[e].reward = sr.reward;
            costs[e] = sr.cost;
          } else {
            envs[e]->reset();  // dead end under pruning
            costs[e] = envs[e]->current_cost();
          }
        });
      }
      for (auto& w : workers) w.join();

      record(util::mean(costs));
      for (auto& s : step_samples) samples.push_back(std::move(s));
    }

    // Bootstrap values v(s_{t+n}) per worker.
    std::vector<ct::CompressorTree> boot_trees;
    for (const auto& env : envs) boot_trees.push_back(env->tree());
    trunk->set_training(false);
    value_head.set_training(false);
    const nt::Tensor boot_feats =
        trunk->forward_features(encode_batch(boot_trees, stage_pad));
    const nt::Tensor boot_values = value_head.forward(boot_feats);

    // n-step returns, walking each worker's chain backwards.
    std::vector<double> returns(samples.size(), 0.0);
    for (std::size_t e = 0; e < envs.size(); ++e) {
      double ret = boot_values.at(static_cast<int>(e), 0);
      for (int k = rollout - 1; k >= 0; --k) {
        const std::size_t idx =
            static_cast<std::size_t>(k) * envs.size() + e;
        if (samples[idx].action < 0) {
          ret = 0.0;  // episode boundary (reset): no bootstrap through it
        } else {
          ret = samples[idx].reward + opts.gamma * ret;
        }
        returns[idx] = ret;
      }
    }

    // -- gradient step ------------------------------------------------------
    std::vector<ct::CompressorTree> batch_trees;
    for (const auto& s : samples) batch_trees.push_back(s.state);
    trunk->set_training(true);
    policy_head.set_training(true);
    value_head.set_training(true);
    trunk->zero_grad();
    policy_head.zero_grad();
    value_head.zero_grad();

    const nt::Tensor feats =
        trunk->forward_features(encode_batch(batch_trees, stage_pad));
    const nt::Tensor logits = policy_head.forward(feats);
    const nt::Tensor values = value_head.forward(feats);

    const double inv_n = 1.0 / static_cast<double>(samples.size());
    nt::Tensor grad_logits(logits.shape());
    nt::Tensor grad_values(values.shape());
    for (std::size_t s = 0; s < samples.size(); ++s) {
      if (samples[s].action < 0) continue;
      const auto probs = masked_softmax(
          logits.data() + s * static_cast<std::size_t>(num_actions),
          samples[s].mask);
      const double v = values.at(static_cast<int>(s), 0);
      const double advantage = returns[s] - v;  // Equation (4)

      // Policy gradient (Equation 16): d(-log pi(a) * A)/dlogit_i
      // = A * (pi_i - 1{i == a}) over the masked support, plus the
      // entropy-bonus term.
      double entropy = 0.0;
      for (double p : probs) {
        if (p > 0.0) entropy -= p * std::log(p);
      }
      for (int i = 0; i < num_actions; ++i) {
        const double p = probs[static_cast<std::size_t>(i)];
        if (samples[s].mask[static_cast<std::size_t>(i)] == 0) continue;
        double g = advantage * (p - (i == samples[s].action ? 1.0 : 0.0));
        if (p > 0.0) {
          g += opts.entropy_coef * p * (std::log(p) + entropy);
        }
        grad_logits[s * static_cast<std::size_t>(num_actions) +
                    static_cast<std::size_t>(i)] =
            static_cast<float>(g * inv_n);
      }
      // Value gradient (Equations 18-19): d(delta^2/2)/dv = v - y.
      grad_values.at(static_cast<int>(s), 0) =
          static_cast<float>(opts.value_coef * (v - returns[s]) * inv_n);
    }

    nt::Tensor grad_feats = policy_head.backward(grad_logits);
    const nt::Tensor grad_feats_v = value_head.backward(grad_values);
    for (std::size_t i = 0; i < grad_feats.numel(); ++i) {
      grad_feats[i] += grad_feats_v[i];
    }
    trunk->backward_features(grad_feats);
    optim.clip_grad_norm(opts.grad_clip);
    optim.step();

    if (opts.verbose) {
      std::fprintf(stderr,
                   "[a2c] t=%-5d cost=%.4f best=%.4f eda=%zu\n", t,
                   result.trajectory.empty() ? 0.0
                                             : result.trajectory.back(),
                   result.best_cost, evaluator.num_unique_evaluations());
    }
  }

  result.eda_calls = evaluator.num_unique_evaluations();
  result.network = trunk;
  return result;
}

}  // namespace rlmul::rl
