#pragma once
// Native RL-MUL: deep Q-learning over the tensor encoding (Algorithm 3).
// A ResNet maps the state to 8N Q-values; an epsilon-greedy policy over
// the masked Q-vector (Equations 5-8) drives the environment; the
// network is trained from a replay buffer with the one-step target of
// Equation (11) using RMSProp.

#include <cstdint>
#include <memory>
#include <vector>

#include "ct/compressor_tree.hpp"
#include "nn/resnet.hpp"
#include "rl/env.hpp"
#include "synth/evaluator.hpp"

namespace rlmul::rl {

enum class AgentNet {
  kTiny,      ///< CPU-sized ResNet (default in the benches)
  kResNet18,  ///< the paper's backbone
};

struct DqnOptions {
  int steps = 300;          ///< total environment steps (EDA calls)
  int warmup = 32;          ///< random-policy steps before learning
  int batch_size = 16;
  int buffer_capacity = 4096;
  double gamma = 0.8;       ///< paper setting
  double eps_start = 0.95;  ///< paper setting
  double eps_end = 0.05;
  double lr = 1e-3;
  double grad_clip = 5.0;
  int target_sync = 0;      ///< copy weights every k updates; 0 = none
                            ///< (Equation 11 bootstraps from the same net)
  bool double_dqn = false;  ///< action from the online net, value from the
                            ///< target net (requires target_sync > 0)
  int episode_length = 0;   ///< reset the env every k steps; 0 = never
  AgentNet net = AgentNet::kTiny;
  double w_area = 1.0;
  double w_delay = 1.0;
  int max_stages = -1;
  bool enable_42 = false;  ///< 4:2 compressor extension actions
  std::uint64_t seed = 1;
};

struct TrainResult {
  ct::CompressorTree best_tree;
  double best_cost = 0.0;
  /// Cost of the current state after each step (Fig 12); for parallel
  /// agents this is the mean across workers.
  std::vector<double> trajectory;
  std::vector<double> best_trajectory;
  std::size_t eda_calls = 0;  ///< unique synthesis evaluations consumed
  /// The trained network: the Q-network for DQN, the shared trunk for
  /// A2C. Checkpoint with nn::save_params_file, deploy with
  /// greedy_rollout.
  std::shared_ptr<nn::ResNet> network;
};

/// Runs the DQN search to completion. Thin wrapper (defined in
/// src/search) over search::DqnMethod + search::Driver; produces the
/// same trajectory the historical hand-rolled loop did at a fixed seed.
TrainResult train_dqn(synth::DesignEvaluator& evaluator,
                      const DqnOptions& opts);

/// argmax over legal entries; returns -1 when nothing is legal.
int masked_argmax(const float* q, const std::vector<std::uint8_t>& mask);

/// Replay buffer shared by the tests; stores design points (compact —
/// the CPA graph and PPG tag are empty/default outside joint search)
/// and re-encodes on sampling.
struct Transition {
  ppg::DesignPoint state;
  int action = 0;
  double reward = 0.0;
  ppg::DesignPoint next_state;
  std::vector<std::uint8_t> next_mask;
};

class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity) : capacity_(capacity) {}

  void push(Transition t);
  std::size_t size() const { return data_.size(); }
  const Transition& sample(util::Rng& rng) const;

  /// Checkpoint access: stored transitions in insertion/ring order and
  /// the ring cursor, restorable as a pair.
  const std::vector<Transition>& contents() const { return data_; }
  std::size_t next_index() const { return next_; }
  void restore(std::vector<Transition> data, std::size_t next);

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::vector<Transition> data_;
};

/// Builds the agent network for a spec (8N outputs, kStateChannels
/// input planes — the paper's shape).
std::unique_ptr<nn::ResNet> make_agent_net(AgentNet kind, int num_actions,
                                           util::Rng& rng);

/// Same, with an explicit input-channel count (joint-search envs grow
/// the observation by a CPA and/or PPG plane; see
/// MultiplierEnv::num_channels).
std::unique_ptr<nn::ResNet> make_agent_net(AgentNet kind, int channels,
                                           int num_actions, util::Rng& rng);

/// Deploys a trained Q-network: greedy masked-argmax rollout from the
/// initial state for `steps` actions (no exploration, no learning).
/// Returns the best design encountered.
TrainResult greedy_rollout(synth::DesignEvaluator& evaluator,
                           nn::ResNet& net, int steps,
                           const EnvConfig& cfg = {});

}  // namespace rlmul::rl
