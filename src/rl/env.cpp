#include "rl/env.hpp"

#include <algorithm>
#include <iterator>
#include <stdexcept>

#include "ppg/ppg.hpp"
#include "prefix/prefix_graph.hpp"

namespace rlmul::rl {

namespace {

/// Encodes one tree into a row-major [kStateChannels, cols, stage_pad]
/// slab at `dst` (assumed zeroed). Shared by the single-tree and batch
/// encoders so batching writes each state in place instead of staging
/// it through a per-tree temporary tensor.
void encode_tree_into(const ct::CompressorTree& tree, int stage_pad,
                      float* dst) {
  const ct::StageAssignment sa = ct::assign_stages(tree);
  const int cols = tree.columns();
  auto at = [&](int c, int j, int s) -> float& {
    return dst[(static_cast<std::size_t>(c) * cols + j) * stage_pad + s];
  };
  const int stages = std::min(sa.stages, stage_pad);
  for (int s = 0; s < stages; ++s) {
    for (int j = 0; j < cols; ++j) {
      at(0, j, s) = static_cast<float>(
          sa.t32[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)]);
      at(1, j, s) = static_cast<float>(
          sa.t22[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)]);
      at(2, j, s) = static_cast<float>(
          sa.t42[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)]);
    }
  }
  // Stages beyond the pad (possible only when pruning is off) are
  // folded into the last encoded stage so no compressor goes unseen.
  for (int s = stage_pad; s < sa.stages; ++s) {
    for (int j = 0; j < cols; ++j) {
      at(0, j, stage_pad - 1) += static_cast<float>(
          sa.t32[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)]);
      at(1, j, stage_pad - 1) += static_cast<float>(
          sa.t22[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)]);
      at(2, j, stage_pad - 1) += static_cast<float>(
          sa.t42[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)]);
    }
  }
}

/// Joint-search extra channels, laid out after the tree slab. The CPA
/// channel writes each output's operator depth at stage slot 0 (zero
/// for unpinned points); the PPG channel is a constant plane of the
/// family's enum index, so the network can condition on the family
/// without a separate input head.
void encode_point_into(const ppg::DesignPoint& point, int stage_pad,
                       bool with_cpa, bool with_ppg, float* dst) {
  encode_tree_into(point.tree, stage_pad, dst);
  const int cols = point.tree.columns();
  const std::size_t plane =
      static_cast<std::size_t>(cols) * static_cast<std::size_t>(stage_pad);
  float* extra = dst + static_cast<std::size_t>(kStateChannels) * plane;
  if (with_cpa) {
    if (point.cpa.width != 0) {
      const std::vector<int> levels = prefix::output_levels(point.cpa);
      const int n = std::min<int>(cols, static_cast<int>(levels.size()));
      for (int j = 0; j < n; ++j) {
        extra[static_cast<std::size_t>(j) * stage_pad] =
            static_cast<float>(levels[static_cast<std::size_t>(j)]);
      }
    }
    extra += plane;
  }
  if (with_ppg) {
    const float idx = static_cast<float>(static_cast<int>(point.ppg));
    for (std::size_t i = 0; i < plane; ++i) extra[i] = idx;
  }
}

}  // namespace

nt::Tensor encode_tree(const ct::CompressorTree& tree, int stage_pad) {
  nt::Tensor out({1, kStateChannels, tree.columns(), stage_pad});
  encode_tree_into(tree, stage_pad, out.data());
  return out;
}

nt::Tensor encode_batch(const std::vector<ct::CompressorTree>& trees,
                        int stage_pad) {
  if (trees.empty()) throw std::invalid_argument("encode_batch: empty");
  const int cols = trees.front().columns();
  for (std::size_t b = 1; b < trees.size(); ++b) {
    if (trees[b].columns() != cols) {
      throw std::invalid_argument(
          "encode_batch: mixed column widths (" + std::to_string(cols) +
          " vs " + std::to_string(trees[b].columns()) + " at index " +
          std::to_string(b) + ")");
    }
  }
  nt::Tensor out(
      {static_cast<int>(trees.size()), kStateChannels, cols, stage_pad});
  const std::size_t plane = static_cast<std::size_t>(kStateChannels) * cols *
                            static_cast<std::size_t>(stage_pad);
  for (std::size_t b = 0; b < trees.size(); ++b) {
    encode_tree_into(trees[b], stage_pad, out.data() + b * plane);
  }
  return out;
}

nt::Tensor encode_point(const ppg::DesignPoint& point, int stage_pad,
                        bool with_cpa, bool with_ppg) {
  const int channels =
      kStateChannels + (with_cpa ? 1 : 0) + (with_ppg ? 1 : 0);
  nt::Tensor out({1, channels, point.tree.columns(), stage_pad});
  encode_point_into(point, stage_pad, with_cpa, with_ppg, out.data());
  return out;
}

nt::Tensor encode_point_batch(const std::vector<ppg::DesignPoint>& points,
                              int stage_pad, bool with_cpa, bool with_ppg) {
  if (points.empty()) throw std::invalid_argument("encode_point_batch: empty");
  const int cols = points.front().tree.columns();
  for (std::size_t b = 1; b < points.size(); ++b) {
    if (points[b].tree.columns() != cols) {
      throw std::invalid_argument(
          "encode_point_batch: mixed column widths (" + std::to_string(cols) +
          " vs " + std::to_string(points[b].tree.columns()) + " at index " +
          std::to_string(b) + ")");
    }
  }
  const int channels =
      kStateChannels + (with_cpa ? 1 : 0) + (with_ppg ? 1 : 0);
  nt::Tensor out(
      {static_cast<int>(points.size()), channels, cols, stage_pad});
  const std::size_t plane = static_cast<std::size_t>(channels) * cols *
                            static_cast<std::size_t>(stage_pad);
  for (std::size_t b = 0; b < points.size(); ++b) {
    encode_point_into(points[b], stage_pad, with_cpa, with_ppg,
                      out.data() + b * plane);
  }
  return out;
}

MultiplierEnv::MultiplierEnv(synth::DesignEvaluator& evaluator,
                             const EnvConfig& cfg)
    : evaluator_(evaluator), cfg_(cfg) {
  const ct::CompressorTree initial = ppg::initial_tree(evaluator_.spec());
  max_stages_ =
      cfg_.max_stages >= 0 ? cfg_.max_stages : ct::stage_count(initial) + 2;
  // Observation depth: enough stages to see the pruning envelope, but
  // never an unbounded tensor when pruning is off (deep stages fold
  // into the last plane, see encode_tree).
  stage_pad_ = cfg_.stage_pad >= 0
                   ? cfg_.stage_pad
                   : std::min(max_stages_, ct::stage_count(initial) + 4);
  if (stage_pad_ < 1) stage_pad_ = 1;
  if (cfg_.prefix_levels < 1) cfg_.prefix_levels = 1;
  if (!cfg_.initial.pp.empty() && cfg_.initial.pp != initial.pp) {
    throw std::invalid_argument(
        "MultiplierEnv: warm-start tree was built for a different spec "
        "(pp heights mismatch)");
  }
  reset();
}

void MultiplierEnv::reset() {
  point_.ppg = evaluator_.spec().ppg;
  point_.tree = cfg_.initial.pp.empty() ? ppg::initial_tree(evaluator_.spec())
                                        : cfg_.initial;
  // The CPA dimension starts at the serial chain — the cheapest named
  // point — so the first prefix toggles always have room to improve
  // delay, mirroring how the tree starts at the legal Wallace design.
  point_.cpa = cfg_.search_cpa
                   ? prefix::serial(evaluator_.spec().columns())
                   : prefix::PrefixGraph{};
  cost_ = cost_of(point_);
  best_point_ = point_;
  best_cost_ = cost_;
}

int MultiplierEnv::num_ct_actions() const {
  return point_.tree.columns() * ct::kActionsPerColumn;
}

int MultiplierEnv::num_actions() const {
  int n = num_ct_actions();
  if (cfg_.search_cpa) n += cfg_.prefix_levels * point_.tree.columns();
  if (cfg_.search_ppg) n += static_cast<int>(std::size(ppg::kAllPpgKinds));
  return n;
}

std::vector<std::uint8_t> MultiplierEnv::mask() const {
  std::vector<std::uint8_t> m =
      ct::legal_action_mask(point_.tree, max_stages_, cfg_.enable_42);
  if (cfg_.search_cpa) {
    // Every toggle is legal: legalize repairs whatever the move breaks.
    m.insert(m.end(),
             static_cast<std::size_t>(cfg_.prefix_levels) *
                 static_cast<std::size_t>(point_.tree.columns()),
             std::uint8_t{1});
  }
  if (cfg_.search_ppg) {
    for (const ppg::PpgKind kind : ppg::kAllPpgKinds) {
      m.push_back(kind == point_.ppg ? std::uint8_t{0} : std::uint8_t{1});
    }
  }
  return m;
}

MultiplierEnv::StepResult MultiplierEnv::step(int action_index) {
  // The pre-move state is the new state's delta parent: one action
  // separates them, which is exactly the trajectory shape the
  // evaluator's parent LRU retains states for.
  synth::ParentHint parent{point_.key(evaluator_.spec())};
  const int base = num_ct_actions();
  const int width = point_.tree.columns();
  const int prefix_actions = cfg_.search_cpa ? cfg_.prefix_levels * width : 0;
  if (action_index < base) {
    const ct::Action action = ct::action_from_index(action_index);
    if (!ct::action_applicable(point_.tree, action)) {
      throw std::invalid_argument("MultiplierEnv::step: illegal action");
    }
    point_.tree = ct::apply_action(point_.tree, action);
  } else if (action_index < base + prefix_actions) {
    const int idx = action_index - base;
    prefix::Matrix m = prefix::matrix_of(point_.cpa);
    prefix::Move mv;
    mv.level = idx / width;
    mv.bit = idx % width;
    mv.kind = m.at(mv.level, mv.bit) ? prefix::MoveKind::kRemoveNode
                                     : prefix::MoveKind::kAddNode;
    point_.cpa = prefix::legalize(prefix::apply_move(std::move(m), mv)).graph;
  } else if (cfg_.search_ppg &&
             action_index <
                 base + prefix_actions +
                     static_cast<int>(std::size(ppg::kAllPpgKinds))) {
    const ppg::PpgKind kind =
        ppg::kAllPpgKinds[static_cast<std::size_t>(action_index - base -
                                                   prefix_actions)];
    if (kind == point_.ppg) {
      throw std::invalid_argument(
          "MultiplierEnv::step: PPG switch to the current family");
    }
    point_.ppg = kind;
    point_.tree =
        ppg::retarget_tree(point_.tree, point_.resolved_spec(evaluator_.spec()));
  } else {
    throw std::invalid_argument("MultiplierEnv::step: illegal action");
  }
  const double new_cost = cost_of(point_, parent);
  StepResult out;
  out.reward = cost_ - new_cost;  // Equation (10)
  out.cost = new_cost;
  cost_ = new_cost;
  if (new_cost < best_cost_) {
    best_cost_ = new_cost;
    best_point_ = point_;
  }
  return out;
}

void MultiplierEnv::restore(const State& st) {
  point_ = st.point;
  cost_ = st.cost;
  best_point_ = st.best_point;
  best_cost_ = st.best_cost;
}

double MultiplierEnv::cost_of(const ppg::DesignPoint& point,
                              const synth::ParentHint& hint) {
  return evaluator_.cost(evaluator_.evaluate(point, hint), cfg_.w_area,
                         cfg_.w_delay);
}

}  // namespace rlmul::rl
