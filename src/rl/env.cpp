#include "rl/env.hpp"

#include <algorithm>
#include <stdexcept>

#include "ppg/ppg.hpp"

namespace rlmul::rl {

namespace {

/// Encodes one tree into a row-major [kStateChannels, cols, stage_pad]
/// slab at `dst` (assumed zeroed). Shared by the single-tree and batch
/// encoders so batching writes each state in place instead of staging
/// it through a per-tree temporary tensor.
void encode_tree_into(const ct::CompressorTree& tree, int stage_pad,
                      float* dst) {
  const ct::StageAssignment sa = ct::assign_stages(tree);
  const int cols = tree.columns();
  auto at = [&](int c, int j, int s) -> float& {
    return dst[(static_cast<std::size_t>(c) * cols + j) * stage_pad + s];
  };
  const int stages = std::min(sa.stages, stage_pad);
  for (int s = 0; s < stages; ++s) {
    for (int j = 0; j < cols; ++j) {
      at(0, j, s) = static_cast<float>(
          sa.t32[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)]);
      at(1, j, s) = static_cast<float>(
          sa.t22[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)]);
      at(2, j, s) = static_cast<float>(
          sa.t42[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)]);
    }
  }
  // Stages beyond the pad (possible only when pruning is off) are
  // folded into the last encoded stage so no compressor goes unseen.
  for (int s = stage_pad; s < sa.stages; ++s) {
    for (int j = 0; j < cols; ++j) {
      at(0, j, stage_pad - 1) += static_cast<float>(
          sa.t32[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)]);
      at(1, j, stage_pad - 1) += static_cast<float>(
          sa.t22[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)]);
      at(2, j, stage_pad - 1) += static_cast<float>(
          sa.t42[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)]);
    }
  }
}

}  // namespace

nt::Tensor encode_tree(const ct::CompressorTree& tree, int stage_pad) {
  nt::Tensor out({1, kStateChannels, tree.columns(), stage_pad});
  encode_tree_into(tree, stage_pad, out.data());
  return out;
}

nt::Tensor encode_batch(const std::vector<ct::CompressorTree>& trees,
                        int stage_pad) {
  if (trees.empty()) throw std::invalid_argument("encode_batch: empty");
  const int cols = trees.front().columns();
  for (std::size_t b = 1; b < trees.size(); ++b) {
    if (trees[b].columns() != cols) {
      throw std::invalid_argument(
          "encode_batch: mixed column widths (" + std::to_string(cols) +
          " vs " + std::to_string(trees[b].columns()) + " at index " +
          std::to_string(b) + ")");
    }
  }
  nt::Tensor out(
      {static_cast<int>(trees.size()), kStateChannels, cols, stage_pad});
  const std::size_t plane = static_cast<std::size_t>(kStateChannels) * cols *
                            static_cast<std::size_t>(stage_pad);
  for (std::size_t b = 0; b < trees.size(); ++b) {
    encode_tree_into(trees[b], stage_pad, out.data() + b * plane);
  }
  return out;
}

MultiplierEnv::MultiplierEnv(synth::DesignEvaluator& evaluator,
                             const EnvConfig& cfg)
    : evaluator_(evaluator), cfg_(cfg) {
  const ct::CompressorTree initial = ppg::initial_tree(evaluator_.spec());
  max_stages_ =
      cfg_.max_stages >= 0 ? cfg_.max_stages : ct::stage_count(initial) + 2;
  // Observation depth: enough stages to see the pruning envelope, but
  // never an unbounded tensor when pruning is off (deep stages fold
  // into the last plane, see encode_tree).
  stage_pad_ = cfg_.stage_pad >= 0
                   ? cfg_.stage_pad
                   : std::min(max_stages_, ct::stage_count(initial) + 4);
  if (stage_pad_ < 1) stage_pad_ = 1;
  if (!cfg_.initial.pp.empty() && cfg_.initial.pp != initial.pp) {
    throw std::invalid_argument(
        "MultiplierEnv: warm-start tree was built for a different spec "
        "(pp heights mismatch)");
  }
  reset();
}

void MultiplierEnv::reset() {
  tree_ = cfg_.initial.pp.empty() ? ppg::initial_tree(evaluator_.spec())
                                  : cfg_.initial;
  cost_ = cost_of(tree_);
  best_tree_ = tree_;
  best_cost_ = cost_;
}

int MultiplierEnv::num_actions() const {
  return tree_.columns() * ct::kActionsPerColumn;
}

std::vector<std::uint8_t> MultiplierEnv::mask() const {
  return ct::legal_action_mask(tree_, max_stages_, cfg_.enable_42);
}

MultiplierEnv::StepResult MultiplierEnv::step(int action_index) {
  const ct::Action action = ct::action_from_index(action_index);
  if (!ct::action_applicable(tree_, action)) {
    throw std::invalid_argument("MultiplierEnv::step: illegal action");
  }
  tree_ = ct::apply_action(tree_, action);
  const double new_cost = cost_of(tree_);
  StepResult out;
  out.reward = cost_ - new_cost;  // Equation (10)
  out.cost = new_cost;
  cost_ = new_cost;
  if (new_cost < best_cost_) {
    best_cost_ = new_cost;
    best_tree_ = tree_;
  }
  return out;
}

void MultiplierEnv::restore(const State& st) {
  tree_ = st.tree;
  cost_ = st.cost;
  best_tree_ = st.best_tree;
  best_cost_ = st.best_cost;
}

double MultiplierEnv::cost_of(const ct::CompressorTree& tree) {
  return evaluator_.cost(evaluator_.evaluate(tree), cfg_.w_area,
                         cfg_.w_delay);
}

}  // namespace rlmul::rl
