#include "pe/pe_array.hpp"

#include <stdexcept>
#include <string>

#include "netlist/cell_library.hpp"
#include "sta/sta.hpp"
#include "synth/synth.hpp"

namespace rlmul::pe {

using netlist::CellKind;
using netlist::CpaKind;
using netlist::GateId;
using netlist::LogicBuilder;
using netlist::NetId;
using netlist::Netlist;
using netlist::Signal;

namespace {

/// Registers a vector of signals; returns the Q nets as signals.
std::vector<Signal> register_bits(Netlist& nl,
                                  const std::vector<Signal>& bits,
                                  LogicBuilder& lb) {
  std::vector<Signal> out;
  out.reserve(bits.size());
  for (const Signal& s : bits) {
    const GateId g = nl.add_gate(CellKind::kDff, {lb.materialize(s)});
    out.push_back(
        Signal::of(nl.gates()[static_cast<std::size_t>(g)].outputs[0]));
  }
  return out;
}

struct PeCell {
  std::vector<Signal> a_out;  ///< registered operand, to the right PE
  std::vector<Signal> b_out;  ///< registered operand, to the PE below
};

/// Emits one PE into the netlist. Accumulator registers are created
/// with explicit Q nets so the MAC result can be looped back.
PeCell emit_pe(Netlist& nl, LogicBuilder& lb,
               const ppg::MultiplierSpec& spec,
               const ct::CompressorTree& tree, CpaKind cpa,
               const std::vector<Signal>& a_in,
               const std::vector<Signal>& b_in) {
  PeCell cell;
  cell.a_out = register_bits(nl, a_in, lb);
  cell.b_out = register_bits(nl, b_in, lb);

  const int w = spec.columns();
  // Accumulator register file: allocate Q nets up front.
  std::vector<NetId> acc_q = nl.new_nets(w);
  std::vector<Signal> acc_sig;
  acc_sig.reserve(static_cast<std::size_t>(w));
  for (NetId q : acc_q) acc_sig.push_back(Signal::of(q));

  ppg::CoreInputs inputs;
  inputs.a = cell.a_out;
  inputs.b = cell.b_out;

  std::vector<Signal> next_acc;
  if (spec.mac) {
    // Merged MAC: the accumulator enters the compressor tree.
    inputs.c = acc_sig;
    next_acc = ppg::build_core(lb, spec, tree, cpa, inputs);
  } else {
    // Multiplier PE: product then a dedicated accumulate adder.
    const std::vector<Signal> product =
        ppg::build_core(lb, spec, tree, cpa, inputs);
    netlist::ColumnSignals addend_rows(static_cast<std::size_t>(w));
    for (int j = 0; j < w; ++j) {
      addend_rows[static_cast<std::size_t>(j)] = {
          product[static_cast<std::size_t>(j)],
          acc_sig[static_cast<std::size_t>(j)]};
    }
    next_acc = netlist::build_cpa(lb, cpa, addend_rows);
  }

  // Close the accumulator loop through DFFs driving the preallocated Qs.
  for (int j = 0; j < w; ++j) {
    nl.add_gate_onto(CellKind::kDff,
                     {lb.materialize(next_acc[static_cast<std::size_t>(j)])},
                     {acc_q[static_cast<std::size_t>(j)]});
  }
  return cell;
}

}  // namespace

Netlist build_pe_netlist(const ppg::MultiplierSpec& spec,
                         const ct::CompressorTree& tree, CpaKind cpa) {
  Netlist nl;
  LogicBuilder lb(nl);
  std::vector<Signal> a_in;
  std::vector<Signal> b_in;
  for (int i = 0; i < spec.bits; ++i) {
    a_in.push_back(Signal::of(nl.add_input("a" + std::to_string(i))));
  }
  for (int i = 0; i < spec.bits; ++i) {
    b_in.push_back(Signal::of(nl.add_input("b" + std::to_string(i))));
  }
  const PeCell cell = emit_pe(nl, lb, spec, tree, cpa, a_in, b_in);
  for (int i = 0; i < spec.bits; ++i) {
    nl.mark_output(lb.materialize(cell.a_out[static_cast<std::size_t>(i)]),
                   "a_out" + std::to_string(i));
    nl.mark_output(lb.materialize(cell.b_out[static_cast<std::size_t>(i)]),
                   "b_out" + std::to_string(i));
  }
  return nl;
}

Netlist build_pe_array_netlist(const ppg::MultiplierSpec& spec,
                               const ct::CompressorTree& tree, CpaKind cpa,
                               int rows, int cols) {
  if (rows < 1 || cols < 1) {
    throw std::invalid_argument("build_pe_array_netlist: bad shape");
  }
  Netlist nl;
  LogicBuilder lb(nl);
  // Edge operand inputs.
  std::vector<std::vector<Signal>> a_feed(static_cast<std::size_t>(rows));
  std::vector<std::vector<Signal>> b_feed(static_cast<std::size_t>(cols));
  for (int r = 0; r < rows; ++r) {
    for (int i = 0; i < spec.bits; ++i) {
      a_feed[static_cast<std::size_t>(r)].push_back(Signal::of(nl.add_input(
          "a_r" + std::to_string(r) + "_" + std::to_string(i))));
    }
  }
  for (int c = 0; c < cols; ++c) {
    for (int i = 0; i < spec.bits; ++i) {
      b_feed[static_cast<std::size_t>(c)].push_back(Signal::of(nl.add_input(
          "b_c" + std::to_string(c) + "_" + std::to_string(i))));
    }
  }
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const PeCell cell =
          emit_pe(nl, lb, spec, tree, cpa, a_feed[static_cast<std::size_t>(r)],
                  b_feed[static_cast<std::size_t>(c)]);
      a_feed[static_cast<std::size_t>(r)] = cell.a_out;   // flow right
      b_feed[static_cast<std::size_t>(c)] = cell.b_out;   // flow down
    }
  }
  // Edge outputs (operands leaving the fabric).
  for (int r = 0; r < rows; ++r) {
    for (int i = 0; i < spec.bits; ++i) {
      nl.mark_output(
          lb.materialize(a_feed[static_cast<std::size_t>(r)]
                                [static_cast<std::size_t>(i)]),
          "a_out_r" + std::to_string(r) + "_" + std::to_string(i));
    }
  }
  for (int c = 0; c < cols; ++c) {
    for (int i = 0; i < spec.bits; ++i) {
      nl.mark_output(
          lb.materialize(b_feed[static_cast<std::size_t>(c)]
                                [static_cast<std::size_t>(i)]),
          "b_out_c" + std::to_string(c) + "_" + std::to_string(i));
    }
  }
  return nl;
}

PeArrayResult synthesize_pe_array(const ppg::MultiplierSpec& spec,
                                  const ct::CompressorTree& tree,
                                  double target_clock_ns,
                                  const PeArrayOptions& opts) {
  const auto& lib = netlist::CellLibrary::nangate45();
  synth::SynthesisOptions sopts;
  sopts.target_delay_ns = target_clock_ns;

  PeArrayResult best;
  bool have = false;
  for (CpaKind cpa : netlist::kAllCpaKinds) {
    Netlist pe = build_pe_netlist(spec, tree, cpa);
    const synth::SynthesisResult res =
        synth::synthesize_netlist(pe, lib, sopts);
    const double cells = static_cast<double>(opts.rows) * opts.cols;
    PeArrayResult cand;
    cand.area_um2 = res.area_um2 * cells * (1.0 + opts.wiring_overhead);
    cand.delay_ns = res.delay_ns;
    cand.power_mw = res.power_mw * cells * (1.0 + opts.wiring_overhead);
    cand.met_target = res.met_target;
    cand.cpa = cpa;
    const bool better =
        !have ||
        (cand.met_target && !best.met_target) ||
        (cand.met_target == best.met_target &&
         (cand.met_target ? cand.area_um2 < best.area_um2
                          : cand.delay_ns < best.delay_ns));
    if (better) {
      best = cand;
      have = true;
    }
    if (cand.met_target) break;  // kinds are in area order
  }
  return best;
}

}  // namespace rlmul::pe
