#pragma once
// Systolic processing-element array (the paper's Section V macro
// benchmark): operands stream through per-PE input registers while a
// local accumulator register integrates products, exactly the
// weight-stationary systolic cell of DNN accelerators.
//
// Two PE flavours, matching Figs 10 and 11:
//  * multiplier-implemented PE: registered a/b operands -> multiplier
//    core -> accumulate CPA -> accumulator register;
//  * MAC-implemented PE: the merged-MAC core folds the accumulator into
//    its partial products (Section III-C), removing the extra adder.
//
// Because the array is locally connected and all PEs are identical, the
// array's minimum clock period equals the PE's register-to-register
// critical path, and array area/power scale as P^2 cells plus a wiring
// overhead. synthesize_pe_array() exploits this; a real composed array
// netlist builder is provided as well and is cross-checked against the
// scaling model in the tests.

#include "ct/compressor_tree.hpp"
#include "netlist/ct_builder.hpp"
#include "netlist/netlist.hpp"
#include "ppg/ppg.hpp"

namespace rlmul::pe {

/// One processing element with its pipeline registers, as a standalone
/// netlist (a/b inputs and pass-through outputs are primary I/O).
netlist::Netlist build_pe_netlist(const ppg::MultiplierSpec& spec,
                                  const ct::CompressorTree& tree,
                                  netlist::CpaKind cpa);

/// A real rows x cols composed array (operands enter at the top/left
/// edges). Intended for small sanity sizes; the benches use the
/// analytic scaling below.
netlist::Netlist build_pe_array_netlist(const ppg::MultiplierSpec& spec,
                                        const ct::CompressorTree& tree,
                                        netlist::CpaKind cpa, int rows,
                                        int cols);

struct PeArrayOptions {
  int rows = 16;
  int cols = 16;
  /// Fractional area/power added for the operand/result distribution
  /// fabric that a placed array would need.
  double wiring_overhead = 0.12;
};

struct PeArrayResult {
  double area_um2 = 0.0;
  double delay_ns = 0.0;  ///< minimum clock period of the array
  double power_mw = 0.0;
  bool met_target = false;
  netlist::CpaKind cpa = netlist::CpaKind::kRippleCarry;
};

/// Synthesizes one PE against the target clock period (trying both CPA
/// architectures) and scales to the array.
PeArrayResult synthesize_pe_array(const ppg::MultiplierSpec& spec,
                                  const ct::CompressorTree& tree,
                                  double target_clock_ns,
                                  const PeArrayOptions& opts = {});

}  // namespace rlmul::pe
