#pragma once
// Layer abstraction for the from-scratch neural-network library that
// stands in for PyTorch in the paper's agent (ResNet-18 backbone,
// Section III-F). Each Module implements an explicit forward and
// backward pass; backward consumes dL/d(output), accumulates parameter
// gradients, and returns dL/d(input). Training is plain
// define-by-layer — no autograd tape is needed for these
// architectures.

#include <memory>
#include <vector>

#include "nt/tensor.hpp"

namespace rlmul::nn {

struct Param {
  nt::Tensor value;
  nt::Tensor grad;

  explicit Param(nt::Tensor v)
      : value(std::move(v)), grad(nt::Tensor(value.shape())) {}
  Param() = default;
};

class Module {
 public:
  virtual ~Module() = default;

  virtual nt::Tensor forward(const nt::Tensor& x) = 0;
  /// dL/d(output) -> dL/d(input); parameter grads are accumulated.
  virtual nt::Tensor backward(const nt::Tensor& grad_out) = 0;
  /// In-place variant: replaces `grad` (dL/d(output)) with
  /// dL/d(input). The default defers to backward(); elementwise layers
  /// (ReLU) override it to rewrite the buffer without allocating, and
  /// Sequential threads one gradient buffer through the whole chain.
  virtual void backward_inplace(nt::Tensor& grad) { grad = backward(grad); }

  virtual std::vector<Param*> params() { return {}; }
  /// Non-trainable state that evolves during training (e.g. batch-norm
  /// running statistics). Not part of params()/save_params — the
  /// parameter blob format and target-network sync copy trainable
  /// values only — but required to checkpoint/resume a training run
  /// bit-for-bit (src/search serializes these alongside the params).
  virtual std::vector<nt::Tensor*> state_buffers() { return {}; }
  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  void zero_grad();

 protected:
  bool training_ = true;
};

/// Runs children in order; backward in reverse.
class Sequential : public Module {
 public:
  Sequential() = default;

  Sequential& add(std::unique_ptr<Module> m) {
    children_.push_back(std::move(m));
    return *this;
  }

  nt::Tensor forward(const nt::Tensor& x) override;
  nt::Tensor backward(const nt::Tensor& grad_out) override;
  std::vector<Param*> params() override;
  std::vector<nt::Tensor*> state_buffers() override;
  void set_training(bool training) override;

  std::size_t size() const { return children_.size(); }
  Module& child(std::size_t i) { return *children_[i]; }

 private:
  std::vector<std::unique_ptr<Module>> children_;
};

}  // namespace rlmul::nn
