#pragma once
// Optimizers. The paper trains the DQN with RMSProp (ref [41]); SGD and
// Adam are provided for the ablations and tests.

#include <vector>

#include "nn/module.hpp"

namespace rlmul::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Param*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void step() = 0;
  void zero_grad();

  /// Global-norm gradient clipping; returns the pre-clip norm.
  double clip_grad_norm(double max_norm);

  /// Internal per-parameter state tensors (momentum / mean-square
  /// accumulators) in a stable order, exposed so search checkpoints can
  /// round-trip an optimizer bit-for-bit.
  virtual std::vector<nt::Tensor*> state_tensors() { return {}; }
  /// Scalar state (e.g. Adam's step counter).
  virtual std::vector<double> state_scalars() const { return {}; }
  virtual void set_state_scalars(const std::vector<double>& scalars) {
    (void)scalars;
  }

 protected:
  std::vector<Param*> params_;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Param*> params, double lr, double momentum = 0.0);
  void step() override;
  std::vector<nt::Tensor*> state_tensors() override;

 private:
  double lr_, momentum_;
  std::vector<nt::Tensor> velocity_;
};

class RmsProp : public Optimizer {
 public:
  RmsProp(std::vector<Param*> params, double lr, double decay = 0.99,
          double eps = 1e-8);
  void step() override;
  std::vector<nt::Tensor*> state_tensors() override;

 private:
  double lr_, decay_, eps_;
  std::vector<nt::Tensor> mean_square_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Param*> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);
  void step() override;
  std::vector<nt::Tensor*> state_tensors() override;
  std::vector<double> state_scalars() const override;
  void set_state_scalars(const std::vector<double>& scalars) override;

 private:
  double lr_, beta1_, beta2_, eps_;
  int t_ = 0;
  std::vector<nt::Tensor> m_, v_;
};

}  // namespace rlmul::nn
