#include "nn/module.hpp"

namespace rlmul::nn {

void Module::zero_grad() {
  for (Param* p : params()) p->grad.zero();
}

nt::Tensor Sequential::forward(const nt::Tensor& x) {
  nt::Tensor cur = x;
  for (auto& child : children_) cur = child->forward(cur);
  return cur;
}

nt::Tensor Sequential::backward(const nt::Tensor& grad_out) {
  nt::Tensor cur = grad_out;
  for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
    (*it)->backward_inplace(cur);
  }
  return cur;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> out;
  for (auto& child : children_) {
    for (Param* p : child->params()) out.push_back(p);
  }
  return out;
}

std::vector<nt::Tensor*> Sequential::state_buffers() {
  std::vector<nt::Tensor*> out;
  for (auto& child : children_) {
    for (nt::Tensor* t : child->state_buffers()) out.push_back(t);
  }
  return out;
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& child : children_) child->set_training(training);
}

}  // namespace rlmul::nn
