#pragma once
// Checkpointing: save/load the parameters of any Module to a simple
// binary format (magic, tensor count, then per-tensor shape + float32
// data). Used to persist trained agents across runs and to clone
// networks (e.g. DQN target-network sync through a buffer).

#include <cstdint>
#include <string>
#include <vector>

#include "nn/module.hpp"

namespace rlmul::nn {

/// Serializes all parameters (values only, not gradients).
std::vector<std::uint8_t> save_params(Module& module);

/// Restores parameters saved by save_params. Throws std::runtime_error
/// on format or shape mismatch.
void load_params(Module& module, const std::vector<std::uint8_t>& blob);

/// File helpers.
void save_params_file(Module& module, const std::string& path);
void load_params_file(Module& module, const std::string& path);

/// Copies parameter values between two structurally identical modules.
void copy_params(Module& from, Module& to);

}  // namespace rlmul::nn
