#include "nn/optim.hpp"

#include <cmath>

namespace rlmul::nn {

void Optimizer::zero_grad() {
  for (Param* p : params_) p->grad.zero();
}

double Optimizer::clip_grad_norm(double max_norm) {
  double sq = 0.0;
  for (Param* p : params_) {
    for (std::size_t i = 0; i < p->grad.numel(); ++i) {
      sq += static_cast<double>(p->grad[i]) * p->grad[i];
    }
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (Param* p : params_) p->grad.scale(scale);
  }
  return norm;
}

Sgd::Sgd(std::vector<Param*> params, double lr, double momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  for (Param* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Param* p = params_[k];
    nt::Tensor& v = velocity_[k];
    for (std::size_t i = 0; i < p->value.numel(); ++i) {
      v[i] = static_cast<float>(momentum_) * v[i] + p->grad[i];
      p->value[i] -= static_cast<float>(lr_) * v[i];
    }
  }
}

std::vector<nt::Tensor*> Sgd::state_tensors() {
  std::vector<nt::Tensor*> out;
  for (nt::Tensor& t : velocity_) out.push_back(&t);
  return out;
}

RmsProp::RmsProp(std::vector<Param*> params, double lr, double decay,
                 double eps)
    : Optimizer(std::move(params)), lr_(lr), decay_(decay), eps_(eps) {
  for (Param* p : params_) mean_square_.emplace_back(p->value.shape());
}

void RmsProp::step() {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Param* p = params_[k];
    nt::Tensor& ms = mean_square_[k];
    for (std::size_t i = 0; i < p->value.numel(); ++i) {
      const float g = p->grad[i];
      ms[i] = static_cast<float>(decay_) * ms[i] +
              static_cast<float>(1.0 - decay_) * g * g;
      p->value[i] -= static_cast<float>(lr_) * g /
                     (std::sqrt(ms[i]) + static_cast<float>(eps_));
    }
  }
}

std::vector<nt::Tensor*> RmsProp::state_tensors() {
  std::vector<nt::Tensor*> out;
  for (nt::Tensor& t : mean_square_) out.push_back(&t);
  return out;
}

Adam::Adam(std::vector<Param*> params, double lr, double beta1, double beta2,
           double eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  for (Param* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, t_);
  const double bc2 = 1.0 - std::pow(beta2_, t_);
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Param* p = params_[k];
    for (std::size_t i = 0; i < p->value.numel(); ++i) {
      const float g = p->grad[i];
      m_[k][i] = static_cast<float>(beta1_) * m_[k][i] +
                 static_cast<float>(1.0 - beta1_) * g;
      v_[k][i] = static_cast<float>(beta2_) * v_[k][i] +
                 static_cast<float>(1.0 - beta2_) * g * g;
      const double mh = m_[k][i] / bc1;
      const double vh = v_[k][i] / bc2;
      p->value[i] -=
          static_cast<float>(lr_ * mh / (std::sqrt(vh) + eps_));
    }
  }
}

std::vector<nt::Tensor*> Adam::state_tensors() {
  std::vector<nt::Tensor*> out;
  for (nt::Tensor& t : m_) out.push_back(&t);
  for (nt::Tensor& t : v_) out.push_back(&t);
  return out;
}

std::vector<double> Adam::state_scalars() const {
  return {static_cast<double>(t_)};
}

void Adam::set_state_scalars(const std::vector<double>& scalars) {
  if (!scalars.empty()) t_ = static_cast<int>(scalars.front());
}

}  // namespace rlmul::nn
