#include "nn/layers.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "nt/gemm.hpp"

namespace rlmul::nn {

using nt::Tensor;

// -- Conv2d -----------------------------------------------------------------

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride,
               int padding, util::Rng& rng, bool bias)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias) {
  const float fan_in =
      static_cast<float>(in_channels) * static_cast<float>(kernel * kernel);
  const float stddev = std::sqrt(2.0f / fan_in);  // He init
  weight_ = Param(Tensor::randn({out_channels, in_channels, kernel, kernel},
                                rng, stddev));
  if (has_bias_) bias_ = Param(Tensor({out_channels}));
}

void Conv2d::im2col_into(const Tensor& x, int ho, int wo, float* dst) const {
  const int n = x.dim(0);
  const int h = x.dim(2);
  const int w = x.dim(3);
  const std::size_t depth =
      static_cast<std::size_t>(in_ch_) * kernel_ * kernel_;
  const std::size_t patches = static_cast<std::size_t>(n) * ho * wo;
  std::memset(dst, 0, patches * depth * sizeof(float));
  const float* xd = x.data();
  float* row = dst;
  for (int b = 0; b < n; ++b) {
    for (int i = 0; i < ho; ++i) {
      for (int j = 0; j < wo; ++j, row += depth) {
        const int jj0 = j * stride_ - padding_;
        const int kj_lo = jj0 < 0 ? -jj0 : 0;
        const int kj_hi = w - jj0 < kernel_ ? w - jj0 : kernel_;
        if (kj_hi <= kj_lo) continue;  // fully outside horizontally
        for (int ci = 0; ci < in_ch_; ++ci) {
          const float* plane =
              xd + (static_cast<std::size_t>(b) * in_ch_ + ci) * h * w;
          for (int ki = 0; ki < kernel_; ++ki) {
            const int ii = i * stride_ - padding_ + ki;
            if (ii < 0 || ii >= h) continue;  // padded row stays zero
            std::memcpy(row + (static_cast<std::size_t>(ci) * kernel_ + ki) *
                                  kernel_ +
                            kj_lo,
                        plane + static_cast<std::size_t>(ii) * w + jj0 + kj_lo,
                        static_cast<std::size_t>(kj_hi - kj_lo) *
                            sizeof(float));
          }
        }
      }
    }
  }
}

Tensor Conv2d::forward(const Tensor& x) {
  if (x.ndim() != 4 || x.dim(1) != in_ch_) {
    throw std::invalid_argument("Conv2d: bad input shape");
  }
  const int n = x.dim(0);
  const int ho = out_size(x.dim(2));
  const int wo = out_size(x.dim(3));
  const int depth = in_ch_ * kernel_ * kernel_;
  const int plane = ho * wo;
  in_shape_ = x.shape();
  ho_ = ho;
  wo_ = wo;

  // New frame: the column buffer lives until the next forward() so
  // backward() can reuse it instead of re-running im2col.
  arena_.reset();
  gt_ = nullptr;
  gcols_ = nullptr;
  const std::size_t rows = static_cast<std::size_t>(n) * plane;
  cols_ = arena_.alloc(rows * depth);
  im2col_into(x, ho, wo, cols_);

  // One GEMM over all patch rows: yt [n*plane, out_ch] = cols · Wᵀ,
  // bias fused into the epilogue (one bias per out channel = per C
  // column). Patches-as-rows keeps every GEMM dimension large even on
  // the 1-2 pixel planes of the deep ResNet stages; the NCHW result is
  // then a cheap O(n·out_ch·plane) transpose.
  float* yt = arena_.alloc(rows * out_ch_);
  nt::sgemm(/*trans_a=*/false, /*trans_b=*/true, static_cast<int>(rows),
            out_ch_, depth, cols_, depth, 0, weight_.value.data(), depth, 0,
            yt, out_ch_, 0, 1, /*accumulate=*/false,
            has_bias_ ? bias_.value.data() : nullptr,
            has_bias_ ? nt::BiasKind::kPerCol : nt::BiasKind::kNone);
  Tensor y({n, out_ch_, ho, wo});
  float* yd = y.data();
  for (int b = 0; b < n; ++b) {
    const float* src = yt + static_cast<std::size_t>(b) * plane * out_ch_;
    for (int co = 0; co < out_ch_; ++co) {
      float* dst =
          yd + (static_cast<std::size_t>(b) * out_ch_ + co) * plane;
      for (int p = 0; p < plane; ++p) {
        dst[p] = src[static_cast<std::size_t>(p) * out_ch_ + co];
      }
    }
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  if (cols_ == nullptr || in_shape_.size() != 4) {
    throw std::logic_error("Conv2d::backward: no cached forward pass");
  }
  const int n = in_shape_[0];
  const int h = in_shape_[2];
  const int w = in_shape_[3];
  if (grad_out.ndim() != 4 || grad_out.dim(0) != n ||
      grad_out.dim(1) != out_ch_ || grad_out.dim(2) != ho_ ||
      grad_out.dim(3) != wo_) {
    throw std::invalid_argument("Conv2d::backward: grad shape mismatch");
  }
  const int depth = in_ch_ * kernel_ * kernel_;
  const int plane = ho_ * wo_;
  const float* god = grad_out.data();

  if (has_bias_) {
    for (int b = 0; b < n; ++b) {
      for (int co = 0; co < out_ch_; ++co) {
        const float* row =
            god + (static_cast<std::size_t>(b) * out_ch_ + co) * plane;
        float acc = bias_.grad[static_cast<std::size_t>(co)];
        for (int p = 0; p < plane; ++p) acc += row[p];
        bias_.grad[static_cast<std::size_t>(co)] = acc;
      }
    }
  }

  // Patch-major transpose of grad_out, shared by both GEMMs below.
  // Allocated once per frame and reused if backward() runs more than
  // once after a forward().
  const std::size_t rows = static_cast<std::size_t>(n) * plane;
  if (gt_ == nullptr) gt_ = arena_.alloc(rows * out_ch_);
  for (int b = 0; b < n; ++b) {
    float* dst = gt_ + static_cast<std::size_t>(b) * plane * out_ch_;
    for (int co = 0; co < out_ch_; ++co) {
      const float* src =
          god + (static_cast<std::size_t>(b) * out_ch_ + co) * plane;
      for (int p = 0; p < plane; ++p) {
        dst[static_cast<std::size_t>(p) * out_ch_ + co] = src[p];
      }
    }
  }

  // dW [out_ch, depth] += gtᵀ · cols — one GEMM whose reduction runs
  // over every patch of the whole batch (k = n*plane).
  nt::sgemm(/*trans_a=*/true, /*trans_b=*/false, out_ch_, depth,
            static_cast<int>(rows), gt_, out_ch_, 0, cols_, depth, 0,
            weight_.grad.data(), depth, 0, 1, /*accumulate=*/true, nullptr,
            nt::BiasKind::kNone);

  // gcols [n*plane, depth] = gt · W — patch-row gradients in the same
  // layout as cols_, so col2im mirrors im2col.
  if (gcols_ == nullptr) gcols_ = arena_.alloc(rows * depth);
  nt::sgemm(/*trans_a=*/false, /*trans_b=*/false, static_cast<int>(rows),
            depth, out_ch_, gt_, out_ch_, 0, weight_.value.data(), depth, 0,
            gcols_, depth, 0, 1, /*accumulate=*/false, nullptr,
            nt::BiasKind::kNone);

  // col2im: scatter patch-row gradients back onto the input.
  Tensor grad_in(in_shape_);
  float* gi = grad_in.data();
  const float* row = gcols_;
  for (int b = 0; b < n; ++b) {
    for (int i = 0; i < ho_; ++i) {
      for (int j = 0; j < wo_; ++j, row += depth) {
        const int jj0 = j * stride_ - padding_;
        const int kj_lo = jj0 < 0 ? -jj0 : 0;
        const int kj_hi = w - jj0 < kernel_ ? w - jj0 : kernel_;
        if (kj_hi <= kj_lo) continue;
        for (int ci = 0; ci < in_ch_; ++ci) {
          for (int ki = 0; ki < kernel_; ++ki) {
            const int ii = i * stride_ - padding_ + ki;
            if (ii < 0 || ii >= h) continue;
            float* dst =
                gi + ((static_cast<std::size_t>(b) * in_ch_ + ci) * h + ii) *
                         w +
                jj0;
            const float* src =
                row + (static_cast<std::size_t>(ci) * kernel_ + ki) * kernel_;
            for (int kj = kj_lo; kj < kj_hi; ++kj) {
              dst[kj] += src[kj];
            }
          }
        }
      }
    }
  }
  return grad_in;
}

std::vector<Param*> Conv2d::params() {
  std::vector<Param*> out{&weight_};
  if (has_bias_) out.push_back(&bias_);
  return out;
}

// -- BatchNorm2d --------------------------------------------------------------

BatchNorm2d::BatchNorm2d(int channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_(Param(Tensor::full({channels}, 1.0f))),
      beta_(Param(Tensor({channels}))),
      running_mean_({channels}),
      running_var_(Tensor::full({channels}, 1.0f)) {}

Tensor BatchNorm2d::forward(const Tensor& x) {
  const int n = x.dim(0);
  const int c = x.dim(1);
  const int h = x.dim(2);
  const int w = x.dim(3);
  if (c != channels_) throw std::invalid_argument("BatchNorm2d: channels");
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  const double per_ch = static_cast<double>(n) * h * w;

  batch_mean_.assign(static_cast<std::size_t>(c), 0.0f);
  batch_inv_std_.assign(static_cast<std::size_t>(c), 0.0f);
  Tensor y(x.shape());
  if (!nt::same_shape(x_hat_, x)) x_hat_ = Tensor(x.shape());
  const float* xd = x.data();
  float* yd = y.data();
  float* xhd = x_hat_.data();

  for (int ch = 0; ch < c; ++ch) {
    double mean = 0.0;
    double var = 0.0;
    if (training_) {
      // Single fused pass: sum and sum-of-squares in double, so
      // var = E[x²] - E[x]² stays well conditioned for the activation
      // scales a normalized network produces.
      double sum = 0.0;
      double sumsq = 0.0;
      for (int b = 0; b < n; ++b) {
        const float* p = xd + (static_cast<std::size_t>(b) * c + ch) * plane;
        for (std::size_t i = 0; i < plane; ++i) {
          const double v = p[i];
          sum += v;
          sumsq += v * v;
        }
      }
      mean = sum / per_ch;
      var = sumsq / per_ch - mean * mean;
      if (var < 0.0) var = 0.0;  // guard the subtraction's round-off
      running_mean_[static_cast<std::size_t>(ch)] =
          (1.0f - momentum_) * running_mean_[static_cast<std::size_t>(ch)] +
          momentum_ * static_cast<float>(mean);
      running_var_[static_cast<std::size_t>(ch)] =
          (1.0f - momentum_) * running_var_[static_cast<std::size_t>(ch)] +
          momentum_ * static_cast<float>(var);
    } else {
      mean = running_mean_[static_cast<std::size_t>(ch)];
      var = running_var_[static_cast<std::size_t>(ch)];
    }
    const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
    batch_mean_[static_cast<std::size_t>(ch)] = static_cast<float>(mean);
    batch_inv_std_[static_cast<std::size_t>(ch)] = inv_std;
    const float g = gamma_.value[static_cast<std::size_t>(ch)];
    const float bt = beta_.value[static_cast<std::size_t>(ch)];
    const float fmean = static_cast<float>(mean);
    for (int b = 0; b < n; ++b) {
      const std::size_t base = (static_cast<std::size_t>(b) * c + ch) * plane;
      const float* px = xd + base;
      float* pxh = xhd + base;
      float* py = yd + base;
      for (std::size_t i = 0; i < plane; ++i) {
        const float xh = (px[i] - fmean) * inv_std;
        pxh[i] = xh;
        py[i] = g * xh + bt;
      }
    }
  }
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  const int n = grad_out.dim(0);
  const int c = grad_out.dim(1);
  const int h = grad_out.dim(2);
  const int w = grad_out.dim(3);
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  const float per_ch = static_cast<float>(n) * h * w;
  Tensor grad_in(grad_out.shape());
  const float* god = grad_out.data();
  const float* xhd = x_hat_.data();
  float* gid = grad_in.data();

  for (int ch = 0; ch < c; ++ch) {
    float sum_g = 0.0f;
    float sum_gx = 0.0f;
    for (int b = 0; b < n; ++b) {
      const std::size_t base = (static_cast<std::size_t>(b) * c + ch) * plane;
      const float* pg = god + base;
      const float* pxh = xhd + base;
      for (std::size_t i = 0; i < plane; ++i) {
        sum_g += pg[i];
        sum_gx += pg[i] * pxh[i];
      }
    }
    gamma_.grad[static_cast<std::size_t>(ch)] += sum_gx;
    beta_.grad[static_cast<std::size_t>(ch)] += sum_g;

    const float gma = gamma_.value[static_cast<std::size_t>(ch)];
    const float inv_std = batch_inv_std_[static_cast<std::size_t>(ch)];
    const float mean_g = sum_g / per_ch;
    const float mean_gx = sum_gx / per_ch;
    for (int b = 0; b < n; ++b) {
      const std::size_t base = (static_cast<std::size_t>(b) * c + ch) * plane;
      const float* pg = god + base;
      const float* pxh = xhd + base;
      float* pgi = gid + base;
      if (training_) {
        for (std::size_t i = 0; i < plane; ++i) {
          pgi[i] = gma * inv_std * (pg[i] - mean_g - pxh[i] * mean_gx);
        }
      } else {
        // Running stats are constants, so the mean terms vanish.
        for (std::size_t i = 0; i < plane; ++i) {
          pgi[i] = gma * inv_std * pg[i];
        }
      }
    }
  }
  return grad_in;
}

std::vector<Param*> BatchNorm2d::params() { return {&gamma_, &beta_}; }

std::vector<nt::Tensor*> BatchNorm2d::state_buffers() {
  return {&running_mean_, &running_var_};
}

// -- ReLU ---------------------------------------------------------------------

Tensor ReLU::forward(const Tensor& x) {
  mask_.resize(x.numel());  // capacity persists across calls
  Tensor y(x.shape());
  const float* xd = x.data();
  float* yd = y.data();
  for (std::size_t i = 0; i < x.numel(); ++i) {
    const bool pos = xd[i] > 0.0f;
    mask_[i] = pos ? 1 : 0;
    yd[i] = pos ? xd[i] : 0.0f;
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor grad_in = grad_out;
  backward_inplace(grad_in);
  return grad_in;
}

void ReLU::backward_inplace(Tensor& grad) {
  if (grad.numel() != mask_.size()) {
    throw std::logic_error("ReLU::backward: shape mismatch with forward");
  }
  float* g = grad.data();
  for (std::size_t i = 0; i < mask_.size(); ++i) {
    if (mask_[i] == 0) g[i] = 0.0f;
  }
}

// -- MaxPool2d ------------------------------------------------------------------

MaxPool2d::MaxPool2d(int kernel, int stride, int padding)
    : kernel_(kernel), stride_(stride), padding_(padding) {}

Tensor MaxPool2d::forward(const Tensor& x) {
  const int n = x.dim(0);
  const int c = x.dim(1);
  const int h = x.dim(2);
  const int w = x.dim(3);
  const int ho = (h + 2 * padding_ - kernel_) / stride_ + 1;
  const int wo = (w + 2 * padding_ - kernel_) / stride_ + 1;
  in_shape_ = x.shape();
  Tensor y({n, c, ho, wo});
  argmax_.assign(y.numel(), -1);
  std::size_t out_idx = 0;
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      for (int i = 0; i < ho; ++i) {
        for (int j = 0; j < wo; ++j, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          int best_idx = -1;
          for (int ki = 0; ki < kernel_; ++ki) {
            const int ii = i * stride_ - padding_ + ki;
            if (ii < 0 || ii >= h) continue;
            for (int kj = 0; kj < kernel_; ++kj) {
              const int jj = j * stride_ - padding_ + kj;
              if (jj < 0 || jj >= w) continue;
              const float v = x.at(b, ch, ii, jj);
              if (v > best) {
                best = v;
                best_idx = ((b * c + ch) * h + ii) * w + jj;
              }
            }
          }
          y[out_idx] = best_idx >= 0 ? best : 0.0f;
          argmax_[out_idx] = best_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  Tensor grad_in(in_shape_);
  for (std::size_t i = 0; i < grad_out.numel(); ++i) {
    const int src = argmax_[i];
    if (src >= 0) grad_in[static_cast<std::size_t>(src)] += grad_out[i];
  }
  return grad_in;
}

// -- GlobalAvgPool -------------------------------------------------------------

Tensor GlobalAvgPool::forward(const Tensor& x) {
  const int n = x.dim(0);
  const int c = x.dim(1);
  const int h = x.dim(2);
  const int w = x.dim(3);
  in_shape_ = x.shape();
  Tensor y({n, c, 1, 1});
  const float scale = 1.0f / (static_cast<float>(h) * w);
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      float acc = 0.0f;
      for (int i = 0; i < h; ++i) {
        for (int j = 0; j < w; ++j) acc += x.at(b, ch, i, j);
      }
      y.at(b, ch, 0, 0) = acc * scale;
    }
  }
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  const int h = in_shape_[2];
  const int w = in_shape_[3];
  Tensor grad_in(in_shape_);
  const float scale = 1.0f / (static_cast<float>(h) * w);
  for (int b = 0; b < in_shape_[0]; ++b) {
    for (int ch = 0; ch < in_shape_[1]; ++ch) {
      const float g = grad_out.at(b, ch, 0, 0) * scale;
      for (int i = 0; i < h; ++i) {
        for (int j = 0; j < w; ++j) grad_in.at(b, ch, i, j) = g;
      }
    }
  }
  return grad_in;
}

// -- Flatten ---------------------------------------------------------------------

Tensor Flatten::forward(const Tensor& x) {
  in_shape_ = x.shape();
  const int n = x.dim(0);
  const int rest = static_cast<int>(x.numel()) / std::max(n, 1);
  return x.reshaped({n, rest});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(in_shape_);
}

// -- Linear ----------------------------------------------------------------------

Linear::Linear(int in_features, int out_features, util::Rng& rng)
    : in_(in_features), out_(out_features) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(in_features));
  weight_ = Param(Tensor::randn({out_features, in_features}, rng, stddev));
  bias_ = Param(Tensor({out_features}));
}

Tensor Linear::forward(const Tensor& x) {
  if (x.ndim() != 2 || x.dim(1) != in_) {
    throw std::invalid_argument("Linear: bad input shape");
  }
  input_ = x;
  const int n = x.dim(0);
  // y [n, out] = x [n, in] · Wᵀ, bias fused per output feature (C col).
  Tensor y({n, out_});
  nt::sgemm(/*trans_a=*/false, /*trans_b=*/true, n, out_, in_, x.data(), in_,
            0, weight_.value.data(), in_, 0, y.data(), out_, 0, 1,
            /*accumulate=*/false, bias_.value.data(), nt::BiasKind::kPerCol);
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  const int n = input_.dim(0);
  if (grad_out.ndim() != 2 || grad_out.dim(0) != n ||
      grad_out.dim(1) != out_) {
    throw std::invalid_argument("Linear::backward: grad shape mismatch");
  }
  const float* god = grad_out.data();
  for (int b = 0; b < n; ++b) {
    const float* row = god + static_cast<std::size_t>(b) * out_;
    for (int o = 0; o < out_; ++o) {
      bias_.grad[static_cast<std::size_t>(o)] += row[o];
    }
  }
  // dW [out, in] += Gᵀ · x.
  nt::sgemm(/*trans_a=*/true, /*trans_b=*/false, out_, in_, n, god, out_, 0,
            input_.data(), in_, 0, weight_.grad.data(), in_, 0, 1,
            /*accumulate=*/true, nullptr, nt::BiasKind::kNone);
  // grad_in [n, in] = G · W.
  Tensor grad_in({n, in_});
  nt::sgemm(/*trans_a=*/false, /*trans_b=*/false, n, in_, out_, god, out_, 0,
            weight_.value.data(), in_, 0, grad_in.data(), in_, 0, 1,
            /*accumulate=*/false, nullptr, nt::BiasKind::kNone);
  return grad_in;
}

std::vector<Param*> Linear::params() { return {&weight_, &bias_}; }

}  // namespace rlmul::nn
