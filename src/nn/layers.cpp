#include "nn/layers.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace rlmul::nn {

using nt::Tensor;

// -- Conv2d -----------------------------------------------------------------

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride,
               int padding, util::Rng& rng, bool bias)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias) {
  const float fan_in =
      static_cast<float>(in_channels) * static_cast<float>(kernel * kernel);
  const float stddev = std::sqrt(2.0f / fan_in);  // He init
  weight_ = Param(Tensor::randn({out_channels, in_channels, kernel, kernel},
                                rng, stddev));
  if (has_bias_) bias_ = Param(Tensor({out_channels}));
}

std::vector<float> Conv2d::im2col(const Tensor& x, int ho, int wo) const {
  const int n = x.dim(0);
  const int h = x.dim(2);
  const int w = x.dim(3);
  const std::size_t patches = static_cast<std::size_t>(n) * ho * wo;
  const std::size_t depth =
      static_cast<std::size_t>(in_ch_) * kernel_ * kernel_;
  std::vector<float> cols(patches * depth, 0.0f);
  std::size_t p = 0;
  for (int b = 0; b < n; ++b) {
    for (int i = 0; i < ho; ++i) {
      for (int j = 0; j < wo; ++j, ++p) {
        float* row = cols.data() + p * depth;
        std::size_t d = 0;
        for (int ci = 0; ci < in_ch_; ++ci) {
          for (int ki = 0; ki < kernel_; ++ki) {
            const int ii = i * stride_ - padding_ + ki;
            for (int kj = 0; kj < kernel_; ++kj, ++d) {
              const int jj = j * stride_ - padding_ + kj;
              if (ii >= 0 && ii < h && jj >= 0 && jj < w) {
                row[d] = x.at(b, ci, ii, jj);
              }
            }
          }
        }
      }
    }
  }
  return cols;
}

Tensor Conv2d::forward(const Tensor& x) {
  if (x.ndim() != 4 || x.dim(1) != in_ch_) {
    throw std::invalid_argument("Conv2d: bad input shape");
  }
  input_ = x;
  const int n = x.dim(0);
  const int ho = out_size(x.dim(2));
  const int wo = out_size(x.dim(3));
  const std::size_t depth =
      static_cast<std::size_t>(in_ch_) * kernel_ * kernel_;
  const std::vector<float> cols = im2col(x, ho, wo);

  // y[p, co] = patches[p, :] . weight[co, :]  (+ bias)
  Tensor y({n, out_ch_, ho, wo});
  const float* wmat = weight_.value.data();  // [out_ch, depth] row-major
  const std::size_t plane = static_cast<std::size_t>(ho) * wo;
  std::size_t p = 0;
  for (int b = 0; b < n; ++b) {
    for (std::size_t pix = 0; pix < plane; ++pix, ++p) {
      const float* row = cols.data() + p * depth;
      for (int co = 0; co < out_ch_; ++co) {
        const float* wrow = wmat + static_cast<std::size_t>(co) * depth;
        float acc =
            has_bias_ ? bias_.value[static_cast<std::size_t>(co)] : 0.0f;
        for (std::size_t d = 0; d < depth; ++d) acc += row[d] * wrow[d];
        y[(static_cast<std::size_t>(b) * out_ch_ + co) * plane + pix] = acc;
      }
    }
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const Tensor& x = input_;
  const int n = x.dim(0);
  const int h = x.dim(2);
  const int w = x.dim(3);
  const int ho = grad_out.dim(2);
  const int wo = grad_out.dim(3);
  const std::size_t depth =
      static_cast<std::size_t>(in_ch_) * kernel_ * kernel_;
  const std::size_t plane = static_cast<std::size_t>(ho) * wo;
  const std::vector<float> cols = im2col(x, ho, wo);

  // Per-patch: dW[co, :] += g * patch;  gpatch[:] += g * W[co, :].
  std::vector<float> gcols(cols.size(), 0.0f);
  const float* wmat = weight_.value.data();
  float* gw = weight_.grad.data();
  std::size_t p = 0;
  for (int b = 0; b < n; ++b) {
    for (std::size_t pix = 0; pix < plane; ++pix, ++p) {
      const float* row = cols.data() + p * depth;
      float* grow = gcols.data() + p * depth;
      for (int co = 0; co < out_ch_; ++co) {
        const float g =
            grad_out[(static_cast<std::size_t>(b) * out_ch_ + co) * plane +
                     pix];
        if (g == 0.0f) continue;
        if (has_bias_) bias_.grad[static_cast<std::size_t>(co)] += g;
        const float* wrow = wmat + static_cast<std::size_t>(co) * depth;
        float* gwrow = gw + static_cast<std::size_t>(co) * depth;
        for (std::size_t d = 0; d < depth; ++d) {
          gwrow[d] += g * row[d];
          grow[d] += g * wrow[d];
        }
      }
    }
  }

  // col2im: scatter patch gradients back onto the input.
  Tensor grad_in(x.shape());
  p = 0;
  for (int b = 0; b < n; ++b) {
    for (int i = 0; i < ho; ++i) {
      for (int j = 0; j < wo; ++j, ++p) {
        const float* grow = gcols.data() + p * depth;
        std::size_t d = 0;
        for (int ci = 0; ci < in_ch_; ++ci) {
          for (int ki = 0; ki < kernel_; ++ki) {
            const int ii = i * stride_ - padding_ + ki;
            for (int kj = 0; kj < kernel_; ++kj, ++d) {
              const int jj = j * stride_ - padding_ + kj;
              if (ii >= 0 && ii < h && jj >= 0 && jj < w) {
                grad_in.at(b, ci, ii, jj) += grow[d];
              }
            }
          }
        }
      }
    }
  }
  return grad_in;
}

std::vector<Param*> Conv2d::params() {
  std::vector<Param*> out{&weight_};
  if (has_bias_) out.push_back(&bias_);
  return out;
}

// -- BatchNorm2d --------------------------------------------------------------

BatchNorm2d::BatchNorm2d(int channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_(Param(Tensor::full({channels}, 1.0f))),
      beta_(Param(Tensor({channels}))),
      running_mean_({channels}),
      running_var_(Tensor::full({channels}, 1.0f)) {}

Tensor BatchNorm2d::forward(const Tensor& x) {
  const int n = x.dim(0);
  const int c = x.dim(1);
  const int h = x.dim(2);
  const int w = x.dim(3);
  if (c != channels_) throw std::invalid_argument("BatchNorm2d: channels");
  const double per_ch = static_cast<double>(n) * h * w;

  batch_mean_.assign(static_cast<std::size_t>(c), 0.0f);
  batch_inv_std_.assign(static_cast<std::size_t>(c), 0.0f);
  Tensor y(x.shape());
  x_hat_ = Tensor(x.shape());

  for (int ch = 0; ch < c; ++ch) {
    double mean = 0.0;
    double var = 0.0;
    if (training_) {
      for (int b = 0; b < n; ++b) {
        for (int i = 0; i < h; ++i) {
          for (int j = 0; j < w; ++j) mean += x.at(b, ch, i, j);
        }
      }
      mean /= per_ch;
      for (int b = 0; b < n; ++b) {
        for (int i = 0; i < h; ++i) {
          for (int j = 0; j < w; ++j) {
            const double d = x.at(b, ch, i, j) - mean;
            var += d * d;
          }
        }
      }
      var /= per_ch;
      running_mean_[static_cast<std::size_t>(ch)] =
          (1.0f - momentum_) * running_mean_[static_cast<std::size_t>(ch)] +
          momentum_ * static_cast<float>(mean);
      running_var_[static_cast<std::size_t>(ch)] =
          (1.0f - momentum_) * running_var_[static_cast<std::size_t>(ch)] +
          momentum_ * static_cast<float>(var);
    } else {
      mean = running_mean_[static_cast<std::size_t>(ch)];
      var = running_var_[static_cast<std::size_t>(ch)];
    }
    const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
    batch_mean_[static_cast<std::size_t>(ch)] = static_cast<float>(mean);
    batch_inv_std_[static_cast<std::size_t>(ch)] = inv_std;
    const float g = gamma_.value[static_cast<std::size_t>(ch)];
    const float bt = beta_.value[static_cast<std::size_t>(ch)];
    for (int b = 0; b < n; ++b) {
      for (int i = 0; i < h; ++i) {
        for (int j = 0; j < w; ++j) {
          const float xh =
              (x.at(b, ch, i, j) - static_cast<float>(mean)) * inv_std;
          x_hat_.at(b, ch, i, j) = xh;
          y.at(b, ch, i, j) = g * xh + bt;
        }
      }
    }
  }
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  const int n = grad_out.dim(0);
  const int c = grad_out.dim(1);
  const int h = grad_out.dim(2);
  const int w = grad_out.dim(3);
  const float per_ch = static_cast<float>(n) * h * w;
  Tensor grad_in(grad_out.shape());

  for (int ch = 0; ch < c; ++ch) {
    float sum_g = 0.0f;
    float sum_gx = 0.0f;
    for (int b = 0; b < n; ++b) {
      for (int i = 0; i < h; ++i) {
        for (int j = 0; j < w; ++j) {
          const float g = grad_out.at(b, ch, i, j);
          sum_g += g;
          sum_gx += g * x_hat_.at(b, ch, i, j);
        }
      }
    }
    gamma_.grad[static_cast<std::size_t>(ch)] += sum_gx;
    beta_.grad[static_cast<std::size_t>(ch)] += sum_g;

    const float gma = gamma_.value[static_cast<std::size_t>(ch)];
    const float inv_std = batch_inv_std_[static_cast<std::size_t>(ch)];
    for (int b = 0; b < n; ++b) {
      for (int i = 0; i < h; ++i) {
        for (int j = 0; j < w; ++j) {
          const float g = grad_out.at(b, ch, i, j);
          const float xh = x_hat_.at(b, ch, i, j);
          float gi;
          if (training_) {
            gi = gma * inv_std *
                 (g - sum_g / per_ch - xh * sum_gx / per_ch);
          } else {
            gi = gma * inv_std * g;  // running stats are constants
          }
          grad_in.at(b, ch, i, j) = gi;
        }
      }
    }
  }
  return grad_in;
}

std::vector<Param*> BatchNorm2d::params() { return {&gamma_, &beta_}; }

std::vector<nt::Tensor*> BatchNorm2d::state_buffers() {
  return {&running_mean_, &running_var_};
}

// -- ReLU ---------------------------------------------------------------------

Tensor ReLU::forward(const Tensor& x) {
  mask_ = Tensor(x.shape());
  Tensor y(x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i) {
    const bool pos = x[i] > 0.0f;
    mask_[i] = pos ? 1.0f : 0.0f;
    y[i] = pos ? x[i] : 0.0f;
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor grad_in(grad_out.shape());
  for (std::size_t i = 0; i < grad_out.numel(); ++i) {
    grad_in[i] = grad_out[i] * mask_[i];
  }
  return grad_in;
}

// -- MaxPool2d ------------------------------------------------------------------

MaxPool2d::MaxPool2d(int kernel, int stride, int padding)
    : kernel_(kernel), stride_(stride), padding_(padding) {}

Tensor MaxPool2d::forward(const Tensor& x) {
  const int n = x.dim(0);
  const int c = x.dim(1);
  const int h = x.dim(2);
  const int w = x.dim(3);
  const int ho = (h + 2 * padding_ - kernel_) / stride_ + 1;
  const int wo = (w + 2 * padding_ - kernel_) / stride_ + 1;
  in_shape_ = x.shape();
  Tensor y({n, c, ho, wo});
  argmax_.assign(y.numel(), -1);
  std::size_t out_idx = 0;
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      for (int i = 0; i < ho; ++i) {
        for (int j = 0; j < wo; ++j, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          int best_idx = -1;
          for (int ki = 0; ki < kernel_; ++ki) {
            const int ii = i * stride_ - padding_ + ki;
            if (ii < 0 || ii >= h) continue;
            for (int kj = 0; kj < kernel_; ++kj) {
              const int jj = j * stride_ - padding_ + kj;
              if (jj < 0 || jj >= w) continue;
              const float v = x.at(b, ch, ii, jj);
              if (v > best) {
                best = v;
                best_idx = ((b * c + ch) * h + ii) * w + jj;
              }
            }
          }
          y[out_idx] = best_idx >= 0 ? best : 0.0f;
          argmax_[out_idx] = best_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  Tensor grad_in(in_shape_);
  for (std::size_t i = 0; i < grad_out.numel(); ++i) {
    const int src = argmax_[i];
    if (src >= 0) grad_in[static_cast<std::size_t>(src)] += grad_out[i];
  }
  return grad_in;
}

// -- GlobalAvgPool -------------------------------------------------------------

Tensor GlobalAvgPool::forward(const Tensor& x) {
  const int n = x.dim(0);
  const int c = x.dim(1);
  const int h = x.dim(2);
  const int w = x.dim(3);
  in_shape_ = x.shape();
  Tensor y({n, c, 1, 1});
  const float scale = 1.0f / (static_cast<float>(h) * w);
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      float acc = 0.0f;
      for (int i = 0; i < h; ++i) {
        for (int j = 0; j < w; ++j) acc += x.at(b, ch, i, j);
      }
      y.at(b, ch, 0, 0) = acc * scale;
    }
  }
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  const int h = in_shape_[2];
  const int w = in_shape_[3];
  Tensor grad_in(in_shape_);
  const float scale = 1.0f / (static_cast<float>(h) * w);
  for (int b = 0; b < in_shape_[0]; ++b) {
    for (int ch = 0; ch < in_shape_[1]; ++ch) {
      const float g = grad_out.at(b, ch, 0, 0) * scale;
      for (int i = 0; i < h; ++i) {
        for (int j = 0; j < w; ++j) grad_in.at(b, ch, i, j) = g;
      }
    }
  }
  return grad_in;
}

// -- Flatten ---------------------------------------------------------------------

Tensor Flatten::forward(const Tensor& x) {
  in_shape_ = x.shape();
  const int n = x.dim(0);
  const int rest = static_cast<int>(x.numel()) / std::max(n, 1);
  return x.reshaped({n, rest});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(in_shape_);
}

// -- Linear ----------------------------------------------------------------------

Linear::Linear(int in_features, int out_features, util::Rng& rng)
    : in_(in_features), out_(out_features) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(in_features));
  weight_ = Param(Tensor::randn({out_features, in_features}, rng, stddev));
  bias_ = Param(Tensor({out_features}));
}

Tensor Linear::forward(const Tensor& x) {
  if (x.ndim() != 2 || x.dim(1) != in_) {
    throw std::invalid_argument("Linear: bad input shape");
  }
  input_ = x;
  const int n = x.dim(0);
  Tensor y({n, out_});
  for (int b = 0; b < n; ++b) {
    for (int o = 0; o < out_; ++o) {
      float acc = bias_.value[static_cast<std::size_t>(o)];
      for (int i = 0; i < in_; ++i) {
        acc += weight_.value.at(o, i) * x.at(b, i);
      }
      y.at(b, o) = acc;
    }
  }
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  const int n = input_.dim(0);
  Tensor grad_in({n, in_});
  for (int b = 0; b < n; ++b) {
    for (int o = 0; o < out_; ++o) {
      const float g = grad_out.at(b, o);
      if (g == 0.0f) continue;
      bias_.grad[static_cast<std::size_t>(o)] += g;
      for (int i = 0; i < in_; ++i) {
        weight_.grad.at(o, i) += g * input_.at(b, i);
        grad_in.at(b, i) += g * weight_.value.at(o, i);
      }
    }
  }
  return grad_in;
}

std::vector<Param*> Linear::params() { return {&weight_, &bias_}; }

}  // namespace rlmul::nn
