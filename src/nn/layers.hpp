#pragma once
// Concrete layers: Conv2d, BatchNorm2d, ReLU, MaxPool2d, global average
// pooling, Flatten and Linear — everything ResNet-18 needs. All image
// tensors are NCHW.

#include <memory>
#include <vector>

#include "nn/module.hpp"
#include "util/rng.hpp"

namespace rlmul::nn {

class Conv2d : public Module {
 public:
  /// He-initialized convolution. Square kernel, symmetric padding.
  Conv2d(int in_channels, int out_channels, int kernel, int stride,
         int padding, util::Rng& rng, bool bias = true);

  nt::Tensor forward(const nt::Tensor& x) override;
  nt::Tensor backward(const nt::Tensor& grad_out) override;
  std::vector<Param*> params() override;

  int out_size(int in_size) const {
    return (in_size + 2 * padding_ - kernel_) / stride_ + 1;
  }

 private:
  /// Unfolds the cached input into patch rows [P x D], P = n*ho*wo,
  /// D = in_ch*k*k (im2col); forward/backward are then plain GEMMs.
  std::vector<float> im2col(const nt::Tensor& x, int ho, int wo) const;

  int in_ch_, out_ch_, kernel_, stride_, padding_;
  bool has_bias_;
  Param weight_;  ///< [out_ch, in_ch, k, k]
  Param bias_;    ///< [out_ch]
  nt::Tensor input_;  ///< cached for backward
};

class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(int channels, float momentum = 0.1f,
                       float eps = 1e-5f);

  nt::Tensor forward(const nt::Tensor& x) override;
  nt::Tensor backward(const nt::Tensor& grad_out) override;
  std::vector<Param*> params() override;
  std::vector<nt::Tensor*> state_buffers() override;

 private:
  int channels_;
  float momentum_, eps_;
  Param gamma_, beta_;
  /// Exposed via state_buffers(): updated in training mode, read in
  /// eval mode, so resuming a checkpointed training run needs them.
  nt::Tensor running_mean_, running_var_;
  // Backward caches:
  nt::Tensor x_hat_;
  std::vector<float> batch_mean_, batch_inv_std_;
};

class ReLU : public Module {
 public:
  nt::Tensor forward(const nt::Tensor& x) override;
  nt::Tensor backward(const nt::Tensor& grad_out) override;

 private:
  nt::Tensor mask_;
};

class MaxPool2d : public Module {
 public:
  MaxPool2d(int kernel, int stride, int padding = 0);

  nt::Tensor forward(const nt::Tensor& x) override;
  nt::Tensor backward(const nt::Tensor& grad_out) override;

 private:
  int kernel_, stride_, padding_;
  std::vector<int> argmax_;  ///< flat input index per output element
  std::vector<int> in_shape_;
};

/// Global average pool: NCHW -> NC11.
class GlobalAvgPool : public Module {
 public:
  nt::Tensor forward(const nt::Tensor& x) override;
  nt::Tensor backward(const nt::Tensor& grad_out) override;

 private:
  std::vector<int> in_shape_;
};

/// NCHW (or any) -> N x rest.
class Flatten : public Module {
 public:
  nt::Tensor forward(const nt::Tensor& x) override;
  nt::Tensor backward(const nt::Tensor& grad_out) override;

 private:
  std::vector<int> in_shape_;
};

class Linear : public Module {
 public:
  Linear(int in_features, int out_features, util::Rng& rng);

  nt::Tensor forward(const nt::Tensor& x) override;
  nt::Tensor backward(const nt::Tensor& grad_out) override;
  std::vector<Param*> params() override;

 private:
  int in_, out_;
  Param weight_;  ///< [out, in]
  Param bias_;    ///< [out]
  nt::Tensor input_;
};

}  // namespace rlmul::nn
