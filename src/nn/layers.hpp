#pragma once
// Concrete layers: Conv2d, BatchNorm2d, ReLU, MaxPool2d, global average
// pooling, Flatten and Linear — everything ResNet-18 needs. All image
// tensors are NCHW. Conv2d and Linear run on the nt::sgemm kernel
// layer (RLMUL_GEMM selects blocked vs naive reference kernels), and
// each Conv2d routes its im2col/col2im temporaries through a private
// nt::ScratchArena so steady-state training allocates nothing per step.

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/module.hpp"
#include "nt/arena.hpp"
#include "util/rng.hpp"

namespace rlmul::nn {

class Conv2d : public Module {
 public:
  /// He-initialized convolution. Square kernel, symmetric padding.
  Conv2d(int in_channels, int out_channels, int kernel, int stride,
         int padding, util::Rng& rng, bool bias = true);

  nt::Tensor forward(const nt::Tensor& x) override;
  nt::Tensor backward(const nt::Tensor& grad_out) override;
  std::vector<Param*> params() override;

  int out_size(int in_size) const {
    return (in_size + 2 * padding_ - kernel_) / stride_ + 1;
  }

 private:
  /// Unfolds x into patch rows [n*ho*wo x D], D = in_ch*k*k (im2col),
  /// written into `dst` (arena-owned); forward/backward are then plain
  /// GEMMs against the [out_ch x D] weight matrix.
  void im2col_into(const nt::Tensor& x, int ho, int wo, float* dst) const;

  int in_ch_, out_ch_, kernel_, stride_, padding_;
  bool has_bias_;
  Param weight_;  ///< [out_ch, in_ch, k, k]
  Param bias_;    ///< [out_ch]
  /// Forward/backward scratch. The frame opens in forward() (reset +
  /// im2col into cols_) and stays live through any number of
  /// backward() calls, which reuse cols_ instead of re-unfolding the
  /// input and allocate gcols_ from the same frame on first use.
  nt::ScratchArena arena_;
  float* cols_ = nullptr;   ///< [n*ho*wo x depth] patch rows
  float* gt_ = nullptr;     ///< [n*ho*wo x out_ch] grad_out, patch-major
  float* gcols_ = nullptr;  ///< [n*ho*wo x depth] patch-row grads
  std::vector<int> in_shape_;  ///< shape of the last forward input
  int ho_ = 0, wo_ = 0;        ///< output spatial dims of last forward
};

class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(int channels, float momentum = 0.1f,
                       float eps = 1e-5f);

  nt::Tensor forward(const nt::Tensor& x) override;
  nt::Tensor backward(const nt::Tensor& grad_out) override;
  std::vector<Param*> params() override;
  std::vector<nt::Tensor*> state_buffers() override;

 private:
  int channels_;
  float momentum_, eps_;
  Param gamma_, beta_;
  /// Exposed via state_buffers(): updated in training mode, read in
  /// eval mode, so resuming a checkpointed training run needs them.
  nt::Tensor running_mean_, running_var_;
  // Backward caches (x_hat_ is reused across steps when the batch
  // shape is stable, so steady-state training does not reallocate it):
  nt::Tensor x_hat_;
  std::vector<float> batch_mean_, batch_inv_std_;
};

class ReLU : public Module {
 public:
  nt::Tensor forward(const nt::Tensor& x) override;
  nt::Tensor backward(const nt::Tensor& grad_out) override;
  /// Rewrites `grad` in place (zeroing where the input was <= 0); no
  /// allocation. backward() is a copy plus this.
  void backward_inplace(nt::Tensor& grad) override;

 private:
  std::vector<std::uint8_t> mask_;  ///< input > 0, reused across calls
};

class MaxPool2d : public Module {
 public:
  MaxPool2d(int kernel, int stride, int padding = 0);

  nt::Tensor forward(const nt::Tensor& x) override;
  nt::Tensor backward(const nt::Tensor& grad_out) override;

 private:
  int kernel_, stride_, padding_;
  std::vector<int> argmax_;  ///< flat input index per output element
  std::vector<int> in_shape_;
};

/// Global average pool: NCHW -> NC11.
class GlobalAvgPool : public Module {
 public:
  nt::Tensor forward(const nt::Tensor& x) override;
  nt::Tensor backward(const nt::Tensor& grad_out) override;

 private:
  std::vector<int> in_shape_;
};

/// NCHW (or any) -> N x rest.
class Flatten : public Module {
 public:
  nt::Tensor forward(const nt::Tensor& x) override;
  nt::Tensor backward(const nt::Tensor& grad_out) override;

 private:
  std::vector<int> in_shape_;
};

class Linear : public Module {
 public:
  Linear(int in_features, int out_features, util::Rng& rng);

  nt::Tensor forward(const nt::Tensor& x) override;
  nt::Tensor backward(const nt::Tensor& grad_out) override;
  std::vector<Param*> params() override;

 private:
  int in_, out_;
  Param weight_;  ///< [out, in]
  Param bias_;    ///< [out]
  nt::Tensor input_;
};

}  // namespace rlmul::nn
