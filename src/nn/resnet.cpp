#include "nn/resnet.hpp"

#include <chrono>
#include <stdexcept>

#include "util/perf_counters.hpp"

namespace rlmul::nn {

using nt::Tensor;

namespace {

/// Accumulates the enclosing scope's wall time into
/// perf_counters().nn_time_us. Only the outermost ResNet entry points
/// use it (they never nest), so the counter is pure network time.
struct NnTimer {
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  ~NnTimer() {
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    util::perf_counters().nn_time_us.fetch_add(
        static_cast<std::uint64_t>(us), std::memory_order_relaxed);
  }
};

}  // namespace

BasicBlock::BasicBlock(int in_channels, int out_channels, int stride,
                       util::Rng& rng) {
  main_.add(std::make_unique<Conv2d>(in_channels, out_channels, 3, stride, 1,
                                     rng, /*bias=*/false));
  main_.add(std::make_unique<BatchNorm2d>(out_channels));
  main_.add(std::make_unique<ReLU>());
  main_.add(std::make_unique<Conv2d>(out_channels, out_channels, 3, 1, 1, rng,
                                     /*bias=*/false));
  main_.add(std::make_unique<BatchNorm2d>(out_channels));
  if (stride != 1 || in_channels != out_channels) {
    projection_ = std::make_unique<Sequential>();
    projection_->add(std::make_unique<Conv2d>(in_channels, out_channels, 1,
                                              stride, 0, rng,
                                              /*bias=*/false));
    projection_->add(std::make_unique<BatchNorm2d>(out_channels));
  }
}

Tensor BasicBlock::forward(const Tensor& x) {
  skip_input_ = x;
  Tensor main_out = main_.forward(x);
  const Tensor skip = projection_ ? projection_->forward(x) : x;
  if (!nt::same_shape(main_out, skip)) {
    throw std::logic_error("BasicBlock: skip/main shape mismatch");
  }
  for (std::size_t i = 0; i < main_out.numel(); ++i) main_out[i] += skip[i];
  return out_relu_.forward(main_out);
}

Tensor BasicBlock::backward(const Tensor& grad_out) {
  Tensor grad_sum = grad_out;
  out_relu_.backward_inplace(grad_sum);
  Tensor grad_in = main_.backward(grad_sum);
  if (projection_) {
    const Tensor grad_skip = projection_->backward(grad_sum);
    for (std::size_t i = 0; i < grad_in.numel(); ++i) {
      grad_in[i] += grad_skip[i];
    }
  } else {
    for (std::size_t i = 0; i < grad_in.numel(); ++i) {
      grad_in[i] += grad_sum[i];
    }
  }
  return grad_in;
}

std::vector<Param*> BasicBlock::params() {
  std::vector<Param*> out = main_.params();
  if (projection_) {
    for (Param* p : projection_->params()) out.push_back(p);
  }
  return out;
}

std::vector<nt::Tensor*> BasicBlock::state_buffers() {
  std::vector<nt::Tensor*> out = main_.state_buffers();
  if (projection_) {
    for (nt::Tensor* t : projection_->state_buffers()) out.push_back(t);
  }
  return out;
}

void BasicBlock::set_training(bool training) {
  Module::set_training(training);
  main_.set_training(training);
  if (projection_) projection_->set_training(training);
  out_relu_.set_training(training);
}

// ---------------------------------------------------------------------------

ResNet::ResNet(const ResNetConfig& cfg, util::Rng& rng) {
  if (cfg.stage_blocks.size() != cfg.stage_channels.size() ||
      cfg.stage_blocks.empty()) {
    throw std::invalid_argument("ResNet: stage config mismatch");
  }
  const int stem_channels = cfg.stage_channels.front();
  trunk_.add(std::make_unique<Conv2d>(cfg.in_channels, stem_channels,
                                      cfg.stem_kernel, cfg.stem_stride,
                                      cfg.stem_kernel / 2, rng,
                                      /*bias=*/false));
  trunk_.add(std::make_unique<BatchNorm2d>(stem_channels));
  trunk_.add(std::make_unique<ReLU>());
  if (cfg.stem_maxpool) {
    trunk_.add(std::make_unique<MaxPool2d>(3, 2, 1));
  }
  int in_ch = stem_channels;
  for (std::size_t stage = 0; stage < cfg.stage_blocks.size(); ++stage) {
    const int out_ch = cfg.stage_channels[stage];
    for (int block = 0; block < cfg.stage_blocks[stage]; ++block) {
      const int stride = (block == 0 && stage > 0) ? 2 : 1;
      trunk_.add(std::make_unique<BasicBlock>(in_ch, out_ch, stride, rng));
      in_ch = out_ch;
    }
  }
  trunk_.add(std::make_unique<GlobalAvgPool>());
  trunk_.add(std::make_unique<Flatten>());
  feature_dim_ = in_ch;
  head_ = std::make_unique<Linear>(feature_dim_, cfg.num_outputs, rng);
}

Tensor ResNet::forward(const Tensor& x) {
  NnTimer timer;
  return head_->forward(trunk_.forward(x));
}

Tensor ResNet::backward(const Tensor& grad_out) {
  NnTimer timer;
  return trunk_.backward(head_->backward(grad_out));
}

Tensor ResNet::forward_features(const Tensor& x) {
  NnTimer timer;
  return trunk_.forward(x);
}

Tensor ResNet::backward_features(const Tensor& grad_features) {
  NnTimer timer;
  return trunk_.backward(grad_features);
}

std::vector<Param*> ResNet::params() {
  std::vector<Param*> out = trunk_.params();
  for (Param* p : head_->params()) out.push_back(p);
  return out;
}

std::vector<nt::Tensor*> ResNet::state_buffers() {
  return trunk_.state_buffers();  // the linear head has none
}

void ResNet::set_training(bool training) {
  Module::set_training(training);
  trunk_.set_training(training);
  head_->set_training(training);
}

ResNetConfig resnet18_config(int in_channels, int num_outputs) {
  ResNetConfig cfg;
  cfg.in_channels = in_channels;
  cfg.num_outputs = num_outputs;
  return cfg;  // defaults are the 18-layer layout
}

ResNetConfig resnet_tiny_config(int in_channels, int num_outputs) {
  ResNetConfig cfg;
  cfg.in_channels = in_channels;
  cfg.num_outputs = num_outputs;
  cfg.stage_blocks = {1, 1};
  cfg.stage_channels = {16, 32};
  cfg.stem_kernel = 3;
  cfg.stem_stride = 1;
  cfg.stem_maxpool = false;
  return cfg;
}

}  // namespace rlmul::nn
