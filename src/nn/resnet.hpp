#pragma once
// ResNet backbone (He et al., CVPR'16) used as the agent network in
// RL-MUL (Section III-F). Besides the standard resnet18() builder there
// is a scaled-down resnet_tiny() with the same topology but fewer
// channels/blocks, which is what the CPU benches default to — the paper
// trains the full 18-layer network on a GPU, a substitution recorded in
// DESIGN.md.

#include <memory>

#include "nn/layers.hpp"
#include "nn/module.hpp"

namespace rlmul::nn {

/// Standard residual basic block: conv3x3-BN-ReLU-conv3x3-BN + skip
/// (1x1 conv + BN projection when the shape changes), then ReLU.
class BasicBlock : public Module {
 public:
  BasicBlock(int in_channels, int out_channels, int stride, util::Rng& rng);

  nt::Tensor forward(const nt::Tensor& x) override;
  nt::Tensor backward(const nt::Tensor& grad_out) override;
  std::vector<Param*> params() override;
  std::vector<nt::Tensor*> state_buffers() override;
  void set_training(bool training) override;

 private:
  Sequential main_;
  std::unique_ptr<Sequential> projection_;  // null = identity skip
  ReLU out_relu_;
  nt::Tensor skip_input_;
};

struct ResNetConfig {
  int in_channels = 2;          ///< K of the tensor representation
  std::vector<int> stage_blocks{2, 2, 2, 2};  ///< resnet18 layout
  std::vector<int> stage_channels{64, 128, 256, 512};
  int stem_kernel = 7;
  int stem_stride = 2;
  bool stem_maxpool = true;
  int num_outputs = 10;
};

/// The full agent network: ResNet trunk + linear head. For the A2C
/// variant, build the trunk once and attach two heads (see rl/a2c).
class ResNet : public Module {
 public:
  ResNet(const ResNetConfig& cfg, util::Rng& rng);

  nt::Tensor forward(const nt::Tensor& x) override;
  nt::Tensor backward(const nt::Tensor& grad_out) override;
  std::vector<Param*> params() override;
  std::vector<nt::Tensor*> state_buffers() override;
  void set_training(bool training) override;

  /// Features before the head: [N, C] after global pooling.
  nt::Tensor forward_features(const nt::Tensor& x);
  nt::Tensor backward_features(const nt::Tensor& grad_features);
  int feature_dim() const { return feature_dim_; }
  Linear& head() { return *head_; }

 private:
  Sequential trunk_;
  int feature_dim_ = 0;
  std::unique_ptr<Linear> head_;
};

/// Paper configuration: ResNet-18 over the K x 2N x ST tensor encoding.
ResNetConfig resnet18_config(int in_channels, int num_outputs);

/// CPU-sized variant: two stages of one block each, 16/32 channels,
/// 3x3 stem without max-pooling. Same code path, ~100x fewer FLOPs.
ResNetConfig resnet_tiny_config(int in_channels, int num_outputs);

}  // namespace rlmul::nn
