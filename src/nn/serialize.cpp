#include "nn/serialize.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace rlmul::nn {

namespace {

constexpr std::uint32_t kMagic = 0x524C4D31;  // "RLM1"

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& in,
                      std::size_t& pos) {
  if (pos + 4 > in.size()) throw std::runtime_error("checkpoint truncated");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[pos + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos += 4;
  return v;
}

}  // namespace

std::vector<std::uint8_t> save_params(Module& module) {
  const auto params = module.params();
  std::vector<std::uint8_t> out;
  put_u32(out, kMagic);
  put_u32(out, static_cast<std::uint32_t>(params.size()));
  for (Param* p : params) {
    put_u32(out, static_cast<std::uint32_t>(p->value.ndim()));
    for (int d = 0; d < p->value.ndim(); ++d) {
      put_u32(out, static_cast<std::uint32_t>(p->value.dim(d)));
    }
    const std::size_t bytes = p->value.numel() * sizeof(float);
    const std::size_t base = out.size();
    out.resize(base + bytes);
    std::memcpy(out.data() + base, p->value.data(), bytes);
  }
  return out;
}

void load_params(Module& module, const std::vector<std::uint8_t>& blob) {
  const auto params = module.params();
  std::size_t pos = 0;
  if (get_u32(blob, pos) != kMagic) {
    throw std::runtime_error("checkpoint: bad magic");
  }
  if (get_u32(blob, pos) != params.size()) {
    throw std::runtime_error("checkpoint: parameter count mismatch");
  }
  for (Param* p : params) {
    const auto ndim = get_u32(blob, pos);
    if (static_cast<int>(ndim) != p->value.ndim()) {
      throw std::runtime_error("checkpoint: rank mismatch");
    }
    for (int d = 0; d < p->value.ndim(); ++d) {
      if (static_cast<int>(get_u32(blob, pos)) != p->value.dim(d)) {
        throw std::runtime_error("checkpoint: shape mismatch");
      }
    }
    const std::size_t bytes = p->value.numel() * sizeof(float);
    if (pos + bytes > blob.size()) {
      throw std::runtime_error("checkpoint truncated");
    }
    std::memcpy(p->value.data(), blob.data() + pos, bytes);
    pos += bytes;
  }
  if (pos != blob.size()) {
    throw std::runtime_error("checkpoint: trailing bytes");
  }
}

void save_params_file(Module& module, const std::string& path) {
  const auto blob = save_params(module);
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open " + path);
  os.write(reinterpret_cast<const char*>(blob.data()),
           static_cast<std::streamsize>(blob.size()));
}

void load_params_file(Module& module, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open " + path);
  std::vector<std::uint8_t> blob(
      (std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  load_params(module, blob);
}

void copy_params(Module& from, Module& to) {
  const auto src = from.params();
  const auto dst = to.params();
  if (src.size() != dst.size()) {
    throw std::runtime_error("copy_params: structure mismatch");
  }
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (!nt::same_shape(src[i]->value, dst[i]->value)) {
      throw std::runtime_error("copy_params: shape mismatch");
    }
    dst[i]->value = src[i]->value;
  }
}

}  // namespace rlmul::nn
