#pragma once
// Shared checkpoint helpers for the RL methods: optimizer moments and
// environment state round-trips. Internal to src/search.

#include <stdexcept>

#include "nn/module.hpp"
#include "nn/optim.hpp"
#include "nn/serialize.hpp"
#include "rl/env.hpp"
#include "search/blob.hpp"

namespace rlmul::search {

/// Full network state: the trainable parameters (via the nn:: blob
/// format) plus the non-trainable state buffers (batch-norm running
/// statistics), which save_params deliberately excludes but which a
/// bit-exact training resume needs — eval-mode forwards read them.
inline void save_net(BlobWriter& w, nn::Module& net) {
  w.bytes(nn::save_params(net));
  const auto buffers = net.state_buffers();
  w.u32(static_cast<std::uint32_t>(buffers.size()));
  for (const nt::Tensor* t : buffers) w.tensor(*t);
}

inline void load_net(BlobReader& r, nn::Module& net) {
  nn::load_params(net, r.bytes());
  const auto buffers = net.state_buffers();
  if (r.u32() != buffers.size()) {
    throw std::runtime_error("checkpoint: network buffer count mismatch");
  }
  for (nt::Tensor* t : buffers) r.tensor_into(*t);
}

/// Optimizer moment tensors (e.g. RMSProp mean squares) in parameter
/// order, plus any scalar state (e.g. the Adam step counter).
inline void save_optim(BlobWriter& w, nn::Optimizer& optim) {
  const auto tensors = optim.state_tensors();
  w.u32(static_cast<std::uint32_t>(tensors.size()));
  for (const nt::Tensor* t : tensors) w.tensor(*t);
  w.f64_vec(optim.state_scalars());
}

inline void load_optim(BlobReader& r, nn::Optimizer& optim) {
  const auto tensors = optim.state_tensors();
  if (r.u32() != tensors.size()) {
    throw std::runtime_error("checkpoint: optimizer state count mismatch");
  }
  for (nt::Tensor* t : tensors) r.tensor_into(*t);
  optim.set_state_scalars(r.f64_vec());
}

/// Prefix-graph round-trip for joint-search checkpoints. An empty
/// graph (width 0, no nodes) is a valid payload — it means "no CPA
/// commitment".
inline void save_prefix_graph(BlobWriter& w, const prefix::PrefixGraph& g) {
  w.i32(g.width);
  w.u32(static_cast<std::uint32_t>(g.nodes.size()));
  for (const prefix::Node& n : g.nodes) {
    w.i32(n.hi);
    w.i32(n.lo);
    w.i32(n.left);
    w.i32(n.right);
  }
  w.u32(static_cast<std::uint32_t>(g.outputs.size()));
  for (const prefix::Ref ref : g.outputs) w.i32(ref);
}

inline prefix::PrefixGraph load_prefix_graph(BlobReader& r) {
  prefix::PrefixGraph g;
  g.width = r.i32();
  g.nodes.resize(r.u32());
  for (prefix::Node& n : g.nodes) {
    n.hi = r.i32();
    n.lo = r.i32();
    n.left = r.i32();
    n.right = r.i32();
  }
  g.outputs.resize(r.u32());
  for (prefix::Ref& ref : g.outputs) ref = r.i32();
  return g;
}

/// Design-point extras beyond the tree: written only when a method's
/// joint-search flags are on, so flags-off checkpoints keep the legacy
/// byte layout.
inline void save_point_extras(BlobWriter& w, const ppg::DesignPoint& p) {
  w.u8(static_cast<std::uint8_t>(p.ppg));
  save_prefix_graph(w, p.cpa);
}

inline void load_point_extras(BlobReader& r, ppg::DesignPoint& p) {
  if (!ppg::ppg_kind_from_index(r.u8(), &p.ppg)) {
    throw std::runtime_error("state: bad ppg kind");
  }
  p.cpa = load_prefix_graph(r);
}

inline void save_env(BlobWriter& w, const rl::MultiplierEnv& env) {
  const rl::MultiplierEnv::State st = env.state();
  w.tree(st.point.tree);
  w.f64(st.cost);
  w.tree(st.best_point.tree);
  w.f64(st.best_cost);
  // Joint-search extras ride after the legacy fields; a flags-off env
  // writes exactly the historical bytes.
  if (env.joint_search()) {
    save_point_extras(w, st.point);
    save_point_extras(w, st.best_point);
  }
}

inline void load_env(BlobReader& r, rl::MultiplierEnv& env) {
  rl::MultiplierEnv::State st;
  // Pre-restore point carries the spec's PPG family for plain envs.
  st.point = env.point();
  st.best_point = env.best_point();
  st.point.tree = r.tree();
  st.cost = r.f64();
  st.best_point.tree = r.tree();
  st.best_cost = r.f64();
  if (env.joint_search()) {
    load_point_extras(r, st.point);
    load_point_extras(r, st.best_point);
  }
  env.restore(st);
}

}  // namespace rlmul::search
