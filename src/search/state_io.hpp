#pragma once
// Shared checkpoint helpers for the RL methods: optimizer moments and
// environment state round-trips. Internal to src/search.

#include <stdexcept>

#include "nn/module.hpp"
#include "nn/optim.hpp"
#include "nn/serialize.hpp"
#include "rl/env.hpp"
#include "search/blob.hpp"

namespace rlmul::search {

/// Full network state: the trainable parameters (via the nn:: blob
/// format) plus the non-trainable state buffers (batch-norm running
/// statistics), which save_params deliberately excludes but which a
/// bit-exact training resume needs — eval-mode forwards read them.
inline void save_net(BlobWriter& w, nn::Module& net) {
  w.bytes(nn::save_params(net));
  const auto buffers = net.state_buffers();
  w.u32(static_cast<std::uint32_t>(buffers.size()));
  for (const nt::Tensor* t : buffers) w.tensor(*t);
}

inline void load_net(BlobReader& r, nn::Module& net) {
  nn::load_params(net, r.bytes());
  const auto buffers = net.state_buffers();
  if (r.u32() != buffers.size()) {
    throw std::runtime_error("checkpoint: network buffer count mismatch");
  }
  for (nt::Tensor* t : buffers) r.tensor_into(*t);
}

/// Optimizer moment tensors (e.g. RMSProp mean squares) in parameter
/// order, plus any scalar state (e.g. the Adam step counter).
inline void save_optim(BlobWriter& w, nn::Optimizer& optim) {
  const auto tensors = optim.state_tensors();
  w.u32(static_cast<std::uint32_t>(tensors.size()));
  for (const nt::Tensor* t : tensors) w.tensor(*t);
  w.f64_vec(optim.state_scalars());
}

inline void load_optim(BlobReader& r, nn::Optimizer& optim) {
  const auto tensors = optim.state_tensors();
  if (r.u32() != tensors.size()) {
    throw std::runtime_error("checkpoint: optimizer state count mismatch");
  }
  for (nt::Tensor* t : tensors) r.tensor_into(*t);
  optim.set_state_scalars(r.f64_vec());
}

inline void save_env(BlobWriter& w, const rl::MultiplierEnv& env) {
  const rl::MultiplierEnv::State st = env.state();
  w.tree(st.tree);
  w.f64(st.cost);
  w.tree(st.best_tree);
  w.f64(st.best_cost);
}

inline void load_env(BlobReader& r, rl::MultiplierEnv& env) {
  rl::MultiplierEnv::State st;
  st.tree = r.tree();
  st.cost = r.f64();
  st.best_tree = r.tree();
  st.best_cost = r.f64();
  env.restore(st);
}

}  // namespace rlmul::search
