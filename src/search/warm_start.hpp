#pragma once
// Warm-start records: previously synthesized (tree, evaluation) pairs —
// typically pulled from a dsdb::Store — that a search::Driver admits
// into the evaluator's cache and Pareto archive before a run and offers
// to Method::warm_start. Admitted records are free: re-evaluating one
// is a cache hit and never counts against the driver's EDA budget.

#include <vector>

#include "ct/compressor_tree.hpp"
#include "synth/evaluator.hpp"

namespace rlmul::search {

struct WarmStartRecord {
  ct::CompressorTree tree;
  synth::DesignEval eval;
};

using WarmStartRecords = std::vector<WarmStartRecord>;

}  // namespace rlmul::search
