#include <limits>

#include "baselines/gomil.hpp"
#include "ppg/ppg.hpp"
#include "search/methods.hpp"

namespace rlmul::search {

// The one-shot methods start the best at +infinity so their single
// design always installs itself — the candidate set stays exactly
// {closed-form tree}, matching the pre-refactor harness runners.

void GomilMethod::init(Context& ctx) {
  ctx.result().best_cost = std::numeric_limits<double>::infinity();
  done_ = false;
}

bool GomilMethod::step(Context& ctx) {
  if (done_) return false;
  const ct::CompressorTree tree =
      baselines::gomil_tree(ctx.evaluator().spec());
  const double cost = ctx.evaluator().cost(ctx.evaluator().evaluate(tree),
                                           cfg_.w_area, cfg_.w_delay);
  ctx.offer_best(cost, tree);
  ctx.push_cost(cost);
  ctx.push_best();
  done_ = true;
  return true;
}

void GomilMethod::save_state(BlobWriter& w) const { w.u8(done_ ? 1 : 0); }

void GomilMethod::load_state(BlobReader& r) { done_ = r.u8() != 0; }

void WallaceMethod::init(Context& ctx) {
  ctx.result().best_cost = std::numeric_limits<double>::infinity();
  done_ = false;
}

bool WallaceMethod::step(Context& ctx) {
  if (done_) return false;
  const ct::CompressorTree tree = ppg::initial_tree(ctx.evaluator().spec());
  const double cost = ctx.evaluator().cost(ctx.evaluator().evaluate(tree),
                                           cfg_.w_area, cfg_.w_delay);
  ctx.offer_best(cost, tree);
  ctx.push_cost(cost);
  ctx.push_best();
  done_ = true;
  return true;
}

void WallaceMethod::save_state(BlobWriter& w) const { w.u8(done_ ? 1 : 0); }

void WallaceMethod::load_state(BlobReader& r) { done_ = r.u8() != 0; }

}  // namespace rlmul::search
