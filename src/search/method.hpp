#pragma once
// The unified search-method layer. Every optimizer in the repo — the
// RL agents (DQN, A2C), simulated annealing, and the one-shot baselines
// (GOMIL, Wallace) — implements the same small interface: init() builds
// the method's mutable state, step() advances the search by one unit
// and records into the shared RunResult, save_state()/load_state()
// round-trip that state through a checkpoint. A search::Driver owns the
// loop, the shared EDA-call budget, and checkpoint/resume; callers pick
// methods by name through search/registry.hpp.
//
// Budget semantics: one EDA call = one *unique* synthesis evaluation on
// the DesignEvaluator (repeat visits hit its cache and are free). The
// driver stops before a step whenever the step's worst case
// (max_evals_per_step) could overshoot the budget, so a run never
// exceeds it.

#include <cstdint>
#include <memory>
#include <vector>

#include "ct/compressor_tree.hpp"
#include "nn/resnet.hpp"
#include "rl/dqn.hpp"  // AgentNet
#include "search/blob.hpp"
#include "search/warm_start.hpp"
#include "synth/evaluator.hpp"

namespace rlmul::search {

/// Uniform outcome of any search run: the best design, the per-step
/// cost trajectories (Fig 12), and the budget accounting.
struct RunResult {
  ct::CompressorTree best_tree;
  /// Full design point of the best design: always mirrors best_tree;
  /// carries the pinned CPA graph / PPG family when the method searched
  /// those dimensions (empty CPA + spec PPG otherwise).
  ppg::DesignPoint best_point;
  double best_cost = 0.0;
  /// Cost of the current state after each step (mean across workers
  /// for parallel methods).
  std::vector<double> trajectory;
  std::vector<double> best_trajectory;
  /// Absolute unique synthesis evaluations on the evaluator at the end
  /// of the run (the legacy TrainResult/SaResult meaning).
  std::size_t eda_calls = 0;
  /// Unique evaluations attributable to this run, accumulated across
  /// resumed legs — the quantity the driver's budget bounds.
  std::size_t eda_consumed = 0;
  std::uint64_t steps_done = 0;
  /// True when the method finished on its own; false when the driver
  /// stopped it (budget or max_steps), i.e. the run is resumable.
  bool completed = false;
  /// Trained network when the method has one (DQN Q-net, A2C trunk).
  std::shared_ptr<nn::ResNet> network;
};

/// What a Method sees while running: the shared reward oracle plus the
/// uniform recording primitives. Methods compose push_cost/offer_best/
/// push_best in their historical order so refactored trajectories stay
/// bit-identical to the original training loops.
class Context {
 public:
  explicit Context(synth::DesignEvaluator& evaluator)
      : evaluator_(evaluator) {}

  synth::DesignEvaluator& evaluator() { return evaluator_; }
  RunResult& result() { return result_; }
  const RunResult& result() const { return result_; }

  /// Appends to the current-cost trajectory.
  void push_cost(double cost) { result_.trajectory.push_back(cost); }
  /// Installs (cost, tree) as best-so-far if it improves. The design
  /// point is the plain one: the evaluator spec's PPG, no pinned CPA.
  void offer_best(double cost, const ct::CompressorTree& tree) {
    if (cost < result_.best_cost) {
      result_.best_cost = cost;
      result_.best_tree = tree;
      result_.best_point.ppg = evaluator_.spec().ppg;
      result_.best_point.tree = tree;
      result_.best_point.cpa = prefix::PrefixGraph{};
    }
  }
  /// Installs a full design point as best-so-far if it improves
  /// (joint-search methods).
  void offer_best(double cost, const ppg::DesignPoint& point) {
    if (cost < result_.best_cost) {
      result_.best_cost = cost;
      result_.best_tree = point.tree;
      result_.best_point = point;
    }
  }
  /// Appends the current best to the best-so-far trajectory.
  void push_best() { result_.best_trajectory.push_back(result_.best_cost); }

 private:
  synth::DesignEvaluator& evaluator_;
  RunResult result_;
};

/// One configuration type for every method; each method reads the
/// fields it understands and ignores the rest, so the registry can
/// construct any method from the same struct.
struct MethodConfig {
  int steps = 100;     ///< total search steps (per worker for A2C)
  int threads = 4;     ///< A2C parallel environments
  // -- DQN --
  int warmup = 32;
  int batch_size = 16;
  int buffer_capacity = 4096;
  double eps_start = 0.95;
  double eps_end = 0.05;
  int target_sync = 0;
  bool double_dqn = false;
  // -- A2C --
  int n_step = 5;
  double value_coef = 0.5;
  double entropy_coef = 0.01;
  // -- shared RL --
  double gamma = 0.8;
  double lr = 1e-3;
  double grad_clip = 5.0;
  rl::AgentNet net = rl::AgentNet::kTiny;
  // -- SA --
  double t_start = 0.08;
  double t_end = 0.002;
  /// Neighbors proposed (and evaluated as one batch) per anneal step;
  /// the Metropolis test runs on the cheapest of them. 1 keeps the
  /// classic single-proposal anneal and its exact RNG trajectory.
  int sa_proposals = 1;
  // -- environment / objective --
  double w_area = 1.0;
  double w_delay = 1.0;
  int max_stages = -1;
  bool enable_42 = false;
  /// Joint-search dimensions (see rl::EnvConfig): pin + mutate the CPA
  /// prefix graph, and/or expose PPG-family switches as actions. Off by
  /// default — the paper's tree-only search space.
  bool search_cpa = false;
  bool search_ppg = false;
  int prefix_levels = 4;
  int episode_length = 0;
  bool verbose = false;
  std::uint64_t seed = 1;
};

/// A search method driven by search::Driver. The contract:
///  - init(ctx) builds all mutable state from the config and seeds the
///    RunResult's best (it runs before load_state on resume, which then
///    overwrites whatever init randomized);
///  - step(ctx) advances one unit of search, recording through ctx, and
///    returns false — without doing work — once the method is finished.
///    One-shot methods (GOMIL, Wallace) use it as a run-to-completion
///    escape hatch: the whole search happens in a single step() call;
///  - save_state/load_state round-trip every bit of mutable state (RNG,
///    env, network, optimizer, buffers, counters) so a resumed run
///    reproduces the remaining trajectory bit-for-bit.
class Method {
 public:
  virtual ~Method() = default;

  virtual const char* name() const = 0;

  /// Worst-case unique evaluations a single step() can consume; the
  /// driver's budget check relies on this bound being honest.
  virtual int max_evals_per_step() const { return 1; }

  virtual void init(Context& ctx) = 0;
  virtual bool step(Context& ctx) = 0;

  /// Called by the driver after init() on fresh runs (never on resume —
  /// checkpoint state wins) when warm-start records are available. The
  /// records are already admitted into the evaluator's cache, sorted
  /// best-first. Methods may seed their search state from them; the
  /// default keeps the cache-only benefit.
  virtual void warm_start(Context& ctx, const WarmStartRecords& records) {
    (void)ctx;
    (void)records;
  }

  /// Called once after the loop ends (even on budget stop), e.g. to
  /// stash the trained network into the result.
  virtual void finish(Context& ctx) { (void)ctx; }

  virtual void save_state(BlobWriter& w) const = 0;
  virtual void load_state(BlobReader& r) = 0;
};

}  // namespace rlmul::search
