#include <cmath>
#include <iterator>

#include "ppg/ppg.hpp"
#include "prefix/prefix_graph.hpp"
#include "search/methods.hpp"
#include "search/state_io.hpp"

namespace rlmul::search {

namespace {

/// Joint action space shared with rl::MultiplierEnv: [0, base) are the
/// paper's tree actions, then prefix_levels * columns matrix toggles,
/// then one switch per PPG family.
int joint_base(const ppg::DesignPoint& p) {
  return p.tree.columns() * ct::kActionsPerColumn;
}

std::vector<double> joint_weights(const ppg::DesignPoint& p,
                                  const MethodConfig& cfg) {
  const auto mask =
      ct::legal_action_mask(p.tree, cfg.max_stages, cfg.enable_42);
  std::vector<double> weights(mask.size());
  double tree_mass = 0.0;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    weights[i] = mask[i] != 0 ? 1.0 : 0.0;
    tree_mass += weights[i];
  }
  // The structural classes are huge (prefix toggles alone outnumber the
  // legal tree moves), so uniform per-action weights would spend most of
  // the EDA budget perturbing the CPA instead of refining the tree.
  // Give the prefix class half the tree class's total proposal mass and
  // the PPG class a tenth: every structural move stays reachable, but
  // tree refinement dominates like it does in the menu baseline.
  if (tree_mass <= 0.0) tree_mass = 1.0;  // all tree moves masked off
  if (cfg.search_cpa) {
    const std::size_t prefix_actions =
        static_cast<std::size_t>(cfg.prefix_levels) *
        static_cast<std::size_t>(p.tree.columns());
    weights.insert(weights.end(), prefix_actions,
                   0.5 * tree_mass / static_cast<double>(prefix_actions));
  }
  if (cfg.search_ppg) {
    for (const ppg::PpgKind kind : ppg::kAllPpgKinds) {
      weights.push_back(kind == p.ppg
                            ? 0.0
                            : 0.1 * tree_mass /
                                  static_cast<double>(
                                      std::size(ppg::kAllPpgKinds) - 1));
    }
  }
  return weights;
}

/// Applies joint action `idx` to a copy of `p` (mirrors
/// rl::MultiplierEnv::step's action decoding).
ppg::DesignPoint apply_joint_action(const ppg::DesignPoint& p, int idx,
                                    const MethodConfig& cfg,
                                    const ppg::MultiplierSpec& spec) {
  const int base = joint_base(p);
  const int width = p.tree.columns();
  const int prefix_actions = cfg.search_cpa ? cfg.prefix_levels * width : 0;
  ppg::DesignPoint out = p;
  if (idx < base) {
    out.tree = ct::apply_action(p.tree, ct::action_from_index(idx));
  } else if (idx < base + prefix_actions) {
    const int cell = idx - base;
    prefix::Matrix m = prefix::matrix_of(p.cpa);
    prefix::Move mv;
    mv.level = cell / width;
    mv.bit = cell % width;
    mv.kind = m.at(mv.level, mv.bit) ? prefix::MoveKind::kRemoveNode
                                     : prefix::MoveKind::kAddNode;
    out.cpa = prefix::legalize(prefix::apply_move(std::move(m), mv)).graph;
  } else {
    out.ppg = ppg::kAllPpgKinds[static_cast<std::size_t>(idx - base -
                                                         prefix_actions)];
    out.tree = ppg::retarget_tree(p.tree, out.resolved_spec(spec));
  }
  return out;
}

}  // namespace

void SaMethod::init(Context& ctx) {
  rng_.reseed(cfg_.seed);
  if (cfg_.prefix_levels < 1) cfg_.prefix_levels = 1;
  current_.ppg = ctx.evaluator().spec().ppg;
  current_.tree = ppg::initial_tree(ctx.evaluator().spec());
  current_.cpa = prefix::PrefixGraph{};
  if (cfg_.search_cpa) {
    // Open the anneal at the cheapest menu graph under this run's
    // weights instead of always at ripple: the joint space contains the
    // menu as pinned points, so paying four evaluations up front (they
    // count against the EDA budget like any other) keeps the search
    // competitive with a menu baseline at every weight setting.
    const int w = ctx.evaluator().spec().columns();
    const prefix::PrefixGraph menu[] = {
        prefix::serial(w), prefix::brent_kung(w), prefix::sklansky(w),
        prefix::kogge_stone(w)};
    std::vector<ppg::DesignPoint> starts;
    for (const prefix::PrefixGraph& g : menu) {
      ppg::DesignPoint p = current_;
      p.cpa = g;
      starts.push_back(std::move(p));
    }
    const auto evals = ctx.evaluator().evaluate_batch(starts);
    std::size_t best = 0;
    double best_cost =
        ctx.evaluator().cost(evals[0], cfg_.w_area, cfg_.w_delay);
    for (std::size_t i = 1; i < evals.size(); ++i) {
      const double c =
          ctx.evaluator().cost(evals[i], cfg_.w_area, cfg_.w_delay);
      if (c < best_cost) {
        best = i;
        best_cost = c;
      }
    }
    current_ = starts[best];
    current_cost_ = best_cost;
  } else {
    current_cost_ = ctx.evaluator().cost(ctx.evaluator().evaluate(current_),
                                         cfg_.w_area, cfg_.w_delay);
  }
  ctx.result().best_tree = current_.tree;
  ctx.result().best_point = current_;
  ctx.result().best_cost = current_cost_;
  decay_ = cfg_.steps > 1
               ? std::pow(cfg_.t_end / cfg_.t_start,
                          1.0 / static_cast<double>(cfg_.steps - 1))
               : 1.0;
  temp_ = cfg_.t_start;
  t_ = 0;
}

void SaMethod::warm_start(Context& ctx, const WarmStartRecords& records) {
  // Records arrive sorted by raw (area + delay) sums; the anneal's
  // objective applies the configured weights, so re-score every
  // matching record and restart from the cheapest one. Joint-search
  // anneals skip the restart: stored records are menu evaluations,
  // whose costs are not comparable to this run's pinned-CPA /
  // PPG-switched states (the evaluator-cache benefit remains).
  if (!cfg_.search_cpa && !cfg_.search_ppg) {
    const ct::CompressorTree* best = nullptr;
    double best_cost = current_cost_;
    for (const WarmStartRecord& rec : records) {
      if (rec.tree.pp != current_.tree.pp) continue;
      const double c =
          ctx.evaluator().cost(rec.eval, cfg_.w_area, cfg_.w_delay);
      if (c < best_cost) {
        best = &rec.tree;
        best_cost = c;
      }
    }
    if (best != nullptr) {
      current_.tree = *best;
      current_cost_ = best_cost;
    }
  }
  ctx.offer_best(current_cost_, current_);
}

bool SaMethod::step(Context& ctx) {
  if (t_ >= cfg_.steps) return false;
  std::vector<double> weights = joint_weights(current_, cfg_);
  const ppg::MultiplierSpec spec = ctx.evaluator().spec();

  if (cfg_.sa_proposals > 1) {
    // K-neighborhood step: sample up to K distinct legal moves, score
    // them as one batched evaluation, Metropolis-test the cheapest.
    // This consumes RNG differently from the single-proposal anneal,
    // so it is opt-in via sa_proposals and never the default.
    std::vector<ppg::DesignPoint> candidates;
    for (int k = 0; k < cfg_.sa_proposals; ++k) {
      const std::size_t pick = rng_.sample_discrete(weights);
      if (pick >= weights.size()) break;  // legal moves exhausted
      weights[pick] = 0.0;
      candidates.push_back(
          apply_joint_action(current_, static_cast<int>(pick), cfg_, spec));
    }
    if (candidates.empty()) return false;  // no legal move at all
    // Every proposal is one move off the current state, so they all
    // share it as their delta parent.
    const std::vector<synth::ParentHint> hints(
        candidates.size(), synth::ParentHint{current_.key(spec)});
    const auto evals = ctx.evaluator().evaluate_batch(candidates, hints);
    std::size_t best = 0;
    double best_cost =
        ctx.evaluator().cost(evals[0], cfg_.w_area, cfg_.w_delay);
    for (std::size_t i = 1; i < evals.size(); ++i) {
      const double c = ctx.evaluator().cost(evals[i], cfg_.w_area,
                                            cfg_.w_delay);
      if (c < best_cost) {
        best = i;
        best_cost = c;
      }
    }
    const double delta = best_cost - current_cost_;
    if (delta <= 0.0 || rng_.next_double() < std::exp(-delta / temp_)) {
      current_ = candidates[best];
      current_cost_ = best_cost;
    }
    ctx.offer_best(current_cost_, current_);
    ctx.push_cost(current_cost_);
    ctx.push_best();
    temp_ *= decay_;
    ++t_;
    return true;
  }

  const std::size_t pick = rng_.sample_discrete(weights);
  if (pick >= weights.size()) return false;  // no legal move at all

  const ppg::DesignPoint candidate =
      apply_joint_action(current_, static_cast<int>(pick), cfg_, spec);
  const double cand_cost = ctx.evaluator().cost(
      ctx.evaluator().evaluate(candidate,
                               synth::ParentHint{current_.key(spec)}),
      cfg_.w_area, cfg_.w_delay);

  const double delta = cand_cost - current_cost_;
  if (delta <= 0.0 || rng_.next_double() < std::exp(-delta / temp_)) {
    current_ = candidate;
    current_cost_ = cand_cost;
  }
  ctx.offer_best(current_cost_, current_);
  ctx.push_cost(current_cost_);
  ctx.push_best();
  temp_ *= decay_;
  ++t_;
  return true;
}

void SaMethod::save_state(BlobWriter& w) const {
  w.rng(rng_.state());
  w.tree(current_.tree);
  w.f64(current_cost_);
  w.f64(temp_);
  w.i32(t_);
  // Joint-search extras after the legacy layout; flags-off checkpoints
  // are byte-identical to the pre-refactor format.
  if (cfg_.search_cpa || cfg_.search_ppg) {
    save_point_extras(w, current_);
  }
}

void SaMethod::load_state(BlobReader& r) {
  rng_.set_state(r.rng());
  current_.tree = r.tree();
  current_cost_ = r.f64();
  temp_ = r.f64();
  t_ = r.i32();
  if (cfg_.search_cpa || cfg_.search_ppg) {
    load_point_extras(r, current_);
  }
}

}  // namespace rlmul::search
