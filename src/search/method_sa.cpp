#include <cmath>

#include "ppg/ppg.hpp"
#include "search/methods.hpp"

namespace rlmul::search {

void SaMethod::init(Context& ctx) {
  rng_.reseed(cfg_.seed);
  current_ = ppg::initial_tree(ctx.evaluator().spec());
  current_cost_ = ctx.evaluator().cost(ctx.evaluator().evaluate(current_),
                                       cfg_.w_area, cfg_.w_delay);
  ctx.result().best_tree = current_;
  ctx.result().best_cost = current_cost_;
  decay_ = cfg_.steps > 1
               ? std::pow(cfg_.t_end / cfg_.t_start,
                          1.0 / static_cast<double>(cfg_.steps - 1))
               : 1.0;
  temp_ = cfg_.t_start;
  t_ = 0;
}

void SaMethod::warm_start(Context& ctx, const WarmStartRecords& records) {
  // Records arrive sorted by raw (area + delay) sums; the anneal's
  // objective applies the configured weights, so re-score every
  // matching record and restart from the cheapest one.
  const ct::CompressorTree* best = nullptr;
  double best_cost = current_cost_;
  for (const WarmStartRecord& rec : records) {
    if (rec.tree.pp != current_.pp) continue;
    const double c =
        ctx.evaluator().cost(rec.eval, cfg_.w_area, cfg_.w_delay);
    if (c < best_cost) {
      best = &rec.tree;
      best_cost = c;
    }
  }
  if (best != nullptr) {
    current_ = *best;
    current_cost_ = best_cost;
  }
  ctx.offer_best(current_cost_, current_);
}

bool SaMethod::step(Context& ctx) {
  if (t_ >= cfg_.steps) return false;
  const auto mask =
      ct::legal_action_mask(current_, cfg_.max_stages, cfg_.enable_42);
  std::vector<double> weights(mask.size());
  for (std::size_t i = 0; i < mask.size(); ++i) {
    weights[i] = mask[i] != 0 ? 1.0 : 0.0;
  }

  if (cfg_.sa_proposals > 1) {
    // K-neighborhood step: sample up to K distinct legal moves, score
    // them as one batched evaluation, Metropolis-test the cheapest.
    // This consumes RNG differently from the single-proposal anneal,
    // so it is opt-in via sa_proposals and never the default.
    std::vector<ct::CompressorTree> candidates;
    for (int k = 0; k < cfg_.sa_proposals; ++k) {
      const std::size_t pick = rng_.sample_discrete(weights);
      if (pick >= mask.size()) break;  // legal moves exhausted
      weights[pick] = 0.0;
      candidates.push_back(ct::apply_action(
          current_, ct::action_from_index(static_cast<int>(pick))));
    }
    if (candidates.empty()) return false;  // no legal move at all
    const auto evals = ctx.evaluator().evaluate_batch(candidates);
    std::size_t best = 0;
    double best_cost =
        ctx.evaluator().cost(evals[0], cfg_.w_area, cfg_.w_delay);
    for (std::size_t i = 1; i < evals.size(); ++i) {
      const double c = ctx.evaluator().cost(evals[i], cfg_.w_area,
                                            cfg_.w_delay);
      if (c < best_cost) {
        best = i;
        best_cost = c;
      }
    }
    const double delta = best_cost - current_cost_;
    if (delta <= 0.0 || rng_.next_double() < std::exp(-delta / temp_)) {
      current_ = candidates[best];
      current_cost_ = best_cost;
    }
    ctx.offer_best(current_cost_, current_);
    ctx.push_cost(current_cost_);
    ctx.push_best();
    temp_ *= decay_;
    ++t_;
    return true;
  }

  const std::size_t pick = rng_.sample_discrete(weights);
  if (pick >= mask.size()) return false;  // no legal move at all

  const ct::CompressorTree candidate = ct::apply_action(
      current_, ct::action_from_index(static_cast<int>(pick)));
  const double cand_cost = ctx.evaluator().cost(
      ctx.evaluator().evaluate(candidate), cfg_.w_area, cfg_.w_delay);

  const double delta = cand_cost - current_cost_;
  if (delta <= 0.0 || rng_.next_double() < std::exp(-delta / temp_)) {
    current_ = candidate;
    current_cost_ = cand_cost;
  }
  ctx.offer_best(current_cost_, current_);
  ctx.push_cost(current_cost_);
  ctx.push_best();
  temp_ *= decay_;
  ++t_;
  return true;
}

void SaMethod::save_state(BlobWriter& w) const {
  w.rng(rng_.state());
  w.tree(current_);
  w.f64(current_cost_);
  w.f64(temp_);
  w.i32(t_);
}

void SaMethod::load_state(BlobReader& r) {
  rng_.set_state(r.rng());
  current_ = r.tree();
  current_cost_ = r.f64();
  temp_ = r.f64();
  t_ = r.i32();
}

}  // namespace rlmul::search
