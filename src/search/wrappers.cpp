// The historical entry points — rl::train_dqn, rl::train_a2c,
// baselines::simulated_annealing — as thin adapters over the search
// layer. Declared in their original headers; defined here so the rl and
// baselines libraries stay below search in the dependency order. At a
// fixed seed each wrapper produces exactly the trajectory its original
// hand-rolled loop produced.

#include "baselines/sa.hpp"
#include "rl/a2c.hpp"
#include "rl/dqn.hpp"
#include "search/driver.hpp"
#include "search/methods.hpp"

namespace rlmul::rl {

namespace {

TrainResult to_train_result(search::RunResult&& r) {
  TrainResult out;
  out.best_tree = std::move(r.best_tree);
  out.best_cost = r.best_cost;
  out.trajectory = std::move(r.trajectory);
  out.best_trajectory = std::move(r.best_trajectory);
  out.eda_calls = r.eda_calls;
  out.network = std::move(r.network);
  return out;
}

}  // namespace

TrainResult train_dqn(synth::DesignEvaluator& evaluator,
                      const DqnOptions& opts) {
  search::MethodConfig cfg;
  cfg.steps = opts.steps;
  cfg.warmup = opts.warmup;
  cfg.batch_size = opts.batch_size;
  cfg.buffer_capacity = opts.buffer_capacity;
  cfg.gamma = opts.gamma;
  cfg.eps_start = opts.eps_start;
  cfg.eps_end = opts.eps_end;
  cfg.lr = opts.lr;
  cfg.grad_clip = opts.grad_clip;
  cfg.target_sync = opts.target_sync;
  cfg.double_dqn = opts.double_dqn;
  cfg.episode_length = opts.episode_length;
  cfg.net = opts.net;
  cfg.w_area = opts.w_area;
  cfg.w_delay = opts.w_delay;
  cfg.max_stages = opts.max_stages;
  cfg.enable_42 = opts.enable_42;
  cfg.seed = opts.seed;
  search::DqnMethod method(cfg);
  search::Driver driver(evaluator);
  return to_train_result(driver.run(method));
}

TrainResult train_a2c(synth::DesignEvaluator& evaluator,
                      const A2cOptions& opts) {
  search::MethodConfig cfg;
  cfg.steps = opts.steps;
  cfg.threads = opts.num_threads;
  cfg.n_step = opts.n_step;
  cfg.gamma = opts.gamma;
  cfg.lr = opts.lr;
  cfg.value_coef = opts.value_coef;
  cfg.entropy_coef = opts.entropy_coef;
  cfg.grad_clip = opts.grad_clip;
  cfg.net = opts.net;
  cfg.w_area = opts.w_area;
  cfg.w_delay = opts.w_delay;
  cfg.max_stages = opts.max_stages;
  cfg.enable_42 = opts.enable_42;
  cfg.episode_length = opts.episode_length;
  cfg.verbose = opts.verbose;
  cfg.seed = opts.seed;
  search::A2cMethod method(cfg);
  search::Driver driver(evaluator);
  return to_train_result(driver.run(method));
}

}  // namespace rlmul::rl

namespace rlmul::baselines {

SaResult simulated_annealing(synth::DesignEvaluator& evaluator,
                             const SaOptions& opts) {
  search::MethodConfig cfg;
  cfg.steps = opts.steps;
  cfg.t_start = opts.t_start;
  cfg.t_end = opts.t_end;
  cfg.w_area = opts.w_area;
  cfg.w_delay = opts.w_delay;
  cfg.max_stages = opts.max_stages;
  cfg.enable_42 = opts.enable_42;
  cfg.seed = opts.seed;
  search::SaMethod method(cfg);
  search::Driver driver(evaluator);
  search::RunResult r = driver.run(method);
  SaResult out;
  out.best_tree = std::move(r.best_tree);
  out.best_cost = r.best_cost;
  out.trajectory = std::move(r.trajectory);
  out.best_trajectory = std::move(r.best_trajectory);
  return out;
}

}  // namespace rlmul::baselines
