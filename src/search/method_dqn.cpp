#include <unordered_map>

#include "nn/serialize.hpp"
#include "search/methods.hpp"
#include "search/state_io.hpp"

namespace rlmul::search {

namespace {

int random_legal(const std::vector<std::uint8_t>& mask, util::Rng& rng) {
  std::vector<double> w(mask.size());
  for (std::size_t i = 0; i < mask.size(); ++i) w[i] = mask[i];
  const std::size_t pick = rng.sample_discrete(w);
  return pick < mask.size() ? static_cast<int>(pick) : -1;
}

}  // namespace

void DqnMethod::init(Context& ctx) {
  rng_.reseed(cfg_.seed);
  rl::EnvConfig env_cfg;
  env_cfg.w_area = cfg_.w_area;
  env_cfg.w_delay = cfg_.w_delay;
  env_cfg.max_stages = cfg_.max_stages;
  env_cfg.enable_42 = cfg_.enable_42;
  env_cfg.search_cpa = cfg_.search_cpa;
  env_cfg.search_ppg = cfg_.search_ppg;
  env_cfg.prefix_levels = cfg_.prefix_levels;
  pool_ = std::make_unique<rl::EnvPool>(ctx.evaluator(), env_cfg, 1);

  num_actions_ = pool_->num_actions();
  const int channels = pool_->env(0).num_channels();
  net_ = rl::make_agent_net(cfg_.net, channels, num_actions_, rng_);
  target_.reset();
  if (cfg_.target_sync > 0) {
    target_ = rl::make_agent_net(cfg_.net, channels, num_actions_, rng_);
  }
  optim_ = std::make_unique<nn::RmsProp>(net_->params(), cfg_.lr);
  buffer_ = std::make_unique<rl::ReplayBuffer>(
      static_cast<std::size_t>(cfg_.buffer_capacity));

  ctx.result().best_tree = pool_->env(0).best_tree();
  ctx.result().best_point = pool_->env(0).best_point();
  ctx.result().best_cost = pool_->env(0).best_cost();
  if (target_) nn::copy_params(*net_, *target_);
  t_ = 0;
  updates_ = 0;
}

void DqnMethod::warm_start(Context& ctx, const WarmStartRecords& records) {
  rl::MultiplierEnv& env = pool_->env(0);
  const ct::ColumnHeights& pp = env.tree().pp;
  auto cost_of = [&](const WarmStartRecord& rec) {
    return ctx.evaluator().cost(rec.eval, cfg_.w_area, cfg_.w_delay);
  };

  std::unordered_map<std::string, const WarmStartRecord*> by_key;
  for (const WarmStartRecord& rec : records) {
    if (rec.tree.pp != pp) continue;
    by_key.emplace(rec.tree.key(), &rec);
    ctx.offer_best(cost_of(rec), rec.tree);
  }
  if (by_key.empty()) return;
  // Joint-search runs stop at best-so-far seeding: stored records are
  // tree-only menu evaluations, so a synthesized transition would pair
  // the wrong observation shape and a base-length next_mask with the
  // extended action space.
  if (env.joint_search()) return;

  // Stored designs that are one legal action apart are ready-made
  // transitions: replay them (reward = cost drop, Equation 10) so the
  // first learning step starts from cross-run experience instead of a
  // cold buffer. Capped at half the buffer so fresh on-line experience
  // always fits; records are best-first, so the cap keeps the good end.
  const std::size_t cap =
      static_cast<std::size_t>(cfg_.buffer_capacity) / 2;
  constexpr std::size_t kMaxSources = 128;
  std::size_t sources = 0;
  std::size_t seeded = 0;
  for (const WarmStartRecord& rec : records) {
    if (seeded >= cap || sources >= kMaxSources) break;
    if (rec.tree.pp != pp) continue;
    ++sources;
    const auto mask =
        ct::legal_action_mask(rec.tree, env.max_stages(), cfg_.enable_42);
    const double from_cost = cost_of(rec);
    for (std::size_t a = 0; a < mask.size() && seeded < cap; ++a) {
      if (mask[a] == 0) continue;
      const ct::CompressorTree succ = ct::apply_action(
          rec.tree, ct::action_from_index(static_cast<int>(a)));
      auto it = by_key.find(succ.key());
      if (it == by_key.end()) continue;
      rl::Transition tr;
      tr.state.ppg = ctx.evaluator().spec().ppg;
      tr.state.tree = rec.tree;
      tr.action = static_cast<int>(a);
      tr.reward = from_cost - cost_of(*it->second);
      tr.next_state.ppg = tr.state.ppg;
      tr.next_state.tree = it->second->tree;
      tr.next_mask = ct::legal_action_mask(it->second->tree,
                                           env.max_stages(), cfg_.enable_42);
      buffer_->push(std::move(tr));
      ++seeded;
    }
  }
}

bool DqnMethod::step(Context& ctx) {
  if (t_ >= cfg_.steps) return false;
  rl::MultiplierEnv& env = pool_->env(0);
  if (cfg_.episode_length > 0 && t_ > 0 && t_ % cfg_.episode_length == 0) {
    env.reset();
  }
  const auto mask = env.mask();
  int action = -1;
  const double frac =
      cfg_.steps > 1 ? static_cast<double>(t_) / (cfg_.steps - 1) : 1.0;
  const double eps = cfg_.eps_start + (cfg_.eps_end - cfg_.eps_start) * frac;
  if (t_ < cfg_.warmup || rng_.next_double() < eps) {
    action = random_legal(mask, rng_);
  } else {
    net_->set_training(false);
    const nt::Tensor q = net_->forward(pool_->observe_batch());
    action = rl::masked_argmax(q.data(), mask);
  }
  if (action < 0) {
    env.reset();  // dead end (can happen with very tight pruning)
    ++t_;
    return true;
  }

  const ppg::DesignPoint state = env.point();
  const auto out = pool_->step_all({action});
  rl::Transition tr;
  tr.state = state;
  tr.action = action;
  tr.reward = out[0].reward;
  tr.next_state = env.point();
  tr.next_mask = env.mask();
  buffer_->push(std::move(tr));

  ctx.push_cost(out[0].cost);
  ctx.offer_best(env.best_cost(), env.best_point());
  ctx.push_best();

  if (t_ < cfg_.warmup ||
      buffer_->size() < static_cast<std::size_t>(cfg_.batch_size)) {
    ++t_;
    return true;
  }

  // -- learning step -----------------------------------------------------
  std::vector<const rl::Transition*> batch;
  batch.reserve(static_cast<std::size_t>(cfg_.batch_size));
  for (int b = 0; b < cfg_.batch_size; ++b) {
    batch.push_back(&buffer_->sample(rng_));
  }

  // Bootstrap targets: y = r + gamma * max_legal Q(s', .). With
  // double DQN the arg-max comes from the online net and the value
  // from the target net, decoupling selection from evaluation.
  // encode_point_batch with both flags off writes exactly the
  // encode_batch slab, so one call covers plain and joint runs.
  std::vector<ppg::DesignPoint> next_states;
  for (const rl::Transition* tr_ptr : batch) {
    next_states.push_back(tr_ptr->next_state);
  }
  const nt::Tensor next_batch = rl::encode_point_batch(
      next_states, pool_->stage_pad(), cfg_.search_cpa, cfg_.search_ppg);
  nn::ResNet& boot_net = target_ ? *target_ : *net_;
  boot_net.set_training(false);
  const nt::Tensor q_next = boot_net.forward(next_batch);
  nt::Tensor q_next_online;
  const bool use_double = cfg_.double_dqn && target_ != nullptr;
  if (use_double) {
    net_->set_training(false);
    q_next_online = net_->forward(next_batch);
  }
  std::vector<double> targets;
  for (int b = 0; b < cfg_.batch_size; ++b) {
    const rl::Transition* tr_ptr = batch[static_cast<std::size_t>(b)];
    const float* selector =
        (use_double ? q_next_online.data() : q_next.data()) +
        static_cast<std::size_t>(b) * num_actions_;
    const int best = rl::masked_argmax(selector, tr_ptr->next_mask);
    const double boot =
        best >= 0
            ? q_next[static_cast<std::size_t>(b) * num_actions_ + best]
            : 0.0;
    targets.push_back(tr_ptr->reward + cfg_.gamma * boot);
  }

  std::vector<ppg::DesignPoint> states;
  for (const rl::Transition* tr_ptr : batch) states.push_back(tr_ptr->state);
  net_->set_training(true);
  net_->zero_grad();
  const nt::Tensor q = net_->forward(rl::encode_point_batch(
      states, pool_->stage_pad(), cfg_.search_cpa, cfg_.search_ppg));
  nt::Tensor grad(q.shape());
  for (int b = 0; b < cfg_.batch_size; ++b) {
    const rl::Transition* tr_ptr = batch[static_cast<std::size_t>(b)];
    const std::size_t idx =
        static_cast<std::size_t>(b) * num_actions_ + tr_ptr->action;
    grad[idx] = static_cast<float>(
        2.0 * (q[idx] - targets[static_cast<std::size_t>(b)]) /
        cfg_.batch_size);
  }
  net_->backward(grad);
  optim_->clip_grad_norm(cfg_.grad_clip);
  optim_->step();
  ++updates_;
  if (target_ && cfg_.target_sync > 0 && updates_ % cfg_.target_sync == 0) {
    nn::copy_params(*net_, *target_);
  }
  ++t_;
  return true;
}

void DqnMethod::finish(Context& ctx) { ctx.result().network = net_; }

void DqnMethod::save_state(BlobWriter& w) const {
  w.rng(rng_.state());
  w.i32(t_);
  w.i32(updates_);
  save_env(w, pool_->env(0));
  save_net(w, *net_);
  w.u8(target_ ? 1 : 0);
  if (target_) save_net(w, *target_);
  save_optim(w, *optim_);
  const auto& contents = buffer_->contents();
  const bool joint = cfg_.search_cpa || cfg_.search_ppg;
  w.u64(contents.size());
  for (const rl::Transition& tr : contents) {
    w.tree(tr.state.tree);
    w.i32(tr.action);
    w.f64(tr.reward);
    w.tree(tr.next_state.tree);
    w.mask(tr.next_mask);
    // Joint-search extras trail each transition; flags-off checkpoints
    // keep the legacy byte layout.
    if (joint) {
      save_point_extras(w, tr.state);
      save_point_extras(w, tr.next_state);
    }
  }
  w.u64(buffer_->next_index());
}

void DqnMethod::load_state(BlobReader& r) {
  rng_.set_state(r.rng());
  t_ = r.i32();
  updates_ = r.i32();
  load_env(r, pool_->env(0));
  load_net(r, *net_);
  const bool has_target = r.u8() != 0;
  if (has_target != (target_ != nullptr)) {
    throw std::runtime_error("checkpoint: target-network config mismatch");
  }
  if (target_) load_net(r, *target_);
  load_optim(r, *optim_);
  const std::uint64_t n = r.u64();
  const bool joint = cfg_.search_cpa || cfg_.search_ppg;
  const ppg::PpgKind spec_ppg = pool_->env(0).point().ppg;
  std::vector<rl::Transition> contents;
  contents.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    rl::Transition tr;
    tr.state.ppg = spec_ppg;
    tr.next_state.ppg = spec_ppg;
    tr.state.tree = r.tree();
    tr.action = r.i32();
    tr.reward = r.f64();
    tr.next_state.tree = r.tree();
    tr.next_mask = r.mask();
    if (joint) {
      load_point_extras(r, tr.state);
      load_point_extras(r, tr.next_state);
    }
    contents.push_back(std::move(tr));
  }
  buffer_->restore(std::move(contents), static_cast<std::size_t>(r.u64()));
}

}  // namespace rlmul::search
