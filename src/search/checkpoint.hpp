#pragma once
// Serializable snapshot of a paused search run: the driver's progress
// counters, the partial RunResult, and the method's opaque state blob.
// Produced by Driver::make_checkpoint, consumed by Driver::resume.

#include <cstdint>
#include <string>
#include <vector>

#include "ct/compressor_tree.hpp"
#include "ppg/ppg.hpp"

namespace rlmul::search {

struct Checkpoint {
  std::string method;  ///< registry name, for dispatch on resume
  std::uint64_t steps_done = 0;
  std::uint64_t eda_consumed = 0;
  // Partial result so far (the trained network is NOT stored here — it
  // lives inside method_state and is rebuilt by Method::load_state).
  ct::CompressorTree best_tree;
  /// Full best design point (v2 checkpoints). v1 checkpoints carried
  /// only the tree; has_best_point stays false and the driver rebuilds
  /// a plain point from best_tree + the evaluator's spec on resume.
  ppg::DesignPoint best_point;
  bool has_best_point = false;
  double best_cost = 0.0;
  std::vector<double> trajectory;
  std::vector<double> best_trajectory;
  /// Opaque per-method state written by Method::save_state.
  std::vector<std::uint8_t> method_state;

  std::vector<std::uint8_t> encode() const;
  static Checkpoint decode(const std::vector<std::uint8_t>& blob);

  void save_file(const std::string& path) const;
  static Checkpoint load_file(const std::string& path);
};

}  // namespace rlmul::search
