#pragma once
// The search loop. The Driver owns what every method used to re-invent:
// stepping to completion, the shared EDA-call budget (unique synthesis
// evaluations, not steps — cache hits are free), uniform trajectory /
// best-so-far recording into RunResult, and checkpoint/resume. Budget
// enforcement is pessimistic: a step is only taken when even its worst
// case (Method::max_evals_per_step) fits, so eda_consumed never exceeds
// the budget.

#include <cstdint>

#include "search/checkpoint.hpp"
#include "search/method.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace rlmul::search {

/// Torn-read-free snapshot of a run in flight. The driver refreshes it
/// under its own leaf mutex after every step, so a monitor thread (the
/// serve scheduler's `status` path) always sees a consistent
/// (best_cost, eda_consumed, steps_done) triple — never the best cost
/// of step N next to the step count of N+1.
struct Progress {
  double best_cost = 0.0;
  std::uint64_t steps_done = 0;
  std::uint64_t eda_consumed = 0;
  std::uint64_t trajectory_len = 0;
  bool started = false;    ///< begin()/begin_resume() has run
  bool completed = false;  ///< the method finished on its own
};

struct DriverOptions {
  /// Max unique synthesis evaluations this run may consume; 0 = no cap.
  std::size_t eda_budget = 0;
  /// Stop after this many Method::step calls; 0 = run until the method
  /// finishes. Use a limit + make_checkpoint to pause a run.
  std::uint64_t max_steps = 0;
  /// Previously synthesized records (typically from a dsdb::Store;
  /// non-owning, must outlive the driver's runs). Admitted into the
  /// evaluator before init() and offered to Method::warm_start on
  /// fresh runs. Re-evaluating an admitted record is a cache hit and
  /// never charges the EDA budget.
  const WarmStartRecords* warm_start = nullptr;
};

class Driver {
 public:
  explicit Driver(synth::DesignEvaluator& evaluator, DriverOptions opts = {});

  /// Runs a method from scratch.
  RunResult run(Method& method);

  /// Continues a paused run: init() rebuilds the method's skeleton,
  /// the checkpoint's partial result and method state are restored,
  /// then the loop continues. With the same seed and config this
  /// reproduces the remaining trajectory bit-for-bit.
  RunResult resume(Method& method, const Checkpoint& ckpt);

  /// Snapshot after run()/resume() returned (typically on a budget or
  /// max_steps stop). Valid until the next run on this driver.
  Checkpoint make_checkpoint(const Method& method) const;

  // -- Step-wise control (what run()/resume() are built from) --------
  // The serve scheduler interleaves many searches by stepping each one
  // explicitly: begin once, step_once until it returns false, finish
  // to collect the RunResult. make_checkpoint is valid between any two
  // steps — that boundary is where cancel and checkpoint-on-drain act.
  // begin/step_once/finish must be called from one thread at a time
  // per driver; progress() is safe from any thread.

  /// Starts a fresh run (admits warm-start records, init + warm_start).
  void begin(Method& method);
  /// Starts a continuation of `ckpt` (bit-exact remaining trajectory).
  void begin_resume(Method& method, const Checkpoint& ckpt);
  /// Advances one step. False when the method finished or the driver
  /// stopped it (budget / max_steps) — distinguish via progress().
  bool step_once(Method& method);
  /// Ends the run (Method::finish) and returns the uniform result.
  RunResult finish(Method& method);

  /// Thread-safe snapshot of the run in flight (or the last run).
  Progress progress() const;

  /// Unique evaluations consumed so far, across resumed legs.
  std::size_t eda_consumed() const;

 private:
  RunResult loop(Method& method);
  void admit_warm_start();
  void refresh_progress();

  synth::DesignEvaluator& evaluator_;
  DriverOptions opts_;
  Context ctx_;
  std::uint64_t steps_done_ = 0;
  std::size_t prior_consumed_ = 0;
  std::size_t evals_at_start_ = 0;
  bool completed_ = false;

  /// Leaf lock for the monitor snapshot: taken only inside
  /// refresh_progress()/progress(), never with another lock held.
  mutable util::Mutex progress_mu_;
  Progress progress_ RLMUL_GUARDED_BY(progress_mu_);
};

}  // namespace rlmul::search
