#pragma once
// The search loop. The Driver owns what every method used to re-invent:
// stepping to completion, the shared EDA-call budget (unique synthesis
// evaluations, not steps — cache hits are free), uniform trajectory /
// best-so-far recording into RunResult, and checkpoint/resume. Budget
// enforcement is pessimistic: a step is only taken when even its worst
// case (Method::max_evals_per_step) fits, so eda_consumed never exceeds
// the budget.

#include <cstdint>

#include "search/checkpoint.hpp"
#include "search/method.hpp"

namespace rlmul::search {

struct DriverOptions {
  /// Max unique synthesis evaluations this run may consume; 0 = no cap.
  std::size_t eda_budget = 0;
  /// Stop after this many Method::step calls; 0 = run until the method
  /// finishes. Use a limit + make_checkpoint to pause a run.
  std::uint64_t max_steps = 0;
  /// Previously synthesized records (typically from a dsdb::Store;
  /// non-owning, must outlive the driver's runs). Admitted into the
  /// evaluator before init() and offered to Method::warm_start on
  /// fresh runs. Re-evaluating an admitted record is a cache hit and
  /// never charges the EDA budget.
  const WarmStartRecords* warm_start = nullptr;
};

class Driver {
 public:
  explicit Driver(synth::DesignEvaluator& evaluator, DriverOptions opts = {});

  /// Runs a method from scratch.
  RunResult run(Method& method);

  /// Continues a paused run: init() rebuilds the method's skeleton,
  /// the checkpoint's partial result and method state are restored,
  /// then the loop continues. With the same seed and config this
  /// reproduces the remaining trajectory bit-for-bit.
  RunResult resume(Method& method, const Checkpoint& ckpt);

  /// Snapshot after run()/resume() returned (typically on a budget or
  /// max_steps stop). Valid until the next run on this driver.
  Checkpoint make_checkpoint(const Method& method) const;

  /// Unique evaluations consumed so far, across resumed legs.
  std::size_t eda_consumed() const;

 private:
  RunResult loop(Method& method);
  void admit_warm_start();

  synth::DesignEvaluator& evaluator_;
  DriverOptions opts_;
  Context ctx_;
  std::uint64_t steps_done_ = 0;
  std::size_t prior_consumed_ = 0;
  std::size_t evals_at_start_ = 0;
  bool completed_ = false;
};

}  // namespace rlmul::search
