#include "search/driver.hpp"

namespace rlmul::search {

Driver::Driver(synth::DesignEvaluator& evaluator, DriverOptions opts)
    : evaluator_(evaluator), opts_(opts), ctx_(evaluator) {}

std::size_t Driver::eda_consumed() const {
  return prior_consumed_ +
         (evaluator_.num_unique_evaluations() - evals_at_start_);
}

void Driver::admit_warm_start() {
  if (opts_.warm_start == nullptr) return;
  // Admit before init(): the method's reference evaluations (e.g. the
  // Wallace design SA/DQN start from) then hit the in-memory cache
  // instead of synthesizing. Admitted records never charge the budget
  // (num_unique_evaluations counts synthesis only).
  for (const WarmStartRecord& rec : *opts_.warm_start) {
    evaluator_.admit(rec.tree, rec.eval);
  }
}

void Driver::refresh_progress() {
  Progress p;
  p.best_cost = ctx_.result().best_cost;
  p.steps_done = steps_done_;
  p.eda_consumed = eda_consumed();
  p.trajectory_len = ctx_.result().trajectory.size();
  p.started = true;
  p.completed = completed_;
  util::LockGuard lock(progress_mu_);
  progress_ = p;
}

Progress Driver::progress() const {
  util::LockGuard lock(progress_mu_);
  return progress_;
}

void Driver::begin(Method& method) {
  ctx_.result() = RunResult{};
  steps_done_ = 0;
  prior_consumed_ = 0;
  completed_ = false;
  admit_warm_start();
  evals_at_start_ = evaluator_.num_unique_evaluations();
  method.init(ctx_);
  if (opts_.warm_start != nullptr && !opts_.warm_start->empty()) {
    method.warm_start(ctx_, *opts_.warm_start);
  }
  refresh_progress();
}

void Driver::begin_resume(Method& method, const Checkpoint& ckpt) {
  ctx_.result() = RunResult{};
  steps_done_ = ckpt.steps_done;
  prior_consumed_ = static_cast<std::size_t>(ckpt.eda_consumed);
  completed_ = false;
  // Admit (free cache fills) but never call warm_start: the restored
  // checkpoint state must replay the remaining trajectory bit-for-bit.
  admit_warm_start();
  evals_at_start_ = evaluator_.num_unique_evaluations();
  // init() first: it rebuilds the method's envs/networks (and would
  // clobber a restored result), then the snapshot overwrites both the
  // partial result and the method's mutable state.
  method.init(ctx_);
  ctx_.result().best_tree = ckpt.best_tree;
  if (ckpt.has_best_point) {
    ctx_.result().best_point = ckpt.best_point;
  } else {
    // v1 checkpoint: plain point from the tree + the evaluator's spec.
    ctx_.result().best_point.ppg = evaluator_.spec().ppg;
    ctx_.result().best_point.tree = ckpt.best_tree;
    ctx_.result().best_point.cpa = prefix::PrefixGraph{};
  }
  ctx_.result().best_cost = ckpt.best_cost;
  ctx_.result().trajectory = ckpt.trajectory;
  ctx_.result().best_trajectory = ckpt.best_trajectory;
  BlobReader r(ckpt.method_state);
  method.load_state(r);
  r.expect_end();
  refresh_progress();
}

bool Driver::step_once(Method& method) {
  if (opts_.max_steps > 0 && steps_done_ >= opts_.max_steps) return false;
  if (opts_.eda_budget > 0 &&
      eda_consumed() +
              static_cast<std::size_t>(method.max_evals_per_step()) >
          opts_.eda_budget) {
    return false;
  }
  if (!method.step(ctx_)) {
    completed_ = true;
    refresh_progress();
    return false;
  }
  ++steps_done_;
  refresh_progress();
  return true;
}

RunResult Driver::finish(Method& method) {
  method.finish(ctx_);
  RunResult out = ctx_.result();
  out.eda_calls = evaluator_.num_unique_evaluations();
  out.eda_consumed = eda_consumed();
  out.steps_done = steps_done_;
  out.completed = completed_;
  refresh_progress();
  return out;
}

RunResult Driver::run(Method& method) {
  begin(method);
  return loop(method);
}

RunResult Driver::resume(Method& method, const Checkpoint& ckpt) {
  begin_resume(method, ckpt);
  return loop(method);
}

Checkpoint Driver::make_checkpoint(const Method& method) const {
  Checkpoint c;
  c.method = method.name();
  c.steps_done = steps_done_;
  c.eda_consumed = eda_consumed();
  const RunResult& res = ctx_.result();
  c.best_tree = res.best_tree;
  c.best_point = res.best_point;
  c.has_best_point = true;
  c.best_cost = res.best_cost;
  c.trajectory = res.trajectory;
  c.best_trajectory = res.best_trajectory;
  BlobWriter w;
  method.save_state(w);
  c.method_state = w.take();
  return c;
}

RunResult Driver::loop(Method& method) {
  while (step_once(method)) {
  }
  return finish(method);
}

}  // namespace rlmul::search
