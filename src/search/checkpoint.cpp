#include "search/checkpoint.hpp"

#include <fstream>
#include <stdexcept>

#include "search/blob.hpp"

namespace rlmul::search {

namespace {

constexpr std::uint32_t kMagic = 0x524C434BU;  // "RLCK"
constexpr std::uint32_t kVersion = 1;

}  // namespace

std::vector<std::uint8_t> Checkpoint::encode() const {
  BlobWriter w;
  w.u32(kMagic);
  w.u32(kVersion);
  w.str(method);
  w.u64(steps_done);
  w.u64(eda_consumed);
  w.tree(best_tree);
  w.f64(best_cost);
  w.f64_vec(trajectory);
  w.f64_vec(best_trajectory);
  w.bytes(method_state);
  return w.take();
}

Checkpoint Checkpoint::decode(const std::vector<std::uint8_t>& blob) {
  BlobReader r(blob);
  if (r.u32() != kMagic) {
    throw std::runtime_error("Checkpoint: bad magic");
  }
  if (r.u32() != kVersion) {
    throw std::runtime_error("Checkpoint: unsupported version");
  }
  Checkpoint c;
  c.method = r.str();
  c.steps_done = r.u64();
  c.eda_consumed = r.u64();
  c.best_tree = r.tree();
  c.best_cost = r.f64();
  c.trajectory = r.f64_vec();
  c.best_trajectory = r.f64_vec();
  c.method_state = r.bytes();
  r.expect_end();
  return c;
}

void Checkpoint::save_file(const std::string& path) const {
  const auto blob = encode();
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("Checkpoint: cannot open " + path);
  os.write(reinterpret_cast<const char*>(blob.data()),
           static_cast<std::streamsize>(blob.size()));
  if (!os) throw std::runtime_error("Checkpoint: write failed: " + path);
}

Checkpoint Checkpoint::load_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("Checkpoint: cannot open " + path);
  std::vector<std::uint8_t> blob(
      (std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  return decode(blob);
}

}  // namespace rlmul::search
