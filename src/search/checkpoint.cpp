#include "search/checkpoint.hpp"

#include <fstream>
#include <stdexcept>

#include "search/blob.hpp"

namespace rlmul::search {

namespace {

constexpr std::uint32_t kMagic = 0x524C434BU;  // "RLCK"
/// v1 stored only best_tree; v2 appends the full best design point
/// (PPG family + pinned CPA graph) after the v1 fields. decode accepts
/// both, so checkpoints from before the design-representation refactor
/// still resume.
constexpr std::uint32_t kVersion = 2;

void write_graph(BlobWriter& w, const prefix::PrefixGraph& g) {
  w.i32(g.width);
  w.u32(static_cast<std::uint32_t>(g.nodes.size()));
  for (const prefix::Node& n : g.nodes) {
    w.i32(n.hi);
    w.i32(n.lo);
    w.i32(n.left);
    w.i32(n.right);
  }
  w.u32(static_cast<std::uint32_t>(g.outputs.size()));
  for (const prefix::Ref ref : g.outputs) w.i32(ref);
}

prefix::PrefixGraph read_graph(BlobReader& r) {
  prefix::PrefixGraph g;
  g.width = r.i32();
  // Counts a torn/corrupt checkpoint can't back (16 resp. 4 bytes per
  // element) must fail before resize(), not allocate gigabytes.
  const std::uint32_t num_nodes = r.u32();
  if (num_nodes > r.remaining() / 16) {
    throw std::runtime_error("checkpoint: bad node count");
  }
  g.nodes.resize(num_nodes);
  for (prefix::Node& n : g.nodes) {
    n.hi = r.i32();
    n.lo = r.i32();
    n.left = r.i32();
    n.right = r.i32();
  }
  const std::uint32_t num_outputs = r.u32();
  if (num_outputs > r.remaining() / 4) {
    throw std::runtime_error("checkpoint: bad output count");
  }
  g.outputs.resize(num_outputs);
  for (prefix::Ref& ref : g.outputs) ref = r.i32();
  return g;
}

}  // namespace

std::vector<std::uint8_t> Checkpoint::encode() const {
  BlobWriter w;
  w.u32(kMagic);
  w.u32(kVersion);
  w.str(method);
  w.u64(steps_done);
  w.u64(eda_consumed);
  w.tree(best_tree);
  w.f64(best_cost);
  w.f64_vec(trajectory);
  w.f64_vec(best_trajectory);
  w.bytes(method_state);
  // v2 tail: the best design point beyond its tree.
  w.u8(static_cast<std::uint8_t>(best_point.ppg));
  w.tree(best_point.tree);
  write_graph(w, best_point.cpa);
  return w.take();
}

Checkpoint Checkpoint::decode(const std::vector<std::uint8_t>& blob) {
  BlobReader r(blob);
  if (r.u32() != kMagic) {
    throw std::runtime_error("Checkpoint: bad magic");
  }
  const std::uint32_t version = r.u32();
  if (version != 1 && version != kVersion) {
    throw std::runtime_error("Checkpoint: unsupported version");
  }
  Checkpoint c;
  c.method = r.str();
  c.steps_done = r.u64();
  c.eda_consumed = r.u64();
  c.best_tree = r.tree();
  c.best_cost = r.f64();
  c.trajectory = r.f64_vec();
  c.best_trajectory = r.f64_vec();
  c.method_state = r.bytes();
  if (version >= 2) {
    if (!ppg::ppg_kind_from_index(r.u8(), &c.best_point.ppg)) {
      throw std::runtime_error("Checkpoint: bad ppg kind");
    }
    c.best_point.tree = r.tree();
    c.best_point.cpa = read_graph(r);
    c.has_best_point = true;
  }
  r.expect_end();
  return c;
}

void Checkpoint::save_file(const std::string& path) const {
  const auto blob = encode();
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("Checkpoint: cannot open " + path);
  os.write(reinterpret_cast<const char*>(blob.data()),
           static_cast<std::streamsize>(blob.size()));
  if (!os) throw std::runtime_error("Checkpoint: write failed: " + path);
}

Checkpoint Checkpoint::load_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("Checkpoint: cannot open " + path);
  std::vector<std::uint8_t> blob(
      (std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  return decode(blob);
}

}  // namespace rlmul::search
