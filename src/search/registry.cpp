#include "search/registry.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>

#include "search/methods.hpp"

namespace rlmul::search {

namespace {

std::map<std::string, MethodFactory>& table() {
  static std::map<std::string, MethodFactory> t;
  return t;
}

std::mutex& table_mutex() {
  static std::mutex m;
  return m;
}

void ensure_builtins() {
  static std::once_flag once;
  std::call_once(once, []() {
    std::lock_guard<std::mutex> lock(table_mutex());
    auto& t = table();
    t["sa"] = [](const MethodConfig& cfg) {
      return std::make_unique<SaMethod>(cfg);
    };
    t["dqn"] = [](const MethodConfig& cfg) {
      return std::make_unique<DqnMethod>(cfg);
    };
    t["a2c"] = [](const MethodConfig& cfg) {
      return std::make_unique<A2cMethod>(cfg);
    };
    t["gomil"] = [](const MethodConfig& cfg) {
      return std::make_unique<GomilMethod>(cfg);
    };
    t["wallace"] = [](const MethodConfig& cfg) {
      return std::make_unique<WallaceMethod>(cfg);
    };
  });
}

}  // namespace

void register_method(const std::string& name, MethodFactory factory) {
  ensure_builtins();
  std::lock_guard<std::mutex> lock(table_mutex());
  table()[name] = std::move(factory);
}

bool is_registered(const std::string& name) {
  ensure_builtins();
  std::lock_guard<std::mutex> lock(table_mutex());
  return table().count(name) != 0;
}

std::unique_ptr<Method> make_method(const std::string& name,
                                    const MethodConfig& cfg) {
  ensure_builtins();
  std::lock_guard<std::mutex> lock(table_mutex());
  const auto it = table().find(name);
  if (it == table().end()) {
    std::string known;
    for (const auto& [n, f] : table()) {
      if (!known.empty()) known += "|";
      known += n;
    }
    throw std::invalid_argument("unknown search method '" + name +
                                "' (registered: " + known + ")");
  }
  return it->second(cfg);
}

std::vector<std::string> registered_methods() {
  ensure_builtins();
  std::lock_guard<std::mutex> lock(table_mutex());
  std::vector<std::string> out;
  for (const auto& [name, factory] : table()) out.push_back(name);
  return out;  // std::map iterates sorted
}

}  // namespace rlmul::search
