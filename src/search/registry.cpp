#include "search/registry.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>

#include "search/methods.hpp"

namespace rlmul::search {

namespace {

struct Entry {
  MethodFactory factory;
  std::string description;
};

std::map<std::string, Entry>& table() {
  static std::map<std::string, Entry> t;
  return t;
}

std::mutex& table_mutex() {
  static std::mutex m;
  return m;
}

void ensure_builtins() {
  static std::once_flag once;
  std::call_once(once, []() {
    std::lock_guard<std::mutex> lock(table_mutex());
    auto& t = table();
    t["sa"] = {[](const MethodConfig& cfg) {
                 return std::make_unique<SaMethod>(cfg);
               },
               "simulated annealing with Metropolis acceptance "
               "(paper baseline)"};
    t["dqn"] = {[](const MethodConfig& cfg) {
                  return std::make_unique<DqnMethod>(cfg);
                },
                "RL-MUL: deep Q-learning with replay buffer "
                "(Algorithm 3)"};
    t["a2c"] = {[](const MethodConfig& cfg) {
                  return std::make_unique<A2cMethod>(cfg);
                },
                "RL-MUL-E: synchronous A2C over parallel environments "
                "(Algorithm 4)"};
    t["gomil"] = {[](const MethodConfig& cfg) {
                    return std::make_unique<GomilMethod>(cfg);
                  },
                  "GOMIL one-shot ILP baseline"};
    t["wallace"] = {[](const MethodConfig& cfg) {
                      return std::make_unique<WallaceMethod>(cfg);
                    },
                    "classic Wallace-tree one-shot baseline"};
  });
}

}  // namespace

void register_method(const std::string& name, MethodFactory factory) {
  register_method(name, std::move(factory), "");
}

void register_method(const std::string& name, MethodFactory factory,
                     std::string description) {
  ensure_builtins();
  std::lock_guard<std::mutex> lock(table_mutex());
  table()[name] = {std::move(factory), std::move(description)};
}

bool is_registered(const std::string& name) {
  ensure_builtins();
  std::lock_guard<std::mutex> lock(table_mutex());
  return table().count(name) != 0;
}

std::unique_ptr<Method> make_method(const std::string& name,
                                    const MethodConfig& cfg) {
  ensure_builtins();
  std::lock_guard<std::mutex> lock(table_mutex());
  const auto it = table().find(name);
  if (it == table().end()) {
    std::string known;
    for (const auto& [n, e] : table()) {
      if (!known.empty()) known += "|";
      known += n;
    }
    throw std::invalid_argument("unknown search method '" + name +
                                "' (registered: " + known + ")");
  }
  return it->second.factory(cfg);
}

std::vector<std::string> registered_methods() {
  ensure_builtins();
  std::lock_guard<std::mutex> lock(table_mutex());
  std::vector<std::string> out;
  for (const auto& [name, entry] : table()) out.push_back(name);
  return out;  // std::map iterates sorted
}

std::string method_description(const std::string& name) {
  ensure_builtins();
  std::lock_guard<std::mutex> lock(table_mutex());
  const auto it = table().find(name);
  return it != table().end() ? it->second.description : std::string();
}

std::vector<MethodInfo> method_infos() {
  ensure_builtins();
  std::lock_guard<std::mutex> lock(table_mutex());
  std::vector<MethodInfo> out;
  for (const auto& [name, entry] : table()) {
    out.push_back({name, entry.description});
  }
  return out;  // std::map iterates sorted
}

}  // namespace rlmul::search
