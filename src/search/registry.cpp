#include "search/registry.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "search/methods.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace rlmul::search {

namespace {

struct Entry {
  MethodFactory factory;
  std::string description;
};

// The name→factory table plus the mutex that guards it, one singleton
// so the builtins are registered exactly once under the C++ magic-
// static guarantee (constructors are exempt from the thread-safety
// analysis — nothing else can reference the object yet).
struct Registry {
  util::Mutex mu;
  std::map<std::string, Entry> table RLMUL_GUARDED_BY(mu);

  Registry() {
    table["sa"] = {[](const MethodConfig& cfg) {
                     return std::make_unique<SaMethod>(cfg);
                   },
                   "simulated annealing with Metropolis acceptance "
                   "(paper baseline)"};
    table["dqn"] = {[](const MethodConfig& cfg) {
                      return std::make_unique<DqnMethod>(cfg);
                    },
                    "RL-MUL: deep Q-learning with replay buffer "
                    "(Algorithm 3)"};
    table["a2c"] = {[](const MethodConfig& cfg) {
                      return std::make_unique<A2cMethod>(cfg);
                    },
                    "RL-MUL-E: synchronous A2C over parallel environments "
                    "(Algorithm 4)"};
    table["gomil"] = {[](const MethodConfig& cfg) {
                        return std::make_unique<GomilMethod>(cfg);
                      },
                      "GOMIL one-shot ILP baseline"};
    table["wallace"] = {[](const MethodConfig& cfg) {
                          return std::make_unique<WallaceMethod>(cfg);
                        },
                        "classic Wallace-tree one-shot baseline"};
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

void register_method(const std::string& name, MethodFactory factory) {
  register_method(name, std::move(factory), "");
}

void register_method(const std::string& name, MethodFactory factory,
                     std::string description) {
  Registry& r = registry();
  util::LockGuard lock(r.mu);
  r.table[name] = {std::move(factory), std::move(description)};
}

bool is_registered(const std::string& name) {
  Registry& r = registry();
  util::LockGuard lock(r.mu);
  return r.table.count(name) != 0;
}

std::unique_ptr<Method> make_method(const std::string& name,
                                    const MethodConfig& cfg) {
  Registry& r = registry();
  MethodFactory factory;
  {
    util::LockGuard lock(r.mu);
    const auto it = r.table.find(name);
    if (it == r.table.end()) {
      std::string known;
      for (const auto& [n, e] : r.table) {
        if (!known.empty()) known += "|";
        known += n;
      }
      throw std::invalid_argument("unknown search method '" + name +
                                  "' (registered: " + known + ")");
    }
    factory = it->second.factory;
  }
  // Run the factory outside the lock: a method constructor is free to
  // call back into the registry (e.g. a meta-method composing others).
  return factory(cfg);
}

std::vector<std::string> registered_methods() {
  Registry& r = registry();
  util::LockGuard lock(r.mu);
  std::vector<std::string> out;
  for (const auto& [name, entry] : r.table) out.push_back(name);
  return out;  // std::map iterates sorted
}

std::string method_description(const std::string& name) {
  Registry& r = registry();
  util::LockGuard lock(r.mu);
  const auto it = r.table.find(name);
  return it != r.table.end() ? it->second.description : std::string();
}

std::vector<MethodInfo> method_infos() {
  Registry& r = registry();
  util::LockGuard lock(r.mu);
  std::vector<MethodInfo> out;
  for (const auto& [name, entry] : r.table) {
    out.push_back({name, entry.description});
  }
  return out;  // std::map iterates sorted
}

}  // namespace rlmul::search
