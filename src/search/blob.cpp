#include "search/blob.hpp"

#include <cstring>
#include <stdexcept>

namespace rlmul::search {

void BlobWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void BlobWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void BlobWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void BlobWriter::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void BlobWriter::str(const std::string& s) {
  u64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void BlobWriter::bytes(const std::vector<std::uint8_t>& b) {
  u64(b.size());
  buf_.insert(buf_.end(), b.begin(), b.end());
}

namespace {

void write_int_vec(BlobWriter& w, const std::vector<int>& v) {
  w.u64(v.size());
  for (int x : v) w.i32(x);
}

std::vector<int> read_int_vec(BlobReader& r) {
  const std::uint64_t n = r.u64();
  // A corrupt count can't ask for more elements than the blob could
  // hold (4 bytes each) — reserving it blindly is an allocation bomb;
  // a short blob still fails cleanly in need() below.
  if (n > r.remaining() / 4) throw std::runtime_error("blob: bad count");
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(r.i32());
  return out;
}

}  // namespace

void BlobWriter::tree(const ct::CompressorTree& t) {
  write_int_vec(*this, t.pp);
  write_int_vec(*this, t.c32);
  write_int_vec(*this, t.c22);
  write_int_vec(*this, t.c42);
}

void BlobWriter::tensor(const nt::Tensor& t) {
  u32(static_cast<std::uint32_t>(t.ndim()));
  for (int d = 0; d < t.ndim(); ++d) u32(static_cast<std::uint32_t>(t.dim(d)));
  for (std::size_t i = 0; i < t.numel(); ++i) {
    std::uint32_t bits = 0;
    const float v = t[i];
    std::memcpy(&bits, &v, sizeof(bits));
    u32(bits);
  }
}

void BlobWriter::f64_vec(const std::vector<double>& v) {
  u64(v.size());
  for (double x : v) f64(x);
}

void BlobWriter::rng(const util::Rng::State& st) {
  for (std::uint64_t word : st.s) u64(word);
  u8(st.have_gaussian ? 1 : 0);
  f64(st.spare_gaussian);
}

const std::uint8_t* BlobReader::need(std::size_t n) {
  // pos_ + n can wrap for a corrupt length near SIZE_MAX, letting the
  // check pass and str()/bytes() attempt a ~2^64-element allocation
  // (found by fuzz_checkpoint: std::length_error escaping decode).
  if (n > data_.size() - pos_) {
    throw std::runtime_error("BlobReader: truncated checkpoint blob");
  }
  const std::uint8_t* p = data_.data() + pos_;
  pos_ += n;
  return p;
}

std::uint8_t BlobReader::u8() { return *need(1); }

std::uint32_t BlobReader::u32() {
  const std::uint8_t* p = need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t BlobReader::u64() {
  const std::uint8_t* p = need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

double BlobReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string BlobReader::str() {
  const std::uint64_t n = u64();
  const std::uint8_t* p = need(static_cast<std::size_t>(n));
  return std::string(reinterpret_cast<const char*>(p),
                     static_cast<std::size_t>(n));
}

std::vector<std::uint8_t> BlobReader::bytes() {
  const std::uint64_t n = u64();
  const std::uint8_t* p = need(static_cast<std::size_t>(n));
  return std::vector<std::uint8_t>(p, p + n);
}

ct::CompressorTree BlobReader::tree() {
  ct::CompressorTree t;
  t.pp = read_int_vec(*this);
  t.c32 = read_int_vec(*this);
  t.c22 = read_int_vec(*this);
  t.c42 = read_int_vec(*this);
  return t;
}

void BlobReader::tensor_into(nt::Tensor& t) {
  const std::uint32_t ndim = u32();
  if (static_cast<int>(ndim) != t.ndim()) {
    throw std::runtime_error("BlobReader: tensor rank mismatch");
  }
  for (std::uint32_t d = 0; d < ndim; ++d) {
    if (static_cast<int>(u32()) != t.dim(static_cast<int>(d))) {
      throw std::runtime_error("BlobReader: tensor shape mismatch");
    }
  }
  for (std::size_t i = 0; i < t.numel(); ++i) {
    const std::uint32_t bits = u32();
    float v = 0.0f;
    std::memcpy(&v, &bits, sizeof(v));
    t[i] = v;
  }
}

std::vector<double> BlobReader::f64_vec() {
  const std::uint64_t n = u64();
  // 8 bytes per element: a count the blob can't back is corruption,
  // not a huge reserve() request.
  if (n > remaining() / 8) throw std::runtime_error("blob: bad count");
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(f64());
  return out;
}

util::Rng::State BlobReader::rng() {
  util::Rng::State st;
  for (std::uint64_t& word : st.s) word = u64();
  st.have_gaussian = u8() != 0;
  st.spare_gaussian = f64();
  return st;
}

void BlobReader::expect_end() const {
  if (pos_ != data_.size()) {
    throw std::runtime_error("BlobReader: trailing bytes in checkpoint blob");
  }
}

}  // namespace rlmul::search
