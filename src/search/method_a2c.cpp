#include <algorithm>
#include <cmath>
#include <cstdio>

#include "nn/serialize.hpp"
#include "search/methods.hpp"
#include "search/state_io.hpp"
#include "util/stats.hpp"

namespace rlmul::search {

void A2cMethod::init(Context& ctx) {
  rng_.reseed(cfg_.seed);
  rl::EnvConfig env_cfg;
  env_cfg.w_area = cfg_.w_area;
  env_cfg.w_delay = cfg_.w_delay;
  env_cfg.max_stages = cfg_.max_stages;
  env_cfg.enable_42 = cfg_.enable_42;
  env_cfg.search_cpa = cfg_.search_cpa;
  env_cfg.search_ppg = cfg_.search_ppg;
  env_cfg.prefix_levels = cfg_.prefix_levels;
  pool_ = std::make_unique<rl::EnvPool>(ctx.evaluator(), env_cfg,
                                        cfg_.threads);
  num_actions_ = pool_->num_actions();
  stage_pad_ = pool_->stage_pad();

  trunk_ = rl::make_agent_net(cfg_.net, pool_->env(0).num_channels(),
                              num_actions_, rng_);
  policy_head_ =
      std::make_unique<nn::Linear>(trunk_->feature_dim(), num_actions_, rng_);
  value_head_ = std::make_unique<nn::Linear>(trunk_->feature_dim(), 1, rng_);

  std::vector<nn::Param*> params = trunk_->params();
  for (nn::Param* p : policy_head_->params()) params.push_back(p);
  for (nn::Param* p : value_head_->params()) params.push_back(p);
  optim_ = std::make_unique<nn::RmsProp>(params, cfg_.lr);

  ctx.result().best_tree = pool_->env(0).best_tree();
  ctx.result().best_point = pool_->env(0).best_point();
  ctx.result().best_cost = pool_->env(0).best_cost();
  t_ = 0;
  k_ = 0;
  rollout_ = 0;
  samples_.clear();
}

void A2cMethod::warm_start(Context& ctx, const WarmStartRecords& records) {
  // A2C is on-policy, so stored transitions never enter an update; the
  // cross-run value is the pre-filled evaluator cache plus seeding the
  // best-so-far tracking with the cheapest stored design.
  const ct::ColumnHeights& pp = pool_->env(0).tree().pp;
  for (const WarmStartRecord& rec : records) {
    if (rec.tree.pp != pp) continue;
    ctx.offer_best(ctx.evaluator().cost(rec.eval, cfg_.w_area, cfg_.w_delay),
                   rec.tree);
  }
}

bool A2cMethod::step(Context& ctx) {
  if (t_ >= cfg_.steps) return false;
  const std::size_t num_envs = static_cast<std::size_t>(pool_->size());

  if (k_ == 0) {
    // Episode boundaries land on rollout boundaries (t advances in
    // n_step chunks), so a plain modulus check suffices.
    if (cfg_.episode_length > 0 && t_ > 0 && t_ % cfg_.episode_length == 0) {
      pool_->reset_all();
    }
    rollout_ = std::min(cfg_.n_step, cfg_.steps - t_);
    samples_.clear();
    samples_.reserve(static_cast<std::size_t>(rollout_) * num_envs);
  }

  // Batched policy evaluation for all workers.
  trunk_->set_training(false);
  policy_head_->set_training(false);
  const nt::Tensor feats = trunk_->forward_features(pool_->observe_batch());
  const nt::Tensor logits = policy_head_->forward(feats);

  std::vector<int> actions(num_envs, -1);
  std::vector<Sample> step_samples(num_envs);
  for (std::size_t e = 0; e < num_envs; ++e) {
    step_samples[e].state = pool_->env(static_cast<int>(e)).point();
    step_samples[e].mask = pool_->env(static_cast<int>(e)).mask();
    step_samples[e].env = static_cast<int>(e);
    const auto probs = rl::masked_softmax(
        logits.data() + e * static_cast<std::size_t>(num_actions_),
        step_samples[e].mask);
    const std::size_t pick = rng_.sample_discrete(probs);
    if (pick < probs.size()) {
      actions[e] = static_cast<int>(pick);
    }
  }

  // Parallel environment stepping: the synthesis calls dominate and
  // overlap across workers (the point of RL-MUL-E).
  const auto outcomes = pool_->step_all(actions);
  std::vector<double> costs(num_envs, 0.0);
  for (std::size_t e = 0; e < num_envs; ++e) {
    if (actions[e] >= 0) {
      step_samples[e].action = actions[e];
      step_samples[e].reward = outcomes[e].reward;
    }
    costs[e] = outcomes[e].cost;
  }

  ctx.push_cost(util::mean(costs));
  for (std::size_t e = 0; e < num_envs; ++e) {
    const rl::MultiplierEnv& env = pool_->env(static_cast<int>(e));
    ctx.offer_best(env.best_cost(), env.best_point());
  }
  ctx.push_best();
  for (auto& s : step_samples) samples_.push_back(std::move(s));

  ++k_;
  ++t_;
  if (k_ == rollout_) {
    update(ctx);
    k_ = 0;
    samples_.clear();
    if (cfg_.verbose) {
      std::fprintf(
          stderr, "[a2c] t=%-5d cost=%.4f best=%.4f eda=%zu\n", t_,
          ctx.result().trajectory.empty() ? 0.0
                                          : ctx.result().trajectory.back(),
          ctx.result().best_cost, ctx.evaluator().num_unique_evaluations());
    }
  }
  return true;
}

void A2cMethod::update(Context& ctx) {
  (void)ctx;
  const std::size_t num_envs = static_cast<std::size_t>(pool_->size());

  // Bootstrap values v(s_{t+n}) per worker.
  trunk_->set_training(false);
  value_head_->set_training(false);
  const nt::Tensor boot_feats =
      trunk_->forward_features(pool_->observe_batch());
  const nt::Tensor boot_values = value_head_->forward(boot_feats);

  // n-step returns, walking each worker's chain backwards.
  std::vector<double> returns(samples_.size(), 0.0);
  for (std::size_t e = 0; e < num_envs; ++e) {
    double ret = boot_values.at(static_cast<int>(e), 0);
    for (int k = rollout_ - 1; k >= 0; --k) {
      const std::size_t idx = static_cast<std::size_t>(k) * num_envs + e;
      if (samples_[idx].action < 0) {
        ret = 0.0;  // episode boundary (reset): no bootstrap through it
      } else {
        ret = samples_[idx].reward + cfg_.gamma * ret;
      }
      returns[idx] = ret;
    }
  }

  // -- gradient step ------------------------------------------------------
  // encode_point_batch with both flags off writes exactly the
  // encode_batch slab, so one call covers plain and joint runs.
  std::vector<ppg::DesignPoint> batch_states;
  for (const auto& s : samples_) batch_states.push_back(s.state);
  trunk_->set_training(true);
  policy_head_->set_training(true);
  value_head_->set_training(true);
  trunk_->zero_grad();
  policy_head_->zero_grad();
  value_head_->zero_grad();

  const nt::Tensor feats = trunk_->forward_features(rl::encode_point_batch(
      batch_states, stage_pad_, cfg_.search_cpa, cfg_.search_ppg));
  const nt::Tensor logits = policy_head_->forward(feats);
  const nt::Tensor values = value_head_->forward(feats);

  const double inv_n = 1.0 / static_cast<double>(samples_.size());
  nt::Tensor grad_logits(logits.shape());
  nt::Tensor grad_values(values.shape());
  for (std::size_t s = 0; s < samples_.size(); ++s) {
    if (samples_[s].action < 0) continue;
    const auto probs = rl::masked_softmax(
        logits.data() + s * static_cast<std::size_t>(num_actions_),
        samples_[s].mask);
    const double v = values.at(static_cast<int>(s), 0);
    const double advantage = returns[s] - v;  // Equation (4)

    // Policy gradient (Equation 16): d(-log pi(a) * A)/dlogit_i
    // = A * (pi_i - 1{i == a}) over the masked support, plus the
    // entropy-bonus term.
    double entropy = 0.0;
    for (double p : probs) {
      if (p > 0.0) entropy -= p * std::log(p);
    }
    for (int i = 0; i < num_actions_; ++i) {
      const double p = probs[static_cast<std::size_t>(i)];
      if (samples_[s].mask[static_cast<std::size_t>(i)] == 0) continue;
      double g = advantage * (p - (i == samples_[s].action ? 1.0 : 0.0));
      if (p > 0.0) {
        g += cfg_.entropy_coef * p * (std::log(p) + entropy);
      }
      grad_logits[s * static_cast<std::size_t>(num_actions_) +
                  static_cast<std::size_t>(i)] =
          static_cast<float>(g * inv_n);
    }
    // Value gradient (Equations 18-19): d(delta^2/2)/dv = v - y.
    grad_values.at(static_cast<int>(s), 0) =
        static_cast<float>(cfg_.value_coef * (v - returns[s]) * inv_n);
  }

  nt::Tensor grad_feats = policy_head_->backward(grad_logits);
  const nt::Tensor grad_feats_v = value_head_->backward(grad_values);
  for (std::size_t i = 0; i < grad_feats.numel(); ++i) {
    grad_feats[i] += grad_feats_v[i];
  }
  trunk_->backward_features(grad_feats);
  optim_->clip_grad_norm(cfg_.grad_clip);
  optim_->step();
}

void A2cMethod::finish(Context& ctx) { ctx.result().network = trunk_; }

void A2cMethod::save_state(BlobWriter& w) const {
  w.rng(rng_.state());
  w.i32(t_);
  w.i32(k_);
  w.i32(rollout_);
  w.u32(static_cast<std::uint32_t>(pool_->size()));
  for (int e = 0; e < pool_->size(); ++e) save_env(w, pool_->env(e));
  const bool joint = cfg_.search_cpa || cfg_.search_ppg;
  w.u64(samples_.size());
  for (const Sample& s : samples_) {
    w.tree(s.state.tree);
    w.mask(s.mask);
    w.i32(s.action);
    w.f64(s.reward);
    w.i32(s.env);
    // Joint-search extras trail each sample; flags-off checkpoints keep
    // the legacy byte layout.
    if (joint) save_point_extras(w, s.state);
  }
  save_net(w, *trunk_);
  save_net(w, *policy_head_);
  save_net(w, *value_head_);
  save_optim(w, *optim_);
}

void A2cMethod::load_state(BlobReader& r) {
  rng_.set_state(r.rng());
  t_ = r.i32();
  k_ = r.i32();
  rollout_ = r.i32();
  if (static_cast<int>(r.u32()) != pool_->size()) {
    throw std::runtime_error("checkpoint: worker count mismatch");
  }
  for (int e = 0; e < pool_->size(); ++e) load_env(r, pool_->env(e));
  const std::uint64_t n = r.u64();
  const bool joint = cfg_.search_cpa || cfg_.search_ppg;
  const ppg::PpgKind spec_ppg = pool_->env(0).point().ppg;
  samples_.clear();
  samples_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    Sample s;
    s.state.ppg = spec_ppg;
    s.state.tree = r.tree();
    s.mask = r.mask();
    s.action = r.i32();
    s.reward = r.f64();
    s.env = r.i32();
    if (joint) load_point_extras(r, s.state);
    samples_.push_back(std::move(s));
  }
  load_net(r, *trunk_);
  load_net(r, *policy_head_);
  load_net(r, *value_head_);
  load_optim(r, *optim_);
}

}  // namespace rlmul::search
