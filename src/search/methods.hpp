#pragma once
// The built-in search methods, each a verbatim port of its original
// training/search loop onto the Method interface. At a fixed seed every
// method reproduces the exact trajectory the pre-refactor entry point
// (train_dqn / train_a2c / simulated_annealing) produced: the loop
// bodies moved, the RNG call order did not.

#include <memory>
#include <vector>

#include "nn/layers.hpp"
#include "nn/optim.hpp"
#include "rl/a2c.hpp"
#include "rl/dqn.hpp"
#include "rl/env_pool.hpp"
#include "search/method.hpp"
#include "util/rng.hpp"

namespace rlmul::search {

/// Simulated annealing (the paper's SA baseline): geometric cooling,
/// Metropolis acceptance over the shared action space.
class SaMethod : public Method {
 public:
  explicit SaMethod(const MethodConfig& cfg) : cfg_(cfg) {}

  const char* name() const override { return "sa"; }
  /// One anneal step evaluates up to sa_proposals candidate neighbors
  /// (one batched dispatch when the evaluator batches).
  int max_evals_per_step() const override {
    return cfg_.sa_proposals > 1 ? cfg_.sa_proposals : 1;
  }
  void init(Context& ctx) override;
  bool step(Context& ctx) override;
  /// Starts the anneal from the best stored design instead of Wallace.
  void warm_start(Context& ctx, const WarmStartRecords& records) override;
  void save_state(BlobWriter& w) const override;
  void load_state(BlobReader& r) override;

 private:
  MethodConfig cfg_;
  util::Rng rng_;
  /// Anneal state: a full design point. Outside joint search the CPA is
  /// empty and the PPG is the spec's, so the walk is the classic
  /// tree-only anneal with an unchanged RNG trajectory.
  ppg::DesignPoint current_;
  double current_cost_ = 0.0;
  double temp_ = 0.0;
  double decay_ = 1.0;
  int t_ = 0;
};

/// RL-MUL: deep Q-learning (Algorithm 3) on an EnvPool of one.
class DqnMethod : public Method {
 public:
  explicit DqnMethod(const MethodConfig& cfg) : cfg_(cfg) {}

  const char* name() const override { return "dqn"; }
  void init(Context& ctx) override;
  bool step(Context& ctx) override;
  /// Seeds best-so-far plus the replay buffer: stored designs that are
  /// one legal action apart become ready-made transitions.
  void warm_start(Context& ctx, const WarmStartRecords& records) override;
  void finish(Context& ctx) override;
  void save_state(BlobWriter& w) const override;
  void load_state(BlobReader& r) override;

 private:
  MethodConfig cfg_;
  util::Rng rng_;
  std::unique_ptr<rl::EnvPool> pool_;
  std::shared_ptr<nn::ResNet> net_;
  std::unique_ptr<nn::ResNet> target_;
  std::unique_ptr<nn::RmsProp> optim_;
  std::unique_ptr<rl::ReplayBuffer> buffer_;
  int num_actions_ = 0;
  int t_ = 0;
  int updates_ = 0;
};

/// RL-MUL-E: synchronous A2C (Algorithm 4). One step() = one parallel
/// environment step across all workers; the n-step update fires on
/// rollout boundaries, so a checkpoint can land mid-rollout.
class A2cMethod : public Method {
 public:
  explicit A2cMethod(const MethodConfig& cfg) : cfg_(cfg) {}

  const char* name() const override { return "a2c"; }
  int max_evals_per_step() const override { return cfg_.threads; }
  void init(Context& ctx) override;
  bool step(Context& ctx) override;
  /// On-policy: stored transitions cannot feed the update, but the
  /// best stored design still seeds best-so-far tracking.
  void warm_start(Context& ctx, const WarmStartRecords& records) override;
  void finish(Context& ctx) override;
  void save_state(BlobWriter& w) const override;
  void load_state(BlobReader& r) override;

 private:
  struct Sample {
    ppg::DesignPoint state;
    std::vector<std::uint8_t> mask;
    int action = -1;  ///< -1 = skip (env was reset on a dead end)
    double reward = 0.0;
    int env = 0;
  };

  void update(Context& ctx);

  MethodConfig cfg_;
  util::Rng rng_;
  std::unique_ptr<rl::EnvPool> pool_;
  std::shared_ptr<nn::ResNet> trunk_;
  std::unique_ptr<nn::Linear> policy_head_;
  std::unique_ptr<nn::Linear> value_head_;
  std::unique_ptr<nn::RmsProp> optim_;
  std::vector<Sample> samples_;
  int num_actions_ = 0;
  int stage_pad_ = 0;
  int t_ = 0;        ///< environment steps taken
  int k_ = 0;        ///< position inside the current rollout
  int rollout_ = 0;  ///< length of the current rollout
};

/// One-shot baselines: the whole "search" is a single step() that
/// evaluates the method's closed-form design.
class GomilMethod : public Method {
 public:
  explicit GomilMethod(const MethodConfig& cfg) : cfg_(cfg) {}

  const char* name() const override { return "gomil"; }
  void init(Context& ctx) override;
  bool step(Context& ctx) override;
  void save_state(BlobWriter& w) const override;
  void load_state(BlobReader& r) override;

 private:
  MethodConfig cfg_;
  bool done_ = false;
};

class WallaceMethod : public Method {
 public:
  explicit WallaceMethod(const MethodConfig& cfg) : cfg_(cfg) {}

  const char* name() const override { return "wallace"; }
  void init(Context& ctx) override;
  bool step(Context& ctx) override;
  void save_state(BlobWriter& w) const override;
  void load_state(BlobReader& r) override;

 private:
  MethodConfig cfg_;
  bool done_ = false;
};

}  // namespace rlmul::search
