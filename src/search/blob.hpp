#pragma once
// Flat little-endian binary serialization for search checkpoints. The
// writer appends primitive fields to a byte buffer; the reader consumes
// them back in the same order and throws std::runtime_error on any
// truncation or trailing garbage, so a corrupted checkpoint fails loudly
// instead of resuming from scrambled state. Doubles round-trip through
// their IEEE-754 bit pattern — checkpoint/resume must reproduce the
// remaining trajectory bit-for-bit, so no text formatting anywhere.

#include <cstdint>
#include <string>
#include <vector>

#include "ct/compressor_tree.hpp"
#include "nt/tensor.hpp"
#include "util/rng.hpp"

namespace rlmul::search {

class BlobWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  /// Exact bit pattern; NaN and signed zero survive the round trip.
  void f64(double v);
  void str(const std::string& s);
  void bytes(const std::vector<std::uint8_t>& b);
  /// Compressor tree: column count + the pp/c32/c22/c42 vectors.
  void tree(const ct::CompressorTree& t);
  /// Tensor payload (shape + float32 data), e.g. optimizer moments.
  void tensor(const nt::Tensor& t);
  void f64_vec(const std::vector<double>& v);
  void mask(const std::vector<std::uint8_t>& m) { bytes(m); }
  /// Full PRNG state including the cached Box–Muller spare.
  void rng(const util::Rng::State& st);

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class BlobReader {
 public:
  explicit BlobReader(const std::vector<std::uint8_t>& data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64();
  std::string str();
  std::vector<std::uint8_t> bytes();
  ct::CompressorTree tree();
  /// Restores into an existing tensor; shapes must match exactly.
  void tensor_into(nt::Tensor& t);
  std::vector<double> f64_vec();
  std::vector<std::uint8_t> mask() { return bytes(); }
  util::Rng::State rng();

  std::size_t remaining() const { return data_.size() - pos_; }
  /// Throws unless every byte has been consumed (format drift guard).
  void expect_end() const;

 private:
  const std::uint8_t* need(std::size_t n);

  const std::vector<std::uint8_t>& data_;
  std::size_t pos_ = 0;
};

}  // namespace rlmul::search
