#pragma once
// Name -> factory registry so the bench harness, the CLI
// (--method=dqn|a2c|sa|gomil|wallace), and the tests dispatch search
// methods by string. The five built-ins register themselves; downstream
// code can add its own methods with register_method.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "search/method.hpp"

namespace rlmul::search {

using MethodFactory =
    std::function<std::unique_ptr<Method>(const MethodConfig&)>;

/// Registers (or replaces) a factory under `name`.
void register_method(const std::string& name, MethodFactory factory);

/// Same, with a one-line human-readable description (what the CLI's
/// --list-methods prints).
void register_method(const std::string& name, MethodFactory factory,
                     std::string description);

bool is_registered(const std::string& name);

/// The registered description; empty for unknown names or methods
/// registered without one.
std::string method_description(const std::string& name);

struct MethodInfo {
  std::string name;
  std::string description;
};

/// All registered methods with descriptions, sorted by name.
std::vector<MethodInfo> method_infos();

/// Constructs a method by name; throws std::invalid_argument for
/// unknown names (the message lists what is registered).
std::unique_ptr<Method> make_method(const std::string& name,
                                    const MethodConfig& cfg);

/// All registered names, sorted.
std::vector<std::string> registered_methods();

}  // namespace rlmul::search
