#include "baselines/sa.hpp"

#include <cmath>

#include "ppg/ppg.hpp"

namespace rlmul::baselines {

SaResult simulated_annealing(synth::DesignEvaluator& evaluator,
                             const SaOptions& opts) {
  util::Rng rng(opts.seed);
  ct::CompressorTree current = ppg::initial_tree(evaluator.spec());
  double current_cost = evaluator.cost(evaluator.evaluate(current),
                                       opts.w_area, opts.w_delay);

  SaResult result;
  result.best_tree = current;
  result.best_cost = current_cost;

  const double decay =
      opts.steps > 1
          ? std::pow(opts.t_end / opts.t_start,
                     1.0 / static_cast<double>(opts.steps - 1))
          : 1.0;
  double temp = opts.t_start;

  for (int step = 0; step < opts.steps; ++step) {
    const auto mask =
        ct::legal_action_mask(current, opts.max_stages, opts.enable_42);
    std::vector<double> weights(mask.size());
    for (std::size_t i = 0; i < mask.size(); ++i) {
      weights[i] = mask[i] != 0 ? 1.0 : 0.0;
    }
    const std::size_t pick = rng.sample_discrete(weights);
    if (pick >= mask.size()) break;  // no legal move at all

    const ct::CompressorTree candidate =
        ct::apply_action(current, ct::action_from_index(static_cast<int>(pick)));
    const double cand_cost = evaluator.cost(
        evaluator.evaluate(candidate), opts.w_area, opts.w_delay);

    const double delta = cand_cost - current_cost;
    if (delta <= 0.0 || rng.next_double() < std::exp(-delta / temp)) {
      current = candidate;
      current_cost = cand_cost;
    }
    if (current_cost < result.best_cost) {
      result.best_cost = current_cost;
      result.best_tree = current;
    }
    result.trajectory.push_back(current_cost);
    result.best_trajectory.push_back(result.best_cost);
    temp *= decay;
  }
  return result;
}

}  // namespace rlmul::baselines
