#pragma once
// Simulated-annealing baseline of the paper's experiments. Explores the
// same action space (add/remove/replace compressors + legalization) and
// the same multi-constraint synthesis cost as the RL agents, so the
// comparison isolates the search strategy.

#include <cstdint>
#include <vector>

#include "ct/compressor_tree.hpp"
#include "synth/evaluator.hpp"
#include "util/rng.hpp"

namespace rlmul::baselines {

struct SaOptions {
  int steps = 400;          ///< cost evaluations (EDA-tool calls)
  double t_start = 0.08;    ///< initial temperature (in cost units)
  double t_end = 0.002;
  double w_area = 1.0;
  double w_delay = 1.0;
  int max_stages = -1;      ///< action pruning bound; -1 = off
  bool enable_42 = false;   ///< 4:2 compressor extension actions
  std::uint64_t seed = 1;
};

struct SaResult {
  ct::CompressorTree best_tree;
  double best_cost = 0.0;
  /// Cost of the *current* state after each step (Fig 12 trajectories).
  std::vector<double> trajectory;
  /// Best-so-far cost after each step.
  std::vector<double> best_trajectory;
};

/// Runs SA to completion. Thin wrapper (defined in src/search) over
/// search::SaMethod + search::Driver; produces the same trajectory the
/// historical hand-rolled loop did at a fixed seed.
SaResult simulated_annealing(synth::DesignEvaluator& evaluator,
                             const SaOptions& opts);

}  // namespace rlmul::baselines
