#pragma once
// GOMIL baseline (Xiao et al., DATE'21): global optimization of the
// compressor tree by integer linear programming. Variables are the
// per-column 3:2 / 2:2 compressor counts; constraints force every
// column with content to compress to one or two rows; the objective
// minimizes total compressor area. The same problem is also solved by
// an exact carry-state dynamic program, which serves as an independent
// cross-check of the ILP encoding (they must agree on cost).

#include "ct/compressor_tree.hpp"
#include "ppg/ppg.hpp"

namespace rlmul::baselines {

struct GomilResult {
  ct::CompressorTree tree;
  double objective = 0.0;  ///< compressor-area objective value
  bool optimal = false;
};

/// Area cost coefficients for the objective (defaults: NanGate FA/HA X1
/// areas, the same cells synthesis maps compressors to).
struct GomilWeights {
  double fa = 4.256;
  double ha = 2.660;
};

/// Solves the GOMIL formulation with the branch-and-bound MILP solver.
GomilResult gomil_ilp(const ct::ColumnHeights& pp,
                      const GomilWeights& w = {});

/// Exact dynamic program over (column, carry-in) states; same optimum.
GomilResult gomil_dp(const ct::ColumnHeights& pp, const GomilWeights& w = {});

/// Convenience: GOMIL tree for a multiplier spec (ILP path).
ct::CompressorTree gomil_tree(const ppg::MultiplierSpec& spec);

}  // namespace rlmul::baselines
