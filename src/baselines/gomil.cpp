#include "baselines/gomil.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "ilp/ilp.hpp"

namespace rlmul::baselines {

using ct::ColumnHeights;
using ct::CompressorTree;

namespace {

/// Builds a zero row of the given width with one helper.
std::vector<double> zeros(int n) {
  return std::vector<double>(static_cast<std::size_t>(n), 0.0);
}

}  // namespace

GomilResult gomil_ilp(const ColumnHeights& pp, const GomilWeights& w) {
  const int cols = static_cast<int>(pp.size());
  // Variable layout: x32_j = 2j, x22_j = 2j+1, then one binary
  // "column-stays-empty" indicator per pp==0 column.
  std::vector<int> z_index(static_cast<std::size_t>(cols), -1);
  int num_vars = 2 * cols;
  for (int j = 0; j < cols; ++j) {
    if (pp[static_cast<std::size_t>(j)] == 0) z_index[static_cast<std::size_t>(j)] = num_vars++;
  }

  ilp::LinearProgram lp;
  lp.num_vars = num_vars;
  lp.objective = zeros(num_vars);
  for (int j = 0; j < cols; ++j) {
    lp.objective[static_cast<std::size_t>(2 * j)] = w.fa;
    lp.objective[static_cast<std::size_t>(2 * j + 1)] = w.ha;
  }

  const double big = 4.0 * cols + 16.0;
  auto x32 = [&](int j) { return 2 * j; };
  auto x22 = [&](int j) { return 2 * j + 1; };

  for (int j = 0; j < cols; ++j) {
    // f_j = pp_j + x32_{j-1} + x22_{j-1} - 2 x32_j - x22_j
    auto f_row = [&](double scale) {
      std::vector<double> row = zeros(num_vars);
      if (j > 0) {
        row[static_cast<std::size_t>(x32(j - 1))] += scale;
        row[static_cast<std::size_t>(x22(j - 1))] += scale;
      }
      row[static_cast<std::size_t>(x32(j))] -= 2.0 * scale;
      row[static_cast<std::size_t>(x22(j))] -= scale;
      return row;
    };
    const double ppj = pp[static_cast<std::size_t>(j)];

    // f_j <= 2 for every column.
    lp.constraints.push_back(
        {f_row(1.0), ilp::Relation::kLessEqual, 2.0 - ppj});

    if (z_index[static_cast<std::size_t>(j)] < 0) {
      // Occupied column: f_j >= 1.
      lp.constraints.push_back(
          {f_row(1.0), ilp::Relation::kGreaterEqual, 1.0 - ppj});
    } else {
      const int z = z_index[static_cast<std::size_t>(j)];
      // f_j >= 1 - big * z  (z=1 relaxes the lower bound to f_j >= 0).
      auto row = f_row(1.0);
      row[static_cast<std::size_t>(z)] = big;
      lp.constraints.push_back(
          {std::move(row), ilp::Relation::kGreaterEqual, 1.0 - ppj});
      lp.constraints.push_back(
          {f_row(1.0), ilp::Relation::kGreaterEqual, -ppj});  // f_j >= 0
      // z=1 forces zero carry-in and zero compressors in the column.
      if (j > 0) {
        auto cin = zeros(num_vars);
        cin[static_cast<std::size_t>(x32(j - 1))] = 1.0;
        cin[static_cast<std::size_t>(x22(j - 1))] = 1.0;
        cin[static_cast<std::size_t>(z)] = big;
        lp.constraints.push_back(
            {std::move(cin), ilp::Relation::kLessEqual, big});
      }
      auto own = zeros(num_vars);
      own[static_cast<std::size_t>(x32(j))] = 1.0;
      own[static_cast<std::size_t>(x22(j))] = 1.0;
      own[static_cast<std::size_t>(z)] = big;
      lp.constraints.push_back(
          {std::move(own), ilp::Relation::kLessEqual, big});
      // 0 <= z <= 1 (lower bound implicit).
      auto zb = zeros(num_vars);
      zb[static_cast<std::size_t>(z)] = 1.0;
      lp.constraints.push_back({std::move(zb), ilp::Relation::kLessEqual, 1.0});
    }
  }

  std::vector<bool> is_int(static_cast<std::size_t>(num_vars), true);
  const ilp::Solution sol = ilp::solve_milp(lp, is_int);

  GomilResult out;
  out.tree = CompressorTree{pp};
  if (sol.status != ilp::Status::kOptimal) return out;
  for (int j = 0; j < cols; ++j) {
    out.tree.c32[j] =
        static_cast<int>(std::lround(sol.x[static_cast<std::size_t>(x32(j))]));
    out.tree.c22[j] =
        static_cast<int>(std::lround(sol.x[static_cast<std::size_t>(x22(j))]));
  }
  out.objective = w.fa * out.tree.total_c32() + w.ha * out.tree.total_c22();
  out.optimal = out.tree.legal();
  return out;
}

GomilResult gomil_dp(const ColumnHeights& pp, const GomilWeights& w) {
  const int cols = static_cast<int>(pp.size());
  const int max_h =
      cols == 0 ? 0 : *std::max_element(pp.begin(), pp.end());
  const int max_carry = 2 * max_h + 4;  // safe carry-state bound
  const double inf = std::numeric_limits<double>::infinity();

  // cost[cin] after processing columns < j; choice[j][cin] remembers the
  // (c32, c22) transition for reconstruction.
  std::vector<double> cost(static_cast<std::size_t>(max_carry) + 1, inf);
  cost[0] = 0.0;
  std::vector<std::vector<std::pair<int, int>>> choice(
      static_cast<std::size_t>(cols),
      std::vector<std::pair<int, int>>(static_cast<std::size_t>(max_carry) + 1,
                                       {-1, -1}));
  std::vector<std::vector<int>> parent(
      static_cast<std::size_t>(cols),
      std::vector<int>(static_cast<std::size_t>(max_carry) + 1, -1));

  for (int j = 0; j < cols; ++j) {
    std::vector<double> next(static_cast<std::size_t>(max_carry) + 1, inf);
    for (int cin = 0; cin <= max_carry; ++cin) {
      if (cost[static_cast<std::size_t>(cin)] == inf) continue;
      const int bits = pp[static_cast<std::size_t>(j)] + cin;
      for (int c32 = 0; 2 * c32 <= bits; ++c32) {
        for (int c22 = 0; 2 * c32 + c22 <= bits; ++c22) {
          const int f = bits - 2 * c32 - c22;
          const bool ok = (bits == 0) ? (f == 0 && c32 == 0 && c22 == 0)
                                      : (f == 1 || f == 2);
          if (!ok) continue;
          const int cout = c32 + c22;
          if (cout > max_carry) continue;
          const double cand = cost[static_cast<std::size_t>(cin)] +
                              w.fa * c32 + w.ha * c22;
          if (cand < next[static_cast<std::size_t>(cout)]) {
            next[static_cast<std::size_t>(cout)] = cand;
            choice[static_cast<std::size_t>(j)]
                  [static_cast<std::size_t>(cout)] = {c32, c22};
            parent[static_cast<std::size_t>(j)]
                  [static_cast<std::size_t>(cout)] = cin;
          }
        }
      }
    }
    cost = std::move(next);
  }

  GomilResult out;
  out.tree = CompressorTree{pp};
  // Carries out of the top column are dropped, so any end state is
  // acceptable; pick the cheapest.
  int best_end = -1;
  double best_cost = inf;
  for (int c = 0; c <= max_carry; ++c) {
    if (cost[static_cast<std::size_t>(c)] < best_cost) {
      best_cost = cost[static_cast<std::size_t>(c)];
      best_end = c;
    }
  }
  if (best_end < 0) return out;
  int state = best_end;
  for (int j = cols - 1; j >= 0; --j) {
    const auto [c32, c22] =
        choice[static_cast<std::size_t>(j)][static_cast<std::size_t>(state)];
    out.tree.c32[j] = c32;
    out.tree.c22[j] = c22;
    state = parent[static_cast<std::size_t>(j)][static_cast<std::size_t>(state)];
  }
  out.objective = best_cost;
  out.optimal = out.tree.legal();
  return out;
}

ct::CompressorTree gomil_tree(const ppg::MultiplierSpec& spec) {
  const ColumnHeights pp = ppg::pp_heights(spec);
  // The DP is exact and fast at any width; the branch-and-bound ILP is
  // the faithful GOMIL encoding and is cross-checked against the DP in
  // the tests, but its node count grows with the column count, so the
  // production path prefers the DP.
  GomilResult res = gomil_dp(pp);
  if (!res.optimal) res = gomil_ilp(pp);
  if (!res.optimal) {
    throw std::runtime_error("gomil_tree: no legal optimum found");
  }
  return res.tree;
}

}  // namespace rlmul::baselines
