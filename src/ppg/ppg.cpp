#include "ppg/ppg.hpp"

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace rlmul::ppg {

using netlist::ColumnSignals;
using netlist::LogicBuilder;
using netlist::Netlist;
using netlist::Signal;

const char* ppg_kind_name(PpgKind kind) {
  switch (kind) {
    case PpgKind::kAnd: return "AND";
    case PpgKind::kBooth: return "MBE";
    case PpgKind::kBaughWooley: return "BW";
  }
  return "?";
}

namespace {

using PpgInputs = CoreInputs;

PpgInputs make_inputs(Netlist& nl, const MultiplierSpec& spec) {
  PpgInputs in;
  for (int i = 0; i < spec.bits; ++i) {
    in.a.push_back(Signal::of(nl.add_input("a" + std::to_string(i))));
  }
  for (int i = 0; i < spec.bits; ++i) {
    in.b.push_back(Signal::of(nl.add_input("b" + std::to_string(i))));
  }
  if (spec.mac) {
    for (int i = 0; i < spec.columns(); ++i) {
      in.c.push_back(Signal::of(nl.add_input("c" + std::to_string(i))));
    }
  }
  return in;
}

/// Pushes a bit into its column; drops constant zeros (a synthesizer
/// would) and anything beyond the product width (mod-2^{2N} semantics).
void push_bit(ColumnSignals& cols, int column, Signal s) {
  if (s.is_lo()) return;
  if (column < 0 || column >= static_cast<int>(cols.size())) return;
  cols[static_cast<std::size_t>(column)].push_back(s);
}

void emit_and_ppg(LogicBuilder& lb, const MultiplierSpec& spec,
                  const PpgInputs& in, ColumnSignals& cols) {
  for (int i = 0; i < spec.bits; ++i) {
    for (int k = 0; k < spec.bits; ++k) {
      push_bit(cols, i + k,
               lb.and2(in.a[static_cast<std::size_t>(k)],
                       in.b[static_cast<std::size_t>(i)]));
    }
  }
}

void emit_booth_ppg(LogicBuilder& lb, const MultiplierSpec& spec,
                    const PpgInputs& in, ColumnSignals& cols) {
  const int n = spec.bits;
  const int w = spec.columns();
  const int digits = n / 2 + 1;

  auto b_bit = [&](int idx) -> Signal {
    if (idx < 0 || idx >= n) return Signal::lo();
    return in.b[static_cast<std::size_t>(idx)];
  };
  auto a_bit = [&](int idx) -> Signal {
    if (idx < 0 || idx >= n) return Signal::lo();
    return in.a[static_cast<std::size_t>(idx)];
  };

  std::uint64_t const_block = 0;  // accumulated -2^{w_i} corrections

  for (int i = 0; i < digits; ++i) {
    const Signal bm1 = b_bit(2 * i - 1);
    const Signal b0 = b_bit(2 * i);
    const Signal bp1 = b_bit(2 * i + 1);

    // Booth digit d = bm1 + b0 - 2*bp1 in {-2,-1,0,1,2}.
    const Signal single = lb.xor2(bm1, b0);  // |d| == 1
    const Signal dbl = lb.or2(
        lb.and2(bp1, lb.and2(lb.inv(b0), lb.inv(bm1))),   // d == -2
        lb.and2(lb.inv(bp1), lb.and2(b0, bm1)));          // d == +2
    const Signal neg = bp1;  // also 1 for d==0 at 111; the identity
                             // below still cancels exactly.

    // Row magnitude in one's complement: (single?A : dbl?2A : 0) ^ neg,
    // N+1 bits, placed at columns 2i .. 2i+N.
    for (int k = 0; k <= n; ++k) {
      const Signal mag = lb.or2(lb.and2(single, a_bit(k)),
                                lb.and2(dbl, a_bit(k - 1)));
      push_bit(cols, 2 * i + k, lb.xor2(mag, neg));
    }
    // Two's-complement +1 correction at the row's LSB column.
    push_bit(cols, 2 * i, neg);
    // Sign handling: -neg * 2^{2i+N+1} == (1-neg)*2^{wi} - 2^{wi}.
    const int wi = 2 * i + n + 1;
    if (wi < w && !neg.is_const()) {
      push_bit(cols, wi, lb.inv(neg));
      const_block -= (1ULL << wi);
    } else if (wi < w && neg.is_hi()) {
      const_block -= (1ULL << wi);  // constant row: fold fully
    }
  }

  // Fold the accumulated constant, modulo 2^w, into constant-one bits.
  const std::uint64_t mask =
      w >= 64 ? ~0ULL : ((1ULL << w) - 1ULL);
  const std::uint64_t k_bits = const_block & mask;
  for (int j = 0; j < w; ++j) {
    if ((k_bits >> j) & 1ULL) push_bit(cols, j, Signal::hi());
  }
}

// Modified Baugh-Wooley (two's-complement operands): the sign-weighted
// partial products -a_{N-1}b_j and -a_ib_{N-1} become inverted AND
// terms via -x*2^w = (1-x)*2^w - 2^w, and the accumulated -2^w
// corrections fold into two constant one-bits at columns N and 2N-1
// (mod 2^{2N}).
void emit_bw_ppg(LogicBuilder& lb, const MultiplierSpec& spec,
                 const PpgInputs& in, ColumnSignals& cols) {
  const int n = spec.bits;
  for (int i = 0; i <= n - 2; ++i) {
    for (int k = 0; k <= n - 2; ++k) {
      push_bit(cols, i + k,
               lb.and2(in.a[static_cast<std::size_t>(k)],
                       in.b[static_cast<std::size_t>(i)]));
    }
  }
  for (int j = 0; j <= n - 2; ++j) {
    push_bit(cols, j + n - 1,
             lb.inv(lb.and2(in.a[static_cast<std::size_t>(n - 1)],
                            in.b[static_cast<std::size_t>(j)])));
    push_bit(cols, j + n - 1,
             lb.inv(lb.and2(in.a[static_cast<std::size_t>(j)],
                            in.b[static_cast<std::size_t>(n - 1)])));
  }
  push_bit(cols, 2 * n - 2,
           lb.and2(in.a[static_cast<std::size_t>(n - 1)],
                   in.b[static_cast<std::size_t>(n - 1)]));
  push_bit(cols, n, Signal::hi());
  push_bit(cols, 2 * n - 1, Signal::hi());
}

ColumnSignals emit_ppg(LogicBuilder& lb, const MultiplierSpec& spec,
                       const PpgInputs& in) {
  ColumnSignals cols(static_cast<std::size_t>(spec.columns()));
  switch (spec.ppg) {
    case PpgKind::kAnd:
      emit_and_ppg(lb, spec, in, cols);
      break;
    case PpgKind::kBooth:
      emit_booth_ppg(lb, spec, in, cols);
      break;
    case PpgKind::kBaughWooley:
      emit_bw_ppg(lb, spec, in, cols);
      break;
  }
  if (spec.mac) {
    for (int j = 0; j < spec.columns(); ++j) {
      push_bit(cols, j, in.c[static_cast<std::size_t>(j)]);
    }
  }
  return cols;
}

}  // namespace

std::string cpa_key_suffix(const prefix::PrefixGraph& cpa) {
  if (cpa.width == 0) return std::string();
  char buf[16 + 8];
  std::snprintf(buf, sizeof(buf), "|cpa=%016llx",
                static_cast<unsigned long long>(prefix::canonical_hash(cpa)));
  return std::string(buf);
}

std::string DesignPoint::cpa_suffix() const { return cpa_key_suffix(cpa); }

std::string DesignPoint::key(const MultiplierSpec& base) const {
  std::string k = tree.key() + cpa_suffix();
  if (ppg != base.ppg) {
    k += "|ppg=";
    k += ppg_kind_name(ppg);
  }
  return k;
}

MultiplierSpec DesignPoint::resolved_spec(MultiplierSpec base) const {
  base.ppg = ppg;
  return base;
}

ct::CompressorTree retarget_tree(const ct::CompressorTree& tree,
                                 const MultiplierSpec& to_spec) {
  ct::CompressorTree out = tree;
  out.pp = pp_heights(to_spec);
  out.c32.resize(out.pp.size(), 0);
  out.c22.resize(out.pp.size(), 0);
  out.c42.resize(out.pp.size(), 0);
  ct::legalize(out, 0);
  return out;
}

ct::ColumnHeights pp_heights(const MultiplierSpec& spec) {
  // Dry-run the emitter so constant folding decisions can never diverge
  // between the heights the CT is built against and the actual bits.
  Netlist scratch;
  LogicBuilder lb(scratch);
  const ColumnSignals cols = emit_ppg(lb, spec, make_inputs(scratch, spec));
  ct::ColumnHeights heights(cols.size());
  for (std::size_t j = 0; j < cols.size(); ++j) {
    heights[j] = static_cast<int>(cols[j].size());
  }
  return heights;
}

ColumnSignals build_ppg(LogicBuilder& lb, const MultiplierSpec& spec) {
  return emit_ppg(lb, spec, make_inputs(lb.netlist(), spec));
}

std::vector<Signal> build_core(LogicBuilder& lb, const MultiplierSpec& spec,
                               const ct::CompressorTree& tree,
                               netlist::CpaKind cpa,
                               const CoreInputs& inputs,
                               const netlist::CtBuildOptions& ct_opts) {
  if (static_cast<int>(inputs.a.size()) != spec.bits ||
      static_cast<int>(inputs.b.size()) != spec.bits ||
      (spec.mac &&
       static_cast<int>(inputs.c.size()) != spec.columns())) {
    throw std::invalid_argument("build_core: operand width mismatch");
  }
  const ColumnSignals pps = emit_ppg(lb, spec, inputs);
  const ColumnSignals rows =
      netlist::build_compressor_tree(lb, tree, pps, ct_opts);
  return netlist::build_cpa(lb, cpa, rows);
}

std::vector<Signal> build_core(LogicBuilder& lb, const MultiplierSpec& spec,
                               const ct::CompressorTree& tree,
                               const prefix::PrefixGraph& cpa,
                               const CoreInputs& inputs,
                               const netlist::CtBuildOptions& ct_opts) {
  if (static_cast<int>(inputs.a.size()) != spec.bits ||
      static_cast<int>(inputs.b.size()) != spec.bits ||
      (spec.mac &&
       static_cast<int>(inputs.c.size()) != spec.columns())) {
    throw std::invalid_argument("build_core: operand width mismatch");
  }
  const ColumnSignals pps = emit_ppg(lb, spec, inputs);
  const ColumnSignals rows =
      netlist::build_compressor_tree(lb, tree, pps, ct_opts);
  return netlist::build_cpa(lb, cpa, rows);
}

MultiplierPrefix build_multiplier_prefix(const MultiplierSpec& spec,
                                         const ct::CompressorTree& tree,
                                         const netlist::CtBuildOptions& ct_opts) {
  if (spec.bits < 2 || spec.bits > 32) {
    throw std::invalid_argument("build_multiplier: bits must be in [2, 32]");
  }
  MultiplierPrefix prefix;
  LogicBuilder lb(prefix.netlist);
  const ColumnSignals pps = build_ppg(lb, spec);
  prefix.rows = netlist::build_compressor_tree(lb, tree, pps, ct_opts);
  return prefix;
}

namespace {

/// Shared tail of attach_cpa: append the CPA product signals of either
/// overload onto a copy of the prefix and mark the primary outputs.
template <typename Cpa>
Netlist attach_cpa_impl(const MultiplierPrefix& prefix,
                        const MultiplierSpec& spec, const Cpa& cpa) {
  Netlist nl = prefix.netlist;
  // Generous upper bound on the adder's gate count (the widest CPA
  // spends a handful of cells per column), so the appends below never
  // re-grow the prefix-sized gate buffer.
  nl.reserve_gates(nl.num_gates() + 16 * spec.columns());
  LogicBuilder lb(nl);
  const std::vector<Signal> product = netlist::build_cpa(lb, cpa, prefix.rows);
  for (int j = 0; j < spec.columns(); ++j) {
    nl.mark_output(lb.materialize(product[static_cast<std::size_t>(j)]),
                   "p" + std::to_string(j));
  }
  return nl;
}

}  // namespace

Netlist attach_cpa(const MultiplierPrefix& prefix, const MultiplierSpec& spec,
                   netlist::CpaKind cpa) {
  return attach_cpa_impl(prefix, spec, cpa);
}

Netlist attach_cpa(const MultiplierPrefix& prefix, const MultiplierSpec& spec,
                   const rlmul::prefix::PrefixGraph& cpa) {
  return attach_cpa_impl(prefix, spec, cpa);
}

Netlist build_multiplier(const MultiplierSpec& spec,
                         const ct::CompressorTree& tree,
                         netlist::CpaKind cpa,
                         const netlist::CtBuildOptions& ct_opts) {
  return attach_cpa(build_multiplier_prefix(spec, tree, ct_opts), spec, cpa);
}

Netlist build_multiplier(const MultiplierSpec& spec,
                         const ct::CompressorTree& tree,
                         const prefix::PrefixGraph& cpa,
                         const netlist::CtBuildOptions& ct_opts) {
  return attach_cpa(build_multiplier_prefix(spec, tree, ct_opts), spec, cpa);
}

ct::CompressorTree initial_tree(const MultiplierSpec& spec) {
  return ct::wallace_tree(pp_heights(spec));
}

}  // namespace rlmul::ppg
