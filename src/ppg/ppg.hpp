#pragma once
// Partial-product generation (the PPG block of Fig 2) and the top-level
// multiplier/MAC netlist builder. Two PPG families are supported, as in
// the paper's experiments:
//
//  * AND-based: N^2 AND gates, column heights min(j+1, N, 2N-1-j).
//  * Radix-4 Modified Booth Encoding (MBE): floor(N/2)+1 signed-digit
//    rows; each row is a one's-complement selected multiple of A with a
//    `neg` correction bit, an inverted-sign bit at the row's top, and a
//    precomputed constant block folded from the sign-extension identity
//    -s*2^w  =  (1-s)*2^w - 2^w   (mod 2^{2N}).
//
// The merged-MAC variants (Section III-C) inject a 2N-bit addend row
// directly into the partial products, so accumulation happens inside
// the compressor tree ("multiplication time" MAC of Stelling &
// Oklobdzija).
//
// All arithmetic is modulo 2^{2N} (product register width), matching
// the golden models in sim/.

#include <cstdint>
#include <vector>

#include "ct/compressor_tree.hpp"
#include "netlist/ct_builder.hpp"
#include "netlist/logic_builder.hpp"
#include "netlist/netlist.hpp"

namespace rlmul::ppg {

enum class PpgKind : std::uint8_t {
  kAnd,
  kBooth,        ///< radix-4 modified Booth (unsigned operands)
  kBaughWooley,  ///< modified Baugh-Wooley (two's-complement operands)
};

const char* ppg_kind_name(PpgKind kind);

/// Full design point: what the RL state's compressor tree compresses.
struct MultiplierSpec {
  int bits = 8;               ///< operand width N
  PpgKind ppg = PpgKind::kAnd;
  bool mac = false;           ///< merged multiply-accumulate

  int columns() const { return 2 * bits; }
  bool operator==(const MultiplierSpec&) const = default;
};

/// Initial column heights the PPG produces; this is the `pp` vector a
/// CompressorTree for this spec must be built against.
ct::ColumnHeights pp_heights(const MultiplierSpec& spec);

/// Emits the PPG into the netlist. Operand inputs are created as
/// primary inputs a[0..N), b[0..N) and, for MACs, c[0..2N).
/// Returns per-column partial-product signals whose heights match
/// pp_heights(spec).
netlist::ColumnSignals build_ppg(netlist::LogicBuilder& lb,
                                 const MultiplierSpec& spec);

/// Operand signals for embedding a multiplier/MAC core inside a larger
/// design (e.g. a registered processing element): a and b are N wide,
/// c is 2N wide for MAC specs (ignored otherwise).
struct CoreInputs {
  std::vector<netlist::Signal> a;
  std::vector<netlist::Signal> b;
  std::vector<netlist::Signal> c;
};

/// Builds PPG + compressor tree + CPA on the given operand signals and
/// returns the 2N product signals, without touching primary I/O.
std::vector<netlist::Signal> build_core(
    netlist::LogicBuilder& lb, const MultiplierSpec& spec,
    const ct::CompressorTree& tree, netlist::CpaKind cpa,
    const CoreInputs& inputs, const netlist::CtBuildOptions& ct_opts = {});

/// Builds the complete design: PPG + compressor tree + CPA, with
/// product outputs p[0..2N) marked as primary outputs.
/// `tree.pp` must equal pp_heights(spec).
netlist::Netlist build_multiplier(const MultiplierSpec& spec,
                                  const ct::CompressorTree& tree,
                                  netlist::CpaKind cpa,
                                  const netlist::CtBuildOptions& ct_opts = {});

/// The CPA-independent prefix of build_multiplier: PPG + compressor
/// tree, plus the final (<=2)-row column signals a CPA consumes. The
/// rows reference nets of `netlist`, and stay valid in any copy of it —
/// which is what lets the synthesis fast path build the prefix once per
/// design and append each CPA variant onto a copy instead of rebuilding
/// the whole multiplier per (CPA, target) pair.
struct MultiplierPrefix {
  netlist::Netlist netlist;
  netlist::ColumnSignals rows;
};

MultiplierPrefix build_multiplier_prefix(
    const MultiplierSpec& spec, const ct::CompressorTree& tree,
    const netlist::CtBuildOptions& ct_opts = {});

/// Completes a copy of the prefix with the given CPA and primary
/// outputs. `build_multiplier(spec, tree, cpa)` is gate-for-gate
/// identical to `attach_cpa(build_multiplier_prefix(spec, tree), spec,
/// cpa)`.
netlist::Netlist attach_cpa(const MultiplierPrefix& prefix,
                            const MultiplierSpec& spec,
                            netlist::CpaKind cpa);

/// Convenience: Wallace-initialized tree for a spec (the RL episodes
/// and the baselines all start here).
ct::CompressorTree initial_tree(const MultiplierSpec& spec);

}  // namespace rlmul::ppg
