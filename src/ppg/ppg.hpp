#pragma once
// Partial-product generation (the PPG block of Fig 2) and the top-level
// multiplier/MAC netlist builder. Two PPG families are supported, as in
// the paper's experiments:
//
//  * AND-based: N^2 AND gates, column heights min(j+1, N, 2N-1-j).
//  * Radix-4 Modified Booth Encoding (MBE): floor(N/2)+1 signed-digit
//    rows; each row is a one's-complement selected multiple of A with a
//    `neg` correction bit, an inverted-sign bit at the row's top, and a
//    precomputed constant block folded from the sign-extension identity
//    -s*2^w  =  (1-s)*2^w - 2^w   (mod 2^{2N}).
//
// The merged-MAC variants (Section III-C) inject a 2N-bit addend row
// directly into the partial products, so accumulation happens inside
// the compressor tree ("multiplication time" MAC of Stelling &
// Oklobdzija).
//
// All arithmetic is modulo 2^{2N} (product register width), matching
// the golden models in sim/.

#include <cstdint>
#include <iterator>
#include <vector>

#include "ct/compressor_tree.hpp"
#include "netlist/ct_builder.hpp"
#include "netlist/logic_builder.hpp"
#include "netlist/netlist.hpp"

namespace rlmul::ppg {

enum class PpgKind : std::uint8_t {
  kAnd,
  kBooth,        ///< radix-4 modified Booth (unsigned operands)
  kBaughWooley,  ///< modified Baugh-Wooley (two's-complement operands)
};

const char* ppg_kind_name(PpgKind kind);

/// Every PPG family, in enum order — the menu the PPG-toggle search
/// dimension walks (and the layout of the env's PPG action block).
inline constexpr PpgKind kAllPpgKinds[] = {
    PpgKind::kAnd, PpgKind::kBooth, PpgKind::kBaughWooley};

/// Validating decode of a serialized PpgKind byte — the only way
/// untrusted bytes (checkpoints, dsdb records) may become a PpgKind.
/// Casting an arbitrary byte is well-defined (fixed underlying type)
/// but produces a value no switch over the enum handles.
inline bool ppg_kind_from_index(std::uint8_t v, PpgKind* out) {
  if (v >= std::size(kAllPpgKinds)) return false;
  *out = kAllPpgKinds[v];
  return true;
}

/// Full design point: what the RL state's compressor tree compresses.
struct MultiplierSpec {
  int bits = 8;               ///< operand width N
  PpgKind ppg = PpgKind::kAnd;
  bool mac = false;           ///< merged multiply-accumulate

  int columns() const { return 2 * bits; }
  bool operator==(const MultiplierSpec&) const = default;
};

/// Initial column heights the PPG produces; this is the `pp` vector a
/// CompressorTree for this spec must be built against.
ct::ColumnHeights pp_heights(const MultiplierSpec& spec);

/// One point of the joint design space the search walks: the PPG
/// family, the compressor tree, and (optionally) a pinned CPA prefix
/// graph. An empty `cpa` (width 0) means "no CPA commitment" — the
/// synthesizer sweeps the named-architecture menu exactly as the
/// tree-only path always has, so a default-constructed point with just
/// a tree is behavior-identical to the legacy (tree, menu) pipeline.
struct DesignPoint {
  PpgKind ppg = PpgKind::kAnd;
  ct::CompressorTree tree;
  prefix::PrefixGraph cpa;  ///< empty = sweep the named CPA menu

  bool cpa_pinned() const { return cpa.width != 0; }

  /// "" for menu points, "|cpa=<16-hex canonical hash>" when pinned —
  /// the key suffix that keeps pinned evaluations from colliding with
  /// menu evaluations of the same tree. Named graphs produced by
  /// prefix_graph_of canonicalize to the same hash regardless of how
  /// they were constructed, so re-derived menu points share keys.
  std::string cpa_suffix() const;

  /// Cache key relative to a base spec: tree.key() + cpa_suffix(), plus
  /// a "|ppg=<name>" marker when this point's PPG family differs from
  /// the base spec's (the spec covers PPG for plain points).
  std::string key(const MultiplierSpec& base) const;

  /// `base` with this point's PPG family substituted in — the spec the
  /// point's tree must have been built against.
  MultiplierSpec resolved_spec(MultiplierSpec base) const;
};

/// The key suffix a pinned CPA graph contributes: "" for an empty graph,
/// "|cpa=<16-hex canonical hash>" otherwise (what DesignPoint::cpa_suffix
/// returns; exposed so dsdb can key records the same way).
std::string cpa_key_suffix(const prefix::PrefixGraph& cpa);

/// Re-bases a tree onto another spec's partial-product heights: the
/// compressor counts are kept where possible and ct::legalize repairs
/// the rest. This is how the PPG-toggle action carries the search state
/// across PPG families without restarting from Wallace.
ct::CompressorTree retarget_tree(const ct::CompressorTree& tree,
                                 const MultiplierSpec& to_spec);

/// Emits the PPG into the netlist. Operand inputs are created as
/// primary inputs a[0..N), b[0..N) and, for MACs, c[0..2N).
/// Returns per-column partial-product signals whose heights match
/// pp_heights(spec).
netlist::ColumnSignals build_ppg(netlist::LogicBuilder& lb,
                                 const MultiplierSpec& spec);

/// Operand signals for embedding a multiplier/MAC core inside a larger
/// design (e.g. a registered processing element): a and b are N wide,
/// c is 2N wide for MAC specs (ignored otherwise).
struct CoreInputs {
  std::vector<netlist::Signal> a;
  std::vector<netlist::Signal> b;
  std::vector<netlist::Signal> c;
};

/// Builds PPG + compressor tree + CPA on the given operand signals and
/// returns the 2N product signals, without touching primary I/O.
std::vector<netlist::Signal> build_core(
    netlist::LogicBuilder& lb, const MultiplierSpec& spec,
    const ct::CompressorTree& tree, netlist::CpaKind cpa,
    const CoreInputs& inputs, const netlist::CtBuildOptions& ct_opts = {});

/// Same, with an arbitrary prefix graph as the CPA (width must be
/// spec.columns()).
std::vector<netlist::Signal> build_core(
    netlist::LogicBuilder& lb, const MultiplierSpec& spec,
    const ct::CompressorTree& tree, const prefix::PrefixGraph& cpa,
    const CoreInputs& inputs, const netlist::CtBuildOptions& ct_opts = {});

/// Builds the complete design: PPG + compressor tree + CPA, with
/// product outputs p[0..2N) marked as primary outputs.
/// `tree.pp` must equal pp_heights(spec).
netlist::Netlist build_multiplier(const MultiplierSpec& spec,
                                  const ct::CompressorTree& tree,
                                  netlist::CpaKind cpa,
                                  const netlist::CtBuildOptions& ct_opts = {});

/// Same, with an arbitrary prefix graph as the CPA.
netlist::Netlist build_multiplier(const MultiplierSpec& spec,
                                  const ct::CompressorTree& tree,
                                  const prefix::PrefixGraph& cpa,
                                  const netlist::CtBuildOptions& ct_opts = {});

/// The CPA-independent prefix of build_multiplier: PPG + compressor
/// tree, plus the final (<=2)-row column signals a CPA consumes. The
/// rows reference nets of `netlist`, and stay valid in any copy of it —
/// which is what lets the synthesis fast path build the prefix once per
/// design and append each CPA variant onto a copy instead of rebuilding
/// the whole multiplier per (CPA, target) pair.
struct MultiplierPrefix {
  netlist::Netlist netlist;
  netlist::ColumnSignals rows;
};

MultiplierPrefix build_multiplier_prefix(
    const MultiplierSpec& spec, const ct::CompressorTree& tree,
    const netlist::CtBuildOptions& ct_opts = {});

/// Completes a copy of the prefix with the given CPA and primary
/// outputs. `build_multiplier(spec, tree, cpa)` is gate-for-gate
/// identical to `attach_cpa(build_multiplier_prefix(spec, tree), spec,
/// cpa)`.
netlist::Netlist attach_cpa(const MultiplierPrefix& prefix,
                            const MultiplierSpec& spec,
                            netlist::CpaKind cpa);

/// Same, with an arbitrary prefix graph as the CPA; `build_multiplier`
/// with a graph is gate-for-gate identical to attaching the graph here.
/// (The CPA type is fully qualified because the first parameter's name
/// shadows the `prefix` namespace.)
netlist::Netlist attach_cpa(const MultiplierPrefix& prefix,
                            const MultiplierSpec& spec,
                            const rlmul::prefix::PrefixGraph& cpa);

/// Convenience: Wallace-initialized tree for a spec (the RL episodes
/// and the baselines all start here).
ct::CompressorTree initial_tree(const MultiplierSpec& spec);

}  // namespace rlmul::ppg
