#pragma once
// The serve wire protocol: length-prefixed (util/framing.hpp) JSON
// documents (serve/json.hpp) over a unix-domain socket.
//
// Requests are objects with an "op" and a client-chosen "id" that the
// matching response echoes — clients may pipeline requests and match
// responses out of band. Responses carry "ok":true plus op-specific
// fields, or "ok":false with "error". Event frames (no "id", an
// "event" field instead) are interleaved into subscribed connections:
//
//   request:  {"id":N,"op":"submit","spec":{...},"subscribe":true}
//   response: {"id":N,"ok":true,"job":J}
//   event:    {"event":"progress","job":J,"seq":K,"best_cost":...}
//
// Ops: ping, stats, submit, status (job or whole-daemon), list,
// events (subscribe), cancel, shutdown. The full grammar is documented
// in docs/architecture.md ("Service layer").

#include <cstdint>
#include <string>

#include "ppg/ppg.hpp"
#include "search/driver.hpp"
#include "search/method.hpp"
#include "serve/json.hpp"

namespace rlmul::serve {

/// Everything a client specifies about one optimization job — the
/// wire-facing mirror of the CLI's optimize flags.
struct JobSpec {
  int bits = 8;
  std::string ppg = "and";  ///< and | mbe | bw
  bool mac = false;
  std::string method = "sa";
  int steps = 100;
  std::uint64_t seed = 1;
  /// Unique-synthesis-evaluation cap for this job; 0 = uncapped
  /// (rejected when the server enforces per-client budgets).
  std::uint64_t budget = 0;
  bool cpa_search = false;
  bool ppg_search = false;
};

/// Throws std::runtime_error on an invalid spec (bits range, ppg name).
ppg::MultiplierSpec resolve_spec(const JobSpec& spec);
/// MethodConfig with the same per-method conventions the CLI applies
/// (A2C splits steps across workers).
search::MethodConfig resolve_config(const JobSpec& spec);

json::Value to_json(const JobSpec& spec);
/// False (with *err set) on missing/invalid fields.
bool job_spec_from_json(const json::Value& v, JobSpec* out, std::string* err);

/// Scheduler job lifecycle. QUEUED and RUNNING are live; DONE, FAILED
/// and CANCELLED are terminal; DRAINED is parked-on-disk (the daemon
/// checkpointed the job on shutdown and a restart resumes it).
enum class JobState : std::uint8_t {
  kQueued,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
  kDrained,
};

const char* job_state_name(JobState s);
bool job_state_terminal(JobState s);

/// One job's externally visible condition — what `status` returns and
/// what state-change events embed.
struct JobStatus {
  std::uint64_t id = 0;
  JobState state = JobState::kQueued;
  JobSpec spec;
  search::Progress progress;
  /// True when the run ended because the method finished (vs. the
  /// budget/steps cap); meaningful for kDone.
  bool completed = false;
  bool resumed = false;  ///< job was restored from a drained checkpoint
  std::uint64_t events = 0;  ///< event frames emitted so far
  std::string error;         ///< kFailed diagnostic
};

json::Value to_json(const JobStatus& st);

}  // namespace rlmul::serve
