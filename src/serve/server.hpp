#pragma once
// The serve daemon: a single poll(2) loop on a unix-domain socket,
// speaking the length-prefixed JSON protocol of serve/protocol.hpp,
// in front of a serve::Scheduler.
//
// Threading model: run() is the poll thread — it accepts connections,
// parses frames, and dispatches every request inline (requests are
// cheap; the heavy lifting happens on the scheduler's step pool).
// Scheduler step threads deliver events through the EventSink, which
// appends frames to subscribed connections' output buffers under
// conns_mu_ and wakes the poll loop through the self-pipe; the loop
// then flushes whole batches with single writes. Lock order:
// Scheduler::mu_ -> Server::conns_mu_ (the sink and the on_admit
// subscription hook both run under the scheduler lock), so no Server
// path may call into the scheduler while holding conns_mu_.
//
// Shutdown: request_shutdown() is async-signal-safe (atomic store +
// one pipe write) — SIGTERM/SIGINT handlers call it directly. The loop
// notices, stops accepting, drains the scheduler (checkpoint-on-drain),
// flushes the final event frames, and returns.

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/request_handler.hpp"
#include "serve/scheduler.hpp"
#include "serve/socket.hpp"
#include "util/framing.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace rlmul::serve {

struct ServerOptions {
  std::string socket_path;
  SchedulerOptions scheduler;
  /// Largest frame a peer may send (`--max-frame-bytes`); a declared
  /// length beyond this poisons the connection's parser before any
  /// payload is buffered, so a hostile client cannot reserve memory by
  /// announcing a huge frame.
  std::size_t max_frame_bytes = util::kDefaultMaxFrameBytes;
  /// Per-connection cap (`--max-outbuf-bytes`) on buffered memory —
  /// pending output (responses + event frames) plus the parser's
  /// unconsumed input. A slow-reading subscriber that falls this far
  /// behind on its event stream is dropped: the alternative is
  /// unbounded daemon memory held hostage by one client.
  std::size_t max_outbuf_bytes = 64u << 20;
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and runs the poll loop until a shutdown request,
  /// then drains the scheduler and returns. Call from one thread.
  void run();

  /// Async-signal-safe shutdown trigger (also used by the `shutdown`
  /// op). Safe to call before/while/after run().
  void request_shutdown();

  /// Re-admits drained jobs from the scheduler's state dir. Call
  /// before run().
  std::size_t resume_persisted() { return scheduler_.resume_persisted(); }

  Scheduler& scheduler() { return scheduler_; }

 private:
  struct Conn {
    explicit Conn(std::size_t max_frame) : parser(max_frame) {}

    std::uint64_t id = 0;
    Fd fd;
    util::FrameParser parser;
    /// Pending output (responses + event frames), flushed by the poll
    /// loop; written by step threads through the event sink.
    std::vector<std::uint8_t> out;
    bool dead = false;

    /// Everything this connection holds in daemon memory — the
    /// max_outbuf_bytes accounting unit.
    std::size_t buffered_bytes() const {
      return out.size() + parser.buffered();
    }
  };

  RequestHooks make_hooks();
  void on_event(std::uint64_t job, const json::Value& ev);
  void accept_new();
  void handle_readable(Conn& conn);
  void handle_frame(Conn& conn, const std::string& payload);
  void send_json(Conn& conn, const json::Value& v);
  void flush_conn(Conn& conn);
  void close_conn(std::uint64_t conn_id);

  ServerOptions opts_;
  Pipe pipe_;            ///< self-pipe: event wakeups + signal shutdown
  int pipe_write_fd_ = -1;  ///< cached for async-signal-safe wake()
  std::atomic<bool> stop_{false};
  Fd listen_;

  util::Mutex conns_mu_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_
      RLMUL_GUARDED_BY(conns_mu_);
  /// job id -> subscribed connection ids.
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> subs_
      RLMUL_GUARDED_BY(conns_mu_);
  std::uint64_t next_conn_id_ RLMUL_GUARDED_BY(conns_mu_) = 1;

  /// Transport callbacks handed to serve::handle_frame_payload — the
  /// shared dispatcher in request_handler.cpp does everything else.
  RequestHooks hooks_;

  /// Declared last: its step threads call on_event (touching conns_)
  /// until its destructor joins them, so everything above must outlive
  /// it in reverse destruction order.
  Scheduler scheduler_;
};

}  // namespace rlmul::serve
