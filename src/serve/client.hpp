#pragma once
// Blocking client for the serve protocol. One Client per thread — it
// owns one connection and is not internally synchronized. call() is
// strictly request/response; event frames that arrive while waiting
// for a response are queued and handed out through poll_event /
// wait_event, so a subscribed connection can interleave RPCs with its
// event stream without losing either.

#include <cstdint>
#include <deque>
#include <string>

#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/socket.hpp"
#include "util/framing.hpp"

namespace rlmul::serve {

class Client {
 public:
  /// Connects (blocking fd); throws std::runtime_error on failure.
  explicit Client(const std::string& socket_path);

  /// Assigns the request "id", sends, and blocks until the matching
  /// response frame. Throws on a dead connection; protocol-level
  /// failures come back as {"ok":false,...} for the caller to inspect.
  json::Value call(json::Value req);

  /// Pops an already-received event frame; false when none queued.
  bool poll_event(json::Value* ev);
  /// Waits up to timeout_ms for an event frame; false on timeout.
  bool wait_event(json::Value* ev, int timeout_ms);

  // -- convenience wrappers (throw std::runtime_error on "ok":false) --
  void ping();
  /// Returns the job id. subscribe=true installs the event stream from
  /// seq 0 atomically with admission.
  std::uint64_t submit(const JobSpec& spec, bool subscribe = false);
  json::Value status(std::uint64_t job);
  json::Value list();
  json::Value stats();
  /// Subscribes to an already-running job (mid-stream); returns the
  /// seq the first live event will carry.
  std::uint64_t subscribe(std::uint64_t job);
  void cancel(std::uint64_t job);
  /// Asks the daemon to drain (checkpoint-on-drain) and exit.
  void shutdown_server();

 private:
  json::Value check(json::Value resp, const char* what);
  /// Reads one socket chunk into the parser. timeout_ms < 0 blocks.
  /// False on timeout; throws on EOF/error.
  bool read_chunk(int timeout_ms);

  Fd fd_;
  util::FrameParser parser_;
  std::deque<json::Value> events_;
  std::uint64_t next_id_ = 1;
};

}  // namespace rlmul::serve
