#pragma once
// Minimal JSON value type for the serve wire protocol — just enough
// for flat request/response/event documents: null, bool, number
// (double; integers round-trip exactly up to 2^53, which covers every
// id/seq/budget the protocol carries), string, array, object. Objects
// keep keys sorted (std::map), so dump() output is deterministic — the
// tests and the smoke scripts compare serialized documents textually.
//
// parse() throws std::runtime_error with an offset on malformed input;
// the server turns that into a protocol error response instead of
// crashing on a garbage frame.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rlmul::serve::json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  Value(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Value(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  Value(double d) : type_(Type::kNumber), num_(d) {}  // NOLINT
  Value(int v) : Value(static_cast<double>(v)) {}  // NOLINT
  Value(std::uint64_t v) : Value(static_cast<double>(v)) {}  // NOLINT
  Value(std::int64_t v) : Value(static_cast<double>(v)) {}  // NOLINT
  Value(const char* s) : type_(Type::kString), str_(s) {}  // NOLINT
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT

  static Value object() {
    Value v;
    v.type_ = Type::kObject;
    return v;
  }
  static Value array() {
    Value v;
    v.type_ = Type::kArray;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double as_double(double fallback = 0.0) const {
    return is_number() ? num_ : fallback;
  }
  std::int64_t as_i64(std::int64_t fallback = 0) const {
    return is_number() ? static_cast<std::int64_t>(num_) : fallback;
  }
  std::uint64_t as_u64(std::uint64_t fallback = 0) const {
    return is_number() && num_ >= 0 ? static_cast<std::uint64_t>(num_)
                                    : fallback;
  }
  const std::string& as_string() const { return str_; }

  std::vector<Value>& items() { return arr_; }
  const std::vector<Value>& items() const { return arr_; }
  std::map<std::string, Value>& fields() { return obj_; }
  const std::map<std::string, Value>& fields() const { return obj_; }

  /// Object member access; inserting on a non-object promotes it.
  Value& operator[](const std::string& key) {
    type_ = Type::kObject;
    return obj_[key];
  }
  /// Lookup without insertion; nullptr when absent or not an object.
  const Value* find(const std::string& key) const {
    if (type_ != Type::kObject) return nullptr;
    auto it = obj_.find(key);
    return it == obj_.end() ? nullptr : &it->second;
  }
  void push_back(Value v) {
    type_ = Type::kArray;
    arr_.push_back(std::move(v));
  }

  /// Compact single-line serialization (no trailing newline).
  std::string dump() const;

  /// Throws std::runtime_error (with byte offset) on malformed input
  /// or trailing garbage.
  static Value parse(const std::string& text);

 private:
  void dump_to(std::string& out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> arr_;
  std::map<std::string, Value> obj_;
};

}  // namespace rlmul::serve::json
