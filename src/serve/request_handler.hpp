#pragma once
// Transport-independent dispatch for the serve wire protocol: one JSON
// request document in, exactly one JSON response document out. The
// Server's poll loop and the fuzz/test harnesses share this code path,
// so the protocol surface that faces untrusted bytes is fuzzed exactly
// as it ships — there is no "test double" dispatcher that could drift.
//
// The dispatcher owns everything that only needs the Scheduler; the
// few operations that touch transport state (event subscriptions, the
// live connection count, daemon shutdown) go through RequestHooks so
// the Server can plug in its conns_ table and a harness can plug in a
// plain map. All hooks are optional: a null subscribe simply drops the
// subscription request (the response is unchanged), a null
// connection_count omits the "conns" stats field, and a null shutdown
// still answers {"ok":true} — the transport just has nothing to stop.
//
// Contract (the fuzz_protocol invariant): handle_frame_payload never
// throws and always returns a response object carrying an "ok" bool —
// malformed JSON, unknown ops, scheduler rejections and dispatch-time
// exceptions all come back as {"ok":false,"error":...}.

#include <cstdint>
#include <functional>
#include <string>

#include "serve/json.hpp"

namespace rlmul::serve {

class Scheduler;

struct RequestHooks {
  /// Installs (job, client) into the transport's subscription table.
  /// For submit+subscribe this runs under the scheduler lock before
  /// the job's first event (seq 0 is never missed); for the "events"
  /// op it runs unlocked.
  std::function<void(std::uint64_t job, std::uint64_t client)> subscribe;
  /// Live transport connections, for the "stats" response.
  std::function<std::uint64_t()> connection_count;
  /// The "shutdown" op's trigger (Server::request_shutdown).
  std::function<void()> shutdown;
};

/// Dispatches one parsed request. May throw only what json::Value
/// accessors can throw (nothing today); callers that feed untrusted
/// bytes should go through handle_frame_payload instead.
json::Value handle_request(Scheduler& sched, std::uint64_t client_id,
                           const json::Value& req, const RequestHooks& hooks);

/// One framed payload in, exactly one response out: parses the JSON,
/// dispatches, echoes the request "id", and converts every failure
/// (parse error, dispatch exception) into {"ok":false,"error":...}.
json::Value handle_frame_payload(Scheduler& sched, std::uint64_t client_id,
                                 const std::string& payload,
                                 const RequestHooks& hooks);

}  // namespace rlmul::serve
