#include "serve/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace rlmul::serve::json {
namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; the protocol never
    out += "null";          // sends them, but don't emit invalid text.
    return;
  }
  // The magnitude check must come first: casting a double ≥ 2^63 to
  // long long is UB (caught by fuzz_json under UBSan with input 1e300).
  if (std::fabs(v) < 9.007199254740992e15 &&
      v == static_cast<double>(static_cast<long long>(v))) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value run() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    if (++depth_ > 64) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    Value out;
    if (c == '{') {
      out = parse_object();
    } else if (c == '[') {
      out = parse_array();
    } else if (c == '"') {
      out = Value(parse_string());
    } else if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      out = Value(true);
    } else if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      out = Value(false);
    } else if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
    } else {
      out = parse_number();
    }
    --depth_;
    return out;
  }

  Value parse_object() {
    expect('{');
    Value out = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out[key] = parse_value();
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return out;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  Value parse_array() {
    expect('[');
    Value out = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      out.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return out;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (the protocol is ASCII in
          // practice; surrogate pairs are not supported).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool any = false;
    auto digits = [&]() {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        any = true;
      }
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      digits();
    }
    if (!any) fail("bad number");
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number");
    // "1e999" overflows to inf, which dump() would re-emit as null —
    // reject it so parse→dump→parse is a fixpoint (fuzz_json invariant).
    if (!std::isfinite(v)) fail("number out of range");
    return Value(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::string Value::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

void Value::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: append_number(out, num_); break;
    case Type::kString: append_escaped(out, str_); break;
    case Type::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out.push_back(',');
        arr_[i].dump_to(out);
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out.push_back(',');
        first = false;
        append_escaped(out, k);
        out.push_back(':');
        v.dump_to(out);
      }
      out.push_back('}');
      break;
    }
  }
}

Value Value::parse(const std::string& text) { return Parser(text).run(); }

}  // namespace rlmul::serve::json
