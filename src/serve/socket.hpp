#pragma once
// Unix-domain socket plumbing for the serve daemon and its clients.
// This is the ONLY place in src/ allowed to issue raw socket/poll
// syscalls (tools/lint/check_invariants.py `raw-socket` rule): the
// rest of the service speaks through these RAII helpers, so fd
// lifetime bugs and EINTR handling live in one file.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rlmul::serve {

/// RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset();

 private:
  int fd_ = -1;
};

/// Binds + listens on a unix socket, unlinking any stale path first.
/// Throws std::runtime_error on failure.
Fd listen_unix(const std::string& path);

/// Connects to a listening unix socket; throws on failure.
Fd connect_unix(const std::string& path);

/// Accepts one pending connection; invalid Fd when none ready.
Fd accept_conn(int listen_fd);

void set_nonblocking(int fd);

/// A pipe pair for poll-loop wakeups. The write end is async-signal
/// safe to write one byte to (signal handlers use it).
struct Pipe {
  Fd read_end;
  Fd write_end;
};
Pipe make_pipe();

/// Writes one byte, ignoring EAGAIN (a full pipe already wakes the
/// reader). Async-signal-safe.
void wake(int write_fd);

/// What poll reported for one fd.
struct PollItem {
  int fd = -1;
  bool want_write = false;  ///< in: also watch writability
  bool readable = false;    ///< out
  bool writable = false;    ///< out
  bool error = false;       ///< out: HUP/ERR/NVAL
};

/// poll(2) with EINTR retry. Returns number of fds with events (0 on
/// timeout). `timeout_ms` < 0 blocks indefinitely.
int poll_items(std::vector<PollItem>& items, int timeout_ms);

/// Blocking read/write with EINTR retry. read_some returns 0 on EOF,
/// -1 on EAGAIN (nonblocking fd, nothing there), throws on hard error.
std::ptrdiff_t read_some(int fd, void* buf, std::size_t n);
/// Returns bytes written (possibly short on nonblocking fds; -1 on
/// EAGAIN with nothing written), throws on hard error (EPIPE included
/// — callers treat a dead peer as a closed connection).
std::ptrdiff_t write_some(int fd, const void* buf, std::size_t n);

/// Writes all n bytes on a blocking fd; throws on error/EOF.
void write_all(int fd, const void* buf, std::size_t n);

}  // namespace rlmul::serve
