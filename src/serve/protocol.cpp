#include "serve/protocol.hpp"

#include <algorithm>
#include <stdexcept>

namespace rlmul::serve {

ppg::MultiplierSpec resolve_spec(const JobSpec& spec) {
  if (spec.bits < 2 || spec.bits > 32) {
    throw std::runtime_error("bits out of range (2..32): " +
                             std::to_string(spec.bits));
  }
  ppg::MultiplierSpec out;
  out.bits = spec.bits;
  out.mac = spec.mac;
  if (spec.ppg == "and") out.ppg = ppg::PpgKind::kAnd;
  else if (spec.ppg == "mbe") out.ppg = ppg::PpgKind::kBooth;
  else if (spec.ppg == "bw") out.ppg = ppg::PpgKind::kBaughWooley;
  else throw std::runtime_error("unknown ppg: " + spec.ppg);
  return out;
}

search::MethodConfig resolve_config(const JobSpec& spec) {
  search::MethodConfig cfg;
  cfg.steps = spec.steps;
  cfg.seed = spec.seed;
  cfg.search_cpa = spec.cpa_search;
  cfg.search_ppg = spec.ppg_search;
  // Same convention as the CLI: A2C workers advance in lockstep, so
  // each worker gets steps/threads environment steps.
  if (spec.method == "a2c") {
    cfg.steps = std::max(1, spec.steps / cfg.threads);
  }
  return cfg;
}

json::Value to_json(const JobSpec& spec) {
  json::Value v = json::Value::object();
  v["bits"] = spec.bits;
  v["ppg"] = spec.ppg;
  v["mac"] = spec.mac;
  v["method"] = spec.method;
  v["steps"] = spec.steps;
  v["seed"] = spec.seed;
  v["budget"] = spec.budget;
  v["cpa_search"] = spec.cpa_search;
  v["ppg_search"] = spec.ppg_search;
  return v;
}

bool job_spec_from_json(const json::Value& v, JobSpec* out,
                        std::string* err) {
  if (!v.is_object()) {
    *err = "spec must be an object";
    return false;
  }
  JobSpec spec;
  if (const json::Value* f = v.find("bits")) {
    spec.bits = static_cast<int>(f->as_i64(0));
  }
  if (const json::Value* f = v.find("ppg")) spec.ppg = f->as_string();
  if (const json::Value* f = v.find("mac")) spec.mac = f->as_bool();
  if (const json::Value* f = v.find("method")) spec.method = f->as_string();
  if (const json::Value* f = v.find("steps")) {
    spec.steps = static_cast<int>(f->as_i64(0));
  }
  if (const json::Value* f = v.find("seed")) spec.seed = f->as_u64(1);
  if (const json::Value* f = v.find("budget")) spec.budget = f->as_u64(0);
  if (const json::Value* f = v.find("cpa_search")) {
    spec.cpa_search = f->as_bool();
  }
  if (const json::Value* f = v.find("ppg_search")) {
    spec.ppg_search = f->as_bool();
  }
  if (spec.bits < 2 || spec.bits > 32) {
    *err = "bits out of range (2..32)";
    return false;
  }
  if (spec.ppg != "and" && spec.ppg != "mbe" && spec.ppg != "bw") {
    *err = "unknown ppg: " + spec.ppg;
    return false;
  }
  if (spec.steps < 1) {
    *err = "steps must be >= 1";
    return false;
  }
  if (spec.method.empty()) {
    *err = "method must be non-empty";
    return false;
  }
  *out = spec;
  return true;
}

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kDrained: return "drained";
  }
  return "?";
}

bool job_state_terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kCancelled;
}

json::Value to_json(const JobStatus& st) {
  json::Value v = json::Value::object();
  v["job"] = st.id;
  v["state"] = job_state_name(st.state);
  v["spec"] = to_json(st.spec);
  v["best_cost"] = st.progress.best_cost;
  v["steps_done"] = st.progress.steps_done;
  v["eda_consumed"] = st.progress.eda_consumed;
  v["started"] = st.progress.started;
  v["completed"] = st.completed;
  v["resumed"] = st.resumed;
  v["events"] = st.events;
  if (!st.error.empty()) v["error"] = st.error;
  return v;
}

}  // namespace rlmul::serve
