#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <thread>

namespace rlmul::serve {

using util::LockGuard;

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      pipe_(make_pipe()),
      pipe_write_fd_(pipe_.write_end.get()),
      scheduler_(opts_.scheduler, [this](std::uint64_t job,
                                         const json::Value& ev) {
        on_event(job, ev);
      }) {}

Server::~Server() = default;

void Server::request_shutdown() {
  stop_.store(true, std::memory_order_release);
  wake(pipe_write_fd_);
}

void Server::on_event(std::uint64_t job, const json::Value& ev) {
  // Runs on a scheduler step thread with Scheduler::mu_ held (lock
  // order: mu_ -> conns_mu_). Buffer only; the poll loop writes.
  const std::string payload = ev.dump();
  LockGuard lock(conns_mu_);
  auto it = subs_.find(job);
  if (it == subs_.end()) return;
  bool queued = false;
  for (std::uint64_t cid : it->second) {
    auto cit = conns_.find(cid);
    if (cit == conns_.end() || cit->second->dead) continue;
    Conn& conn = *cit->second;
    util::append_frame(conn.out, payload);
    if (conn.out.size() > opts_.max_outbuf_bytes) conn.dead = true;
    queued = true;
  }
  if (queued) wake(pipe_write_fd_);
}

void Server::run() {
  listen_ = listen_unix(opts_.socket_path);
  set_nonblocking(listen_.get());

  while (!stop_.load(std::memory_order_acquire)) {
    std::vector<PollItem> items(2);
    items[0].fd = listen_.get();
    items[1].fd = pipe_.read_end.get();
    std::vector<std::uint64_t> ids;
    {
      LockGuard lock(conns_mu_);
      ids.reserve(conns_.size());
      for (const auto& [id, conn] : conns_) {
        if (conn->dead) continue;
        PollItem item;
        item.fd = conn->fd.get();
        item.want_write = !conn->out.empty();
        items.push_back(item);
        ids.push_back(id);
      }
    }
    poll_items(items, 500);

    if (items[1].readable) {
      char buf[64];
      while (read_some(pipe_.read_end.get(), buf, sizeof(buf)) > 0) {
      }
    }
    if (stop_.load(std::memory_order_acquire)) break;

    if (items[0].readable) accept_new();

    for (std::size_t i = 0; i < ids.size(); ++i) {
      const PollItem& item = items[2 + i];
      Conn* conn = nullptr;
      {
        LockGuard lock(conns_mu_);
        auto it = conns_.find(ids[i]);
        if (it == conns_.end()) continue;
        conn = it->second.get();
      }
      // Safe unlocked: only this (poll) thread erases connections, and
      // step threads touch nothing but `out` (under conns_mu_).
      if (item.error) {
        conn->dead = true;
        continue;
      }
      if (item.readable) handle_readable(*conn);
      if (item.writable && !conn->dead) flush_conn(*conn);
    }

    std::vector<std::uint64_t> dead;
    {
      LockGuard lock(conns_mu_);
      for (const auto& [id, conn] : conns_) {
        if (conn->dead) dead.push_back(id);
      }
    }
    for (std::uint64_t id : dead) close_conn(id);
  }

  // Graceful shutdown: checkpoint-on-drain every live job, then give
  // subscribers a short window to receive the final drained/state
  // events before the sockets close.
  scheduler_.drain();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  for (;;) {
    bool pending = false;
    {
      LockGuard lock(conns_mu_);
      for (const auto& [id, conn] : conns_) {
        if (conn->dead) continue;
        pending = pending || !conn->out.empty();
      }
    }
    if (!pending || std::chrono::steady_clock::now() > deadline) break;
    std::vector<std::uint64_t> ids;
    {
      LockGuard lock(conns_mu_);
      for (const auto& [id, conn] : conns_) ids.push_back(id);
    }
    for (std::uint64_t id : ids) {
      Conn* conn = nullptr;
      {
        LockGuard lock(conns_mu_);
        auto it = conns_.find(id);
        if (it == conns_.end()) continue;
        conn = it->second.get();
      }
      if (!conn->dead) flush_conn(*conn);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  {
    LockGuard lock(conns_mu_);
    conns_.clear();
    subs_.clear();
  }
  listen_.reset();
  std::error_code ec;
  std::filesystem::remove(opts_.socket_path, ec);
}

void Server::accept_new() {
  for (;;) {
    Fd fd = accept_conn(listen_.get());
    if (!fd.valid()) return;
    set_nonblocking(fd.get());
    auto conn = std::make_unique<Conn>();
    conn->fd = std::move(fd);
    LockGuard lock(conns_mu_);
    conn->id = next_conn_id_++;
    conns_[conn->id] = std::move(conn);
  }
}

void Server::handle_readable(Conn& conn) {
  char buf[4096];
  for (;;) {
    std::ptrdiff_t n = 0;
    try {
      n = read_some(conn.fd.get(), buf, sizeof(buf));
    } catch (const std::exception&) {
      conn.dead = true;  // ECONNRESET and friends
      return;
    }
    if (n < 0) break;  // EAGAIN: drained the socket
    if (n == 0) {      // EOF — torn trailing frame dies with the conn
      conn.dead = true;
      return;
    }
    try {
      conn.parser.feed(buf, static_cast<std::size_t>(n));
      std::string payload;
      while (conn.parser.next(&payload)) handle_frame(conn, payload);
    } catch (const std::exception&) {
      conn.dead = true;  // oversized frame: protocol violation
      return;
    }
  }
}

void Server::handle_frame(Conn& conn, const std::string& payload) {
  json::Value req;
  try {
    req = json::Value::parse(payload);
  } catch (const std::exception& e) {
    // Correctly framed garbage: reject the request, keep the conn.
    json::Value resp = json::Value::object();
    resp["ok"] = false;
    resp["error"] = std::string("bad json: ") + e.what();
    send_json(conn, resp);
    return;
  }
  json::Value resp;
  try {
    resp = dispatch(conn, req);
  } catch (const std::exception& e) {
    resp = json::Value::object();
    resp["ok"] = false;
    resp["error"] = e.what();
  }
  if (const json::Value* id = req.find("id")) resp["id"] = *id;
  send_json(conn, resp);
}

json::Value Server::dispatch(Conn& conn, const json::Value& req) {
  json::Value resp = json::Value::object();
  const json::Value* opf = req.find("op");
  if (!opf || !opf->is_string()) {
    resp["ok"] = false;
    resp["error"] = "missing op";
    return resp;
  }
  const std::string& op = opf->as_string();

  if (op == "ping") {
    resp["ok"] = true;
    resp["pong"] = true;
    return resp;
  }

  if (op == "stats" || (op == "status" && !req.find("job"))) {
    const Scheduler::Stats s = scheduler_.stats();
    resp["ok"] = true;
    resp["jobs"] = static_cast<std::uint64_t>(s.jobs);
    resp["active"] = static_cast<std::uint64_t>(s.active);
    resp["queued"] = static_cast<std::uint64_t>(s.queued);
    resp["done"] = static_cast<std::uint64_t>(s.done);
    resp["failed"] = static_cast<std::uint64_t>(s.failed);
    resp["cancelled"] = static_cast<std::uint64_t>(s.cancelled);
    resp["drained"] = static_cast<std::uint64_t>(s.drained);
    resp["evaluators"] = static_cast<std::uint64_t>(s.evaluators);
    resp["draining"] = s.draining;
    {
      LockGuard lock(conns_mu_);
      resp["conns"] = static_cast<std::uint64_t>(conns_.size());
    }
    return resp;
  }

  if (op == "submit") {
    JobSpec spec;
    std::string err;
    if (const json::Value* specf = req.find("spec")) {
      if (!job_spec_from_json(*specf, &spec, &err)) {
        resp["ok"] = false;
        resp["error"] = err;
        return resp;
      }
    }
    const bool subscribe =
        req.find("subscribe") && req.find("subscribe")->as_bool();
    const std::uint64_t conn_id = conn.id;
    std::uint64_t job_id = 0;
    std::function<void(std::uint64_t)> on_admit;
    if (subscribe) {
      // Runs under Scheduler::mu_ before the job's first event, so the
      // subscriber sees the stream from seq 0.
      on_admit = [this, conn_id](std::uint64_t j) {
        LockGuard lock(conns_mu_);
        subs_[j].push_back(conn_id);
      };
    }
    const bool ok = scheduler_.submit(spec, conn_id, &job_id, &err, on_admit);
    resp["ok"] = ok;
    if (ok) {
      resp["job"] = job_id;
    } else {
      resp["error"] = err;
    }
    return resp;
  }

  const json::Value* jobf = req.find("job");
  const std::uint64_t job_id = jobf ? jobf->as_u64() : 0;

  if (op == "status") {
    JobStatus st;
    if (!scheduler_.status(job_id, &st)) {
      resp["ok"] = false;
      resp["error"] = "unknown job: " + std::to_string(job_id);
      return resp;
    }
    resp = to_json(st);
    resp["ok"] = true;
    return resp;
  }

  if (op == "list") {
    json::Value jobs = json::Value::array();
    for (const JobStatus& st : scheduler_.list()) jobs.push_back(to_json(st));
    resp["ok"] = true;
    resp["jobs"] = std::move(jobs);
    return resp;
  }

  if (op == "events") {
    JobStatus st;
    if (!scheduler_.status(job_id, &st)) {
      resp["ok"] = false;
      resp["error"] = "unknown job: " + std::to_string(job_id);
      return resp;
    }
    {
      LockGuard lock(conns_mu_);
      std::vector<std::uint64_t>& v = subs_[job_id];
      if (std::find(v.begin(), v.end(), conn.id) == v.end()) {
        v.push_back(conn.id);
      }
    }
    // The subscription starts mid-stream; `from_seq` tells the client
    // which seq its first live event will carry.
    resp["ok"] = true;
    resp["from_seq"] = st.events;
    return resp;
  }

  if (op == "cancel") {
    std::string err;
    const bool ok = scheduler_.cancel(job_id, &err);
    resp["ok"] = ok;
    if (!ok) resp["error"] = err;
    return resp;
  }

  if (op == "shutdown") {
    resp["ok"] = true;
    // The response is buffered before the loop notices the flag, and
    // the post-drain flush window delivers it.
    request_shutdown();
    return resp;
  }

  resp["ok"] = false;
  resp["error"] = "unknown op: " + op;
  return resp;
}

void Server::send_json(Conn& conn, const json::Value& v) {
  const std::string payload = v.dump();
  {
    LockGuard lock(conns_mu_);
    util::append_frame(conn.out, payload);
    if (conn.out.size() > opts_.max_outbuf_bytes) {
      conn.dead = true;
      return;
    }
  }
  flush_conn(conn);
}

void Server::flush_conn(Conn& conn) {
  LockGuard lock(conns_mu_);
  while (!conn.out.empty()) {
    std::ptrdiff_t n = 0;
    try {
      n = write_some(conn.fd.get(), conn.out.data(), conn.out.size());
    } catch (const std::exception&) {
      conn.dead = true;  // EPIPE: peer went away
      return;
    }
    if (n < 0) return;  // EAGAIN: poll will retry when writable
    conn.out.erase(conn.out.begin(), conn.out.begin() + n);
  }
}

void Server::close_conn(std::uint64_t conn_id) {
  LockGuard lock(conns_mu_);
  for (auto it = subs_.begin(); it != subs_.end();) {
    std::vector<std::uint64_t>& v = it->second;
    v.erase(std::remove(v.begin(), v.end(), conn_id), v.end());
    it = v.empty() ? subs_.erase(it) : std::next(it);
  }
  conns_.erase(conn_id);
}

}  // namespace rlmul::serve
