#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <thread>

namespace rlmul::serve {

using util::LockGuard;

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      pipe_(make_pipe()),
      pipe_write_fd_(pipe_.write_end.get()),
      hooks_(make_hooks()),
      scheduler_(opts_.scheduler, [this](std::uint64_t job,
                                         const json::Value& ev) {
        on_event(job, ev);
      }) {}

Server::~Server() = default;

RequestHooks Server::make_hooks() {
  RequestHooks hooks;
  // For submit+subscribe the dispatcher invokes this under
  // Scheduler::mu_ (lock order: mu_ -> conns_mu_); for the "events" op
  // it runs with no scheduler lock held. Both are fine: conns_mu_ is a
  // leaf here.
  hooks.subscribe = [this](std::uint64_t job, std::uint64_t client) {
    LockGuard lock(conns_mu_);
    std::vector<std::uint64_t>& v = subs_[job];
    if (std::find(v.begin(), v.end(), client) == v.end()) {
      v.push_back(client);
    }
  };
  hooks.connection_count = [this]() -> std::uint64_t {
    LockGuard lock(conns_mu_);
    return conns_.size();
  };
  hooks.shutdown = [this]() { request_shutdown(); };
  return hooks;
}

void Server::request_shutdown() {
  stop_.store(true, std::memory_order_release);
  wake(pipe_write_fd_);
}

void Server::on_event(std::uint64_t job, const json::Value& ev) {
  // Runs on a scheduler step thread with Scheduler::mu_ held (lock
  // order: mu_ -> conns_mu_). Buffer only; the poll loop writes.
  const std::string payload = ev.dump();
  LockGuard lock(conns_mu_);
  auto it = subs_.find(job);
  if (it == subs_.end()) return;
  bool queued = false;
  for (std::uint64_t cid : it->second) {
    auto cit = conns_.find(cid);
    if (cit == conns_.end() || cit->second->dead) continue;
    Conn& conn = *cit->second;
    util::append_frame(conn.out, payload);
    if (conn.buffered_bytes() > opts_.max_outbuf_bytes) conn.dead = true;
    queued = true;
  }
  if (queued) wake(pipe_write_fd_);
}

void Server::run() {
  listen_ = listen_unix(opts_.socket_path);
  set_nonblocking(listen_.get());

  while (!stop_.load(std::memory_order_acquire)) {
    std::vector<PollItem> items(2);
    items[0].fd = listen_.get();
    items[1].fd = pipe_.read_end.get();
    std::vector<std::uint64_t> ids;
    {
      LockGuard lock(conns_mu_);
      ids.reserve(conns_.size());
      for (const auto& [id, conn] : conns_) {
        if (conn->dead) continue;
        PollItem item;
        item.fd = conn->fd.get();
        item.want_write = !conn->out.empty();
        items.push_back(item);
        ids.push_back(id);
      }
    }
    poll_items(items, 500);

    if (items[1].readable) {
      char buf[64];
      while (read_some(pipe_.read_end.get(), buf, sizeof(buf)) > 0) {
      }
    }
    if (stop_.load(std::memory_order_acquire)) break;

    if (items[0].readable) accept_new();

    for (std::size_t i = 0; i < ids.size(); ++i) {
      const PollItem& item = items[2 + i];
      Conn* conn = nullptr;
      {
        LockGuard lock(conns_mu_);
        auto it = conns_.find(ids[i]);
        if (it == conns_.end()) continue;
        conn = it->second.get();
      }
      // Safe unlocked: only this (poll) thread erases connections, and
      // step threads touch nothing but `out` (under conns_mu_).
      if (item.error) {
        conn->dead = true;
        continue;
      }
      if (item.readable) handle_readable(*conn);
      if (item.writable && !conn->dead) flush_conn(*conn);
    }

    std::vector<std::uint64_t> dead;
    {
      LockGuard lock(conns_mu_);
      for (const auto& [id, conn] : conns_) {
        if (conn->dead) dead.push_back(id);
      }
    }
    for (std::uint64_t id : dead) close_conn(id);
  }

  // Graceful shutdown: checkpoint-on-drain every live job, then give
  // subscribers a short window to receive the final drained/state
  // events before the sockets close.
  scheduler_.drain();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  for (;;) {
    bool pending = false;
    {
      LockGuard lock(conns_mu_);
      for (const auto& [id, conn] : conns_) {
        if (conn->dead) continue;
        pending = pending || !conn->out.empty();
      }
    }
    if (!pending || std::chrono::steady_clock::now() > deadline) break;
    std::vector<std::uint64_t> ids;
    {
      LockGuard lock(conns_mu_);
      for (const auto& [id, conn] : conns_) ids.push_back(id);
    }
    for (std::uint64_t id : ids) {
      Conn* conn = nullptr;
      {
        LockGuard lock(conns_mu_);
        auto it = conns_.find(id);
        if (it == conns_.end()) continue;
        conn = it->second.get();
      }
      if (!conn->dead) flush_conn(*conn);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  {
    LockGuard lock(conns_mu_);
    conns_.clear();
    subs_.clear();
  }
  listen_.reset();
  std::error_code ec;
  std::filesystem::remove(opts_.socket_path, ec);
}

void Server::accept_new() {
  for (;;) {
    Fd fd = accept_conn(listen_.get());
    if (!fd.valid()) return;
    set_nonblocking(fd.get());
    auto conn = std::make_unique<Conn>(opts_.max_frame_bytes);
    conn->fd = std::move(fd);
    LockGuard lock(conns_mu_);
    conn->id = next_conn_id_++;
    conns_[conn->id] = std::move(conn);
  }
}

void Server::handle_readable(Conn& conn) {
  char buf[4096];
  for (;;) {
    std::ptrdiff_t n = 0;
    try {
      n = read_some(conn.fd.get(), buf, sizeof(buf));
    } catch (const std::exception&) {
      conn.dead = true;  // ECONNRESET and friends
      return;
    }
    if (n < 0) break;  // EAGAIN: drained the socket
    if (n == 0) {      // EOF — torn trailing frame dies with the conn
      conn.dead = true;
      return;
    }
    try {
      conn.parser.feed(buf, static_cast<std::size_t>(n));
      std::string payload;
      while (conn.parser.next(&payload)) handle_frame(conn, payload);
    } catch (const std::exception&) {
      conn.dead = true;  // oversized frame: protocol violation
      return;
    }
  }
}

void Server::handle_frame(Conn& conn, const std::string& payload) {
  // All protocol semantics live in request_handler.cpp — the same code
  // path the fuzz_protocol harness drives.
  send_json(conn, handle_frame_payload(scheduler_, conn.id, payload, hooks_));
}

void Server::send_json(Conn& conn, const json::Value& v) {
  const std::string payload = v.dump();
  {
    LockGuard lock(conns_mu_);
    util::append_frame(conn.out, payload);
    if (conn.buffered_bytes() > opts_.max_outbuf_bytes) {
      conn.dead = true;
      return;
    }
  }
  flush_conn(conn);
}

void Server::flush_conn(Conn& conn) {
  LockGuard lock(conns_mu_);
  while (!conn.out.empty()) {
    std::ptrdiff_t n = 0;
    try {
      n = write_some(conn.fd.get(), conn.out.data(), conn.out.size());
    } catch (const std::exception&) {
      conn.dead = true;  // EPIPE: peer went away
      return;
    }
    if (n < 0) return;  // EAGAIN: poll will retry when writable
    conn.out.erase(conn.out.begin(), conn.out.begin() + n);
  }
}

void Server::close_conn(std::uint64_t conn_id) {
  LockGuard lock(conns_mu_);
  for (auto it = subs_.begin(); it != subs_.end();) {
    std::vector<std::uint64_t>& v = it->second;
    v.erase(std::remove(v.begin(), v.end(), conn_id), v.end());
    it = v.empty() ? subs_.erase(it) : std::next(it);
  }
  conns_.erase(conn_id);
}

}  // namespace rlmul::serve
