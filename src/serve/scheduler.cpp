#include "serve/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "search/checkpoint.hpp"
#include "search/registry.hpp"

namespace rlmul::serve {

namespace fs = std::filesystem;

using util::LockGuard;
using util::UniqueLock;

Scheduler::Scheduler(SchedulerOptions opts, EventSink sink)
    : opts_(std::move(opts)), sink_(std::move(sink)) {
  if (opts_.max_active < 1) opts_.max_active = 1;
  if (opts_.max_queue < 0) opts_.max_queue = 0;
  if (opts_.step_threads < 1) opts_.step_threads = 1;
  if (!opts_.dsdb_dir.empty()) {
    store_ = std::make_unique<dsdb::Store>(opts_.dsdb_dir);
  }
  synth::EvaluatorPool::CacheFactory factory;
  if (store_) {
    factory = [this](const ppg::MultiplierSpec& spec,
                     const std::vector<double>& targets) {
      return store_->make_binding(spec, targets);
    };
  }
  epool_ = std::make_unique<synth::EvaluatorPool>(synth::EvaluatorOptions{},
                                                  std::move(factory));
  if (!opts_.state_dir.empty()) fs::create_directories(opts_.state_dir);
  // Last: workers reference everything above.
  pool_ = std::make_unique<util::ThreadPool>(opts_.step_threads);
}

Scheduler::~Scheduler() {
  {
    LockGuard lock(mu_);
    shutdown_ = true;
  }
  // ThreadPool's destructor drains its queue: every already-enqueued
  // start/step task still runs, sees shutdown_, and returns without
  // touching job state. Members below pool_ outlive the workers.
  pool_.reset();
}

bool Scheduler::submit(const JobSpec& spec, std::uint64_t client_id,
                       std::uint64_t* job_id, std::string* err,
                       const std::function<void(std::uint64_t)>& on_admit) {
  // Validate before taking the lock — resolve_spec throws on bad input.
  if (!search::is_registered(spec.method)) {
    *err = "unknown method: " + spec.method;
    return false;
  }
  try {
    (void)resolve_spec(spec);
  } catch (const std::exception& e) {
    *err = e.what();
    return false;
  }

  LockGuard lock(mu_);
  if (shutdown_ || draining_) {
    *err = "draining: not accepting jobs";
    return false;
  }
  if (opts_.client_budget > 0) {
    if (spec.budget == 0) {
      *err = "budget required: this server enforces per-client EDA budgets";
      return false;
    }
    const std::uint64_t used = client_used_[client_id];
    if (used + spec.budget > opts_.client_budget) {
      *err = "budget exhausted: " + std::to_string(used) + " of " +
             std::to_string(opts_.client_budget) + " already committed";
      return false;
    }
  }
  if (active_n_ >= opts_.max_active &&
      queue_.size() >= static_cast<std::size_t>(opts_.max_queue)) {
    *err = "busy: queue full (" + std::to_string(queue_.size()) +
           " waiting), retry later";
    return false;
  }

  JobPtr job = std::make_shared<Job>();
  job->id = next_id_++;
  job->spec = spec;
  job->client = client_id;
  jobs_[job->id] = job;
  if (opts_.client_budget > 0) client_used_[client_id] += spec.budget;
  queue_.push_back(job->id);
  if (on_admit) on_admit(job->id);
  emit_state_locked(job);
  activate_next_locked();
  *job_id = job->id;
  return true;
}

void Scheduler::activate_next_locked() {
  while (active_n_ < opts_.max_active && !queue_.empty() && !draining_ &&
         !shutdown_) {
    const std::uint64_t id = queue_.front();
    queue_.pop_front();
    auto it = jobs_.find(id);
    if (it == jobs_.end()) continue;
    JobPtr job = it->second;
    if (job->state != JobState::kQueued) continue;  // cancelled while queued
    job->starting = true;
    ++active_n_;
    pool_->submit([this, job]() { start_task(job); });
  }
}

void Scheduler::start_task(JobPtr job) {
  {
    LockGuard lock(mu_);
    if (shutdown_) return;
    job->starting = false;
    if (job->cancel) {
      finalize_locked(job, JobState::kCancelled);
      --active_n_;
      activate_next_locked();
      return;
    }
    if (draining_) {
      // Never began: park as a spec-only (or prior-checkpoint) job.
      park_locked(job, /*with_checkpoint=*/false);
      --active_n_;
      return;
    }
    job->starting = true;
  }

  // Build the expensive pieces off the lock: the evaluator constructor
  // runs a reference synthesis, and begin_resume replays method state.
  std::shared_ptr<synth::DesignEvaluator> evaluator;
  std::unique_ptr<search::Method> method;
  std::unique_ptr<search::Driver> driver;
  std::string error;
  try {
    const ppg::MultiplierSpec mspec = resolve_spec(job->spec);
    const search::MethodConfig cfg = resolve_config(job->spec);
    evaluator = epool_->acquire(mspec);
    search::DriverOptions dopts;
    dopts.eda_budget = job->spec.budget;
    driver = std::make_unique<search::Driver>(*evaluator, dopts);
    if (job->has_ckpt) {
      const search::Checkpoint ckpt =
          search::Checkpoint::load_file(ckpt_path(job->id));
      method = search::make_method(ckpt.method, cfg);
      driver->begin_resume(*method, ckpt);
    } else {
      method = search::make_method(job->spec.method, cfg);
      driver->begin(*method);
    }
  } catch (const std::exception& e) {
    error = e.what();
  }

  {
    LockGuard lock(mu_);
    if (shutdown_) return;
    job->starting = false;
    if (!error.empty()) {
      job->error = error;
      finalize_locked(job, JobState::kFailed);
      --active_n_;
      activate_next_locked();
      return;
    }
    job->evaluator = std::move(evaluator);
    job->method = std::move(method);
    job->driver = std::move(driver);
    if (job->cancel) {
      finalize_locked(job, JobState::kCancelled);
      --active_n_;
      activate_next_locked();
      return;
    }
    job->state = JobState::kRunning;
    emit_state_locked(job);
    emit_progress_locked(job, /*force=*/true);
    if (draining_) {
      park_locked(job, /*with_checkpoint=*/true);
      --active_n_;
      return;
    }
  }
  pool_->submit([this, job]() { step_task(job); });
}

void Scheduler::step_task(JobPtr job) {
  {
    LockGuard lock(mu_);
    if (shutdown_) return;
    if (job->cancel) {
      finalize_locked(job, JobState::kCancelled);
      --active_n_;
      activate_next_locked();
      return;
    }
    if (draining_) {
      park_locked(job, /*with_checkpoint=*/true);
      --active_n_;
      return;
    }
  }

  // The step itself runs unlocked: this task is the job's only driver
  // user, and long synthesis fan-outs must not stall status/submit.
  bool more = false;
  bool completed = false;
  std::string error;
  try {
    more = job->driver->step_once(*job->method);
    if (!more) {
      const search::RunResult res = job->driver->finish(*job->method);
      completed = res.completed;
    }
  } catch (const std::exception& e) {
    error = e.what();
  }

  {
    LockGuard lock(mu_);
    if (shutdown_) return;
    if (!error.empty()) {
      job->error = error;
      finalize_locked(job, JobState::kFailed);
      --active_n_;
      activate_next_locked();
      return;
    }
    if (!more) {
      job->completed = completed;
      emit_progress_locked(job, /*force=*/true);
      finalize_locked(job, JobState::kDone);
      --active_n_;
      activate_next_locked();
      return;
    }
    emit_progress_locked(job, /*force=*/false);
  }
  // Re-enqueue at the pool's FIFO tail: with K workers and N active
  // jobs this interleaves them round-robin at step granularity.
  pool_->submit([this, job]() { step_task(job); });
}

void Scheduler::finalize_locked(const JobPtr& job, JobState state) {
  job->state = state;
  if (!opts_.state_dir.empty()) unpersist(job->id);
  emit_state_locked(job);
  cv_.notify_all();
}

void Scheduler::park_locked(const JobPtr& job, bool with_checkpoint) {
  if (!opts_.state_dir.empty()) {
    if (with_checkpoint && job->driver && job->method) {
      try {
        const search::Checkpoint ckpt =
            job->driver->make_checkpoint(*job->method);
        ckpt.save_file(ckpt_path(job->id));
        job->has_ckpt = true;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "serve: checkpoint job %llu failed: %s\n",
                     static_cast<unsigned long long>(job->id), e.what());
      }
    }
    try {
      persist_locked(job, job->has_ckpt);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "serve: persist job %llu failed: %s\n",
                   static_cast<unsigned long long>(job->id), e.what());
    }
  }
  job->state = JobState::kDrained;
  emit_state_locked(job);
  cv_.notify_all();
}

void Scheduler::emit_state_locked(const JobPtr& job) {
  if (!sink_) {
    ++job->events;
    return;
  }
  json::Value v = json::Value::object();
  v["event"] = "state";
  v["job"] = job->id;
  v["seq"] = job->events++;
  v["state"] = job_state_name(job->state);
  if (!job->error.empty()) v["error"] = job->error;
  sink_(job->id, v);
}

void Scheduler::emit_progress_locked(const JobPtr& job, bool force) {
  const search::Progress p =
      job->driver ? job->driver->progress() : search::Progress{};
  if (!force && job->emitted_any_progress &&
      !(p.best_cost < job->last_emitted_best)) {
    return;  // only improvements are worth a frame
  }
  job->last_emitted_best = p.best_cost;
  job->emitted_any_progress = true;
  if (!sink_) {
    ++job->events;
    return;
  }
  json::Value v = json::Value::object();
  v["event"] = "progress";
  v["job"] = job->id;
  v["seq"] = job->events++;
  v["best_cost"] = p.best_cost;
  v["steps_done"] = p.steps_done;
  v["eda_consumed"] = p.eda_consumed;
  sink_(job->id, v);
}

bool Scheduler::status(std::uint64_t job_id, JobStatus* out) const {
  LockGuard lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return false;
  *out = status_of_locked(it->second);
  return true;
}

std::vector<JobStatus> Scheduler::list() const {
  LockGuard lock(mu_);
  std::vector<JobStatus> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(status_of_locked(job));
  std::sort(out.begin(), out.end(),
            [](const JobStatus& a, const JobStatus& b) { return a.id < b.id; });
  return out;
}

JobStatus Scheduler::status_of_locked(const JobPtr& job) const {
  JobStatus st;
  st.id = job->id;
  st.state = job->state;
  st.spec = job->spec;
  if (job->driver) st.progress = job->driver->progress();
  st.completed = job->completed;
  st.resumed = job->resumed;
  st.events = job->events;
  st.error = job->error;
  return st;
}

bool Scheduler::cancel(std::uint64_t job_id, std::string* err) {
  LockGuard lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    *err = "unknown job: " + std::to_string(job_id);
    return false;
  }
  JobPtr job = it->second;
  if (job_state_terminal(job->state) || job->state == JobState::kDrained) {
    *err = std::string("job already ") + job_state_name(job->state);
    return false;
  }
  job->cancel = true;
  if (job->state == JobState::kQueued && !job->starting) {
    // Not yet owned by a task: cancel right here.
    queue_.erase(std::remove(queue_.begin(), queue_.end(), job_id),
                 queue_.end());
    finalize_locked(job, JobState::kCancelled);
  }
  return true;
}

Scheduler::Stats Scheduler::stats() const {
  LockGuard lock(mu_);
  Stats s;
  s.jobs = jobs_.size();
  s.active = static_cast<std::size_t>(active_n_);
  s.draining = draining_;
  for (const auto& [id, job] : jobs_) {
    switch (job->state) {
      case JobState::kQueued:
        if (!job->starting) ++s.queued;
        break;
      case JobState::kRunning: break;  // counted by active_n_
      case JobState::kDone: ++s.done; break;
      case JobState::kFailed: ++s.failed; break;
      case JobState::kCancelled: ++s.cancelled; break;
      case JobState::kDrained: ++s.drained; break;
    }
  }
  s.evaluators = epool_->live();
  return s;
}

void Scheduler::drain() {
  UniqueLock lock(mu_);
  if (!draining_) {
    draining_ = true;
    // Jobs still waiting in the queue never started: park them without
    // checkpoints so a restart re-admits them fresh.
    while (!queue_.empty()) {
      const std::uint64_t id = queue_.front();
      queue_.pop_front();
      auto it = jobs_.find(id);
      if (it == jobs_.end()) continue;
      JobPtr job = it->second;
      if (job->state != JobState::kQueued || job->starting) continue;
      park_locked(job, /*with_checkpoint=*/false);
    }
  }
  // Active jobs park themselves at their next step boundary.
  while (active_n_ > 0) cv_.wait(lock);
}

std::size_t Scheduler::resume_persisted() {
  if (opts_.state_dir.empty()) return 0;
  struct Parked {
    std::uint64_t id;
    JobSpec spec;
    bool has_ckpt;
  };
  std::vector<Parked> parked;
  std::error_code ec;
  for (const fs::directory_entry& e :
       fs::directory_iterator(opts_.state_dir, ec)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("job-", 0) != 0 || e.path().extension() != ".json") {
      continue;
    }
    try {
      std::ifstream in(e.path());
      std::stringstream ss;
      ss << in.rdbuf();
      const json::Value v = json::Value::parse(ss.str());
      const json::Value* idf = v.find("id");
      const json::Value* specf = v.find("spec");
      if (!idf || !specf) continue;
      Parked p;
      p.id = idf->as_u64();
      std::string err;
      if (!job_spec_from_json(*specf, &p.spec, &err)) continue;
      p.has_ckpt = fs::exists(ckpt_path(p.id));
      parked.push_back(std::move(p));
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "serve: skipping unreadable state file %s: %s\n",
                   e.path().c_str(), ex.what());
    }
  }
  std::sort(parked.begin(), parked.end(),
            [](const Parked& a, const Parked& b) { return a.id < b.id; });

  LockGuard lock(mu_);
  std::size_t n = 0;
  for (Parked& p : parked) {
    if (jobs_.count(p.id) != 0) continue;
    JobPtr job = std::make_shared<Job>();
    job->id = p.id;
    job->spec = std::move(p.spec);
    job->resumed = true;
    job->has_ckpt = p.has_ckpt;
    jobs_[job->id] = job;
    queue_.push_back(job->id);
    next_id_ = std::max(next_id_, job->id + 1);
    emit_state_locked(job);
    ++n;
  }
  activate_next_locked();
  return n;
}

bool Scheduler::wait(std::uint64_t job_id, int timeout_ms) const {
  UniqueLock lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return false;
  JobPtr job = it->second;
  return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&job] {
    return job_state_terminal(job->state) || job->state == JobState::kDrained;
  });
}

std::uint64_t Scheduler::client_budget_used(std::uint64_t client_id) const {
  LockGuard lock(mu_);
  auto it = client_used_.find(client_id);
  return it == client_used_.end() ? 0 : it->second;
}

std::string Scheduler::json_path(std::uint64_t id) const {
  return opts_.state_dir + "/job-" + std::to_string(id) + ".json";
}

std::string Scheduler::ckpt_path(std::uint64_t id) const {
  return opts_.state_dir + "/job-" + std::to_string(id) + ".ckpt";
}

void Scheduler::persist_locked(const JobPtr& job, bool has_ckpt) {
  json::Value v = json::Value::object();
  v["id"] = job->id;
  v["spec"] = to_json(job->spec);
  v["has_ckpt"] = has_ckpt;
  v["resumed"] = job->resumed;
  const std::string path = json_path(job->id);
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << v.dump() << "\n";
}

void Scheduler::unpersist(std::uint64_t id) const {
  std::error_code ec;
  fs::remove(json_path(id), ec);
  fs::remove(ckpt_path(id), ec);
}

}  // namespace rlmul::serve
