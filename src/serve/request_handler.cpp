#include "serve/request_handler.hpp"

#include <exception>

#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"

namespace rlmul::serve {

json::Value handle_request(Scheduler& sched, std::uint64_t client_id,
                           const json::Value& req, const RequestHooks& hooks) {
  json::Value resp = json::Value::object();
  const json::Value* opf = req.find("op");
  if (!opf || !opf->is_string()) {
    resp["ok"] = false;
    resp["error"] = "missing op";
    return resp;
  }
  const std::string& op = opf->as_string();

  if (op == "ping") {
    resp["ok"] = true;
    resp["pong"] = true;
    return resp;
  }

  if (op == "stats" || (op == "status" && !req.find("job"))) {
    const Scheduler::Stats s = sched.stats();
    resp["ok"] = true;
    resp["jobs"] = static_cast<std::uint64_t>(s.jobs);
    resp["active"] = static_cast<std::uint64_t>(s.active);
    resp["queued"] = static_cast<std::uint64_t>(s.queued);
    resp["done"] = static_cast<std::uint64_t>(s.done);
    resp["failed"] = static_cast<std::uint64_t>(s.failed);
    resp["cancelled"] = static_cast<std::uint64_t>(s.cancelled);
    resp["drained"] = static_cast<std::uint64_t>(s.drained);
    resp["evaluators"] = static_cast<std::uint64_t>(s.evaluators);
    resp["draining"] = s.draining;
    if (hooks.connection_count) resp["conns"] = hooks.connection_count();
    return resp;
  }

  if (op == "submit") {
    JobSpec spec;
    std::string err;
    if (const json::Value* specf = req.find("spec")) {
      if (!job_spec_from_json(*specf, &spec, &err)) {
        resp["ok"] = false;
        resp["error"] = err;
        return resp;
      }
    }
    const bool subscribe =
        req.find("subscribe") && req.find("subscribe")->as_bool();
    std::uint64_t job_id = 0;
    std::function<void(std::uint64_t)> on_admit;
    if (subscribe && hooks.subscribe) {
      // Runs under the scheduler lock before the job's first event, so
      // the subscriber sees the stream from seq 0.
      const auto install = hooks.subscribe;
      on_admit = [install, client_id](std::uint64_t j) {
        install(j, client_id);
      };
    }
    const bool ok = sched.submit(spec, client_id, &job_id, &err, on_admit);
    resp["ok"] = ok;
    if (ok) {
      resp["job"] = job_id;
    } else {
      resp["error"] = err;
    }
    return resp;
  }

  const json::Value* jobf = req.find("job");
  const std::uint64_t job_id = jobf ? jobf->as_u64() : 0;

  if (op == "status") {
    JobStatus st;
    if (!sched.status(job_id, &st)) {
      resp["ok"] = false;
      resp["error"] = "unknown job: " + std::to_string(job_id);
      return resp;
    }
    resp = to_json(st);
    resp["ok"] = true;
    return resp;
  }

  if (op == "list") {
    json::Value jobs = json::Value::array();
    for (const JobStatus& st : sched.list()) jobs.push_back(to_json(st));
    resp["ok"] = true;
    resp["jobs"] = std::move(jobs);
    return resp;
  }

  if (op == "events") {
    JobStatus st;
    if (!sched.status(job_id, &st)) {
      resp["ok"] = false;
      resp["error"] = "unknown job: " + std::to_string(job_id);
      return resp;
    }
    if (hooks.subscribe) hooks.subscribe(job_id, client_id);
    // The subscription starts mid-stream; `from_seq` tells the client
    // which seq its first live event will carry.
    resp["ok"] = true;
    resp["from_seq"] = st.events;
    return resp;
  }

  if (op == "cancel") {
    std::string err;
    const bool ok = sched.cancel(job_id, &err);
    resp["ok"] = ok;
    if (!ok) resp["error"] = err;
    return resp;
  }

  if (op == "shutdown") {
    resp["ok"] = true;
    // The transport buffers the response before it notices the stop
    // flag, and the post-drain flush window delivers it.
    if (hooks.shutdown) hooks.shutdown();
    return resp;
  }

  resp["ok"] = false;
  resp["error"] = "unknown op: " + op;
  return resp;
}

json::Value handle_frame_payload(Scheduler& sched, std::uint64_t client_id,
                                 const std::string& payload,
                                 const RequestHooks& hooks) {
  json::Value req;
  try {
    req = json::Value::parse(payload);
  } catch (const std::exception& e) {
    // Correctly framed garbage: reject the request, keep the conn.
    json::Value resp = json::Value::object();
    resp["ok"] = false;
    resp["error"] = std::string("bad json: ") + e.what();
    return resp;
  }
  json::Value resp;
  try {
    resp = handle_request(sched, client_id, req, hooks);
  } catch (const std::exception& e) {
    resp = json::Value::object();
    resp["ok"] = false;
    resp["error"] = e.what();
  }
  if (const json::Value* id = req.find("id")) resp["id"] = *id;
  return resp;
}

}  // namespace rlmul::serve
