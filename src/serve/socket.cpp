#include "serve/socket.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace rlmul::serve {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) {
    int rc;
    do {
      rc = ::close(fd_);
    } while (rc < 0 && errno == EINTR);
    fd_ = -1;
  }
}

Fd listen_unix(const std::string& path) {
  Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw_errno("socket");
  // A previous daemon's stale path would make bind fail; removing it
  // is safe because a *live* daemon still holds its listening fd (we
  // would steal its clients, but starting two daemons on one path is
  // operator error either way).
  ::unlink(path.c_str());
  sockaddr_un addr = make_addr(path);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    throw_errno("bind " + path);
  }
  if (::listen(fd.get(), 64) < 0) throw_errno("listen " + path);
  return fd;
}

Fd connect_unix(const std::string& path) {
  Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw_errno("socket");
  sockaddr_un addr = make_addr(path);
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) throw_errno("connect " + path);
  return fd;
}

Fd accept_conn(int listen_fd) {
  int rc;
  do {
    rc = ::accept(listen_fd, nullptr, nullptr);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Fd();
    throw_errno("accept");
  }
  return Fd(rc);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl O_NONBLOCK");
  }
}

Pipe make_pipe() {
  int fds[2];
  if (::pipe(fds) < 0) throw_errno("pipe");
  Pipe p;
  p.read_end = Fd(fds[0]);
  p.write_end = Fd(fds[1]);
  set_nonblocking(p.read_end.get());
  set_nonblocking(p.write_end.get());
  return p;
}

void wake(int write_fd) {
  const char b = 'w';
  // Async-signal-safe: write(2) only; a full pipe (EAGAIN) means the
  // reader has a wakeup pending already.
  [[maybe_unused]] ssize_t rc = ::write(write_fd, &b, 1);
}

int poll_items(std::vector<PollItem>& items, int timeout_ms) {
  std::vector<pollfd> pfds;
  pfds.reserve(items.size());
  for (const PollItem& it : items) {
    pollfd p{};
    p.fd = it.fd;
    p.events = POLLIN;
    if (it.want_write) p.events |= POLLOUT;
    pfds.push_back(p);
  }
  int rc;
  do {
    rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) throw_errno("poll");
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i].readable = (pfds[i].revents & POLLIN) != 0;
    items[i].writable = (pfds[i].revents & POLLOUT) != 0;
    items[i].error = (pfds[i].revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
  }
  return rc;
}

std::ptrdiff_t read_some(int fd, void* buf, std::size_t n) {
  ssize_t rc;
  do {
    rc = ::read(fd, buf, n);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    throw_errno("read");
  }
  return rc;
}

std::ptrdiff_t write_some(int fd, const void* buf, std::size_t n) {
  ssize_t rc;
  do {
    rc = ::send(fd, buf, n, MSG_NOSIGNAL);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    throw_errno("write");
  }
  return rc;
}

void write_all(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    const std::ptrdiff_t rc = write_some(fd, p, n);
    if (rc < 0) {
      // Blocking fd: EAGAIN cannot happen; treat as transient.
      continue;
    }
    if (rc == 0) throw std::runtime_error("write: connection closed");
    p += rc;
    n -= static_cast<std::size_t>(rc);
  }
}

}  // namespace rlmul::serve
