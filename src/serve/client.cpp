#include "serve/client.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

namespace rlmul::serve {

Client::Client(const std::string& socket_path)
    : fd_(connect_unix(socket_path)) {}

bool Client::read_chunk(int timeout_ms) {
  if (timeout_ms >= 0) {
    std::vector<PollItem> items(1);
    items[0].fd = fd_.get();
    poll_items(items, timeout_ms);
    if (!items[0].readable && !items[0].error) return false;
  }
  char buf[4096];
  const std::ptrdiff_t n = read_some(fd_.get(), buf, sizeof(buf));
  if (n == 0) throw std::runtime_error("serve: server closed connection");
  if (n > 0) parser_.feed(buf, static_cast<std::size_t>(n));
  return true;
}

json::Value Client::call(json::Value req) {
  const std::uint64_t id = next_id_++;
  req["id"] = id;
  const std::string payload = req.dump();
  std::vector<std::uint8_t> frame;
  util::append_frame(frame, payload);
  write_all(fd_.get(), frame.data(), frame.size());

  for (;;) {
    std::string doc;
    while (parser_.next(&doc)) {
      json::Value v = json::Value::parse(doc);
      if (v.find("event")) {
        events_.push_back(std::move(v));
        continue;
      }
      const json::Value* idf = v.find("id");
      if (idf && idf->as_u64() == id) return v;
      // A response for someone else's id: single-threaded clients
      // never see this; drop it rather than deadlock.
    }
    read_chunk(-1);
  }
}

bool Client::poll_event(json::Value* ev) {
  if (events_.empty()) {
    // Opportunistically drain whatever the socket already has.
    std::string doc;
    while (read_chunk(0)) {
    }
    while (parser_.next(&doc)) {
      json::Value v = json::Value::parse(doc);
      if (v.find("event")) events_.push_back(std::move(v));
    }
  }
  if (events_.empty()) return false;
  *ev = std::move(events_.front());
  events_.pop_front();
  return true;
}

bool Client::wait_event(json::Value* ev, int timeout_ms) {
  if (poll_event(ev)) return true;
  const int slice = 50;
  int waited = 0;
  while (waited < timeout_ms) {
    const int step = std::min(slice, timeout_ms - waited);
    read_chunk(step);
    waited += step;
    if (poll_event(ev)) return true;
  }
  return false;
}

json::Value Client::check(json::Value resp, const char* what) {
  if (!resp.find("ok") || !resp.find("ok")->as_bool()) {
    const json::Value* err = resp.find("error");
    throw std::runtime_error(std::string(what) + " failed: " +
                             (err ? err->as_string() : "unknown error"));
  }
  return resp;
}

void Client::ping() {
  json::Value req = json::Value::object();
  req["op"] = "ping";
  check(call(std::move(req)), "ping");
}

std::uint64_t Client::submit(const JobSpec& spec, bool subscribe) {
  json::Value req = json::Value::object();
  req["op"] = "submit";
  req["spec"] = to_json(spec);
  if (subscribe) req["subscribe"] = true;
  const json::Value resp = check(call(std::move(req)), "submit");
  return resp.find("job")->as_u64();
}

json::Value Client::status(std::uint64_t job) {
  json::Value req = json::Value::object();
  req["op"] = "status";
  req["job"] = job;
  return check(call(std::move(req)), "status");
}

json::Value Client::list() {
  json::Value req = json::Value::object();
  req["op"] = "list";
  return check(call(std::move(req)), "list");
}

json::Value Client::stats() {
  json::Value req = json::Value::object();
  req["op"] = "stats";
  return check(call(std::move(req)), "stats");
}

std::uint64_t Client::subscribe(std::uint64_t job) {
  json::Value req = json::Value::object();
  req["op"] = "events";
  req["job"] = job;
  const json::Value resp = check(call(std::move(req)), "events");
  const json::Value* f = resp.find("from_seq");
  return f ? f->as_u64() : 0;
}

void Client::cancel(std::uint64_t job) {
  json::Value req = json::Value::object();
  req["op"] = "cancel";
  req["job"] = job;
  check(call(std::move(req)), "cancel");
}

void Client::shutdown_server() {
  json::Value req = json::Value::object();
  req["op"] = "shutdown";
  check(call(std::move(req)), "shutdown");
}

}  // namespace rlmul::serve
