#pragma once
// The serve scheduler: multiplexes many simultaneous search::Driver
// runs onto one process — a private step pool (fair FIFO re-enqueue =
// round-robin across active jobs at step granularity), one shared
// dsdb::Store, and a synth::EvaluatorPool so jobs with the same
// (spec, targets) contract share an evaluator and its caches.
//
// Admission control: at most max_active jobs step concurrently; up to
// max_queue more wait in FIFO order; past that submit() rejects
// ("busy" — the protocol's backpressure signal). With client_budget
// set, every job must carry a budget and the per-client sum is capped.
//
// Checkpoint-on-drain: drain() parks every job at its next step
// boundary through the bit-exact search::checkpoint layer (running
// jobs write state_dir/job-<id>.ckpt; queued jobs persist their spec
// only) and blocks until the scheduler is idle. resume_persisted() on
// the next start re-admits them: checkpointed jobs continue their
// exact remaining trajectory, queued ones start fresh.
//
// Lock order: Scheduler::mu_ -> (event sink's own locks, i.e.
// Server::conns_mu_) -> nothing. The sink is invoked with mu_ held so
// per-job event sequence numbers leave in order; sinks must not call
// back into the scheduler.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dsdb/store.hpp"
#include "search/driver.hpp"
#include "search/method.hpp"
#include "serve/protocol.hpp"
#include "synth/evaluator_pool.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace rlmul::serve {

struct SchedulerOptions {
  int max_active = 2;   ///< jobs stepping concurrently
  int max_queue = 16;   ///< admitted-but-waiting jobs; full = backpressure
  int step_threads = 2; ///< private pool driving the active jobs
  /// Per-client cap on the sum of submitted job budgets (unique
  /// synthesis evaluations). 0 = unenforced. When set, unbudgeted
  /// jobs are rejected — the server cannot meter what a job does not
  /// declare.
  std::uint64_t client_budget = 0;
  /// Directory for checkpoint-on-drain persistence; empty = drain
  /// discards queued/running jobs (they just stop).
  std::string state_dir;
  /// Shared design-space database; empty = in-memory caches only.
  std::string dsdb_dir;
};

class Scheduler {
 public:
  /// `sink` receives every event frame (called with the scheduler
  /// lock held — see the lock-order note above).
  using EventSink =
      std::function<void(std::uint64_t job, const json::Value& event)>;

  Scheduler(SchedulerOptions opts, EventSink sink);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admits a job. False (with *err) on backpressure, budget
  /// exhaustion, a draining scheduler, or an invalid spec. `on_admit`
  /// (optional) runs under the scheduler lock with the new job id
  /// BEFORE the first event is emitted — the server uses it to install
  /// a connection's subscription atomically, so subscribe-on-submit
  /// clients see the event stream from seq 0 with no race.
  bool submit(const JobSpec& spec, std::uint64_t client_id,
              std::uint64_t* job_id, std::string* err,
              const std::function<void(std::uint64_t)>& on_admit = nullptr);

  bool status(std::uint64_t job_id, JobStatus* out) const;
  std::vector<JobStatus> list() const;

  /// Requests cancellation; takes effect at the job's next step
  /// boundary (immediately for queued jobs). False for unknown ids or
  /// jobs already terminal.
  bool cancel(std::uint64_t job_id, std::string* err);

  struct Stats {
    std::size_t jobs = 0;
    std::size_t active = 0;
    std::size_t queued = 0;
    std::size_t done = 0;
    std::size_t failed = 0;
    std::size_t cancelled = 0;
    std::size_t drained = 0;
    std::size_t evaluators = 0;  ///< live shared evaluators
    bool draining = false;
  };
  Stats stats() const;

  /// Re-admits jobs persisted by a previous drain; returns how many.
  std::size_t resume_persisted();

  /// Blocks until every job is parked (terminal or drained). After
  /// this, submit() rejects.
  void drain();

  /// Test/bench helper: waits until `job_id` leaves the live states.
  /// False on timeout or unknown id.
  bool wait(std::uint64_t job_id, int timeout_ms = 60000) const;

  std::uint64_t client_budget_used(std::uint64_t client_id) const;
  const SchedulerOptions& options() const { return opts_; }
  dsdb::Store* store() { return store_.get(); }

 private:
  struct Job {
    std::uint64_t id = 0;
    JobSpec spec;
    JobState state = JobState::kQueued;
    bool starting = false;  ///< an activation task owns it
    bool cancel = false;
    bool resumed = false;
    bool has_ckpt = false;
    bool completed = false;
    std::uint64_t client = 0;
    std::uint64_t events = 0;
    double last_emitted_best = 0.0;
    bool emitted_any_progress = false;
    std::string error;
    // Built by the activation task (assigned under mu_, then used
    // exclusively by the job's single step task).
    std::shared_ptr<synth::DesignEvaluator> evaluator;
    std::unique_ptr<search::Method> method;
    std::unique_ptr<search::Driver> driver;
  };
  using JobPtr = std::shared_ptr<Job>;

  void activate_next_locked() RLMUL_REQUIRES(mu_);
  void start_task(JobPtr job);
  void step_task(JobPtr job);
  void finalize_locked(const JobPtr& job, JobState state) RLMUL_REQUIRES(mu_);
  void park_locked(const JobPtr& job, bool with_checkpoint)
      RLMUL_REQUIRES(mu_);
  void emit_state_locked(const JobPtr& job) RLMUL_REQUIRES(mu_);
  void emit_progress_locked(const JobPtr& job, bool force)
      RLMUL_REQUIRES(mu_);
  JobStatus status_of_locked(const JobPtr& job) const RLMUL_REQUIRES(mu_);
  std::string json_path(std::uint64_t id) const;
  std::string ckpt_path(std::uint64_t id) const;
  void persist_locked(const JobPtr& job, bool has_ckpt) RLMUL_REQUIRES(mu_);
  void unpersist(std::uint64_t id) const;

  SchedulerOptions opts_;
  EventSink sink_;
  std::unique_ptr<dsdb::Store> store_;  ///< ctor-set, internally locked
  std::unique_ptr<synth::EvaluatorPool> epool_;  ///< internally locked

  mutable util::Mutex mu_;
  mutable util::CondVar cv_;  ///< drain/wait wakeups; pairs mu_
  std::unordered_map<std::uint64_t, JobPtr> jobs_ RLMUL_GUARDED_BY(mu_);
  std::deque<std::uint64_t> queue_ RLMUL_GUARDED_BY(mu_);
  int active_n_ RLMUL_GUARDED_BY(mu_) = 0;
  bool draining_ RLMUL_GUARDED_BY(mu_) = false;
  bool shutdown_ RLMUL_GUARDED_BY(mu_) = false;
  std::uint64_t next_id_ RLMUL_GUARDED_BY(mu_) = 1;
  std::unordered_map<std::uint64_t, std::uint64_t> client_used_
      RLMUL_GUARDED_BY(mu_);

  /// Constructed last: its workers touch every member above.
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace rlmul::serve
