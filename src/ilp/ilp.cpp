#include "ilp/ilp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace rlmul::ilp {

namespace {

constexpr double kEps = 1e-9;

/// Dense simplex tableau. Rows: one per constraint plus the objective
/// row at the end. Columns: structural + slack/surplus + artificial +
/// RHS.
class Tableau {
 public:
  Tableau(const LinearProgram& lp) {
    n_ = lp.num_vars;
    m_ = static_cast<int>(lp.constraints.size());

    // Count extra columns.
    int slacks = 0;
    int artificials = 0;
    for (const auto& c : lp.constraints) {
      const bool flip = c.rhs < 0.0;
      const Relation rel = flip ? flipped(c.rel) : c.rel;
      if (rel != Relation::kEqual) ++slacks;
      if (rel != Relation::kLessEqual) ++artificials;
    }
    cols_ = n_ + slacks + artificials + 1;  // +1 for RHS
    art_begin_ = n_ + slacks;
    a_.assign(static_cast<std::size_t>(m_ + 1) *
                  static_cast<std::size_t>(cols_),
              0.0);
    basis_.assign(static_cast<std::size_t>(m_), -1);

    int next_slack = n_;
    int next_art = art_begin_;
    for (int r = 0; r < m_; ++r) {
      const auto& c = lp.constraints[static_cast<std::size_t>(r)];
      const bool flip = c.rhs < 0.0;
      const double sign = flip ? -1.0 : 1.0;
      const Relation rel = flip ? flipped(c.rel) : c.rel;
      for (int j = 0; j < n_; ++j) {
        at(r, j) = sign * c.coeffs[static_cast<std::size_t>(j)];
      }
      rhs(r) = sign * c.rhs;
      switch (rel) {
        case Relation::kLessEqual:
          at(r, next_slack) = 1.0;
          basis_[static_cast<std::size_t>(r)] = next_slack++;
          break;
        case Relation::kGreaterEqual:
          at(r, next_slack++) = -1.0;
          at(r, next_art) = 1.0;
          basis_[static_cast<std::size_t>(r)] = next_art++;
          break;
        case Relation::kEqual:
          at(r, next_art) = 1.0;
          basis_[static_cast<std::size_t>(r)] = next_art++;
          break;
      }
    }
  }

  /// Phase 1: drive artificials out. Returns false when infeasible.
  bool phase1(int max_iters) {
    if (art_begin_ == cols_ - 1) return true;  // no artificials
    // Objective: minimize sum of artificial variables.
    for (int j = 0; j < cols_; ++j) obj(j) = 0.0;
    for (int j = art_begin_; j < cols_ - 1; ++j) obj(j) = 1.0;
    price_out();
    if (!iterate(max_iters, art_begin_)) return false;
    if (obj_value() > 1e-7) return false;  // artificials stuck > 0
    // Pivot any artificial still (degenerately) basic out of the basis.
    for (int r = 0; r < m_; ++r) {
      if (basis_[static_cast<std::size_t>(r)] >= art_begin_) {
        int enter = -1;
        for (int j = 0; j < art_begin_; ++j) {
          if (std::abs(at(r, j)) > kEps) {
            enter = j;
            break;
          }
        }
        if (enter >= 0) pivot(r, enter);
        // else: redundant row; harmless.
      }
    }
    return true;
  }

  enum class P2 { kOptimal, kUnbounded, kIterLimit };

  P2 phase2(const std::vector<double>& objective, int max_iters) {
    for (int j = 0; j < cols_; ++j) obj(j) = 0.0;
    for (int j = 0; j < n_; ++j) {
      obj(j) = objective[static_cast<std::size_t>(j)];
    }
    price_out();
    // Artificial columns are forbidden in phase 2.
    if (!iterate(max_iters, art_begin_, &unbounded_)) {
      return unbounded_ ? P2::kUnbounded : P2::kIterLimit;
    }
    return P2::kOptimal;
  }

  double obj_value() const { return -at_c(m_, cols_ - 1); }

  std::vector<double> extract(int n) const {
    std::vector<double> x(static_cast<std::size_t>(n), 0.0);
    for (int r = 0; r < m_; ++r) {
      const int b = basis_[static_cast<std::size_t>(r)];
      if (b >= 0 && b < n) {
        x[static_cast<std::size_t>(b)] = at_c(r, cols_ - 1);
      }
    }
    return x;
  }

 private:
  static Relation flipped(Relation r) {
    switch (r) {
      case Relation::kLessEqual: return Relation::kGreaterEqual;
      case Relation::kGreaterEqual: return Relation::kLessEqual;
      case Relation::kEqual: return Relation::kEqual;
    }
    return r;
  }

  double& at(int r, int c) {
    return a_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
              static_cast<std::size_t>(c)];
  }
  double at_c(int r, int c) const {
    return a_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
              static_cast<std::size_t>(c)];
  }
  double& rhs(int r) { return at(r, cols_ - 1); }
  double& obj(int c) { return at(m_, c); }

  /// Makes the objective row consistent with the current basis (zero
  /// reduced cost on basic columns).
  void price_out() {
    for (int r = 0; r < m_; ++r) {
      const int b = basis_[static_cast<std::size_t>(r)];
      const double coef = at(m_, b);
      if (std::abs(coef) > kEps) {
        for (int j = 0; j < cols_; ++j) at(m_, j) -= coef * at(r, j);
      }
    }
  }

  void pivot(int row, int col) {
    const double p = at(row, col);
    for (int j = 0; j < cols_; ++j) at(row, j) /= p;
    for (int r = 0; r <= m_; ++r) {
      if (r == row) continue;
      const double f = at(r, col);
      if (std::abs(f) > kEps) {
        for (int j = 0; j < cols_; ++j) at(r, j) -= f * at(row, j);
      }
    }
    basis_[static_cast<std::size_t>(row)] = col;
  }

  /// Simplex iterations with Bland's rule. Columns >= col_limit are
  /// excluded from entering. Returns false on unboundedness/iteration
  /// limit (sets *unbounded accordingly when provided).
  bool iterate(int max_iters, int col_limit, bool* unbounded = nullptr) {
    for (int it = 0; it < max_iters; ++it) {
      int enter = -1;
      for (int j = 0; j < col_limit; ++j) {  // Bland: smallest index
        if (at(m_, j) < -kEps) {
          enter = j;
          break;
        }
      }
      if (enter < 0) return true;  // optimal
      int leave = -1;
      double best = std::numeric_limits<double>::infinity();
      for (int r = 0; r < m_; ++r) {
        if (at(r, enter) > kEps) {
          const double ratio = at(r, cols_ - 1) / at(r, enter);
          if (ratio < best - kEps ||
              (ratio < best + kEps &&
               (leave < 0 || basis_[static_cast<std::size_t>(r)] <
                                 basis_[static_cast<std::size_t>(leave)]))) {
            best = ratio;
            leave = r;
          }
        }
      }
      if (leave < 0) {
        if (unbounded != nullptr) *unbounded = true;
        return false;
      }
      pivot(leave, enter);
    }
    return false;  // iteration limit
  }

  int n_ = 0;
  int m_ = 0;
  int cols_ = 0;
  int art_begin_ = 0;
  std::vector<double> a_;
  std::vector<int> basis_;
  bool unbounded_ = false;
};

}  // namespace

Solution solve_lp(const LinearProgram& lp, int max_iters) {
  if (static_cast<int>(lp.objective.size()) != lp.num_vars) {
    throw std::invalid_argument("solve_lp: objective size mismatch");
  }
  for (const auto& c : lp.constraints) {
    if (static_cast<int>(c.coeffs.size()) != lp.num_vars) {
      throw std::invalid_argument("solve_lp: constraint size mismatch");
    }
  }
  Tableau t(lp);
  Solution sol;
  if (!t.phase1(max_iters)) {
    sol.status = Status::kInfeasible;
    return sol;
  }
  switch (t.phase2(lp.objective, max_iters)) {
    case Tableau::P2::kOptimal: sol.status = Status::kOptimal; break;
    case Tableau::P2::kUnbounded: sol.status = Status::kUnbounded; return sol;
    case Tableau::P2::kIterLimit: sol.status = Status::kIterLimit; return sol;
  }
  sol.x = t.extract(lp.num_vars);
  sol.objective = 0.0;
  for (int j = 0; j < lp.num_vars; ++j) {
    sol.objective += lp.objective[static_cast<std::size_t>(j)] *
                     sol.x[static_cast<std::size_t>(j)];
  }
  return sol;
}

Solution solve_milp(const LinearProgram& lp,
                    const std::vector<bool>& is_integer,
                    const MilpOptions& opts) {
  Solution best;
  best.status = Status::kInfeasible;
  double incumbent = std::numeric_limits<double>::infinity();
  int nodes = 0;
  bool hit_node_limit = false;

  struct Node {
    std::vector<Constraint> extra;
  };
  std::vector<Node> stack{Node{}};

  while (!stack.empty()) {
    if (++nodes > opts.max_nodes) {
      hit_node_limit = true;
      break;
    }
    Node node = std::move(stack.back());
    stack.pop_back();

    LinearProgram sub = lp;
    for (const auto& c : node.extra) sub.constraints.push_back(c);
    const Solution relax = solve_lp(sub);
    if (relax.status != Status::kOptimal) continue;
    if (relax.objective >= incumbent - 1e-9) continue;  // bound

    // Most fractional variable.
    int branch_var = -1;
    double worst_frac = opts.int_tol;
    for (int j = 0; j < lp.num_vars; ++j) {
      if (!is_integer[static_cast<std::size_t>(j)]) continue;
      const double v = relax.x[static_cast<std::size_t>(j)];
      const double frac = std::abs(v - std::round(v));
      if (frac > worst_frac) {
        worst_frac = frac;
        branch_var = j;
      }
    }
    if (branch_var < 0) {
      // Integral: new incumbent.
      incumbent = relax.objective;
      best = relax;
      best.status = Status::kOptimal;
      for (int j = 0; j < lp.num_vars; ++j) {
        if (is_integer[static_cast<std::size_t>(j)]) {
          best.x[static_cast<std::size_t>(j)] =
              std::round(best.x[static_cast<std::size_t>(j)]);
        }
      }
      continue;
    }

    const double v = relax.x[static_cast<std::size_t>(branch_var)];
    Constraint le;
    le.coeffs.assign(static_cast<std::size_t>(lp.num_vars), 0.0);
    le.coeffs[static_cast<std::size_t>(branch_var)] = 1.0;
    le.rel = Relation::kLessEqual;
    le.rhs = std::floor(v);
    Constraint ge = le;
    ge.rel = Relation::kGreaterEqual;
    ge.rhs = std::ceil(v);

    Node down = node;
    down.extra.push_back(le);
    Node up = std::move(node);
    up.extra.push_back(ge);
    stack.push_back(std::move(down));
    stack.push_back(std::move(up));
  }

  if (hit_node_limit && best.status != Status::kOptimal) {
    best.status = Status::kNodeLimit;
  }
  return best;
}

}  // namespace rlmul::ilp
