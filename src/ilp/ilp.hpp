#pragma once
// Small dense linear-programming and mixed-integer solver. This is the
// substrate behind the GOMIL baseline (Xiao et al., "GOMIL: global
// optimization of multiplier by integer linear programming"): the paper
// compares RL-MUL against an ILP formulation, so the repo carries its
// own exact solver rather than assuming CPLEX/Gurobi.
//
// Scope: two-phase dense simplex with Bland's rule, plus depth-first
// branch-and-bound on fractional variables. Problem sizes in this repo
// are tiny (tens of variables), so a dense tableau is the right tool.

#include <vector>

namespace rlmul::ilp {

enum class Relation { kLessEqual, kGreaterEqual, kEqual };

struct Constraint {
  std::vector<double> coeffs;  ///< dense, size = num_vars
  Relation rel = Relation::kLessEqual;
  double rhs = 0.0;
};

/// minimize objective . x  subject to constraints and x >= 0.
/// (Shift variables yourself if you need other lower bounds.)
struct LinearProgram {
  int num_vars = 0;
  std::vector<double> objective;
  std::vector<Constraint> constraints;
};

enum class Status { kOptimal, kInfeasible, kUnbounded, kIterLimit,
                    kNodeLimit };

struct Solution {
  Status status = Status::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;
};

Solution solve_lp(const LinearProgram& lp, int max_iters = 20000);

struct MilpOptions {
  double int_tol = 1e-6;
  int max_nodes = 200000;
};

/// Branch-and-bound MILP. `is_integer[i]` marks integral variables.
Solution solve_milp(const LinearProgram& lp,
                    const std::vector<bool>& is_integer,
                    const MilpOptions& opts = {});

}  // namespace rlmul::ilp
