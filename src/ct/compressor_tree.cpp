#include "ct/compressor_tree.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace rlmul::ct {

CompressorTree::CompressorTree(ColumnHeights heights)
    : pp(std::move(heights)),
      c32(pp.size(), 0),
      c22(pp.size(), 0),
      c42(pp.size(), 0) {}

int CompressorTree::total_c32() const {
  return std::accumulate(c32.begin(), c32.end(), 0);
}

int CompressorTree::total_c22() const {
  return std::accumulate(c22.begin(), c22.end(), 0);
}

int CompressorTree::total_c42() const {
  return std::accumulate(c42.begin(), c42.end(), 0);
}

int CompressorTree::carries_into(int j) const {
  if (j <= 0 || j > columns()) return 0;
  return c32[j - 1] + c22[j - 1] + 2 * c42[j - 1];
}

int CompressorTree::final_height(int j) const {
  return pp[j] + carries_into(j) - 2 * c32[j] - c22[j] - 3 * c42[j];
}

std::vector<int> CompressorTree::final_heights() const {
  std::vector<int> out(pp.size());
  for (int j = 0; j < columns(); ++j) out[j] = final_height(j);
  return out;
}

bool CompressorTree::legal() const {
  if (c32.size() != pp.size() || c22.size() != pp.size() ||
      c42.size() != pp.size()) {
    return false;
  }
  for (int j = 0; j < columns(); ++j) {
    if (c32[j] < 0 || c22[j] < 0 || c42[j] < 0) return false;
    const int incoming = pp[j] + carries_into(j);
    const int res = final_height(j);
    if (incoming == 0) {
      if (c32[j] != 0 || c22[j] != 0 || c42[j] != 0) return false;
    } else if (res < 1 || res > 2) {
      return false;
    }
  }
  return true;
}

std::string CompressorTree::key() const {
  std::ostringstream os;
  for (int j = 0; j < columns(); ++j) {
    os << c32[j] << ',' << c22[j] << ',' << c42[j] << ';';
  }
  return os.str();
}

// ---------------------------------------------------------------------------

int action_index(const Action& a) {
  return a.column * kActionsPerColumn + static_cast<int>(a.kind);
}

Action action_from_index(int index) {
  Action a;
  a.column = index / kActionsPerColumn;
  a.kind = static_cast<ActionKind>(index % kActionsPerColumn);
  return a;
}

namespace {

/// res_j delta and compressor-count deltas for an action on its column.
struct ActionEffect {
  int d32 = 0;
  int d22 = 0;
  int d42 = 0;
};

ActionEffect effect_of(ActionKind kind) {
  switch (kind) {
    case ActionKind::kAdd22:
      return {0, +1, 0};
    case ActionKind::kRemove22:
      return {0, -1, 0};
    case ActionKind::kReplace32With22:
      return {-1, +1, 0};
    case ActionKind::kReplace22With32:
      return {+1, -1, 0};
    case ActionKind::kFuse32And22To42:
      return {-1, -1, +1};
    case ActionKind::kSplit42To32And22:
      return {+1, +1, -1};
  }
  return {};
}

}  // namespace

bool action_applicable(const CompressorTree& tree, const Action& a) {
  const int j = a.column;
  if (j < 0 || j >= tree.columns()) return false;
  const ActionEffect e = effect_of(a.kind);
  const int new32 = tree.c32[j] + e.d32;
  const int new22 = tree.c22[j] + e.d22;
  const int new42 = tree.c42[j] + e.d42;
  if (new32 < 0 || new22 < 0 || new42 < 0) return false;
  const int res = tree.pp[j] + tree.carries_into(j) - 2 * new32 - new22 -
                  3 * new42;
  return res == 1 || res == 2;
}

void legalize(CompressorTree& tree, int from_column) {
  // Algorithm 2, generalized with small loops so the procedure is safe
  // for arbitrarily perturbed inputs (the paper's single action changes
  // residuals by at most one, but retarget_tree replaces the whole pp
  // vector, so every column must be visited — no early exit on a legal
  // column, since later columns may still be broken).
  for (int j = std::max(from_column, 0); j < tree.columns(); ++j) {
    int res = tree.final_height(j);
    const int incoming = tree.pp[j] + tree.carries_into(j);
    if (incoming == 0 && tree.c32[j] == 0 && tree.c22[j] == 0 &&
        tree.c42[j] == 0) {
      continue;  // genuinely empty column: carry-out is zero
    }
    if (res == 1 || res == 2) continue;  // column already legal
    // Fix over- and under-compression with 3:2/2:2 moves (the paper's
    // repertoire); a 4:2 is only removed as a last resort, which can
    // overshoot into over-compression — hence the outer loop.
    int guard = 0;
    while ((res < 1 || res > 2) && guard++ < 4 * tree.columns() + 64) {
      if (res > 2) {
        if (res == 3 && tree.c22[j] > 0) {
          // Replace a 2:2 with a 3:2: consumes one extra bit.
          --tree.c22[j];
          ++tree.c32[j];
          res -= 1;
        } else {
          // Add a 3:2 compressor: consumes two extra bits, emits a carry.
          ++tree.c32[j];
          res -= 2;
        }
      } else {
        if (tree.c22[j] > 0) {
          --tree.c22[j];
          res += 1;
        } else if (tree.c32[j] > 0) {
          --tree.c32[j];
          res += 2;
        } else if (tree.c42[j] > 0) {
          --tree.c42[j];
          res += 3;
        } else {
          break;  // column is empty of compressors; nothing left to remove
        }
      }
    }
  }
}

CompressorTree apply_action(CompressorTree tree, const Action& a) {
  const ActionEffect e = effect_of(a.kind);
  tree.c32[a.column] += e.d32;
  tree.c22[a.column] += e.d22;
  tree.c42[a.column] += e.d42;
  legalize(tree, a.column + 1);
  return tree;
}

std::vector<std::uint8_t> legal_action_mask(const CompressorTree& tree,
                                            int max_stages, bool allow_42) {
  std::vector<std::uint8_t> mask(
      static_cast<std::size_t>(tree.columns()) * kActionsPerColumn, 0);
  for (int j = 0; j < tree.columns(); ++j) {
    for (int k = 0; k < kActionsPerColumn; ++k) {
      const auto kind = static_cast<ActionKind>(k);
      if (!allow_42 && (kind == ActionKind::kFuse32And22To42 ||
                        kind == ActionKind::kSplit42To32And22)) {
        continue;
      }
      const Action a{j, kind};
      if (!action_applicable(tree, a)) continue;
      if (max_stages >= 0) {
        const CompressorTree next = apply_action(tree, a);
        if (stage_count(next) > max_stages) continue;
      }
      mask[static_cast<std::size_t>(action_index(a))] = 1;
    }
  }
  return mask;
}

// ---------------------------------------------------------------------------

StageAssignment assign_stages(const CompressorTree& tree) {
  const int cols = tree.columns();
  StageAssignment out;
  // carry_arrivals[j][s]: carries landing in column j at stage s.
  std::vector<std::vector<int>> carry_arrivals(
      static_cast<std::size_t>(cols) + 1);
  auto arrivals_at = [&](int j, int s) -> int {
    const auto& v = carry_arrivals[static_cast<std::size_t>(j)];
    return s < static_cast<int>(v.size()) ? v[static_cast<std::size_t>(s)]
                                          : 0;
  };
  auto add_arrival = [&](int j, int s, int count) {
    if (j > cols) return;
    auto& v = carry_arrivals[static_cast<std::size_t>(j)];
    if (s >= static_cast<int>(v.size())) v.resize(static_cast<std::size_t>(s) + 1, 0);
    v[static_cast<std::size_t>(s)] += count;
  };

  auto ensure_stage = [&](int s) {
    while (static_cast<int>(out.t32.size()) <= s) {
      out.t32.emplace_back(cols, 0);
      out.t22.emplace_back(cols, 0);
      out.t42.emplace_back(cols, 0);
    }
  };

  for (int j = 0; j < cols; ++j) {
    int remaining42 = tree.c42[j];
    int remaining32 = tree.c32[j];
    int remaining22 = tree.c22[j];
    int avail = tree.pp[j];
    int stage = 0;
    // Hard bound: a legal tree always terminates (once all carries have
    // arrived a remaining compressor can fire); the bound only guards
    // against illegal inputs.
    const int stage_limit = 4 * cols + 64;
    while (remaining32 > 0 || remaining22 > 0 || remaining42 > 0) {
      if (stage > stage_limit) {
        throw std::invalid_argument(
            "assign_stages: compressor counts are not schedulable "
            "(tree is illegal)");
      }
      avail += arrivals_at(j, stage);
      // Widest compressors first (Algorithm 1 prioritizes 3:2 over 2:2;
      // the 4:2 extension naturally slots in front).
      const int n42 = std::min(remaining42, avail / 4);
      int left = avail - 4 * n42;
      const int n32 = std::min(remaining32, left / 3);
      left -= 3 * n32;
      const int n22 = std::min(remaining22, left / 2);
      left -= 2 * n22;
      if (n32 > 0 || n22 > 0 || n42 > 0) {
        ensure_stage(stage);
        out.t32[static_cast<std::size_t>(stage)][static_cast<std::size_t>(j)] =
            n32;
        out.t22[static_cast<std::size_t>(stage)][static_cast<std::size_t>(j)] =
            n22;
        out.t42[static_cast<std::size_t>(stage)][static_cast<std::size_t>(j)] =
            n42;
        add_arrival(j + 1, stage + 1, n32 + n22 + 2 * n42);
      }
      remaining42 -= n42;
      remaining32 -= n32;
      remaining22 -= n22;
      // Bits surviving to the next stage: passthroughs plus sums.
      avail = left + n32 + n22 + n42;
      ++stage;
    }
    // Drain any carries that arrive after this column finished its own
    // compressors; they simply join the final rows, but we must walk the
    // arrival schedule so `avail` bookkeeping stays consistent for debug
    // asserts. (No state to record: arrivals into later columns only
    // come from compressors, which are all placed by now.)
  }

  out.stages = static_cast<int>(out.t32.size());
  if (out.stages == 0) {
    out.t32.emplace_back(cols, 0);
    out.t22.emplace_back(cols, 0);
    out.t42.emplace_back(cols, 0);
  }
  return out;
}

int stage_count(const CompressorTree& tree) {
  return assign_stages(tree).stages;
}

// ---------------------------------------------------------------------------

CompressorTree wallace_tree(const ColumnHeights& pp) {
  const int cols = static_cast<int>(pp.size());
  CompressorTree tree{pp};
  // Rows are materialized as per-column occupancy vectors; the initial
  // ragged parallelogram is row r occupying the columns where it has a
  // bit. We only need counts, so a row is a vector<int> of 0/1 bits.
  const int max_h = cols == 0 ? 0 : *std::max_element(pp.begin(), pp.end());
  std::vector<std::vector<int>> rows;
  for (int r = 0; r < max_h; ++r) {
    std::vector<int> row(static_cast<std::size_t>(cols), 0);
    for (int j = 0; j < cols; ++j) {
      if (pp[j] > r) row[static_cast<std::size_t>(j)] = 1;
    }
    rows.push_back(std::move(row));
  }

  while (rows.size() > 2) {
    std::vector<std::vector<int>> next;
    std::size_t r = 0;
    for (; r + 3 <= rows.size(); r += 3) {
      std::vector<int> sum(static_cast<std::size_t>(cols), 0);
      std::vector<int> carry(static_cast<std::size_t>(cols), 0);
      for (int j = 0; j < cols; ++j) {
        const int bits = rows[r][static_cast<std::size_t>(j)] +
                         rows[r + 1][static_cast<std::size_t>(j)] +
                         rows[r + 2][static_cast<std::size_t>(j)];
        if (bits == 3) {
          ++tree.c32[j];
          sum[static_cast<std::size_t>(j)] += 1;
          if (j + 1 < cols) carry[static_cast<std::size_t>(j) + 1] += 1;
        } else if (bits == 2) {
          ++tree.c22[j];
          sum[static_cast<std::size_t>(j)] += 1;
          if (j + 1 < cols) carry[static_cast<std::size_t>(j) + 1] += 1;
        } else if (bits == 1) {
          sum[static_cast<std::size_t>(j)] += 1;
        }
      }
      next.push_back(std::move(sum));
      next.push_back(std::move(carry));
    }
    for (; r < rows.size(); ++r) next.push_back(std::move(rows[r]));
    // Re-normalize: a "row" may now hold counts > 1 in a column if the
    // leftover rows were ragged; spread them back into 0/1 rows.
    std::vector<int> heights(static_cast<std::size_t>(cols), 0);
    for (const auto& row : next) {
      for (int j = 0; j < cols; ++j) {
        heights[static_cast<std::size_t>(j)] +=
            row[static_cast<std::size_t>(j)];
      }
    }
    const int h =
        cols == 0 ? 0 : *std::max_element(heights.begin(), heights.end());
    rows.clear();
    for (int rr = 0; rr < h; ++rr) {
      std::vector<int> row(static_cast<std::size_t>(cols), 0);
      for (int j = 0; j < cols; ++j) {
        if (heights[static_cast<std::size_t>(j)] > rr) {
          row[static_cast<std::size_t>(j)] = 1;
        }
      }
      rows.push_back(std::move(row));
    }
  }
  legalize(tree, 0);  // fix rare res==0 columns produced by ragged edges
  return tree;
}

CompressorTree dadda_tree(const ColumnHeights& pp) {
  const int cols = static_cast<int>(pp.size());
  CompressorTree tree{pp};
  std::vector<int> h = pp;
  const int max_h = cols == 0 ? 0 : *std::max_element(h.begin(), h.end());

  // Dadda target sequence d_1 = 2, d_{k+1} = floor(1.5 d_k).
  std::vector<int> targets{2};
  while (targets.back() < max_h) {
    targets.push_back(targets.back() * 3 / 2);
  }

  for (auto it = targets.rbegin(); it != targets.rend(); ++it) {
    const int d = *it;
    std::vector<int> carry_in(static_cast<std::size_t>(cols) + 1, 0);
    for (int j = 0; j < cols; ++j) {
      int hh = h[static_cast<std::size_t>(j)] +
               carry_in[static_cast<std::size_t>(j)];
      while (hh > d) {
        if (hh == d + 1) {
          ++tree.c22[j];  // half adder: removes one bit, emits a carry
          hh -= 1;
        } else {
          ++tree.c32[j];  // full adder: removes two bits, emits a carry
          hh -= 2;
        }
        carry_in[static_cast<std::size_t>(j) + 1] += 1;
      }
      h[static_cast<std::size_t>(j)] = hh;
    }
    // Fold the carries that landed beyond this pass into the heights.
    // (Already included: hh consumed carry_in[j]; nothing else to do.)
  }
  legalize(tree, 0);
  return tree;
}

std::string to_string(const CompressorTree& tree) {
  std::ostringstream os;
  os << "columns: " << tree.columns() << "\n";
  os << "pp : ";
  for (int v : tree.pp) os << v << ' ';
  os << "\nc32: ";
  for (int v : tree.c32) os << v << ' ';
  os << "\nc22: ";
  for (int v : tree.c22) os << v << ' ';
  if (tree.total_c42() > 0) {
    os << "\nc42: ";
    for (int v : tree.c42) os << v << ' ';
  }
  os << "\nres: ";
  for (int v : tree.final_heights()) os << v << ' ';
  os << "\nstages: " << stage_count(tree) << "\n";
  return os.str();
}

TreeDelta diff_trees(const CompressorTree& a, const CompressorTree& b) {
  TreeDelta d;
  d.same_shape = a.pp == b.pp;
  if (!d.same_shape) {
    const int cols = std::max(a.columns(), b.columns());
    for (int j = 0; j < cols; ++j) d.changed_columns.push_back(j);
    return d;
  }
  auto at = [](const std::vector<int>& v, int j) {
    return j < static_cast<int>(v.size()) ? v[static_cast<std::size_t>(j)] : 0;
  };
  for (int j = 0; j < a.columns(); ++j) {
    if (at(a.c32, j) != at(b.c32, j) || at(a.c22, j) != at(b.c22, j) ||
        at(a.c42, j) != at(b.c42, j)) {
      d.changed_columns.push_back(j);
    }
  }
  return d;
}

}  // namespace rlmul::ct
