#pragma once
// Core compressor-tree (CT) model of RL-MUL (Section III of the paper).
//
// A multiplier's partial products form columns of bits; the CT reduces
// every column to at most two rows using 3:2 compressors (full adders)
// and 2:2 compressors (half adders). The paper's *matrix representation*
// M in R^{2 x 2N} stores, per column, the total number of 3:2 and 2:2
// compressors; that is exactly `CompressorTree::{c32, c22}` here plus
// the initial partial-product heights.
//
// Column convention: column 0 is the LSB. A compressor in column j
// consumes bits of column j and emits its sum into column j and its
// carry into column j+1. Carries out of the top column are discarded,
// i.e. the tree computes the result modulo 2^W (W = number of columns),
// which matches both multiplier (exact) and merged-MAC (wrap-around
// accumulate) semantics.

#include <cstdint>
#include <string>
#include <vector>

namespace rlmul::ct {

/// Initial partial-product bit count per column (before compression).
using ColumnHeights = std::vector<int>;

/// The paper's matrix representation M plus the PPG column heights it
/// compresses. Invariant-free aggregate: legality is queried, not
/// enforced, because the RL action machinery deliberately walks through
/// intermediate illegal states before legalization.
struct CompressorTree {
  ColumnHeights pp;       ///< initial heights, size = number of columns
  std::vector<int> c32;   ///< 3:2 compressors per column
  std::vector<int> c22;   ///< 2:2 compressors per column
  /// 4:2 compressors per column — the paper's "more compressor
  /// variants" extension (K = 3). A 4:2 consumes four bits of its
  /// column, keeps one sum and sends TWO carries to column j+1.
  std::vector<int> c42;

  CompressorTree() = default;
  explicit CompressorTree(ColumnHeights heights);

  int columns() const { return static_cast<int>(pp.size()); }
  int total_c32() const;
  int total_c22() const;
  int total_c42() const;

  /// Number of carries entering column j (from column j-1's compressors).
  int carries_into(int j) const;

  /// res_j of the paper: bits left in column j after all compression,
  /// including incoming carries.
  int final_height(int j) const;
  std::vector<int> final_heights() const;

  /// A tree is legal when every column with content compresses to one or
  /// two rows, empty columns carry no compressors, and no count is
  /// negative.
  bool legal() const;

  bool operator==(const CompressorTree& other) const = default;

  /// Canonical key for hashing / dedup across the search.
  std::string key() const;
};

/// Structural diff between two compressor trees, driving the delta
/// evaluator: a replay against a parent trace only touches the fan-out
/// cone of changed_columns, and is only attempted under same_shape.
struct TreeDelta {
  /// Same column count and the same initial (partial-product) heights —
  /// the precondition for cell-by-cell replay against a build trace.
  bool same_shape = false;
  /// Columns whose compressor counts differ (empty when same_shape and
  /// the trees are equal).
  std::vector<int> changed_columns;
  bool identical() const { return same_shape && changed_columns.empty(); }
};

TreeDelta diff_trees(const CompressorTree& a, const CompressorTree& b);

// ---------------------------------------------------------------------------
// Action space (Section III-D). Four actions per column.

enum class ActionKind : std::uint8_t {
  kAdd22 = 0,            ///< add a 2:2 compressor          (res_j -= 1)
  kRemove22 = 1,         ///< remove a 2:2 compressor       (res_j += 1)
  kReplace32With22 = 2,  ///< 3:2 -> 2:2                    (res_j += 1)
  kReplace22With32 = 3,  ///< 2:2 -> 3:2                    (res_j -= 1)
  // Extension actions (disabled unless the caller opts in): a 4:2 is
  // arithmetically identical to a {3:2 + 2:2} pair at the column level
  // (same net consumption, same carry count), so fusing/splitting
  // changes only the hardware mapping, never the residuals.
  kFuse32And22To42 = 4,  ///< {3:2, 2:2} -> 4:2             (res_j += 0)
  kSplit42To32And22 = 5, ///< 4:2 -> {3:2, 2:2}             (res_j += 0)
};

constexpr int kActionsPerColumn = 6;

struct Action {
  int column = 0;
  ActionKind kind = ActionKind::kAdd22;

  bool operator==(const Action&) const = default;
};

/// Flat index into the 8N-long action vector of Equation (5).
int action_index(const Action& a);
Action action_from_index(int index);

/// True when the action can be applied to column `a.column` and leaves
/// that column's residual height in {1, 2}. Downstream columns may still
/// need legalization afterwards.
bool action_applicable(const CompressorTree& tree, const Action& a);

/// Algorithm 2: sweep from `from_column` to the MSB, restoring
/// res_j in {1, 2} everywhere. Visits every column (already-legal
/// columns are no-ops), so it repairs both single-action ripples and
/// arbitrary perturbations such as a full pp-height replacement.
void legalize(CompressorTree& tree, int from_column);

/// Apply an action (must be applicable) and legalize. Returns the
/// successor state s_{t+1}.
CompressorTree apply_action(CompressorTree tree, const Action& a);

/// Legality mask of Equation (6): one byte per action, 1 = selectable.
/// When `max_stages` >= 0, actions whose legalized successor exceeds
/// that stage count are masked off (search-space pruning, Section IV-C).
/// `allow_42` unmasks the 4:2 fuse/split extension actions.
std::vector<std::uint8_t> legal_action_mask(const CompressorTree& tree,
                                            int max_stages = -1,
                                            bool allow_42 = false);

// ---------------------------------------------------------------------------
// Stage assignment (Algorithm 1) and the tensor representation.

/// The paper's tensor representation T in R^{2 x 2N x ST}: a unique,
/// deterministic placement of M's compressors into stages.
struct StageAssignment {
  int stages = 0;  ///< ST: number of compression stages actually used
  /// t32[s][j] / t22[s][j] / t42[s][j]: compressors of each kind at
  /// stage s, column j.
  std::vector<std::vector<int>> t32;
  std::vector<std::vector<int>> t22;
  std::vector<std::vector<int>> t42;
};

/// Algorithm 1: assign compressors LSB->MSB, 3:2 before 2:2, earliest
/// stage with enough available bits. Requires a legal tree.
StageAssignment assign_stages(const CompressorTree& tree);

/// Number of stages the deterministic assignment uses.
int stage_count(const CompressorTree& tree);

// ---------------------------------------------------------------------------
// Legacy constructors (baselines of Section V).

/// Classic row-based Wallace reduction: rows are grouped in threes each
/// stage; within a group a column with 3 bits gets a full adder and a
/// column with 2 bits gets a half adder.
CompressorTree wallace_tree(const ColumnHeights& pp);

/// Dadda reduction: per-stage column targets 2, 3, 4, 6, 9, 13, ...;
/// uses the minimal number of compressors to reach each target.
CompressorTree dadda_tree(const ColumnHeights& pp);

/// Human-readable dump (for examples and debugging).
std::string to_string(const CompressorTree& tree);

}  // namespace rlmul::ct
