#include "synth/synth.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/simulator.hpp"
#include "sta/sta.hpp"
#include "util/perf_counters.hpp"
#include "util/rng.hpp"

namespace rlmul::synth {

using netlist::CellKind;
using netlist::CellLibrary;
using netlist::CpaKind;
using netlist::Gate;
using netlist::GateId;
using netlist::NetId;
using netlist::Netlist;

constexpr double kVdd = kVddVolts;

/// Signal probability (P[net == 1]) propagation, independence assumed.
std::vector<double> signal_probabilities(const Netlist& nl) {
  return signal_probabilities(nl, nl.topo_order());
}

std::vector<double> signal_probabilities(const Netlist& nl,
                                         const std::vector<GateId>& topo) {
  std::vector<double> p(static_cast<std::size_t>(nl.num_nets()), 0.5);
  for (GateId g : topo) {
    const Gate& gate = nl.gates()[static_cast<std::size_t>(g)];
    auto in = [&](int i) {
      return p[static_cast<std::size_t>(
          gate.inputs[static_cast<std::size_t>(i)])];
    };
    auto set = [&](int i, double v) {
      p[static_cast<std::size_t>(
          gate.outputs[static_cast<std::size_t>(i)])] = v;
    };
    auto p_or = [](double a, double b) { return a + b - a * b; };
    auto p_xor = [](double a, double b) { return a + b - 2.0 * a * b; };
    switch (gate.kind) {
      case CellKind::kInv: set(0, 1.0 - in(0)); break;
      case CellKind::kBuf: set(0, in(0)); break;
      case CellKind::kNand2: set(0, 1.0 - in(0) * in(1)); break;
      case CellKind::kNor2: set(0, 1.0 - p_or(in(0), in(1))); break;
      case CellKind::kAnd2: set(0, in(0) * in(1)); break;
      case CellKind::kOr2: set(0, p_or(in(0), in(1))); break;
      case CellKind::kAnd3: set(0, in(0) * in(1) * in(2)); break;
      case CellKind::kOr3: set(0, p_or(p_or(in(0), in(1)), in(2))); break;
      case CellKind::kXor2: set(0, p_xor(in(0), in(1))); break;
      case CellKind::kXnor2: set(0, 1.0 - p_xor(in(0), in(1))); break;
      case CellKind::kAoi21: set(0, 1.0 - p_or(in(0) * in(1), in(2))); break;
      case CellKind::kOai21:
        set(0, 1.0 - p_or(in(0), in(1)) * in(2));
        break;
      case CellKind::kMux2:
        set(0, (1.0 - in(2)) * in(0) + in(2) * in(1));
        break;
      case CellKind::kFa: {
        const double a = in(0), b = in(1), c = in(2);
        set(0, p_xor(p_xor(a, b), c));
        set(1, a * b + a * c + b * c - 2.0 * a * b * c);
        break;
      }
      case CellKind::kHa:
        set(0, p_xor(in(0), in(1)));
        set(1, in(0) * in(1));
        break;
      case CellKind::kC42: {
        const double a = in(0), b = in(1), c = in(2), d = in(3);
        const double s1 = p_xor(p_xor(a, b), c);
        set(0, p_xor(s1, d));
        set(1, a * b + a * c + b * c - 2.0 * a * b * c);
        set(2, s1 * d);
        break;
      }
      case CellKind::kDff: set(0, 0.5); break;
      case CellKind::kTieLo: set(0, 0.0); break;
      case CellKind::kTieHi: set(0, 1.0); break;
    }
  }
  return p;
}

PowerReport estimate_power(const Netlist& nl, const CellLibrary& lib,
                           double clock_ns) {
  if (clock_ns <= 0.0) return {};
  return estimate_power_given(nl, lib, clock_ns, signal_probabilities(nl),
                              sta::compute_loads(nl, lib));
}

PowerReport estimate_power_given(const Netlist& nl, const CellLibrary& lib,
                                 double clock_ns,
                                 const std::vector<double>& p,
                                 const std::vector<double>& load) {
  PowerReport rep;
  if (clock_ns <= 0.0) return rep;
  const double freq_ghz = 1.0 / clock_ns;  // cycles per ns

  double switching_fj = 0.0;  // per cycle
  double internal_fj = 0.0;
  double leakage_nw = 0.0;
  for (const Gate& g : nl.gates()) {
    leakage_nw += lib.leakage(g.kind, g.variant);
    for (NetId out : g.outputs) {
      const double prob = p[static_cast<std::size_t>(out)];
      const double activity = 2.0 * prob * (1.0 - prob);
      switching_fj += 0.5 * activity * load[static_cast<std::size_t>(out)] *
                      kVdd * kVdd;
      internal_fj += activity * lib.internal_energy(g.kind);
    }
  }
  // fJ per ns == uW; report mW.
  rep.dynamic_mw = (switching_fj + internal_fj) * freq_ghz * 1e-3;
  rep.leakage_mw = leakage_nw * 1e-6;
  return rep;
}

PowerReport simulate_power(const Netlist& nl, const CellLibrary& lib,
                           double clock_ns, int num_vectors,
                           std::uint64_t seed) {
  PowerReport rep;
  if (clock_ns <= 0.0 || num_vectors <= 0) return rep;
  sim::Simulator simulator(nl);
  util::Rng rng(seed);
  const auto load = sta::compute_loads(nl, lib);
  const double freq_ghz = 1.0 / clock_ns;

  // Count toggles per net across consecutive random vectors; the
  // 64-way simulator gives 64 samples per run, and adjacent bit lanes
  // within a word are adjacent "cycles".
  std::vector<std::uint64_t> prev(static_cast<std::size_t>(nl.num_nets()), 0);
  double toggles_per_cycle_weighted_cap = 0.0;  // fF toggled per cycle
  double toggles_internal_fj = 0.0;
  const auto& gates = nl.gates();
  long cycles = 0;
  const int runs = (num_vectors + 63) / 64;
  for (int r = 0; r < runs; ++r) {
    for (int i = 0; i < simulator.num_inputs(); ++i) {
      simulator.set_input(i, rng.next());
    }
    simulator.run();
    for (const auto& g : gates) {
      for (netlist::NetId out : g.outputs) {
        const std::uint64_t v = simulator.net_value(out);
        // Transitions between adjacent lanes plus the seam to the
        // previous word's last lane.
        std::uint64_t trans = v ^ (v << 1);
        if (r > 0) {
          trans = (trans & ~1ULL) |
                  (((prev[static_cast<std::size_t>(out)] >> 63) ^ v) & 1ULL);
        } else {
          trans &= ~1ULL;
        }
        const int count = static_cast<int>(__builtin_popcountll(trans));
        toggles_per_cycle_weighted_cap +=
            count * load[static_cast<std::size_t>(out)];
        toggles_internal_fj += count * lib.internal_energy(g.kind);
        prev[static_cast<std::size_t>(out)] = v;
      }
    }
    cycles += (r == 0) ? 63 : 64;
  }
  if (cycles == 0) return rep;

  double leakage_nw = 0.0;
  for (const auto& g : gates) leakage_nw += lib.leakage(g.kind, g.variant);

  const double avg_cap_per_cycle =
      toggles_per_cycle_weighted_cap / static_cast<double>(cycles);
  const double avg_internal_per_cycle =
      toggles_internal_fj / static_cast<double>(cycles);
  rep.dynamic_mw = (0.5 * avg_cap_per_cycle * kVdd * kVdd +
                    avg_internal_per_cycle) *
                   freq_ghz * 1e-3;
  rep.leakage_mw = leakage_nw * 1e-6;
  return rep;
}

namespace {

/// Backward required-time pass over precomputed arrivals/loads.
std::vector<double> net_slacks_core(const Netlist& nl, const CellLibrary& lib,
                                    double target_ps,
                                    const std::vector<double>& arrival_ps,
                                    const std::vector<double>& load_ff,
                                    const std::vector<GateId>& order) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> required(static_cast<std::size_t>(nl.num_nets()), inf);
  for (NetId n : nl.primary_outputs()) {
    required[static_cast<std::size_t>(n)] =
        std::min(required[static_cast<std::size_t>(n)], target_ps);
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const Gate& gate = nl.gates()[static_cast<std::size_t>(*it)];
    if (gate.kind == CellKind::kDff) {
      const NetId d = gate.inputs[0];
      required[static_cast<std::size_t>(d)] =
          std::min(required[static_cast<std::size_t>(d)],
                   target_ps - lib.setup(CellKind::kDff));
      continue;
    }
    for (int o = 0; o < static_cast<int>(gate.outputs.size()); ++o) {
      const NetId out = gate.outputs[static_cast<std::size_t>(o)];
      const double req_out = required[static_cast<std::size_t>(out)];
      if (req_out == inf) continue;
      const double rl = lib.drive_res(gate.kind, gate.variant) *
                        load_ff[static_cast<std::size_t>(out)];
      for (int i = 0; i < static_cast<int>(gate.inputs.size()); ++i) {
        const NetId in = gate.inputs[static_cast<std::size_t>(i)];
        const double req_in = req_out - lib.intrinsic(gate.kind, i, o) - rl;
        required[static_cast<std::size_t>(in)] =
            std::min(required[static_cast<std::size_t>(in)], req_in);
      }
    }
  }
  std::vector<double> slack(static_cast<std::size_t>(nl.num_nets()), inf);
  for (std::size_t n = 0; n < slack.size(); ++n) {
    if (required[n] != inf) slack[n] = required[n] - arrival_ps[n];
  }
  return slack;
}

/// Slack-driven downsizing shared by both sizing modes. `arrival`,
/// `load` and `critical_ps` must describe the current netlist; returns
/// the gates whose variant was decremented.
std::vector<GateId> pick_downsizes(Netlist& nl, const CellLibrary& lib,
                                   const std::vector<double>& slack,
                                   const std::vector<double>& load_ff) {
  std::vector<GateId> changed;
  for (GateId gi = 0; gi < nl.num_gates(); ++gi) {
    Gate& g = nl.gates()[static_cast<std::size_t>(gi)];
    if (g.variant == 0 || g.outputs.empty()) continue;
    const NetId out = g.outputs[0];
    const double penalty =
        (lib.drive_res(g.kind, g.variant - 1) -
         lib.drive_res(g.kind, g.variant)) *
        load_ff[static_cast<std::size_t>(out)];
    double out_slack = slack[static_cast<std::size_t>(out)];
    for (std::size_t o = 1; o < g.outputs.size(); ++o) {
      out_slack = std::min(
          out_slack, slack[static_cast<std::size_t>(g.outputs[o])]);
    }
    if (out_slack > 2.0 * penalty + 5.0) {
      --g.variant;
      changed.push_back(gi);
    }
  }
  return changed;
}

/// Incremental-STA sizing loop; decision-for-decision identical to the
/// legacy full-analyze loop below. The timer must be in sync with `nl`.
void size_with_timer(Netlist& nl, const CellLibrary& lib,
                     const SynthesisOptions& opts,
                     sta::IncrementalTimer& timer) {
  const double target_ps = opts.target_delay_ns * 1000.0;
  std::vector<GateId> changed;
  for (int pass = 0; pass < opts.max_upsize_passes; ++pass) {
    if (timer.critical_ps() <= target_ps) break;
    changed.clear();
    for (GateId g : timer.critical_path()) {
      Gate& gate = nl.gates()[static_cast<std::size_t>(g)];
      if (gate.variant + 1 < lib.num_variants(gate.kind)) {
        ++gate.variant;
        changed.push_back(g);
      }
    }
    if (changed.empty()) break;  // every critical gate is already maxed out
    timer.update(changed);
  }

  if (opts.area_recovery) {
    const double budget = std::max(target_ps, timer.critical_ps());
    const auto slack = net_slacks_core(nl, lib, budget, timer.arrival_ps(),
                                       timer.load_ff(), timer.graph().topo);
    const auto downsized = pick_downsizes(nl, lib, slack, timer.load_ff());
    if (!downsized.empty()) {
      timer.update(downsized);
      if (timer.critical_ps() > budget + 0.5) {
        for (GateId g : downsized) {
          ++nl.gates()[static_cast<std::size_t>(g)].variant;
        }
        timer.update(downsized);
      }
    }
  }
}

void size_for_target_legacy(Netlist& nl, const CellLibrary& lib,
                            const SynthesisOptions& opts) {
  const double target_ps = opts.target_delay_ns * 1000.0;
  for (int pass = 0; pass < opts.max_upsize_passes; ++pass) {
    const auto rep = sta::analyze(nl, lib);
    if (rep.critical_ps <= target_ps) break;
    bool changed = false;
    for (GateId g : rep.critical_path) {
      Gate& gate = nl.gates()[static_cast<std::size_t>(g)];
      if (gate.variant + 1 < lib.num_variants(gate.kind)) {
        ++gate.variant;
        changed = true;
      }
    }
    if (!changed) break;  // every critical gate is already maxed out
  }

  if (opts.area_recovery) {
    // Downsize gates whose output slack comfortably covers the own-delay
    // penalty of the smaller drive. Verify once and revert on failure.
    const auto rep_before = sta::analyze(nl, lib);
    const double achieved = rep_before.critical_ps;
    const double budget = std::max(target_ps, achieved);
    const auto slack = net_slacks(nl, lib, budget);
    const auto downsized = pick_downsizes(nl, lib, slack, rep_before.load_ff);
    if (!downsized.empty()) {
      const auto rep_after = sta::analyze(nl, lib);
      if (rep_after.critical_ps > budget + 0.5) {
        for (GateId g : downsized) {
          ++nl.gates()[static_cast<std::size_t>(g)].variant;
        }
      }
    }
  }
}

}  // namespace

std::vector<double> net_slacks(const Netlist& nl, const CellLibrary& lib,
                               double target_ps) {
  const auto rep = sta::analyze(nl, lib);
  return net_slacks_core(nl, lib, target_ps, rep.arrival_ps, rep.load_ff,
                         nl.topo_order());
}

std::vector<double> net_slacks(const Netlist& nl, const CellLibrary& lib,
                               double target_ps,
                               const sta::TimingReport& rep) {
  return net_slacks_core(nl, lib, target_ps, rep.arrival_ps, rep.load_ff,
                         nl.topo_order());
}

void size_for_target(Netlist& nl, const CellLibrary& lib,
                     const SynthesisOptions& opts) {
  for (Gate& g : nl.gates()) g.variant = 0;
  if (!opts.incremental_sta) {
    size_for_target_legacy(nl, lib, opts);
    return;
  }
  sta::IncrementalTimer timer(nl, lib);
  size_with_timer(nl, lib, opts, timer);
}

SynthesisResult synthesize_with_timer(Netlist& nl, const CellLibrary& lib,
                                      const SynthesisOptions& opts,
                                      sta::IncrementalTimer& timer,
                                      bool compute_power) {
  util::perf_counters().synth_calls.fetch_add(1, std::memory_order_relaxed);
  size_with_timer(nl, lib, opts, timer);
  SynthesisResult res;
  res.area_um2 = netlist::netlist_area(nl, lib);
  res.delay_ns = timer.critical_ps() / 1000.0;
  res.met_target = res.delay_ns <= opts.target_delay_ns + 1e-9;
  res.num_gates = nl.num_gates();
  if (compute_power) {
    const double clock_ns = std::max(opts.target_delay_ns, res.delay_ns);
    res.power_mw = estimate_power(nl, lib, clock_ns).total_mw();
  }
  return res;
}

SynthesisResult synthesize_netlist(Netlist& nl, const CellLibrary& lib,
                                   const SynthesisOptions& opts) {
  if (opts.incremental_sta) {
    for (Gate& g : nl.gates()) g.variant = 0;
    sta::IncrementalTimer timer(nl, lib);
    return synthesize_with_timer(nl, lib, opts, timer, true);
  }
  util::perf_counters().synth_calls.fetch_add(1, std::memory_order_relaxed);
  size_for_target(nl, lib, opts);
  const auto rep = sta::analyze(nl, lib);
  SynthesisResult res;
  res.area_um2 = netlist::netlist_area(nl, lib);
  res.delay_ns = rep.critical_ps / 1000.0;
  res.met_target = res.delay_ns <= opts.target_delay_ns + 1e-9;
  const double clock_ns = std::max(opts.target_delay_ns, res.delay_ns);
  res.power_mw = estimate_power(nl, lib, clock_ns).total_mw();
  res.num_gates = nl.num_gates();
  return res;
}

SynthesisResult synthesize_design(const ppg::MultiplierSpec& spec,
                                  const ct::CompressorTree& tree,
                                  double target_delay_ns) {
  const PreparedDesign prep(spec, tree);
  return prep.synthesize(target_delay_ns);
}

SynthesisResult synthesize_design(const ppg::MultiplierSpec& spec,
                                  const ppg::DesignPoint& point,
                                  double target_delay_ns) {
  const ppg::MultiplierSpec resolved = point.resolved_spec(spec);
  if (!point.cpa_pinned()) {
    return synthesize_design(resolved, point.tree, target_delay_ns);
  }
  const PreparedDesign prep(resolved, point.tree, point.cpa);
  return prep.synthesize(target_delay_ns);
}

SynthesisResult synthesize_design_legacy(const ppg::MultiplierSpec& spec,
                                         const ct::CompressorTree& tree,
                                         double target_delay_ns) {
  const CellLibrary& lib = CellLibrary::nangate45();
  SynthesisOptions opts;
  opts.target_delay_ns = target_delay_ns;
  opts.incremental_sta = false;

  // kAllCpaKinds is ordered by area, so the first architecture that
  // meets the target is (to first order) the min-area choice; stop
  // there. When nothing meets timing, report the fastest.
  SynthesisResult best;
  bool have = false;
  for (CpaKind cpa : netlist::kAllCpaKinds) {
    util::perf_counters().netlists_built.fetch_add(1,
                                                   std::memory_order_relaxed);
    Netlist nl = ppg::build_multiplier(spec, tree, cpa);
    SynthesisResult res = synthesize_netlist(nl, lib, opts);
    res.cpa = cpa;
    const bool better =
        !have ||
        (res.met_target && !best.met_target) ||
        (res.met_target == best.met_target &&
         (res.met_target ? res.area_um2 < best.area_um2
                         : res.delay_ns < best.delay_ns));
    if (better) {
      best = res;
      have = true;
    }
    if (res.met_target) break;
  }
  return best;
}

}  // namespace rlmul::synth
