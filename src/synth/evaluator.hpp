#pragma once
// The reward oracle of the framework (Section III-E): evaluates a
// design point under n delay constraints and aggregates the results
// into the Pareto-driven cost
//
//   cost = w_a * sum_i area_i + w_d * sum_i delay_i
//
// (power is dropped from the objective per Section IV-B; it is still
// reported for the Fig 7 correlation study). Evaluations are cached by
// the tree's canonical key and every synthesized (area, delay) point
// feeds a global Pareto archive, which is what the paper plots in
// Figs 9-11. Thread-safe: the parallel A2C workers of RL-MUL-E share
// one evaluator, and concurrent requests for the same tree are
// deduplicated — one worker synthesizes, the rest wait on the result.
//
// The fast path prepares each design once (PPG + compressor-tree
// prefix shared across CPA variants), sizes with incremental STA, and
// fans the per-target synthesis out to a thread pool. Results are
// bit-identical to the serial legacy pipeline (RLMUL_FASTPATH=0).

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ct/compressor_tree.hpp"
#include "pareto/pareto.hpp"
#include "ppg/ppg.hpp"
#include "synth/synth.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace rlmul::synth {

/// Picks n target delays spanning the spec's achievable range
/// (tight prefix-adder synthesis to relaxed ripple synthesis of the
/// Wallace-initialized design).
std::vector<double> default_targets(const ppg::MultiplierSpec& spec,
                                    int n = 4);

struct DesignEval {
  std::vector<SynthesisResult> per_target;
  double sum_area = 0.0;
  double sum_delay = 0.0;
  double sum_power = 0.0;
};

/// Optional external (typically persistent, cross-run) evaluation
/// cache. The evaluator consults it before synthesizing a new tree and
/// offers every freshly synthesized result back. Implementations must
/// be thread-safe and must only return evaluations produced under the
/// same spec/target contract (see dsdb::Fingerprint). `key` is always
/// `tree.key()` on the tree entry points. The DesignPoint overloads
/// carry the full point (PPG family + optional pinned CPA graph); the
/// defaults decline/drop so tree-only caches keep working unchanged —
/// point evaluations then simply miss.
class EvalCache {
 public:
  virtual ~EvalCache() = default;
  virtual bool lookup(const std::string& key, const ct::CompressorTree& tree,
                      DesignEval& out) = 0;
  virtual void store(const std::string& key, const ct::CompressorTree& tree,
                     const DesignEval& eval) = 0;
  /// `key` is DesignPoint::key(spec) — tree key + cpa/ppg markers.
  virtual bool lookup_point(const std::string& key,
                            const ppg::DesignPoint& point, DesignEval& out) {
    (void)key;
    (void)point;
    (void)out;
    return false;
  }
  virtual void store_point(const std::string& key,
                           const ppg::DesignPoint& point,
                           const DesignEval& eval) {
    (void)key;
    (void)point;
    (void)eval;
  }
};

struct EvaluatorOptions {
  /// Run the equivalence gate (the paper's Yosys+ABC `cec` step) on
  /// every new design before scoring it; throws std::runtime_error on
  /// a functional mismatch. Costs one randomized simulation per unique
  /// design.
  bool verify_functionality = false;
  std::uint64_t verify_vectors = 2048;
  /// Prepared-design synthesis with incremental STA. The environment
  /// variable RLMUL_FASTPATH=0 forces the legacy pipeline regardless
  /// (the A/B switch the benches compare against).
  bool fast_path = true;
  /// Evaluate the per-target constraints concurrently on the pool.
  /// Results are gathered in target order, so they are bit-identical
  /// to a serial evaluation.
  bool parallel_targets = true;
  /// >0: this evaluator owns a private pool of that many workers.
  /// 0: use the process-wide shared pool (RLMUL_SYNTH_THREADS).
  int synth_threads = 0;
  /// Cross-run cache (non-owning; must outlive the evaluator). Results
  /// served from it do NOT count as unique evaluations — the search
  /// budget is charged only for synthesis actually run.
  EvalCache* external_cache = nullptr;
  /// Maximum designs coalesced into one batched dispatch. Concurrent
  /// evaluate() calls enqueue their trees; the first caller to find no
  /// drain in progress pulls up to this many pending designs and runs
  /// them through the batched SoA pipeline (per-design results stay
  /// bit-identical to the single path). 1 disables batching and keeps
  /// the per-call path. The environment variable RLMUL_BATCH_EVAL
  /// overrides this (0 or 1 = off, N>1 = batch size) — the A/B switch
  /// the benches compare against.
  int batch = 16;
};

class BatchEvaluator;

/// Caller-supplied search-trajectory context for delta evaluation: the
/// evaluation key (tree.key() / point.key(spec)) of the design the new
/// one was derived from by a single move. An empty key means "no
/// parent" (scratch evaluation). Purely an optimization hint — results
/// are bit-identical with or without it, and a hint whose parent state
/// was evicted or is incompatible just falls back to a scratch build
/// (counted in eval_delta_fallbacks).
struct ParentHint {
  std::string key;
};

class DesignEvaluator {
 public:
  /// Empty `targets` selects default_targets(spec).
  explicit DesignEvaluator(ppg::MultiplierSpec spec,
                           std::vector<double> targets = {},
                           const EvaluatorOptions& opts = {});
  ~DesignEvaluator();

  const ppg::MultiplierSpec& spec() const { return spec_; }
  const std::vector<double>& targets() const { return targets_; }
  /// Resolved batch size (EvaluatorOptions::batch after the
  /// RLMUL_BATCH_EVAL override); 1 = batching off.
  int batch() const { return batch_; }

  /// Synthesizes (or returns the cached result for) a tree. With
  /// batching on, concurrent calls coalesce: the tree joins the
  /// pending queue and either this caller drains a batch or it waits
  /// for the drain that covers it.
  ///
  /// `hint` names the design this one is a single move away from. On
  /// the per-call path (batching off, or extended points) a retained
  /// parent state lets synthesis rebuild only the changed cone and
  /// warm-start timing — bit-identical results, much less work. The
  /// batched SoA pipeline ignores hints (its throughput comes from
  /// lane packing, and its designs are typically unrelated).
  /// RLMUL_DELTA_EVAL=0 disables delta evaluation entirely (today's
  /// pipeline, byte for byte); RLMUL_DELTA_PARENTS caps the retained
  /// parent LRU (default 16).
  DesignEval evaluate(const ct::CompressorTree& tree,
                      const ParentHint& hint = {});

  /// Evaluates a full design point. A plain point (spec's PPG family,
  /// no pinned CPA) routes through evaluate(tree) — same keys, same
  /// batching, bit-identical results. PPG-toggled or CPA-pinned points
  /// use the per-call path under an extended cache key; `point.tree`
  /// must have been built against point.resolved_spec(spec()).
  DesignEval evaluate(const ppg::DesignPoint& point,
                      const ParentHint& hint = {});

  /// Evaluates many trees at once (results in input order) — the bulk
  /// entry SA populations, EnvPool rollouts and warm-replay use so one
  /// caller fills a whole batch by itself. Equivalent to calling
  /// evaluate() per tree (same caching, budget and dsdb behavior);
  /// throws the first failing design's error.
  std::vector<DesignEval> evaluate_batch(
      const std::vector<ct::CompressorTree>& trees);

  /// Bulk entry with per-design parent hints (`hints` empty or sized
  /// like `trees`; missing/empty entries mean no parent). Hints only
  /// take effect when batching is off — see evaluate().
  std::vector<DesignEval> evaluate_batch(
      const std::vector<ct::CompressorTree>& trees,
      const std::vector<ParentHint>& hints);

  /// Point-wise bulk entry: plain points coalesce through the tree
  /// batch path; extended points evaluate per call.
  std::vector<DesignEval> evaluate_batch(
      const std::vector<ppg::DesignPoint>& points);

  /// Point-wise bulk entry with parent hints; extended points use
  /// their hint even when tree batching is on (they never coalesce).
  std::vector<DesignEval> evaluate_batch(
      const std::vector<ppg::DesignPoint>& points,
      const std::vector<ParentHint>& hints);

  /// Whether delta evaluation is active (fast path on and
  /// RLMUL_DELTA_EVAL != 0).
  bool delta_eval() const { return delta_; }

  /// Weighted, normalized cost: the Wallace-initial design costs
  /// exactly w_area + w_delay, so weights compose across specs.
  double cost(const DesignEval& eval, double w_area, double w_delay) const;

  /// Unique designs synthesized *by this process* so far (the paper's
  /// search budget is counted in EDA-tool calls). Results admitted or
  /// served from an external cache are free and not counted here.
  std::size_t num_unique_evaluations() const;

  /// Installs a known-good (tree, eval) pair into the in-memory cache
  /// and Pareto archive without synthesizing and without charging the
  /// budget — the warm-start entry point. Returns false if the key is
  /// already cached or currently being synthesized.
  bool admit(const ct::CompressorTree& tree, const DesignEval& eval);

  /// Non-dominated (area, delay) points across every design and target
  /// synthesized through this evaluator. Payload = design index.
  pareto::Front frontier() const;

  /// Design for a frontier payload. (By value: the store may be
  /// appended to concurrently by other workers.)
  ct::CompressorTree design(std::size_t index) const;
  /// Full design point for a frontier payload — plain evaluations come
  /// back as {spec().ppg, tree, no pinned CPA}.
  ppg::DesignPoint point_of(std::size_t index) const;
  std::size_t num_designs() const;

  /// Per-design results (for table-style reporting).
  DesignEval eval_of(std::size_t index) const;

  /// Per-evaluator throughput counters (process-wide totals live in
  /// util::perf_counters()).
  struct Stats {
    std::size_t unique_evals = 0;    ///< designs synthesized
    std::size_t cache_hits = 0;      ///< served from the in-memory cache
    std::size_t inflight_waits = 0;  ///< duplicate work deduplicated
    std::size_t external_hits = 0;   ///< served from the external cache
    std::size_t admitted = 0;        ///< warm-start records admitted
    std::size_t eval_batches = 0;    ///< batched dispatches drained
    std::size_t eval_batched_designs = 0;  ///< designs across all batches
    std::size_t eval_batch_coalesce_us = 0;  ///< summed pending-queue wait
  };
  Stats stats() const;

 private:
  /// A design awaiting the next batched dispatch.
  struct Pending {
    ct::CompressorTree tree;
    std::chrono::steady_clock::time_point since;
  };

  DesignEval compute(const ct::CompressorTree& tree, const std::string& key,
                     const ParentHint& hint) const;
  /// compute() generalized to an extended point (PPG toggle and/or
  /// pinned CPA): prepares the resolved design and walks its menu.
  DesignEval compute_point(const ppg::DesignPoint& point,
                           const std::string& key,
                           const ParentHint& hint) const;
  /// Per-call evaluation of an extended point under `key` — the
  /// point-typed mirror of the unbatched evaluate(tree) body (same
  /// in-flight dedup, external-cache and accounting behavior).
  DesignEval evaluate_point_uncoalesced(const ppg::DesignPoint& point,
                                        const std::string& key,
                                        const ParentHint& hint = {});
  /// Shared tail of the delta-mode compute paths: runs the targets
  /// over a delta-prepared design, seals it and retains it in the
  /// parent LRU under `key`, and bumps the hit/fallback counters.
  DesignEval run_delta(const std::shared_ptr<PreparedDesign>& prep,
                       const ppg::MultiplierSpec& resolved,
                       const std::string& key, const ParentHint& hint) const;
  /// Parent LRU (delta evaluation): sealed prepared designs of recent
  /// evaluations, keyed by their evaluation key.
  std::shared_ptr<const PreparedDesign> parent_get(
      const std::string& key) const;
  void parent_put(const std::string& key,
                  std::shared_ptr<const PreparedDesign> prep) const;
  DesignEval evaluate_batched(const ct::CompressorTree& tree);
  /// Pulls up to batch_ pending designs (my_key first), runs them as
  /// one batched dispatch with mu_ released, installs the results and
  /// wakes every waiter. Keys this drain resolved are added to
  /// `resolved` when non-null. Enter with `lock` held and draining_
  /// set; returns with `lock` held and draining_ clear. Throws
  /// my_key's own failure (other failures re-enqueue via their
  /// waiters).
  void drain_locked(util::UniqueLock& lock, const std::string& my_key,
                    std::unordered_set<std::string>* resolved);
  /// Installs into index_/designs_/points_/evals_/frontier_; caller
  /// holds mu_. `point` is null for plain tree evaluations.
  std::size_t install_locked(const std::string& key,
                             const ct::CompressorTree& tree,
                             const DesignEval& eval,
                             const ppg::DesignPoint* point = nullptr)
      RLMUL_REQUIRES(mu_);

  ppg::MultiplierSpec spec_;
  std::vector<double> targets_;
  EvaluatorOptions opts_;
  bool fast_path_ = true;  ///< opts_.fast_path, after RLMUL_FASTPATH
  int batch_ = 1;          ///< opts_.batch, after RLMUL_BATCH_EVAL
  bool delta_ = false;     ///< fast_path_ after RLMUL_DELTA_EVAL
  std::size_t parents_cap_ = 16;  ///< RLMUL_DELTA_PARENTS
  double ref_area_ = 1.0;
  double ref_delay_ = 1.0;

  std::unique_ptr<util::ThreadPool> owned_pool_;
  util::ThreadPool* pool_ = nullptr;
  std::unique_ptr<BatchEvaluator> batch_eval_;  ///< non-null iff batch_ > 1

  mutable util::Mutex mu_;
  util::CondVar cv_;  ///< signals drain/in-flight completion; pairs mu_
  std::unordered_set<std::string> in_flight_ RLMUL_GUARDED_BY(mu_);
  /// Designs queued for the next batched dispatch: FIFO key order plus
  /// the tree + enqueue time per key. Keys move pending -> in_flight_
  /// when a drain picks them up. pending_order_ may hold stale keys
  /// (already drained); drains skip entries absent from pending_.
  std::unordered_map<std::string, Pending> pending_ RLMUL_GUARDED_BY(mu_);
  std::deque<std::string> pending_order_ RLMUL_GUARDED_BY(mu_);
  bool draining_ RLMUL_GUARDED_BY(mu_) = false;
  std::unordered_map<std::string, std::size_t> index_ RLMUL_GUARDED_BY(mu_);
  std::vector<ct::CompressorTree> designs_ RLMUL_GUARDED_BY(mu_);
  /// Aligned with designs_: the full point of each evaluation (plain
  /// tree evaluations store {spec_.ppg, tree, no pinned CPA}).
  std::vector<ppg::DesignPoint> points_ RLMUL_GUARDED_BY(mu_);
  std::vector<DesignEval> evals_ RLMUL_GUARDED_BY(mu_);
  pareto::Front frontier_ RLMUL_GUARDED_BY(mu_);

  /// Leaf lock for the throughput counters: batch drains bump them
  /// both inside and outside mu_'s critical sections, so they get
  /// their own mutex (lock order: mu_ before stats_mu_, never the
  /// reverse).
  mutable util::Mutex stats_mu_;
  Stats stats_ RLMUL_GUARDED_BY(stats_mu_);

  /// Leaf lock for the delta-parent LRU (same rank as stats_mu_: never
  /// taken with another lock held inside, and compute() runs outside
  /// mu_). Values are sealed immutable PreparedDesigns, so readers
  /// share them freely once the shared_ptr is out.
  struct ParentSlot {
    std::shared_ptr<const PreparedDesign> prep;
    std::uint64_t tick = 0;
  };
  mutable util::Mutex parents_mu_;
  mutable std::unordered_map<std::string, ParentSlot> parents_
      RLMUL_GUARDED_BY(parents_mu_);
  mutable std::uint64_t parents_tick_ RLMUL_GUARDED_BY(parents_mu_) = 0;
};

}  // namespace rlmul::synth
