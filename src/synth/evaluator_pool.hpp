#pragma once
// Shared-evaluator registry for multi-job processes (the serve
// scheduler): jobs whose (spec, target set) contracts match share one
// DesignEvaluator — and with it the in-memory evaluation cache, the
// in-flight dedup, the Pareto archive and the batching coalescer — so
// two clients optimizing the same multiplier never synthesize the same
// design twice. Entries are weak: an evaluator lives exactly as long
// as some job holds it, and a later job with the same contract revives
// nothing stale (a dead weak_ptr is replaced by a fresh evaluator).
//
// The optional CacheFactory attaches an external EvalCache (typically
// a dsdb::EvaluatorBinding over the server's single store) to every
// evaluator the pool constructs; the returned shared_ptr keeps the
// cache alive alongside the evaluator it is bound to.

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ppg/ppg.hpp"
#include "synth/evaluator.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace rlmul::synth {

class EvaluatorPool {
 public:
  using CacheFactory = std::function<std::unique_ptr<EvalCache>(
      const ppg::MultiplierSpec&, const std::vector<double>&)>;

  /// `base` seeds every constructed evaluator's options (its
  /// external_cache slot is overwritten by the factory's cache).
  explicit EvaluatorPool(EvaluatorOptions base = {},
                         CacheFactory cache_factory = nullptr)
      : base_(base), cache_factory_(std::move(cache_factory)) {}

  /// The shared evaluator for (spec, targets), constructing it on
  /// first use. Empty `targets` resolves to default_targets(spec) so
  /// explicit and defaulted callers land on the same instance.
  /// Construction runs under the pool lock: concurrent first-acquires
  /// of one contract must produce one evaluator, and the constructor's
  /// reference evaluation is paid once.
  std::shared_ptr<DesignEvaluator> acquire(const ppg::MultiplierSpec& spec,
                                           std::vector<double> targets = {});

  /// Evaluators currently alive (held by at least one job).
  std::size_t live() const;

 private:
  /// An evaluator plus the external cache it is bound to; the aliased
  /// shared_ptr handed to callers owns this holder.
  struct Holder {
    std::unique_ptr<EvalCache> cache;
    std::unique_ptr<DesignEvaluator> evaluator;
  };

  static std::string key_of(const ppg::MultiplierSpec& spec,
                            const std::vector<double>& targets);

  EvaluatorOptions base_;
  CacheFactory cache_factory_;
  mutable util::Mutex mu_;
  std::unordered_map<std::string, std::weak_ptr<DesignEvaluator>> map_
      RLMUL_GUARDED_BY(mu_);
};

}  // namespace rlmul::synth
