#include <algorithm>
#include <utility>

#include "synth/synth.hpp"
#include "util/perf_counters.hpp"

namespace rlmul::synth {

using netlist::CellLibrary;
using netlist::CpaKind;
using netlist::Netlist;

namespace {

std::size_t cpa_index(CpaKind cpa) {
  for (std::size_t i = 0; i < std::size(netlist::kAllCpaKinds); ++i) {
    if (netlist::kAllCpaKinds[i] == cpa) return i;
  }
  return 0;  // unreachable: kAllCpaKinds enumerates every kind
}

}  // namespace

PreparedDesign::PreparedDesign(const ppg::MultiplierSpec& spec,
                               const ct::CompressorTree& tree)
    : spec_(spec), prefix_(ppg::build_multiplier_prefix(spec, tree)) {
  util::perf_counters().netlists_built.fetch_add(1, std::memory_order_relaxed);
}

PreparedDesign::PreparedDesign(const ppg::MultiplierSpec& spec,
                               const ct::CompressorTree& tree,
                               prefix::PrefixGraph cpa)
    : spec_(spec),
      prefix_(ppg::build_multiplier_prefix(spec, tree)),
      pinned_(true),
      pinned_graph_(std::move(cpa)),
      pinned_label_(netlist::cpa_kind_of_graph(pinned_graph_)) {
  util::perf_counters().netlists_built.fetch_add(1, std::memory_order_relaxed);
}

const PreparedDesign::CpaEntry& PreparedDesign::entry(std::size_t idx) const {
  CpaEntry& e = entries_[idx];
  std::call_once(e.once, [&] {
    if (delta_) {
      build_entry_delta(idx, e);
    } else {
      e.netlist = pinned_
                      ? ppg::attach_cpa(prefix_, spec_, pinned_graph_)
                      : ppg::attach_cpa(prefix_, spec_,
                                        netlist::kAllCpaKinds[idx]);
      e.graph = sta::TimingGraph::build(e.netlist, CellLibrary::nangate45());
    }
    util::perf_counters().cpa_variants_built.fetch_add(
        1, std::memory_order_relaxed);
  });
  return e;
}

CpaKind PreparedDesign::cpa_at(std::size_t idx) const {
  return pinned_ ? pinned_label_ : netlist::kAllCpaKinds[idx];
}

const Netlist& PreparedDesign::netlist(CpaKind cpa) const {
  return entry(pinned_ ? 0 : cpa_index(cpa)).netlist;
}

const Netlist& PreparedDesign::netlist_at(std::size_t idx) const {
  return entry(idx).netlist;
}

const sta::TimingGraph& PreparedDesign::graph_at(std::size_t idx) const {
  return *entry(idx).graph;
}

SynthesisResult PreparedDesign::synthesize(double target_delay_ns) const {
  if (delta_) return synthesize_delta(target_delay_ns);
  const CellLibrary& lib = CellLibrary::nangate45();
  SynthesisOptions opts;
  opts.target_delay_ns = target_delay_ns;

  // Same selection rule as the legacy per-CPA loop: kAllCpaKinds is
  // ordered by area, so stop at the first architecture that meets the
  // target; otherwise keep the fastest. Power is deferred to the one
  // CPA that wins (it never enters the selection), which skips three
  // estimates per call on the common early-exit path.
  SynthesisResult best;
  Netlist best_nl;
  bool have = false;
  for (std::size_t i = 0; i < menu_size(); ++i) {
    const CpaEntry& e = entry(i);
    Netlist nl = e.netlist;  // variants all 0; timing graph still valid
    util::perf_counters().netlists_reused.fetch_add(1,
                                                    std::memory_order_relaxed);
    sta::IncrementalTimer timer(nl, lib, e.graph);
    SynthesisResult res =
        synthesize_with_timer(nl, lib, opts, timer, /*compute_power=*/false);
    res.cpa = cpa_at(i);
    const bool better =
        !have ||
        (res.met_target && !best.met_target) ||
        (res.met_target == best.met_target &&
         (res.met_target ? res.area_um2 < best.area_um2
                         : res.delay_ns < best.delay_ns));
    if (better) {
      best = res;
      best_nl = std::move(nl);
      have = true;
    }
    if (res.met_target) break;
  }
  const double clock_ns = std::max(target_delay_ns, best.delay_ns);
  best.power_mw = estimate_power(best_nl, lib, clock_ns).total_mw();
  return best;
}

}  // namespace rlmul::synth
