#pragma once
// Synthesis flow: the OpenROAD/NanGate stand-in that turns a design
// point (PPG kind + compressor tree + CPA) into PPA numbers under a
// target delay constraint. Mirrors what the paper's reward loop asks of
// the EDA tools:
//
//   1. map the design onto library cells (netlist builder),
//   2. size gates against the target delay (greedy critical-path
//      upsizing + slack-driven area recovery),
//   3. pick the cheaper CPA architecture that still meets timing,
//   4. report area / achieved delay / power.
//
// Tight constraints therefore cost area (bigger drives, prefix adder)
// and loose constraints recover it, which produces the area-delay
// trade-off curves of Figs 9-11.

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "ct/compressor_tree.hpp"
#include "netlist/cell_library.hpp"
#include "netlist/netlist.hpp"
#include "ppg/ppg.hpp"
#include "sta/sta.hpp"

namespace rlmul::synth {

struct PowerReport {
  double dynamic_mw = 0.0;
  double leakage_mw = 0.0;
  double total_mw() const { return dynamic_mw + leakage_mw; }
};

/// Supply voltage of the power model, shared by every estimator
/// (including the batched evaluator's strided mirror of
/// estimate_power, which must use the very same constant to stay
/// bit-identical).
inline constexpr double kVddVolts = 1.1;

/// Signal probability (P[net == 1]) propagation under an independence
/// assumption — the activity model behind estimate_power. Depends only
/// on connectivity (never on gate variants), so one result serves
/// every sizing of the same netlist.
std::vector<double> signal_probabilities(const netlist::Netlist& nl);

/// Same propagation over a caller-provided topological order (e.g. a
/// cached sta::TimingGraph::topo), skipping the re-sort the plain
/// overload pays. `topo` must equal nl.topo_order().
std::vector<double> signal_probabilities(
    const netlist::Netlist& nl, const std::vector<netlist::GateId>& topo);

/// Probabilistic power estimate: signal probabilities are propagated
/// under an independence assumption, per-net toggle activity is
/// 2*p*(1-p) per cycle, and switching + internal energies are summed at
/// the given clock period.
PowerReport estimate_power(const netlist::Netlist& nl,
                           const netlist::CellLibrary& lib,
                           double clock_ns);

/// estimate_power with the probabilities and per-net loads already in
/// hand: `p` from signal_probabilities (connectivity-only, cacheable
/// across sizings) and `load` equal to compute_loads of the netlist as
/// sized (the delta path passes the winning timer's converged loads,
/// which the incremental-STA contract keeps identical to a fresh
/// compute_loads). Summation order matches estimate_power exactly, so
/// the result is bit-identical.
PowerReport estimate_power_given(const netlist::Netlist& nl,
                                 const netlist::CellLibrary& lib,
                                 double clock_ns,
                                 const std::vector<double>& p,
                                 const std::vector<double>& load);

/// Monte-Carlo power estimate: simulates random input vectors and
/// counts the actual per-net toggles (zero-delay model). Slower but
/// free of the independence assumption; the tests cross-validate the
/// two estimators against each other.
PowerReport simulate_power(const netlist::Netlist& nl,
                           const netlist::CellLibrary& lib, double clock_ns,
                           int num_vectors, std::uint64_t seed = 1);

struct SynthesisOptions {
  double target_delay_ns = 1.0;
  int max_upsize_passes = 24;
  bool area_recovery = true;
  /// Worklist-based incremental STA during sizing: each pass
  /// re-propagates arrival times only downstream of the gates whose
  /// drive changed. Off = one full sta::analyze per pass (the
  /// verification reference; results are identical either way).
  bool incremental_sta = true;
};

struct SynthesisResult {
  double area_um2 = 0.0;
  double delay_ns = 0.0;  ///< achieved critical delay after sizing
  double power_mw = 0.0;
  bool met_target = false;
  netlist::CpaKind cpa = netlist::CpaKind::kRippleCarry;
  int num_gates = 0;
};

/// Sizes the netlist in place against the option's target delay.
void size_for_target(netlist::Netlist& nl, const netlist::CellLibrary& lib,
                     const SynthesisOptions& opts);

/// Runs sizing + reporting on an already-built netlist.
SynthesisResult synthesize_netlist(netlist::Netlist& nl,
                                   const netlist::CellLibrary& lib,
                                   const SynthesisOptions& opts);

/// Sizing + reporting against an existing incremental timer. The timer
/// must have been constructed over `nl` and be in sync with it (all
/// variants at 0 for a freshly prepared netlist). Power estimation is
/// skipped when `compute_power` is false — the fast path defers it to
/// the one CPA architecture that wins.
SynthesisResult synthesize_with_timer(netlist::Netlist& nl,
                                      const netlist::CellLibrary& lib,
                                      const SynthesisOptions& opts,
                                      sta::IncrementalTimer& timer,
                                      bool compute_power = true);

/// Full design-point synthesis: builds one netlist per CPA
/// architecture, sizes each, returns the best (met-timing designs by
/// area, otherwise fastest). Routed through a PreparedDesign, so the
/// PPG + compressor-tree prefix is built once and shared by every CPA
/// variant tried.
SynthesisResult synthesize_design(const ppg::MultiplierSpec& spec,
                                  const ct::CompressorTree& tree,
                                  double target_delay_ns);

/// Full design-point synthesis for a DesignPoint: menu points sweep the
/// named CPA architectures exactly like the tree overload; pinned
/// points synthesize their one prefix graph. The spec is the *base*
/// spec — the point's PPG family overrides it, and `point.tree` must
/// have been built against the resolved spec's pp heights.
SynthesisResult synthesize_design(const ppg::MultiplierSpec& spec,
                                  const ppg::DesignPoint& point,
                                  double target_delay_ns);

/// Reference implementation of synthesize_design: rebuilds the full
/// netlist per CPA and runs one full sta::analyze per sizing pass.
/// Kept as the slow cross-check the fast-path tests compare against
/// (and the RLMUL_FASTPATH=0 A/B baseline).
SynthesisResult synthesize_design_legacy(const ppg::MultiplierSpec& spec,
                                         const ct::CompressorTree& tree,
                                         double target_delay_ns);

/// A design point prepared for repeated synthesis: the PPG +
/// compressor-tree prefix is built once, each CPA variant is appended
/// onto a copy on first use (concurrently safe), and the per-CPA
/// timing structure (topo order, fanout, static loads) is shared by
/// every target synthesized through it. `synthesize` is `const` and
/// thread-safe: concurrent targets size private copies of the prepared
/// netlists, so the multi-constraint evaluation can fan out.
class PreparedDesign {
 public:
  PreparedDesign(const ppg::MultiplierSpec& spec,
                 const ct::CompressorTree& tree);

  /// Pinned-CPA variant: the menu collapses to the one given prefix
  /// graph (menu_size() == 1), labeled by cpa_kind_of_graph. Everything
  /// else — sizing, selection (trivial), deferred power — matches the
  /// menu path, so a point pinned to a named graph synthesizes to the
  /// same numbers that architecture gets in a sweep.
  PreparedDesign(const ppg::MultiplierSpec& spec,
                 const ct::CompressorTree& tree, prefix::PrefixGraph cpa);

  /// Tag selecting the delta-evaluation constructors.
  struct DeltaMode {};

  /// Delta mode: records a build trace so this design can later serve
  /// as a parent, and — when `parent` is a compatible sealed delta
  /// design of the same spec — clones the parent's netlist and rebuilds
  /// only the fan-out cone of the changed compressor cells, then
  /// warm-starts each CPA entry's baseline timing state from the
  /// parent's converged state. Synthesis results are bit-identical to
  /// the plain constructors (property-tested contract).
  PreparedDesign(DeltaMode, const ppg::MultiplierSpec& spec,
                 const ct::CompressorTree& tree,
                 std::shared_ptr<const PreparedDesign> parent);
  PreparedDesign(DeltaMode, const ppg::MultiplierSpec& spec,
                 const ct::CompressorTree& tree, prefix::PrefixGraph cpa,
                 std::shared_ptr<const PreparedDesign> parent);

  bool delta_mode() const { return delta_; }
  /// Whether construction actually patched against a parent (false when
  /// no parent was given or it was incompatible — counted as a
  /// fallback by the evaluator).
  bool used_parent() const { return parent_ != nullptr; }

  /// Finalizes a delta design for retention as a future parent: forces
  /// every menu entry (netlist, timing graph, baseline state) and drops
  /// the parent reference plus build-time maps, so retained states
  /// never chain and later readers only touch immutable data. No-op for
  /// non-delta designs.
  void seal_for_retention() const;

  PreparedDesign(const PreparedDesign&) = delete;
  PreparedDesign& operator=(const PreparedDesign&) = delete;

  const ppg::MultiplierSpec& spec() const { return spec_; }

  /// Same contract (and bit-identical result) as synthesize_design.
  SynthesisResult synthesize(double target_delay_ns) const;

  /// The prepared netlist for one CPA kind (variants at 0); built on
  /// first use. The evaluator runs its equivalence gate on this.
  /// Menu designs only; a pinned design exposes netlist_at(0).
  const netlist::Netlist& netlist(netlist::CpaKind cpa) const;

  /// Number of CPA architectures in the full menu (== kAllCpaKinds, in
  /// the same area order synthesize() walks them in) — the static upper
  /// bound menu_size() never exceeds.
  static constexpr std::size_t num_cpa() {
    return std::size(netlist::kAllCpaKinds);
  }
  /// Entries synthesize() actually walks: num_cpa() for menu designs,
  /// 1 for pinned designs.
  std::size_t menu_size() const { return pinned_ ? 1 : kNumCpa; }
  /// The reporting label of menu entry `idx` (kAllCpaKinds[idx] for
  /// menu designs, the pinned graph's label at index 0 otherwise).
  netlist::CpaKind cpa_at(std::size_t idx) const;
  /// Prepared netlist / shared timing structure by menu index; built on
  /// first use. The batched evaluator walks the same menu in the same
  /// order, sizing all targets of one architecture per sweep.
  const netlist::Netlist& netlist_at(std::size_t idx) const;
  const sta::TimingGraph& graph_at(std::size_t idx) const;

 private:
  static constexpr std::size_t kNumCpa = std::size(netlist::kAllCpaKinds);
  struct CpaEntry {
    std::once_flag once;
    netlist::Netlist netlist;
    std::shared_ptr<const sta::TimingGraph> graph;
  };
  /// Delta-mode companions to CpaEntry, built inside the same
  /// call_once: the variants-at-0 timing fixpoint each per-target timer
  /// adopts instead of running a full update, plus lazily cached
  /// connectivity-only signal probabilities for the deferred power
  /// estimate.
  struct DeltaEntry {
    sta::TimingState baseline;
    std::once_flag probs_once;
    std::vector<double> probs;
  };
  const CpaEntry& entry(std::size_t idx) const;
  /// Delta-mode entry build: patches the CPA region from the parent
  /// when the final rows and adder match, and warm-starts the baseline.
  void build_entry_delta(std::size_t idx, CpaEntry& e) const;
  const std::vector<double>& entry_probs(std::size_t idx) const;
  SynthesisResult synthesize_delta(double target_delay_ns) const;
  /// Shared tail of the DeltaMode constructors: replays the compressor
  /// tree against the parent's trace when compatible (patch path) or
  /// from scratch while recording this design's own trace.
  void init_delta(std::shared_ptr<const PreparedDesign> parent);

  ppg::MultiplierSpec spec_;
  ppg::MultiplierPrefix prefix_;
  bool pinned_ = false;
  prefix::PrefixGraph pinned_graph_;
  netlist::CpaKind pinned_label_ = netlist::CpaKind::kCustom;
  mutable std::array<CpaEntry, kNumCpa> entries_;

  // Delta-evaluation state (empty in legacy mode).
  bool delta_ = false;
  ct::CompressorTree tree_;
  netlist::CtBuildTrace trace_;
  /// CT replay maps + twinned rows; consumed by entry builds, cleared
  /// by seal_for_retention.
  mutable netlist::CtReplayResult ct_;
  mutable std::shared_ptr<const PreparedDesign> parent_;
  mutable std::array<DeltaEntry, kNumCpa> delta_entries_;
};

/// Per-net slacks against a target (backward required-time pass);
/// used by sizing and exposed for tests.
std::vector<double> net_slacks(const netlist::Netlist& nl,
                               const netlist::CellLibrary& lib,
                               double target_ps);

/// Same backward pass over precomputed timing state (no internal
/// sta::analyze); `rep` must describe the current netlist.
std::vector<double> net_slacks(const netlist::Netlist& nl,
                               const netlist::CellLibrary& lib,
                               double target_ps,
                               const sta::TimingReport& rep);

}  // namespace rlmul::synth
