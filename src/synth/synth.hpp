#pragma once
// Synthesis flow: the OpenROAD/NanGate stand-in that turns a design
// point (PPG kind + compressor tree + CPA) into PPA numbers under a
// target delay constraint. Mirrors what the paper's reward loop asks of
// the EDA tools:
//
//   1. map the design onto library cells (netlist builder),
//   2. size gates against the target delay (greedy critical-path
//      upsizing + slack-driven area recovery),
//   3. pick the cheaper CPA architecture that still meets timing,
//   4. report area / achieved delay / power.
//
// Tight constraints therefore cost area (bigger drives, prefix adder)
// and loose constraints recover it, which produces the area-delay
// trade-off curves of Figs 9-11.

#include <cstdint>
#include <vector>

#include "ct/compressor_tree.hpp"
#include "netlist/cell_library.hpp"
#include "netlist/netlist.hpp"
#include "ppg/ppg.hpp"

namespace rlmul::synth {

struct PowerReport {
  double dynamic_mw = 0.0;
  double leakage_mw = 0.0;
  double total_mw() const { return dynamic_mw + leakage_mw; }
};

/// Probabilistic power estimate: signal probabilities are propagated
/// under an independence assumption, per-net toggle activity is
/// 2*p*(1-p) per cycle, and switching + internal energies are summed at
/// the given clock period.
PowerReport estimate_power(const netlist::Netlist& nl,
                           const netlist::CellLibrary& lib,
                           double clock_ns);

/// Monte-Carlo power estimate: simulates random input vectors and
/// counts the actual per-net toggles (zero-delay model). Slower but
/// free of the independence assumption; the tests cross-validate the
/// two estimators against each other.
PowerReport simulate_power(const netlist::Netlist& nl,
                           const netlist::CellLibrary& lib, double clock_ns,
                           int num_vectors, std::uint64_t seed = 1);

struct SynthesisOptions {
  double target_delay_ns = 1.0;
  int max_upsize_passes = 24;
  bool area_recovery = true;
};

struct SynthesisResult {
  double area_um2 = 0.0;
  double delay_ns = 0.0;  ///< achieved critical delay after sizing
  double power_mw = 0.0;
  bool met_target = false;
  netlist::CpaKind cpa = netlist::CpaKind::kRippleCarry;
  int num_gates = 0;
};

/// Sizes the netlist in place against the option's target delay.
void size_for_target(netlist::Netlist& nl, const netlist::CellLibrary& lib,
                     const SynthesisOptions& opts);

/// Runs sizing + reporting on an already-built netlist.
SynthesisResult synthesize_netlist(netlist::Netlist& nl,
                                   const netlist::CellLibrary& lib,
                                   const SynthesisOptions& opts);

/// Full design-point synthesis: builds one netlist per CPA
/// architecture, sizes each, returns the best (met-timing designs by
/// area, otherwise fastest).
SynthesisResult synthesize_design(const ppg::MultiplierSpec& spec,
                                  const ct::CompressorTree& tree,
                                  double target_delay_ns);

/// Per-net slacks against a target (backward required-time pass);
/// used by sizing and exposed for tests.
std::vector<double> net_slacks(const netlist::Netlist& nl,
                               const netlist::CellLibrary& lib,
                               double target_ps);

}  // namespace rlmul::synth
