#include "synth/batch_eval.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <future>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "nt/arena.hpp"
#include "sim/simulator.hpp"
#include "sta/batch_sweep.hpp"
#include "util/perf_counters.hpp"
#include "util/rng.hpp"

namespace rlmul::synth {

using netlist::CellLibrary;
using netlist::Gate;
using netlist::GateId;
using netlist::NetId;
using netlist::Netlist;

namespace {

/// One delay target's trajectory through the CPA menu, plus the winner
/// snapshot (variants + loads) that power is computed from at the end.
struct LaneState {
  double target_ps = 0.0;
  bool active = true;  ///< still walking the CPA menu
  bool have = false;
  SynthesisResult best;
  std::size_t best_cpa = 0;
  std::vector<std::int32_t> best_variants;
  std::vector<double> best_loads;
};

/// Mirror of estimate_power over a winner snapshot: same loop order,
/// same expressions, with the timer-maintained loads standing in for
/// compute_loads (they are bit-identical by the incremental-STA load
/// invariant) and the connectivity-only signal probabilities shared
/// across targets.
double power_from_snapshot(const Netlist& nl, const CellLibrary& lib,
                           const std::vector<double>& p,
                           const std::vector<double>& load,
                           const std::vector<std::int32_t>& variants,
                           double clock_ns) {
  PowerReport rep;
  if (clock_ns <= 0.0) return rep.total_mw();
  const double freq_ghz = 1.0 / clock_ns;
  // Flat copies of the library's per-kind tables: a few dozen accessor
  // calls up front instead of one per gate/output in the sum below (the
  // table entries are the very doubles the accessors return).
  const int kinds = netlist::num_cell_kinds();
  std::vector<std::int32_t> kb(static_cast<std::size_t>(kinds) + 1, 0);
  for (int k = 0; k < kinds; ++k) {
    kb[static_cast<std::size_t>(k) + 1] =
        kb[static_cast<std::size_t>(k)] +
        lib.num_variants(static_cast<netlist::CellKind>(k));
  }
  std::vector<double> leak(static_cast<std::size_t>(kb[static_cast<
      std::size_t>(kinds)]));
  std::vector<double> ienergy(static_cast<std::size_t>(kinds));
  for (int k = 0; k < kinds; ++k) {
    const auto ck = static_cast<netlist::CellKind>(k);
    ienergy[static_cast<std::size_t>(k)] = lib.internal_energy(ck);
    for (int v = 0; v < lib.num_variants(ck); ++v) {
      leak[static_cast<std::size_t>(kb[static_cast<std::size_t>(k)] + v)] =
          lib.leakage(ck, v);
    }
  }
  double switching_fj = 0.0;
  double internal_fj = 0.0;
  double leakage_nw = 0.0;
  const auto& gates = nl.gates();
  for (std::size_t gi = 0; gi < gates.size(); ++gi) {
    const Gate& g = gates[gi];
    const std::size_t k = static_cast<std::size_t>(g.kind);
    leakage_nw += leak[static_cast<std::size_t>(kb[k]) +
                       static_cast<std::size_t>(variants[gi])];
    for (NetId out : g.outputs) {
      const double prob = p[static_cast<std::size_t>(out)];
      const double activity = 2.0 * prob * (1.0 - prob);
      switching_fj += 0.5 * activity * load[static_cast<std::size_t>(out)] *
                      kVddVolts * kVddVolts;
      internal_fj += activity * ienergy[k];
    }
  }
  rep.dynamic_mw = (switching_fj + internal_fj) * freq_ghz * 1e-3;
  rep.leakage_mw = leakage_nw * 1e-6;
  return rep.total_mw();
}

bool any_nonempty(const std::vector<std::vector<GateId>>& lists) {
  for (const auto& l : lists) {
    if (!l.empty()) return true;
  }
  return false;
}

/// The batched mirror of PreparedDesign::synthesize for every target at
/// once: per CPA architecture, all still-active targets size together
/// as lanes of one BatchTimer. Lanes evolve independently (private
/// variant/arrival/load state), so each lane's decision trajectory is
/// identical to a solo synthesize_with_timer run and the results are
/// bit-identical.
std::vector<SynthesisResult> synthesize_all_targets(
    const ppg::MultiplierSpec& spec, const ct::CompressorTree& tree,
    const std::string& key, const std::vector<double>& targets,
    const BatchOptions& opts) {
  const CellLibrary& lib = CellLibrary::nangate45();
  const PreparedDesign prep(spec, tree);

  if (opts.verify_functionality) {
    // Same gate, same seed, same message as DesignEvaluator::compute.
    const auto& nl = prep.netlist(netlist::CpaKind::kRippleCarry);
    util::Rng rng(0x5EC5EC ^ std::hash<std::string>{}(key));
    const auto rep =
        sim::check_equivalence(nl, spec, rng, 1 << 16, opts.verify_vectors);
    if (!rep.equivalent) {
      std::ostringstream msg;
      msg << "DesignEvaluator: functional mismatch (a=" << rep.a
          << ", b=" << rep.b << ", acc=" << rep.acc << ", got=" << rep.got
          << ", expect=" << rep.expect << ")";
      throw std::runtime_error(msg.str());
    }
  }

  const SynthesisOptions sopts;  // defaults, as PreparedDesign::synthesize
  const int T = static_cast<int>(targets.size());
  std::vector<LaneState> lanes_state(static_cast<std::size_t>(T));
  for (int t = 0; t < T; ++t) {
    lanes_state[static_cast<std::size_t>(t)].target_ps = targets[t] * 1000.0;
  }

  // Slabs live per worker thread and are recycled across designs and
  // CPA architectures — zero steady-state heap traffic, the same
  // frame discipline the tensor kernels use.
  thread_local nt::ScratchArena arena;

  std::vector<int> active;        // lane -> target index
  std::vector<GateId> path;
  for (std::size_t ci = 0; ci < prep.menu_size(); ++ci) {
    active.clear();
    for (int t = 0; t < T; ++t) {
      if (lanes_state[static_cast<std::size_t>(t)].active) active.push_back(t);
    }
    if (active.empty()) break;
    const int A = static_cast<int>(active.size());
    const Netlist& nl = prep.netlist_at(ci);
    const auto& gates = nl.gates();
    const int G = nl.num_gates();
    const int N = nl.num_nets();

    auto& counters = util::perf_counters();
    counters.netlists_reused.fetch_add(static_cast<std::uint64_t>(A),
                                       std::memory_order_relaxed);
    counters.synth_calls.fetch_add(static_cast<std::uint64_t>(A),
                                   std::memory_order_relaxed);

    arena.reset();
    sta::BatchTimer timer(nl, lib, prep.graph_at(ci), A, arena);

    // -- greedy critical-path upsizing (size_with_timer, per lane) ----
    std::vector<std::vector<GateId>> changed(static_cast<std::size_t>(A));
    std::vector<char> done(static_cast<std::size_t>(A), 0);
    for (int pass = 0; pass < sopts.max_upsize_passes; ++pass) {
      bool any = false;
      for (int l = 0; l < A; ++l) {
        auto& ch = changed[static_cast<std::size_t>(l)];
        ch.clear();
        if (done[static_cast<std::size_t>(l)] != 0) continue;
        const double target_ps =
            lanes_state[static_cast<std::size_t>(active[static_cast<
                std::size_t>(l)])].target_ps;
        if (timer.critical_ps(l) <= target_ps) {
          done[static_cast<std::size_t>(l)] = 1;
          continue;
        }
        timer.critical_path(l, path);
        for (GateId g : path) {
          const int v = timer.variant(l, g);
          if (v + 1 < timer.num_variants(g)) {
            timer.set_variant(l, g, v + 1);
            ch.push_back(g);
          }
        }
        if (ch.empty()) {
          done[static_cast<std::size_t>(l)] = 1;  // critical gates maxed out
        } else {
          any = true;
        }
      }
      if (!any) break;
      timer.update(changed);
    }

    // -- slack-driven area recovery (same pass, all lanes) ------------
    if (sopts.area_recovery) {
      std::vector<double> budget(static_cast<std::size_t>(A), 0.0);
      std::vector<std::vector<GateId>> downsized(static_cast<std::size_t>(A));
      for (int l = 0; l < A; ++l) {
        const std::size_t ls = static_cast<std::size_t>(l);
        const double target_ps =
            lanes_state[static_cast<std::size_t>(active[ls])].target_ps;
        budget[ls] = std::max(target_ps, timer.critical_ps(l));
      }
      // One strided backward pass refreshes every lane's slacks
      // (bit-identical to a pass per lane).
      timer.refresh_slacks(budget.data());
      for (int l = 0; l < A; ++l) {
        const std::size_t ls = static_cast<std::size_t>(l);
        for (GateId gi = 0; gi < G; ++gi) {
          const Gate& g = gates[static_cast<std::size_t>(gi)];
          const int v = timer.variant(l, gi);
          if (v == 0 || g.outputs.empty()) continue;
          const NetId out = g.outputs[0];
          const double penalty =
              (timer.drive_res(gi, v - 1) - timer.drive_res(gi, v)) *
              timer.load_ff(l, out);
          double out_slack = timer.slack(l, out);
          for (std::size_t o = 1; o < g.outputs.size(); ++o) {
            out_slack = std::min(out_slack, timer.slack(l, g.outputs[o]));
          }
          if (out_slack > 2.0 * penalty + 5.0) {
            timer.set_variant(l, gi, v - 1);
            downsized[ls].push_back(gi);
          }
        }
      }
      if (any_nonempty(downsized)) {
        timer.update(downsized);
        std::vector<std::vector<GateId>> revert(static_cast<std::size_t>(A));
        for (int l = 0; l < A; ++l) {
          const std::size_t ls = static_cast<std::size_t>(l);
          if (downsized[ls].empty()) continue;
          if (timer.critical_ps(l) > budget[ls] + 0.5) {
            for (GateId g : downsized[ls]) {
              timer.set_variant(l, g, timer.variant(l, g) + 1);
            }
            revert[ls] = downsized[ls];
          }
        }
        if (any_nonempty(revert)) timer.update(revert);
      }
    }

    // -- per-lane reporting + CPA selection (PreparedDesign rule) -----
    const int L = timer.lanes();
    const double* loads = timer.load_slab();
    for (int l = 0; l < A; ++l) {
      const int t = active[static_cast<std::size_t>(l)];
      LaneState& ls = lanes_state[static_cast<std::size_t>(t)];
      SynthesisResult res;
      double area = 0.0;  // netlist_area mirror: lib area in gate order
      for (GateId gi = 0; gi < G; ++gi) {
        area += timer.area(l, gi);
      }
      res.area_um2 = area;
      res.delay_ns = timer.critical_ps(l) / 1000.0;
      res.met_target = res.delay_ns <= targets[t] + 1e-9;
      res.num_gates = G;
      res.cpa = prep.cpa_at(ci);
      const bool better =
          !ls.have ||
          (res.met_target && !ls.best.met_target) ||
          (res.met_target == ls.best.met_target &&
           (res.met_target ? res.area_um2 < ls.best.area_um2
                           : res.delay_ns < ls.best.delay_ns));
      if (better) {
        ls.best = res;
        ls.have = true;
        ls.best_cpa = ci;
        ls.best_variants.resize(static_cast<std::size_t>(G));
        for (int g = 0; g < G; ++g) {
          ls.best_variants[static_cast<std::size_t>(g)] = timer.variant(l, g);
        }
        ls.best_loads.resize(static_cast<std::size_t>(N));
        for (int n = 0; n < N; ++n) {
          ls.best_loads[static_cast<std::size_t>(n)] =
              loads[static_cast<std::size_t>(n) * L + l];
        }
      }
      if (res.met_target) ls.active = false;
    }
  }

  // -- power for each winner only, from its snapshot ------------------
  std::array<std::vector<double>, PreparedDesign::num_cpa()> probs;
  std::vector<SynthesisResult> results(static_cast<std::size_t>(T));
  for (int t = 0; t < T; ++t) {
    LaneState& ls = lanes_state[static_cast<std::size_t>(t)];
    const Netlist& nl = prep.netlist_at(ls.best_cpa);
    auto& p = probs[ls.best_cpa];
    if (p.empty()) {
      p = signal_probabilities(nl, prep.graph_at(ls.best_cpa).topo);
    }
    const double clock_ns = std::max(targets[t], ls.best.delay_ns);
    ls.best.power_mw = power_from_snapshot(nl, lib, p, ls.best_loads,
                                           ls.best_variants, clock_ns);
    results[static_cast<std::size_t>(t)] = ls.best;
  }
  return results;
}

}  // namespace

BatchEvaluator::BatchEvaluator(ppg::MultiplierSpec spec,
                               std::vector<double> targets,
                               const BatchOptions& opts)
    : spec_(spec), targets_(std::move(targets)), opts_(opts) {}

BatchResult BatchEvaluator::evaluate_one(const ct::CompressorTree& tree,
                                         const std::string& key) const {
  BatchResult out;
  try {
    out.per_target = synthesize_all_targets(spec_, tree, key, targets_, opts_);
  } catch (...) {
    out.error = std::current_exception();
  }
  return out;
}

std::vector<BatchResult> BatchEvaluator::evaluate(
    const std::vector<ct::CompressorTree>& trees,
    const std::vector<std::string>& keys, util::ThreadPool& pool) const {
  std::vector<BatchResult> out(trees.size());
  if (trees.empty()) return out;
  if (trees.size() == 1 || pool.size() <= 1) {
    // Inline on the caller: a single-worker pool would only add
    // future round-trips to a serial execution.
    for (std::size_t i = 0; i < trees.size(); ++i) {
      out[i] = evaluate_one(trees[i], keys[i]);
    }
    return out;
  }
  std::vector<std::future<BatchResult>> futs;
  futs.reserve(trees.size());
  for (std::size_t i = 0; i < trees.size(); ++i) {
    futs.push_back(pool.submit(
        [this, &trees, &keys, i] { return evaluate_one(trees[i], keys[i]); }));
  }
  for (auto& f : futs) f.wait();
  for (std::size_t i = 0; i < trees.size(); ++i) out[i] = futs[i].get();
  return out;
}

}  // namespace rlmul::synth
