#include "synth/evaluator_pool.hpp"

#include <cstdio>
#include <cstring>

namespace rlmul::synth {

std::string EvaluatorPool::key_of(const ppg::MultiplierSpec& spec,
                                  const std::vector<double>& targets) {
  // Exact-contract key: spec fields plus every target's IEEE-754 bit
  // pattern — two target sets share an evaluator only when their
  // synthesis constraints are bitwise identical.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%d|%d|%d|", spec.bits,
                static_cast<int>(spec.ppg), spec.mac ? 1 : 0);
  std::string key = buf;
  for (double t : targets) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(t));
    std::memcpy(&bits, &t, sizeof(bits));
    std::snprintf(buf, sizeof(buf), "%016llx,",
                  static_cast<unsigned long long>(bits));
    key += buf;
  }
  return key;
}

std::shared_ptr<DesignEvaluator> EvaluatorPool::acquire(
    const ppg::MultiplierSpec& spec, std::vector<double> targets) {
  if (targets.empty()) targets = default_targets(spec);
  const std::string key = key_of(spec, targets);
  util::LockGuard lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    if (std::shared_ptr<DesignEvaluator> ev = it->second.lock()) return ev;
  }
  auto holder = std::make_shared<Holder>();
  EvaluatorOptions opts = base_;
  if (cache_factory_) {
    holder->cache = cache_factory_(spec, targets);
    opts.external_cache = holder->cache.get();
  }
  holder->evaluator =
      std::make_unique<DesignEvaluator>(spec, std::move(targets), opts);
  // Alias: the caller-visible pointer is the evaluator, the ownership
  // is the holder (evaluator + its cache destruct together, cache
  // strictly after the evaluator that references it).
  std::shared_ptr<DesignEvaluator> ev(holder, holder->evaluator.get());
  map_[key] = ev;
  return ev;
}

std::size_t EvaluatorPool::live() const {
  util::LockGuard lock(mu_);
  std::size_t n = 0;
  for (const auto& [key, weak] : map_) {
    if (!weak.expired()) ++n;
  }
  return n;
}

}  // namespace rlmul::synth
