#include "synth/evaluator.hpp"

#include <sstream>
#include <stdexcept>

#include "sim/simulator.hpp"

namespace rlmul::synth {

std::vector<double> default_targets(const ppg::MultiplierSpec& spec, int n) {
  const ct::CompressorTree wallace = ppg::initial_tree(spec);
  // Fastest achievable: synthesize maximally tight; slowest useful:
  // fully relaxed minimum-area synthesis.
  const SynthesisResult tight = synthesize_design(spec, wallace, 0.01);
  const SynthesisResult loose = synthesize_design(spec, wallace, 1e9);
  const double lo = tight.delay_ns * 0.95;
  const double hi = loose.delay_ns * 1.05;
  std::vector<double> targets;
  for (int i = 0; i < n; ++i) {
    const double f = n == 1 ? 0.5 : static_cast<double>(i) / (n - 1);
    targets.push_back(lo + f * (hi - lo));
  }
  return targets;
}

DesignEvaluator::DesignEvaluator(ppg::MultiplierSpec spec,
                                 std::vector<double> targets,
                                 const EvaluatorOptions& opts)
    : spec_(spec), targets_(std::move(targets)), opts_(opts) {
  if (targets_.empty()) targets_ = default_targets(spec_);
  const DesignEval ref = evaluate(ppg::initial_tree(spec_));
  ref_area_ = ref.sum_area > 0.0 ? ref.sum_area : 1.0;
  ref_delay_ = ref.sum_delay > 0.0 ? ref.sum_delay : 1.0;
}

DesignEval DesignEvaluator::evaluate(const ct::CompressorTree& tree) {
  const std::string key = tree.key();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) return evals_[it->second];
  }

  if (opts_.verify_functionality) {
    // The equivalence gate the paper runs through ABC `cec`: a design
    // that fails here is a generator bug, never a scoring matter.
    auto nl = ppg::build_multiplier(spec_, tree,
                                    netlist::CpaKind::kRippleCarry);
    util::Rng rng(0x5EC5EC ^ std::hash<std::string>{}(key));
    const auto rep = sim::check_equivalence(nl, spec_, rng, 1 << 16,
                                            opts_.verify_vectors);
    if (!rep.equivalent) {
      std::ostringstream msg;
      msg << "DesignEvaluator: functional mismatch (a=" << rep.a
          << ", b=" << rep.b << ", acc=" << rep.acc << ", got=" << rep.got
          << ", expect=" << rep.expect << ")";
      throw std::runtime_error(msg.str());
    }
  }

  // Synthesize outside the lock so parallel workers overlap; a rare
  // duplicate computation is benign (second insert is dropped).
  DesignEval eval;
  for (double target : targets_) {
    const SynthesisResult res = synthesize_design(spec_, tree, target);
    eval.sum_area += res.area_um2;
    eval.sum_delay += res.delay_ns;
    eval.sum_power += res.power_mw;
    eval.per_target.push_back(res);
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = index_.emplace(key, designs_.size());
  if (!inserted) return evals_[it->second];
  designs_.push_back(tree);
  evals_.push_back(eval);
  for (const SynthesisResult& res : eval.per_target) {
    frontier_.insert(
        pareto::Point{res.area_um2, res.delay_ns, designs_.size() - 1});
  }
  return eval;
}

double DesignEvaluator::cost(const DesignEval& eval, double w_area,
                             double w_delay) const {
  return w_area * eval.sum_area / ref_area_ +
         w_delay * eval.sum_delay / ref_delay_;
}

std::size_t DesignEvaluator::num_unique_evaluations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return designs_.size();
}

pareto::Front DesignEvaluator::frontier() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frontier_;
}

ct::CompressorTree DesignEvaluator::design(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return designs_.at(index);
}

std::size_t DesignEvaluator::num_designs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return designs_.size();
}

DesignEval DesignEvaluator::eval_of(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return evals_.at(index);
}

}  // namespace rlmul::synth
