#include "synth/evaluator.hpp"

#include <algorithm>
#include <future>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "sim/simulator.hpp"
#include "sta/batch_sweep.hpp"
#include "synth/batch_eval.hpp"
#include "util/config.hpp"
#include "util/perf_counters.hpp"

namespace rlmul::synth {

std::vector<double> default_targets(const ppg::MultiplierSpec& spec, int n) {
  const ct::CompressorTree wallace = ppg::initial_tree(spec);
  // Fastest achievable: synthesize maximally tight; slowest useful:
  // fully relaxed minimum-area synthesis. One prepared design serves
  // both probes (same numbers as two synthesize_design calls).
  const PreparedDesign prep(spec, wallace);
  const SynthesisResult tight = prep.synthesize(0.01);
  const SynthesisResult loose = prep.synthesize(1e9);
  const double lo = tight.delay_ns * 0.95;
  const double hi = loose.delay_ns * 1.05;
  std::vector<double> targets;
  for (int i = 0; i < n; ++i) {
    const double f = n == 1 ? 0.5 : static_cast<double>(i) / (n - 1);
    targets.push_back(lo + f * (hi - lo));
  }
  return targets;
}

DesignEvaluator::DesignEvaluator(ppg::MultiplierSpec spec,
                                 std::vector<double> targets,
                                 const EvaluatorOptions& opts)
    : spec_(spec), targets_(std::move(targets)), opts_(opts) {
  fast_path_ = opts_.fast_path && util::env_long("RLMUL_FASTPATH", 1) != 0;
  if (opts_.synth_threads > 0) {
    owned_pool_ = std::make_unique<util::ThreadPool>(opts_.synth_threads);
    pool_ = owned_pool_.get();
  } else {
    pool_ = &util::ThreadPool::shared();
  }
  if (targets_.empty()) targets_ = default_targets(spec_);
  // The batched pipeline sizes one lane per target; more targets than
  // lane bits (unheard of — the paper uses 4) falls back to the
  // single-design path.
  if (fast_path_ &&
      targets_.size() <= static_cast<std::size_t>(sta::BatchTimer::kMaxLanes)) {
    const long b = util::env_long("RLMUL_BATCH_EVAL", opts_.batch);
    if (b > 1) batch_ = static_cast<int>(std::min<long>(b, 4096));
  }
  if (batch_ > 1) {
    BatchOptions bopts;
    bopts.verify_functionality = opts_.verify_functionality;
    bopts.verify_vectors = opts_.verify_vectors;
    batch_eval_ = std::make_unique<BatchEvaluator>(spec_, targets_, bopts);
  }
  // Delta evaluation rides the per-call prepared-design path; it needs
  // the fast path and a non-empty parent budget.
  delta_ = fast_path_ && util::env_long("RLMUL_DELTA_EVAL", 1) != 0;
  const long pcap = util::env_long("RLMUL_DELTA_PARENTS", 16);
  parents_cap_ = pcap > 0 ? static_cast<std::size_t>(pcap) : 0;
  if (parents_cap_ == 0) delta_ = false;
  const DesignEval ref = evaluate(ppg::initial_tree(spec_));
  ref_area_ = ref.sum_area > 0.0 ? ref.sum_area : 1.0;
  ref_delay_ = ref.sum_delay > 0.0 ? ref.sum_delay : 1.0;
}

DesignEvaluator::~DesignEvaluator() = default;

std::shared_ptr<const PreparedDesign> DesignEvaluator::parent_get(
    const std::string& key) const {
  if (key.empty()) return nullptr;
  util::LockGuard lock(parents_mu_);
  auto it = parents_.find(key);
  if (it == parents_.end()) return nullptr;
  it->second.tick = ++parents_tick_;
  return it->second.prep;
}

void DesignEvaluator::parent_put(
    const std::string& key, std::shared_ptr<const PreparedDesign> prep) const {
  util::LockGuard lock(parents_mu_);
  auto [it, inserted] = parents_.try_emplace(key);
  it->second.prep = std::move(prep);
  it->second.tick = ++parents_tick_;
  if (parents_.size() > parents_cap_) {
    auto victim = parents_.begin();
    for (auto cur = parents_.begin(); cur != parents_.end(); ++cur) {
      if (cur->second.tick < victim->second.tick) victim = cur;
    }
    parents_.erase(victim);
  }
}

DesignEval DesignEvaluator::run_delta(
    const std::shared_ptr<PreparedDesign>& prep,
    const ppg::MultiplierSpec& resolved, const std::string& key,
    const ParentHint& hint) const {
  if (opts_.verify_functionality) {
    // Same equivalence gate as the scratch paths, on menu entry 0.
    const auto& nl = prep->netlist_at(0);
    util::Rng rng(0x5EC5EC ^ std::hash<std::string>{}(key));
    const auto rep = sim::check_equivalence(nl, resolved, rng, 1 << 16,
                                            opts_.verify_vectors);
    if (!rep.equivalent) {
      std::ostringstream msg;
      msg << "DesignEvaluator: functional mismatch (a=" << rep.a
          << ", b=" << rep.b << ", acc=" << rep.acc << ", got=" << rep.got
          << ", expect=" << rep.expect << ")";
      throw std::runtime_error(msg.str());
    }
  }
  std::vector<SynthesisResult> results;
  if (opts_.parallel_targets && targets_.size() > 1) {
    std::vector<std::future<SynthesisResult>> futs;
    futs.reserve(targets_.size());
    for (double target : targets_) {
      futs.push_back(
          pool_->submit([prep, target] { return prep->synthesize(target); }));
    }
    for (auto& f : futs) f.wait();
    for (auto& f : futs) results.push_back(f.get());
  } else {
    for (double target : targets_) results.push_back(prep->synthesize(target));
  }
  auto& counters = util::perf_counters();
  if (prep->used_parent()) {
    counters.eval_delta_hits.fetch_add(1, std::memory_order_relaxed);
  } else if (!hint.key.empty()) {
    counters.eval_delta_fallbacks.fetch_add(1, std::memory_order_relaxed);
  }
  // Seal (forces every menu entry, drops the parent chain) before
  // publication, so concurrent children of this design only ever read
  // immutable state.
  prep->seal_for_retention();
  parent_put(key, prep);
  DesignEval eval;
  for (const SynthesisResult& res : results) {
    eval.sum_area += res.area_um2;
    eval.sum_delay += res.delay_ns;
    eval.sum_power += res.power_mw;
    eval.per_target.push_back(res);
  }
  return eval;
}

DesignEval DesignEvaluator::compute(const ct::CompressorTree& tree,
                                    const std::string& key,
                                    const ParentHint& hint) const {
  if (fast_path_ && delta_) {
    auto prep = std::make_shared<PreparedDesign>(
        PreparedDesign::DeltaMode{}, spec_, tree, parent_get(hint.key));
    return run_delta(prep, spec_, key, hint);
  }
  DesignEval eval;
  std::vector<SynthesisResult> results;

  if (fast_path_) {
    const PreparedDesign prep(spec_, tree);
    if (opts_.verify_functionality) {
      // The equivalence gate the paper runs through ABC `cec`: a design
      // that fails here is a generator bug, never a scoring matter.
      // Gate on the prepared ripple netlist instead of a fresh build.
      const auto& nl = prep.netlist(netlist::CpaKind::kRippleCarry);
      util::Rng rng(0x5EC5EC ^ std::hash<std::string>{}(key));
      const auto rep = sim::check_equivalence(nl, spec_, rng, 1 << 16,
                                              opts_.verify_vectors);
      if (!rep.equivalent) {
        std::ostringstream msg;
        msg << "DesignEvaluator: functional mismatch (a=" << rep.a
            << ", b=" << rep.b << ", acc=" << rep.acc << ", got=" << rep.got
            << ", expect=" << rep.expect << ")";
        throw std::runtime_error(msg.str());
      }
    }
    if (opts_.parallel_targets && targets_.size() > 1) {
      // One pool task per delay constraint; all of them size private
      // copies of the shared prepared netlists. Futures are gathered in
      // target order, so the aggregate sums are bit-identical to a
      // serial evaluation regardless of completion order.
      std::vector<std::future<SynthesisResult>> futs;
      futs.reserve(targets_.size());
      for (double target : targets_) {
        futs.push_back(
            pool_->submit([&prep, target] { return prep.synthesize(target); }));
      }
      // Wait for every task before the first get(): a throwing target
      // must not unwind while siblings still reference `prep`.
      for (auto& f : futs) f.wait();
      for (auto& f : futs) results.push_back(f.get());
    } else {
      for (double target : targets_) results.push_back(prep.synthesize(target));
    }
  } else {
    if (opts_.verify_functionality) {
      auto nl = ppg::build_multiplier(spec_, tree,
                                      netlist::CpaKind::kRippleCarry);
      util::Rng rng(0x5EC5EC ^ std::hash<std::string>{}(key));
      const auto rep = sim::check_equivalence(nl, spec_, rng, 1 << 16,
                                              opts_.verify_vectors);
      if (!rep.equivalent) {
        std::ostringstream msg;
        msg << "DesignEvaluator: functional mismatch (a=" << rep.a
            << ", b=" << rep.b << ", acc=" << rep.acc << ", got=" << rep.got
            << ", expect=" << rep.expect << ")";
        throw std::runtime_error(msg.str());
      }
    }
    for (double target : targets_) {
      results.push_back(synthesize_design_legacy(spec_, tree, target));
    }
  }

  for (const SynthesisResult& res : results) {
    eval.sum_area += res.area_um2;
    eval.sum_delay += res.delay_ns;
    eval.sum_power += res.power_mw;
    eval.per_target.push_back(res);
  }
  return eval;
}

DesignEval DesignEvaluator::compute_point(const ppg::DesignPoint& point,
                                          const std::string& key,
                                          const ParentHint& hint) const {
  // Extended points always take the prepared-design path: a pinned CPA
  // has no legacy pipeline, and a PPG toggle resolves to the same flow
  // under the toggled spec. Menu points with only a PPG change walk
  // the same kAllCpaKinds sweep the tree path does.
  const ppg::MultiplierSpec resolved = point.resolved_spec(spec_);
  if (fast_path_ && delta_) {
    auto parent = parent_get(hint.key);
    auto prep =
        point.cpa_pinned()
            ? std::make_shared<PreparedDesign>(PreparedDesign::DeltaMode{},
                                               resolved, point.tree, point.cpa,
                                               std::move(parent))
            : std::make_shared<PreparedDesign>(PreparedDesign::DeltaMode{},
                                               resolved, point.tree,
                                               std::move(parent));
    return run_delta(prep, resolved, key, hint);
  }
  DesignEval eval;
  std::vector<SynthesisResult> results;

  auto run = [&](const PreparedDesign& prep) {
    if (opts_.verify_functionality) {
      // Same equivalence gate as the tree path, on menu entry 0 (the
      // ripple netlist for menu points, the pinned graph otherwise).
      const auto& nl = prep.netlist_at(0);
      util::Rng rng(0x5EC5EC ^ std::hash<std::string>{}(key));
      const auto rep = sim::check_equivalence(nl, resolved, rng, 1 << 16,
                                              opts_.verify_vectors);
      if (!rep.equivalent) {
        std::ostringstream msg;
        msg << "DesignEvaluator: functional mismatch (a=" << rep.a
            << ", b=" << rep.b << ", acc=" << rep.acc << ", got=" << rep.got
            << ", expect=" << rep.expect << ")";
        throw std::runtime_error(msg.str());
      }
    }
    if (opts_.parallel_targets && targets_.size() > 1) {
      std::vector<std::future<SynthesisResult>> futs;
      futs.reserve(targets_.size());
      for (double target : targets_) {
        futs.push_back(
            pool_->submit([&prep, target] { return prep.synthesize(target); }));
      }
      for (auto& f : futs) f.wait();
      for (auto& f : futs) results.push_back(f.get());
    } else {
      for (double target : targets_) results.push_back(prep.synthesize(target));
    }
  };

  if (point.cpa_pinned()) {
    const PreparedDesign prep(resolved, point.tree, point.cpa);
    run(prep);
  } else {
    const PreparedDesign prep(resolved, point.tree);
    run(prep);
  }

  for (const SynthesisResult& res : results) {
    eval.sum_area += res.area_um2;
    eval.sum_delay += res.delay_ns;
    eval.sum_power += res.power_mw;
    eval.per_target.push_back(res);
  }
  return eval;
}

std::size_t DesignEvaluator::install_locked(const std::string& key,
                                            const ct::CompressorTree& tree,
                                            const DesignEval& eval,
                                            const ppg::DesignPoint* point) {
  auto [it, inserted] = index_.emplace(key, designs_.size());
  if (inserted) {
    designs_.push_back(tree);
    if (point != nullptr) {
      points_.push_back(*point);
    } else {
      ppg::DesignPoint plain;
      plain.ppg = spec_.ppg;
      plain.tree = tree;
      points_.push_back(std::move(plain));
    }
    evals_.push_back(eval);
    for (const SynthesisResult& res : eval.per_target) {
      frontier_.insert(
          pareto::Point{res.area_um2, res.delay_ns, designs_.size() - 1});
    }
  }
  return it->second;
}

DesignEval DesignEvaluator::evaluate(const ct::CompressorTree& tree,
                                     const ParentHint& hint) {
  if (batch_ > 1) return evaluate_batched(tree);

  const std::string key = tree.key();
  {
    util::UniqueLock lock(mu_);
    for (;;) {
      auto it = index_.find(key);
      if (it != index_.end()) {
        {
          util::LockGuard slock(stats_mu_);
          ++stats_.cache_hits;
        }
        util::perf_counters().cache_hits.fetch_add(1,
                                                   std::memory_order_relaxed);
        return evals_[it->second];
      }
      if (in_flight_.find(key) == in_flight_.end()) break;
      // Another worker is synthesizing this exact tree right now: wait
      // for its result instead of duplicating hours of tool time.
      {
        util::LockGuard slock(stats_mu_);
        ++stats_.inflight_waits;
      }
      util::perf_counters().inflight_waits.fetch_add(
          1, std::memory_order_relaxed);
      cv_.wait(lock);
    }
    in_flight_.insert(key);
  }

  // A cross-run cache hit replaces synthesis entirely: the stored
  // evaluation was produced under the same spec/target contract, so it
  // is bit-identical to what compute() would return — and it is free
  // (no budget charge, no unique_evals bump).
  if (opts_.external_cache != nullptr) {
    DesignEval stored;
    if (opts_.external_cache->lookup(key, tree, stored)) {
      util::LockGuard lock(mu_);
      in_flight_.erase(key);
      {
        util::LockGuard slock(stats_mu_);
        ++stats_.external_hits;
      }
      const std::size_t idx = install_locked(key, tree, stored);
      cv_.notify_all();
      return evals_[idx];
    }
  }

  // Synthesize outside the lock so workers on *different* trees overlap.
  DesignEval eval;
  try {
    eval = compute(tree, key, hint);
  } catch (...) {
    util::LockGuard lock(mu_);
    in_flight_.erase(key);
    cv_.notify_all();
    throw;
  }

  std::size_t idx = 0;
  {
    util::LockGuard lock(mu_);
    in_flight_.erase(key);
    const std::size_t before = designs_.size();
    idx = install_locked(key, tree, eval);
    if (designs_.size() > before) {
      {
        util::LockGuard slock(stats_mu_);
        ++stats_.unique_evals;
      }
      util::perf_counters().unique_evals.fetch_add(1,
                                                   std::memory_order_relaxed);
    }
    cv_.notify_all();
  }
  // Offer the fresh result to the cross-run cache outside the mutex —
  // the store may journal to disk and must not serialize evaluations.
  if (opts_.external_cache != nullptr) {
    opts_.external_cache->store(key, tree, eval);
  }
  return eval_of(idx);
}

DesignEval DesignEvaluator::evaluate(const ppg::DesignPoint& point,
                                     const ParentHint& hint) {
  if (point.ppg == spec_.ppg && !point.cpa_pinned()) {
    // Plain point: exactly the tree contract — same keys, same
    // batching/coalescing, bit-identical results and accounting.
    return evaluate(point.tree, hint);
  }
  return evaluate_point_uncoalesced(point, point.key(spec_), hint);
}

DesignEval DesignEvaluator::evaluate_point_uncoalesced(
    const ppg::DesignPoint& point, const std::string& key,
    const ParentHint& hint) {
  // Extended points never enter the pending_/drain machinery (the SoA
  // batch pipeline is built per spec and per menu); they run the
  // per-call flow with the same in-flight dedup on the extended key.
  {
    util::UniqueLock lock(mu_);
    for (;;) {
      auto it = index_.find(key);
      if (it != index_.end()) {
        {
          util::LockGuard slock(stats_mu_);
          ++stats_.cache_hits;
        }
        util::perf_counters().cache_hits.fetch_add(1,
                                                   std::memory_order_relaxed);
        return evals_[it->second];
      }
      if (in_flight_.find(key) == in_flight_.end()) break;
      {
        util::LockGuard slock(stats_mu_);
        ++stats_.inflight_waits;
      }
      util::perf_counters().inflight_waits.fetch_add(
          1, std::memory_order_relaxed);
      cv_.wait(lock);
    }
    in_flight_.insert(key);
  }

  if (opts_.external_cache != nullptr) {
    DesignEval stored;
    if (opts_.external_cache->lookup_point(key, point, stored)) {
      util::LockGuard lock(mu_);
      in_flight_.erase(key);
      {
        util::LockGuard slock(stats_mu_);
        ++stats_.external_hits;
      }
      const std::size_t idx = install_locked(key, point.tree, stored, &point);
      cv_.notify_all();
      return evals_[idx];
    }
  }

  DesignEval eval;
  try {
    eval = compute_point(point, key, hint);
  } catch (...) {
    util::LockGuard lock(mu_);
    in_flight_.erase(key);
    cv_.notify_all();
    throw;
  }

  std::size_t idx = 0;
  {
    util::LockGuard lock(mu_);
    in_flight_.erase(key);
    const std::size_t before = designs_.size();
    idx = install_locked(key, point.tree, eval, &point);
    if (designs_.size() > before) {
      {
        util::LockGuard slock(stats_mu_);
        ++stats_.unique_evals;
      }
      util::perf_counters().unique_evals.fetch_add(1,
                                                   std::memory_order_relaxed);
    }
    cv_.notify_all();
  }
  if (opts_.external_cache != nullptr) {
    opts_.external_cache->store_point(key, point, eval);
  }
  return eval_of(idx);
}

// drain_locked releases and reacquires the caller's UniqueLock around
// the batched synthesis, which the thread-safety analysis cannot
// follow; every access to mu_-guarded state below happens while the
// lock is held (verified by the tsan-labeled batch tests).
void DesignEvaluator::drain_locked(util::UniqueLock& lock,
                                   const std::string& my_key,
                                   std::unordered_set<std::string>* resolved)
    RLMUL_NO_THREAD_SAFETY_ANALYSIS {
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::string> keys;
  std::vector<ct::CompressorTree> trees;
  std::uint64_t wait_us = 0;
  auto take = [&](const std::string& k) {
    auto it = pending_.find(k);
    keys.push_back(k);
    trees.push_back(std::move(it->second.tree));
    wait_us += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            now - it->second.since)
            .count());
    pending_.erase(it);
    in_flight_.insert(k);
  };
  take(my_key);
  while (static_cast<int>(keys.size()) < batch_ && !pending_order_.empty()) {
    const std::string k = std::move(pending_order_.front());
    pending_order_.pop_front();
    if (pending_.find(k) == pending_.end()) continue;  // stale entry
    take(k);
  }
  lock.unlock();

  // External-cache hits replace synthesis and charge nothing, exactly
  // as on the per-call path.
  std::vector<char> external(keys.size(), 0);
  std::vector<DesignEval> stored(keys.size());
  std::vector<std::size_t> miss;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (opts_.external_cache != nullptr &&
        opts_.external_cache->lookup(keys[i], trees[i], stored[i])) {
      external[i] = 1;
    } else {
      miss.push_back(i);
    }
  }

  std::vector<BatchResult> computed;
  if (!miss.empty()) {
    std::vector<ct::CompressorTree> miss_trees;
    std::vector<std::string> miss_keys;
    miss_trees.reserve(miss.size());
    miss_keys.reserve(miss.size());
    for (std::size_t idx : miss) {
      miss_trees.push_back(trees[idx]);
      miss_keys.push_back(keys[idx]);
    }
    computed = batch_eval_->evaluate(miss_trees, miss_keys, *pool_);
  }

  auto& counters = util::perf_counters();
  counters.eval_batches.fetch_add(1, std::memory_order_relaxed);
  counters.eval_batched_designs.fetch_add(keys.size(),
                                          std::memory_order_relaxed);
  counters.eval_batch_coalesce_wait_us.fetch_add(wait_us,
                                                 std::memory_order_relaxed);
  {
    util::LockGuard slock(stats_mu_);
    ++stats_.eval_batches;
    stats_.eval_batched_designs += keys.size();
    stats_.eval_batch_coalesce_us += wait_us;
  }

  lock.lock();
  std::exception_ptr my_error;
  // Fresh successes to offer to the cross-run cache once mu_ drops.
  std::vector<std::size_t> fresh;
  std::vector<DesignEval> fresh_evals;
  for (const std::string& k : keys) in_flight_.erase(k);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (external[i] == 0) continue;
    {
      util::LockGuard slock(stats_mu_);
      ++stats_.external_hits;
    }
    install_locked(keys[i], trees[i], stored[i]);
    if (resolved != nullptr) resolved->insert(keys[i]);
  }
  for (std::size_t j = 0; j < miss.size(); ++j) {
    const std::size_t idx = miss[j];
    BatchResult& br = computed[j];
    if (br.error != nullptr) {
      // The drainer throws its own failure; other failed designs stay
      // unresolved — their waiters re-enqueue and hit the error in a
      // drain of their own.
      if (keys[idx] == my_key) my_error = br.error;
      continue;
    }
    DesignEval eval;
    for (const SynthesisResult& res : br.per_target) {
      eval.sum_area += res.area_um2;
      eval.sum_delay += res.delay_ns;
      eval.sum_power += res.power_mw;
      eval.per_target.push_back(res);
    }
    const std::size_t before = designs_.size();
    install_locked(keys[idx], trees[idx], eval);
    if (designs_.size() > before) {
      {
        util::LockGuard slock(stats_mu_);
        ++stats_.unique_evals;
      }
      counters.unique_evals.fetch_add(1, std::memory_order_relaxed);
      if (opts_.external_cache != nullptr) {
        fresh.push_back(idx);
        fresh_evals.push_back(std::move(eval));
      }
    }
    if (resolved != nullptr) resolved->insert(keys[idx]);
  }
  draining_ = false;
  cv_.notify_all();

  if (!fresh.empty()) {
    lock.unlock();
    for (std::size_t j = 0; j < fresh.size(); ++j) {
      opts_.external_cache->store(keys[fresh[j]], trees[fresh[j]],
                                  fresh_evals[j]);
    }
    lock.lock();
  }
  if (my_error != nullptr) std::rethrow_exception(my_error);
}

DesignEval DesignEvaluator::evaluate_batched(const ct::CompressorTree& tree) {
  const std::string key = tree.key();
  std::unordered_set<std::string> resolved;
  util::UniqueLock lock(mu_);
  for (;;) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      if (resolved.count(key) != 0) {
        // This caller's own drain produced the result — same
        // accounting as the computing worker on the per-call path (no
        // cache-hit bump).
        return evals_[it->second];
      }
      {
        util::LockGuard slock(stats_mu_);
        ++stats_.cache_hits;
      }
      util::perf_counters().cache_hits.fetch_add(1, std::memory_order_relaxed);
      return evals_[it->second];
    }
    if (in_flight_.count(key) != 0) {
      // A drain in progress covers this key: wait for it.
      {
        util::LockGuard slock(stats_mu_);
        ++stats_.inflight_waits;
      }
      util::perf_counters().inflight_waits.fetch_add(
          1, std::memory_order_relaxed);
      cv_.wait(lock);
      continue;
    }
    if (pending_.count(key) == 0) {
      pending_.emplace(key,
                       Pending{tree, std::chrono::steady_clock::now()});
      pending_order_.push_back(key);
    }
    if (!draining_) {
      draining_ = true;
      drain_locked(lock, key, &resolved);
      continue;
    }
    // Another caller is draining a batch that may not include this
    // key; re-check once it finishes.
    cv_.wait(lock);
  }
}

std::vector<DesignEval> DesignEvaluator::evaluate_batch(
    const std::vector<ct::CompressorTree>& trees) {
  std::vector<DesignEval> out;
  out.reserve(trees.size());
  if (batch_ <= 1) {
    for (const auto& tree : trees) out.push_back(evaluate(tree));
    return out;
  }
  std::vector<std::string> keys;
  keys.reserve(trees.size());
  for (const auto& tree : trees) keys.push_back(tree.key());

  // Keys this call synthesized itself (as drainer): their first
  // occurrence below is accounted like the computing worker, not like
  // a cache hit — the same totals K sequential evaluate() calls give.
  std::unordered_set<std::string> resolved;
  util::UniqueLock lock(mu_);
  for (;;) {
    bool unresolved = false;
    const std::string* drain_key = nullptr;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (index_.count(keys[i]) != 0) continue;
      unresolved = true;
      if (in_flight_.count(keys[i]) != 0) continue;
      if (pending_.count(keys[i]) == 0) {
        pending_.emplace(keys[i],
                         Pending{trees[i], std::chrono::steady_clock::now()});
        pending_order_.push_back(keys[i]);
      }
      if (drain_key == nullptr) drain_key = &keys[i];
    }
    if (!unresolved) break;
    if (drain_key != nullptr && !draining_) {
      draining_ = true;
      drain_locked(lock, *drain_key, &resolved);
      continue;
    }
    // Everything unresolved is either in flight or queued behind an
    // active drain; wait for it to finish and re-check.
    {
      util::LockGuard slock(stats_mu_);
      ++stats_.inflight_waits;
    }
    util::perf_counters().inflight_waits.fetch_add(1,
                                                   std::memory_order_relaxed);
    cv_.wait(lock);
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    auto it = index_.find(keys[i]);
    auto mine = resolved.find(keys[i]);
    if (mine != resolved.end()) {
      resolved.erase(mine);  // only the first occurrence is "mine"
    } else {
      {
        util::LockGuard slock(stats_mu_);
        ++stats_.cache_hits;
      }
      util::perf_counters().cache_hits.fetch_add(1, std::memory_order_relaxed);
    }
    out.push_back(evals_[it->second]);
  }
  return out;
}

std::vector<DesignEval> DesignEvaluator::evaluate_batch(
    const std::vector<ct::CompressorTree>& trees,
    const std::vector<ParentHint>& hints) {
  // Hints only matter on the per-call path; batched dispatches draw
  // their speed from SoA lane packing instead.
  if (batch_ > 1 || hints.empty()) return evaluate_batch(trees);
  std::vector<DesignEval> out;
  out.reserve(trees.size());
  for (std::size_t i = 0; i < trees.size(); ++i) {
    out.push_back(
        evaluate(trees[i], i < hints.size() ? hints[i] : ParentHint{}));
  }
  return out;
}

std::vector<DesignEval> DesignEvaluator::evaluate_batch(
    const std::vector<ppg::DesignPoint>& points) {
  // Plain points coalesce through the tree batch path (one bulk call
  // keeps the SoA batching effective); extended points evaluate per
  // call. Results come back in input order either way.
  std::vector<ct::CompressorTree> plain_trees;
  std::vector<std::size_t> plain_pos;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].ppg == spec_.ppg && !points[i].cpa_pinned()) {
      plain_trees.push_back(points[i].tree);
      plain_pos.push_back(i);
    }
  }
  std::vector<DesignEval> out(points.size());
  const std::vector<DesignEval> plain = evaluate_batch(plain_trees);
  for (std::size_t j = 0; j < plain_pos.size(); ++j) {
    out[plain_pos[j]] = plain[j];
  }
  std::size_t next_plain = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (next_plain < plain_pos.size() && plain_pos[next_plain] == i) {
      ++next_plain;
      continue;
    }
    out[i] = evaluate_point_uncoalesced(points[i], points[i].key(spec_));
  }
  return out;
}

std::vector<DesignEval> DesignEvaluator::evaluate_batch(
    const std::vector<ppg::DesignPoint>& points,
    const std::vector<ParentHint>& hints) {
  if (hints.empty()) return evaluate_batch(points);
  auto hint_at = [&](std::size_t i) {
    return i < hints.size() ? hints[i] : ParentHint{};
  };
  if (batch_ <= 1) {
    std::vector<DesignEval> out;
    out.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      out.push_back(evaluate(points[i], hint_at(i)));
    }
    return out;
  }
  // Batching on: plain points coalesce through the tree batch (their
  // hints are moot there), extended points still use theirs — they
  // always run per call.
  std::vector<ct::CompressorTree> plain_trees;
  std::vector<std::size_t> plain_pos;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].ppg == spec_.ppg && !points[i].cpa_pinned()) {
      plain_trees.push_back(points[i].tree);
      plain_pos.push_back(i);
    }
  }
  std::vector<DesignEval> out(points.size());
  const std::vector<DesignEval> plain = evaluate_batch(plain_trees);
  for (std::size_t j = 0; j < plain_pos.size(); ++j) {
    out[plain_pos[j]] = plain[j];
  }
  std::size_t next_plain = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (next_plain < plain_pos.size() && plain_pos[next_plain] == i) {
      ++next_plain;
      continue;
    }
    out[i] =
        evaluate_point_uncoalesced(points[i], points[i].key(spec_), hint_at(i));
  }
  return out;
}

bool DesignEvaluator::admit(const ct::CompressorTree& tree,
                            const DesignEval& eval) {
  const std::string key = tree.key();
  util::LockGuard lock(mu_);
  if (index_.count(key) != 0 || in_flight_.count(key) != 0 ||
      pending_.count(key) != 0) {
    return false;
  }
  install_locked(key, tree, eval);
  {
    util::LockGuard slock(stats_mu_);
    ++stats_.admitted;
  }
  return true;
}

double DesignEvaluator::cost(const DesignEval& eval, double w_area,
                             double w_delay) const {
  return w_area * eval.sum_area / ref_area_ +
         w_delay * eval.sum_delay / ref_delay_;
}

std::size_t DesignEvaluator::num_unique_evaluations() const {
  util::LockGuard lock(stats_mu_);
  return stats_.unique_evals;
}

pareto::Front DesignEvaluator::frontier() const {
  util::LockGuard lock(mu_);
  return frontier_;
}

ct::CompressorTree DesignEvaluator::design(std::size_t index) const {
  util::LockGuard lock(mu_);
  return designs_.at(index);
}

ppg::DesignPoint DesignEvaluator::point_of(std::size_t index) const {
  util::LockGuard lock(mu_);
  return points_.at(index);
}

std::size_t DesignEvaluator::num_designs() const {
  util::LockGuard lock(mu_);
  return designs_.size();
}

DesignEval DesignEvaluator::eval_of(std::size_t index) const {
  util::LockGuard lock(mu_);
  return evals_.at(index);
}

DesignEvaluator::Stats DesignEvaluator::stats() const {
  util::LockGuard lock(stats_mu_);
  return stats_;
}

}  // namespace rlmul::synth
