#include "synth/evaluator.hpp"

#include <future>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "sim/simulator.hpp"
#include "util/config.hpp"
#include "util/perf_counters.hpp"

namespace rlmul::synth {

std::vector<double> default_targets(const ppg::MultiplierSpec& spec, int n) {
  const ct::CompressorTree wallace = ppg::initial_tree(spec);
  // Fastest achievable: synthesize maximally tight; slowest useful:
  // fully relaxed minimum-area synthesis. One prepared design serves
  // both probes (same numbers as two synthesize_design calls).
  const PreparedDesign prep(spec, wallace);
  const SynthesisResult tight = prep.synthesize(0.01);
  const SynthesisResult loose = prep.synthesize(1e9);
  const double lo = tight.delay_ns * 0.95;
  const double hi = loose.delay_ns * 1.05;
  std::vector<double> targets;
  for (int i = 0; i < n; ++i) {
    const double f = n == 1 ? 0.5 : static_cast<double>(i) / (n - 1);
    targets.push_back(lo + f * (hi - lo));
  }
  return targets;
}

DesignEvaluator::DesignEvaluator(ppg::MultiplierSpec spec,
                                 std::vector<double> targets,
                                 const EvaluatorOptions& opts)
    : spec_(spec), targets_(std::move(targets)), opts_(opts) {
  fast_path_ = opts_.fast_path && util::env_long("RLMUL_FASTPATH", 1) != 0;
  if (opts_.synth_threads > 0) {
    owned_pool_ = std::make_unique<util::ThreadPool>(opts_.synth_threads);
    pool_ = owned_pool_.get();
  } else {
    pool_ = &util::ThreadPool::shared();
  }
  if (targets_.empty()) targets_ = default_targets(spec_);
  const DesignEval ref = evaluate(ppg::initial_tree(spec_));
  ref_area_ = ref.sum_area > 0.0 ? ref.sum_area : 1.0;
  ref_delay_ = ref.sum_delay > 0.0 ? ref.sum_delay : 1.0;
}

DesignEval DesignEvaluator::compute(const ct::CompressorTree& tree,
                                    const std::string& key) const {
  DesignEval eval;
  std::vector<SynthesisResult> results;

  if (fast_path_) {
    const PreparedDesign prep(spec_, tree);
    if (opts_.verify_functionality) {
      // The equivalence gate the paper runs through ABC `cec`: a design
      // that fails here is a generator bug, never a scoring matter.
      // Gate on the prepared ripple netlist instead of a fresh build.
      const auto& nl = prep.netlist(netlist::CpaKind::kRippleCarry);
      util::Rng rng(0x5EC5EC ^ std::hash<std::string>{}(key));
      const auto rep = sim::check_equivalence(nl, spec_, rng, 1 << 16,
                                              opts_.verify_vectors);
      if (!rep.equivalent) {
        std::ostringstream msg;
        msg << "DesignEvaluator: functional mismatch (a=" << rep.a
            << ", b=" << rep.b << ", acc=" << rep.acc << ", got=" << rep.got
            << ", expect=" << rep.expect << ")";
        throw std::runtime_error(msg.str());
      }
    }
    if (opts_.parallel_targets && targets_.size() > 1) {
      // One pool task per delay constraint; all of them size private
      // copies of the shared prepared netlists. Futures are gathered in
      // target order, so the aggregate sums are bit-identical to a
      // serial evaluation regardless of completion order.
      std::vector<std::future<SynthesisResult>> futs;
      futs.reserve(targets_.size());
      for (double target : targets_) {
        futs.push_back(
            pool_->submit([&prep, target] { return prep.synthesize(target); }));
      }
      // Wait for every task before the first get(): a throwing target
      // must not unwind while siblings still reference `prep`.
      for (auto& f : futs) f.wait();
      for (auto& f : futs) results.push_back(f.get());
    } else {
      for (double target : targets_) results.push_back(prep.synthesize(target));
    }
  } else {
    if (opts_.verify_functionality) {
      auto nl = ppg::build_multiplier(spec_, tree,
                                      netlist::CpaKind::kRippleCarry);
      util::Rng rng(0x5EC5EC ^ std::hash<std::string>{}(key));
      const auto rep = sim::check_equivalence(nl, spec_, rng, 1 << 16,
                                              opts_.verify_vectors);
      if (!rep.equivalent) {
        std::ostringstream msg;
        msg << "DesignEvaluator: functional mismatch (a=" << rep.a
            << ", b=" << rep.b << ", acc=" << rep.acc << ", got=" << rep.got
            << ", expect=" << rep.expect << ")";
        throw std::runtime_error(msg.str());
      }
    }
    for (double target : targets_) {
      results.push_back(synthesize_design_legacy(spec_, tree, target));
    }
  }

  for (const SynthesisResult& res : results) {
    eval.sum_area += res.area_um2;
    eval.sum_delay += res.delay_ns;
    eval.sum_power += res.power_mw;
    eval.per_target.push_back(res);
  }
  return eval;
}

std::size_t DesignEvaluator::install_locked(const std::string& key,
                                            const ct::CompressorTree& tree,
                                            const DesignEval& eval) {
  auto [it, inserted] = index_.emplace(key, designs_.size());
  if (inserted) {
    designs_.push_back(tree);
    evals_.push_back(eval);
    for (const SynthesisResult& res : eval.per_target) {
      frontier_.insert(
          pareto::Point{res.area_um2, res.delay_ns, designs_.size() - 1});
    }
  }
  return it->second;
}

DesignEval DesignEvaluator::evaluate(const ct::CompressorTree& tree) {
  const std::string key = tree.key();
  {
    util::UniqueLock lock(mu_);
    for (;;) {
      auto it = index_.find(key);
      if (it != index_.end()) {
        ++cache_hits_;
        util::perf_counters().cache_hits.fetch_add(1,
                                                   std::memory_order_relaxed);
        return evals_[it->second];
      }
      if (in_flight_.find(key) == in_flight_.end()) break;
      // Another worker is synthesizing this exact tree right now: wait
      // for its result instead of duplicating hours of tool time.
      ++inflight_waits_;
      util::perf_counters().inflight_waits.fetch_add(
          1, std::memory_order_relaxed);
      cv_.wait(lock);
    }
    in_flight_.insert(key);
  }

  // A cross-run cache hit replaces synthesis entirely: the stored
  // evaluation was produced under the same spec/target contract, so it
  // is bit-identical to what compute() would return — and it is free
  // (no budget charge, no unique_evals bump).
  if (opts_.external_cache != nullptr) {
    DesignEval stored;
    if (opts_.external_cache->lookup(key, tree, stored)) {
      util::LockGuard lock(mu_);
      in_flight_.erase(key);
      ++external_hits_;
      const std::size_t idx = install_locked(key, tree, stored);
      cv_.notify_all();
      return evals_[idx];
    }
  }

  // Synthesize outside the lock so workers on *different* trees overlap.
  DesignEval eval;
  try {
    eval = compute(tree, key);
  } catch (...) {
    util::LockGuard lock(mu_);
    in_flight_.erase(key);
    cv_.notify_all();
    throw;
  }

  std::size_t idx = 0;
  {
    util::LockGuard lock(mu_);
    in_flight_.erase(key);
    const std::size_t before = designs_.size();
    idx = install_locked(key, tree, eval);
    if (designs_.size() > before) {
      ++synthesized_;
      util::perf_counters().unique_evals.fetch_add(1,
                                                   std::memory_order_relaxed);
    }
    cv_.notify_all();
  }
  // Offer the fresh result to the cross-run cache outside the mutex —
  // the store may journal to disk and must not serialize evaluations.
  if (opts_.external_cache != nullptr) {
    opts_.external_cache->store(key, tree, eval);
  }
  return eval_of(idx);
}

bool DesignEvaluator::admit(const ct::CompressorTree& tree,
                            const DesignEval& eval) {
  const std::string key = tree.key();
  util::LockGuard lock(mu_);
  if (index_.count(key) != 0 || in_flight_.count(key) != 0) return false;
  install_locked(key, tree, eval);
  ++admitted_;
  return true;
}

double DesignEvaluator::cost(const DesignEval& eval, double w_area,
                             double w_delay) const {
  return w_area * eval.sum_area / ref_area_ +
         w_delay * eval.sum_delay / ref_delay_;
}

std::size_t DesignEvaluator::num_unique_evaluations() const {
  util::LockGuard lock(mu_);
  return synthesized_;
}

pareto::Front DesignEvaluator::frontier() const {
  util::LockGuard lock(mu_);
  return frontier_;
}

ct::CompressorTree DesignEvaluator::design(std::size_t index) const {
  util::LockGuard lock(mu_);
  return designs_.at(index);
}

std::size_t DesignEvaluator::num_designs() const {
  util::LockGuard lock(mu_);
  return designs_.size();
}

DesignEval DesignEvaluator::eval_of(std::size_t index) const {
  util::LockGuard lock(mu_);
  return evals_.at(index);
}

DesignEvaluator::Stats DesignEvaluator::stats() const {
  util::LockGuard lock(mu_);
  Stats s;
  s.unique_evals = synthesized_;
  s.cache_hits = cache_hits_;
  s.inflight_waits = inflight_waits_;
  s.external_hits = external_hits_;
  s.admitted = admitted_;
  return s;
}

}  // namespace rlmul::synth
