// Delta-evaluation path of PreparedDesign: parent-relative incremental
// construction and STA warm-start along search trajectories.
//
// A delta design records a build trace (netlist::CtBuildTrace) so it
// can serve as a parent later, and — when constructed with a
// compatible sealed parent — re-derives only what the move changed:
//
//   * the PPG region is cloned verbatim (clone_head),
//   * the compressor tree is replayed cell by cell against the
//     parent's trace; clean cells copy the parent's gates wholesale,
//   * a CPA entry whose final rows are positionally twinned with the
//     parent's (and whose adder is the same architecture) copies the
//     parent's CPA region instead of re-emitting it,
//   * each entry's variants-at-0 timing baseline is mapped from the
//     parent's converged fixpoint and reconciled with warm_update over
//     the fresh cone, instead of a full from-scratch update.
//
// Bit-identity contract: every fresh emission goes through the same
// LogicBuilder/add_gate calls in the same order as the scratch build,
// copied regions reproduce exact net/gate ids positionally, and the
// warm-started timer converges to the same fixpoint a full update
// reaches (property-tested in test_delta_eval).

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "synth/synth.hpp"
#include "util/perf_counters.hpp"

namespace rlmul::synth {

using netlist::CellLibrary;
using netlist::GateId;
using netlist::kNoNet;
using netlist::Netlist;
using netlist::NetId;

PreparedDesign::PreparedDesign(DeltaMode, const ppg::MultiplierSpec& spec,
                               const ct::CompressorTree& tree,
                               std::shared_ptr<const PreparedDesign> parent)
    : spec_(spec), delta_(true), tree_(tree) {
  init_delta(std::move(parent));
}

PreparedDesign::PreparedDesign(DeltaMode, const ppg::MultiplierSpec& spec,
                               const ct::CompressorTree& tree,
                               prefix::PrefixGraph cpa,
                               std::shared_ptr<const PreparedDesign> parent)
    : spec_(spec),
      pinned_(true),
      pinned_graph_(std::move(cpa)),
      pinned_label_(netlist::cpa_kind_of_graph(pinned_graph_)),
      delta_(true),
      tree_(tree) {
  init_delta(std::move(parent));
}

void PreparedDesign::init_delta(std::shared_ptr<const PreparedDesign> parent) {
  if (spec_.bits < 2 || spec_.bits > 32) {
    throw std::invalid_argument("build_multiplier: bits must be in [2, 32]");
  }
  // Replay against the parent only when its trace describes the same
  // PPG output (same spec => same columns/heights) and the trees share
  // that shape. Anything else rebuilds from scratch — still traced, so
  // the result can parent future evaluations.
  const bool eligible = parent != nullptr && parent->delta_ &&
                        parent->spec_ == spec_ &&
                        ct::diff_trees(parent->tree_, tree_).same_shape;
  if (eligible) {
    prefix_.netlist = parent->prefix_.netlist.clone_head(
        parent->trace_.ppg_gates, parent->trace_.ppg_nets);
  }
  netlist::LogicBuilder lb(prefix_.netlist);
  if (eligible) {
    ct_ = netlist::replay_compressor_tree(
        lb, tree_, parent->trace_.ppg_columns, &parent->prefix_.netlist,
        &parent->tree_, &parent->trace_, &trace_);
    parent_ = std::move(parent);
    auto& c = util::perf_counters();
    c.eval_delta_fresh_gates.fetch_add(
        static_cast<std::uint64_t>(ct_.fresh_gates), std::memory_order_relaxed);
    c.eval_delta_total_gates.fetch_add(
        static_cast<std::uint64_t>(ct_.fresh_gates + ct_.copied_gates),
        std::memory_order_relaxed);
  } else {
    const netlist::ColumnSignals columns = ppg::build_ppg(lb, spec_);
    ct_ = netlist::replay_compressor_tree(lb, tree_, columns, nullptr, nullptr,
                                          nullptr, &trace_);
  }
  prefix_.rows.resize(ct_.rows.size());
  for (std::size_t j = 0; j < ct_.rows.size(); ++j) {
    prefix_.rows[j].reserve(ct_.rows[j].size());
    for (const netlist::TwinnedSignal& t : ct_.rows[j]) {
      prefix_.rows[j].push_back(t.sig);
    }
  }
  util::perf_counters().netlists_built.fetch_add(1, std::memory_order_relaxed);
}

void PreparedDesign::build_entry_delta(std::size_t idx, CpaEntry& e) const {
  const CellLibrary& lib = CellLibrary::nangate45();
  const PreparedDesign* par = parent_.get();
  const CpaEntry* pe = nullptr;

  // Warm-start eligibility: the parent must expose the same menu slot
  // (pinned designs only have entry 0, and its netlist embeds the
  // pinned graph). Sealed parents have every slot built already, so
  // entry() below is a plain read of immutable state.
  if (par != nullptr && par->pinned_ == pinned_) {
    pe = &par->entry(idx);
  }

  // Patch eligibility on top of warm-start: same adder architecture for
  // this slot, and final rows positionally twinned with the parent's —
  // then the CPA consumes bit-identical inputs at identical net ids and
  // the parent's CPA region can be copied instead of re-emitted.
  bool patch = pe != nullptr;
  if (patch && pinned_) {
    patch = prefix::diff_graphs(pinned_graph_, par->pinned_graph_).identical;
  }
  if (patch) {
    const netlist::ColumnSignals& prows = par->prefix_.rows;
    patch = ct_.rows.size() == prows.size();
    for (std::size_t j = 0; patch && j < ct_.rows.size(); ++j) {
      if (ct_.rows[j].size() != prows[j].size()) {
        patch = false;
        break;
      }
      for (std::size_t i = 0; i < ct_.rows[j].size(); ++i) {
        const netlist::TwinnedSignal& t = ct_.rows[j][i];
        if (!t.has_twin || !(t.twin == prows[j][i])) {
          patch = false;
          break;
        }
      }
    }
  }

  const int prefix_gates = prefix_.netlist.num_gates();
  // Parent-entry-id -> child-entry-id maps for the warm start; the
  // prefix region carries the replay maps over verbatim (entry netlists
  // start with the prefix region, ids unchanged).
  std::vector<NetId> net_map;
  std::vector<GateId> gate_map;
  auto seed_prefix_maps = [&] {
    net_map.assign(static_cast<std::size_t>(pe->netlist.num_nets()), kNoNet);
    gate_map.assign(pe->netlist.gates().size(), GateId{-1});
    const int ppn = par->prefix_.netlist.num_nets();
    const int ppg = par->prefix_.netlist.num_gates();
    std::copy(ct_.net_map.begin(), ct_.net_map.begin() + ppn, net_map.begin());
    std::copy(ct_.gate_map.begin(), ct_.gate_map.begin() + ppg,
              gate_map.begin());
  };

  if (patch) {
    const Netlist& pnl = pe->netlist;
    e.netlist = prefix_.netlist;
    // Same headroom attach_cpa reserves, so capacity behavior matches.
    e.netlist.reserve_gates(e.netlist.num_gates() + 16 * spec_.columns());
    seed_prefix_maps();
    netlist::copy_gate_region(e.netlist, pnl,
                              par->prefix_.netlist.num_gates(),
                              static_cast<GateId>(pnl.gates().size()), net_map,
                              gate_map);
    for (std::size_t i = 0; i < pnl.primary_outputs().size(); ++i) {
      e.netlist.mark_output(
          net_map[static_cast<std::size_t>(pnl.primary_outputs()[i])],
          pnl.output_names()[i]);
    }
    // The prefix region has no tie cells, so any tie net lives in the
    // copied CPA region and has an image.
    e.netlist.adopt_ties(
        pnl.tie_lo_net() != kNoNet
            ? net_map[static_cast<std::size_t>(pnl.tie_lo_net())]
            : kNoNet,
        pnl.tie_hi_net() != kNoNet
            ? net_map[static_cast<std::size_t>(pnl.tie_hi_net())]
            : kNoNet);
    const std::uint64_t region = static_cast<std::uint64_t>(
        pnl.num_gates() - par->prefix_.netlist.num_gates());
    util::perf_counters().eval_delta_total_gates.fetch_add(
        region, std::memory_order_relaxed);
  } else {
    e.netlist =
        pinned_ ? ppg::attach_cpa(prefix_, spec_, pinned_graph_)
                : ppg::attach_cpa(prefix_, spec_, netlist::kAllCpaKinds[idx]);
    if (pe != nullptr) {
      auto& c = util::perf_counters();
      const std::uint64_t region =
          static_cast<std::uint64_t>(e.netlist.num_gates() - prefix_gates);
      c.eval_delta_fresh_gates.fetch_add(region, std::memory_order_relaxed);
      c.eval_delta_total_gates.fetch_add(region, std::memory_order_relaxed);
      seed_prefix_maps();  // prefix-only maps still warm the baseline
    }
  }

  e.graph = sta::TimingGraph::build(e.netlist, lib);

  DeltaEntry& d = delta_entries_[idx];
  if (pe == nullptr) {
    // Cold baseline: plain construction runs the full update.
    sta::IncrementalTimer timer(e.netlist, lib, e.graph);
    d.baseline = timer.snapshot();
    return;
  }

  // Warm baseline: map the parent's converged variants-at-0 fixpoint
  // through (net_map, gate_map), then reconcile exactly the state the
  // patch could have changed — fresh nets/gates, survivors whose
  // fanout set changed, and the endpoints.
  const Netlist& pnl = pe->netlist;
  const sta::TimingState& ps = par->delta_entries_[idx].baseline;
  const std::size_t num_nets = static_cast<std::size_t>(e.netlist.num_nets());
  const std::size_t num_gates = e.netlist.gates().size();
  sta::TimingState st;
  st.load_ff.assign(num_nets, 0.0);
  st.arrival_ps.assign(num_nets, 0.0);
  st.prev.assign(num_nets, GateId{-1});
  st.prev_in.assign(num_gates, kNoNet);
  std::vector<char> mapped_net(num_nets, 0);
  std::vector<char> mapped_gate(num_gates, 0);
  for (std::size_t pn = 0; pn < net_map.size(); ++pn) {
    const NetId cn = net_map[pn];
    if (cn == kNoNet) continue;
    const std::size_t c = static_cast<std::size_t>(cn);
    mapped_net[c] = 1;
    st.load_ff[c] = ps.load_ff[pn];
    st.arrival_ps[c] = ps.arrival_ps[pn];
    const GateId pgv = ps.prev[pn];
    st.prev[c] =
        pgv >= 0 ? gate_map[static_cast<std::size_t>(pgv)] : GateId{-1};
  }
  for (std::size_t pg = 0; pg < gate_map.size(); ++pg) {
    const GateId cg = gate_map[pg];
    if (cg < 0) continue;
    const std::size_t c = static_cast<std::size_t>(cg);
    mapped_gate[c] = 1;
    const NetId pin = ps.prev_in[pg];
    st.prev_in[c] =
        pin != kNoNet ? net_map[static_cast<std::size_t>(pin)] : kNoNet;
  }

  std::vector<NetId> dirty_nets;
  std::vector<GateId> dirty_gates;
  std::vector<char> net_marked(num_nets, 0);
  auto mark_net = [&](NetId n) {
    if (n == kNoNet) return;
    if (!net_marked[static_cast<std::size_t>(n)]) {
      net_marked[static_cast<std::size_t>(n)] = 1;
      dirty_nets.push_back(n);
    }
  };
  // Fresh child state has no parent image: recompute it outright.
  for (std::size_t n = 0; n < num_nets; ++n) {
    if (!mapped_net[n]) mark_net(static_cast<NetId>(n));
  }
  for (std::size_t g = 0; g < num_gates; ++g) {
    if (mapped_gate[g]) continue;
    dirty_gates.push_back(static_cast<GateId>(g));
    // A fresh gate loads its fanins: their (mapped) loads changed.
    for (const NetId in : e.netlist.gates()[g].inputs) mark_net(in);
  }
  // A parent gate with no child image stopped loading its fanins.
  for (std::size_t pg = 0; pg < gate_map.size(); ++pg) {
    if (gate_map[pg] >= 0) continue;
    for (const NetId pin : pnl.gates()[pg].inputs) {
      if (pin != kNoNet) mark_net(net_map[static_cast<std::size_t>(pin)]);
    }
  }
  // Primary-output loading can differ between parent and child even for
  // surviving nets; refresh both endpoint sets unconditionally.
  for (const NetId po : pnl.primary_outputs()) {
    mark_net(net_map[static_cast<std::size_t>(po)]);
  }
  for (const NetId po : e.netlist.primary_outputs()) mark_net(po);

  sta::IncrementalTimer timer(e.netlist, lib, e.graph, std::move(st));
  timer.warm_update(dirty_nets, dirty_gates);
  d.baseline = timer.snapshot();
}

const std::vector<double>& PreparedDesign::entry_probs(std::size_t idx) const {
  DeltaEntry& d = delta_entries_[idx];
  std::call_once(d.probs_once, [&] {
    const CpaEntry& e = entry(idx);
    d.probs = signal_probabilities(e.netlist, e.graph->topo);
  });
  return d.probs;
}

SynthesisResult PreparedDesign::synthesize_delta(double target_delay_ns) const {
  const CellLibrary& lib = CellLibrary::nangate45();
  SynthesisOptions opts;
  opts.target_delay_ns = target_delay_ns;

  // Same selection rule (and bit-identical results) as the legacy loop
  // in synthesize(); the two differences are where each timer starts
  // (adopting the entry's cached variants-at-0 fixpoint instead of
  // running a full update) and where the winner's power inputs come
  // from (the winning timer's converged loads plus cached
  // probabilities, instead of a from-scratch estimate_power traversal).
  SynthesisResult best;
  Netlist best_nl;
  std::vector<double> best_loads;
  std::size_t best_idx = 0;
  bool have = false;
  for (std::size_t i = 0; i < menu_size(); ++i) {
    const CpaEntry& e = entry(i);
    Netlist nl = e.netlist;  // variants all 0; timing graph still valid
    util::perf_counters().netlists_reused.fetch_add(1,
                                                    std::memory_order_relaxed);
    sta::TimingState baseline = delta_entries_[i].baseline;
    sta::IncrementalTimer timer(nl, lib, e.graph, std::move(baseline));
    SynthesisResult res =
        synthesize_with_timer(nl, lib, opts, timer, /*compute_power=*/false);
    res.cpa = cpa_at(i);
    const bool better =
        !have ||
        (res.met_target && !best.met_target) ||
        (res.met_target == best.met_target &&
         (res.met_target ? res.area_um2 < best.area_um2
                         : res.delay_ns < best.delay_ns));
    if (better) {
      best = res;
      best_nl = std::move(nl);
      best_loads = timer.load_ff();
      best_idx = i;
      have = true;
    }
    if (res.met_target) break;
  }
  const double clock_ns = std::max(target_delay_ns, best.delay_ns);
  best.power_mw = estimate_power_given(best_nl, lib, clock_ns,
                                       entry_probs(best_idx), best_loads)
                      .total_mw();
  return best;
}

void PreparedDesign::seal_for_retention() const {
  if (!delta_) return;
  for (std::size_t i = 0; i < menu_size(); ++i) entry(i);
  // Future children only read the trace, prefix, entries and baselines;
  // drop the replay maps and the parent chain so retained memory stays
  // bounded and sealed state is immutable.
  parent_.reset();
  ct_ = netlist::CtReplayResult{};
}

}  // namespace rlmul::synth
