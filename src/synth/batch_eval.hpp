#pragma once
// Batched design evaluation: K candidate designs flow through the
// reward oracle as one pipeline instead of K independent synthesis
// calls. Each design in a batch still prepares its own PPG +
// compressor-tree prefix — lanes stride over targets, not designs, so
// the batch pipeline never shares structure across designs. (Sharing
// across designs is the per-call delta path's job: a ParentHint lets
// PreparedDesign clone a retained parent's netlist regions and rebuild
// only the changed cone. The two optimizations are disjoint — hints
// are ignored here.) Within a design all delay targets are sized together
// as lanes of one sta::BatchTimer per CPA architecture: one flattened
// netlist structure, one full timing pass broadcast to every lane, and
// masked strided sweeps instead of per-target netlist copies and
// per-target priority-queue updates. That removes the dominant costs
// of the single-design path — the per-(CPA, target) netlist copy
// (~thousands of gate-vector allocations per design) and the repeated
// full propagation — which is where the >= 3x aggregate throughput at
// batch >= 8 comes from on a single core.
//
// Bit-exactness: every per-lane decision (upsize set, downsize set,
// revert, CPA selection, power) mirrors the PreparedDesign::synthesize
// / synthesize_with_timer code path operation-for-operation, and lanes
// evolve independently, so per-design SynthesisResults are
// byte-identical to the single-design path (tests/test_batch_eval.cpp
// enforces this field-by-field against prep.synthesize()).

#include <string>
#include <vector>

#include "ct/compressor_tree.hpp"
#include "ppg/ppg.hpp"
#include "synth/synth.hpp"
#include "util/thread_pool.hpp"

namespace rlmul::synth {

struct BatchOptions {
  /// Mirrors EvaluatorOptions::verify_functionality — the equivalence
  /// gate runs per design with the same key-derived seed, so a batch
  /// rejects exactly the designs the single path rejects.
  bool verify_functionality = false;
  std::uint64_t verify_vectors = 2048;
};

/// One design's outcome inside a batch. `error` is set (and
/// `per_target` empty) when the design threw — the equivalence gate is
/// the only expected source — so one bad design never poisons its
/// batchmates.
struct BatchResult {
  std::vector<SynthesisResult> per_target;
  std::exception_ptr error;
};

/// Evaluates batches of candidate trees sharing one spec + target
/// menu. Stateless between calls apart from per-worker scratch arenas;
/// thread-safe (concurrent evaluate() calls only share the pool).
class BatchEvaluator {
 public:
  BatchEvaluator(ppg::MultiplierSpec spec, std::vector<double> targets,
                 const BatchOptions& opts = {});

  const std::vector<double>& targets() const { return targets_; }

  /// Synthesizes every tree against the full target menu. `keys` are
  /// the trees' canonical keys (keys[i] == trees[i].key(); passed in
  /// because the caller already computed them) and seed the
  /// verification RNG exactly as DesignEvaluator::compute does.
  /// Designs fan out as one pool task each; within a design the
  /// targets are lanes of one batched sweep. Results come back in
  /// input order.
  std::vector<BatchResult> evaluate(const std::vector<ct::CompressorTree>& trees,
                                    const std::vector<std::string>& keys,
                                    util::ThreadPool& pool) const;

  /// Single-design entry (used by the tests to probe the batched
  /// machinery without a pool).
  BatchResult evaluate_one(const ct::CompressorTree& tree,
                           const std::string& key) const;

 private:
  ppg::MultiplierSpec spec_;
  std::vector<double> targets_;
  BatchOptions opts_;
};

}  // namespace rlmul::synth
