#include "dsdb/store.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "dsdb/journal.hpp"
#include "search/blob.hpp"
#include "util/perf_counters.hpp"

namespace rlmul::dsdb {

namespace {

constexpr const char* kJournalName = "journal.rldb";
constexpr const char* kLockName = "LOCK";

void write_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("dsdb: journal write failed: ") +
                               std::strerror(errno));
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

}  // namespace

std::vector<std::uint8_t> encode_record(const Record& rec) {
  search::BlobWriter w;
  // Menu records keep writing the v1 payload byte for byte; only a
  // pinned CPA graph switches to the v2 tag and appends the graph.
  const bool pinned = rec.cpa.width != 0;
  w.u32(pinned ? kRecordVersionPinned : kRecordVersion);
  w.i32(rec.spec.bits);
  w.u8(static_cast<std::uint8_t>(rec.spec.ppg));
  w.u8(rec.spec.mac ? 1 : 0);
  w.f64_vec(rec.targets);
  w.tree(rec.tree);
  w.u64(rec.eval.per_target.size());
  for (const synth::SynthesisResult& res : rec.eval.per_target) {
    w.f64(res.area_um2);
    w.f64(res.delay_ns);
    w.f64(res.power_mw);
    w.u8(res.met_target ? 1 : 0);
    w.u8(static_cast<std::uint8_t>(res.cpa));
    w.i32(res.num_gates);
  }
  if (pinned) {
    w.i32(rec.cpa.width);
    w.u64(rec.cpa.nodes.size());
    for (const prefix::Node& node : rec.cpa.nodes) {
      w.i32(node.hi);
      w.i32(node.lo);
      w.i32(node.left);
      w.i32(node.right);
    }
    w.u64(rec.cpa.outputs.size());
    for (prefix::Ref ref : rec.cpa.outputs) w.i32(ref);
  }
  return w.take();
}

bool decode_record(const std::vector<std::uint8_t>& payload, Record* out) {
  try {
    search::BlobReader r(payload);
    const std::uint32_t version = r.u32();
    if (version != kRecordVersion && version != kRecordVersionPinned) {
      return false;
    }
    Record rec;
    rec.spec.bits = r.i32();
    if (!ppg::ppg_kind_from_index(r.u8(), &rec.spec.ppg)) return false;
    rec.spec.mac = r.u8() != 0;
    rec.targets = r.f64_vec();
    rec.tree = r.tree();
    const std::uint64_t n = r.u64();
    if (n > (1u << 20)) return false;
    rec.eval.per_target.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      synth::SynthesisResult res;
      res.area_um2 = r.f64();
      res.delay_ns = r.f64();
      res.power_mw = r.f64();
      res.met_target = r.u8() != 0;
      if (!netlist::cpa_kind_from_index(r.u8(), &res.cpa)) return false;
      res.num_gates = r.i32();
      // Accumulate in target order — the exact additions compute()
      // performs, so the decoded sums are bit-identical.
      rec.eval.sum_area += res.area_um2;
      rec.eval.sum_delay += res.delay_ns;
      rec.eval.sum_power += res.power_mw;
      rec.eval.per_target.push_back(res);
    }
    if (version == kRecordVersionPinned) {
      rec.cpa.width = r.i32();
      const std::uint64_t num_nodes = r.u64();
      if (rec.cpa.width <= 0 || num_nodes > (1u << 20)) return false;
      rec.cpa.nodes.reserve(num_nodes);
      for (std::uint64_t i = 0; i < num_nodes; ++i) {
        prefix::Node node;
        node.hi = r.i32();
        node.lo = r.i32();
        node.left = r.i32();
        node.right = r.i32();
        rec.cpa.nodes.push_back(node);
      }
      const std::uint64_t num_outputs = r.u64();
      if (num_outputs > (1u << 20)) return false;
      rec.cpa.outputs.reserve(num_outputs);
      for (std::uint64_t i = 0; i < num_outputs; ++i) {
        rec.cpa.outputs.push_back(r.i32());
      }
      if (!prefix::valid(rec.cpa)) return false;
    }
    r.expect_end();
    *out = std::move(rec);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

Store::Store(std::string dir, StoreOptions opts)
    : dir_(std::move(dir)), opts_(opts) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw std::runtime_error("dsdb: cannot create directory " + dir_ + ": " +
                             ec.message());
  }

  const std::string lock_path = dir_ + "/" + kLockName;
  lock_fd_ = ::open(lock_path.c_str(), O_CREAT | O_RDWR, 0644);
  if (lock_fd_ < 0) {
    throw std::runtime_error("dsdb: cannot open " + lock_path + ": " +
                             std::strerror(errno));
  }
  // Writers exclude each other (and readers); read-only opens share.
  // Held for the store's lifetime so compaction can rename safely.
  if (::flock(lock_fd_, opts_.read_only ? LOCK_SH : LOCK_EX) != 0) {
    const int err = errno;
    ::close(lock_fd_);
    lock_fd_ = -1;
    throw std::runtime_error("dsdb: flock failed on " + lock_path + ": " +
                             std::strerror(err));
  }

  open_journal();

  if (!opts_.read_only) {
    writer_ = std::thread([this] { writer_loop(); });
  }
}

void Store::open_journal() {
  const std::string path = journal_path();
  const ReplayResult res =
      replay_journal(path, [this](const std::vector<std::uint8_t>& payload) {
        Record rec;
        if (!decode_record(payload, &rec)) {
          ++dropped_;
          return;
        }
        const std::string key = rec.fingerprint().full_key();
        Shard& sh = shard_for(key);
        util::LockGuard lock(sh.mu);
        // First frame wins: compacted journals have no duplicates, and
        // an append-time race can only ever re-journal an equal record.
        if (sh.map.emplace(key, std::move(rec)).second) ++replayed_;
      });

  if (opts_.read_only) {
    journal_bytes_ = res.missing ? 0 : res.valid_bytes;
    recovered_tail_ = res.truncated_tail || res.bad_header;
    return;
  }

  journal_fd_ = ::open(path.c_str(), O_CREAT | O_RDWR, 0644);
  if (journal_fd_ < 0) {
    throw std::runtime_error("dsdb: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  if (res.missing || res.bad_header) {
    // Fresh (or unrecognizable) file: start over with a clean header.
    recovered_tail_ = res.bad_header;
    if (::ftruncate(journal_fd_, 0) != 0) {
      throw std::runtime_error("dsdb: ftruncate failed: " +
                               std::string(std::strerror(errno)));
    }
    const std::vector<std::uint8_t> header = journal_header();
    write_all(journal_fd_, header.data(), header.size());
    journal_bytes_ = header.size();
  } else {
    if (res.truncated_tail) {
      // Crash recovery: drop the torn frame so appends restart from a
      // clean boundary.
      recovered_tail_ = true;
      if (::ftruncate(journal_fd_, static_cast<off_t>(res.valid_bytes)) != 0) {
        throw std::runtime_error("dsdb: ftruncate failed: " +
                                 std::string(std::strerror(errno)));
      }
    }
    journal_bytes_ = res.valid_bytes;
  }
  if (::lseek(journal_fd_, 0, SEEK_END) < 0) {
    throw std::runtime_error("dsdb: lseek failed: " +
                             std::string(std::strerror(errno)));
  }
}

Store::~Store() {
  if (!opts_.read_only) {
    try {
      flush();
    } catch (...) {
      // Destructor: the in-memory index is intact; lose the tail.
    }
    {
      util::LockGuard lock(qmu_);
      stop_ = true;
    }
    qcv_.notify_all();
    if (writer_.joinable()) writer_.join();
  }
  if (journal_fd_ >= 0) ::close(journal_fd_);
  if (lock_fd_ >= 0) {
    ::flock(lock_fd_, LOCK_UN);
    ::close(lock_fd_);
  }
}

std::string Store::journal_path() const { return dir_ + "/" + kJournalName; }

Store::Shard& Store::shard_for(const std::string& full_key) const {
  return shards_[std::hash<std::string>{}(full_key) % kShards];
}

bool Store::lookup(const Fingerprint& fp, synth::DesignEval* out) const {
  const std::string key = fp.full_key();
  Shard& sh = shard_for(key);
  util::LockGuard lock(sh.mu);
  auto it = sh.map.find(key);
  if (it == sh.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (out != nullptr) *out = it->second.eval;
  return true;
}

bool Store::put(Record rec) {
  const std::string key = rec.fingerprint().full_key();
  std::vector<std::uint8_t> frame;
  {
    Shard& sh = shard_for(key);
    util::LockGuard lock(sh.mu);
    auto [it, inserted] = sh.map.emplace(key, std::move(rec));
    if (!inserted) return false;
    if (!opts_.read_only) {
      append_frame(frame, encode_record(it->second));
    }
  }
  if (frame.empty()) return true;  // read-only: in-memory insert only
  appends_.fetch_add(1, std::memory_order_relaxed);
  util::perf_counters().dsdb_appends.fetch_add(1, std::memory_order_relaxed);
  {
    util::LockGuard lock(qmu_);
    queue_.push_back(std::move(frame));
    ++enqueued_;
  }
  qcv_.notify_one();
  return true;
}

void Store::writer_loop() {
  for (;;) {
    std::vector<std::uint8_t> frame;
    {
      util::UniqueLock lock(qmu_);
      while (!stop_ && queue_.empty()) qcv_.wait(lock);
      if (queue_.empty()) return;  // stop_ && drained
      frame = std::move(queue_.front());
      queue_.pop_front();
    }
    {
      util::LockGuard lock(file_mu_);
      write_all(journal_fd_, frame.data(), frame.size());
      journal_bytes_.fetch_add(frame.size(), std::memory_order_relaxed);
    }
    {
      util::LockGuard lock(qmu_);
      ++written_;
    }
    drained_cv_.notify_all();
  }
}

void Store::flush() {
  if (opts_.read_only) return;
  {
    util::UniqueLock lock(qmu_);
    const std::uint64_t target = enqueued_;
    while (written_ < target) drained_cv_.wait(lock);
  }
  if (opts_.sync_on_flush) {
    util::LockGuard lock(file_mu_);
    ::fsync(journal_fd_);
  }
  flushes_.fetch_add(1, std::memory_order_relaxed);
  util::perf_counters().dsdb_flushes.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Store::compact() {
  if (opts_.read_only) return 0;
  flush();  // minimize frames that get re-journaled behind the snapshot

  // Hold the file lock across snapshot + rename: any frame journaled
  // after this point goes to the post-compaction fd, and any frame
  // that reached the old file beforehand is covered by the snapshot
  // (put() inserts into its shard before it enqueues).
  util::LockGuard lock(file_mu_);

  // Snapshot every live record, sorted by key for a deterministic file.
  std::vector<std::pair<std::string, Record>> live;
  for (Record& rec : snapshot_records()) {
    std::string key = rec.fingerprint().full_key();
    live.emplace_back(std::move(key), std::move(rec));
  }
  std::sort(live.begin(), live.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  const std::uint64_t before = journal_bytes_.load();

  const std::string tmp_path = journal_path() + ".tmp";
  int tmp_fd = ::open(tmp_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (tmp_fd < 0) {
    throw std::runtime_error("dsdb: cannot open " + tmp_path + ": " +
                             std::strerror(errno));
  }
  try {
    std::vector<std::uint8_t> bytes = journal_header();
    for (const auto& [key, rec] : live) {
      append_frame(bytes, encode_record(rec));
    }
    write_all(tmp_fd, bytes.data(), bytes.size());
    if (::fsync(tmp_fd) != 0) {
      throw std::runtime_error("dsdb: fsync failed: " +
                               std::string(std::strerror(errno)));
    }
    ::close(tmp_fd);
    tmp_fd = -1;
    if (std::rename(tmp_path.c_str(), journal_path().c_str()) != 0) {
      throw std::runtime_error("dsdb: rename failed: " +
                               std::string(std::strerror(errno)));
    }
    // Swap the append fd to the new file; frames enqueued after the
    // snapshot will land there (a record both snapshotted and queued
    // becomes a duplicate frame — harmless, first replay wins).
    ::close(journal_fd_);
    journal_fd_ = ::open(journal_path().c_str(), O_RDWR, 0644);
    if (journal_fd_ < 0) {
      throw std::runtime_error("dsdb: cannot reopen journal: " +
                               std::string(std::strerror(errno)));
    }
    if (::lseek(journal_fd_, 0, SEEK_END) < 0) {
      throw std::runtime_error("dsdb: lseek failed: " +
                               std::string(std::strerror(errno)));
    }
    journal_bytes_ = bytes.size();
  } catch (...) {
    if (tmp_fd >= 0) ::close(tmp_fd);
    std::remove(tmp_path.c_str());
    throw;
  }
  const std::uint64_t after = journal_bytes_.load();
  return before > after ? before - after : 0;
}

std::vector<Record> Store::snapshot_records() const {
  // All 16 shard mutexes, taken in array order (the only place more
  // than one shard lock is ever held — see the ordering note in the
  // header). std::unique_lock over the native handles because the
  // analysis cannot model a runtime-sized lock collection.
  // lint:allow-raw-sync(dynamic all-shard lock set; util shims only
  // wrap single locks)
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(kShards);
  for (const Shard& sh : shards_) locks.emplace_back(sh.mu.native());
  std::size_t total = 0;
  for (const Shard& sh : shards_) total += sh.map.size();
  std::vector<Record> out;
  out.reserve(total);
  for (const Shard& sh : shards_) {
    for (const auto& [key, rec] : sh.map) out.push_back(rec);
  }
  return out;
}

std::size_t Store::size() const {
  std::size_t total = 0;
  for (const Shard& sh : shards_) {
    util::LockGuard lock(sh.mu);
    total += sh.map.size();
  }
  return total;
}

std::uint64_t Store::journal_bytes() const { return journal_bytes_.load(); }

std::vector<Record> Store::matching(const ppg::MultiplierSpec& spec,
                                    const std::vector<double>& targets) const {
  std::vector<Record> out;
  for (const Shard& sh : shards_) {
    util::LockGuard lock(sh.mu);
    for (const auto& [key, rec] : sh.map) {
      if (rec.spec == spec && rec.targets == targets) out.push_back(rec);
    }
  }
  return out;
}

std::vector<Record> Store::all_records() const {
  std::vector<Record> out;
  for (const Shard& sh : shards_) {
    util::LockGuard lock(sh.mu);
    for (const auto& [key, rec] : sh.map) out.push_back(rec);
  }
  return out;
}

search::WarmStartRecords Store::warm_start_records(
    const ppg::MultiplierSpec& spec,
    const std::vector<double>& targets) const {
  std::vector<Record> recs = matching(spec, targets);
  // Warm-start records are tree-only: a pinned-CPA evaluation must not
  // be served as if it were the tree's menu evaluation.
  recs.erase(std::remove_if(recs.begin(), recs.end(),
                            [](const Record& r) { return r.cpa.width != 0; }),
             recs.end());
  std::sort(recs.begin(), recs.end(), [](const Record& a, const Record& b) {
    const double ca = a.eval.sum_area + a.eval.sum_delay;
    const double cb = b.eval.sum_area + b.eval.sum_delay;
    if (ca != cb) return ca < cb;
    return a.tree.key() < b.tree.key();  // deterministic tie-break
  });
  search::WarmStartRecords out;
  out.reserve(recs.size());
  for (Record& rec : recs) {
    out.push_back({std::move(rec.tree), std::move(rec.eval)});
  }
  return out;
}

std::unique_ptr<synth::EvalCache> Store::make_binding(
    const ppg::MultiplierSpec& spec, std::vector<double> targets) {
  return std::make_unique<EvaluatorBinding>(*this, spec, std::move(targets));
}

Store::Stats Store::stats() const {
  Stats s;
  s.hits = hits_.load();
  s.misses = misses_.load();
  s.appends = appends_.load();
  s.flushes = flushes_.load();
  s.replayed = replayed_;
  s.dropped = dropped_;
  s.recovered_tail = recovered_tail_;
  return s;
}

EvaluatorBinding::EvaluatorBinding(Store& store, ppg::MultiplierSpec spec,
                                   std::vector<double> targets)
    : store_(store), spec_(spec), targets_(std::move(targets)) {
  spec_fp_ = spec_fingerprint(spec_);
  ctx_fp_ = context_fingerprint(targets_);
}

bool EvaluatorBinding::lookup(const std::string& key,
                              const ct::CompressorTree& tree,
                              synth::DesignEval& out) {
  (void)tree;
  Fingerprint fp;
  fp.spec_fp = spec_fp_;
  fp.ctx_fp = ctx_fp_;
  fp.tree_key = key;
  const bool hit = store_.lookup(fp, &out);
  auto& pc = util::perf_counters();
  (hit ? pc.dsdb_hits : pc.dsdb_misses)
      .fetch_add(1, std::memory_order_relaxed);
  return hit;
}

void EvaluatorBinding::store(const std::string& key,
                             const ct::CompressorTree& tree,
                             const synth::DesignEval& eval) {
  (void)key;
  Record rec;
  rec.spec = spec_;
  rec.targets = targets_;
  rec.tree = tree;
  rec.eval = eval;
  store_.put(std::move(rec));
}

bool EvaluatorBinding::lookup_point(const std::string& key,
                                    const ppg::DesignPoint& point,
                                    synth::DesignEval& out) {
  (void)key;
  Fingerprint fp;
  fp.spec_fp = point.ppg == spec_.ppg
                   ? spec_fp_
                   : spec_fingerprint(point.resolved_spec(spec_));
  fp.ctx_fp = ctx_fp_;
  fp.tree_key = point.tree.key() + point.cpa_suffix();
  const bool hit = store_.lookup(fp, &out);
  auto& pc = util::perf_counters();
  (hit ? pc.dsdb_hits : pc.dsdb_misses)
      .fetch_add(1, std::memory_order_relaxed);
  return hit;
}

void EvaluatorBinding::store_point(const std::string& key,
                                   const ppg::DesignPoint& point,
                                   const synth::DesignEval& eval) {
  (void)key;
  Record rec;
  rec.spec = point.resolved_spec(spec_);
  rec.targets = targets_;
  rec.tree = point.tree;
  rec.cpa = point.cpa;
  rec.eval = eval;
  store_.put(std::move(rec));
}

}  // namespace rlmul::dsdb
