#pragma once
// Append-only binary write-ahead journal for the design-space database.
// Layout:
//
//   [8-byte magic "RLDSDB01"][u32 version]            file header
//   [u32 payload_len][u32 crc32(payload)][payload]    one frame/record
//   ...
//
// All integers little-endian. A reader replays frames until the first
// one that is truncated, fails its CRC, or carries an implausible
// length — everything before that point is trusted, everything after is
// discarded (a crashed writer can only ever corrupt the tail). The
// writer, on opening a journal with a corrupt tail, truncates the file
// back to the last valid frame so new appends start from a clean
// boundary.
//
// Thread safety: everything here is a pure function over its arguments
// (no shared state, nothing to annotate) — callers synchronize access
// to the underlying fd/file. In-process that caller is dsdb::Store,
// whose file_mu_ serializes appends and compaction; across processes
// the store's flock()ed LOCK file admits a single writer.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace rlmul::dsdb {

/// Plain CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the journal's
/// per-record integrity check.
std::uint32_t crc32(const void* data, std::size_t n);

constexpr std::uint32_t kJournalVersion = 1;
constexpr std::size_t kJournalHeaderBytes = 12;  ///< magic + version
/// Frames beyond this are treated as tail corruption, not records.
constexpr std::uint32_t kMaxFrameBytes = 1u << 28;

/// Serializes one frame (length + CRC + payload) into `out`.
void append_frame(std::vector<std::uint8_t>& out,
                  const std::vector<std::uint8_t>& payload);

/// The 12-byte file header.
std::vector<std::uint8_t> journal_header();

struct ReplayResult {
  std::size_t records = 0;      ///< valid frames decoded
  std::size_t valid_bytes = 0;  ///< offset of the first invalid byte
  bool truncated_tail = false;  ///< file had bytes past valid_bytes
  bool missing = false;         ///< file did not exist
  bool bad_header = false;      ///< magic/version mismatch (nothing read)
};

/// Streams every valid payload to `fn` in append order. Never throws on
/// corruption — the result describes how far the replay got.
ReplayResult replay_journal(
    const std::string& path,
    const std::function<void(const std::vector<std::uint8_t>&)>& fn);

/// Same replay over an in-memory image (the file variant delegates
/// here). This is the fuzzable core: fuzz_dsdb_journal drives it
/// without touching the filesystem.
ReplayResult replay_journal_bytes(
    const std::uint8_t* data, std::size_t size,
    const std::function<void(const std::vector<std::uint8_t>&)>& fn);

}  // namespace rlmul::dsdb
