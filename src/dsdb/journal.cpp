#include "dsdb/journal.hpp"

#include <array>
#include <cstring>
#include <fstream>

namespace rlmul::dsdb {

namespace {

constexpr char kMagic[8] = {'R', 'L', 'D', 'S', 'D', 'B', '0', '1'};

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void append_frame(std::vector<std::uint8_t>& out,
                  const std::vector<std::uint8_t>& payload) {
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

std::vector<std::uint8_t> journal_header() {
  std::vector<std::uint8_t> out(kMagic, kMagic + sizeof(kMagic));
  put_u32(out, kJournalVersion);
  return out;
}

ReplayResult replay_journal_bytes(
    const std::uint8_t* data, std::size_t size,
    const std::function<void(const std::vector<std::uint8_t>&)>& fn) {
  ReplayResult res;
  if (size < kJournalHeaderBytes ||
      std::memcmp(data, kMagic, sizeof(kMagic)) != 0 ||
      get_u32(data + sizeof(kMagic)) != kJournalVersion) {
    res.bad_header = true;
    res.truncated_tail = size != 0;
    return res;
  }
  std::size_t pos = kJournalHeaderBytes;
  std::vector<std::uint8_t> payload;
  while (pos + 8 <= size) {
    const std::uint32_t len = get_u32(data + pos);
    const std::uint32_t want_crc = get_u32(data + pos + 4);
    if (len > kMaxFrameBytes || pos + 8 + len > size) break;
    if (crc32(data + pos + 8, len) != want_crc) break;
    payload.assign(data + pos + 8, data + pos + 8 + len);
    fn(payload);
    pos += 8 + len;
    ++res.records;
  }
  res.valid_bytes = pos;
  res.truncated_tail = pos < size;
  return res;
}

ReplayResult replay_journal(
    const std::string& path,
    const std::function<void(const std::vector<std::uint8_t>&)>& fn) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ReplayResult res;
    res.missing = true;
    return res;
  }
  const std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                        std::istreambuf_iterator<char>());
  return replay_journal_bytes(bytes.data(), bytes.size(), fn);
}

}  // namespace rlmul::dsdb
