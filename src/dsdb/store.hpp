#pragma once
// Persistent, concurrent design-space database. Every synthesized
// design point (spec, targets, tree, per-target results) becomes one
// CRC-framed record in an append-only journal; reopening the store
// replays the journal into a sharded in-memory index keyed by the
// record's Fingerprint. A single background writer drains an append
// queue so search threads never block on disk, and an flock(2) on a
// sidecar LOCK file keeps concurrent processes out of each other's
// journal (exclusive for writers, shared for read-only opens).
//
// Durability contract: put() + flush() means the record survives a
// process crash (add sync_on_flush for power-loss durability). A
// writer that dies mid-append corrupts at most the journal tail; the
// next open truncates back to the last valid frame and loses only
// records that were never flushed.

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "ct/compressor_tree.hpp"
#include "dsdb/fingerprint.hpp"
#include "ppg/ppg.hpp"
#include "search/warm_start.hpp"
#include "synth/evaluator.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace rlmul::dsdb {

struct StoreOptions {
  bool read_only = false;     ///< shared lock, no journal writes
  bool sync_on_flush = false; ///< fsync the journal on every flush()
};

/// One stored design point. The spec and target set are carried in
/// full (not just fingerprinted) so records are exportable and can be
/// warm-started into a different process without guessing the context.
/// `cpa` is empty (width 0) for menu records — the only kind that
/// existed before the design-representation refactor — and holds the
/// pinned prefix graph for CPA-pinned evaluations. Pinned records key
/// under tree_key + ppg::cpa_key_suffix, so they can never collide
/// with (or be served for) a menu evaluation of the same tree.
struct Record {
  ppg::MultiplierSpec spec;
  std::vector<double> targets;
  ct::CompressorTree tree;
  prefix::PrefixGraph cpa;  ///< empty = CPA-menu record
  synth::DesignEval eval;

  Fingerprint fingerprint() const {
    Fingerprint fp = make_fingerprint(spec, targets, tree);
    fp.tree_key += ppg::cpa_key_suffix(cpa);
    return fp;
  }
};

/// Journal payload codec (search::BlobWriter framing; sums of the
/// DesignEval are recomputed from the per-target results in target
/// order, so a decoded eval is bit-identical to the computed one).
std::vector<std::uint8_t> encode_record(const Record& rec);
/// False on version mismatch or malformed payload; never throws.
bool decode_record(const std::vector<std::uint8_t>& payload, Record* out);

class Store {
 public:
  /// Opens (creating if needed) the database directory. Throws
  /// std::runtime_error if the directory or journal cannot be opened.
  explicit Store(std::string dir, StoreOptions opts = {});
  ~Store();

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  const std::string& dir() const { return dir_; }
  std::string journal_path() const;

  /// Exact-fingerprint lookup; copies the stored evaluation on hit.
  bool lookup(const Fingerprint& fp, synth::DesignEval* out) const;

  /// Inserts a record (deduplicated by fingerprint) and, unless
  /// read-only, queues it for journaling. Returns true if new.
  bool put(Record rec);

  /// Blocks until every record queued so far is in the journal file
  /// (+ fsync when sync_on_flush). No-op for read-only stores.
  void flush();

  /// Rewrites the journal with exactly the live records (sorted by key
  /// for determinism), dropping duplicate frames and corrupt tails.
  /// Atomic: tmp file + fsync + rename. Returns bytes reclaimed.
  std::uint64_t compact();

  std::size_t size() const;
  std::uint64_t journal_bytes() const;

  /// Records matching a spec + target-set contract exactly (what a
  /// warm start may legally reuse).
  std::vector<Record> matching(const ppg::MultiplierSpec& spec,
                               const std::vector<double>& targets) const;
  std::vector<Record> all_records() const;

  /// `matching(...)` converted for search::Driver consumption, sorted
  /// by (sum_area + sum_delay) ascending so the best designs lead.
  search::WarmStartRecords warm_start_records(
      const ppg::MultiplierSpec& spec,
      const std::vector<double>& targets) const;

  /// A fresh EvalCache binding for one (spec, target-set) contract —
  /// the multi-job entry point: a serve scheduler binds every shared
  /// evaluator it creates to this one store, and the bindings are
  /// independently thread-safe (the store's sharded index is the only
  /// shared state). The binding borrows the store; it must not outlive
  /// it.
  std::unique_ptr<synth::EvalCache> make_binding(
      const ppg::MultiplierSpec& spec, std::vector<double> targets);

  struct Stats {
    std::uint64_t hits = 0;        ///< lookup() successes
    std::uint64_t misses = 0;      ///< lookup() failures
    std::uint64_t appends = 0;     ///< records queued for the journal
    std::uint64_t flushes = 0;
    std::size_t replayed = 0;      ///< records loaded at open
    std::size_t dropped = 0;       ///< undecodable replayed payloads
    bool recovered_tail = false;   ///< open truncated a corrupt tail
  };
  Stats stats() const;

 private:
  struct Shard {
    mutable util::Mutex mu;
    std::unordered_map<std::string, Record> map RLMUL_GUARDED_BY(mu);
  };
  static constexpr std::size_t kShards = 16;

  // Lock ordering (see docs/architecture.md "Concurrency invariants"):
  // a thread holding a Shard::mu never takes another shard, qmu_ or
  // file_mu_; compact() takes file_mu_ first and then every shard.
  // qmu_ and file_mu_ are never held together except by compact()
  // indirectly through flush() (which takes qmu_ alone, then file_mu_
  // alone) — there is no path that nests one inside the other.

  Shard& shard_for(const std::string& full_key) const;
  void writer_loop();
  /// Constructor-only: runs before the writer thread exists, so the
  /// journal_fd_ writes need no lock yet (and the analysis is waived).
  void open_journal() RLMUL_NO_THREAD_SAFETY_ANALYSIS;
  /// Every live record, copied out under all 16 shard locks (taken in
  /// array order). The analysis cannot model a runtime-sized vector of
  /// scoped locks, so this helper is its exempt boundary.
  std::vector<Record> snapshot_records() const RLMUL_NO_THREAD_SAFETY_ANALYSIS;

  std::string dir_;
  StoreOptions opts_;

  mutable std::array<Shard, kShards> shards_;

  int lock_fd_ = -1;
  /// Written only by open_journal() (constructor context) and
  /// compact(); journal appends go through it under file_mu_.
  int journal_fd_ RLMUL_GUARDED_BY(file_mu_) = -1;
  mutable util::Mutex file_mu_;  ///< guards journal_fd_ writes + compact
  std::atomic<std::uint64_t> journal_bytes_{0};

  std::thread writer_;
  util::Mutex qmu_;
  util::CondVar qcv_;          ///< writer wakeup; paired with qmu_
  util::CondVar drained_cv_;   ///< flush() wakeup; paired with qmu_
  /// Pre-built frames awaiting the writer thread.
  std::deque<std::vector<std::uint8_t>> queue_ RLMUL_GUARDED_BY(qmu_);
  std::uint64_t enqueued_ RLMUL_GUARDED_BY(qmu_) = 0;
  std::uint64_t written_ RLMUL_GUARDED_BY(qmu_) = 0;
  bool stop_ RLMUL_GUARDED_BY(qmu_) = false;

  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> appends_{0};
  std::atomic<std::uint64_t> flushes_{0};
  // Set during open (before the writer thread exists), immutable after.
  std::size_t replayed_ = 0;
  std::size_t dropped_ = 0;
  bool recovered_tail_ = false;
};

/// Adapts a Store to the synth::EvalCache slot of one evaluator: the
/// spec and target set are fixed at bind time, so the per-evaluate
/// work is just a key concat + sharded map probe. Also feeds the
/// process-wide dsdb_* perf counters.
class EvaluatorBinding final : public synth::EvalCache {
 public:
  EvaluatorBinding(Store& store, ppg::MultiplierSpec spec,
                   std::vector<double> targets);

  bool lookup(const std::string& key, const ct::CompressorTree& tree,
              synth::DesignEval& out) override;
  void store(const std::string& key, const ct::CompressorTree& tree,
             const synth::DesignEval& eval) override;
  /// Extended-point entry points: the record keys under the *resolved*
  /// spec (the point's PPG family) with tree_key + cpa suffix — the
  /// evaluator key's "|ppg=" marker is the in-memory evaluator's
  /// concern, not the store's (spec_fp already covers the PPG).
  bool lookup_point(const std::string& key, const ppg::DesignPoint& point,
                    synth::DesignEval& out) override;
  void store_point(const std::string& key, const ppg::DesignPoint& point,
                   const synth::DesignEval& eval) override;

 private:
  Store& store_;
  ppg::MultiplierSpec spec_;
  std::vector<double> targets_;
  std::uint64_t spec_fp_ = 0;
  std::uint64_t ctx_fp_ = 0;
};

}  // namespace rlmul::dsdb
