#include "dsdb/fingerprint.hpp"

#include <cstdio>
#include <cstring>

namespace rlmul::dsdb {

std::uint64_t fnv1a64(const void* data, std::size_t n, std::uint64_t seed) {
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kPrime;
  }
  return h;
}

namespace {

std::uint64_t hash_u64(std::uint64_t v, std::uint64_t seed) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  }
  return fnv1a64(bytes, sizeof(bytes), seed);
}

}  // namespace

std::uint64_t spec_fingerprint(const ppg::MultiplierSpec& spec) {
  std::uint64_t h = hash_u64(static_cast<std::uint64_t>(spec.bits),
                             0xcbf29ce484222325ull);
  h = hash_u64(static_cast<std::uint64_t>(spec.ppg), h);
  h = hash_u64(spec.mac ? 1 : 0, h);
  return h;
}

std::uint64_t context_fingerprint(const std::vector<double>& targets,
                                  const synth::EvaluatorOptions& opts) {
  (void)opts;  // no current option changes the numbers; see file comment
  std::uint64_t h = hash_u64(kRecordVersion, 0xcbf29ce484222325ull);
  h = hash_u64(targets.size(), h);
  for (double t : targets) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &t, sizeof(bits));
    h = hash_u64(bits, h);
  }
  return h;
}

std::string Fingerprint::full_key() const {
  char head[2 * 16 + 3];
  std::snprintf(head, sizeof(head), "%016llx:%016llx:",
                static_cast<unsigned long long>(spec_fp),
                static_cast<unsigned long long>(ctx_fp));
  return std::string(head) + tree_key;
}

Fingerprint make_fingerprint(const ppg::MultiplierSpec& spec,
                             const std::vector<double>& targets,
                             const ct::CompressorTree& tree,
                             const synth::EvaluatorOptions& opts) {
  Fingerprint fp;
  fp.spec_fp = spec_fingerprint(spec);
  fp.ctx_fp = context_fingerprint(targets, opts);
  fp.tree_key = tree.key();
  return fp;
}

}  // namespace rlmul::dsdb
