#pragma once
// Fingerprint keying for the design-space database. A stored record is
// identified by a triple:
//
//   (spec fingerprint, context fingerprint, canonical tree key)
//
// The spec fingerprint covers everything that changes the hardware a
// compressor tree compiles to (bit-width, PPG family, MAC mode) — the
// tree's own canonical key deliberately omits the pp heights, so two
// specs with identical compressor counts must never share records. The
// context fingerprint covers the evaluation contract: the exact IEEE
// bit patterns of the delay-target set plus the record format version.
// Evaluator options that are bit-identical A/B switches (fast path,
// parallel targets, functional verification) are deliberately excluded,
// so RLMUL_FASTPATH=0 runs share records with fast-path runs; any
// future option that changes the reported numbers must be folded into
// context_fingerprint alongside a version bump.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ct/compressor_tree.hpp"
#include "ppg/ppg.hpp"
#include "synth/evaluator.hpp"

namespace rlmul::dsdb {

/// Bumped whenever the journal payload layout or the semantics of a
/// stored evaluation change; old records then simply never match.
/// (context_fingerprint hashes this constant, so a bump orphans every
/// existing record — which is why the pinned-CPA extension below got a
/// *separate* payload tag instead of a bump.)
constexpr std::uint32_t kRecordVersion = 1;

/// Payload tag for records that pin a CPA prefix graph: the v1 layout
/// followed by the serialized graph. Records without a pinned graph
/// keep writing version 1, byte-identical to pre-refactor journals,
/// and their fingerprints (which hash kRecordVersion, not the payload
/// tag) are unchanged — old records keep meaning.
constexpr std::uint32_t kRecordVersionPinned = 2;

/// FNV-1a over a byte range, chainable through `seed`.
std::uint64_t fnv1a64(const void* data, std::size_t n,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

std::uint64_t spec_fingerprint(const ppg::MultiplierSpec& spec);

/// Hash of the delay-target bit patterns + kRecordVersion. The options
/// are accepted (and documented) as part of the contract even though no
/// current option perturbs the synthesized numbers — see file comment.
std::uint64_t context_fingerprint(const std::vector<double>& targets,
                                  const synth::EvaluatorOptions& opts = {});

struct Fingerprint {
  std::uint64_t spec_fp = 0;
  std::uint64_t ctx_fp = 0;
  std::string tree_key;  ///< ct::CompressorTree::key()

  /// Flat index key: "spec:ctx:tree", unique across specs and targets.
  std::string full_key() const;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint make_fingerprint(const ppg::MultiplierSpec& spec,
                             const std::vector<double>& targets,
                             const ct::CompressorTree& tree,
                             const synth::EvaluatorOptions& opts = {});

}  // namespace rlmul::dsdb
