#include <algorithm>
#include <bit>
#include <queue>
#include <stdexcept>

#include "sta/sta.hpp"
#include "util/perf_counters.hpp"

namespace rlmul::sta {

using netlist::CellKind;
using netlist::CellLibrary;
using netlist::Gate;
using netlist::GateId;
using netlist::NetId;
using netlist::Netlist;

std::shared_ptr<const TimingGraph> TimingGraph::build(const Netlist& nl,
                                                      const CellLibrary& lib) {
  auto g = std::make_shared<TimingGraph>();
  const auto& gates = nl.gates();
  const std::size_t N = static_cast<std::size_t>(nl.num_nets());
  // One fused pass over the gates fills the driver map, the fanout
  // histogram and the DFF list (they used to be three separate walks);
  // a second fused loop over the nets turns the histogram into CSR
  // offsets while deriving each net's wire term from the pre-prefix
  // count. Values are identical to nl.driver_gate()/nl.fanout_csr() and
  // the separate wire loop — only the traversals are merged.
  g->driver.assign(N, -1);
  g->fo_base.assign(N + 1, 0);
  for (GateId gate = 0; gate < nl.num_gates(); ++gate) {
    const Gate& gg = gates[static_cast<std::size_t>(gate)];
    for (NetId n : gg.outputs) g->driver[static_cast<std::size_t>(n)] = gate;
    for (NetId n : gg.inputs) ++g->fo_base[static_cast<std::size_t>(n) + 1];
    if (gg.kind == CellKind::kDff) g->dffs.push_back(gate);
  }
  g->wire_ff.assign(N, 0.0);
  const double wire_fixed = lib.wire_cap_fixed_ff();
  const double wire_per_fanout = lib.wire_cap_per_fanout_ff();
  for (std::size_t n = 0; n < N; ++n) {
    const std::int32_t count = g->fo_base[n + 1];
    if (count > 0) {
      g->wire_ff[n] = wire_fixed + wire_per_fanout * static_cast<int>(count);
    }
    g->fo_base[n + 1] += g->fo_base[n];
  }
  g->fo_gate.resize(static_cast<std::size_t>(g->fo_base[N]));
  std::vector<std::int32_t> cursor(g->fo_base.begin(), g->fo_base.end() - 1);
  for (GateId gate = 0; gate < nl.num_gates(); ++gate) {
    for (NetId n : gates[static_cast<std::size_t>(gate)].inputs) {
      g->fo_gate[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(n)]++)] = gate;
    }
  }
  g->topo = nl.topo_order(g->driver, g->fo_base, g->fo_gate);
  g->topo_pos.assign(gates.size(), 0);
  for (std::size_t i = 0; i < g->topo.size(); ++i) {
    g->topo_pos[static_cast<std::size_t>(g->topo[i])] = static_cast<int>(i);
  }
  g->po_count.assign(N, 0);
  for (NetId n : nl.primary_outputs()) {
    ++g->po_count[static_cast<std::size_t>(n)];
  }
  return g;
}

IncrementalTimer::IncrementalTimer(const Netlist& nl, const CellLibrary& lib,
                                   std::shared_ptr<const TimingGraph> graph)
    : nl_(nl), lib_(lib), graph_(std::move(graph)) {
  if (!graph_) graph_ = TimingGraph::build(nl_, lib_);
  full_update();
}

IncrementalTimer::IncrementalTimer(const Netlist& nl, const CellLibrary& lib,
                                   std::shared_ptr<const TimingGraph> graph,
                                   TimingState state)
    : nl_(nl),
      lib_(lib),
      graph_(std::move(graph)),
      load_ff_(std::move(state.load_ff)),
      arrival_ps_(std::move(state.arrival_ps)),
      prev_(std::move(state.prev)),
      prev_in_(std::move(state.prev_in)),
      max_po_arrival_ps_(state.max_po_arrival_ps),
      min_clock_period_ps_(state.min_clock_period_ps),
      critical_ps_(state.critical_ps),
      worst_endpoint_(state.worst_endpoint) {
  if (!graph_) graph_ = TimingGraph::build(nl_, lib_);
  if (load_ff_.size() != static_cast<std::size_t>(nl_.num_nets()) ||
      arrival_ps_.size() != load_ff_.size() ||
      prev_.size() != load_ff_.size() || prev_in_.size() != nl_.gates().size()) {
    throw std::invalid_argument("IncrementalTimer: adopted state size mismatch");
  }
  enable_fast_worklist();
}

TimingState IncrementalTimer::snapshot() const {
  TimingState s;
  s.load_ff = load_ff_;
  s.arrival_ps = arrival_ps_;
  s.prev = prev_;
  s.prev_in = prev_in_;
  s.max_po_arrival_ps = max_po_arrival_ps_;
  s.min_clock_period_ps = min_clock_period_ps_;
  s.critical_ps = critical_ps_;
  s.worst_endpoint = worst_endpoint_;
  return s;
}

void IncrementalTimer::enable_fast_worklist() {
  fast_worklist_ = true;
  dirty_.assign((nl_.gates().size() + 63) / 64, 0);
}

double IncrementalTimer::recompute_load(NetId n) const {
  // Mirrors compute_loads exactly, including summation order: fanout
  // pin caps in ascending gate order, then the wire term as one add,
  // then one add per primary-output occurrence.
  const std::size_t idx = static_cast<std::size_t>(n);
  double load = 0.0;
  const std::int32_t lo = graph_->fo_base[idx];
  const std::int32_t hi = graph_->fo_base[idx + 1];
  for (std::int32_t k = lo; k < hi; ++k) {
    const Gate& gate = nl_.gates()[static_cast<std::size_t>(
        graph_->fo_gate[static_cast<std::size_t>(k)])];
    load += lib_.input_cap(gate.kind, gate.variant);
  }
  if (hi > lo) load += graph_->wire_ff[idx];
  for (int i = 0; i < graph_->po_count[idx]; ++i) {
    load += lib_.output_load_ff();
  }
  return load;
}

bool IncrementalTimer::retime_gate(GateId g,
                                   std::vector<NetId>* changed) {
  const Gate& gate = nl_.gates()[static_cast<std::size_t>(g)];
  if (gate.kind == CellKind::kTieLo || gate.kind == CellKind::kTieHi) {
    return false;  // constants arrive at time 0
  }
  bool any = false;
  if (gate.kind == CellKind::kDff) {
    const NetId q = gate.outputs[0];
    const double t = lib_.intrinsic(CellKind::kDff, 0, 0) +
                     lib_.drive_res(CellKind::kDff, gate.variant) *
                         load_ff_[static_cast<std::size_t>(q)];
    prev_[static_cast<std::size_t>(q)] = g;
    if (t != arrival_ps_[static_cast<std::size_t>(q)]) {
      arrival_ps_[static_cast<std::size_t>(q)] = t;
      if (changed) changed->push_back(q);
      any = true;
    }
    return any;
  }
  for (int o = 0; o < static_cast<int>(gate.outputs.size()); ++o) {
    const NetId out = gate.outputs[static_cast<std::size_t>(o)];
    const double rl = lib_.drive_res(gate.kind, gate.variant) *
                      load_ff_[static_cast<std::size_t>(out)];
    double worst = 0.0;
    NetId worst_in = netlist::kNoNet;
    for (int i = 0; i < static_cast<int>(gate.inputs.size()); ++i) {
      const NetId in = gate.inputs[static_cast<std::size_t>(i)];
      const double t = arrival_ps_[static_cast<std::size_t>(in)] +
                       lib_.intrinsic(gate.kind, i, o) + rl;
      if (t > worst) {
        worst = t;
        worst_in = in;
      }
    }
    // Replicates the full pass's `worst > 0` guard semantics: nets are
    // single-driver, so the only competitor is the initial 0.
    if (worst > 0.0) {
      prev_[static_cast<std::size_t>(out)] = g;
      prev_in_[static_cast<std::size_t>(g)] = worst_in;
    } else {
      prev_[static_cast<std::size_t>(out)] = -1;
    }
    if (worst != arrival_ps_[static_cast<std::size_t>(out)]) {
      arrival_ps_[static_cast<std::size_t>(out)] = worst;
      if (changed) changed->push_back(out);
      any = true;
    }
  }
  return any;
}

void IncrementalTimer::refresh_endpoints() {
  max_po_arrival_ps_ = 0.0;
  worst_endpoint_ = netlist::kNoNet;
  for (NetId n : nl_.primary_outputs()) {
    const double t = arrival_ps_[static_cast<std::size_t>(n)];
    if (t > max_po_arrival_ps_) {
      max_po_arrival_ps_ = t;
      worst_endpoint_ = n;
    }
  }
  min_clock_period_ps_ = 0.0;
  for (GateId g : graph_->dffs) {
    const NetId d = nl_.gates()[static_cast<std::size_t>(g)].inputs[0];
    const double t = arrival_ps_[static_cast<std::size_t>(d)] +
                     lib_.setup(CellKind::kDff);
    if (t > min_clock_period_ps_) {
      min_clock_period_ps_ = t;
      if (t >= max_po_arrival_ps_) worst_endpoint_ = d;
    }
  }
  critical_ps_ = std::max(max_po_arrival_ps_, min_clock_period_ps_);
}

void IncrementalTimer::full_update() {
  util::perf_counters().sta_full_updates.fetch_add(
      1, std::memory_order_relaxed);
  const std::size_t nets = static_cast<std::size_t>(nl_.num_nets());
  load_ff_.assign(nets, 0.0);
  for (std::size_t n = 0; n < nets; ++n) {
    load_ff_[n] = recompute_load(static_cast<NetId>(n));
  }
  arrival_ps_.assign(nets, 0.0);
  prev_.assign(nets, -1);
  prev_in_.assign(nl_.gates().size(), netlist::kNoNet);
  for (GateId g : graph_->topo) retime_gate(g, nullptr);
  refresh_endpoints();
}

void IncrementalTimer::update(const std::vector<GateId>& resized) {
  if (fast_worklist_) {
    update_flat(resized);
    return;
  }
  auto& counters = util::perf_counters();
  counters.sta_incremental_updates.fetch_add(1, std::memory_order_relaxed);

  // Min-heap over topological position: every gate is popped after all
  // of this round's changes to its inputs have been applied, so each
  // affected gate is retimed exactly once.
  std::priority_queue<std::pair<int, GateId>,
                      std::vector<std::pair<int, GateId>>, std::greater<>>
      heap;
  std::vector<char> in_heap(nl_.gates().size(), 0);
  auto push = [&](GateId g) {
    if (in_heap[static_cast<std::size_t>(g)]) return;
    in_heap[static_cast<std::size_t>(g)] = 1;
    heap.emplace(graph_->topo_pos[static_cast<std::size_t>(g)], g);
  };

  for (GateId g : resized) {
    // The gate's input-pin capacitance changed with the variant, so its
    // fanin nets carry a different load — which changes the arc delays
    // of the gates driving them.
    for (NetId n : nl_.gates()[static_cast<std::size_t>(g)].inputs) {
      const double load = recompute_load(n);
      if (load != load_ff_[static_cast<std::size_t>(n)]) {
        load_ff_[static_cast<std::size_t>(n)] = load;
        const GateId drv = graph_->driver[static_cast<std::size_t>(n)];
        if (drv >= 0) push(drv);
      }
    }
    push(g);  // its own drive resistance changed
  }

  std::vector<NetId> changed_nets;
  std::uint64_t retimed = 0;
  while (!heap.empty()) {
    const GateId g = heap.top().second;
    heap.pop();
    in_heap[static_cast<std::size_t>(g)] = 0;
    ++retimed;
    changed_nets.clear();
    retime_gate(g, &changed_nets);
    for (NetId n : changed_nets) {
      const std::int32_t lo = graph_->fo_base[static_cast<std::size_t>(n)];
      const std::int32_t hi = graph_->fo_base[static_cast<std::size_t>(n) + 1];
      for (std::int32_t k = lo; k < hi; ++k) {
        push(graph_->fo_gate[static_cast<std::size_t>(k)]);
      }
    }
  }
  counters.sta_gates_retimed.fetch_add(retimed, std::memory_order_relaxed);
  refresh_endpoints();
}

std::uint64_t IncrementalTimer::drain_dirty(std::size_t min_word) {
  // Scan the bitset in ascending topological order, consuming bits as we
  // go. Propagation only ever marks strictly larger positions (fanout
  // gates sit later in topo order), so nothing appears behind the
  // cursor and one forward sweep retimes every affected gate exactly
  // once — the same pop order, with the same set-semantics dedup, as
  // the heap path.
  std::uint64_t retimed = 0;
  for (std::size_t w = min_word; w < dirty_.size(); ++w) {
    while (dirty_[w] != 0) {
      const int b = std::countr_zero(dirty_[w]);
      dirty_[w] &= dirty_[w] - 1;
      const GateId g = graph_->topo[(w << 6) + static_cast<std::size_t>(b)];
      ++retimed;
      changed_scratch_.clear();
      retime_gate(g, &changed_scratch_);
      for (NetId n : changed_scratch_) {
        const std::int32_t lo = graph_->fo_base[static_cast<std::size_t>(n)];
        const std::int32_t hi =
            graph_->fo_base[static_cast<std::size_t>(n) + 1];
        for (std::int32_t k = lo; k < hi; ++k) {
          const GateId fo = graph_->fo_gate[static_cast<std::size_t>(k)];
          const std::size_t p =
              static_cast<std::size_t>(graph_->topo_pos[
                  static_cast<std::size_t>(fo)]);
          dirty_[p >> 6] |= std::uint64_t{1} << (p & 63);
        }
      }
    }
  }
  return retimed;
}

void IncrementalTimer::update_flat(const std::vector<GateId>& resized) {
  auto& counters = util::perf_counters();
  counters.sta_incremental_updates.fetch_add(1, std::memory_order_relaxed);
  std::size_t min_word = dirty_.size();
  auto mark = [&](GateId g) {
    const std::size_t p =
        static_cast<std::size_t>(graph_->topo_pos[static_cast<std::size_t>(g)]);
    dirty_[p >> 6] |= std::uint64_t{1} << (p & 63);
    if ((p >> 6) < min_word) min_word = p >> 6;
  };
  for (GateId g : resized) {
    for (NetId n : nl_.gates()[static_cast<std::size_t>(g)].inputs) {
      const double load = recompute_load(n);
      if (load != load_ff_[static_cast<std::size_t>(n)]) {
        load_ff_[static_cast<std::size_t>(n)] = load;
        const GateId drv = graph_->driver[static_cast<std::size_t>(n)];
        if (drv >= 0) mark(drv);
      }
    }
    mark(g);
  }
  counters.sta_gates_retimed.fetch_add(drain_dirty(min_word),
                                       std::memory_order_relaxed);
  refresh_endpoints();
}

void IncrementalTimer::warm_update(const std::vector<NetId>& dirty_nets,
                                   const std::vector<GateId>& dirty_gates) {
  if (!fast_worklist_) enable_fast_worklist();
  auto& counters = util::perf_counters();
  counters.sta_incremental_updates.fetch_add(1, std::memory_order_relaxed);
  std::size_t min_word = dirty_.size();
  auto mark = [&](GateId g) {
    const std::size_t p =
        static_cast<std::size_t>(graph_->topo_pos[static_cast<std::size_t>(g)]);
    dirty_[p >> 6] |= std::uint64_t{1} << (p & 63);
    if ((p >> 6) < min_word) min_word = p >> 6;
  };
  for (NetId n : dirty_nets) {
    const double load = recompute_load(n);
    if (load != load_ff_[static_cast<std::size_t>(n)]) {
      load_ff_[static_cast<std::size_t>(n)] = load;
      const GateId drv = graph_->driver[static_cast<std::size_t>(n)];
      if (drv >= 0) mark(drv);
    }
  }
  for (GateId g : dirty_gates) mark(g);
  counters.sta_gates_retimed.fetch_add(drain_dirty(min_word),
                                       std::memory_order_relaxed);
  refresh_endpoints();
}

std::vector<GateId> IncrementalTimer::critical_path() const {
  std::vector<GateId> path;
  NetId cursor = worst_endpoint_;
  while (cursor != netlist::kNoNet &&
         prev_[static_cast<std::size_t>(cursor)] >= 0) {
    const GateId g = prev_[static_cast<std::size_t>(cursor)];
    path.push_back(g);
    if (nl_.gates()[static_cast<std::size_t>(g)].kind == CellKind::kDff) break;
    cursor = prev_in_[static_cast<std::size_t>(g)];
  }
  std::reverse(path.begin(), path.end());
  return path;
}

TimingReport IncrementalTimer::report() const {
  TimingReport rep;
  rep.max_po_arrival_ps = max_po_arrival_ps_;
  rep.min_clock_period_ps = min_clock_period_ps_;
  rep.critical_ps = critical_ps_;
  rep.arrival_ps = arrival_ps_;
  rep.load_ff = load_ff_;
  rep.critical_path = critical_path();
  return rep;
}

}  // namespace rlmul::sta
