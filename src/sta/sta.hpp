#pragma once
// Static timing analysis over the gate-level netlist (the OpenSTA stand-
// in of the flow). Linear delay model per timing arc:
//
//   delay(arc, load) = intrinsic(cell, in_pin, out_pin)
//                    + drive_res(cell, variant) * load(out_net)
//
// where load is the sum of fanout input-pin capacitances plus a wire
// estimate. Combinational paths end at primary outputs; sequential
// paths end at DFF D pins (plus setup), and DFF Q pins launch with the
// clock-to-Q arc.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "netlist/cell_library.hpp"
#include "netlist/netlist.hpp"

namespace rlmul::sta {

struct TimingReport {
  /// Latest arrival at any primary output (ps). 0 for empty designs.
  double max_po_arrival_ps = 0.0;
  /// Minimum clock period for registered designs:
  /// max over DFF D pins of (arrival + setup), and clk-to-q launched
  /// paths are included in arrivals. 0 when the design has no DFFs.
  double min_clock_period_ps = 0.0;
  /// max of the two: the design's critical delay.
  double critical_ps = 0.0;
  /// Per-net arrival times (ps).
  std::vector<double> arrival_ps;
  /// Per-net total load (fF), including wire estimate.
  std::vector<double> load_ff;
  /// Gates on the critical path, source to endpoint.
  std::vector<netlist::GateId> critical_path;
};

/// Per-net capacitive load from fanout pins + wire model.
std::vector<double> compute_loads(const netlist::Netlist& nl,
                                  const netlist::CellLibrary& lib);

TimingReport analyze(const netlist::Netlist& nl,
                     const netlist::CellLibrary& lib);

/// OpenSTA-style textual path report: one line per gate on the
/// critical path with incremental and cumulative arrival times.
std::string report_timing(const netlist::Netlist& nl,
                          const netlist::CellLibrary& lib);

/// Variant-independent timing structure of a netlist: topological
/// order, per-net fanout pins, drivers, and the static (wire + primary
/// output) part of every net's load. Valid for — and shareable across —
/// any netlist with identical connectivity, which is what lets the
/// synthesis fast path size per-target copies of one prepared netlist
/// without re-deriving any of this.
struct TimingGraph {
  std::vector<netlist::GateId> topo;  ///< topological gate order
  std::vector<int> topo_pos;          ///< per gate: index into `topo`
  std::vector<netlist::GateId> driver;  ///< per net; -1 = PI/floating
  /// Per-net fanout in CSR form: the sink gates of net n are
  /// fo_gate[fo_base[n] .. fo_base[n+1]), in ascending gate order (the
  /// summation order compute_loads uses, so incremental load
  /// recomputation is bit-identical to the full pass). Two flat arrays
  /// instead of a vector per net — building one costs no per-net heap
  /// allocation, which dominated the old representation's build time.
  std::vector<std::int32_t> fo_base;    ///< per net + 1
  std::vector<netlist::GateId> fo_gate;
  /// Per net: wire-model load term (0 for nets with no fanout).
  std::vector<double> wire_ff;
  /// Per net: number of times the net appears as a primary output.
  std::vector<int> po_count;
  std::vector<netlist::GateId> dffs;  ///< all DFF gates

  static std::shared_ptr<const TimingGraph> build(
      const netlist::Netlist& nl, const netlist::CellLibrary& lib);
};

/// A converged timing fixpoint, detachable from the timer that computed
/// it. The delta-evaluation path snapshots the variants-at-0 baseline of
/// a parent design, maps it onto a structurally-patched child, and
/// re-adopts it — so the child never pays a full update for the part of
/// the cone the parent already timed. Adopting a snapshot of a converged
/// timer is bit-identical to running full_update() from scratch (a copy
/// of a fixpoint is the fixpoint).
struct TimingState {
  std::vector<double> load_ff;
  std::vector<double> arrival_ps;
  std::vector<netlist::GateId> prev;    ///< per net; -1 = source
  std::vector<netlist::NetId> prev_in;  ///< per gate; kNoNet = none
  double max_po_arrival_ps = 0.0;
  double min_clock_period_ps = 0.0;
  double critical_ps = 0.0;
  netlist::NetId worst_endpoint = netlist::kNoNet;
};

/// Worklist-based incremental timing over a netlist whose gate
/// *variants* change (the only mutation gate sizing performs). After
/// `update({changed gates})`, arrival times, loads, the critical delay
/// and the critical path are bit-identical to what a full `analyze` of
/// the current netlist would report — `analyze` stays the verification
/// reference, enforced by the incremental-STA property tests.
class IncrementalTimer {
 public:
  /// `graph` may be null (derived from `nl`) or a structure shared
  /// across connectivity-identical netlists. The constructor runs a
  /// full update.
  IncrementalTimer(const netlist::Netlist& nl,
                   const netlist::CellLibrary& lib,
                   std::shared_ptr<const TimingGraph> graph = nullptr);

  /// Adopting constructor: trusts `state` to be the converged fixpoint
  /// for (`nl`, `lib`) and runs NO full update. Callers either pass a
  /// snapshot() of a timer over an identical netlist, or a parent-mapped
  /// state they immediately reconcile with warm_update().
  IncrementalTimer(const netlist::Netlist& nl,
                   const netlist::CellLibrary& lib,
                   std::shared_ptr<const TimingGraph> graph,
                   TimingState state);

  /// Detaches a copy of the current (converged) timing state.
  TimingState snapshot() const;

  /// Recomputes every load and arrival from scratch (counts as a full
  /// STA update). Required after bulk variant edits, e.g. the reset to
  /// variant 0 at the start of sizing.
  void full_update();

  /// Re-propagates timing after the given gates changed variant:
  /// recomputes the loads of their fanin nets and walks arrivals only
  /// through the affected downstream cone.
  void update(const std::vector<netlist::GateId>& resized);

  /// Switches update() to the flat bitmap worklist: a persistent bitset
  /// over topological positions scanned with count-trailing-zeros
  /// instead of a per-call priority queue + membership vector. Gates
  /// still pop in strictly ascending topological order with set
  /// semantics, so the retime sequence — and every double it produces —
  /// is identical to the heap path; only the allocation and heap
  /// traffic goes away. Opt-in so the legacy path stays byte-for-byte
  /// what it was.
  void enable_fast_worklist();

  /// Reconciles an adopted parent-mapped state with this netlist:
  /// recomputes the loads of `dirty_nets` (seeding drivers whose load
  /// changed), seeds `dirty_gates` (gates with no parent image), and
  /// re-propagates arrivals through the affected cone only. With a
  /// complete dirty set this converges to the same fixpoint —
  /// bit-identical per double — as full_update() from scratch.
  void warm_update(const std::vector<netlist::NetId>& dirty_nets,
                   const std::vector<netlist::GateId>& dirty_gates);

  double critical_ps() const { return critical_ps_; }
  double max_po_arrival_ps() const { return max_po_arrival_ps_; }
  double min_clock_period_ps() const { return min_clock_period_ps_; }
  const std::vector<double>& arrival_ps() const { return arrival_ps_; }
  const std::vector<double>& load_ff() const { return load_ff_; }
  const TimingGraph& graph() const { return *graph_; }

  /// Gates on the critical path, source to endpoint (traced on demand).
  std::vector<netlist::GateId> critical_path() const;

  /// Full TimingReport snapshot, interchangeable with analyze().
  TimingReport report() const;

 private:
  double recompute_load(netlist::NetId n) const;
  /// Recomputes all output arrivals of a gate; returns true if any
  /// changed.
  bool retime_gate(netlist::GateId g, std::vector<netlist::NetId>* changed);
  void refresh_endpoints();
  void update_flat(const std::vector<netlist::GateId>& resized);
  /// Propagates arrivals from whatever is marked in dirty_, starting the
  /// scan at `min_word`; returns gates retimed. dirty_ is self-clearing.
  std::uint64_t drain_dirty(std::size_t min_word);

  const netlist::Netlist& nl_;
  const netlist::CellLibrary& lib_;
  std::shared_ptr<const TimingGraph> graph_;

  std::vector<double> load_ff_;
  std::vector<double> arrival_ps_;
  /// prev_[net] = gate whose output set the arrival (-1 = source).
  std::vector<netlist::GateId> prev_;
  /// prev_in_[gate] = input net on the gate's worst arc.
  std::vector<netlist::NetId> prev_in_;

  double max_po_arrival_ps_ = 0.0;
  double min_clock_period_ps_ = 0.0;
  double critical_ps_ = 0.0;
  netlist::NetId worst_endpoint_ = netlist::kNoNet;

  /// Flat-worklist mode (enable_fast_worklist / warm_update): one bit
  /// per topological position; set bits are pending retimes. Cleared
  /// word-by-word as the scan consumes them, so no reset between calls.
  bool fast_worklist_ = false;
  std::vector<std::uint64_t> dirty_;
  std::vector<netlist::NetId> changed_scratch_;
};

}  // namespace rlmul::sta
