#pragma once
// Static timing analysis over the gate-level netlist (the OpenSTA stand-
// in of the flow). Linear delay model per timing arc:
//
//   delay(arc, load) = intrinsic(cell, in_pin, out_pin)
//                    + drive_res(cell, variant) * load(out_net)
//
// where load is the sum of fanout input-pin capacitances plus a wire
// estimate. Combinational paths end at primary outputs; sequential
// paths end at DFF D pins (plus setup), and DFF Q pins launch with the
// clock-to-Q arc.

#include <vector>

#include "netlist/cell_library.hpp"
#include "netlist/netlist.hpp"

namespace rlmul::sta {

struct TimingReport {
  /// Latest arrival at any primary output (ps). 0 for empty designs.
  double max_po_arrival_ps = 0.0;
  /// Minimum clock period for registered designs:
  /// max over DFF D pins of (arrival + setup), and clk-to-q launched
  /// paths are included in arrivals. 0 when the design has no DFFs.
  double min_clock_period_ps = 0.0;
  /// max of the two: the design's critical delay.
  double critical_ps = 0.0;
  /// Per-net arrival times (ps).
  std::vector<double> arrival_ps;
  /// Per-net total load (fF), including wire estimate.
  std::vector<double> load_ff;
  /// Gates on the critical path, source to endpoint.
  std::vector<netlist::GateId> critical_path;
};

/// Per-net capacitive load from fanout pins + wire model.
std::vector<double> compute_loads(const netlist::Netlist& nl,
                                  const netlist::CellLibrary& lib);

TimingReport analyze(const netlist::Netlist& nl,
                     const netlist::CellLibrary& lib);

/// OpenSTA-style textual path report: one line per gate on the
/// critical path with incremental and cumulative arrival times.
std::string report_timing(const netlist::Netlist& nl,
                          const netlist::CellLibrary& lib);

}  // namespace rlmul::sta
